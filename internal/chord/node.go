package chord

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNodeDown is returned by RPC implementations when the target node is
// unreachable.
var ErrNodeDown = errors.New("chord: node unreachable")

// NodeRef identifies a remote protocol node: its address (how to reach it)
// and its position on the circle.
type NodeRef struct {
	Addr string `json:"addr"`
	ID   ID     `json:"id"`
}

// IsZero reports whether the reference is unset.
func (n NodeRef) IsZero() bool { return n.Addr == "" }

// RPC is the messaging surface a protocol node needs to talk to its peers.
// internal/overlay provides a transport-backed implementation; LocalNetwork
// provides an in-memory one for tests.
type RPC interface {
	// FindSuccessor asks the node at ref to resolve the successor of id.
	FindSuccessor(ref NodeRef, id ID) (NodeRef, error)
	// Successor asks the node at ref for its current immediate successor.
	// Unlike FindSuccessor it involves no routing — it reads one pointer —
	// so chains of Successor calls stay inside the ring ref belongs to even
	// when finger tables are polluted with members of a diverged ring.
	Successor(ref NodeRef) (NodeRef, error)
	// Predecessor asks the node at ref for its current predecessor (which
	// may be the zero NodeRef).
	Predecessor(ref NodeRef) (NodeRef, error)
	// Notify tells the node at ref that candidate might be its predecessor.
	Notify(ref NodeRef, candidate NodeRef) error
	// Ping checks liveness of the node at ref.
	Ping(ref NodeRef) error
}

// SuccessorListLen is the number of successors each node tracks for fault
// tolerance.
const SuccessorListLen = 4

// PeerState is a health oracle's verdict about a peer, distinguishing the
// gray zone (slow but probably alive) from definite death. See
// SetHealthOracle.
type PeerState int

const (
	// PeerUnknown means the oracle has no decisive evidence; maintenance
	// treats a failed call as a definite failure (the pre-oracle behavior).
	PeerUnknown PeerState = iota
	// PeerSuspect means the peer looks slow — recent deadline expiries but
	// no hard evidence of death. Maintenance keeps suspect ring neighbors
	// for the round instead of dropping them on one failed call, so a slow
	// node is not churned out of the ring by a single timeout.
	PeerSuspect
	// PeerDead means the peer is considered gone (hard unreachability, or a
	// long streak of timeouts); maintenance repairs around it immediately.
	PeerDead
)

// Node is a Chord protocol node. It keeps a finger table, a successor list
// and a predecessor pointer, and exposes the classic join/stabilize/notify/
// fix-fingers operations. Node has no internal goroutines: the owner calls
// Stabilize and FixFingers periodically (the overlay does this from its
// maintenance loop), per the repository convention that background work is
// owned by the caller.
type Node struct {
	mu    sync.RWMutex
	self  NodeRef
	space Space
	rpc   RPC

	predecessor NodeRef
	successors  []NodeRef // successors[0] is the immediate successor
	fingers     []NodeRef // fingers[i] = successor(self.ID + 2^i)
	nextFinger  int

	// succListener is invoked (outside the lock) whenever the successor
	// list's content changes; lastNotified is the list it last saw.
	succListener func([]NodeRef)
	lastNotified []NodeRef

	// healthOracle, when installed, classifies a peer after a failed
	// maintenance call; see SetHealthOracle.
	healthOracle func(addr string) PeerState
}

// NewNode creates a node for the given address. The node starts as a
// single-member ring (its own successor).
func NewNode(addr string, space Space, rpc RPC) *Node {
	self := NodeRef{Addr: addr, ID: space.HashString(addr)}
	n := &Node{
		self:       self,
		space:      space,
		rpc:        rpc,
		successors: make([]NodeRef, 1, SuccessorListLen),
		fingers:    make([]NodeRef, space.Bits),
	}
	n.successors[0] = self
	for i := range n.fingers {
		n.fingers[i] = self
	}
	return n
}

// Self returns the node's own reference.
func (n *Node) Self() NodeRef { return n.self }

// Successor returns the node's current immediate successor.
func (n *Node) Successor() NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.successors[0]
}

// PredecessorRef returns the node's current predecessor (possibly zero).
func (n *Node) PredecessorRef() NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.predecessor
}

// Successors returns a copy of the successor list.
func (n *Node) Successors() []NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]NodeRef, len(n.successors))
	copy(out, n.successors)
	return out
}

// SetSuccessorsListener installs fn to be called with a copy of the successor
// list every time its content changes (after joins, stabilization rounds and
// successor failures). The callback runs on whatever goroutine mutated the
// list, with no node lock held, so it may call back into the node. The
// overlay uses it to re-push key-group replicas when the replica targets —
// the first k successors — change under ring churn.
func (n *Node) SetSuccessorsListener(fn func([]NodeRef)) {
	n.mu.Lock()
	n.succListener = fn
	n.mu.Unlock()
}

// SetHealthOracle installs a failure-detector callback maintenance consults
// when a call to a ring neighbor fails: a PeerSuspect verdict keeps the
// neighbor for the round (the caller's next attempt runs with an escalated
// deadline), while PeerDead or PeerUnknown repairs around it immediately —
// with no oracle installed every failure is treated as definite, preserving
// the classic drop-on-first-failure behavior. The overlay wires its
// suspicion tracker here so chord's ring repair and the RPC layer's latency
// evidence agree on who is dead.
func (n *Node) SetHealthOracle(fn func(addr string) PeerState) {
	n.mu.Lock()
	n.healthOracle = fn
	n.mu.Unlock()
}

// peerHealth consults the oracle; without one every peer is PeerUnknown.
func (n *Node) peerHealth(addr string) PeerState {
	n.mu.RLock()
	fn := n.healthOracle
	n.mu.RUnlock()
	if fn == nil {
		return PeerUnknown
	}
	return fn(addr)
}

// notifySuccessorsChanged compares the successor list against the last
// notified snapshot and invokes the listener outside the lock if it changed.
func (n *Node) notifySuccessorsChanged() {
	n.mu.Lock()
	fn := n.succListener
	if fn == nil {
		n.mu.Unlock()
		return
	}
	changed := len(n.successors) != len(n.lastNotified)
	if !changed {
		for i := range n.successors {
			if n.successors[i] != n.lastNotified[i] {
				changed = true
				break
			}
		}
	}
	if !changed {
		n.mu.Unlock()
		return
	}
	snap := make([]NodeRef, len(n.successors))
	copy(snap, n.successors)
	n.lastNotified = snap
	n.mu.Unlock()
	fn(snap)
}

// Join makes the node join the ring that bootstrap belongs to. Joining a zero
// bootstrap is a no-op (the node stays a singleton ring). The finger table is
// reset to the new successor: entries surviving from a previous membership
// may point into a ring this node is leaving behind, and a single stale
// finger is enough to route future lookups — including its own fix-finger
// refreshes — back into the old ring.
func (n *Node) Join(bootstrap NodeRef) error {
	if bootstrap.IsZero() || bootstrap.Addr == n.self.Addr {
		return nil
	}
	succ, err := n.rpc.FindSuccessor(bootstrap, n.self.ID)
	if err != nil {
		return fmt.Errorf("join via %s: %w", bootstrap.Addr, err)
	}
	if succ.Addr == n.self.Addr {
		// The ring still lists this address (a restart before the old
		// membership was detected dead); resolve our slot's true successor
		// without routing through our own reset state.
		return n.rejoinOwnSlot(bootstrap)
	}
	n.adopt(succ)
	return nil
}

// rejoinOwnSlot resolves this node's successor when the ring still lists the
// node's own address (a crash-restart that beat failure detection). Routing a
// lookup is useless — it lands back on our reset state — but the member just
// after our slot still names us as its predecessor, so a backward walk over
// predecessor pointers finds it without touching a finger table. If the walk
// is cut short (a cleared predecessor mid-ring), the last member reached is
// adopted instead: any in-ring successor pointer converges to the true one
// through Stabilize's predecessor-chain absorption.
func (n *Node) rejoinOwnSlot(contact NodeRef) error {
	p := contact
	visited := map[string]bool{contact.Addr: true}
	for i := 0; i < maxChainHops; i++ {
		q, err := n.rpc.Predecessor(p)
		if err != nil || q.IsZero() || q.Addr == p.Addr {
			break
		}
		if q.Addr == n.self.Addr {
			// p's predecessor is us: p is our slot's successor.
			n.adopt(p)
			return nil
		}
		if visited[q.Addr] {
			// Lapped the ring without finding a member naming us as
			// predecessor (our death was already absorbed): stop — the
			// fallback adoption below still lands inside the ring.
			break
		}
		visited[q.Addr] = true
		p = q
	}
	if p.Addr == n.self.Addr || p.Addr == "" {
		return fmt.Errorf("rejoin own slot via %s: no successor found", contact.Addr)
	}
	n.adopt(p)
	return nil
}

// maxChainHops bounds a JoinChain successor walk (a ring cannot meaningfully
// exceed this membership in-process).
const maxChainHops = 1 << 20

// JoinChain joins the ring bootstrap belongs to by walking its successor
// pointers until it finds the arc covering this node's identifier, then
// adopting that arc's endpoint as successor. The walk costs O(ring) hops
// where Join costs O(log ring), but it cannot be diverted: successor chains
// stay inside the contact's ring no matter how polluted finger tables are,
// which makes JoinChain the correct reintegration path after a partition has
// split the overlay into parallel self-consistent rings (Zave's analysis of
// Chord correctness — membership operations must not trust fingers).
func (n *Node) JoinChain(bootstrap NodeRef) error {
	if bootstrap.IsZero() || bootstrap.Addr == n.self.Addr {
		return nil
	}
	cur := bootstrap
	for i := 0; i < maxChainHops; i++ {
		// A couple of per-hop retries ride out transient message loss (one
		// lost frame must not abort a walk hundreds of hops long); a hop
		// onto a genuinely dead node still fails fast.
		var next NodeRef
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if next, err = n.rpc.Successor(cur); err == nil {
				break
			}
		}
		if err != nil {
			return fmt.Errorf("join chain via %s: %w", cur.Addr, err)
		}
		if next.IsZero() {
			return fmt.Errorf("join chain via %s: chain broke at %s", bootstrap.Addr, cur.Addr)
		}
		if next.Addr == n.self.Addr {
			// The ring still lists this address (restart before the old
			// membership aged out): resolve our slot's successor by the
			// predecessor walk, which stays inside cur's ring.
			return n.rejoinOwnSlot(cur)
		}
		if Between(cur.ID, next.ID, n.self.ID) || next.Addr == bootstrap.Addr {
			// Our identifier falls on the (cur, next] arc — next is our
			// successor. A full wrap back to the bootstrap without a match
			// can only mean an inconsistent walk snapshot; adopting the
			// bootstrap's successor is still inside its ring and the next
			// stabilization round tightens it.
			n.adopt(next)
			return nil
		}
		cur = next
	}
	return fmt.Errorf("join chain via %s: no arc found in %d hops", bootstrap.Addr, maxChainHops)
}

// adopt installs succ as the sole successor, clears the predecessor and
// resets the finger table for a fresh membership.
func (n *Node) adopt(succ NodeRef) {
	n.mu.Lock()
	n.predecessor = NodeRef{}
	n.successors = n.successors[:1]
	n.successors[0] = succ
	for i := range n.fingers {
		n.fingers[i] = succ
	}
	n.mu.Unlock()
	n.notifySuccessorsChanged()
}

// FindSuccessor resolves the successor of id, forwarding through the finger
// table as needed. It is both the local lookup entry point and the handler
// for remote FindSuccessor RPCs.
func (n *Node) FindSuccessor(id ID) (NodeRef, error) {
	n.mu.RLock()
	succ := n.successors[0]
	self := n.self
	n.mu.RUnlock()

	if Between(self.ID, succ.ID, id) {
		return succ, nil
	}
	next := n.closestPrecedingNode(id)
	if next.Addr == self.Addr {
		return succ, nil
	}
	res, err := n.rpc.FindSuccessor(next, id)
	if err != nil {
		// Fall back to the successor chain when a finger is stale.
		if succ.Addr != self.Addr {
			return n.rpc.FindSuccessor(succ, id)
		}
		return NodeRef{}, err
	}
	return res, nil
}

// closestPrecedingNode returns the finger most closely preceding id.
func (n *Node) closestPrecedingNode(id ID) NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for i := len(n.fingers) - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f.IsZero() {
			continue
		}
		if BetweenOpen(n.self.ID, id, f.ID) {
			return f
		}
	}
	return n.self
}

// stabilizeWalkLimit bounds how many interposed nodes one Stabilize round
// adopts while walking its successor's predecessor chain back toward itself.
const stabilizeWalkLimit = 32

// Stabilize runs one round of Chord's stabilization: it learns about nodes
// that have joined between itself and its successor, repairs a failed
// successor using the successor list, and notifies the successor of its own
// existence.
//
// Unlike textbook chord (which adopts succ.predecessor once, converging one
// hop per round), the predecessor chain is walked back toward this node up to
// stabilizeWalkLimit steps, so a whole batch of nodes that joined — or
// rejoined after a crash or partition — between us and our successor is
// absorbed in a single round. Mass-churn recovery time drops from O(gap)
// rounds to O(gap / limit).
func (n *Node) Stabilize() error {
	defer n.notifySuccessorsChanged()
	n.mu.RLock()
	succ := n.successors[0]
	self := n.self
	n.mu.RUnlock()

	if succ.Addr == self.Addr {
		// Singleton with a live notifier: recover a *forward* edge by asking
		// the predecessor — the one contact we still have — to look up our
		// true successor in its ring. Adopting the predecessor itself (the
		// textbook shortcut) plants a backward edge when the node decayed to
		// a singleton mid-ring, and backward edges corrupt the ring beyond
		// what stabilization can repair: the wrongly-bypassed nodes and
		// their notify targets lock into stable wrong successor/predecessor
		// pairs. The lookup degenerates to the predecessor only in the
		// two-node ring, where that is the correct successor.
		if pred := n.PredecessorRef(); !pred.IsZero() && pred.Addr != self.Addr {
			target, err := n.rpc.FindSuccessor(pred, n.space.Add(self.ID, 1))
			switch {
			case err != nil || target.IsZero():
				// Unreachable or confused predecessor: stay singleton; the
				// overlay re-joins through its repair contact.
			case target.Addr == self.Addr:
				// The predecessor's ring still lists us as its successor: a
				// two-node ring, close it.
				n.mu.Lock()
				n.successors[0] = pred
				n.mu.Unlock()
				succ = pred
			default:
				n.mu.Lock()
				n.successors[0] = target
				n.mu.Unlock()
				succ = target
			}
		}
	} else {
		if err := n.rpc.Ping(succ); err != nil {
			if n.peerHealth(succ.Addr) == PeerSuspect {
				// Slow, not dead: keep the successor and let this round end;
				// the next ping runs with an escalated deadline.
				return nil
			}
			n.dropSuccessor(succ)
			return nil
		}
		for i := 0; i < stabilizeWalkLimit; i++ {
			pred, err := n.rpc.Predecessor(succ)
			if err != nil || pred.IsZero() || !BetweenOpen(self.ID, succ.ID, pred.ID) {
				break
			}
			if n.peerHealth(pred.Addr) == PeerDead {
				// The candidate can apparently reach our successor (it
				// notified it) but our own calls to it keep failing — the
				// asymmetric gray case. Adopting it would wedge the ring on
				// a successor we cannot talk to; keep the current one.
				break
			}
			n.mu.Lock()
			n.successors[0] = pred
			n.mu.Unlock()
			succ = pred
		}
	}

	if succ.Addr != self.Addr {
		if err := n.rpc.Notify(succ, self); err != nil {
			if n.peerHealth(succ.Addr) == PeerSuspect {
				return nil
			}
			n.dropSuccessor(succ)
			return nil
		}
	}
	n.refreshSuccessorList()
	return nil
}

// dropSuccessor removes a failed successor, promoting the next entry in the
// successor list (or falling back to self for a singleton ring).
func (n *Node) dropSuccessor(failed NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.successors) > 0 && n.successors[0].Addr == failed.Addr {
		n.successors = n.successors[1:]
	}
	if len(n.successors) == 0 {
		n.successors = append(n.successors, n.self)
	}
}

// refreshSuccessorList rebuilds the successor list by walking successor
// pointers.
func (n *Node) refreshSuccessorList() {
	n.mu.RLock()
	self := n.self
	cur := n.successors[0]
	n.mu.RUnlock()

	list := make([]NodeRef, 0, SuccessorListLen)
	list = append(list, cur)
	for len(list) < SuccessorListLen && cur.Addr != self.Addr {
		next, err := n.rpc.FindSuccessor(cur, n.space.Add(cur.ID, 1))
		if err != nil || next.IsZero() || next.Addr == cur.Addr {
			break
		}
		list = append(list, next)
		cur = next
	}
	n.mu.Lock()
	n.successors = list
	n.mu.Unlock()
}

// Notify handles a remote node's claim to be our predecessor.
func (n *Node) Notify(candidate NodeRef) {
	if n.peerHealth(candidate.Addr) == PeerDead {
		// The candidate reached us, but our calls to it keep failing
		// (asymmetric partition). Installing it as predecessor would
		// advertise it to our other neighbors through their stabilize
		// walks and poison the ring with an address only one direction
		// can use. Ignore the claim until our own calls recover.
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.predecessor.IsZero() || BetweenOpen(n.predecessor.ID, n.self.ID, candidate.ID) {
		n.predecessor = candidate
	}
}

// CheckPredecessor clears the predecessor pointer if it no longer responds.
func (n *Node) CheckPredecessor() {
	pred := n.PredecessorRef()
	if pred.IsZero() || pred.Addr == n.self.Addr {
		return
	}
	if err := n.rpc.Ping(pred); err != nil {
		if n.peerHealth(pred.Addr) == PeerSuspect {
			// Slow, not dead: keep the predecessor (clearing it would make
			// OwnerOf claim ownership of the suspect's arc).
			return
		}
		n.mu.Lock()
		if n.predecessor.Addr == pred.Addr {
			n.predecessor = NodeRef{}
		}
		n.mu.Unlock()
	}
}

// FixFingers refreshes one finger-table entry per call, cycling through the
// table (Chord's fix_fingers).
func (n *Node) FixFingers() error {
	n.mu.Lock()
	i := n.nextFinger
	n.nextFinger = (n.nextFinger + 1) % len(n.fingers)
	start := n.space.Add(n.self.ID, uint64(1)<<uint(i))
	n.mu.Unlock()

	succ, err := n.FindSuccessor(start)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.fingers[i] = succ
	n.mu.Unlock()
	return nil
}

// FixAllFingers refreshes the whole finger table (useful in tests and right
// after join).
func (n *Node) FixAllFingers() error {
	for i := 0; i < n.space.Bits; i++ {
		if err := n.FixFingers(); err != nil {
			return err
		}
	}
	return nil
}

// OwnerOf reports whether this node currently owns hash point id, i.e. id
// lies in (predecessor, self].
func (n *Node) OwnerOf(id ID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.predecessor.IsZero() {
		// Without a predecessor we can only be sure for our own point.
		return id == n.self.ID || n.successors[0].Addr == n.self.Addr
	}
	return Between(n.predecessor.ID, n.self.ID, id)
}
