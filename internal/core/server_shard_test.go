package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clash/internal/bitkey"
)

// errString normalises errors for cross-implementation comparison.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// randGroup builds a deterministic random group of depth 1..maxDepth.
func randGroup(rng *rand.Rand, maxDepth int) bitkey.Group {
	depth := 1 + rng.Intn(maxDepth)
	v := rng.Uint64() & ((1 << uint(depth)) - 1)
	return bitkey.NewGroup(bitkey.MustNew(v, depth))
}

// randKey builds a deterministic random full-width key.
func randKey(rng *rand.Rand, keyBits int) bitkey.Key {
	return bitkey.MustNew(rng.Uint64()&((1<<uint(keyBits))-1), keyBits)
}

// parityMap is a pure MapFunc both implementations share: the target depends
// only on the virtual key, so identical op sequences stay identical.
func parityMap(self ServerID) MapFunc {
	return func(k bitkey.Key) (ServerID, error) {
		switch k.Value % 4 {
		case 0:
			return self, nil
		default:
			return ServerID(fmt.Sprintf("peer%d", k.Value%3)), nil
		}
	}
}

// TestServerShardParityProperty drives the sharded Server and the retained
// single-lock LegacyServer through identical randomized sequences of splits,
// merges, transfers, restores, releases, load reports and publishes, and
// requires every return value and every observable table view to match. It
// covers key widths on both sides of the shard striping threshold (keyBits <
// serverShardBits collapses to the shallow stripe).
func TestServerShardParityProperty(t *testing.T) {
	for _, keyBits := range []int{3, 8, 14} {
		for _, seed := range []int64{1, 2, 7, 42} {
			t.Run(fmt.Sprintf("bits=%d/seed=%d", keyBits, seed), func(t *testing.T) {
				runShardParity(t, keyBits, seed)
			})
		}
	}
}

func runShardParity(t *testing.T, keyBits int, seed int64) {
	t.Helper()
	const self = ServerID("s1")
	sharded := mustServer(t, self, keyBits)
	legacy, err := NewLegacyServer(self, keyBits)
	if err != nil {
		t.Fatalf("NewLegacyServer: %v", err)
	}
	mapFn := parityMap(self)
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	peers := []ServerID{self, "peer0", "peer1", "peer2"}

	// Start from the same two roots covering the key space.
	for _, root := range []string{"0*", "1*"} {
		g := bitkey.MustParseGroup(root)
		if e1, e2 := sharded.Bootstrap(g), legacy.Bootstrap(g); errString(e1) != errString(e2) {
			t.Fatalf("bootstrap diverged: %v vs %v", e1, e2)
		}
	}

	checkState := func(step int) {
		t.Helper()
		if !reflect.DeepEqual(sharded.Entries(), legacy.Entries()) {
			t.Fatalf("step %d: Entries diverged\nsharded: %+v\nlegacy:  %+v", step, sharded.Entries(), legacy.Entries())
		}
		if !reflect.DeepEqual(sharded.ActiveGroups(), legacy.ActiveGroups()) {
			t.Fatalf("step %d: ActiveGroups diverged", step)
		}
		if !reflect.DeepEqual(sharded.Counters(), legacy.Counters()) {
			t.Fatalf("step %d: Counters diverged: %+v vs %+v", step, sharded.Counters(), legacy.Counters())
		}
		if e1, e2 := sharded.Validate(), legacy.Validate(); errString(e1) != errString(e2) {
			t.Fatalf("step %d: Validate diverged: %v vs %v", step, e1, e2)
		}
		if !reflect.DeepEqual(sharded.SnapshotActive(), legacy.SnapshotActive()) {
			t.Fatalf("step %d: SnapshotActive diverged", step)
		}
		if !reflect.DeepEqual(sharded.LoadReports(), legacy.LoadReports()) {
			t.Fatalf("step %d: LoadReports diverged", step)
		}
		if !reflect.DeepEqual(sharded.GroupLoads(), legacy.GroupLoads()) {
			t.Fatalf("step %d: GroupLoads diverged", step)
		}
		if s1, s2 := sharded.TotalLoad(), legacy.TotalLoad(); s1 != s2 {
			t.Fatalf("step %d: TotalLoad diverged: %v vs %v", step, s1, s2)
		}
		g1, l1, ok1 := sharded.HottestActiveGroup()
		g2, l2, ok2 := legacy.HottestActiveGroup()
		if ok1 != ok2 || l1 != l2 || g1.String() != g2.String() {
			t.Fatalf("step %d: HottestActiveGroup diverged", step)
		}
	}

	// activeGroups reads the (already verified identical) active set so ops
	// can target real leaves deterministically.
	activeGroups := func() []bitkey.Group { return legacy.ActiveGroups() }

	const steps = 500
	for step := 0; step < steps; step++ {
		now := base.Add(time.Duration(step) * time.Minute)
		switch op := rng.Intn(12); op {
		case 0, 1: // single publish
			k, d := randKey(rng, keyBits), rng.Intn(keyBits+2)-1 // includes invalid depths
			r1, e1 := sharded.HandleAcceptObject(k, d)
			r2, e2 := legacy.HandleAcceptObject(k, d)
			if !reflect.DeepEqual(r1, r2) || errString(e1) != errString(e2) {
				t.Fatalf("step %d: accept(%v,%d) diverged: %+v/%v vs %+v/%v", step, k, d, r1, e1, r2, e2)
			}
		case 2: // batched publish
			n := rng.Intn(9)
			keys := make([]bitkey.Key, n)
			depths := make([]int, n)
			for i := range keys {
				keys[i], depths[i] = randKey(rng, keyBits), rng.Intn(keyBits+1)
			}
			r1, e1 := sharded.HandleAcceptObjectBatch(keys, depths)
			r2, e2 := legacy.HandleAcceptObjectBatch(keys, depths)
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("step %d: batch results diverged", step)
			}
			for i := range e1 {
				if errString(e1[i]) != errString(e2[i]) {
					t.Fatalf("step %d: batch err %d diverged: %v vs %v", step, i, e1[i], e2[i])
				}
			}
		case 3: // split an active leaf
			actives := activeGroups()
			if len(actives) == 0 {
				continue
			}
			g := actives[rng.Intn(len(actives))]
			r1, e1 := sharded.ExecuteSplit(g, mapFn)
			r2, e2 := legacy.ExecuteSplit(g, mapFn)
			if !reflect.DeepEqual(r1, r2) || errString(e1) != errString(e2) {
				t.Fatalf("step %d: split(%v) diverged: %+v/%v vs %+v/%v", step, g, r1, e1, r2, e2)
			}
		case 4: // accept a transferred group
			g := randGroup(rng, keyBits)
			parent := peers[rng.Intn(len(peers))]
			epoch := uint64(rng.Intn(4))
			e1 := sharded.HandleAcceptKeyGroupEpoch(g, parent, epoch)
			e2 := legacy.HandleAcceptKeyGroupEpoch(g, parent, epoch)
			if errString(e1) != errString(e2) {
				t.Fatalf("step %d: acceptKeyGroup(%v) diverged: %v vs %v", step, g, e1, e2)
			}
		case 5: // restore from a replica snapshot
			snap := GroupSnapshot{
				Group:  randGroup(rng, keyBits),
				Parent: peers[rng.Intn(len(peers))],
				IsRoot: rng.Intn(4) == 0,
				Epoch:  uint64(rng.Intn(3)),
			}
			ok1, e1 := sharded.RestoreGroup(snap)
			ok2, e2 := legacy.RestoreGroup(snap)
			if ok1 != ok2 || errString(e1) != errString(e2) {
				t.Fatalf("step %d: restore(%v) diverged", step, snap.Group)
			}
		case 6: // release (sometimes a real active group, sometimes junk)
			g := randGroup(rng, keyBits)
			if actives := activeGroups(); len(actives) > 0 && rng.Intn(2) == 0 {
				g = actives[rng.Intn(len(actives))]
			}
			if e1, e2 := sharded.HandleRelease(g), legacy.HandleRelease(g); errString(e1) != errString(e2) {
				t.Fatalf("step %d: release(%v) diverged: %v vs %v", step, g, e1, e2)
			}
		case 7: // record a local load sample
			g := randGroup(rng, keyBits)
			if actives := activeGroups(); len(actives) > 0 && rng.Intn(3) > 0 {
				g = actives[rng.Intn(len(actives))]
			}
			load := rng.Float64()
			if e1, e2 := sharded.SetGroupLoad(g, load), legacy.SetGroupLoad(g, load); errString(e1) != errString(e2) {
				t.Fatalf("step %d: setLoad(%v) diverged", step, g)
			}
		case 8: // right-child load report (target real transferred children when possible)
			rep := LoadReport{From: peers[rng.Intn(len(peers))], To: self, Group: randGroup(rng, keyBits), Load: rng.Float64()}
			for _, e := range legacy.Entries() {
				if !e.Active && e.RightChild != NoServer && e.RightChild != self && rng.Intn(2) == 0 {
					rep.From, rep.Group = e.RightChild, e.RightChildGroup
					break
				}
			}
			if e1, e2 := sharded.HandleLoadReport(rep, now), legacy.HandleLoadReport(rep, now); errString(e1) != errString(e2) {
				t.Fatalf("step %d: loadReport(%v) diverged: %v vs %v", step, rep.Group, e1, e2)
			}
		case 9: // child re-homed
			child := randGroup(rng, keyBits)
			holder := peers[rng.Intn(len(peers))]
			for _, e := range legacy.Entries() {
				if !e.Active && e.RightChild != NoServer && rng.Intn(2) == 0 {
					child = e.RightChildGroup
					break
				}
			}
			if e1, e2 := sharded.HandleChildMoved(child, holder), legacy.HandleChildMoved(child, holder); errString(e1) != errString(e2) {
				t.Fatalf("step %d: childMoved(%v) diverged", step, child)
			}
		case 10: // consolidation planning + execution
			threshold := rng.Float64() * 2
			p1 := sharded.PlanMerges(threshold, now)
			p2 := legacy.PlanMerges(threshold, now)
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("step %d: PlanMerges diverged: %+v vs %+v", step, p1, p2)
			}
			if len(p1) > 0 {
				r1, e1 := sharded.ExecuteMerge(p1[0].Parent, now)
				r2, e2 := legacy.ExecuteMerge(p1[0].Parent, now)
				if !reflect.DeepEqual(r1, r2) || errString(e1) != errString(e2) {
					t.Fatalf("step %d: merge(%v) diverged", step, p1[0].Parent)
				}
			}
		case 11: // point lookups
			k := randKey(rng, keyBits)
			g1, ok1 := sharded.ManagesKey(k)
			g2, ok2 := legacy.ManagesKey(k)
			if ok1 != ok2 || g1.String() != g2.String() {
				t.Fatalf("step %d: ManagesKey(%v) diverged", step, k)
			}
			pm1, e1 := sharded.ProposeMerge(randGroup(rng, keyBits), now)
			pm2, e2 := legacy.ProposeMerge(pm1.Parent, now)
			_ = pm2
			_ = e2
			_ = e1
		}
		if step%25 == 0 || step == steps-1 {
			checkState(step)
		}
	}
	checkState(steps)
}

// TestServerSplitDuringPublishStorm hammers the lock-free publish path from
// several goroutines while the control plane splits, transfers, merges and
// releases groups. Run under -race this is the regression test for the RCU
// snapshot swap; the final assertions check that no publish was lost by the
// per-shard counter batching and that the table invariants held throughout.
func TestServerSplitDuringPublishStorm(t *testing.T) {
	const keyBits = 14
	s := mustServer(t, "s1", keyBits)
	for _, root := range []string{"0*", "1*"} {
		if err := s.Bootstrap(bitkey.MustParseGroup(root)); err != nil {
			t.Fatalf("bootstrap: %v", err)
		}
	}

	var published atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			keys := make([]bitkey.Key, 16)
			depths := make([]int, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					k := randKey(rng, keyBits)
					if _, err := s.HandleAcceptObject(k, rng.Intn(keyBits+1)); err != nil {
						t.Errorf("publish: %v", err)
						return
					}
					published.Add(1)
				case 1:
					for i := range keys {
						keys[i], depths[i] = randKey(rng, keyBits), rng.Intn(keyBits+1)
					}
					_, errs := s.HandleAcceptObjectBatch(keys, depths)
					for _, err := range errs {
						if err != nil {
							t.Errorf("batch publish: %v", err)
							return
						}
					}
					published.Add(int64(len(keys)))
				case 2:
					s.ManagesKey(randKey(rng, keyBits))
				}
			}
		}(int64(w) + 100)
	}

	// Control plane: keep restructuring the table while the storm runs.
	rng := rand.New(rand.NewSource(9))
	mapFn := parityMap("s1")
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 150; i++ {
		now := base.Add(time.Duration(i) * time.Minute)
		actives := s.ActiveGroups()
		if len(actives) > 0 {
			g := actives[rng.Intn(len(actives))]
			s.SetGroupLoad(g, rng.Float64())
			s.ExecuteSplit(g, mapFn) // ErrMaxDepth etc. are fine mid-storm
		}
		for _, e := range s.Entries() {
			if !e.Active && e.RightChild != NoServer && e.RightChild != "s1" {
				s.HandleLoadReport(LoadReport{From: e.RightChild, To: "s1", Group: e.RightChildGroup, Load: rng.Float64() / 4}, now)
			}
		}
		if props := s.PlanMerges(0.5, now); len(props) > 0 {
			s.ExecuteMerge(props[rng.Intn(len(props))].Parent, now)
		}
		if rng.Intn(5) == 0 {
			s.HandleAcceptKeyGroupEpoch(randGroup(rng, keyBits), "peer1", uint64(rng.Intn(3)))
		}
		if rng.Intn(7) == 0 {
			s.RestoreGroup(GroupSnapshot{Group: randGroup(rng, keyBits), Parent: "peer2"})
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("iteration %d: invariant broken mid-storm: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if err := s.Validate(); err != nil {
		t.Fatalf("final validate: %v", err)
	}
	c := s.Counters()
	got := int64(c.ObjectsOK + c.ObjectsCorrect + c.ObjectsWrong)
	if got != published.Load() {
		t.Fatalf("publish accounting: counters saw %d objects, workers published %d", got, published.Load())
	}
	if s.SnapshotSwaps() == 0 {
		t.Fatal("no snapshot swaps recorded despite structural churn")
	}

	// ShardStats must agree with the global views it decomposes.
	stats := s.ShardStats()
	var entries, active int
	var ok, corrected, wrong uint64
	for _, st := range stats {
		entries += st.Entries
		active += st.Active
		ok += st.ObjectsOK
		corrected += st.ObjectsCorrected
		wrong += st.ObjectsWrong
	}
	if entries != len(s.Entries()) {
		t.Fatalf("ShardStats entries %d != table %d", entries, len(s.Entries()))
	}
	if active != len(s.ActiveGroups()) {
		t.Fatalf("ShardStats active %d != table %d", active, len(s.ActiveGroups()))
	}
	if int(ok) != c.ObjectsOK || int(corrected) != c.ObjectsCorrect || int(wrong) != c.ObjectsWrong {
		t.Fatalf("ShardStats counters (%d/%d/%d) != Counters (%d/%d/%d)",
			ok, corrected, wrong, c.ObjectsOK, c.ObjectsCorrect, c.ObjectsWrong)
	}
}

// TestHandleAcceptObjectZeroAlloc pins the RCU publish read path at zero
// allocations per op — the property the scaling curves depend on.
func TestHandleAcceptObjectZeroAlloc(t *testing.T) {
	s := mustServer(t, "s1", 16)
	if err := s.Bootstrap(bitkey.MustParseGroup("0*")); err != nil {
		t.Fatal(err)
	}
	if err := s.Bootstrap(bitkey.MustParseGroup("1*")); err != nil {
		t.Fatal(err)
	}
	mapFn := parityMap("s1")
	for i := 0; i < 40; i++ {
		actives := s.ActiveGroups()
		s.ExecuteSplit(actives[i%len(actives)], mapFn)
	}
	keys := make([]bitkey.Key, 64)
	rng := rand.New(rand.NewSource(5))
	for i := range keys {
		keys[i] = randKey(rng, 16)
	}
	var i int
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := s.HandleAcceptObject(keys[i%len(keys)], 3); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("HandleAcceptObject allocates %v per op, want 0", allocs)
	}
}
