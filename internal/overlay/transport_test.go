package overlay

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"clash/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		seq     uint64
		typ     byte
		payload []byte
	}{
		{1, typePing, nil},
		{2, typeAcceptObject, []byte{0x18, 0x05, 0x02, 0x01, 0x00}},
		{1 << 40, typeReplyOK, []byte{}},
		{7, typeReplyErr, []byte("boom")},
		{0, typeAcceptBatch, bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, tc := range cases {
		buf, err := appendFrame(nil, tc.seq, tc.typ, tc.payload)
		if err != nil {
			t.Fatalf("appendFrame(%d): %v", tc.seq, err)
		}
		got, err := readFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("readFrame(%d): %v", tc.seq, err)
		}
		if got.seq != tc.seq || got.typ != tc.typ {
			t.Errorf("frame = (%d, %#x), want (%d, %#x)", got.seq, got.typ, tc.seq, tc.typ)
		}
		if !bytes.Equal(got.payload, tc.payload) {
			t.Errorf("payload mismatch for seq %d: got %d bytes, want %d", tc.seq, len(got.payload), len(tc.payload))
		}
	}
}

// TestFrameGoldenBytes pins the frame layout documented in wire.go: length,
// sequence ID, version byte, type byte, payload.
func TestFrameGoldenBytes(t *testing.T) {
	buf, err := appendFrame(nil, 0x0102030405060708, typeAcceptObject, []byte{0xCA, 0xFE})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0, 0, 0, 2, // payload length
		1, 2, 3, 4, 5, 6, 7, 8, // seq
		wireVersion,
		typeAcceptObject,
		0xCA, 0xFE,
	}
	if !bytes.Equal(buf, want) {
		t.Errorf("frame bytes = %x, want %x", buf, want)
	}
}

func TestFrameRejectsBadInput(t *testing.T) {
	// Truncated header.
	if _, err := readFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("readFrame accepted truncated header")
	}
	// Unknown version is unrecoverable framing corruption.
	buf, err := appendFrame(nil, 1, typePing, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf...)
	bad[12] = 99
	if _, err := readFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("readFrame(bad version) = %v, want ErrBadFrame", err)
	}
	// Oversized payload on the write side is rejected before any I/O.
	if _, err := appendFrame(nil, 1, typePing, make([]byte, maxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("appendFrame(huge) = %v, want ErrFrameTooLarge", err)
	}
}

// TestFrameOversizeRecoverable checks the bugfix: an oversized inbound frame
// is skipped with its header intact, and the next frame on the same stream
// still parses — the connection need not die.
func TestFrameOversizeRecoverable(t *testing.T) {
	var stream bytes.Buffer
	// Hand-craft an oversized frame: huge declared length + that many bytes.
	huge := uint32(maxFrameSize + 3)
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], huge)
	binary.BigEndian.PutUint64(hdr[4:12], 42)
	hdr[12] = wireVersion
	hdr[13] = typeAcceptObject
	stream.Write(hdr[:])
	if _, err := io.CopyN(&stream, zeroReader{}, int64(huge)); err != nil {
		t.Fatal(err)
	}
	// Followed by a healthy frame.
	good, err := appendFrame(nil, 43, typePing, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	stream.Write(good)

	f, err := readFrame(&stream)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("readFrame(oversized) = %v, want ErrFrameTooLarge", err)
	}
	if f.seq != 42 || f.typ != typeAcceptObject {
		t.Errorf("oversized header = (%d, %#x), want (42, accept_object)", f.seq, f.typ)
	}
	f, err = readFrame(&stream)
	if err != nil {
		t.Fatalf("readFrame after oversized: %v", err)
	}
	if f.seq != 43 || string(f.payload) != "after" {
		t.Errorf("next frame = (%d, %q)", f.seq, f.payload)
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

func TestMemTransportCallAndFailures(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	b.SetHandler(func(msgType string, payload []byte) ([]byte, error) {
		if msgType == TypeStatus {
			return nil, fmt.Errorf("handler says no")
		}
		return append([]byte("echo:"), payload...), nil
	})

	reply, err := a.Call("b", TypePing, []byte("hi"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "echo:hi" {
		t.Errorf("reply = %q", reply)
	}
	if net.Calls(TypePing) != 1 {
		t.Errorf("Calls(ping) = %d, want 1", net.Calls(TypePing))
	}

	if _, err := a.Call("b", TypeStatus, nil); !IsRemote(err) {
		t.Errorf("remote handler error = %v, want RemoteError", err)
	}
	if _, err := a.Call("b", "not.registered", nil); !errors.Is(err, ErrBadFrame) {
		t.Errorf("unregistered type = %v, want ErrBadFrame", err)
	}
	if _, err := a.Call("missing", TypePing, nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call to unknown endpoint = %v, want ErrUnreachable", err)
	}
	net.SetDown("b", true)
	if _, err := a.Call("b", TypePing, nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call to down endpoint = %v, want ErrUnreachable", err)
	}
	net.SetDown("b", false)
	if _, err := a.Call("b", TypePing, nil); err != nil {
		t.Errorf("call after SetDown(false): %v", err)
	}

	st := a.Stats()
	if st.FramesOut == 0 || st.BytesOut == 0 {
		t.Errorf("caller stats not counted: %+v", st)
	}
	if bst := b.Stats(); bst.FramesIn == 0 {
		t.Errorf("target stats not counted: %+v", bst)
	}
}

func TestTCPTransportCall(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetHandler(func(msgType string, payload []byte) ([]byte, error) {
		switch msgType {
		case TypeStatus:
			return nil, fmt.Errorf("nope")
		default:
			return append([]byte(msgType+":"), payload...), nil
		}
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	reply, err := cli.Call(srv.Addr(), TypePing, []byte("over tcp"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != TypePing+":over tcp" {
		t.Errorf("reply = %q", reply)
	}

	// An application error must not poison the shared connection.
	if _, err := cli.Call(srv.Addr(), TypeStatus, nil); !IsRemote(err) {
		t.Errorf("remote error = %v, want RemoteError", err)
	}
	if _, err := cli.Call(srv.Addr(), TypePing, nil); err != nil {
		t.Errorf("call after remote error: %v", err)
	}

	// Concurrent callers share the multiplexed connection without corrupting
	// or cross-wiring frames.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			reply, err := cli.Call(srv.Addr(), TypePing, msg)
			if err != nil {
				errs <- err
				return
			}
			if string(reply) != TypePing+":"+string(msg) {
				errs <- fmt.Errorf("reply %q for %q", reply, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := srv.numServing(); got != 1 {
		t.Errorf("server connections = %d, want 1 (multiplexed)", got)
	}
	if st := cli.Stats(); st.Reconnects != 0 {
		t.Errorf("reconnects = %d, want 0", st.Reconnects)
	}

	if _, err := cli.Call("127.0.0.1:1", TypePing, nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("dial refused = %v, want ErrUnreachable", err)
	}
}

// TestTCPPipelining is the acceptance test for the multiplexed transport:
// 32+ concurrent Calls complete over a single TCP connection with replies
// arriving out of order. The handler holds every early request hostage until
// the last request of the wave has been received — impossible to satisfy
// with sequential request/reply exchanges on one socket, and proof that the
// demux reader matches replies by sequence ID rather than by arrival order.
func TestTCPPipelining(t *testing.T) {
	const calls = 48

	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var (
		mu      sync.Mutex
		arrived int
		release = make(chan struct{})
	)
	srv.SetHandler(func(msgType string, payload []byte) ([]byte, error) {
		mu.Lock()
		arrived++
		if arrived == calls {
			close(release)
		}
		mu.Unlock()
		// Every request blocks until the whole wave is on the server: replies
		// can only be produced once all requests were accepted concurrently.
		select {
		case <-release:
		case <-time.After(10 * time.Second):
			return nil, fmt.Errorf("wave never completed")
		}
		return append([]byte("r:"), payload...), nil
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("c%02d", i))
			reply, err := cli.Call(srv.Addr(), TypePing, msg)
			if err != nil {
				errs <- fmt.Errorf("call %d: %w", i, err)
				return
			}
			if string(reply) != "r:"+string(msg) {
				errs <- fmt.Errorf("call %d got %q", i, reply)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := srv.numServing(); got != 1 {
		t.Errorf("server connections = %d, want exactly 1 for %d concurrent calls", got, calls)
	}
	st := cli.Stats()
	if st.Reconnects != 0 {
		t.Errorf("reconnects = %d, want 0", st.Reconnects)
	}
	if st.FramesOut < calls {
		t.Errorf("frames out = %d, want >= %d", st.FramesOut, calls)
	}
}

// TestTCPOversizedFrameKeepsConnection checks the server half of the
// oversize bugfix end to end: a hand-crafted oversized frame gets a framed
// error reply (same seq) and the connection keeps serving pipelined traffic.
func TestTCPOversizedFrameKeepsConnection(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetHandler(func(msgType string, payload []byte) ([]byte, error) {
		return []byte("pong"), nil
	})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Oversized frame: declared length over the limit, then the payload.
	huge := uint32(maxFrameSize + 1)
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], huge)
	binary.BigEndian.PutUint64(hdr[4:12], 99)
	hdr[12] = wireVersion
	hdr[13] = typePing
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := io.CopyN(conn, zeroReader{}, int64(huge)); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(conn)
	if err != nil {
		t.Fatalf("reading error reply: %v", err)
	}
	if f.seq != 99 || f.typ != typeReplyErr {
		t.Fatalf("reply = (%d, %#x), want (99, typeReplyErr)", f.seq, f.typ)
	}

	// The connection is still alive: a healthy frame gets a healthy reply.
	good, err := appendFrame(nil, 100, typePing, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(good); err != nil {
		t.Fatal(err)
	}
	f, err = readFrame(conn)
	if err != nil {
		t.Fatalf("reading reply after oversized frame: %v", err)
	}
	if f.seq != 100 || f.typ != typeReplyOK || string(f.payload) != "pong" {
		t.Errorf("reply = (%d, %#x, %q)", f.seq, f.typ, f.payload)
	}
	if st := srv.Stats(); st.OversizedDrops != 1 {
		t.Errorf("oversized drops = %d, want 1", st.OversizedDrops)
	}
}

// TestCrossTransportByteIdentity proves the in-memory and TCP transports put
// the same bytes on the wire: the handler on each transport records the raw
// payload it received for identical requests (including a batch frame), and
// the recorded bytes must match exactly. Framing itself is shared
// (appendFrame) and pinned by TestFrameGoldenBytes.
func TestCrossTransportByteIdentity(t *testing.T) {
	batch := core.AcceptBatchMsg{Objects: []core.AcceptObjectMsg{
		{KeyValue: 0b1011, KeyBits: 16, Depth: 3, Kind: core.ObjectData, Payload: []byte("p0")},
		{KeyValue: 0x7FFF, KeyBits: 16, Depth: 9, Kind: core.ObjectQuery, Payload: []byte("p1")},
	}}
	requests := []struct {
		msgType string
		payload []byte
	}{
		{TypePing, nil},
		{TypeAcceptObject, (&core.AcceptObjectMsg{KeyValue: 5, KeyBits: 8, Depth: 2, Kind: core.ObjectData}).MarshalWire(nil)},
		{TypeAcceptBatch, batch.MarshalWire(nil)},
		{TypeFindSuccessor, (&findSuccessorMsg{ID: 123456}).MarshalWire(nil)},
	}

	type recorder struct {
		mu  sync.Mutex
		got [][]byte
	}
	record := func() (Handler, *recorder) {
		r := &recorder{}
		return func(msgType string, payload []byte) ([]byte, error) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.got = append(r.got, append([]byte(nil), payload...))
			return []byte(msgType), nil
		}, r
	}

	memNet := NewMemNetwork()
	memCli := memNet.Endpoint("cli")
	memSrv := memNet.Endpoint("srv")
	memHandler, memGot := record()
	memSrv.SetHandler(memHandler)

	tcpSrv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcpSrv.Close()
	tcpHandler, tcpGot := record()
	tcpSrv.SetHandler(tcpHandler)
	tcpCli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcpCli.Close()

	for _, req := range requests {
		if _, err := memCli.Call("srv", req.msgType, req.payload); err != nil {
			t.Fatalf("mem call %s: %v", req.msgType, err)
		}
		if _, err := tcpCli.Call(tcpSrv.Addr(), req.msgType, req.payload); err != nil {
			t.Fatalf("tcp call %s: %v", req.msgType, err)
		}
	}
	memGot.mu.Lock()
	defer memGot.mu.Unlock()
	tcpGot.mu.Lock()
	defer tcpGot.mu.Unlock()
	if len(memGot.got) != len(requests) || len(tcpGot.got) != len(requests) {
		t.Fatalf("recorded %d mem / %d tcp payloads, want %d", len(memGot.got), len(tcpGot.got), len(requests))
	}
	for i := range requests {
		if !bytes.Equal(memGot.got[i], tcpGot.got[i]) {
			t.Errorf("%s: mem payload %x != tcp payload %x", requests[i].msgType, memGot.got[i], tcpGot.got[i])
		}
	}
}

func TestTCPTransportClose(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetHandler(func(string, []byte) ([]byte, error) { return []byte("ok"), nil })
	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(srv.Addr(), TypePing, nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Errorf("client Close: %v", err)
	}
	if _, err := cli.Call(srv.Addr(), TypePing, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after Close = %v, want ErrClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("server Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
