package overlay

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/core"
	"clash/internal/cq"
)

// Key-group replication and crash recovery.
//
// Every node pushes its full replicable state — active group snapshots plus
// their continuous-query state — to the first Config.ReplicationFactor live
// successors: immediately after a split, merge, transfer or CQ registration,
// once per load-check period (which repairs lost pushes), and whenever the
// chord successor list changes (so replicas follow ring churn). The push is a
// full-state replacement ordered by (incarnation, version), so a group the
// origin shed simply disappears from the replica without tombstone
// bookkeeping.
//
// Recovery runs two ways:
//
//   - Promotion: when ring maintenance detects that a replica's origin is
//     dead and this node now owns the origin's ring position (the crashed
//     node's key range collapsed onto us), the locally held replicas are
//     promoted to active groups — queries installed, ownership re-announced
//     to each group's parent via TypeChildMoved — and pushed onward to our
//     own successors.
//   - Pull: a node that crashed and restarted empty asks its successors for
//     the replica set they store under its own address (TypeRecoverKeyGroups)
//     and restores the freshest copy, covering the window where the restart
//     beats the ring's failure detection.

// replicaSet is the stored replica of one origin's key-group state.
type replicaSet struct {
	incarnation uint64
	version     uint64
	seen        time.Time // last refresh, for garbage collection
	groups      []replicaGroupRec
	loose       [][]byte // queryState records held outside the origin's engine
}

// replicationTargets returns the first ReplicationFactor distinct successors
// (excluding self) — the peers that hold this node's replicas.
func (n *Node) replicationTargets() []string {
	k := n.cfg.ReplicationFactor
	if k <= 0 {
		return nil
	}
	var out []string
	for _, s := range n.chord.Successors() {
		if s.Addr == "" || s.Addr == n.Addr() {
			continue
		}
		dup := false
		for _, t := range out {
			if t == s.Addr {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, s.Addr)
		if len(out) == k {
			break
		}
	}
	return out
}

// snapshotQueries captures (without removing) the queries stored in g with
// their subscriber addresses — the replication mirror of extractQueries.
func (n *Node) snapshotQueries(g bitkey.Group) []queryState {
	qs := n.engine.QueriesInGroup(g)
	if len(qs) == 0 {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]queryState, 0, len(qs))
	for _, q := range qs {
		data, err := q.Marshal()
		if err != nil {
			continue
		}
		out = append(out, queryState{Query: data, Subscriber: n.subscribers[q.ID]})
	}
	return out
}

// snapshotReplicaGroups builds the wire records for this node's full
// replicable state, in the table's deterministic prefix order.
func (n *Node) snapshotReplicaGroups() []replicaGroupRec {
	snaps := n.server.SnapshotActive()
	if len(snaps) == 0 {
		return nil
	}
	out := make([]replicaGroupRec, 0, len(snaps))
	for _, s := range snaps {
		rec := replicaGroupRec{
			GroupValue: s.Group.Prefix.Value,
			GroupBits:  s.Group.Prefix.Bits,
			Parent:     string(s.Parent),
			IsRoot:     s.IsRoot,
			Epoch:      s.Epoch,
		}
		for _, st := range n.snapshotQueries(s.Group) {
			rec.Queries = append(rec.Queries, st.MarshalWire(nil))
		}
		out = append(out, rec)
	}
	return out
}

// replicate pushes the node's current replica snapshot to its replication
// targets. Best effort: a lost push is repaired by the next one (every
// load-check period at the latest). An empty snapshot is pushed too — it is
// what clears a stale remote copy after this node shed its last group — but
// only once the node has ever held state or finished its recovery pull: a
// restarted node must not wipe the successors' copy of its own pre-crash
// state with the empty pushes its join triggers.
func (n *Node) replicate() { n.replicateSpan(spanRef{}) }

// replicateSpan is replicate with a trace context: when tc carries a sampled
// registration's span, the push frames carry it so every replica holder
// records a replica-push span chained under the registration's accept span.
func (n *Node) replicateSpan(tc spanRef) {
	targets := n.replicationTargets()
	if len(targets) == 0 {
		return
	}
	// Snapshot and version are assigned under one mutex: two concurrent
	// replicates (a handler's post-registration push racing the load check)
	// must not stamp the older snapshot with the newer version, or the
	// receivers would keep the stale content as authoritative.
	n.repMu.Lock()
	groups := n.snapshotReplicaGroups()
	n.mu.Lock()
	// State parked outside the table and engine would be invisible to the
	// per-group snapshot — and gone with a crash. A parked transfer is a
	// whole group in flight (released locally, not yet accepted remotely):
	// it rides as a restorable group record with its queries and epoch.
	// Orphaned query placements have no group and ride as loose records.
	for _, k := range sortedKeys(n.pending) {
		p := n.pending[k]
		rec := replicaGroupRec{
			GroupValue: p.transfer.Group.Prefix.Value,
			GroupBits:  p.transfer.Group.Prefix.Bits,
			Parent:     string(p.transfer.Parent),
			Epoch:      p.epoch,
		}
		for i := range p.queries {
			rec.Queries = append(rec.Queries, p.queries[i].MarshalWire(nil))
		}
		groups = append(groups, rec)
	}
	var loose [][]byte
	for i := range n.orphans {
		loose = append(loose, n.orphans[i].st.MarshalWire(nil))
	}
	if len(groups) == 0 && len(loose) == 0 && !n.mayPushEmpty {
		n.mu.Unlock()
		n.repMu.Unlock()
		return
	}
	if len(groups) > 0 || len(loose) > 0 {
		n.mayPushEmpty = true
	}
	n.repVersion++
	msg := replicateMsg{
		Origin:      n.Addr(),
		Incarnation: n.incarnation,
		Version:     n.repVersion,
		Groups:      groups,
		Loose:       loose,
		TraceID:     tc.TraceID,
		ParentSpan:  tc.Parent,
		Hop:         tc.Hop,
	}
	n.mu.Unlock()
	n.repMu.Unlock()
	payload := msg.MarshalWire(nil)
	for _, t := range targets {
		// A suspected (gray — slow or shedding) target gets its push on a
		// background goroutine so one wedged successor cannot stall the
		// remaining targets' pushes — or the maintenance pass driving this
		// call. Under the simulator (InlineMatchPush) everything stays inline:
		// event execution is single-threaded and timeouts cost virtual, not
		// wall, time.
		if !n.cfg.InlineMatchPush && n.susp.state(t) == chord.PeerSuspect {
			n.wg.Add(1)
			go func(addr string) {
				defer n.wg.Done()
				_, _ = n.caller.call(addr, TypeReplicateKeyGroup, payload)
			}(t)
			continue
		}
		_, _ = n.caller.call(t, TypeReplicateKeyGroup, payload)
	}
}

// handleReplicate stores a peer's replica set, replacing the previous copy
// unless the push is older than what is already held (a delayed duplicate
// from before a crash-restart or a reordered retry). A push carrying a
// sampled registration's trace context gets a replica-push span: this node
// is one hop of that publish's cross-node path.
func (n *Node) handleReplicate(payload []byte) ([]byte, error) {
	obs := n.obs.get()
	var codecStart time.Time
	if obs != nil {
		codecStart = n.cfg.Clock.Now()
	}
	var msg replicateMsg
	if err := msg.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	traced := obs != nil && msg.TraceID != 0
	var codecMicros int64
	var handlerStart time.Time
	if traced {
		handlerStart = n.cfg.Clock.Now()
		codecMicros = handlerStart.Sub(codecStart).Microseconds()
	}
	stored := n.storeReplica(&msg)
	if traced {
		n.emitSpan(obs, Span{
			TraceID:       msg.TraceID,
			SpanID:        n.nextSpanID(),
			Parent:        msg.ParentSpan,
			Hop:           msg.Hop,
			Kind:          HopReplicaPush,
			Detail:        fmt.Sprintf("origin=%s groups=%d stored=%t", msg.Origin, len(msg.Groups), stored),
			CodecMicros:   codecMicros,
			HandlerMicros: n.cfg.Clock.Now().Sub(handlerStart).Microseconds(),
		})
	}
	return nil, nil
}

// storeReplica applies one replicate push, reporting whether the set was
// stored (false: self/empty origin or stale version).
func (n *Node) storeReplica(msg *replicateMsg) bool {
	if msg.Origin == "" || msg.Origin == n.Addr() {
		return false
	}
	now := n.cfg.Clock.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, ok := n.replicas[msg.Origin]; ok {
		if msg.Incarnation < cur.incarnation ||
			(msg.Incarnation == cur.incarnation && msg.Version < cur.version) {
			cur.seen = now // stale content, but still proof the origin lives
			return false
		}
	}
	// The decoded records alias the request payload, which lives in a pooled
	// buffer the transport recycles after this handler returns; the stored
	// copy must own its bytes.
	for gi := range msg.Groups {
		qs := msg.Groups[gi].Queries
		for qi := range qs {
			qs[qi] = bytes.Clone(qs[qi])
		}
	}
	for li := range msg.Loose {
		msg.Loose[li] = bytes.Clone(msg.Loose[li])
	}
	n.replicas[msg.Origin] = &replicaSet{
		incarnation: msg.Incarnation,
		version:     msg.Version,
		seen:        now,
		groups:      msg.Groups,
		loose:       msg.Loose,
	}
	return true
}

// sortedKeys returns a map's keys in sorted order (deterministic iteration
// for the simulator).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// decodeLoose parses loose queryState records; undecodable entries are
// dropped.
func decodeLoose(raw [][]byte) []queryState {
	out := make([]queryState, 0, len(raw))
	for _, rec := range raw {
		var st queryState
		if err := st.UnmarshalWire(rec); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// handleRecoverKeyGroups returns the replica set stored for the requested
// origin (empty, version 0, when none is held).
func (n *Node) handleRecoverKeyGroups(payload []byte) ([]byte, error) {
	var req recoverMsg
	if err := req.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	reply := replicateMsg{Origin: req.Origin}
	n.mu.Lock()
	if set, ok := n.replicas[req.Origin]; ok {
		reply.Incarnation = set.incarnation
		reply.Version = set.version
		reply.Groups = set.groups
		reply.Loose = set.loose
	}
	n.mu.Unlock()
	return marshalMsg(&reply), nil
}

// restoreReplicaGroups promotes replica records to active local groups and
// returns how many new entries that installed. A record whose range is
// already served here keeps only its queries; a record conflicting with local
// split linkage hands its queries to the orphan requeue so they land on
// whichever servers cover their keys now.
func (n *Node) restoreReplicaGroups(groups []replicaGroupRec) int {
	restored := 0
	for i := range groups {
		rec := &groups[i]
		prefix, err := bitkey.New(rec.GroupValue, rec.GroupBits)
		if err != nil {
			continue
		}
		g := bitkey.NewGroup(prefix)
		states := decodeLoose(rec.Queries)
		snap := core.GroupSnapshot{
			Group:  g,
			Parent: core.ServerID(rec.Parent),
			IsRoot: rec.IsRoot,
			Epoch:  rec.Epoch,
		}
		installed, err := n.server.RestoreGroup(snap)
		switch {
		case err == nil && installed:
			n.installQueries(states)
			n.resetQueryCount(g)
			n.notifyChildMoved(g, snap.Parent, core.ServerID(n.Addr()))
			restored++
		case err == nil:
			// Already active here (another recovery path got there first);
			// merge in any queries the other path did not carry.
			n.installQueries(states)
		case errors.Is(err, core.ErrCovered):
			n.installQueries(states)
		default:
			n.orphanQueries(states)
		}
	}
	return restored
}

// recoverFromReplicas scans the stored replica origins and promotes the state
// of every origin that is dead and whose ring position this node now owns —
// the recovery half of successor-list replication. Called from ring
// maintenance (Tick) and at the start of every load check, so a crashed
// holder's groups resurface within a stabilization round or two of the ring
// detecting the failure.
func (n *Node) recoverFromReplicas() {
	if n.cfg.ReplicationFactor <= 0 {
		return
	}
	n.mu.Lock()
	if len(n.replicas) == 0 {
		n.mu.Unlock()
		return
	}
	origins := make([]string, 0, len(n.replicas))
	for o := range n.replicas {
		origins = append(origins, o)
	}
	n.mu.Unlock()
	sort.Strings(origins)

	promoted := 0
	for _, origin := range origins {
		if origin == n.Addr() {
			continue
		}
		if !n.chord.OwnerOf(n.cfg.Space.HashString(origin)) {
			continue
		}
		if n.originAlive(origin) {
			continue
		}
		n.mu.Lock()
		set := n.replicas[origin]
		delete(n.replicas, origin)
		n.mu.Unlock()
		if set == nil {
			continue
		}
		restored := n.restoreReplicaGroups(set.groups)
		if restored > 0 {
			n.emit(Event{Type: EventRecovery, Peer: origin,
				Detail: fmt.Sprintf("promoted groups=%d", restored)})
		}
		promoted += restored
		// The origin's parked query state (loose records) has no group to
		// promote under; re-place it through depth resolution.
		n.orphanQueries(decodeLoose(set.loose))
	}
	if promoted > 0 {
		n.replicate()
	}
}

// originAlive pings a replica origin. The resilient caller supplies the retry
// (ping is idempotent) that used to live here, and the suspicion tracker
// short-circuits origins already judged dead — promotion then proceeds without
// paying another timeout per origin per maintenance round.
func (n *Node) originAlive(addr string) bool {
	if n.susp.state(addr) == chord.PeerDead {
		return false
	}
	_, err := n.caller.call(addr, TypePing, nil)
	// A remote application error still proves the origin processed the call.
	return err == nil || IsRemote(err)
}

// recoverOwnState asks the node's successors for the replica set stored under
// its own address and restores the freshest copy. Run after (re)joining the
// ring: it is what lets a node that crashed and restarted empty recover its
// pre-crash groups even when the restart beats the ring's failure detection,
// so no promotion ever happened.
func (n *Node) recoverOwnState() {
	if n.cfg.ReplicationFactor <= 0 {
		return
	}
	req := recoverMsg{Origin: n.Addr()}
	payload := req.MarshalWire(nil)
	var best *replicateMsg
	allAnswered := true
	for _, t := range n.replicationTargets() {
		// The resilient caller retries lost frames on lossy links
		// (recover_keygroups is an idempotent read). A target that still
		// fails may be the sole holder of our pre-crash state, so its
		// silence keeps the empty-push guard on.
		var msg replicateMsg
		ok := false
		if raw, err := n.caller.call(t, TypeRecoverKeyGroups, payload); err == nil {
			ok = msg.UnmarshalWire(raw) == nil
		}
		if !ok {
			allAnswered = false
			continue
		}
		// The freshest (incarnation, version) wins even when its group set
		// is empty: a fresh empty set means the previous incarnation had
		// legitimately shed everything, and restoring a staler non-empty
		// copy instead would resurrect ranges now owned elsewhere. (A peer
		// holding nothing answers (0, 0) and never beats a stored set.)
		if best == nil || msg.Incarnation > best.Incarnation ||
			(msg.Incarnation == best.Incarnation && msg.Version > best.Version) {
			m := msg
			best = &m
		}
	}
	if allAnswered {
		// Every successor answered authoritatively: the node is past its
		// recovery window, and from here on an empty snapshot reflects
		// reality and may clear remote copies. When some successor stayed
		// silent it may hold the only copy of our pre-crash state — an "I
		// hold nothing" answer from the others proves nothing about it — so
		// the empty-push guard stays on (it lifts on our first non-empty
		// push); whatever WAS fetched is still restored below.
		n.mu.Lock()
		n.mayPushEmpty = true
		n.mu.Unlock()
	}
	if best == nil {
		return
	}
	// The stored incarnation doubles as a restart-safe floor: if the local
	// clock stepped backwards across the crash, a wall-clock incarnation
	// would be forever rejected as stale by handleReplicate — adopt one past
	// the freshest the successors have seen instead.
	n.mu.Lock()
	if best.Incarnation >= n.incarnation {
		n.incarnation = best.Incarnation + 1
		n.repVersion = 0
	}
	n.mu.Unlock()
	n.orphanQueries(decodeLoose(best.Loose))
	if restored := n.restoreReplicaGroups(best.Groups); restored > 0 {
		n.emit(Event{Type: EventRecovery, Peer: n.Addr(),
			Detail: fmt.Sprintf("restart pull groups=%d", restored)})
		n.replicate()
	}
}

// replicaTTLPeriods is how many load-check periods an unrefreshed replica set
// survives before gcReplicas may drop it.
const replicaTTLPeriods = 8

// gcReplicas drops replica sets whose origin stopped refreshing them long ago
// and whose ring position is not this node's to cover — the true new owner
// promoted its own copy; ours is a leftover from an old successor-list
// configuration. The age check reads the node's own clock, the same source
// handleReplicate stamps seen from — never a caller-supplied time, which
// tests step on a different stream.
func (n *Node) gcReplicas() {
	now := n.cfg.Clock.Now()
	ttl := time.Duration(replicaTTLPeriods) * n.cfg.LoadCheckInterval
	n.mu.Lock()
	defer n.mu.Unlock()
	for origin, set := range n.replicas {
		if now.Sub(set.seen) > ttl && !n.chord.OwnerOf(n.cfg.Space.HashString(origin)) {
			delete(n.replicas, origin)
		}
	}
}

// orphanQuery is query state whose home group is gone (its transfer was
// dropped, or its group turned out stale during recovery); it is re-placed
// through the standard depth resolution on subsequent load checks.
type orphanQuery struct {
	st       queryState
	attempts int
}

// orphanRetryBudget bounds how many placement attempts one orphaned query
// gets before it is dropped (and counted).
const orphanRetryBudget = 32

// orphanQueries parks query state for re-placement.
func (n *Node) orphanQueries(states []queryState) {
	if len(states) == 0 {
		return
	}
	n.mu.Lock()
	for _, st := range states {
		// Parked state outlives the request that carried it; the decoded
		// Query bytes may alias a pooled payload buffer, so take ownership.
		st.Query = bytes.Clone(st.Query)
		n.orphans = append(n.orphans, orphanQuery{st: st})
	}
	n.mu.Unlock()
}

// requeueOrphans re-places parked query state on whichever servers own the
// queries' identifier keys now.
func (n *Node) requeueOrphans() {
	n.mu.Lock()
	pending := n.orphans
	n.orphans = nil
	n.mu.Unlock()
	for _, o := range pending {
		if n.placeQuery(o.st) == nil {
			continue
		}
		o.attempts++
		if o.attempts >= orphanRetryBudget {
			atomic.AddInt64(&n.orphanDrops, 1)
			continue
		}
		n.mu.Lock()
		n.orphans = append(n.orphans, o)
		n.mu.Unlock()
	}
}

// placeQuery registers one query on the server responsible for its identifier
// key, resolving the current depth with the same modified binary search a
// client uses — the node-side re-homing path for query state that lost its
// group. A nil return means the query was placed (or was undecodable and
// dropped as poison); an error means the placement should be retried.
func (n *Node) placeQuery(st queryState) error {
	q, err := cq.UnmarshalQuery(st.Query)
	if err != nil {
		return nil
	}
	ik, err := q.IdentifierKey(n.cfg.KeyBits)
	if err != nil {
		return nil
	}
	payload := st.MarshalWire(nil)
	self := core.ServerID(n.Addr())
	probe := func(d int) (core.AcceptObjectResult, error) {
		prefix, err := ik.Prefix(d)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		vk, err := bitkey.NewGroup(prefix).VirtualKey(n.cfg.KeyBits)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		owner, err := n.mapGroup(vk)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		req := core.AcceptObjectMsg{
			KeyValue: ik.Value,
			KeyBits:  ik.Bits,
			Depth:    d,
			Kind:     core.ObjectQuery,
			Payload:  payload,
		}
		var reply core.AcceptObjectReplyMsg
		if owner == self {
			reply, _, err = n.acceptOne(&req, 0)
			if err != nil {
				return core.AcceptObjectResult{}, err
			}
		} else {
			raw, err := n.caller.call(string(owner), TypeAcceptObject, req.MarshalWire(nil))
			if err != nil {
				return core.AcceptObjectResult{}, err
			}
			if err := reply.UnmarshalWire(raw); err != nil {
				return core.AcceptObjectResult{}, err
			}
		}
		return decodeAccept(&reply)
	}
	_, err = core.ResolveDepth(n.cfg.KeyBits, 0, core.SearchBinary, probe)
	return err
}
