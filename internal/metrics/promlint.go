package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus validates a Prometheus text-format exposition the way
// promtool's check would, without the dependency: HELP/TYPE comment syntax,
// metric and label name grammar, sample value parsing, every sample belonging
// to a declared family, counters non-negative, and histogram families
// internally consistent (buckets cumulative over increasing le, a +Inf
// bucket present and equal to _count). It returns every problem found, nil
// when the input is clean. The CI hub smoke test runs it over a live
// /metrics scrape.
func LintPrometheus(r io.Reader) []error {
	var errs []error
	types := make(map[string]string) // family → type
	helped := make(map[string]bool)  // family → HELP seen
	type histSeries struct {         // one histogram child across its lines
		buckets map[float64]float64 // le → cumulative count
		sum     float64
		count   float64
		hasSum  bool
		hasCnt  bool
	}
	hists := make(map[string]*histSeries) // family + "\xff" + non-le labels

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...)))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validName(name, true) {
				fail("invalid metric name %q in %s line", name, fields[1])
				continue
			}
			switch fields[1] {
			case "HELP":
				if helped[name] {
					fail("duplicate HELP for %s", name)
				}
				helped[name] = true
			case "TYPE":
				if len(fields) != 4 {
					fail("TYPE line for %s missing type", name)
					continue
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					fail("unknown type %q for %s", fields[3], name)
					continue
				}
				if _, dup := types[name]; dup {
					fail("duplicate TYPE for %s", name)
				}
				types[name] = fields[3]
			}
			continue
		}

		name, labels, value, ok := parseSample(line, fail)
		if !ok {
			continue
		}
		fam, suffix := sampleFamily(name, types)
		if fam == "" {
			fail("sample %s has no TYPE declaration", name)
			continue
		}
		typ := types[fam]
		if (typ == "counter" || typ == "histogram") && (value < 0 || math.IsNaN(value)) {
			fail("%s sample of %s has invalid value %v", typ, name, value)
		}
		if typ != "histogram" {
			continue
		}
		// Track histogram children for the consistency pass.
		var le string
		nonLE := make([]string, 0, len(labels))
		for _, l := range labels {
			if l.key == "le" {
				le = l.val
				continue
			}
			nonLE = append(nonLE, l.key+"="+l.val)
		}
		sort.Strings(nonLE)
		key := fam + "\xff" + strings.Join(nonLE, "\xff")
		h := hists[key]
		if h == nil {
			h = &histSeries{buckets: make(map[float64]float64)}
			hists[key] = h
		}
		switch suffix {
		case "_bucket":
			if le == "" {
				fail("%s_bucket sample missing le label", fam)
				continue
			}
			bound, err := parseLE(le)
			if err != nil {
				fail("%s_bucket has bad le %q", fam, le)
				continue
			}
			h.buckets[bound] = value
		case "_sum":
			h.sum, h.hasSum = value, true
		case "_count":
			h.count, h.hasCnt = value, true
		default:
			fail("histogram family %s has plain sample %s", fam, name)
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %w", err))
	}

	for key, h := range hists {
		fam := key[:strings.IndexByte(key, '\xff')]
		bounds := make([]float64, 0, len(h.buckets))
		for b := range h.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := -math.MaxFloat64
		prevCount := -1.0
		hasInf := false
		for _, b := range bounds {
			c := h.buckets[b]
			if c < prevCount {
				errs = append(errs, fmt.Errorf("%s: bucket counts not cumulative (le=%v count %v < %v)", fam, b, c, prevCount))
			}
			prev, prevCount = b, c
			if math.IsInf(b, 1) {
				hasInf = true
			}
		}
		_ = prev
		if !hasInf {
			errs = append(errs, fmt.Errorf("%s: histogram missing +Inf bucket", fam))
		} else if h.hasCnt && h.buckets[math.Inf(1)] != h.count {
			errs = append(errs, fmt.Errorf("%s: +Inf bucket %v != _count %v", fam, h.buckets[math.Inf(1)], h.count))
		}
		if !h.hasCnt {
			errs = append(errs, fmt.Errorf("%s: histogram missing _count", fam))
		}
		if !h.hasSum {
			errs = append(errs, fmt.Errorf("%s: histogram missing _sum", fam))
		}
	}
	return errs
}

// labelPair is one parsed key="value".
type labelPair struct{ key, val string }

// parseSample parses `name{labels} value [timestamp]`, reporting problems
// through fail. ok is false when the line was unusable.
func parseSample(line string, fail func(string, ...any)) (name string, labels []labelPair, value float64, ok bool) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		fail("sample %q missing value", line)
		return "", nil, 0, false
	}
	name = rest[:end]
	if !validName(name, true) {
		fail("invalid metric name %q", name)
		return "", nil, 0, false
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := strings.LastIndexByte(rest, '}')
		if close < 0 {
			fail("unterminated label set in %q", line)
			return "", nil, 0, false
		}
		var lerr error
		labels, lerr = parseLabels(rest[1:close])
		if lerr != nil {
			fail("bad labels in %q: %v", line, lerr)
			return "", nil, 0, false
		}
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		fail("sample %q: want value [timestamp]", line)
		return "", nil, 0, false
	}
	v, err := parseLE(fields[0])
	if err != nil {
		fail("sample %q: bad value %q", line, fields[0])
		return "", nil, 0, false
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			fail("sample %q: bad timestamp %q", line, fields[1])
			return "", nil, 0, false
		}
	}
	return name, labels, v, true
}

// parseLabels parses the inside of a {…} label set.
func parseLabels(s string) ([]labelPair, error) {
	var out []labelPair
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("missing '=' in %q", s)
		}
		key := s[:eq]
		if !validName(key, false) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c", s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %s", key)
		}
		out = append(out, labelPair{key: key, val: val.String()})
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// parseLE parses a sample or le value, accepting the +Inf/-Inf spellings.
func parseLE(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// sampleFamily maps a sample name to its declared family: the name itself,
// or for histogram/summary suffixes the base family. suffix is "" for a
// plain sample.
func sampleFamily(name string, types map[string]string) (fam, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
			return base, suf
		}
	}
	return "", ""
}
