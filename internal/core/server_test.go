package core

import (
	"errors"
	"testing"
	"time"

	"clash/internal/bitkey"
)

// scriptedMap returns a MapFunc that maps successive virtual keys to the
// provided server IDs in order, falling back to fallback afterwards.
func scriptedMap(fallback ServerID, targets ...ServerID) MapFunc {
	i := 0
	return func(bitkey.Key) (ServerID, error) {
		if i < len(targets) {
			t := targets[i]
			i++
			return t, nil
		}
		return fallback, nil
	}
}

func mustServer(t *testing.T, id ServerID, bits int, opts ...ServerOption) *Server {
	t.Helper()
	s, err := NewServer(id, bits, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer("", 24); err == nil {
		t.Error("empty id accepted, want error")
	}
	if _, err := NewServer("s1", 0); err == nil {
		t.Error("zero key bits accepted, want error")
	}
}

func TestBootstrapAndManagesKey(t *testing.T) {
	s := mustServer(t, "s0", 7)
	if err := s.Bootstrap(bitkey.MustParseGroup("011*")); err != nil {
		t.Fatal(err)
	}
	if err := s.Bootstrap(bitkey.MustParseGroup("011*")); !errors.Is(err, ErrAlreadyManaged) {
		t.Errorf("duplicate bootstrap err = %v, want ErrAlreadyManaged", err)
	}
	if g, ok := s.ManagesKey(bitkey.MustParse("0110101")); !ok || g.String() != "011*" {
		t.Errorf("ManagesKey = %v,%v", g, ok)
	}
	if _, ok := s.ManagesKey(bitkey.MustParse("1110101")); ok {
		t.Error("key outside the root group should not be managed")
	}
	if err := s.Bootstrap(bitkey.MustParseGroup("00000000*")); !errors.Is(err, ErrDepthRange) {
		t.Errorf("over-deep bootstrap err = %v, want ErrDepthRange", err)
	}
}

// TestSplitTreeFigure1 reproduces the paper's Figure 1: starting from the
// key group "011*" on s0, successive splits place "0110*" on s0, "01111*" on
// s5, "011100*" on s12 and "011101*" on s7.
func TestSplitTreeFigure1(t *testing.T) {
	const bits = 7
	s0 := mustServer(t, "s0", bits)
	s12 := mustServer(t, "s12", bits)
	s5 := mustServer(t, "s5", bits)
	s7 := mustServer(t, "s7", bits)

	if err := s0.Bootstrap(bitkey.MustParseGroup("011*")); err != nil {
		t.Fatal(err)
	}

	// s0 overloads and splits "011*": keeps "0110*", sends "0111*" to s12.
	res, err := s0.ExecuteSplit(bitkey.MustParseGroup("011*"), scriptedMap("s12"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transfers) != 1 || res.Transfers[0].Group.String() != "0111*" || res.Transfers[0].To != "s12" {
		t.Fatalf("unexpected transfers: %+v", res.Transfers)
	}
	if res.Kept.String() != "0110*" {
		t.Fatalf("kept %v, want 0110*", res.Kept)
	}
	if err := s12.HandleAcceptKeyGroup(res.Transfers[0].Group, res.Transfers[0].Parent); err != nil {
		t.Fatal(err)
	}

	// s12 splits "0111*": keeps "01110*", sends "01111*" to s5.
	res, err = s12.ExecuteSplit(bitkey.MustParseGroup("0111*"), scriptedMap("s5"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s5.HandleAcceptKeyGroup(res.Transfers[0].Group, res.Transfers[0].Parent); err != nil {
		t.Fatal(err)
	}
	if res.Transfers[0].Group.String() != "01111*" {
		t.Fatalf("transfer %v, want 01111*", res.Transfers[0].Group)
	}

	// s12 splits "01110*": keeps "011100*", sends "011101*" to s7.
	res, err = s12.ExecuteSplit(bitkey.MustParseGroup("01110*"), scriptedMap("s7"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s7.HandleAcceptKeyGroup(res.Transfers[0].Group, res.Transfers[0].Parent); err != nil {
		t.Fatal(err)
	}

	wantActive := map[*Server][]string{
		s0:  {"0110*"},
		s12: {"011100*"},
		s5:  {"01111*"},
		s7:  {"011101*"},
	}
	for srv, want := range wantActive {
		got := srv.ActiveGroups()
		if len(got) != len(want) {
			t.Fatalf("%s active groups = %v, want %v", srv.ID(), got, want)
		}
		for i := range want {
			if got[i].String() != want[i] {
				t.Errorf("%s active[%d] = %v, want %v", srv.ID(), i, got[i], want[i])
			}
		}
		if err := srv.Validate(); err != nil {
			t.Errorf("%s invariant violated: %v", srv.ID(), err)
		}
	}

	// Every 7-bit key with prefix 011 must be managed by exactly one of the
	// four servers.
	servers := []*Server{s0, s12, s5, s7}
	for v := uint64(0); v < 1<<bits; v++ {
		k := bitkey.MustNew(v, bits)
		if !bitkey.MustParseGroup("011*").Contains(k) {
			continue
		}
		owners := 0
		for _, srv := range servers {
			if _, ok := srv.ManagesKey(k); ok {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %v managed by %d servers, want 1", k, owners)
		}
	}
}

// TestServerTableFigure2 reproduces the paper's Figure 2 Server Work Table
// for the hypothetical server s25 and exercises the three ACCEPT_OBJECT
// cases described in §5.
func TestServerTableFigure2(t *testing.T) {
	const bits = 7
	s25 := mustServer(t, "s25", bits)
	if err := s25.Bootstrap(bitkey.MustParseGroup("011*")); err != nil {
		t.Fatal(err)
	}
	// Entry 2: "01011*" was accepted from parent s22.
	if err := s25.HandleAcceptKeyGroup(bitkey.MustParseGroup("01011*"), "s22"); err != nil {
		t.Fatal(err)
	}
	// Row 1: splitting "011*" sent "0111*" to s45.
	if _, err := s25.ExecuteSplit(bitkey.MustParseGroup("011*"), scriptedMap("s45")); err != nil {
		t.Fatal(err)
	}
	// Row 4: splitting "0110*" sent "0111 0*"... sent "01101*" to s11.
	if _, err := s25.ExecuteSplit(bitkey.MustParseGroup("0110*"), scriptedMap("s11")); err != nil {
		t.Fatal(err)
	}
	// Row 2→3: splitting "01011*" sent "010111*" to s26.
	if _, err := s25.ExecuteSplit(bitkey.MustParseGroup("01011*"), scriptedMap("s26")); err != nil {
		t.Fatal(err)
	}

	type row struct {
		group      string
		depth      int
		parentSelf bool
		parent     ServerID
		rightChild ServerID
		active     bool
		root       bool
	}
	want := []row{
		{"011*", 3, false, NoServer, "s45", false, true},
		{"0110*", 4, true, "s25", "s11", false, false},
		{"01011*", 5, false, "s22", "s26", false, false},
		{"01100*", 5, true, "s25", NoServer, true, false},
		{"010110*", 6, true, "s25", NoServer, true, false},
	}
	got := s25.Entries()
	if len(got) != len(want) {
		t.Fatalf("table has %d rows, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		g := got[i]
		if g.Group.String() != w.group || g.Depth() != w.depth {
			t.Errorf("row %d group/depth = %s/%d, want %s/%d", i, g.Group.String(), g.Depth(), w.group, w.depth)
		}
		if g.Active != w.active {
			t.Errorf("row %d (%s) active = %v, want %v", i, w.group, g.Active, w.active)
		}
		if g.IsRoot != w.root {
			t.Errorf("row %d (%s) root = %v, want %v", i, w.group, g.IsRoot, w.root)
		}
		if w.root {
			if g.Parent != NoServer {
				t.Errorf("row %d (%s) parent = %v, want root (-1)", i, w.group, g.Parent)
			}
		} else if g.ParentIsSelf != w.parentSelf || (!w.parentSelf && g.Parent != w.parent) {
			t.Errorf("row %d (%s) parent = %v/self=%v, want %v/self=%v",
				i, w.group, g.Parent, g.ParentIsSelf, w.parent, w.parentSelf)
		}
		if g.RightChild != w.rightChild {
			t.Errorf("row %d (%s) right child = %v, want %v", i, w.group, g.RightChild, w.rightChild)
		}
	}

	// Case (a): right depth — key "0110001" with d=5 → OK.
	resA, err := s25.HandleAcceptObject(bitkey.MustParse("0110001"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Status != StatusOK || resA.CorrectDepth != 5 || resA.Group.String() != "01100*" {
		t.Errorf("case (a) = %+v, want OK at depth 5 in 01100*", resA)
	}

	// Case (b): wrong depth, right server — key "0110001" with d=7 → OK with
	// corrected depth 5.
	resB, err := s25.HandleAcceptObject(bitkey.MustParse("0110001"), 7)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Status != StatusOKCorrected || resB.CorrectDepth != 5 {
		t.Errorf("case (b) = %+v, want OK_CORRECTED depth 5", resB)
	}

	// Case (c): wrong server — key "0101010" with d=6 → INCORRECT_DEPTH with
	// dmin = 4.
	resC, err := s25.HandleAcceptObject(bitkey.MustParse("0101010"), 6)
	if err != nil {
		t.Fatal(err)
	}
	if resC.Status != StatusIncorrectDepth || resC.DMin != 4 {
		t.Errorf("case (c) = %+v, want INCORRECT_DEPTH dmin 4", resC)
	}

	c := s25.Counters()
	if c.ObjectsOK != 1 || c.ObjectsCorrect != 1 || c.ObjectsWrong != 1 || c.Splits != 3 {
		t.Errorf("counters = %+v", c)
	}
}

func TestHandleAcceptObjectValidation(t *testing.T) {
	s := mustServer(t, "s1", 7)
	if _, err := s.HandleAcceptObject(bitkey.MustParse("01101"), 3); !errors.Is(err, ErrBadKey) {
		t.Errorf("short key err = %v, want ErrBadKey", err)
	}
	if _, err := s.HandleAcceptObject(bitkey.MustParse("0110101"), 9); !errors.Is(err, ErrDepthRange) {
		t.Errorf("bad depth err = %v, want ErrDepthRange", err)
	}
}

func TestExecuteSplitErrors(t *testing.T) {
	s := mustServer(t, "s1", 7)
	g := bitkey.MustParseGroup("011*")
	if _, err := s.ExecuteSplit(g, scriptedMap("s2")); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("split unknown group err = %v, want ErrUnknownGroup", err)
	}
	if err := s.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecuteSplit(g, nil); err == nil {
		t.Error("nil MapFunc accepted, want error")
	}
	if _, err := s.ExecuteSplit(g, scriptedMap("s2")); err != nil {
		t.Fatal(err)
	}
	// The group is no longer active once split.
	if _, err := s.ExecuteSplit(g, scriptedMap("s2")); !errors.Is(err, ErrNotActive) {
		t.Errorf("re-split err = %v, want ErrNotActive", err)
	}
}

func TestExecuteSplitRetriesWhenMappedToSelf(t *testing.T) {
	s := mustServer(t, "s1", 7)
	g := bitkey.MustParseGroup("011*")
	if err := s.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	// First two right children map back to s1, the third goes to s9.
	res, err := s.ExecuteSplit(g, scriptedMap("s9", "s1", "s1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 2 {
		t.Errorf("retries = %d, want 2", res.Retries)
	}
	if len(res.Transfers) != 1 || res.Transfers[0].To != "s9" {
		t.Fatalf("transfers = %+v, want one transfer to s9", res.Transfers)
	}
	// s1 keeps everything except the transferred group; all keys in 011* are
	// still covered exactly once between s1's active groups and the transfer.
	if res.Transfers[0].Group.String() != "011111*" {
		t.Errorf("transferred group = %v, want 011111*", res.Transfers[0].Group)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	active := s.ActiveGroups()
	want := map[string]bool{"0110*": true, "01110*": true, "011110*": true}
	if len(active) != len(want) {
		t.Fatalf("active groups = %v", active)
	}
	for _, g := range active {
		if !want[g.String()] {
			t.Errorf("unexpected active group %v", g)
		}
	}
}

func TestExecuteSplitMaxDepth(t *testing.T) {
	s := mustServer(t, "s1", 3)
	g := bitkey.MustParseGroup("011*")
	if err := s.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecuteSplit(g, scriptedMap("s2")); !errors.Is(err, ErrMaxDepth) {
		t.Errorf("split at max depth err = %v, want ErrMaxDepth", err)
	}
}

func TestExecuteSplitExhausted(t *testing.T) {
	s := mustServer(t, "s1", 24, WithMaxSplitRetries(3))
	g := bitkey.MustParseGroup("0*")
	if err := s.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	selfOnly := func(bitkey.Key) (ServerID, error) { return "s1", nil }
	if _, err := s.ExecuteSplit(g, selfOnly); !errors.Is(err, ErrSplitExhausted) {
		t.Errorf("err = %v, want ErrSplitExhausted", err)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestHandleAcceptKeyGroup(t *testing.T) {
	s := mustServer(t, "s2", 7)
	g := bitkey.MustParseGroup("0111*")
	if err := s.HandleAcceptKeyGroup(g, "s1"); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-delivery.
	if err := s.HandleAcceptKeyGroup(g, "s1"); err != nil {
		t.Errorf("re-delivery rejected: %v", err)
	}
	// After splitting it locally, accepting it again must not install an
	// overlapping entry: the active left child covers part of the range, so
	// the accept reports ErrCovered (the caller keeps only the query state).
	if _, err := s.ExecuteSplit(g, scriptedMap("s3")); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleAcceptKeyGroup(g, "s1"); !errors.Is(err, ErrCovered) {
		t.Errorf("accept of split group err = %v, want ErrCovered", err)
	}
	// With the left child released too (no active coverage left here), the
	// stale inactive linkage entry is what blocks the accept.
	left, _, err := g.Split()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.HandleRelease(left); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleAcceptKeyGroup(g, "s1"); !errors.Is(err, ErrAlreadyManaged) {
		t.Errorf("accept over split linkage err = %v, want ErrAlreadyManaged", err)
	}
	if err := s.HandleAcceptKeyGroup(bitkey.MustParseGroup("00000000*"), "s1"); !errors.Is(err, ErrDepthRange) {
		t.Errorf("over-deep group err = %v, want ErrDepthRange", err)
	}
}

func TestGroupLoadAccountingAndHottest(t *testing.T) {
	s := mustServer(t, "s1", 7)
	if err := s.Bootstrap(bitkey.MustParseGroup("0*")); err != nil {
		t.Fatal(err)
	}
	if err := s.Bootstrap(bitkey.MustParseGroup("10*")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetGroupLoad(bitkey.MustParseGroup("0*"), 0.3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetGroupLoad(bitkey.MustParseGroup("10*"), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetGroupLoad(bitkey.MustParseGroup("11*"), 0.1); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("SetGroupLoad unknown err = %v", err)
	}
	if got := s.TotalLoad(); got < 0.79 || got > 0.81 {
		t.Errorf("TotalLoad = %g, want 0.8", got)
	}
	g, l, ok := s.HottestActiveGroup()
	if !ok || g.String() != "10*" || l != 0.5 {
		t.Errorf("HottestActiveGroup = %v %g %v", g, l, ok)
	}
	loads := s.GroupLoads()
	if loads["0*"] != 0.3 || loads["10*"] != 0.5 {
		t.Errorf("GroupLoads = %v", loads)
	}
}

func TestLoadReportsOnlyForRemoteParents(t *testing.T) {
	parent := mustServer(t, "p", 7)
	child := mustServer(t, "c", 7)
	if err := parent.Bootstrap(bitkey.MustParseGroup("01*")); err != nil {
		t.Fatal(err)
	}
	res, err := parent.ExecuteSplit(bitkey.MustParseGroup("01*"), scriptedMap("c"))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Transfers[0]
	if err := child.HandleAcceptKeyGroup(tr.Group, tr.Parent); err != nil {
		t.Fatal(err)
	}
	if err := child.SetGroupLoad(tr.Group, 0.12); err != nil {
		t.Fatal(err)
	}

	// The child owes its parent a report; the parent (whose active group's
	// parent entry is local) owes none.
	reports := child.LoadReports()
	if len(reports) != 1 || reports[0].To != "p" || reports[0].Load != 0.12 || !reports[0].Group.Equal(tr.Group) {
		t.Fatalf("child reports = %+v", reports)
	}
	if got := parent.LoadReports(); len(got) != 0 {
		t.Errorf("parent reports = %+v, want none", got)
	}

	now := time.Unix(1000, 0)
	if err := parent.HandleLoadReport(reports[0], now); err != nil {
		t.Fatal(err)
	}
	// A report for a group the parent never split must be rejected.
	bogus := LoadReport{From: "c", To: "p", Group: bitkey.MustParseGroup("11111*"), Load: 0.5}
	if err := parent.HandleLoadReport(bogus, now); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("bogus report err = %v, want ErrUnknownGroup", err)
	}
}

func TestMergeLifecycle(t *testing.T) {
	parent := mustServer(t, "p", 7)
	child := mustServer(t, "c", 7)
	g := bitkey.MustParseGroup("01*")
	if err := parent.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	if err := parent.SetGroupLoad(g, 0.9); err != nil {
		t.Fatal(err)
	}
	res, err := parent.ExecuteSplit(g, scriptedMap("c"))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Transfers[0]
	if err := child.HandleAcceptKeyGroup(tr.Group, tr.Parent); err != nil {
		t.Fatal(err)
	}

	now := time.Unix(0, 0)
	// Loads drop: both halves are now cold.
	if err := parent.SetGroupLoad(res.Kept, 0.10); err != nil {
		t.Fatal(err)
	}
	if err := child.SetGroupLoad(tr.Group, 0.15); err != nil {
		t.Fatal(err)
	}

	// Without a child report the parent must not propose a merge.
	if props := parent.PlanMerges(0.54, now); len(props) != 0 {
		t.Fatalf("premature merge proposals: %+v", props)
	}
	for _, rep := range child.LoadReports() {
		if err := parent.HandleLoadReport(rep, now); err != nil {
			t.Fatal(err)
		}
	}
	props := parent.PlanMerges(0.54, now)
	if len(props) != 1 {
		t.Fatalf("proposals = %+v, want 1", props)
	}
	p := props[0]
	if !p.Parent.Equal(g) || p.RightHolder != "c" || p.CombinedLoad < 0.24 || p.CombinedLoad > 0.26 {
		t.Errorf("proposal = %+v", p)
	}

	// A stale report (older than the max age) must block the merge.
	later := now.Add(time.Hour)
	if props := parent.PlanMerges(0.54, later); len(props) != 0 {
		t.Errorf("stale report still produced proposals: %+v", props)
	}

	// Combined load above the threshold must block the merge.
	if err := parent.SetGroupLoad(res.Kept, 0.52); err != nil {
		t.Fatal(err)
	}
	if props := parent.PlanMerges(0.54, now); len(props) != 0 {
		t.Errorf("hot combined load still produced proposals: %+v", props)
	}
	if err := parent.SetGroupLoad(res.Kept, 0.10); err != nil {
		t.Fatal(err)
	}

	// Execute the merge: child releases, parent reclaims.
	if err := child.HandleRelease(p.RightChild); err != nil {
		t.Fatal(err)
	}
	mr, err := parent.ExecuteMerge(p.Parent, now)
	if err != nil {
		t.Fatal(err)
	}
	if !mr.Merged.Equal(g) || mr.ReclaimedFrom != "c" || !mr.ReleasedGroup.Equal(tr.Group) {
		t.Errorf("merge result = %+v", mr)
	}
	if got := parent.ActiveGroups(); len(got) != 1 || !got[0].Equal(g) {
		t.Errorf("parent active groups after merge = %v", got)
	}
	if got := child.ActiveGroups(); len(got) != 0 {
		t.Errorf("child active groups after release = %v", got)
	}
	if parent.Counters().Merges != 1 || child.Counters().GroupsReleased != 1 {
		t.Errorf("counters: parent=%+v child=%+v", parent.Counters(), child.Counters())
	}
	// Every key in 01* is again managed exactly once (by the parent).
	for v := uint64(0); v < 1<<7; v++ {
		k := bitkey.MustNew(v, 7)
		if !g.Contains(k) {
			continue
		}
		if _, ok := parent.ManagesKey(k); !ok {
			t.Fatalf("key %v unmanaged after merge", k)
		}
	}
}

func TestMergeWithLocalRightChild(t *testing.T) {
	s := mustServer(t, "s1", 7)
	g := bitkey.MustParseGroup("01*")
	if err := s.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	// The right child maps back to the same server, then the next attempt
	// leaves: table has 01* (inactive), 010* (active), 011* (inactive),
	// 0110* (active) and 0111* transferred away.
	res, err := s.ExecuteSplit(g, scriptedMap("s2", "s1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 1 {
		t.Fatalf("retries = %d, want 1", res.Retries)
	}
	now := time.Unix(0, 0)
	if err := s.SetGroupLoad(bitkey.MustParseGroup("010*"), 0.05); err != nil {
		t.Fatal(err)
	}
	if err := s.SetGroupLoad(bitkey.MustParseGroup("0110*"), 0.05); err != nil {
		t.Fatal(err)
	}
	// "011*" has a remote right child (0111* on s2) with no report, so it is
	// not mergeable; "01*" has a local right child (011*) which is inactive,
	// so it is not mergeable either. No proposals yet.
	if props := s.PlanMerges(0.54, now); len(props) != 0 {
		t.Fatalf("unexpected proposals: %+v", props)
	}
	// Deliver the remote child's report; then "011*" becomes mergeable.
	rep := LoadReport{From: "s2", To: "s1", Group: bitkey.MustParseGroup("0111*"), Load: 0.02}
	if err := s.HandleLoadReport(rep, now); err != nil {
		t.Fatal(err)
	}
	props := s.PlanMerges(0.54, now)
	if len(props) != 1 || props[0].Parent.String() != "011*" {
		t.Fatalf("proposals = %+v, want merge of 011*", props)
	}
	if _, err := s.ExecuteMerge(props[0].Parent, now); err != nil {
		t.Fatal(err)
	}
	// Now "01*" has both children local and active (010* and 011*): it
	// becomes mergeable purely from local state.
	props = s.PlanMerges(0.54, now)
	if len(props) != 1 || props[0].Parent.String() != "01*" || props[0].RightHolder != "s1" {
		t.Fatalf("proposals = %+v, want local merge of 01*", props)
	}
	mr, err := s.ExecuteMerge(props[0].Parent, now)
	if err != nil {
		t.Fatal(err)
	}
	if mr.ReclaimedFrom != "s1" {
		t.Errorf("ReclaimedFrom = %v, want s1 (local)", mr.ReclaimedFrom)
	}
	active := s.ActiveGroups()
	if len(active) != 1 || active[0].String() != "01*" {
		t.Errorf("active groups = %v, want just 01*", active)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestExecuteMergeAndReleaseErrors(t *testing.T) {
	s := mustServer(t, "s1", 7)
	now := time.Unix(0, 0)
	if _, err := s.ExecuteMerge(bitkey.MustParseGroup("01*"), now); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("merge unknown err = %v", err)
	}
	if err := s.HandleRelease(bitkey.MustParseGroup("01*")); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("release unknown err = %v", err)
	}
	if err := s.Bootstrap(bitkey.MustParseGroup("01*")); err != nil {
		t.Fatal(err)
	}
	// An active (never split) group cannot be merged.
	if _, err := s.ExecuteMerge(bitkey.MustParseGroup("01*"), now); !errors.Is(err, ErrCannotMerge) {
		t.Errorf("merge active err = %v, want ErrCannotMerge", err)
	}
	// Releasing a group that has been split further fails.
	if _, err := s.ExecuteSplit(bitkey.MustParseGroup("01*"), scriptedMap("s2")); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleRelease(bitkey.MustParseGroup("01*")); !errors.Is(err, ErrNotActive) {
		t.Errorf("release split group err = %v, want ErrNotActive", err)
	}
}

func TestHandleChildMoved(t *testing.T) {
	now := time.Unix(1000, 0)
	s := mustServer(t, "s1", 8)
	if err := s.Bootstrap(bitkey.MustParseGroup("0*")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecuteSplit(bitkey.MustParseGroup("0*"), scriptedMap("s2")); err != nil {
		t.Fatal(err)
	}
	right := bitkey.MustParseGroup("01*")
	if err := s.HandleLoadReport(LoadReport{From: "s2", To: "s1", Group: right, Load: 0.1}, now); err != nil {
		t.Fatal(err)
	}

	// Re-homing the child to s3 must switch the holder and invalidate the
	// old holder's report: s2's reports are now stale, s3's are accepted.
	if err := s.HandleChildMoved(right, "s3"); err != nil {
		t.Fatalf("HandleChildMoved: %v", err)
	}
	if err := s.HandleLoadReport(LoadReport{From: "s2", To: "s1", Group: right, Load: 0.1}, now); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("report from old holder = %v, want stale rejection", err)
	}
	if err := s.HandleLoadReport(LoadReport{From: "s3", To: "s1", Group: right, Load: 0.2}, now); err != nil {
		t.Errorf("report from new holder: %v", err)
	}
	// Consolidation now reclaims from the new holder.
	props := s.PlanMerges(0.9, now)
	if len(props) != 1 || props[0].RightHolder != "s3" {
		t.Fatalf("PlanMerges = %+v, want right holder s3", props)
	}

	// Stale notifications are rejected.
	if err := s.HandleChildMoved(bitkey.MustParseGroup("11*"), "s4"); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("unknown parent = %v, want ErrUnknownGroup", err)
	}
	if err := s.HandleChildMoved(bitkey.MustParseGroup("00*"), "s4"); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("left child = %v, want ErrUnknownGroup", err)
	}
	if err := s.HandleChildMoved(bitkey.Group{}, "s4"); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("root group = %v, want ErrUnknownGroup", err)
	}
}

func TestAcceptKeyGroupEpochIdempotent(t *testing.T) {
	s := mustServer(t, "s2", 7)
	g := bitkey.MustParseGroup("0111*")
	if err := s.HandleAcceptKeyGroupEpoch(g, "s1", 3); err != nil {
		t.Fatal(err)
	}
	// Same-epoch re-delivery (a retried transfer whose reply was lost) is a
	// no-op success.
	if err := s.HandleAcceptKeyGroupEpoch(g, "s1", 3); err != nil {
		t.Errorf("same-epoch re-delivery rejected: %v", err)
	}
	// A newer epoch updates the linkage.
	if err := s.HandleAcceptKeyGroupEpoch(g, "s9", 5); err != nil {
		t.Fatal(err)
	}
	snap, ok := s.SnapshotGroup(g)
	if !ok || snap.Parent != "s9" || snap.Epoch != 5 {
		t.Fatalf("snapshot after newer epoch = %+v, %v", snap, ok)
	}
	// A delayed duplicate of an older transfer must not regress the entry.
	if err := s.HandleAcceptKeyGroupEpoch(g, "s1", 4); err != nil {
		t.Fatal(err)
	}
	snap, _ = s.SnapshotGroup(g)
	if snap.Parent != "s9" || snap.Epoch != 5 {
		t.Errorf("older epoch regressed the entry: %+v", snap)
	}
}

func TestSnapshotRestoreGroup(t *testing.T) {
	s := mustServer(t, "s1", 7)
	g := bitkey.MustParseGroup("01*")
	if err := s.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	snaps := s.SnapshotActive()
	if len(snaps) != 1 || !snaps[0].Group.Equal(g) || !snaps[0].IsRoot {
		t.Fatalf("SnapshotActive = %+v", snaps)
	}

	// A peer restores the snapshot after s1 "crashes": fresh epoch, root
	// flag preserved, recovery counted.
	peer := mustServer(t, "s2", 7)
	installed, err := peer.RestoreGroup(snaps[0])
	if err != nil || !installed {
		t.Fatalf("RestoreGroup = %v, %v", installed, err)
	}
	got, ok := peer.SnapshotGroup(g)
	if !ok || !got.IsRoot || got.Epoch != snaps[0].Epoch+1 {
		t.Fatalf("restored snapshot = %+v, %v", got, ok)
	}
	if peer.Counters().GroupsRecovered != 1 {
		t.Errorf("GroupsRecovered = %d, want 1", peer.Counters().GroupsRecovered)
	}
	// Restoring again is a silent no-op (someone got there first).
	if installed, err := peer.RestoreGroup(snaps[0]); err != nil || installed {
		t.Errorf("second restore = %v, %v, want false, nil", installed, err)
	}
}

func TestRestoreGroupCovered(t *testing.T) {
	s := mustServer(t, "s1", 7)
	g := bitkey.MustParseGroup("01*")
	if err := s.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	// A stale replica of the parent of an active group must not resurrect
	// an overlapping range.
	parent := bitkey.MustParseGroup("0*")
	if installed, err := s.RestoreGroup(GroupSnapshot{Group: parent}); installed || !errors.Is(err, ErrCovered) {
		t.Errorf("restore over active child = %v, %v, want ErrCovered", installed, err)
	}
	// And a stale replica of a child of an active group is covered too.
	child := bitkey.MustParseGroup("011*")
	if installed, err := s.RestoreGroup(GroupSnapshot{Group: child}); installed || !errors.Is(err, ErrCovered) {
		t.Errorf("restore under active parent = %v, %v, want ErrCovered", installed, err)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}
