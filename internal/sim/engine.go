// Package sim is the deterministic discrete-event simulator for the CLASH
// overlay: a virtual clock, a priority event queue and a seeded PRNG drive
// unmodified overlay.Nodes (via the clock.Clock they are configured with) over
// a simulated transport (Net) with per-link latency, jitter, loss and
// partitions. A thousand-node overlay runs an hour of virtual protocol time
// in seconds of wall clock, and two runs with the same seed are
// bit-identical — every figure the scenario harness (Run, cmd/clashsim)
// records is reproducible.
//
// The engine is single-threaded by construction: events execute one at a time
// in (time, sequence) order, so there is no scheduling nondeterminism to
// leak into results. The simulation works at the paper's
// measurement-interval granularity — maintenance rounds, load checks,
// traffic bursts and churn are scheduled events on the virtual clock, while
// individual message exchanges execute inline at their issue instant with
// their latency sampled into statistics (see Net). Nothing in the simulated
// path reads the wall clock or sleeps.
package sim

import (
	"container/heap"
	"math/rand"
	"time"

	"clash/internal/clock"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration // virtual time since the epoch
	seq uint64        // schedule order, the deterministic tiebreak
	fn  func()
}

// eventHeap is a min-heap on (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event core: the virtual clock and the event queue.
// It is not safe for concurrent use — the whole simulation runs on one
// goroutine, which is what makes it deterministic.
type Engine struct {
	epoch time.Time
	now   time.Duration
	seq   uint64
	heap  eventHeap
	rng   *rand.Rand
}

// epoch is an arbitrary fixed instant virtual time counts from; any constant
// works, a round UTC date keeps timestamps readable in debug output.
var simEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// NewEngine creates an engine whose PRNG — the single source of randomness
// for the whole simulation — is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{epoch: simEpoch, rng: rand.New(rand.NewSource(seed))}
}

// Rand returns the engine's PRNG. All simulated randomness (link sampling,
// workload draws, churn victim selection) must come from it, in the
// deterministic single-threaded event order.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// VirtualNow returns the virtual time elapsed since the engine's epoch.
func (e *Engine) VirtualNow() time.Duration { return e.now }

// Now implements clock.Clock: the virtual instant.
func (e *Engine) Now() time.Time { return e.epoch.Add(e.now) }

// At schedules fn at the absolute virtual time t (clamped to now — the past
// is immutable).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// step executes the earliest pending event, advancing the clock to it (the
// clock never moves backward: an event scheduled in the past runs late, at
// the current instant). It reports false when the queue is empty.
func (e *Engine) step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(*event)
	if ev.at > e.now {
		e.now = ev.at
	}
	ev.fn()
	return true
}

// RunUntil executes every event scheduled at or before t (including events
// those events schedule), then advances the clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// NewTimer implements clock.Clock on virtual time.
func (e *Engine) NewTimer(d time.Duration) clock.Timer {
	t := &simTimer{ch: make(chan time.Time, 1)}
	e.After(d, func() {
		if t.stopped {
			return
		}
		t.fired = true
		select {
		case t.ch <- e.Now():
		default:
		}
	})
	return t
}

type simTimer struct {
	ch      chan time.Time
	stopped bool
	fired   bool
}

func (t *simTimer) C() <-chan time.Time { return t.ch }
func (t *simTimer) Stop() bool {
	was := !t.stopped && !t.fired
	t.stopped = true
	return was
}

// NewTicker implements clock.Clock on virtual time. Ticks that find the
// channel full are dropped (like a real ticker's), so an unread ticker does
// not grow the queue without bound — but it does reschedule itself forever
// until stopped, so scenario code drives nodes directly (Tick/LoadCheck
// events) instead of running their wall-clock maintenance loops.
func (e *Engine) NewTicker(d time.Duration) clock.Ticker {
	if d <= 0 {
		panic("sim: non-positive ticker interval")
	}
	t := &simTicker{ch: make(chan time.Time, 1)}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		select {
		case t.ch <- e.Now():
		default:
		}
		e.After(d, tick)
	}
	e.After(d, tick)
	return t
}

type simTicker struct {
	ch      chan time.Time
	stopped bool
}

func (t *simTicker) C() <-chan time.Time { return t.ch }
func (t *simTicker) Stop()               { t.stopped = true }

var _ clock.Clock = (*Engine)(nil)
