package overlay

import "encoding/json"

// Legacy JSON codec, retained as the benchmark baseline for the hand-rolled
// binary wire codec (BenchmarkWireCodec* vs BenchmarkJSONCodec*, snapshotted
// in BENCH_wire.json). PR 2's overlay serialised every protocol message with
// encoding/json; the binary codec replaced it on the live path, and these
// wrappers keep the old cost measurable so the speedup claim stays
// reproducible instead of becoming folklore.
//
// Do not use these on the wire: peers only accept the binary encoding.

// legacyJSONMarshal is the PR 2 encode path: reflection-driven encoding/json.
func legacyJSONMarshal(v any) ([]byte, error) { return json.Marshal(v) }

// legacyJSONUnmarshal is the PR 2 decode path.
func legacyJSONUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }
