package overlay

import (
	"fmt"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/core"
)

// Admin verbs: the node-internals API the control-plane hub (internal/hub)
// exposes over HTTP. Each verb is safe to call concurrently with the
// maintenance loop — they reuse the same split/merge/transfer machinery the
// load check drives.

// Drain puts the node into drain mode and runs one drain pass immediately,
// returning how many groups it moved off. While draining, every load check
// repeats the pass (instead of the DHT reconciliation) and splitting is
// suspended; the node still accepts inbound transfers — refusing them would
// make senders drop state — and re-drains whatever arrives. Drain is meant to
// precede a shutdown: as long as the node stays in the ring, peers' own
// reconciliation may hand its key ranges back.
func (n *Node) Drain() int {
	if n.draining.CompareAndSwap(false, true) {
		n.emit(Event{Type: EventDrain, Detail: "begin"})
	}
	return n.drainStep()
}

// Undrain returns the node to normal operation.
func (n *Node) Undrain() { n.draining.Store(false) }

// Draining reports whether the node is in drain mode.
func (n *Node) Draining() bool { return n.draining.Load() }

// drainStep pushes every active group off this node: to its DHT owner when
// that is another node, otherwise to the first live successor. Returns how
// many groups left.
func (n *Node) drainStep() int {
	self := core.ServerID(n.Addr())
	var fallback core.ServerID
	for _, s := range n.chord.Successors() {
		if s.Addr != "" && s.Addr != n.Addr() && n.susp.state(s.Addr) != chord.PeerDead {
			fallback = core.ServerID(s.Addr)
			break
		}
	}
	moved := 0
	for _, e := range n.server.Entries() {
		if !e.Active {
			continue
		}
		owner := fallback
		if vk, err := e.Group.VirtualKey(n.cfg.KeyBits); err == nil {
			if o, merr := n.mapGroup(vk); merr == nil && o != core.NoServer && o != self {
				owner = o
			}
		}
		if owner == core.NoServer || owner == "" || owner == self {
			continue
		}
		moved += n.transferGroup(e, owner)
	}
	if moved > 0 {
		n.emit(Event{Type: EventDrain, Detail: fmt.Sprintf("moved groups=%d", moved)})
	}
	return moved
}

// ForceSplit splits one active group regardless of load (admin verb). The
// resulting transfer is delivered like any overload split.
func (n *Node) ForceSplit(g bitkey.Group) error {
	return n.splitGroup(g)
}

// ForceMerge consolidates the children of parent regardless of load (admin
// verb): the coldness checks are skipped, but every structural precondition —
// parent inactive, left leaf local and active, a known right holder — still
// applies. The reclaim itself runs the standard RELEASE_KEYGROUP machinery;
// a transport failure parks it for retry like any consolidation.
func (n *Node) ForceMerge(parent bitkey.Group) error {
	now := n.cfg.Clock.Now()
	prop, err := n.server.ProposeMerge(parent, now)
	if err != nil {
		return err
	}
	n.reclaim(pendingReclaim{prop: prop}, now)
	return nil
}

// Rebalance runs one DHT ownership reconciliation immediately (admin verb)
// and returns how many groups were re-homed.
func (n *Node) Rebalance() int {
	if n.draining.Load() {
		return n.drainStep()
	}
	return n.reconcileOwnership()
}

// TransportStats exposes the node transport's counters for the hub's metric
// collectors.
func (n *Node) TransportStats() TransportStats { return n.tr.Stats() }

// SuspicionTable exposes the failure detector's per-peer snapshot for the
// hub's metric collectors.
func (n *Node) SuspicionTable() map[string]SuspicionStat { return n.susp.snapshot() }

// GroupLoads exposes the per-group load fractions from the last load check,
// keyed by group label, for the hub's metric collectors.
func (n *Node) GroupLoads() map[string]float64 { return n.server.GroupLoads() }
