package chord

import (
	"testing"
)

// TestSuccessorFailover kills a node's immediate successor and checks that
// the successor list repairs routing: the node promotes the next live
// successor, and lookups for hash points previously owned by the dead node
// resolve to the dead node's live successor.
func TestSuccessorFailover(t *testing.T) {
	ln, nodes := buildRing(t, 6, 32)
	ordered := ringOrder(nodes)

	// Pick a node, its successor (the victim) and the victim's successor
	// (who must inherit the victim's arc).
	var idx int
	for i, n := range ordered {
		if n.Successor().Addr == ordered[(i+1)%len(ordered)].Self().Addr {
			idx = i
			break
		}
	}
	node := ordered[idx]
	victim := ordered[(idx+1)%len(ordered)]
	heir := ordered[(idx+2)%len(ordered)]
	if node.Successor().Addr != victim.Self().Addr {
		t.Fatalf("ring not converged: successor of %s is %s, want %s",
			node.Self().Addr, node.Successor().Addr, victim.Self().Addr)
	}

	ln.SetDown(victim.Self().Addr, true)

	// Stabilization must drop the dead successor and promote the heir.
	// Stale deep successor-list entries are repaired lazily, so run the
	// full round budget before asserting on the lists.
	for r := 0; r < 3*len(nodes); r++ {
		for _, n := range nodes {
			if n == victim {
				continue
			}
			_ = n.Stabilize()
			n.CheckPredecessor()
			_ = n.FixAllFingers()
		}
	}
	if got := node.Successor().Addr; got != heir.Self().Addr {
		t.Fatalf("successor after failover = %s, want %s", got, heir.Self().Addr)
	}

	// No live node may keep the victim in its successor list.
	for _, n := range nodes {
		if n == victim {
			continue
		}
		for _, s := range n.Successors() {
			if s.Addr == victim.Self().Addr {
				t.Errorf("%s still lists dead %s in successor list %v",
					n.Self().Addr, victim.Self().Addr, n.Successors())
			}
		}
	}

	// A hash point owned by the victim must now resolve to the heir, from
	// every live node.
	victimPoint := victim.Self().ID
	for _, n := range nodes {
		if n == victim {
			continue
		}
		got, err := n.FindSuccessor(victimPoint)
		if err != nil {
			t.Fatalf("FindSuccessor from %s: %v", n.Self().Addr, err)
		}
		if got.Addr != heir.Self().Addr {
			t.Errorf("FindSuccessor(%d) from %s = %s, want heir %s",
				victimPoint, n.Self().Addr, got.Addr, heir.Self().Addr)
		}
	}

	// The ring stays fully routable: every live node resolves every live
	// node's own point to that node.
	for _, from := range nodes {
		if from == victim {
			continue
		}
		for _, target := range nodes {
			if target == victim {
				continue
			}
			got, err := from.FindSuccessor(target.Self().ID)
			if err != nil {
				t.Fatalf("FindSuccessor(%s) from %s: %v", target.Self().Addr, from.Self().Addr, err)
			}
			if got.Addr != target.Self().Addr {
				t.Errorf("FindSuccessor(%s) from %s = %s", target.Self().Addr, from.Self().Addr, got.Addr)
			}
		}
	}
}

// TestSuccessorFailoverRecovery checks that a revived node is reabsorbed into
// the ring by ordinary stabilization.
func TestSuccessorFailoverRecovery(t *testing.T) {
	ln, nodes := buildRing(t, 5, 32)
	ordered := ringOrder(nodes)
	victim := ordered[1]

	ln.SetDown(victim.Self().Addr, true)
	ln.StabilizeAll(3 * len(nodes))

	// Revive: the node re-joins through any member and stabilization heals
	// the ring back to full membership.
	ln.SetDown(victim.Self().Addr, false)
	if err := victim.Join(ordered[0].Self()); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	ln.StabilizeAll(3 * len(nodes))

	for i, n := range ordered {
		want := ordered[(i+1)%len(ordered)].Self().Addr
		if got := n.Successor().Addr; got != want {
			t.Errorf("successor of %s = %s, want %s", n.Self().Addr, got, want)
		}
	}
}
