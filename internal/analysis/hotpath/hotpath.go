// Package hotpath keeps //clash:hotpath-annotated functions allocation-lean.
//
// The publish path (ACCEPT_OBJECT, batch, route lookup, CQ match) is
// zero-alloc by construction (PR 8) but was enforced by exactly one dynamic
// test. Functions whose doc comment carries a //clash:hotpath line may not:
//
//   - call into package fmt (every fmt call boxes its operands),
//   - allocate a map (make or composite literal),
//   - box a concrete value into an interface (argument passing, assignment,
//     return, or explicit conversion).
//
// Values that are already interface-typed (stored errors, any-typed fields)
// move without allocating and are not flagged; untyped nil never boxes.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"clash/internal/analysis"
)

// Marker is the doc-comment line that opts a function into the check.
const Marker = "//clash:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid fmt calls, map allocation and interface boxing in //clash:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !marked(fd) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == Marker || strings.HasPrefix(text, Marker+" ") {
			return true
		}
	}
	return false
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, name, n)
		case *ast.CompositeLit:
			if _, isMap := pass.Info.TypeOf(n).Underlying().(*types.Map); isMap {
				pass.Reportf(n.Pos(), "hot path %s allocates a map literal", name)
			}
		case *ast.AssignStmt:
			checkAssign(pass, name, n)
		case *ast.ReturnStmt:
			checkReturn(pass, name, fd, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	// fmt.* — every call formats through ...any and boxes.
	if pkgPath, fn, ok := analysis.CalleePkgFunc(pass.Info, call); ok && pkgPath == "fmt" {
		pass.Reportf(call.Pos(), "hot path %s calls fmt.%s (formats through ...any and allocates; use strconv or preformatted values)", name, fn)
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: T(x) with T an interface boxes x.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(pass, call.Args[0], tv.Type) {
			pass.Reportf(call.Pos(), "hot path %s boxes %s into %s", name, pass.Info.TypeOf(call.Args[0]), tv.Type)
		}
		return
	}
	if tv.IsBuiltin() {
		// make(map[...]...) is the only allocating builtin we flag.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
			if _, isMap := pass.Info.TypeOf(call).Underlying().(*types.Map); isMap {
				pass.Reportf(call.Pos(), "hot path %s allocates a map with make", name)
			}
		}
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice itself, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(pass, arg, pt) {
			pass.Reportf(arg.Pos(), "hot path %s boxes %s into %s argument", name, pass.Info.TypeOf(arg), pt)
		}
	}
}

func checkAssign(pass *analysis.Pass, name string, as *ast.AssignStmt) {
	n := len(as.Rhs)
	if n != len(as.Lhs) {
		return // multi-value call unpacking: covered at the call's return site
	}
	for i := 0; i < n; i++ {
		lt := pass.Info.TypeOf(as.Lhs[i])
		if lt != nil && types.IsInterface(lt) && boxes(pass, as.Rhs[i], lt) {
			pass.Reportf(as.Rhs[i].Pos(), "hot path %s boxes %s into %s", name, pass.Info.TypeOf(as.Rhs[i]), lt)
		}
	}
}

func checkReturn(pass *analysis.Pass, name string, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	ftype := pass.Info.TypeOf(fd.Name)
	sig, ok := ftype.(*types.Signature)
	if !ok || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		rt := sig.Results().At(i).Type()
		if types.IsInterface(rt) && boxes(pass, res, rt) {
			pass.Reportf(res.Pos(), "hot path %s boxes %s into %s return", name, pass.Info.TypeOf(res), rt)
		}
	}
}

// boxes reports whether storing expr into target (an interface type) performs
// an allocating conversion: the expression's static type is concrete and the
// value is not the untyped nil.
func boxes(pass *analysis.Pass, expr ast.Expr, target types.Type) bool {
	tv, ok := pass.Info.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false // interface-to-interface moves don't allocate a box
	}
	if _, isTP := tv.Type.(*types.TypeParam); isTP {
		return false
	}
	return true
}
