package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestSetObserveAndSnapshot(t *testing.T) {
	s := NewSet()
	s.Observe("load.total", 0, 0.5)
	s.Observe("load.total", 1, 0.7)
	s.Observe("counter.splits", 1, 2)

	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series, want 2", len(snap))
	}
	// Creation order is preserved.
	if snap[0].Name != "load.total" || snap[1].Name != "counter.splits" {
		t.Errorf("order = %s, %s", snap[0].Name, snap[1].Name)
	}
	if snap[0].Len() != 2 || snap[0].Last().Value != 0.7 {
		t.Errorf("load.total = %+v", snap[0])
	}

	// Snapshot copies must not alias the live series.
	snap[0].Points[0].Value = 99
	if got := s.Get("load.total").Points[0].Value; got != 0.5 {
		t.Errorf("snapshot aliases live series: %v", got)
	}
	if s.Get("missing") != nil {
		t.Error("Get(missing) != nil")
	}

	// The snapshot is JSON-marshalable for the status endpoint.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
}

func TestSetConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"a", "b", "c"}
			for i := 0; i < 200; i++ {
				s.Observe(names[(g+i)%len(names)], float64(i), float64(g))
				_ = s.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, ts := range s.Snapshot() {
		total += ts.Len()
	}
	if total != 8*200 {
		t.Errorf("total samples = %d, want %d", total, 8*200)
	}
}

func TestSetCapsSeriesLength(t *testing.T) {
	s := NewSet()
	for i := 0; i < 3*SetMaxPoints; i++ {
		s.Observe("x", float64(i), float64(i))
	}
	ts := s.Get("x")
	if ts.Len() != SetMaxPoints {
		t.Fatalf("series has %d points, want exactly %d", ts.Len(), SetMaxPoints)
	}
	// The ring window keeps exactly the newest SetMaxPoints samples.
	if got := ts.Points[0].Value; got != float64(2*SetMaxPoints) {
		t.Errorf("oldest retained value = %v, want %v", got, 2*SetMaxPoints)
	}
	if got := ts.Last().Value; got != float64(3*SetMaxPoints-1) {
		t.Errorf("last value = %v, want %v", got, 3*SetMaxPoints-1)
	}
	// Points stay in time order after trims.
	for i := 1; i < ts.Len(); i++ {
		if ts.Points[i].Time <= ts.Points[i-1].Time {
			t.Fatalf("points out of order at %d: %v after %v", i, ts.Points[i], ts.Points[i-1])
		}
	}
}
