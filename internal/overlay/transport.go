package overlay

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Transport errors.
var (
	// ErrUnreachable is returned by Call when the remote endpoint cannot be
	// reached (connection refused, endpoint down, transport closed).
	ErrUnreachable = errors.New("overlay: endpoint unreachable")
	// ErrClosed is returned by operations on a closed transport.
	ErrClosed = errors.New("overlay: transport closed")
	// ErrDeadline is returned when a call's deadline expired before the reply
	// arrived. The request may or may not have reached the peer — a gray
	// outcome, distinct from the hard ErrUnreachable — so only idempotent
	// messages may be resent, and the next call to the peer should allow more
	// time (see suspicion.timeoutFor).
	ErrDeadline = errors.New("overlay: call deadline exceeded")
	// ErrShed is returned when the remote server shed the request under
	// overload before dispatching it. The handler never ran, so retrying with
	// backoff is safe for any message type.
	ErrShed = errors.New("overlay: request shed by overloaded server")
)

// RemoteError is an application-level error returned by the remote handler
// (as opposed to a transport failure). The remote message survives the wire;
// the remote error chain does not.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "overlay: remote error: " + e.Msg }

// IsRemote reports whether err is an application error relayed from the
// remote handler rather than a transport failure.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Handler processes one inbound request frame and returns the reply payload.
// Returning an error sends a typeReplyErr reply carrying the error text; the
// error never tears down the connection. Handlers run concurrently (the TCP
// transport dispatches pipelined requests in parallel), so they must be safe
// for concurrent use.
//
// Buffer ownership: the request payload lives in a pooled buffer owned by the
// transport and is valid only for the duration of the call — a handler that
// retains any of its bytes (directly or through a decoded message that aliases
// them) must copy them first. The returned reply transfers ownership to the
// transport, which encodes it into the reply frame and may recycle it into the
// same pool; a reply must therefore be a fresh or pool-drawn buffer, never a
// slice aliasing the request payload or any long-lived state.
type Handler func(msgType string, payload []byte) ([]byte, error)

// TransportStats is a snapshot of one transport's cumulative counters,
// surfaced through the node status endpoint and printed by clashload.
type TransportStats struct {
	// FramesIn / FramesOut count complete frames read and written (requests
	// and replies alike).
	FramesIn  uint64 `json:"framesIn"`
	FramesOut uint64 `json:"framesOut"`
	// BytesIn / BytesOut count frame bytes, headers included.
	BytesIn  uint64 `json:"bytesIn"`
	BytesOut uint64 `json:"bytesOut"`
	// InFlight is the number of outbound Calls currently awaiting a reply.
	InFlight int64 `json:"inFlight"`
	// Reconnects counts outbound connections dialed to replace a broken or
	// expired one (first dials to a peer are not reconnects).
	Reconnects uint64 `json:"reconnects"`
	// OversizedDrops counts inbound frames discarded (and answered with a
	// framed error) because their payload exceeded maxFrameSize.
	OversizedDrops uint64 `json:"oversizedDrops"`
	// Timeouts counts outbound calls that failed because their deadline
	// expired before the reply arrived (ErrDeadline).
	Timeouts uint64 `json:"timeouts"`
	// Retries counts resends performed above the transport by the resilient
	// call policy (idempotent retries and shed retries).
	Retries uint64 `json:"retries"`
	// Shed counts inbound requests this server refused under overload
	// (answered with a framed shed reply instead of dispatching).
	Shed uint64 `json:"shed"`
}

// transportStats is the shared atomic counter block embedded by both
// transports.
type transportStats struct {
	framesIn, framesOut atomic.Uint64
	bytesIn, bytesOut   atomic.Uint64
	inFlight            atomic.Int64
	reconnects          atomic.Uint64
	oversizedDrops      atomic.Uint64
	timeouts            atomic.Uint64
	retries             atomic.Uint64
	shed                atomic.Uint64
}

func (s *transportStats) countIn(bytes int) {
	s.framesIn.Add(1)
	s.bytesIn.Add(uint64(bytes))
}

func (s *transportStats) countOut(bytes int) {
	s.framesOut.Add(1)
	s.bytesOut.Add(uint64(bytes))
}

func (s *transportStats) snapshot() TransportStats {
	return TransportStats{
		FramesIn:       s.framesIn.Load(),
		FramesOut:      s.framesOut.Load(),
		BytesIn:        s.bytesIn.Load(),
		BytesOut:       s.bytesOut.Load(),
		InFlight:       s.inFlight.Load(),
		Reconnects:     s.reconnects.Load(),
		OversizedDrops: s.oversizedDrops.Load(),
		Timeouts:       s.timeouts.Load(),
		Retries:        s.retries.Load(),
		Shed:           s.shed.Load(),
	}
}

// CallOpts tunes one Call. The zero value is the transport's legacy behavior
// (its default deadline, no latency report).
type CallOpts struct {
	// Timeout bounds the whole exchange. Zero means the transport default
	// (tcpCallTimeout on TCP, unbounded on the instantaneous fabrics).
	Timeout time.Duration
	// RTT, when non-nil, receives the observed round-trip latency of a
	// successful exchange. Transports that model latency rather than incur it
	// (the simulator's) report the modeled value here; wall-clock transports
	// may leave it untouched and let the caller measure elapsed time.
	RTT *time.Duration
}

// Transport is the messaging substrate an overlay node or client runs on:
// a listening endpoint with an address peers can Call, plus the outbound Call
// primitive. Implementations must be safe for concurrent use, and concurrent
// Calls to the same address must be able to share one underlying connection
// (pipelining): a Call never waits for an unrelated Call's reply.
//
// Two implementations exist: MemNetwork endpoints for deterministic in-process
// tests and TCPTransport for real deployments. Both speak the same framed wire
// protocol (wire.go).
type Transport interface {
	// Addr returns the endpoint's address, which doubles as its identity:
	// the chord ring position is the hash of this address and the CLASH
	// ServerID is the address itself.
	Addr() string
	// SetHandler installs the inbound request handler. It must be called
	// before the first Call can be answered; installing nil drops requests
	// with an error reply.
	SetHandler(h Handler)
	// Call sends one request frame to addr and waits for the reply frame
	// with the matching sequence ID. It returns ErrUnreachable (wrapped) on
	// transport failure and a *RemoteError when the remote handler returned
	// an error.
	Call(addr, msgType string, payload []byte) ([]byte, error)
	// CallOpts is Call with per-call options: a deadline (ErrDeadline when it
	// expires before the reply) and an optional latency report. Call is
	// CallOpts with the zero options.
	CallOpts(addr, msgType string, payload []byte, opts CallOpts) ([]byte, error)
	// Stats returns the transport's cumulative counters.
	Stats() TransportStats
	// Close releases the endpoint. Outstanding and future Calls fail.
	Close() error
}

// RetryRecorder is implemented by transports whose stats block can attribute
// retries performed above the transport (the resilient call policy's resends
// count in the transport's Stats so one snapshot tells the whole story).
type RetryRecorder interface {
	// RecordRetry notes one policy-level resend.
	RecordRetry()
}

// dispatch invokes h if non-nil, standardising the nil-handler error.
func dispatch(h Handler, msgType string, payload []byte) ([]byte, error) {
	if h == nil {
		return nil, fmt.Errorf("no handler installed")
	}
	if msgType == "" {
		return nil, fmt.Errorf("unknown message type byte")
	}
	return h(msgType, payload)
}
