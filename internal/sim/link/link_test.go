package link

import (
	"math/rand"
	"testing"
	"time"
)

func TestModelValidate(t *testing.T) {
	if err := (Model{}).Validate(); err != nil {
		t.Errorf("zero model invalid: %v", err)
	}
	if err := (Model{Loss: 1}).Validate(); err == nil {
		t.Error("loss 1 accepted")
	}
	if err := (Model{BaseLatency: -1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	if !(Model{}).Zero() {
		t.Error("zero model not Zero")
	}
	if (Model{BaseLatency: time.Millisecond}).Zero() {
		t.Error("latency model reported Zero")
	}
}

func TestSampleRangeAndLoss(t *testing.T) {
	m := Model{BaseLatency: 10 * time.Millisecond, Jitter: 4 * time.Millisecond,
		Loss: 0.25, DropTimeout: 100 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	drops := 0
	const n = 10000
	for i := 0; i < n; i++ {
		lat, dropped := m.Sample(rng)
		if dropped {
			drops++
			if lat != m.DropTimeout {
				t.Fatalf("dropped latency = %s, want the drop timeout", lat)
			}
			continue
		}
		if lat < m.BaseLatency || lat >= m.BaseLatency+m.Jitter {
			t.Fatalf("latency %s outside [base, base+jitter)", lat)
		}
	}
	if frac := float64(drops) / n; frac < 0.22 || frac > 0.28 {
		t.Errorf("drop fraction %.3f, want ~0.25", frac)
	}
}

func TestSampleDeterministic(t *testing.T) {
	m := WAN(20*time.Millisecond, 0.01)
	a, b := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		la, da := m.Sample(a)
		lb, db := m.Sample(b)
		if la != lb || da != db {
			t.Fatal("same seed diverged")
		}
	}
}
