package sim

import (
	"fmt"
	"time"

	"clash/internal/metrics"
	"clash/internal/overlay"
	"clash/internal/sim/link"
)

// Net is the simulated transport fabric: endpoints reach each other by
// address, every message's one-way delay, jitter and loss are drawn from a
// link model, and endpoints can be marked down (a crash) or assigned to
// partitions (only same-partition endpoints communicate). The fabric records
// per-type call counts plus the sampled one-way delivery latency of every
// message type — which is how a scenario reads CQ match delivery latency in
// virtual milliseconds.
//
// Timing model: an exchange executes at the virtual instant it is issued (the
// handler runs inline, like MemNetwork); the sampled latency feeds the
// delivery-latency statistics and the loss/partition verdicts fail calls for
// real, but a call does not suspend its caller in virtual time. The simulator
// works at the paper's measurement-interval granularity — load rates,
// report aging and merge pacing all run on the virtual clock through the
// scheduled maintenance grid — rather than packet-serialised time, which is
// what lets a single-threaded, bit-deterministic engine drive thousands of
// nodes whose exchanges logically overlap. Nothing here reads the wall clock.
type Net struct {
	eng   *Engine
	model link.Model

	eps   map[string]*Endpoint
	down  map[string]bool
	part  map[string]int // partition id; absent = 0
	calls map[string]int

	// Gray-fault injection state.
	slow      map[string]float64 // per-node slowdown factor; absent = 1
	asym      map[string]int     // asymmetric-partition group; absent = 0
	asymBlock map[[2]int]bool    // [from, to] group pair → that direction is blackholed

	// traceCost, when armed by TraceCall, accumulates the virtual time the
	// traced function's calls would have cost a real caller (RTT on success,
	// the expired deadline on a timeout, the drop timeout on a loss).
	traceCost *time.Duration

	latency map[string]*metrics.LatencyHist // msgType → one-way virtual µs
}

// NewNet creates a fabric on the engine with the given link model.
func NewNet(eng *Engine, model link.Model) (*Net, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Net{
		eng:       eng,
		model:     model,
		eps:       make(map[string]*Endpoint),
		down:      make(map[string]bool),
		part:      make(map[string]int),
		calls:     make(map[string]int),
		slow:      make(map[string]float64),
		asym:      make(map[string]int),
		asymBlock: make(map[[2]int]bool),
		latency:   make(map[string]*metrics.LatencyHist),
	}, nil
}

// Endpoint creates (or returns the existing) endpoint with the given address.
func (n *Net) Endpoint(addr string) *Endpoint {
	if ep, ok := n.eps[addr]; ok {
		return ep
	}
	ep := &Endpoint{net: n, addr: addr}
	n.eps[addr] = ep
	return ep
}

// SetModel swaps the fabric's link model. The scenario harness boots the
// overlay on a lossless copy of the scenario link and engages the real model
// when the measurement run starts, so runs begin from a converged overlay.
func (n *Net) SetModel(m link.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	n.model = m
	return nil
}

// SetDown marks an address crashed (true) or back up (false). Calls from and
// to a down endpoint fail with overlay.ErrUnreachable.
func (n *Net) SetDown(addr string, down bool) { n.down[addr] = down }

// SetPartition assigns an address to a network partition; only endpoints in
// the same partition can exchange messages. All endpoints start in partition
// 0.
func (n *Net) SetPartition(addr string, partition int) { n.part[addr] = partition }

// Heal returns every endpoint to partition 0.
func (n *Net) Heal() { n.part = make(map[string]int) }

// SetSlow assigns a node a link slowdown factor: every message to or from it
// takes factor times the sampled latency (a gray-failing node — alive, but
// answering far too slowly). Factor 1 (or less) restores normal speed.
func (n *Net) SetSlow(addr string, factor float64) {
	if factor <= 1 {
		delete(n.slow, addr)
		return
	}
	n.slow[addr] = factor
}

// SetAsymGroup assigns an address to an asymmetric-partition group (default
// 0). Unlike SetPartition, group membership alone blocks nothing — directions
// are blocked pairwise with SetAsymBlocked.
func (n *Net) SetAsymGroup(addr string, group int) { n.asym[addr] = group }

// SetAsymBlocked blackholes (or restores) one direction between two
// asymmetric-partition groups: messages from a node in group from to a node
// in group to vanish in transit, while the reverse direction keeps working —
// the classic gray failure where A can reach B but B cannot reach A. A
// request crossing a blocked direction never arrives (the caller times out);
// a reply crossing one is lost after the handler ran.
func (n *Net) SetAsymBlocked(from, to int, blocked bool) {
	if blocked {
		n.asymBlock[[2]int{from, to}] = true
		return
	}
	delete(n.asymBlock, [2]int{from, to})
}

// HealAsym clears all asymmetric-partition state.
func (n *Net) HealAsym() {
	n.asym = make(map[string]int)
	n.asymBlock = make(map[[2]int]bool)
}

// asymBlocked reports whether the a→b direction is blackholed.
func (n *Net) asymBlocked(a, b string) bool {
	if len(n.asymBlock) == 0 {
		return false
	}
	return n.asymBlock[[2]int{n.asym[a], n.asym[b]}]
}

// slowFactor is the latency multiplier for the a↔b pair (the slower side
// wins).
func (n *Net) slowFactor(a, b string) float64 {
	f := 1.0
	if s := n.slow[a]; s > f {
		f = s
	}
	if s := n.slow[b]; s > f {
		f = s
	}
	return f
}

// TraceCall runs fn and returns the virtual time its transport calls would
// have cost a real caller: the round-trip latency of every successful call,
// the expired deadline of every timeout, the drop timeout of every loss.
// This is how a scenario bounds a maintenance tick's cost — the simulator
// executes events instantaneously, so blocking time must be accounted, not
// measured. Nested traces each see their own calls; an outer trace includes
// the inner's cost.
func (n *Net) TraceCall(fn func()) time.Duration {
	var cost time.Duration
	prev := n.traceCost
	n.traceCost = &cost
	fn()
	n.traceCost = prev
	if prev != nil {
		*prev += cost
	}
	return cost
}

// addCost charges virtual blocking time to an armed trace.
func (n *Net) addCost(d time.Duration) {
	if n.traceCost != nil {
		*n.traceCost += d
	}
}

// scale multiplies a sampled latency by a slowdown factor.
func scale(d time.Duration, f float64) time.Duration {
	if f <= 1 {
		return d
	}
	return time.Duration(float64(d) * f)
}

// Calls returns how many requests of the given type were attempted.
func (n *Net) Calls(msgType string) int { return n.calls[msgType] }

// Latency returns the one-way delivery latency histogram (in microseconds of
// virtual time) recorded for a message type, or nil if none was delivered.
func (n *Net) Latency(msgType string) *metrics.LatencyHist { return n.latency[msgType] }

// recordLatency notes one delivered message's sampled one-way latency.
func (n *Net) recordLatency(msgType string, d time.Duration) {
	h, ok := n.latency[msgType]
	if !ok {
		h = metrics.NewLatencyHist()
		n.latency[msgType] = h
	}
	h.Record(d.Microseconds())
}

// blocked reports whether a message from a to b cannot cross the fabric right
// now (either side down or the pair split by a partition).
func (n *Net) blocked(a, b string) bool {
	return n.down[a] || n.down[b] || n.part[a] != n.part[b]
}

// Endpoint is one addressable endpoint of a Net, implementing
// overlay.Transport for unmodified overlay nodes and clients.
type Endpoint struct {
	net     *Net
	addr    string
	handler overlay.Handler
	closed  bool
	stats   overlay.TransportStats
}

var _ overlay.Transport = (*Endpoint)(nil)

// Addr implements overlay.Transport.
func (e *Endpoint) Addr() string { return e.addr }

// SetHandler implements overlay.Transport.
func (e *Endpoint) SetHandler(h overlay.Handler) { e.handler = h }

// Stats implements overlay.Transport.
func (e *Endpoint) Stats() overlay.TransportStats { return e.stats }

// RecordRetry implements overlay.RetryRecorder.
func (e *Endpoint) RecordRetry() { e.stats.Retries++ }

// Close implements overlay.Transport.
func (e *Endpoint) Close() error {
	e.closed = true
	return nil
}

// simDefaultCallTimeout is the deadline assumed for plain Calls (no CallOpts
// timeout): the legacy blanket call timeout, matching the TCP transport's
// default.
const simDefaultCallTimeout = 10 * time.Second

// Call implements overlay.Transport.
func (e *Endpoint) Call(addr, msgType string, payload []byte) ([]byte, error) {
	return e.CallOpts(addr, msgType, payload, overlay.CallOpts{})
}

// CallOpts implements overlay.Transport. Both directions draw their fate from
// the link model (in a fixed order, so same-seed runs are bit-identical): a
// lost request or reply fails the call with overlay.ErrUnreachable, a
// delivered request's sampled latency is recorded in the fabric's per-type
// histogram, and the handler runs inline. Handler errors come back as
// *overlay.RemoteError exactly as on the framed transports.
//
// Gray faults layer on top: per-node slowdown factors multiply the sampled
// latencies, and a sampled latency sum exceeding the call deadline fails the
// call with overlay.ErrDeadline — before the handler runs when the request
// leg alone overshoots, after it when the reply leg does, exactly the
// ambiguity a real timeout has. An asymmetrically blocked direction behaves
// as a deadline expiry too (a blackholed message is indistinguishable from a
// slow one until the timer fires). Dup and Reorder re-invoke the handler with
// a copied payload — immediately, or DropTimeout later through the event
// queue — modeling duplicated and late-delivered requests; their replies go
// nowhere. Every failure and success charges its virtual blocking cost to an
// armed TraceCall.
func (e *Endpoint) CallOpts(addr, msgType string, payload []byte, opts overlay.CallOpts) ([]byte, error) {
	n := e.net
	if e.closed {
		return nil, fmt.Errorf("%w: %s", overlay.ErrClosed, e.addr)
	}
	n.calls[msgType]++
	target, ok := n.eps[addr]
	if !ok || target.closed || n.blocked(e.addr, addr) {
		return nil, fmt.Errorf("%w: %s", overlay.ErrUnreachable, addr)
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = simDefaultCallTimeout
	}
	timedOut := func() error {
		e.stats.Timeouts++
		n.addCost(timeout)
		return fmt.Errorf("%w: %s after %s", overlay.ErrDeadline, addr, timeout)
	}
	factor := n.slowFactor(e.addr, addr)

	size := overlay.FrameOverhead + len(payload)
	e.stats.FramesOut++
	e.stats.BytesOut += uint64(size)
	if n.asymBlocked(e.addr, addr) {
		// The request vanishes in transit: the caller learns nothing until
		// its deadline fires. No PRNG draw — a blackholed message has no
		// fate to sample.
		return nil, timedOut()
	}
	reqLat, reqDrop := n.model.Sample(n.eng.Rand())
	reqLat = scale(reqLat, factor)
	if reqDrop {
		n.addCost(scale(n.model.DropTimeout, factor))
		return nil, fmt.Errorf("%w: %s: request lost", overlay.ErrUnreachable, addr)
	}
	if reqLat > timeout {
		// The request is still in flight when the deadline fires; the
		// handler never runs (the late arrival is dropped — the mux would
		// have discarded the stale sequence ID).
		return nil, timedOut()
	}
	n.recordLatency(msgType, reqLat)
	target.stats.FramesIn++
	target.stats.BytesIn += uint64(size)

	// The handler may retain the payload (query state, batch bodies) while
	// the caller recycles its buffer on return — copy, exactly as a socket
	// read would have.
	req := append([]byte(nil), payload...)
	var (
		reply []byte
		herr  error
	)
	if target.handler == nil {
		herr = &overlay.RemoteError{Msg: "no handler installed"}
	} else if reply, herr = target.handler(msgType, req); herr != nil {
		herr = &overlay.RemoteError{Msg: herr.Error()}
	}
	if n.model.Dup > 0 && n.eng.Rand().Float64() < n.model.Dup {
		// A duplicated request: the handler runs again on its own copy; the
		// duplicate's reply answers a sequence ID nobody waits for.
		if target.handler != nil {
			_, _ = target.handler(msgType, append([]byte(nil), payload...))
		}
	}
	if n.model.Reorder > 0 && n.eng.Rand().Float64() < n.model.Reorder {
		// A late duplicate: the copy arrives DropTimeout after the original,
		// through the event queue — by then the target may be gone.
		late := append([]byte(nil), payload...)
		n.eng.After(scale(reqLat+n.model.DropTimeout, factor), func() {
			t, ok := n.eps[addr]
			if !ok || t.closed || n.down[addr] || t.handler == nil {
				return
			}
			_, _ = t.handler(msgType, late)
		})
	}

	repSize := overlay.FrameOverhead + len(reply)
	target.stats.FramesOut++
	target.stats.BytesOut += uint64(repSize)
	if n.asymBlocked(addr, e.addr) {
		// The reply direction is blackholed: the handler ran — state on the
		// target may have changed — but the caller only sees its deadline
		// expire. No PRNG draw, as on the request leg.
		return nil, timedOut()
	}
	repLat, repDrop := n.model.Sample(n.eng.Rand())
	repLat = scale(repLat, factor)
	if repDrop {
		n.addCost(scale(n.model.DropTimeout, factor))
		return nil, fmt.Errorf("%w: %s: reply lost", overlay.ErrUnreachable, addr)
	}
	if reqLat+repLat > timeout {
		return nil, timedOut()
	}
	n.addCost(reqLat + repLat)
	if opts.RTT != nil {
		// The simulator cannot be wall-timed: report the modeled round trip
		// so the caller's latency EWMA learns virtual time.
		*opts.RTT = reqLat + repLat
	}
	e.stats.FramesIn++
	e.stats.BytesIn += uint64(repSize)
	if herr != nil {
		return nil, herr
	}
	return append([]byte(nil), reply...), nil
}
