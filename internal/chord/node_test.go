package chord

import (
	"fmt"
	"sort"
	"testing"
)

// buildRing creates n protocol nodes on a LocalNetwork, joins them through
// node 0 and stabilizes until convergence.
func buildRing(t *testing.T, n int, spaceBits int) (*LocalNetwork, []*Node) {
	t.Helper()
	space, err := NewSpace(spaceBits)
	if err != nil {
		t.Fatal(err)
	}
	ln := NewLocalNetwork()
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		node := NewNode(fmt.Sprintf("node-%d", i), space, ln)
		ln.Register(node)
		nodes = append(nodes, node)
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Join(nodes[0].Self()); err != nil {
			t.Fatalf("join node-%d: %v", i, err)
		}
	}
	ln.StabilizeAll(2 * n)
	return ln, nodes
}

// ringOrder returns the nodes sorted by ID, i.e. the expected ring order.
func ringOrder(nodes []*Node) []*Node {
	sorted := append([]*Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Self().ID < sorted[j].Self().ID })
	return sorted
}

func TestSingletonNode(t *testing.T) {
	space := DefaultSpace()
	ln := NewLocalNetwork()
	n := NewNode("solo", space, ln)
	ln.Register(n)
	if err := n.Stabilize(); err != nil {
		t.Fatal(err)
	}
	succ, err := n.FindSuccessor(space.HashString("anything"))
	if err != nil {
		t.Fatal(err)
	}
	if succ.Addr != "solo" {
		t.Errorf("singleton ring should resolve everything to itself, got %s", succ.Addr)
	}
	if !n.OwnerOf(space.HashString("anything")) {
		t.Error("singleton node should own every point")
	}
}

func TestRingConvergesToCorrectSuccessors(t *testing.T) {
	_, nodes := buildRing(t, 16, 32)
	sorted := ringOrder(nodes)
	for i, node := range sorted {
		want := sorted[(i+1)%len(sorted)].Self().Addr
		if got := node.Successor().Addr; got != want {
			t.Errorf("node %s successor = %s, want %s", node.Self().Addr, got, want)
		}
		wantPred := sorted[(i+len(sorted)-1)%len(sorted)].Self().Addr
		if got := node.PredecessorRef().Addr; got != wantPred {
			t.Errorf("node %s predecessor = %s, want %s", node.Self().Addr, got, wantPred)
		}
	}
}

func TestFindSuccessorAgreesWithGlobalView(t *testing.T) {
	_, nodes := buildRing(t, 20, 32)
	sorted := ringOrder(nodes)
	space := DefaultSpace()

	// Global-view owner: first node with ID >= h (wrapping).
	ownerOf := func(h ID) string {
		for _, n := range sorted {
			if n.Self().ID >= h {
				return n.Self().Addr
			}
		}
		return sorted[0].Self().Addr
	}

	for i := 0; i < 300; i++ {
		h := space.HashString(fmt.Sprintf("key-%d", i))
		want := ownerOf(h)
		for _, start := range []*Node{nodes[0], nodes[7], nodes[19]} {
			got, err := start.FindSuccessor(h)
			if err != nil {
				t.Fatal(err)
			}
			if got.Addr != want {
				t.Fatalf("FindSuccessor(%d) from %s = %s, want %s", h, start.Self().Addr, got.Addr, want)
			}
		}
	}
}

func TestNodeOwnership(t *testing.T) {
	_, nodes := buildRing(t, 10, 32)
	space := DefaultSpace()
	for i := 0; i < 200; i++ {
		h := space.HashString(fmt.Sprintf("item-%d", i))
		owners := 0
		for _, n := range nodes {
			if n.OwnerOf(h) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("hash %d owned by %d nodes, want exactly 1", h, owners)
		}
	}
}

func TestLateJoinIsAbsorbed(t *testing.T) {
	ln, nodes := buildRing(t, 8, 32)
	space := DefaultSpace()
	late := NewNode("late-joiner", space, ln)
	ln.Register(late)
	if err := late.Join(nodes[0].Self()); err != nil {
		t.Fatal(err)
	}
	ln.StabilizeAll(20)

	all := append(append([]*Node(nil), nodes...), late)
	sorted := ringOrder(all)
	for i, node := range sorted {
		want := sorted[(i+1)%len(sorted)].Self().Addr
		if got := node.Successor().Addr; got != want {
			t.Errorf("after late join, node %s successor = %s, want %s", node.Self().Addr, got, want)
		}
	}
}

func TestNodeFailureIsRepaired(t *testing.T) {
	ln, nodes := buildRing(t, 12, 32)
	sorted := ringOrder(nodes)
	// Kill one node in the middle of the sorted order.
	victim := sorted[5]
	ln.SetDown(victim.Self().Addr, true)
	ln.StabilizeAll(30)

	survivors := make([]*Node, 0, len(sorted)-1)
	for _, n := range sorted {
		if n.Self().Addr != victim.Self().Addr {
			survivors = append(survivors, n)
		}
	}
	for i, node := range survivors {
		want := survivors[(i+1)%len(survivors)].Self().Addr
		if got := node.Successor().Addr; got != want {
			t.Errorf("after failure, node %s successor = %s, want %s", node.Self().Addr, got, want)
		}
	}
}

func TestJoinUnreachableBootstrap(t *testing.T) {
	space := DefaultSpace()
	ln := NewLocalNetwork()
	n := NewNode("n1", space, ln)
	ln.Register(n)
	ghost := NodeRef{Addr: "ghost", ID: space.HashString("ghost")}
	if err := n.Join(ghost); err == nil {
		t.Error("joining via an unreachable bootstrap succeeded, want error")
	}
	// Joining through itself or a zero ref is a no-op.
	if err := n.Join(NodeRef{}); err != nil {
		t.Errorf("joining zero bootstrap: %v", err)
	}
	if err := n.Join(n.Self()); err != nil {
		t.Errorf("joining through self: %v", err)
	}
}

func TestSuccessorListProvidesFaultTolerance(t *testing.T) {
	_, nodes := buildRing(t, 10, 32)
	for _, n := range nodes {
		succs := n.Successors()
		if len(succs) < 2 {
			t.Fatalf("node %s has successor list of length %d, want ≥ 2", n.Self().Addr, len(succs))
		}
		if succs[0].Addr == succs[1].Addr {
			t.Fatalf("node %s successor list has duplicates", n.Self().Addr)
		}
	}
}

func TestLocalNetworkCallCounting(t *testing.T) {
	ln, nodes := buildRing(t, 4, 32)
	before := ln.Calls("FindSuccessor")
	if _, err := nodes[0].FindSuccessor(DefaultSpace().HashString("x")); err != nil {
		t.Fatal(err)
	}
	if ln.Calls("FindSuccessor") < before {
		t.Error("call counter went backwards")
	}
}

// TestSuccessorsListener checks that the successor-list change notification
// fires on membership changes, reports the current list, runs without the
// node lock held (the callback can call back into the node), and stays quiet
// when stabilization rounds leave the list unchanged.
func TestSuccessorsListener(t *testing.T) {
	_, nodes := buildRing(t, 4, 8)
	n := nodes[1]

	var calls int
	var last []NodeRef
	n.SetSuccessorsListener(func(succs []NodeRef) {
		calls++
		last = succs
		_ = n.Successors() // must not deadlock
	})

	// A converged ring: one more stabilize round must not re-notify.
	if err := n.Stabilize(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		// The first round after installing the listener always notifies once
		// (the last-notified snapshot starts empty).
		t.Fatalf("calls after steady-state stabilize = %d, want 1", calls)
	}
	if err := n.Stabilize(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("unchanged list re-notified: calls = %d", calls)
	}
	if len(last) == 0 || last[0] != n.Successor() {
		t.Fatalf("listener saw %v, node reports successor %v", last, n.Successor())
	}

	// A join resets the successor list and must notify.
	before := calls
	if err := n.Join(nodes[0].Self()); err != nil {
		t.Fatal(err)
	}
	if calls <= before {
		t.Error("join did not notify the successor listener")
	}
}
