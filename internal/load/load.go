// Package load implements the server load model used in the CLASH paper's
// evaluation (§6): for query-processing applications the load of a server is
// linear in the cumulative data rate it handles and logarithmic in the number
// of continuous queries it stores, normalised to the server's capacity.
// Overload and underload are detected by comparing the resulting load
// fraction against fixed thresholds (90% / 54% in the paper).
package load

import (
	"errors"
	"fmt"
	"math"
)

// Default threshold values from the paper (§6.1).
const (
	// DefaultOverloadFraction is the maximum acceptable load on a server.
	DefaultOverloadFraction = 0.90
	// DefaultUnderloadFraction is the minimum (underflow) load.
	DefaultUnderloadFraction = 0.54
)

// ErrBadConfig reports an invalid model or threshold configuration.
var ErrBadConfig = errors.New("load: invalid configuration")

// Sample is one measurement of the work attributable to a key group over a
// measurement interval.
type Sample struct {
	// DataRate is the cumulative data arrival rate (packets/second).
	DataRate float64
	// Queries is the number of continuous queries currently stored.
	Queries int
}

// Add returns the component-wise sum of two samples.
func (s Sample) Add(o Sample) Sample {
	return Sample{DataRate: s.DataRate + o.DataRate, Queries: s.Queries + o.Queries}
}

// Model converts a Sample into a load fraction of a server's capacity.
//
// load = (RateWeight·rate + QueryWeight·log2(1+queries)) / Capacity
type Model struct {
	// Capacity is the amount of weighted work a server can sustain; load is
	// reported as a fraction of it.
	Capacity float64
	// RateWeight scales the data-rate term (work per packet/second).
	RateWeight float64
	// QueryWeight scales the log-query term.
	QueryWeight float64
}

// NewModel validates and returns a load model.
func NewModel(capacity, rateWeight, queryWeight float64) (Model, error) {
	if capacity <= 0 {
		return Model{}, fmt.Errorf("%w: capacity %g", ErrBadConfig, capacity)
	}
	if rateWeight < 0 || queryWeight < 0 {
		return Model{}, fmt.Errorf("%w: negative weights", ErrBadConfig)
	}
	return Model{Capacity: capacity, RateWeight: rateWeight, QueryWeight: queryWeight}, nil
}

// DefaultModel returns the model used by the experiments: a server saturates
// at `capacityPackets` packets/sec when it stores no queries, and query state
// contributes logarithmically.
func DefaultModel(capacityPackets float64) Model {
	return Model{Capacity: capacityPackets, RateWeight: 1, QueryWeight: 1}
}

// Load returns the load fraction for a sample. The result can exceed 1 when a
// server is driven past its capacity (as the paper's DHT(6) baseline is).
func (m Model) Load(s Sample) float64 {
	if m.Capacity <= 0 {
		return 0
	}
	work := m.RateWeight*s.DataRate + m.QueryWeight*math.Log2(1+float64(s.Queries))
	return work / m.Capacity
}

// Thresholds holds the overload/underload trigger levels as fractions of
// capacity.
type Thresholds struct {
	Overload  float64
	Underload float64
}

// DefaultThresholds returns the paper's 90% / 54% thresholds.
func DefaultThresholds() Thresholds {
	return Thresholds{Overload: DefaultOverloadFraction, Underload: DefaultUnderloadFraction}
}

// Validate checks that the thresholds are ordered and within (0, +inf).
func (t Thresholds) Validate() error {
	if t.Overload <= 0 || t.Underload < 0 || t.Underload >= t.Overload {
		return fmt.Errorf("%w: thresholds %+v", ErrBadConfig, t)
	}
	return nil
}

// IsOverloaded reports whether a server at the given load fraction must shed
// load.
func (t Thresholds) IsOverloaded(loadFraction float64) bool { return loadFraction > t.Overload }

// IsUnderloaded reports whether a server at the given load fraction is a
// candidate for consolidation.
func (t Thresholds) IsUnderloaded(loadFraction float64) bool { return loadFraction < t.Underload }
