package bitkey

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGroupStringAndParse(t *testing.T) {
	g := MustParseGroup("0110*")
	if g.Depth() != 4 {
		t.Errorf("Depth() = %d, want 4", g.Depth())
	}
	if g.String() != "0110*" {
		t.Errorf("String() = %q, want 0110*", g.String())
	}
	root := NewGroup(Key{})
	if root.String() != "*" {
		t.Errorf("root String() = %q, want *", root.String())
	}
	// Trailing '*' is optional.
	g2, err := ParseGroup("0110")
	if err != nil || !g2.Equal(g) {
		t.Errorf("ParseGroup without star mismatch: %v %v", g2, err)
	}
	if _, err := ParseGroup("01a0*"); err == nil {
		t.Error("ParseGroup with bad chars succeeded, want error")
	}
}

func TestGroupContainsPaperExample(t *testing.T) {
	// Paper §4: the key group "0110*" includes the 7-bit keys "0110101" and
	// "0110111".
	g := MustParseGroup("0110*")
	for _, s := range []string{"0110101", "0110111", "0110000"} {
		if !g.Contains(MustParse(s)) {
			t.Errorf("group %v should contain %s", g, s)
		}
	}
	for _, s := range []string{"0111101", "1110101"} {
		if g.Contains(MustParse(s)) {
			t.Errorf("group %v should not contain %s", g, s)
		}
	}
}

func TestGroupVirtualKey(t *testing.T) {
	// Paper §4: virtual key for "0110*" in a 7-bit space is "0110000"
	// (decimal 48) with depth 4.
	g := MustParseGroup("0110*")
	vk, err := g.VirtualKey(7)
	if err != nil {
		t.Fatal(err)
	}
	if vk.String() != "0110000" || vk.Value != 48 {
		t.Errorf("VirtualKey = %v (%d), want 0110000 (48)", vk, vk.Value)
	}
	if _, err := g.VirtualKey(3); err == nil {
		t.Error("VirtualKey with n < depth succeeded, want error")
	}
}

func TestGroupSplitMatchesPaper(t *testing.T) {
	// Paper §4: expanding "0110*" (depth 4) creates "01100*" and "01101*"
	// (depth 5); "01100*" expands to the same 7-bit value as "0110*".
	g := MustParseGroup("0110*")
	left, right, err := g.Split()
	if err != nil {
		t.Fatal(err)
	}
	if left.String() != "01100*" || right.String() != "01101*" {
		t.Errorf("Split = %v, %v; want 01100*, 01101*", left, right)
	}
	gv, _ := g.VirtualKey(7)
	lv, _ := left.VirtualKey(7)
	rv, _ := right.VirtualKey(7)
	if !gv.Equal(lv) {
		t.Errorf("left child virtual key %v must equal parent virtual key %v", lv, gv)
	}
	if rv.Equal(gv) {
		t.Error("right child virtual key must differ from parent virtual key")
	}
}

func TestGroupParentSibling(t *testing.T) {
	g := MustParseGroup("01101*")
	p, ok := g.Parent()
	if !ok || p.String() != "0110*" {
		t.Errorf("Parent = %v,%v; want 0110*", p, ok)
	}
	s, ok := g.Sibling()
	if !ok || s.String() != "01100*" {
		t.Errorf("Sibling = %v,%v; want 01100*", s, ok)
	}
	if g.IsLeftChild() {
		t.Error("01101* should not be a left child")
	}
	if !s.IsLeftChild() {
		t.Error("01100* should be a left child")
	}
	root := NewGroup(Key{})
	if _, ok := root.Parent(); ok {
		t.Error("root has no parent")
	}
	if _, ok := root.Sibling(); ok {
		t.Error("root has no sibling")
	}
	if root.IsLeftChild() {
		t.Error("root is not a left child")
	}
}

func TestGroupSize(t *testing.T) {
	// Paper §3: for an N-bit key, the group "11*" represents 2^(N-2) keys and
	// "111*" represents 2^(N-3).
	const n = 24
	g2 := MustParseGroup("11*")
	s2, err := g2.Size(n)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != 1<<(n-2) {
		t.Errorf("Size(11*) = %d, want %d", s2, 1<<(n-2))
	}
	g3 := MustParseGroup("111*")
	s3, _ := g3.Size(n)
	if s3 != 1<<(n-3) {
		t.Errorf("Size(111*) = %d, want %d", s3, 1<<(n-3))
	}
	if !g2.ContainsGroup(g3) {
		t.Error("11* must contain 111*")
	}
	if g3.ContainsGroup(g2) {
		t.Error("111* must not contain 11*")
	}
}

func TestShape(t *testing.T) {
	// Shape(k, d) groups 2^(N-d) keys sharing the first d bits.
	k := MustParse("0110101")
	g, err := Shape(k, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != "0110*" {
		t.Errorf("Shape = %v, want 0110*", g)
	}
	if _, err := Shape(k, 8); err == nil {
		t.Error("Shape with depth > key length succeeded, want error")
	}
}

func TestLongestCommonPrefix(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"0110101", "0110111", 5},
		{"0110101", "0110101", 7},
		{"0110101", "1110101", 0},
		{"0110", "0110101", 4},
	}
	for _, tt := range tests {
		if got := LongestCommonPrefix(MustParse(tt.a), MustParse(tt.b)); got != tt.want {
			t.Errorf("LongestCommonPrefix(%s,%s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPropertySplitPartitionsGroup(t *testing.T) {
	// Invariant: the two children of a group partition it — every key in the
	// group is in exactly one child, and both children are contained in the
	// parent.
	const n = 24
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		depth := rng.Intn(n - 1)
		prefix := MustNew(rng.Uint64()&(^uint64(0)>>uint(64-depth-1))>>1, depth)
		g := NewGroup(prefix)
		left, right, err := g.Split()
		if err != nil {
			t.Fatal(err)
		}
		if !g.ContainsGroup(left) || !g.ContainsGroup(right) {
			t.Fatalf("children %v,%v not contained in %v", left, right, g)
		}
		key := MustNew(rng.Uint64()&(1<<n-1), n)
		if !g.Contains(key) {
			continue
		}
		inLeft := left.Contains(key)
		inRight := right.Contains(key)
		if inLeft == inRight {
			t.Fatalf("key %v must be in exactly one child of %v (left=%v right=%v)", key, g, inLeft, inRight)
		}
	}
}

func TestPropertyShapeConsistentWithContains(t *testing.T) {
	f := func(value uint64, depthRaw uint8) bool {
		const n = 24
		key := MustNew(value&(1<<n-1), n)
		d := int(depthRaw) % (n + 1)
		g, err := Shape(key, d)
		if err != nil {
			return false
		}
		return g.Contains(key) && g.Depth() == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyParentChildRoundTrip(t *testing.T) {
	f := func(value uint64, depthRaw uint8) bool {
		d := int(depthRaw)%23 + 1
		prefix := MustNew(value&(^uint64(0)>>uint(64-d)), d)
		g := NewGroup(prefix)
		parent, ok := g.Parent()
		if !ok {
			return false
		}
		left, right, err := parent.Split()
		if err != nil {
			return false
		}
		return g.Equal(left) || g.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
