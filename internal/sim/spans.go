package sim

import (
	"clash/internal/metrics"
	"clash/internal/overlay"
)

// SpanReport aggregates the hop spans a traced run's sampled publishes
// emitted across every simulated node. It is JSON-stable: all fields derive
// from the deterministic event order and the virtual clock, never from wall
// time, so two runs with the same scenario and seed marshal identically.
type SpanReport struct {
	// Traces is the number of distinct sampled trace IDs that recorded at
	// least one span.
	Traces int `json:"traces"`
	// Complete counts the traces whose spans form one connected tree rooted
	// at a single ingress span (the span-completeness invariant).
	Complete int `json:"complete"`
	// Spans is the total number of hop spans recorded.
	Spans int `json:"spans"`
	// HopCounts breaks the spans down by hop kind.
	HopCounts map[string]int `json:"hop_counts"`
	// HopNetVirtualMs summarises the one-way virtual link latency (in
	// milliseconds) of the message type that carries each networked hop kind
	// over the whole run. In-node hops (cq-match) have no entry.
	HopNetVirtualMs map[string]metrics.Summary `json:"hop_net_virtual_ms,omitempty"`
	// Incomplete lists up to eight trace IDs whose span trees failed the
	// completeness check, for debugging.
	Incomplete []uint64 `json:"incomplete,omitempty"`
}

// hopCarrier maps each networked hop kind to the wire message type whose
// link latency delivers it; in-node hop kinds are absent.
var hopCarrier = map[string]string{
	overlay.HopIngress:      overlay.TypeAcceptObject,
	overlay.HopRouteForward: overlay.TypeAcceptObject,
	overlay.HopResolve:      overlay.TypeAcceptObject,
	overlay.HopReplicaPush:  overlay.TypeReplicateKeyGroup,
	overlay.HopDeliver:      overlay.TypeMatch,
}

// buildSpanReport groups the collected spans by trace, checks each trace's
// tree for completeness and attaches the per-hop virtual-latency summaries.
// It returns nil when no spans were recorded (tracing disabled).
func buildSpanReport(spans []overlay.Span, net *Net) *SpanReport {
	if len(spans) == 0 {
		return nil
	}
	rep := &SpanReport{Spans: len(spans), HopCounts: make(map[string]int)}
	byTrace := make(map[uint64][]overlay.Span)
	var order []uint64 // first-seen order: deterministic, unlike map iteration
	for _, sp := range spans {
		rep.HopCounts[sp.Kind]++
		if _, ok := byTrace[sp.TraceID]; !ok {
			order = append(order, sp.TraceID)
		}
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	rep.Traces = len(byTrace)
	for _, id := range order {
		if spanTreeComplete(byTrace[id]) {
			rep.Complete++
		} else if len(rep.Incomplete) < 8 {
			rep.Incomplete = append(rep.Incomplete, id)
		}
	}
	for kind := range hopCarrier {
		if rep.HopCounts[kind] == 0 {
			continue
		}
		if h := net.Latency(hopCarrier[kind]); h != nil {
			if rep.HopNetVirtualMs == nil {
				rep.HopNetVirtualMs = make(map[string]metrics.Summary)
			}
			rep.HopNetVirtualMs[kind] = msSummary(h.Summary())
		}
	}
	return rep
}

// spanTreeComplete reports whether one trace's spans form a single connected
// tree rooted at the ingress hop: exactly one root span (Parent == 0, which
// the protocol only emits at the first server contacted) and every other
// span's parent present among the trace's own span IDs.
func spanTreeComplete(spans []overlay.Span) bool {
	ids := make(map[uint64]bool, len(spans))
	for _, sp := range spans {
		ids[sp.SpanID] = true
	}
	roots := 0
	for _, sp := range spans {
		if sp.Parent == 0 {
			if sp.Kind != overlay.HopIngress {
				return false
			}
			roots++
		} else if !ids[sp.Parent] {
			return false
		}
	}
	return roots == 1
}
