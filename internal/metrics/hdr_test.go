package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLatencyHistSmallValuesExact(t *testing.T) {
	h := NewLatencyHist()
	for v := int64(0); v < 16; v++ {
		h.Record(v)
	}
	if h.Count() != 16 {
		t.Fatalf("count = %d", h.Count())
	}
	s := h.Summary()
	if s.Min != 0 || s.Max != 15 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	// Values below the sub-bucket count are exact.
	if got := h.Quantile(0.5); got != 7 {
		t.Errorf("p50 = %v, want 7", got)
	}
	if got := h.Quantile(1.0); got != 15 {
		t.Errorf("p100 = %v, want 15", got)
	}
}

func TestLatencyHistBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, prev)
		}
		if i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		// The representative value must sit within one bucket width.
		mid := bucketMid(i)
		if v >= 16 {
			rel := math.Abs(mid-float64(v)) / float64(v)
			if rel > 1.0/histSubBuckets {
				t.Errorf("bucketMid(%d) = %v for value %d: relative error %.3f", i, mid, v, rel)
			}
		}
		prev = i
	}
}

// TestLatencyHistQuantilesVsExact checks the histogram percentiles against
// the exact sorted-slice percentiles on a heavy-tailed distribution.
func TestLatencyHistQuantilesVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewLatencyHist()
	var values []float64
	for i := 0; i < 200000; i++ {
		// Log-normal-ish latencies from 1µs to ~1s.
		v := int64(math.Exp(rng.NormFloat64()*1.5 + 5))
		h.Record(v)
		values = append(values, float64(v))
	}
	sort.Float64s(values)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := percentile(values, q)
		got := h.Quantile(q)
		if exact == 0 {
			continue
		}
		rel := math.Abs(got-exact) / exact
		if rel > 1.0/histSubBuckets+0.01 {
			t.Errorf("q%.2f = %v, exact %v (relative error %.3f)", q, got, exact, rel)
		}
	}
	s := h.Summary()
	if s.Count != 200000 {
		t.Errorf("count = %d", s.Count)
	}
	exactMean := 0.0
	for _, v := range values {
		exactMean += v
	}
	exactMean /= float64(len(values))
	if math.Abs(s.Mean-exactMean)/exactMean > 1e-9 {
		t.Errorf("mean = %v, exact %v", s.Mean, exactMean)
	}
}

func TestLatencyHistMerge(t *testing.T) {
	a, b := NewLatencyHist(), NewLatencyHist()
	for i := int64(0); i < 1000; i++ {
		a.Record(i)
		b.Record(i + 1000)
	}
	a.Merge(b)
	a.Merge(NewLatencyHist()) // empty merge is a no-op
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	s := a.Summary()
	if s.Min != 0 || s.Max != 1999 {
		t.Errorf("merged min/max = %v/%v", s.Min, s.Max)
	}
	if rel := math.Abs(s.P50-1000) / 1000; rel > 1.0/histSubBuckets+0.01 {
		t.Errorf("merged p50 = %v, want ~1000", s.P50)
	}
}

func TestLatencyHistRecordNoAlloc(t *testing.T) {
	h := NewLatencyHist()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(12345)
	})
	if allocs != 0 {
		t.Errorf("Record allocations = %v, want 0", allocs)
	}
}

func TestLatencyHistEmpty(t *testing.T) {
	h := NewLatencyHist()
	if s := h.Summary(); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	h.Record(-5) // clamps to 0
	if h.min != 0 || h.max != 0 {
		t.Errorf("negative record: min/max = %d/%d", h.min, h.max)
	}
}
