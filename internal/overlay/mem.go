package overlay

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"clash/internal/clock"
	"clash/internal/sim/link"
	"clash/internal/wirecodec"
)

// MemNetwork is an in-memory transport fabric: endpoints created from the
// same network reach each other by address without sockets. Every Call still
// round-trips the request and the reply through the binary frame codec
// (appendFrame/readFrame, sequence ID included), so the serialisation path is
// byte-identical to TCP. Endpoints can be marked down to exercise failure
// handling, and per-type call counts let tests assert on message complexity.
// SetLink optionally applies a network link model (latency/jitter/loss) to
// every crossing message, so -inproc smoke runs stop being a zero-RTT
// fantasy.
type MemNetwork struct {
	mu    sync.RWMutex
	eps   map[string]*MemEndpoint
	down  map[string]bool
	calls map[string]int
	// modeled mirrors "a non-zero link model is installed" so the hot call
	// path skips the fabric mutex entirely in the default zero-RTT mode.
	modeled atomic.Bool
	link    link.Model
	rng     *rand.Rand
	clk     clock.Clock
}

// NewMemNetwork creates an empty fabric on the wall clock; SetClock swaps in
// a virtual time source.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{
		eps:   make(map[string]*MemEndpoint),
		down:  make(map[string]bool),
		calls: make(map[string]int),
		clk:   clock.Real(),
	}
}

// SetClock replaces the fabric's time source for link-model latencies and RTT
// measurement. Call before traffic starts.
func (n *MemNetwork) SetClock(clk clock.Clock) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clk = clk
}

// sleep waits out d on the fabric's clock.
func (n *MemNetwork) sleep(d time.Duration) {
	t := n.clk.NewTimer(d)
	defer t.Stop()
	<-t.C()
}

// Endpoint creates (or returns the existing) endpoint with the given address.
func (n *MemNetwork) Endpoint(addr string) *MemEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[addr]; ok {
		return ep
	}
	ep := &MemEndpoint{net: n, addr: addr}
	n.eps[addr] = ep
	return ep
}

// SetDown marks an address unreachable (true) or reachable again (false).
func (n *MemNetwork) SetDown(addr string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[addr] = down
}

// SetLink installs a link model applied to every message crossing the fabric:
// each direction of a Call sleeps a sampled one-way latency (on the fabric's
// clock — the wall clock by default, SetClock injects a virtual source; the
// event-driven analogue lives in internal/sim), and lost messages surface as
// ErrUnreachable after the
// model's drop timeout. The seed makes the latency/loss draws reproducible.
// A zero model restores the instantaneous fabric.
func (n *MemNetwork) SetLink(m link.Model, seed int64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.link = m
	n.rng = rand.New(rand.NewSource(seed))
	n.modeled.Store(!m.Zero())
	return nil
}

// sampleLink draws the fate of one message crossing the fabric.
func (n *MemNetwork) sampleLink() (latency time.Duration, dropped bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.link.Zero() || n.rng == nil {
		return 0, false
	}
	return n.link.Sample(n.rng)
}

// crossLink applies one direction of the link model on the fabric's clock,
// reporting
// whether the message survived. The atomic fast path keeps the default
// zero-RTT fabric off the mutex entirely. A non-nil budget is the caller's
// remaining deadline: the sampled latency is charged against it, and a
// latency that exceeds what remains sleeps out the budget and reports a
// deadline expiry instead of a delivery.
func (n *MemNetwork) crossLink(budget *time.Duration) (ok, timedOut bool) {
	if !n.modeled.Load() {
		return true, false
	}
	latency, dropped := n.sampleLink()
	if budget != nil {
		if latency > *budget {
			n.sleep(*budget)
			*budget = 0
			return false, true
		}
		*budget -= latency
	}
	if latency > 0 {
		n.sleep(latency)
	}
	return !dropped, false
}

// Calls returns how many requests of the given type crossed the fabric.
func (n *MemNetwork) Calls(msgType string) int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.calls[msgType]
}

// route resolves the target endpoint, recording the call.
func (n *MemNetwork) route(addr, msgType string) (*MemEndpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.calls[msgType]++
	if n.down[addr] {
		return nil, fmt.Errorf("%w: %s is down", ErrUnreachable, addr)
	}
	ep, ok := n.eps[addr]
	if !ok || ep.isClosed() {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	return ep, nil
}

// MemEndpoint is one addressable endpoint of a MemNetwork.
type MemEndpoint struct {
	net  *MemNetwork
	addr string

	seq   atomic.Uint64
	stats transportStats

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

var _ Transport = (*MemEndpoint)(nil)

// Addr implements Transport.
func (e *MemEndpoint) Addr() string { return e.addr }

// SetHandler implements Transport.
func (e *MemEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Stats implements Transport.
func (e *MemEndpoint) Stats() TransportStats { return e.stats.snapshot() }

// RecordRetry implements RetryRecorder.
func (e *MemEndpoint) RecordRetry() { e.stats.retries.Add(1) }

func (e *MemEndpoint) isClosed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closed
}

// Close implements Transport.
func (e *MemEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// Call implements Transport. The request and the reply both pass through the
// frame codec (with a real sequence ID, exactly the bytes TCP would carry);
// the handler runs synchronously on the caller's goroutine without any fabric
// lock held, so re-entrant call chains (A→B→A) cannot deadlock.
func (e *MemEndpoint) Call(addr, msgType string, payload []byte) ([]byte, error) {
	return e.CallOpts(addr, msgType, payload, CallOpts{})
}

// CallOpts implements Transport. The deadline is charged against the link
// model's sampled latencies (handler execution is not metered — the fabric
// has no way to preempt an inline handler); with no link model installed
// calls are instantaneous and never expire.
func (e *MemEndpoint) CallOpts(addr, msgType string, payload []byte, opts CallOpts) ([]byte, error) {
	if e.isClosed() {
		return nil, fmt.Errorf("%w: %s", ErrClosed, e.addr)
	}
	typ, err := typeByte(msgType)
	if err != nil {
		return nil, err
	}
	var budget *time.Duration
	if opts.Timeout > 0 {
		b := opts.Timeout
		budget = &b
	}
	timedOutErr := func() error {
		e.stats.timeouts.Add(1)
		return fmt.Errorf("%w: %s after %s", ErrDeadline, addr, opts.Timeout)
	}
	seq := e.seq.Add(1)
	e.stats.inFlight.Add(1)
	defer e.stats.inFlight.Add(-1)

	// The request direction mirrors TCP's pooled server path: the decoded
	// request payload lives in a pooled buffer owned by this call and goes
	// back to the pool once dispatch (and the reply round trip) is done.
	req, err := e.frameRoundTrip(seq, typ, payload, &e.stats, wirecodec.GetBuf())
	if err != nil {
		return nil, err
	}
	defer wirecodec.PutBuf(req.payload)
	target, err := e.net.route(addr, typeName(req.typ))
	if err != nil {
		return nil, err
	}
	start := e.net.clk.Now()
	if ok, timedOut := e.net.crossLink(budget); !ok {
		if timedOut {
			return nil, timedOutErr()
		}
		return nil, fmt.Errorf("%w: %s: request lost", ErrUnreachable, addr)
	}
	target.mu.RLock()
	h := target.handler
	target.mu.RUnlock()
	target.stats.countIn(frameHeaderSize + len(req.payload))
	reply, herr := dispatch(h, typeName(req.typ), req.payload)
	if herr != nil {
		// Errors cross the wire as typeReplyErr text, like on TCP.
		rf, err := target.replyRoundTrip(seq, typeReplyErr, []byte(herr.Error()), e)
		if err != nil {
			return nil, err
		}
		if ok, timedOut := e.net.crossLink(budget); !ok {
			if timedOut {
				return nil, timedOutErr()
			}
			return nil, fmt.Errorf("%w: %s: reply lost", ErrUnreachable, addr)
		}
		return nil, &RemoteError{Msg: string(rf.payload)}
	}
	rf, err := target.replyRoundTrip(seq, typeReplyOK, reply, e)
	// The handler transferred reply ownership; the reply frame encoding copied
	// it, so it can be recycled regardless of the round trip's outcome.
	wirecodec.PutBuf(reply)
	if err != nil {
		return nil, err
	}
	if rf.seq != seq {
		return nil, fmt.Errorf("%w: reply seq %d for call %d", ErrBadFrame, rf.seq, seq)
	}
	if ok, timedOut := e.net.crossLink(budget); !ok {
		if timedOut {
			return nil, timedOutErr()
		}
		return nil, fmt.Errorf("%w: %s: reply lost", ErrUnreachable, addr)
	}
	if opts.RTT != nil {
		*opts.RTT = e.net.clk.Now().Sub(start)
	}
	return rf.payload, nil
}

// frameRoundTrip encodes one frame and decodes it back, exercising the codec
// and counting the caller's outbound side. The decoded payload is read into
// `into` (pass a pooled buffer on the request direction, where the payload's
// lifetime ends with the dispatch; pass nil on the reply direction, whose
// payload escapes to the application). On success the caller owns f.payload;
// on error it has already been recycled.
func (e *MemEndpoint) frameRoundTrip(seq uint64, typ byte, payload []byte, out *transportStats, into []byte) (frame, error) {
	buf := wirecodec.GetBuf()
	// Deferred as a closure so the buffer that actually went back to the
	// pool is the grown one appendFrame returns, not the 512-byte original.
	defer func() { wirecodec.PutBuf(buf) }()
	buf, err := appendFrame(buf, seq, typ, payload)
	if err != nil {
		wirecodec.PutBuf(into)
		return frame{}, err
	}
	out.countOut(len(buf))
	f, err := readFrameInto(bytes.NewReader(buf), into)
	if err != nil {
		wirecodec.PutBuf(f.payload)
		return frame{}, err
	}
	return f, nil
}

// replyRoundTrip encodes the reply frame on the target side and decodes it on
// the caller side, mirroring TCP's reply direction for the counters. The
// decoded reply payload is freshly allocated — it escapes to the caller.
func (t *MemEndpoint) replyRoundTrip(seq uint64, typ byte, payload []byte, caller *MemEndpoint) (frame, error) {
	f, err := t.frameRoundTrip(seq, typ, payload, &t.stats, nil)
	if err != nil {
		return frame{}, err
	}
	caller.stats.countIn(frameHeaderSize + len(f.payload))
	return f, nil
}
