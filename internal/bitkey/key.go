// Package bitkey implements the hierarchical N-bit identifier keys used by
// CLASH (Misra, Castro, Lee — ICDCS 2004).
//
// An identifier key is an N-bit string whose prefixes encode parent/child
// clustering relationships: all keys sharing a d-bit prefix form a "key
// group". CLASH identifies a key group by a virtual key (the prefix followed
// by zeroes) together with its depth d. This package provides the key and key
// group arithmetic (prefix extraction, virtual keys, splitting, containment,
// wildcard formatting) as well as encoders that build hierarchical keys from
// application data (quad-tree geographic coordinates and categorical
// attribute paths).
package bitkey

import (
	"errors"
	"fmt"
	"strings"
)

// MaxBits is the largest supported identifier key length in bits.
const MaxBits = 64

// Errors returned by key constructors and parsers.
var (
	ErrBadLength = errors.New("bitkey: key length out of range")
	ErrBadDepth  = errors.New("bitkey: depth out of range")
	ErrOverflow  = errors.New("bitkey: value does not fit in key length")
	ErrBadSyntax = errors.New("bitkey: malformed key string")
)

// Key is an N-bit identifier key. The key value is stored right-aligned in
// Value: bit 0 of the key (the most significant, first bit of the hierarchy)
// is bit position Bits-1 of Value.
//
// The zero value is an empty (0-bit) key, which is only useful as the root of
// the splitting hierarchy.
type Key struct {
	// Value holds the key bits right-aligned (the last bit of the key is the
	// least significant bit of Value).
	Value uint64
	// Bits is the key length N.
	Bits int
}

// New returns an N-bit key with the given value. It returns an error if bits
// is outside [0, MaxBits] or value has bits set above position bits-1.
func New(value uint64, bits int) (Key, error) {
	if bits < 0 || bits > MaxBits {
		return Key{}, fmt.Errorf("%w: %d", ErrBadLength, bits)
	}
	if bits < MaxBits && value>>uint(bits) != 0 {
		return Key{}, fmt.Errorf("%w: value %#x needs more than %d bits", ErrOverflow, value, bits)
	}
	return Key{Value: value, Bits: bits}, nil
}

// MustNew is like New but panics on error. It is intended for constants and
// tests.
func MustNew(value uint64, bits int) Key {
	k, err := New(value, bits)
	if err != nil {
		panic(err)
	}
	return k
}

// Parse parses a binary string such as "0110101" into a key whose length is
// the number of characters. Characters other than '0' and '1' are rejected.
func Parse(s string) (Key, error) {
	if len(s) > MaxBits {
		return Key{}, fmt.Errorf("%w: %d", ErrBadLength, len(s))
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		v <<= 1
		switch s[i] {
		case '0':
		case '1':
			v |= 1
		default:
			return Key{}, fmt.Errorf("%w: %q", ErrBadSyntax, s)
		}
	}
	return Key{Value: v, Bits: len(s)}, nil
}

// MustParse is like Parse but panics on error.
func MustParse(s string) Key {
	k, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return k
}

// String renders the key as a binary string of length Bits.
func (k Key) String() string {
	if k.Bits == 0 {
		return "ε"
	}
	var b strings.Builder
	b.Grow(k.Bits)
	for i := 0; i < k.Bits; i++ {
		b.WriteByte('0' + byte(k.Bit(i)))
	}
	return b.String()
}

// Bit returns the i-th bit of the key counted from the most significant
// (first) bit. It returns 0 or 1. Bit panics if i is out of range; callers
// iterate up to Bits.
func (k Key) Bit(i int) int {
	if i < 0 || i >= k.Bits {
		panic(fmt.Sprintf("bitkey: bit index %d out of range for %d-bit key", i, k.Bits))
	}
	return int(k.Value>>uint(k.Bits-1-i)) & 1
}

// Prefix returns the first d bits of the key as a d-bit key.
func (k Key) Prefix(d int) (Key, error) {
	if d < 0 || d > k.Bits {
		return Key{}, fmt.Errorf("%w: %d of %d", ErrBadDepth, d, k.Bits)
	}
	return Key{Value: k.Value >> uint(k.Bits-d), Bits: d}, nil
}

// HasPrefix reports whether p (of length ≤ k.Bits) is a prefix of k.
func (k Key) HasPrefix(p Key) bool {
	if p.Bits > k.Bits {
		return false
	}
	return k.Value>>uint(k.Bits-p.Bits) == p.Value
}

// Extend appends the given bit (0 or 1) to the key, producing a key one bit
// longer.
func (k Key) Extend(bit int) (Key, error) {
	if k.Bits >= MaxBits {
		return Key{}, fmt.Errorf("%w: %d", ErrBadLength, k.Bits+1)
	}
	if bit != 0 && bit != 1 {
		return Key{}, fmt.Errorf("%w: bit %d", ErrBadSyntax, bit)
	}
	return Key{Value: k.Value<<1 | uint64(bit), Bits: k.Bits + 1}, nil
}

// Equal reports whether two keys have the same length and bits.
func (k Key) Equal(o Key) bool { return k.Bits == o.Bits && k.Value == o.Value }

// Compare orders keys first by value of their common prefix and then by
// length, giving a total order usable for sorting. It returns -1, 0 or +1.
func (k Key) Compare(o Key) int {
	// Diverging bit (if any) inside the common prefix decides; otherwise the
	// shorter key sorts first.
	l := commonBits(k, o)
	if l < k.Bits && l < o.Bits {
		if k.Bit(l) < o.Bit(l) {
			return -1
		}
		return 1
	}
	switch {
	case k.Bits < o.Bits:
		return -1
	case k.Bits > o.Bits:
		return 1
	}
	return 0
}

// Padded returns the key value left-aligned in an n-bit space: the key bits
// become the most significant bits and the remaining n-Bits bits are zero.
// This is exactly the paper's "virtual key" expansion ("k' padded by N-d
// trailing zeroes"). It returns an error if n < k.Bits or n > MaxBits.
func (k Key) Padded(n int) (uint64, error) {
	if n < k.Bits || n > MaxBits {
		return 0, fmt.Errorf("%w: pad %d-bit key to %d bits", ErrBadLength, k.Bits, n)
	}
	return k.Value << uint(n-k.Bits), nil
}

// Bytes returns a big-endian byte representation of the key padded to whole
// bytes, prefixed with the key length. It is suitable as input to a hash
// function: distinct (value, length) pairs produce distinct byte strings.
func (k Key) Bytes() []byte {
	out := make([]byte, 0, 9)
	out = append(out, byte(k.Bits))
	nBytes := (k.Bits + 7) / 8
	padded := k.Value << uint((nBytes*8)-k.Bits)
	for i := nBytes - 1; i >= 0; i-- {
		out = append(out, byte(padded>>uint(8*i)))
	}
	return out
}
