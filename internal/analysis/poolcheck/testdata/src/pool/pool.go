// Package pool exercises the pooled-buffer retention rules.
package pool

import "wirecodec"

type server struct {
	stash   []byte
	history [][]byte
	outbox  chan []byte
}

var global [][]byte

// handleRequest is a handler by name: its []byte parameter is a pooled frame
// payload owned by the transport.
func handleRequest(s *server, msgType string, payload []byte) ([]byte, error) {
	s.stash = payload                      // want `pooled buffer payload stored into s\.stash`
	s.stash = payload[4:]                  // want `pooled buffer payload stored into s\.stash`
	s.history = append(s.history, payload) // want `pooled buffer payload appended to long-lived slice s\.history`
	global = append(global, payload)       // want `pooled buffer payload appended to long-lived slice global`
	s.outbox <- payload                    // want `pooled buffer payload sent on a channel`
	go func() {
		use(payload) // want `pooled buffer payload captured by a spawned goroutine`
	}()
	go use(payload) // want `pooled buffer payload passed to a spawned goroutine`
	return nil, nil
}

// handleCopies shows every sanctioned way out: explicit copies, spreads and
// returns are not escapes.
func handleCopies(s *server, payload []byte) ([]byte, error) {
	s.stash = append([]byte(nil), payload...) // copy
	s.history = append(s.history, append([]byte(nil), payload...))
	name := string(payload) // string conversion copies
	_ = name
	local := payload // alias: tracked, but a local is fine
	use(local)
	reply := wirecodec.GetBuf()
	reply = append(reply, payload...) // contents copied into the reply
	return reply, nil                 // ownership transfer per the Handler contract
}

// getBufEscapes tracks wirecodec.GetBuf results through local aliases in any
// function, handler-named or not.
func getBufEscapes(s *server) {
	buf := wirecodec.GetBuf()
	buf = append(buf, 1, 2, 3) // still the pooled buffer
	s.stash = buf              // want `pooled buffer buf stored into s\.stash`
	resliced := buf[:2]
	s.stash = resliced // want `pooled buffer resliced stored into s\.stash`
	fresh := append([]byte(nil), buf...)
	s.stash = fresh // copy: fine
	wirecodec.PutBuf(buf)
}

// reassignment unlinks the name from the pool.
func reassigned(s *server) {
	buf := wirecodec.GetBuf()
	wirecodec.PutBuf(buf)
	buf = make([]byte, 8)
	s.stash = buf // fresh allocation: fine
}

// suppressed hands ownership off deliberately, with the mandatory reason.
func suppressedHandoff(s *server) {
	buf := wirecodec.GetBuf()
	//clashvet:ignore poolcheck writer loop owns queued buffers and recycles them after flush
	s.outbox <- buf
}

func badDirective(s *server) {
	buf := wirecodec.GetBuf()
	/* want `malformed //clashvet:ignore directive: missing reason` */ //clashvet:ignore poolcheck
	s.outbox <- buf                                                    // want `pooled buffer buf sent on a channel`
}

func use(b []byte) {}
