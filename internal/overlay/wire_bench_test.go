package overlay

import (
	"testing"

	"clash/internal/core"
	"clash/internal/wirecodec"
)

// Benchmark fixtures: a representative ACCEPT_OBJECT (the hot-path message),
// its reply, and a 64-object batch.
func benchAcceptObject() core.AcceptObjectMsg {
	return core.AcceptObjectMsg{
		KeyValue: 0xABCDE,
		KeyBits:  24,
		Depth:    7,
		Kind:     core.ObjectData,
		Payload:  []byte(`{"speed":88.5,"heading":271}`),
	}
}

func benchReply() core.AcceptObjectReplyMsg {
	return core.AcceptObjectReplyMsg{
		Status:       core.StatusOK,
		GroupValue:   0b1010101,
		GroupBits:    7,
		CorrectDepth: 7,
		Matches:      []string{"q-17", "q-23"},
	}
}

func benchBatch(n int) core.AcceptBatchMsg {
	m := core.AcceptBatchMsg{Objects: make([]core.AcceptObjectMsg, n)}
	for i := range m.Objects {
		o := benchAcceptObject()
		o.KeyValue = uint64(i) << 4
		m.Objects[i] = o
	}
	return m
}

// BenchmarkWireCodecMarshal measures the binary encode path (steady-state:
// pooled buffer, zero allocations).
func BenchmarkWireCodecMarshal(b *testing.B) {
	msg := benchAcceptObject()
	buf := wirecodec.GetBuf()
	defer wirecodec.PutBuf(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = msg.MarshalWire(buf[:0])
	}
	_ = buf
}

// BenchmarkJSONCodecMarshal is the retained PR 2 baseline (legacy_json.go).
func BenchmarkJSONCodecMarshal(b *testing.B) {
	msg := benchAcceptObject()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := legacyJSONMarshal(&msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireCodecUnmarshal(b *testing.B) {
	msg := benchAcceptObject()
	data := msg.MarshalWire(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got core.AcceptObjectMsg
		if err := got.UnmarshalWire(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONCodecUnmarshal(b *testing.B) {
	msg := benchAcceptObject()
	data, err := legacyJSONMarshal(&msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got core.AcceptObjectMsg
		if err := legacyJSONUnmarshal(data, &got); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireCodecReplyMarshal(b *testing.B) {
	msg := benchReply()
	buf := wirecodec.GetBuf()
	defer wirecodec.PutBuf(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = msg.MarshalWire(buf[:0])
	}
	_ = buf
}

func BenchmarkJSONCodecReplyMarshal(b *testing.B) {
	msg := benchReply()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := legacyJSONMarshal(&msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireCodecBatchMarshal64(b *testing.B) {
	msg := benchBatch(64)
	buf := wirecodec.GetBuf()
	defer wirecodec.PutBuf(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = msg.MarshalWire(buf[:0])
	}
	_ = buf
}

func BenchmarkJSONCodecBatchMarshal64(b *testing.B) {
	msg := benchBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := legacyJSONMarshal(&msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireFrameEncode measures framing alone (header + payload copy into
// a pooled buffer).
func BenchmarkWireFrameEncode(b *testing.B) {
	obj := benchAcceptObject()
	payload := obj.MarshalWire(nil)
	buf := wirecodec.GetBuf()
	defer wirecodec.PutBuf(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = appendFrame(buf[:0], uint64(i), typeAcceptObject, payload)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = buf
}

// TestWireCodecEncodeAllocFree pins the zero-allocation claim the benchmarks
// report, so a regression fails tests and not just the snapshot.
func TestWireCodecEncodeAllocFree(t *testing.T) {
	msg := benchAcceptObject()
	rep := benchReply()
	buf := wirecodec.GetBuf()
	defer wirecodec.PutBuf(buf)
	allocs := testing.AllocsPerRun(200, func() {
		buf = msg.MarshalWire(buf[:0])
		buf = rep.MarshalWire(buf)
	})
	if allocs != 0 {
		t.Errorf("steady-state encode allocations = %v, want 0", allocs)
	}
}
