package cq

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"clash/internal/benchutil"
	"clash/internal/bitkey"
)

const (
	benchKeyBits = bitkey.MaxBits
	benchQueries = 1000
	benchEvents  = 1 << 14
)

func benchEngine(b *testing.B) (*Engine, []Event) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	e, err := NewEngine(benchKeyBits)
	if err != nil {
		b.Fatal(err)
	}
	// One query per region of a prefix-free partition: every event key falls
	// inside exactly one region, so Match exercises the full walk and the
	// predicate evaluation on each call.
	for i, g := range benchutil.PrefixFreeGroups(rng, benchKeyBits, benchQueries) {
		q := Query{
			ID:         fmt.Sprintf("q%04d", i),
			Region:     g,
			Predicates: []Predicate{{Attr: "speed", Op: OpGe, Value: 30}},
		}
		if err := e.Register(q); err != nil {
			b.Fatal(err)
		}
	}
	events := make([]Event, benchEvents)
	for i, k := range benchutil.RandomKeys(rng, benchKeyBits, benchEvents) {
		events[i] = Event{Key: k, Attrs: map[string]float64{"speed": float64(rng.Intn(60))}}
	}
	return e, events
}

func BenchmarkCQMatch(b *testing.B) {
	e, events := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Match(events[i%len(events)])
	}
}

func BenchmarkCQMatchParallel(b *testing.B) {
	e, events := benchEngine(b)
	var cursor atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1) * 7919
		for pb.Next() {
			e.Match(events[i%uint64(len(events))])
			i++
		}
	})
}
