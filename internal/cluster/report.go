package cluster

import "context"

// NodeSummary is the per-node slice of a Report (the scrape minus the bulky
// raw metrics and span payloads).
type NodeSummary struct {
	Hub      string  `json:"hub"`
	Addr     string  `json:"addr,omitempty"`
	Err      string  `json:"err,omitempty"`
	Groups   int     `json:"groups"`
	Queries  int     `json:"queries"`
	Load     float64 `json:"load"`
	Draining bool    `json:"draining,omitempty"`
	Build    string  `json:"build,omitempty"`
	Spans    int     `json:"spans"`
}

// Report is clashtop's one-shot document: fleet aggregate, invariant probes
// and the most recent cross-node traces.
type Report struct {
	Fleet  *Fleet        `json:"fleet"`
	Nodes  []NodeSummary `json:"nodes"`
	Probes []Probe       `json:"probes"`
	// Unscraped lists ring members the topology walk saw but no configured
	// hub covers.
	Unscraped []string `json:"unscraped,omitempty"`
	// Traces are the most recent sampled publishes reassembled across the
	// fleet, newest first.
	Traces []*TraceTree `json:"traces,omitempty"`
	// TracesComplete counts how many of Traces passed the span-completeness
	// invariant.
	TracesComplete int `json:"tracesComplete"`
}

// BuildReport runs one full collection pass: scrape, aggregate, probe, and
// assemble up to traceLimit recent traces.
func BuildReport(ctx context.Context, c *Collector, traceLimit int) *Report {
	v := c.Collect(ctx)
	rep := &Report{
		Fleet:     Aggregate(v),
		Probes:    RunProbes(v.Topo),
		Unscraped: v.Unscraped,
	}
	for _, nv := range v.Nodes {
		ns := NodeSummary{Hub: nv.Hub, Addr: nv.Addr, Err: nv.Err, Spans: len(nv.Spans)}
		if nv.Status != nil {
			ns.Groups = len(nv.Status.ActiveGroups)
			ns.Queries = nv.Status.Queries
			ns.Load = nv.Status.TotalLoad
			ns.Draining = nv.Status.Draining
		}
		if nv.Build != (BuildInfo{}) {
			ns.Build = nv.Build.Version + " / " + nv.Build.GoVersion
		}
		rep.Nodes = append(rep.Nodes, ns)
	}
	if traceLimit > 0 {
		rep.Traces = RecentTraces(v.Nodes, traceLimit)
		for _, tr := range rep.Traces {
			if tr.Complete {
				rep.TracesComplete++
			}
		}
	}
	return rep
}
