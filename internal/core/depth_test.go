package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"clash/internal/bitkey"
	"clash/internal/chord"
)

// testCluster wires a set of core.Servers to a chord.Ring the way the
// simulator and the live overlay do: every key group lives on the server the
// ring maps its virtual key to, splits are driven through the ring, and
// probes emulate a client's ACCEPT_OBJECT round trip.
type testCluster struct {
	t       *testing.T
	bits    int
	ring    *chord.Ring
	servers map[ServerID]*Server
}

func newTestCluster(t *testing.T, nServers, bits, bootstrapDepth int) *testCluster {
	t.Helper()
	c := &testCluster{
		t:       t,
		bits:    bits,
		ring:    chord.NewRing(),
		servers: make(map[ServerID]*Server, nServers),
	}
	for i := 0; i < nServers; i++ {
		id := ServerID(fmt.Sprintf("server-%d", i))
		if err := c.ring.Add(chord.Member(id)); err != nil {
			t.Fatal(err)
		}
		s, err := NewServer(id, bits)
		if err != nil {
			t.Fatal(err)
		}
		c.servers[id] = s
	}
	// Bootstrap: every depth-bootstrapDepth group is rooted on the server its
	// virtual key maps to, so the whole key space is covered.
	for v := uint64(0); v < 1<<uint(bootstrapDepth); v++ {
		prefix := bitkey.MustNew(v, bootstrapDepth)
		g := bitkey.NewGroup(prefix)
		owner := c.mapGroup(g)
		if err := c.servers[owner].Bootstrap(g); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// mapGroup resolves the server responsible for a group's virtual key.
func (c *testCluster) mapGroup(g bitkey.Group) ServerID {
	vk, err := g.VirtualKey(c.bits)
	if err != nil {
		c.t.Fatal(err)
	}
	m, err := c.ring.Map(vk.Bytes())
	if err != nil {
		c.t.Fatal(err)
	}
	return ServerID(m)
}

// mapFunc adapts mapGroup to the MapFunc signature used by ExecuteSplit.
func (c *testCluster) mapFunc(vkey bitkey.Key) (ServerID, error) {
	m, err := c.ring.Map(vkey.Bytes())
	if err != nil {
		return NoServer, err
	}
	return ServerID(m), nil
}

// split splits the given group on its current owner and delivers the
// ACCEPT_KEYGROUP transfers.
func (c *testCluster) split(owner ServerID, g bitkey.Group) {
	c.t.Helper()
	res, err := c.servers[owner].ExecuteSplit(g, c.mapFunc)
	if err != nil {
		c.t.Fatalf("split %v on %s: %v", g, owner, err)
	}
	for _, tr := range res.Transfers {
		if err := c.servers[tr.To].HandleAcceptKeyGroup(tr.Group, tr.Parent); err != nil {
			c.t.Fatalf("deliver %v to %s: %v", tr.Group, tr.To, err)
		}
	}
}

// ownerOf returns the server that actively manages key k, by asking everyone
// (test oracle).
func (c *testCluster) ownerOf(k bitkey.Key) (ServerID, bitkey.Group) {
	c.t.Helper()
	var (
		found ServerID
		group bitkey.Group
		count int
	)
	for id, s := range c.servers {
		if g, ok := s.ManagesKey(k); ok {
			found, group = id, g
			count++
		}
	}
	if count != 1 {
		c.t.Fatalf("key %v managed by %d servers, want exactly 1", k, count)
	}
	return found, group
}

// probe emulates the client ACCEPT_OBJECT round trip at a given depth: shape
// the key, map the virtual key through the DHT and ask that server.
func (c *testCluster) probe(k bitkey.Key) Probe {
	return func(depth int) (AcceptObjectResult, error) {
		g, err := bitkey.Shape(k, depth)
		if err != nil {
			return AcceptObjectResult{}, err
		}
		owner := c.mapGroup(g)
		return c.servers[owner].HandleAcceptObject(k, depth)
	}
}

// randomSplits drives the cluster through n random splits of currently
// active groups, mimicking hotspot-driven subdivision.
func (c *testCluster) randomSplits(rng *rand.Rand, n int) {
	type activeGroup struct {
		owner ServerID
		group bitkey.Group
	}
	for i := 0; i < n; i++ {
		var candidates []activeGroup
		for id, s := range c.servers {
			for _, g := range s.ActiveGroups() {
				if g.Depth() < c.bits {
					candidates = append(candidates, activeGroup{owner: id, group: g})
				}
			}
		}
		if len(candidates) == 0 {
			return
		}
		// Deterministic order before random pick (map iteration is random).
		sortActive(candidates)
		pick := candidates[rng.Intn(len(candidates))]
		c.split(pick.owner, pick.group)
	}
}

func sortActive[T any](s []T) {
	// Sorting happens on the string form via fmt; small n, test-only helper.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && fmt.Sprint(s[j]) < fmt.Sprint(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestResolveDepthAcrossCluster(t *testing.T) {
	const (
		bits           = 16
		bootstrapDepth = 4
	)
	c := newTestCluster(t, 32, bits, bootstrapDepth)
	rng := rand.New(rand.NewSource(42))
	c.randomSplits(rng, 60)

	maxProbes := int(math.Ceil(math.Log2(bits))) + 2
	totalProbes := 0
	const nKeys = 400
	for i := 0; i < nKeys; i++ {
		k := bitkey.MustNew(rng.Uint64()&(1<<bits-1), bits)
		_, wantGroup := c.ownerOf(k)
		res, err := ResolveDepth(bits, 0, SearchBinary, c.probe(k))
		if err != nil {
			t.Fatalf("resolve %v: %v", k, err)
		}
		if !res.Group.Equal(wantGroup) || res.Depth != wantGroup.Depth() {
			t.Fatalf("resolved %v depth %d, want %v depth %d", res.Group, res.Depth, wantGroup, wantGroup.Depth())
		}
		if res.Probes > maxProbes {
			t.Fatalf("key %v took %d probes, want ≤ %d", k, res.Probes, maxProbes)
		}
		totalProbes += res.Probes
	}
	// Paper §5: clients usually converge much faster than log(N) because dmin
	// jumps the lower bound. Check the average is strictly below the binary
	// search worst case.
	avg := float64(totalProbes) / nKeys
	if avg >= float64(maxProbes) {
		t.Errorf("average probes %.2f not better than worst case %d", avg, maxProbes)
	}
}

func TestDepthSearchConvergence(t *testing.T) {
	// With a single root at depth 1 and a chain of splits along one branch,
	// the binary search must find deep groups quickly regardless of the
	// initial guess.
	const bits = 24
	c := newTestCluster(t, 16, bits, 1)
	// Split the 1* branch repeatedly so depths range from 1 to 12.
	cur := bitkey.MustParseGroup("1*")
	for cur.Depth() < 12 {
		owner := ServerID("")
		for id, s := range c.servers {
			for _, g := range s.ActiveGroups() {
				if g.Equal(cur) {
					owner = id
				}
			}
		}
		if owner == NoServer {
			t.Fatalf("no owner for %v", cur)
		}
		c.split(owner, cur)
		left, _, err := cur.Split()
		if err != nil {
			t.Fatal(err)
		}
		cur = left
	}

	deepKey := bitkey.MustNew(1<<23, bits) // "1000...0": depth-12 group
	shallowKey := bitkey.MustNew(0, bits)  // "0000...0": depth-1 group
	for _, guess := range []int{0, 1, 12, 24} {
		res, err := ResolveDepth(bits, guess, SearchBinary, c.probe(deepKey))
		if err != nil {
			t.Fatalf("guess %d: %v", guess, err)
		}
		if res.Depth != 12 {
			t.Errorf("guess %d: resolved depth %d, want 12", guess, res.Depth)
		}
		res, err = ResolveDepth(bits, guess, SearchBinary, c.probe(shallowKey))
		if err != nil {
			t.Fatalf("guess %d: %v", guess, err)
		}
		if res.Depth != 1 {
			t.Errorf("guess %d: resolved depth %d for shallow key, want 1", guess, res.Depth)
		}
	}
}

func TestResolveDepthLinearStrategies(t *testing.T) {
	const bits = 16
	c := newTestCluster(t, 8, bits, 3)
	rng := rand.New(rand.NewSource(7))
	c.randomSplits(rng, 10)
	for i := 0; i < 50; i++ {
		k := bitkey.MustNew(rng.Uint64()&(1<<bits-1), bits)
		_, wantGroup := c.ownerOf(k)
		for _, strat := range []DepthSearchStrategy{SearchLinearUp, SearchLinearDown, SearchBinary} {
			res, err := ResolveDepth(bits, 0, strat, c.probe(k))
			if err != nil {
				t.Fatalf("strategy %d key %v: %v", strat, k, err)
			}
			if res.Depth != wantGroup.Depth() {
				t.Fatalf("strategy %d resolved %d, want %d", strat, res.Depth, wantGroup.Depth())
			}
		}
	}
}

func TestResolveDepthErrors(t *testing.T) {
	if _, err := ResolveDepth(24, 0, SearchBinary, nil); err == nil {
		t.Error("nil probe accepted, want error")
	}
	if _, err := ResolveDepth(0, 0, SearchBinary, func(int) (AcceptObjectResult, error) {
		return AcceptObjectResult{}, nil
	}); err == nil {
		t.Error("zero key length accepted, want error")
	}
	probeErr := errors.New("network down")
	if _, err := ResolveDepth(8, 0, SearchBinary, func(int) (AcceptObjectResult, error) {
		return AcceptObjectResult{}, probeErr
	}); !errors.Is(err, probeErr) {
		t.Errorf("probe error not propagated: %v", err)
	}
	// A probe that always reports dmin = 0 (empty overlay) must terminate
	// with ErrDepthNotFound rather than loop forever.
	_, err := ResolveDepth(8, 0, SearchLinearUp, func(int) (AcceptObjectResult, error) {
		return AcceptObjectResult{Status: StatusIncorrectDepth, DMin: 0}, nil
	})
	if !errors.Is(err, ErrDepthNotFound) {
		t.Errorf("linear search on empty overlay err = %v, want ErrDepthNotFound", err)
	}
	_, err = ResolveDepth(8, 0, SearchBinary, func(d int) (AcceptObjectResult, error) {
		return AcceptObjectResult{Status: StatusIncorrectDepth, DMin: 0}, nil
	})
	if !errors.Is(err, ErrDepthNotFound) {
		t.Errorf("binary search on empty overlay err = %v, want ErrDepthNotFound", err)
	}
}
