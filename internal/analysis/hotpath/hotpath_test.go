package hotpath_test

import (
	"testing"

	"clash/internal/analysis/analysistest"
	"clash/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "hot")
}
