module clash

go 1.22
