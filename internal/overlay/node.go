package overlay

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/clock"
	"clash/internal/core"
	"clash/internal/cq"
	"clash/internal/load"
	"clash/internal/metrics"
)

// Config parameterises an overlay node. The zero value is completed with
// paper-faithful defaults by NewNode.
type Config struct {
	// KeyBits is the identifier key length N (default 24, the paper's).
	KeyBits int
	// Space is the chord identifier space (default chord.DefaultSpace()).
	Space chord.Space
	// Model converts per-group samples into load fractions (default
	// load.DefaultModel(5000)).
	Model load.Model
	// Thresholds are the overload/underload trigger levels (default the
	// paper's 90%/54%).
	Thresholds load.Thresholds
	// BootstrapDepth is the depth of the initial key-space partition a
	// bootstrap node installs: 2^BootstrapDepth root groups (default 1).
	BootstrapDepth int
	// StabilizeInterval is how often Run performs chord maintenance
	// (default 250ms).
	StabilizeInterval time.Duration
	// LoadCheckInterval is the measurement window and how often Run performs
	// the load check (default 2s; the paper uses 5 minutes at its scale).
	LoadCheckInterval time.Duration
	// Clock supplies the node's time source (default the real wall clock).
	// The discrete-event simulator injects its virtual clock here, which is
	// what lets an unmodified Node run at virtual time.
	Clock clock.Clock
	// Seed derandomises the maintenance jitter: Run staggers its first
	// stabilization and load check by a pseudo-random fraction of the
	// respective interval drawn from Seed combined with the node address, so
	// a fleet booted together does not thundering-herd its maintenance, yet
	// two runs with the same seed behave identically (clashd -seed,
	// clashload -seed).
	Seed int64
	// InlineMatchPush delivers continuous-query match notifications
	// synchronously on the data path instead of from per-match goroutines.
	// The live overlay keeps the default (async, so a slow subscriber never
	// blocks packet processing); the simulator sets it to keep event
	// execution single-threaded and deterministic.
	InlineMatchPush bool
	// ReplicationFactor is how many successors receive this node's key-group
	// replicas (default 2; negative disables replication entirely). A crash
	// is survivable as long as at least one of the first ReplicationFactor
	// successors outlives the holder.
	ReplicationFactor int
	// Call tunes the resilient RPC path: per-class deadlines, retry/backoff
	// policy. Zero fields take the package defaults.
	Call CallPolicy
}

func (c Config) withDefaults() Config {
	if c.KeyBits == 0 {
		c.KeyBits = 24
	}
	if c.Space.Bits == 0 {
		c.Space = chord.DefaultSpace()
	}
	if c.Model.Capacity == 0 {
		c.Model = load.DefaultModel(5000)
	}
	if c.Thresholds.Overload == 0 {
		c.Thresholds = load.DefaultThresholds()
	}
	if c.BootstrapDepth == 0 {
		c.BootstrapDepth = 1
	}
	if c.StabilizeInterval == 0 {
		c.StabilizeInterval = 250 * time.Millisecond
	}
	if c.LoadCheckInterval == 0 {
		c.LoadCheckInterval = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.ReplicationFactor == 0 {
		c.ReplicationFactor = 2
	}
	c.Call = c.Call.withDefaults()
	return c
}

// pendingTransfer is an ACCEPT_KEYGROUP delivery that failed and is retried
// on subsequent load checks (the table already recorded the split, so until
// delivery succeeds the keys of the group are unowned). Parked transfers are
// deduplicated by group key — repeated load checks refresh the single entry
// instead of stacking duplicates — and abandoned (with the queries handed to
// the orphan requeue and a counted drop) once attempts exhausts the budget.
type pendingTransfer struct {
	transfer core.Transfer
	queries  []queryState
	epoch    uint64
	attempts int
}

// transferRetryBudget bounds how many delivery attempts a parked
// ACCEPT_KEYGROUP transfer gets before it is dropped.
const transferRetryBudget = 8

// pendingReclaim is a consolidation attempt whose RELEASE_KEYGROUP exchange
// failed at the transport level; the outcome on the holder is unknown, so the
// attempt is retried until it resolves or the budget runs out.
type pendingReclaim struct {
	prop     core.MergeProposal
	attempts int
}

// Node is one live CLASH overlay node: a chord protocol node, the CLASH
// protocol state machine, the continuous-query engine and the load meter,
// wired to a Transport and driven by the caller-owned maintenance loop (Run,
// or Tick/LoadCheck directly for deterministic tests).
type Node struct {
	cfg    Config
	tr     Transport
	caller *caller
	susp   *suspicion
	chord  *chord.Node
	server *core.Server
	engine *cq.Engine
	meter  *load.Meter
	series *metrics.Set
	start  time.Time

	// obs is the installed control-plane observer (SetObserver); draining
	// marks the node in admin drain mode (Drain/Undrain).
	obs      observerRef
	draining atomic.Bool

	// spanSalt/spanSeq mint node-unique span IDs for sampled publishes
	// (nextSpanID).
	spanSalt uint64
	spanSeq  atomic.Uint64

	// repMu serialises replica snapshot+version assignment (replicate), so
	// concurrent pushes can't stamp an older snapshot with a newer version.
	// Lock order: repMu before mu; never the reverse.
	repMu sync.Mutex

	mu            sync.Mutex
	subscribers   map[string]string          // query id → subscriber transport addr
	pending       map[string]pendingTransfer // group key → parked transfer
	reclaims      []pendingReclaim
	orphans       []orphanQuery
	replicas      map[string]*replicaSet // origin addr → its replicated state
	repVersion    uint64
	incarnation   uint64
	mayPushEmpty  bool // guards empty replica pushes until past the recovery window
	matchDrops    int64
	transferDrops int64
	orphanDrops   int64
	joinTarget    string // last Join contact, for islanding self-repair

	wg sync.WaitGroup
}

// NewNode creates a node on the given transport and installs its request
// handler. The node starts as a singleton ring with an empty work table; call
// BootstrapRoots on the first node of an overlay and Join on every other.
func NewNode(tr Transport, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, err
	}
	server, err := core.NewServer(core.ServerID(tr.Addr()), cfg.KeyBits,
		core.WithMaxSplitRetries(splitRetryBudget))
	if err != nil {
		return nil, err
	}
	engine, err := cq.NewEngine(cfg.KeyBits)
	if err != nil {
		return nil, err
	}
	susp := newSuspicion(cfg.Clock.Now)
	// Backoff sleeps are real-clock only: under the simulator's virtual clock
	// an in-event sleep would wedge the single-threaded engine, so retries go
	// back-to-back in virtual time (sleep == nil disables the jitter draw too,
	// preserving determinism).
	var sleep func(time.Duration)
	if cfg.Clock == clock.Real() {
		//clashvet:ignore clockcheck real-clock branch only; the virtual-clock path leaves sleep nil
		sleep = time.Sleep
	}
	callerSeed := cfg.Seed ^ int64(cfg.Space.HashString(tr.Addr()))
	rc := newCaller(tr, cfg.Call, susp, cfg.Clock.Now, sleep, callerSeed)
	n := &Node{
		cfg:         cfg,
		tr:          tr,
		caller:      rc,
		susp:        susp,
		chord:       chord.NewNode(tr.Addr(), cfg.Space, &transportRPC{c: rc}),
		server:      server,
		engine:      engine,
		meter:       load.NewMeterClock(cfg.LoadCheckInterval.Seconds(), cfg.Clock.Now),
		series:      metrics.NewSet(),
		start:       cfg.Clock.Now(),
		subscribers: make(map[string]string),
		pending:     make(map[string]pendingTransfer),
		replicas:    make(map[string]*replicaSet),
		incarnation: uint64(cfg.Clock.Now().UnixNano()),
		spanSalt:    uint64(cfg.Space.HashString(tr.Addr())) << 32,
	}
	// Replicas follow ring churn: whenever the successor list changes, the
	// current snapshot is re-pushed so the new first-k successors hold it
	// (and the churn is reported on the event stream).
	n.chord.SetSuccessorsListener(func(refs []chord.NodeRef) {
		ev := Event{Type: EventRingChange, Detail: fmt.Sprintf("successors=%d", len(refs))}
		if len(refs) > 0 {
			ev.Peer = refs[0].Addr
		}
		n.emit(ev)
		n.replicate()
	})
	// Failure-detector verdict transitions surface as events too.
	susp.onVerdict = func(addr string, prior, cur chord.PeerState) {
		n.emit(Event{Type: EventSuspicion, Peer: addr,
			Detail: verdictString(prior) + "->" + verdictString(cur)})
	}
	// The suspicion tracker doubles as chord's health oracle: a suspected
	// (gray, possibly just slow) successor is kept for the round instead of
	// dropped on its first failed ping, so one slow peer cannot churn the
	// successor list.
	n.chord.SetHealthOracle(susp.state)
	tr.SetHandler(n.handle)
	return n, nil
}

// Addr returns the node's transport address (its identity).
func (n *Node) Addr() string { return n.tr.Addr() }

// Server exposes the CLASH state machine (read-mostly use by tests and the
// status endpoint).
func (n *Node) Server() *core.Server { return n.server }

// Engine exposes the continuous-query engine.
func (n *Node) Engine() *cq.Engine { return n.engine }

// Series exposes the node's metrics set.
func (n *Node) Series() *metrics.Set { return n.series }

// Successors returns the node's current chord successor list (nearest first);
// a lightweight accessor for ring-convergence checks (the full Status
// snapshot copies the metrics series too).
func (n *Node) Successors() []chord.NodeRef { return n.chord.Successors() }

// Predecessor returns the node's current chord predecessor (zero when
// unknown).
func (n *Node) Predecessor() chord.NodeRef { return n.chord.PredecessorRef() }

// MatchDrops returns how many match notifications this node failed to
// deliver to their subscribers.
func (n *Node) MatchDrops() int64 { return atomic.LoadInt64(&n.matchDrops) }

// replicaCounts returns how many peer replica sets this node holds and the
// total key groups across them.
func (n *Node) replicaCounts() (origins, groups int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, set := range n.replicas {
		origins++
		groups += len(set.groups)
	}
	return origins, groups
}

// Close stops background deliveries and closes the transport.
func (n *Node) Close() error {
	err := n.tr.Close()
	n.wg.Wait()
	return err
}

// BootstrapRoots installs the initial partition of the key space: all
// 2^BootstrapDepth groups at BootstrapDepth, anchored on this node. A fresh
// overlay calls it exactly once (on the node started without a join target);
// as other nodes join the ring, the ownership reconciliation in LoadCheck
// hands each root group to the node its virtual key maps to.
func (n *Node) BootstrapRoots() error {
	depth := n.cfg.BootstrapDepth
	for v := uint64(0); v < 1<<uint(depth); v++ {
		g := bitkey.NewGroup(bitkey.Key{Value: v, Bits: depth})
		if err := n.server.Bootstrap(g); err != nil {
			return err
		}
	}
	return nil
}

// Join joins the overlay through the node at bootstrap and runs an immediate
// stabilization round so the ring learns about us quickly. The contact is
// remembered: if this node ever finds itself islanded (its successor list
// decayed back to itself — e.g. every successor crashed at once, or a
// partition isolated it), Tick re-joins through it.
func (n *Node) Join(bootstrap string) error {
	n.mu.Lock()
	n.joinTarget = bootstrap
	n.mu.Unlock()
	ref := chord.NodeRef{Addr: bootstrap, ID: n.cfg.Space.HashString(bootstrap)}
	if err := n.chord.Join(ref); err != nil {
		return err
	}
	if err := n.chord.Stabilize(); err != nil {
		return err
	}
	if err := n.chord.FixAllFingers(); err != nil {
		return err
	}
	// A restarted node recovers its pre-crash key groups from the replicas
	// its successors hold (a fresh node finds none; the probe is two calls).
	n.recoverOwnState()
	return nil
}

// Rejoin re-enters the overlay through the node at bootstrap after this node
// was crashed, isolated or otherwise cut off. Unlike Join it resolves the
// ring position with a successor-chain walk (chord.Node.JoinChain) instead of
// a finger-routed lookup: after a partition the overlay can consist of
// parallel self-consistent rings, and a finger-routed lookup from inside one
// of them happily answers from the wrong ring, which is how parallel rings
// persist forever. O(ring) hops, so reserved for reintegration.
func (n *Node) Rejoin(bootstrap string) error {
	n.mu.Lock()
	n.joinTarget = bootstrap
	n.mu.Unlock()
	ref := chord.NodeRef{Addr: bootstrap, ID: n.cfg.Space.HashString(bootstrap)}
	if err := n.chord.JoinChain(ref); err != nil {
		return err
	}
	if err := n.chord.Stabilize(); err != nil {
		return err
	}
	if err := n.chord.FixAllFingers(); err != nil {
		return err
	}
	n.recoverOwnState()
	return nil
}

// FixAllFingers refreshes the node's whole chord finger table (one lookup
// per finger). The simulator's boot uses it to converge lookups without
// paying a full maintenance round per finger.
func (n *Node) FixAllFingers() error { return n.chord.FixAllFingers() }

// SetRepairContact sets the address Tick re-joins through when the node
// finds itself islanded, without joining now. Join sets it implicitly; a
// bootstrap node (which never calls Join) should be given one as soon as the
// overlay has a second member, or it can never recover from losing its whole
// successor list — and an islanded node is poison, because a chord singleton
// answers FindSuccessor with itself for every identifier.
func (n *Node) SetRepairContact(addr string) {
	n.mu.Lock()
	n.joinTarget = addr
	n.mu.Unlock()
}

// Tick runs one round of chord maintenance. The owner (Run, or a test) calls
// it periodically.
func (n *Node) Tick() {
	n.mu.Lock()
	target := n.joinTarget
	n.mu.Unlock()
	if target != "" && n.chord.Successor().Addr == n.Addr() {
		// Islanded: a singleton that once joined a ring can never be found
		// by stabilization again (nobody points at it and it points at
		// nobody), so re-enter through the remembered contact. Best effort —
		// retried every tick until the contact answers.
		_ = n.Rejoin(target)
	}
	_ = n.chord.Stabilize()
	n.chord.CheckPredecessor()
	_ = n.chord.FixFingers()
	// Ring maintenance doubles as the failure detector for replication:
	// once a dead peer's ring position has collapsed onto this node, the
	// locally held replicas of its key groups are promoted to active.
	n.recoverFromReplicas()
}

// Run drives the maintenance loop until ctx is cancelled: chord stabilization
// every StabilizeInterval and the CLASH load check every LoadCheckInterval,
// both on the configured clock. The first round of each is staggered by a
// jitter drawn deterministically from Config.Seed and the node address, so a
// fleet booted at the same instant spreads its maintenance over the interval
// instead of synchronising — and two runs with the same seed stagger
// identically.
func (n *Node) Run(ctx context.Context) {
	rng := rand.New(rand.NewSource(n.cfg.Seed ^ int64(n.cfg.Space.HashString(n.Addr()))))
	// Each loop gets its own jitter drawn from its own interval: the first
	// round fires off a timer, then the ticker takes over at the regular
	// cadence.
	stabT := n.cfg.Clock.NewTimer(time.Duration(rng.Int63n(int64(n.cfg.StabilizeInterval))) + 1)
	checkT := n.cfg.Clock.NewTimer(time.Duration(rng.Int63n(int64(n.cfg.LoadCheckInterval))) + 1)
	defer stabT.Stop()
	defer checkT.Stop()
	var stab, check clock.Ticker
	defer func() {
		if stab != nil {
			stab.Stop()
		}
		if check != nil {
			check.Stop()
		}
	}()
	stabC, checkC := stabT.C(), checkT.C()
	for {
		select {
		case <-ctx.Done():
			return
		case <-stabC:
			if stab == nil {
				stab = n.cfg.Clock.NewTicker(n.cfg.StabilizeInterval)
				stabC = stab.C()
			}
			n.Tick()
		case <-checkC:
			if check == nil {
				check = n.cfg.Clock.NewTicker(n.cfg.LoadCheckInterval)
				checkC = check.C()
			}
			n.LoadCheck(n.cfg.Clock.Now())
		}
	}
}

// mapGroup resolves Map(f(k')) for a virtual key through the live chord ring.
func (n *Node) mapGroup(vk bitkey.Key) (core.ServerID, error) {
	ref, err := n.chord.FindSuccessor(n.cfg.Space.HashBytes(vk.Bytes()))
	if err != nil {
		return core.NoServer, err
	}
	return core.ServerID(ref.Addr), nil
}

// LoadCheck runs one CLASH load-check period (paper §5): it promotes replicas
// of dead peers, retries pending transfers and orphaned query placements,
// reconciles group ownership with the current ring, converts the meter's
// samples into per-group loads, splits the hottest group when overloaded
// (with a real ACCEPT_KEYGROUP transfer), sends load reports to parents,
// consolidates cold sibling pairs, re-pushes the node's key-group replicas to
// its successors, and records the metrics series.
func (n *Node) LoadCheck(now time.Time) {
	n.recoverFromReplicas()
	n.retryPending()
	n.requeueOrphans()
	if n.draining.Load() {
		// Drain mode replaces the DHT reconciliation: every active group is
		// pushed off this node (to its DHT owner, or the first live successor
		// when that owner is this node), and splitting is suspended — a
		// draining node sheds state, it does not grow more.
		n.drainStep()
	} else {
		n.reconcileOwnership()
	}

	samples := n.meter.Snapshot()
	for _, g := range n.server.ActiveGroups() {
		_ = n.server.SetGroupLoad(g, n.cfg.Model.Load(samples[g.String()]))
	}
	ranked := load.Rank(n.cfg.Model, samples)
	total := n.server.TotalLoad()

	if !n.draining.Load() && n.cfg.Thresholds.IsOverloaded(total) {
		n.trySplit()
	}
	n.sendLoadReports()
	n.tryMerge(now)
	n.gcReplicas()
	n.replicate()
	n.record(now, total, ranked)
}

// splitRetryBudget bounds how often a split re-extends a self-mapped right
// child; it is passed to core.NewServer and mirrored by the target
// precomputation in trySplit.
const splitRetryBudget = 16

// precomputeSplitTargets resolves the DHT mappings a split of g can need
// before ExecuteSplit runs, so no network I/O happens while the server
// mutex is held (ExecuteSplit calls its MapFunc with the table locked, and a
// slow peer would otherwise stall the whole data path). The candidate right
// children of a split are deterministic — g+"1", g+"11", ... while each maps
// back to this server — so the walk stops at the first foreign target.
func (n *Node) precomputeSplitTargets(g bitkey.Group) core.MapFunc {
	self := core.ServerID(n.Addr())
	targets := make(map[bitkey.Key]core.ServerID)
	cur := g
	for i := 0; i <= splitRetryBudget && cur.Depth() < n.cfg.KeyBits; i++ {
		_, right, err := cur.Split()
		if err != nil {
			break
		}
		vk, err := right.VirtualKey(n.cfg.KeyBits)
		if err != nil {
			break
		}
		target, err := n.mapGroup(vk)
		if err != nil {
			break
		}
		targets[vk] = target
		if target != self {
			break
		}
		cur = right
	}
	return func(vk bitkey.Key) (core.ServerID, error) {
		if t, ok := targets[vk]; ok {
			return t, nil
		}
		return core.NoServer, errors.New("overlay: split target not resolved")
	}
}

// trySplit splits the hottest active group and delivers the resulting
// ACCEPT_KEYGROUP transfer (with extracted query state) over the wire.
func (n *Node) trySplit() {
	g, _, ok := n.server.HottestActiveGroup()
	if !ok {
		return
	}
	// ErrMaxDepth / ErrSplitExhausted / DHT failure: nothing left the server;
	// try again next period.
	_ = n.splitGroup(g)
}

// splitGroup splits one active group and delivers the resulting
// ACCEPT_KEYGROUP transfer. It is the shared body of the overload path
// (trySplit) and the admin verb (ForceSplit).
func (n *Node) splitGroup(g bitkey.Group) error {
	res, err := n.server.ExecuteSplit(g, n.precomputeSplitTargets(g))
	if err != nil {
		return err
	}
	n.meter.Drop(res.Split.String())
	n.resetQueryCount(res.Kept)
	n.emit(Event{Type: EventSplit, Group: g.String(),
		Detail: "kept=" + res.Kept.String() + " split=" + res.Split.String()})
	for _, tr := range res.Transfers {
		if tr.To == core.ServerID(n.Addr()) {
			continue
		}
		// A split creates the right child fresh: its ownership chain starts
		// at epoch 1.
		n.deliverTransfer(pendingTransfer{transfer: tr, queries: n.extractQueries(tr.Group), epoch: 1})
	}
	return nil
}

// extractQueries removes the queries stored in g (with their subscriber
// addresses) for state transfer.
func (n *Node) extractQueries(g bitkey.Group) []queryState {
	qs := n.engine.ExtractGroup(g)
	if len(qs) == 0 {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]queryState, 0, len(qs))
	for _, q := range qs {
		data, err := q.Marshal()
		if err != nil {
			continue
		}
		out = append(out, queryState{Query: data, Subscriber: n.subscribers[q.ID]})
		delete(n.subscribers, q.ID)
	}
	return out
}

// installQueries registers transferred query state locally and refreshes the
// meter's stored-query count for every active group the queries land in —
// including the covered-accept paths, where the containing group differs from
// the group the state arrived under. A query whose identifier key falls under
// no locally active group is NOT installed here: its packets route elsewhere
// (it would never match again) and the engine-by-active-group replica
// snapshot would never carry it, so it goes to the orphan requeue and is
// re-placed on whichever server owns its key.
func (n *Node) installQueries(states []queryState) {
	touched := make(map[string]bitkey.Group)
	var strays []queryState
	for _, st := range states {
		q, err := cq.UnmarshalQuery(st.Query)
		if err != nil {
			continue
		}
		ik, err := q.IdentifierKey(n.cfg.KeyBits)
		if err != nil {
			continue
		}
		g, ok := n.server.ManagesKey(ik)
		if !ok {
			strays = append(strays, st)
			continue
		}
		if err := n.engine.Register(q); err != nil && !errors.Is(err, cq.ErrDuplicateQuery) {
			continue
		}
		if st.Subscriber != "" {
			n.mu.Lock()
			n.subscribers[q.ID] = st.Subscriber
			n.mu.Unlock()
		}
		touched[g.String()] = g
	}
	for _, g := range touched {
		n.resetQueryCount(g)
	}
	n.orphanQueries(strays)
}

// resetQueryCount re-derives the meter's stored-query count for a group from
// the engine (labels change across splits and merges).
func (n *Node) resetQueryCount(g bitkey.Group) {
	n.meter.SetQueries(g.String(), len(n.engine.QueriesInGroup(g)))
}

// acceptKeyGroupPayload builds the ACCEPT_KEYGROUP wire payload for a group
// transfer carrying the extracted query state and the ownership epoch.
func acceptKeyGroupPayload(g bitkey.Group, parent core.ServerID, states []queryState, epoch uint64) ([]byte, error) {
	msg := core.AcceptKeyGroupMsg{
		GroupValue: g.Prefix.Value,
		GroupBits:  g.Prefix.Bits,
		Parent:     string(parent),
		Epoch:      epoch,
	}
	for i := range states {
		msg.Queries = append(msg.Queries, states[i].MarshalWire(nil))
	}
	return msg.MarshalWire(nil), nil
}

// deliverTransfer sends one ACCEPT_KEYGROUP message. On transport failure the
// transfer is parked (one entry per group — repeated failures refresh it, not
// duplicate it) and retried next load check; each retry re-resolves the
// group's current DHT owner (the original target may be dead and the ring
// healed around it). After transferRetryBudget attempts the transfer is
// abandoned — counted, and the group taken back locally so its key range
// stays served (and replicated) until a later reconciliation pass re-homes
// it. On a remote refusal the group is not retried — an earlier delivery
// landed or the peer's tree moved on — but the queries are orphan-requeued so
// they land on whichever servers cover their keys now.
func (n *Node) deliverTransfer(p pendingTransfer) {
	tr := p.transfer
	self := core.ServerID(n.Addr())
	if p.attempts > 0 {
		// A parked retry: the split-time target may no longer own the range.
		if vk, err := tr.Group.VirtualKey(n.cfg.KeyBits); err == nil {
			if owner, err := n.mapGroup(vk); err == nil && owner != core.NoServer {
				tr.To = owner
			}
		}
		if tr.To == self {
			// The ring now maps the range to us: keep the group.
			n.takeBackTransfer(p)
			return
		}
	}
	payload, err := acceptKeyGroupPayload(tr.Group, tr.Parent, p.queries, p.epoch)
	if err != nil {
		return
	}
	if _, err := n.caller.call(string(tr.To), TypeAcceptKeyGroup, payload); err != nil {
		if IsRemote(err) {
			n.meter.Drop(tr.Group.String())
			n.orphanQueries(p.queries)
			return
		}
		p.attempts++
		if p.attempts >= transferRetryBudget {
			atomic.AddInt64(&n.transferDrops, 1)
			n.takeBackTransfer(p)
			return
		}
		p.transfer = tr
		n.mu.Lock()
		n.pending[tr.Group.String()] = p
		n.mu.Unlock()
		return
	}
	n.meter.Drop(tr.Group.String())
	if p.attempts > 0 {
		// A parked retry may have been re-routed away from the split-time
		// target the parent recorded; tell the parent who actually holds the
		// child, or its load-report and merge bookkeeping stay aimed at the
		// dead original target. (No-op when the holder is unchanged.)
		n.notifyChildMoved(tr.Group, tr.Parent, tr.To)
	}
}

// takeBackTransfer re-activates an undeliverable transfer's group locally so
// its key range never goes unowned: the group becomes active (and replicated)
// here, and the next reconciliation pass hands it to the proper DHT owner
// once one is reachable.
func (n *Node) takeBackTransfer(p pendingTransfer) {
	g := p.transfer.Group
	if err := n.server.HandleAcceptKeyGroupEpoch(g, p.transfer.Parent, p.epoch); err != nil {
		n.orphanQueries(p.queries)
		return
	}
	n.installQueries(p.queries)
	n.resetQueryCount(g)
	n.notifyChildMoved(g, p.transfer.Parent, core.ServerID(n.Addr()))
}

// retryPending re-attempts parked ACCEPT_KEYGROUP deliveries in deterministic
// group order.
func (n *Node) retryPending() {
	n.mu.Lock()
	if len(n.pending) == 0 {
		n.mu.Unlock()
		return
	}
	keys := sortedKeys(n.pending)
	pending := make([]pendingTransfer, 0, len(keys))
	for _, k := range keys {
		pending = append(pending, n.pending[k])
	}
	n.pending = make(map[string]pendingTransfer)
	n.mu.Unlock()
	for _, p := range pending {
		n.deliverTransfer(p)
	}
}

// TransferDrops returns how many parked transfers were abandoned after
// exhausting their retry budget.
func (n *Node) TransferDrops() int64 { return atomic.LoadInt64(&n.transferDrops) }

// OrphanDrops returns how many orphaned queries were dropped after exhausting
// their placement budget.
func (n *Node) OrphanDrops() int64 { return atomic.LoadInt64(&n.orphanDrops) }

// reconcileOwnership hands active groups whose virtual key no longer maps to
// this node over to the current owner. This is what keeps the CLASH layer
// consistent with the DHT as nodes join: the successor of a group's hash
// point changes, and the group (with its query state) must follow. Transfers
// reuse ACCEPT_KEYGROUP, preserving the parent linkage, and the parent is
// told about the new holder (TypeChildMoved) so consolidation of the pair
// keeps working. A re-homed left child cannot be merged by its parent (the
// parent's merge logic needs the left leaf locally); such pairs simply stay
// split until a future tree-repair pass.
func (n *Node) reconcileOwnership() int {
	self := core.ServerID(n.Addr())
	moved := 0
	for _, e := range n.server.Entries() {
		if !e.Active {
			continue
		}
		vk, err := e.Group.VirtualKey(n.cfg.KeyBits)
		if err != nil {
			continue
		}
		owner, err := n.mapGroup(vk)
		if err != nil || owner == self {
			continue
		}
		moved += n.transferGroup(e, owner)
	}
	return moved
}

// transferGroup hands one active group (with its query state) to owner via
// ACCEPT_KEYGROUP and returns 1 when the group left this node (delivered or
// refused-as-covered), 0 when it stayed. Shared by the DHT reconciliation
// (reconcileOwnership) and the admin drain (drainStep).
func (n *Node) transferGroup(e core.Entry, owner core.ServerID) int {
	// Release before sending: a failed release means the snapshot is
	// stale (a concurrent RELEASE_KEYGROUP or merge already removed the
	// entry), and sending anyway would make the range active on two
	// nodes at once. The transfer carries the next ownership epoch, so
	// the receiving side can drop delayed duplicates of older transfers.
	epoch := e.Epoch + 1
	states := n.extractQueries(e.Group)
	if err := n.server.HandleRelease(e.Group); err != nil {
		n.installQueries(states)
		return 0
	}
	payload, err := acceptKeyGroupPayload(e.Group, e.Parent, states, epoch)
	if err == nil {
		_, err = n.caller.call(string(owner), TypeAcceptKeyGroup, payload)
	}
	if err != nil {
		if IsRemote(err) {
			// The owner refused: its table already covers the range with
			// finer groups (a stale copy on our side). Do not resurrect
			// the group here — that is how a range ends up active on two
			// nodes — just re-home the extracted queries and drop the
			// meter entry with the group.
			n.meter.Drop(e.Group.String())
			n.orphanQueries(states)
			return 1
		}
		// Transport failure: take the group back so its range stays
		// served. If the request did reach the owner (only the reply was
		// lost), the group is briefly active on both nodes; that is
		// transient — ownership is deterministic, so the next
		// reconciliation pass re-runs this transfer with a newer epoch
		// and the owner's idempotent accept collapses the duplicate.
		if aerr := n.server.HandleAcceptKeyGroupEpoch(e.Group, e.Parent, epoch); aerr == nil {
			n.installQueries(states)
		} else {
			n.orphanQueries(states)
		}
		return 0
	}
	n.meter.Drop(e.Group.String())
	n.notifyChildMoved(e.Group, e.Parent, owner)
	return 1
}

// notifyChildMoved tells the parent of a re-homed right child who holds it
// now, so the parent accepts the new holder's load reports and reclaims the
// group from the right place at merge time. Best effort: a missed update
// only stalls consolidation of that pair.
func (n *Node) notifyChildMoved(g bitkey.Group, parent, newHolder core.ServerID) {
	if parent == core.NoServer || g.Depth() == 0 || g.IsLeftChild() {
		return
	}
	if parent == core.ServerID(n.Addr()) {
		_ = n.server.HandleChildMoved(g, newHolder)
		return
	}
	msg := childMovedMsg{
		GroupValue: g.Prefix.Value,
		GroupBits:  g.Prefix.Bits,
		Holder:     string(newHolder),
	}
	_, _ = n.caller.call(string(parent), TypeChildMoved, msg.MarshalWire(nil))
}

// sendLoadReports delivers this period's leaf→parent load reports.
func (n *Node) sendLoadReports() {
	for _, rep := range n.server.LoadReports() {
		// A parent the failure detector currently calls dead is skipped
		// outright: the report is best effort and re-sent next period anyway,
		// and paying a deadline per report per period for a dead parent adds
		// up across groups.
		if n.susp.state(string(rep.To)) == chord.PeerDead {
			continue
		}
		msg := core.LoadReportMsg{
			GroupValue: rep.Group.Prefix.Value,
			GroupBits:  rep.Group.Prefix.Bits,
			Load:       rep.Load,
			From:       string(rep.From),
		}
		// Best effort: a missed report only delays consolidation.
		_, _ = n.caller.call(string(rep.To), TypeLoadReport, msg.MarshalWire(nil))
	}
}

// tryMerge executes at most one consolidation per period: a parked reclaim
// whose outcome is still unknown, or else the coldest eligible sibling pair.
// A remote right child is reclaimed with a RELEASE_KEYGROUP exchange that
// carries the child's query state back.
func (n *Node) tryMerge(now time.Time) {
	n.mu.Lock()
	parked := n.reclaims
	n.reclaims = nil
	n.mu.Unlock()
	if len(parked) > 0 {
		n.reclaim(parked[0], now)
		return
	}
	props := n.server.PlanMerges(n.cfg.Thresholds.Underload, now)
	if len(props) == 0 {
		return
	}
	n.reclaim(pendingReclaim{prop: props[0]}, now)
}

// reclaimRetryBudget bounds how often an unanswered RELEASE_KEYGROUP is
// retried before the reclaim is abandoned (the pair then simply stays split
// until a later load check proposes it again).
const reclaimRetryBudget = 10

// reclaim performs one consolidation attempt. A RELEASE_KEYGROUP whose reply
// is lost leaves the outcome unknown — the remote may or may not have
// released the group — so the attempt is parked and retried: on retry the
// release either succeeds normally or reports the group gone (released by
// the earlier attempt), in which case the merge completes without state.
func (n *Node) reclaim(r pendingReclaim, now time.Time) {
	prop := r.prop
	self := core.ServerID(n.Addr())
	var returned []queryState
	if prop.RightHolder != self {
		msg := core.ReleaseKeyGroupMsg{
			GroupValue: prop.RightChild.Prefix.Value,
			GroupBits:  prop.RightChild.Prefix.Bits,
			Parent:     n.Addr(),
		}
		reply, err := n.caller.call(string(prop.RightHolder), TypeReleaseKeyGroup, msg.MarshalWire(nil))
		if err != nil {
			if !IsRemote(err) && r.attempts < reclaimRetryBudget {
				r.attempts++
				n.mu.Lock()
				n.reclaims = append(n.reclaims, r)
				n.mu.Unlock()
			}
			return
		}
		var rel core.ReleaseKeyGroupReplyMsg
		if err := rel.UnmarshalWire(reply); err != nil {
			return
		}
		if !rel.OK && !rel.Gone {
			// The holder's view disagrees (the child was split further):
			// abort the merge.
			return
		}
		// rel.Gone: the holder released the group on an earlier attempt
		// whose reply was lost; its query state is gone with that reply, so
		// complete the merge without state rather than leave the key range
		// unowned.
		for _, raw := range rel.Queries {
			var st queryState
			if err := st.UnmarshalWire(raw); err == nil {
				returned = append(returned, st)
			}
		}
	}
	res, err := n.server.ExecuteMerge(prop.Parent, now)
	if err != nil {
		// The remote no longer holds the child but the merge bookkeeping
		// failed (e.g. the entry mutated concurrently): re-accept the child
		// locally so its key range stays served, and point the parent entry
		// at ourselves for a later local merge.
		if prop.RightHolder != self {
			if aerr := n.server.HandleAcceptKeyGroup(prop.RightChild, self); aerr == nil {
				_ = n.server.HandleChildMoved(prop.RightChild, self)
				n.installQueries(returned)
			}
		}
		return
	}
	n.installQueries(returned)
	left, right, serr := res.Merged.Split()
	if serr == nil {
		n.meter.Drop(left.String())
		n.meter.Drop(right.String())
	}
	n.resetQueryCount(res.Merged)
	n.emit(Event{Type: EventMerge, Group: res.Merged.String(), Peer: string(prop.RightHolder)})
}

// verdictString renders a chord.PeerState for event details.
func verdictString(s chord.PeerState) string {
	switch s {
	case chord.PeerDead:
		return "dead"
	case chord.PeerSuspect:
		return "suspect"
	default:
		return "ok"
	}
}

// record appends this period's samples to the metrics series: total load,
// hottest-group load from the ranking, table/engine sizes and the cumulative
// protocol counters.
func (n *Node) record(now time.Time, total float64, ranked []load.GroupLoad) {
	t := now.Sub(n.start).Seconds()
	n.series.Observe("load.total", t, total)
	if len(ranked) > 0 {
		n.series.Observe("load.hottest", t, ranked[0].Load)
	}
	n.series.Observe("groups.active", t, float64(len(n.server.ActiveGroups())))
	n.series.Observe("queries.stored", t, float64(n.engine.Len()))
	ctr := n.server.Counters()
	n.series.Observe("counter.splits", t, float64(ctr.Splits))
	n.series.Observe("counter.merges", t, float64(ctr.Merges))
	n.series.Observe("counter.groups_accepted", t, float64(ctr.GroupsAccepted))
	n.series.Observe("counter.groups_released", t, float64(ctr.GroupsReleased))
	n.series.Observe("counter.groups_recovered", t, float64(ctr.GroupsRecovered))
	n.series.Observe("counter.transfer_drops", t, float64(atomic.LoadInt64(&n.transferDrops)))
	origins, repGroups := n.replicaCounts()
	n.series.Observe("replicas.origins", t, float64(origins))
	n.series.Observe("replicas.groups", t, float64(repGroups))
	n.series.Observe("counter.objects_ok", t, float64(ctr.ObjectsOK))
	n.series.Observe("counter.objects_corrected", t, float64(ctr.ObjectsCorrect))
	n.series.Observe("counter.objects_wrong", t, float64(ctr.ObjectsWrong))
	ts := n.tr.Stats()
	n.series.Observe("net.frames_in", t, float64(ts.FramesIn))
	n.series.Observe("net.frames_out", t, float64(ts.FramesOut))
	n.series.Observe("net.bytes_in", t, float64(ts.BytesIn))
	n.series.Observe("net.bytes_out", t, float64(ts.BytesOut))
	n.series.Observe("net.in_flight", t, float64(ts.InFlight))
	n.series.Observe("net.reconnects", t, float64(ts.Reconnects))
	n.series.Observe("net.oversized_drops", t, float64(ts.OversizedDrops))
	n.series.Observe("net.timeouts", t, float64(ts.Timeouts))
	n.series.Observe("net.retries", t, float64(ts.Retries))
	n.series.Observe("net.shed", t, float64(ts.Shed))
	n.series.Observe("suspicion.peers", t, float64(len(n.susp.snapshot())))
}
