package load

import (
	"sort"
	"sync"
	"time"
)

// Meter accumulates per-group work measurements over a measurement interval.
// A server (live overlay) or the simulator records packet arrivals and query
// registrations against group labels; at each load-check period the owner
// reads the per-group samples, converts them to loads with a Model and resets
// the rate counters for the next interval.
//
// Meter is safe for concurrent use so the live overlay can record arrivals
// from many connection goroutines.
type Meter struct {
	mu      sync.Mutex
	arrived map[string]float64 // packets observed this interval, per group
	queries map[string]int     // currently registered queries, per group
	window  float64            // nominal interval length in seconds

	// now, when set, timestamps snapshots so rates are computed over the
	// actual elapsed interval instead of the nominal window (see
	// NewMeterClock). lastSnap is the previous snapshot time.
	now      func() time.Time
	lastSnap time.Time
}

// NewMeter creates a meter for a measurement window of the given length in
// seconds. The window is used to convert packet counts into rates.
func NewMeter(windowSeconds float64) *Meter {
	return NewMeterClock(windowSeconds, nil)
}

// NewMeterClock creates a meter that reads interval boundaries from the given
// clock: each Snapshot converts packet counts into rates using the time
// actually elapsed since the previous snapshot, clamped to [window/2,
// window*2] so one jittered or delayed period cannot produce a wild rate
// estimate. The overlay passes its node clock here, which is what lets the
// simulator's virtual clock drive measurement windows in virtual time. A nil
// now falls back to the fixed nominal window (NewMeter's behavior).
func NewMeterClock(windowSeconds float64, now func() time.Time) *Meter {
	if windowSeconds <= 0 {
		windowSeconds = 1
	}
	m := &Meter{
		arrived: make(map[string]float64),
		queries: make(map[string]int),
		window:  windowSeconds,
		now:     now,
	}
	if now != nil {
		m.lastSnap = now()
	}
	return m
}

// RecordPackets adds n packet arrivals for a group in the current interval.
func (m *Meter) RecordPackets(group string, n float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.arrived[group] += n
}

// SetQueries sets the current number of stored queries for a group.
func (m *Meter) SetQueries(group string, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		delete(m.queries, group)
		return
	}
	m.queries[group] = n
}

// AddQueries adjusts the stored-query count for a group by delta.
func (m *Meter) AddQueries(group string, delta int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.queries[group] + delta
	if n <= 0 {
		delete(m.queries, group)
		return
	}
	m.queries[group] = n
}

// Drop removes all state for a group (after it has been transferred away).
func (m *Meter) Drop(group string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.arrived, group)
	delete(m.queries, group)
}

// Snapshot returns the per-group samples for the interval that just ended and
// resets the packet counters (query counts persist, since queries are
// long-lived state). With a clock (NewMeterClock) the rate denominator is the
// clamped elapsed time since the previous snapshot; without one it is the
// nominal window.
func (m *Meter) Snapshot() map[string]Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	window := m.window
	if m.now != nil {
		t := m.now()
		elapsed := t.Sub(m.lastSnap).Seconds()
		m.lastSnap = t
		window = min(max(elapsed, m.window/2), m.window*2)
	}
	out := make(map[string]Sample, len(m.arrived)+len(m.queries))
	for g, pkts := range m.arrived {
		s := out[g]
		s.DataRate = pkts / window
		out[g] = s
	}
	for g, q := range m.queries {
		s := out[g]
		s.Queries = q
		out[g] = s
	}
	m.arrived = make(map[string]float64)
	return out
}

// GroupLoad pairs a group label with its measured load fraction.
type GroupLoad struct {
	Group string
	Load  float64
}

// Rank converts per-group samples into load fractions and returns them sorted
// from hottest to coldest, breaking ties by group label for determinism.
func Rank(model Model, samples map[string]Sample) []GroupLoad {
	out := make([]GroupLoad, 0, len(samples))
	for g, s := range samples {
		out = append(out, GroupLoad{Group: g, Load: model.Load(s)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Load != out[j].Load {
			return out[i].Load > out[j].Load
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// Total sums the load fractions of a ranking.
func Total(groups []GroupLoad) float64 {
	var sum float64
	for _, g := range groups {
		sum += g.Load
	}
	return sum
}

// SplitPolicy selects which key group an overloaded server should split.
type SplitPolicy int

// Split policies. The paper splits the hottest group; RandomSplit exists for
// the ablation benchmarks.
const (
	SplitHottest SplitPolicy = iota + 1
	SplitRandom
)

// PickSplit returns the group to split under the given policy from a ranking
// (hottest first). The rand function is only used by SplitRandom and must
// return a value in [0, n). It returns false if the ranking is empty.
func PickSplit(policy SplitPolicy, ranked []GroupLoad, randIntn func(int) int) (GroupLoad, bool) {
	if len(ranked) == 0 {
		return GroupLoad{}, false
	}
	switch policy {
	case SplitRandom:
		if randIntn == nil {
			return ranked[0], true
		}
		return ranked[randIntn(len(ranked))], true
	default:
		return ranked[0], true
	}
}

// PickColdest returns the coldest group of a ranking (the paper's
// consolidation candidate). It returns false if the ranking is empty.
func PickColdest(ranked []GroupLoad) (GroupLoad, bool) {
	if len(ranked) == 0 {
		return GroupLoad{}, false
	}
	return ranked[len(ranked)-1], true
}
