// Command clashwire benchmarks the CLASH wire layer and writes the
// BENCH_wire.json snapshot:
//
//   - codec microbenchmarks: the hand-rolled binary MarshalWire/UnmarshalWire
//     against the retained JSON baseline (overlay/legacy_json.go), ns/op,
//     allocs/op and encoded sizes;
//   - transport benchmark: sequential vs pipelined call throughput over a
//     single multiplexed TCP connection;
//   - end-to-end benchmark: publish throughput against a small live overlay
//     on loopback TCP, sequential vs concurrent vs batched clients.
//
// Regenerate the checked-in snapshot with:
//
//	go run ./cmd/clashwire -out BENCH_wire.json
//
// CI runs `clashwire -quick` as a smoke test.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/core"
	"clash/internal/load"
	"clash/internal/overlay"
	"clash/internal/wirecodec"
)

type codecResult struct {
	Message             string  `json:"message"`
	BinaryMarshalNsOp   float64 `json:"binary_marshal_ns_op"`
	BinaryMarshalAllocs int64   `json:"binary_marshal_allocs_op"`
	BinaryUnmarshalNsOp float64 `json:"binary_unmarshal_ns_op"`
	JSONMarshalNsOp     float64 `json:"json_marshal_ns_op"`
	JSONUnmarshalNsOp   float64 `json:"json_unmarshal_ns_op"`
	BinaryBytes         int     `json:"binary_bytes"`
	JSONBytes           int     `json:"json_bytes"`
	MarshalSpeedup      float64 `json:"marshal_speedup"`
	UnmarshalSpeedup    float64 `json:"unmarshal_speedup"`
}

type transportResult struct {
	Calls                 int     `json:"calls"`
	SequentialCallsPerSec float64 `json:"sequential_calls_per_sec"`
	PipelinedWorkers      int     `json:"pipelined_workers"`
	PipelinedCallsPerSec  float64 `json:"pipelined_calls_per_sec"`
	PipelineSpeedup       float64 `json:"pipeline_speedup"`
	ServerConnections     int     `json:"server_connections"`
}

type e2eResult struct {
	Nodes                int     `json:"nodes"`
	Packets              int     `json:"packets"`
	SequentialPPS        float64 `json:"sequential_pps"`
	ConcurrentWorkers    int     `json:"concurrent_workers"`
	ConcurrentPPS        float64 `json:"concurrent_pps"`
	BatchSize            int     `json:"batch_size"`
	BatchedPPS           float64 `json:"batched_pps"`
	ConcurrencySpeedup   float64 `json:"concurrency_speedup"`
	BatchSpeedup         float64 `json:"batch_speedup"`
	ClientConnections    int     `json:"client_connections_per_node"`
	BaselineOverlayNote  string  `json:"baseline_note"`
	BaselineOverlayPPS   float64 `json:"baseline_overlay_pps,omitempty"`
	BaselineOverlayCodec string  `json:"baseline_overlay_codec,omitempty"`
}

type benchOut struct {
	GoVersion string `json:"go_version"`
	// NumCPU contextualises the pipelining numbers: on a single core the
	// pipelined gain is syscall/RTT overlap only; with real cores and real
	// network latency the concurrency win grows with both.
	NumCPU    int             `json:"num_cpu"`
	MaxProcs  int             `json:"go_max_procs"`
	Quick     bool            `json:"quick,omitempty"`
	Codec     []codecResult   `json:"codec"`
	Transport transportResult `json:"transport_tcp"`
	EndToEnd  e2eResult       `json:"end_to_end_tcp"`
}

func main() {
	var (
		out   = flag.String("out", "", "write the JSON benchmark snapshot to this file")
		quick = flag.Bool("quick", false, "smoke mode: tiny iteration counts (CI)")
	)
	flag.Parse()
	if err := run(*out, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "clashwire:", err)
		os.Exit(1)
	}
}

func run(out string, quick bool) error {
	res := benchOut{GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(), MaxProcs: runtime.GOMAXPROCS(0), Quick: quick}
	res.Codec = codecBenches()
	for _, c := range res.Codec {
		fmt.Printf("codec %-22s binary %7.1f ns/op (%d allocs, %3dB)  json %8.1f ns/op (%3dB)  speedup %5.1fx marshal / %5.1fx unmarshal\n",
			c.Message, c.BinaryMarshalNsOp, c.BinaryMarshalAllocs, c.BinaryBytes,
			c.JSONMarshalNsOp, c.JSONBytes, c.MarshalSpeedup, c.UnmarshalSpeedup)
	}

	tr, err := transportBench(quick)
	if err != nil {
		return err
	}
	res.Transport = tr
	fmt.Printf("transport: %d calls — sequential %.0f calls/s, pipelined(%d) %.0f calls/s (%.1fx) over %d connection(s)\n",
		tr.Calls, tr.SequentialCallsPerSec, tr.PipelinedWorkers, tr.PipelinedCallsPerSec,
		tr.PipelineSpeedup, tr.ServerConnections)

	e2e, err := endToEndBench(quick)
	if err != nil {
		return err
	}
	res.EndToEnd = e2e
	fmt.Printf("end-to-end: %d nodes, %d packets — sequential %.0f pkt/s, concurrent(%d) %.0f pkt/s (%.1fx), batched(%d) %.0f pkt/s (%.1fx)\n",
		e2e.Nodes, e2e.Packets, e2e.SequentialPPS, e2e.ConcurrentWorkers, e2e.ConcurrentPPS,
		e2e.ConcurrencySpeedup, e2e.BatchSize, e2e.BatchedPPS, e2e.BatchSpeedup)

	if out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", out)
	}
	return nil
}

// codecBenches measures the binary codec against the JSON baseline on the
// two hot protocol messages and the 64-object batch.
func codecBenches() []codecResult {
	obj := core.AcceptObjectMsg{
		KeyValue: 0xABCDE, KeyBits: 24, Depth: 7, Kind: core.ObjectData,
		Payload: []byte(`{"speed":88.5,"heading":271}`),
	}
	reply := core.AcceptObjectReplyMsg{
		Status: core.StatusOK, GroupValue: 0b1010101, GroupBits: 7,
		CorrectDepth: 7, Matches: []string{"q-17", "q-23"},
	}
	batch := core.AcceptBatchMsg{Objects: make([]core.AcceptObjectMsg, 64)}
	for i := range batch.Objects {
		o := obj
		o.KeyValue = uint64(i) << 4
		batch.Objects[i] = o
	}

	return []codecResult{
		benchPair("accept_object", &obj, func() any { return &core.AcceptObjectMsg{} }),
		benchPair("accept_object_reply", &reply, func() any { return &core.AcceptObjectReplyMsg{} }),
		benchPair("accept_batch_64", &batch, func() any { return &core.AcceptBatchMsg{} }),
	}
}

// wireCodec is the MarshalWire/UnmarshalWire surface the core messages share.
type wireCodec interface {
	MarshalWire(b []byte) []byte
	UnmarshalWire(data []byte) error
}

func benchPair(name string, msg wireCodec, fresh func() any) codecResult {
	bin := msg.MarshalWire(nil)
	js, err := json.Marshal(msg)
	if err != nil {
		panic(err)
	}

	binMarshal := testing.Benchmark(func(b *testing.B) {
		buf := wirecodec.GetBuf()
		defer wirecodec.PutBuf(buf)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = msg.MarshalWire(buf[:0])
		}
	})
	binUnmarshal := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fresh().(wireCodec).UnmarshalWire(bin); err != nil {
				b.Fatal(err)
			}
		}
	})
	jsonMarshal := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	jsonUnmarshal := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := json.Unmarshal(js, fresh()); err != nil {
				b.Fatal(err)
			}
		}
	})

	c := codecResult{
		Message:             name,
		BinaryMarshalNsOp:   nsOp(binMarshal),
		BinaryMarshalAllocs: binMarshal.AllocsPerOp(),
		BinaryUnmarshalNsOp: nsOp(binUnmarshal),
		JSONMarshalNsOp:     nsOp(jsonMarshal),
		JSONUnmarshalNsOp:   nsOp(jsonUnmarshal),
		BinaryBytes:         len(bin),
		JSONBytes:           len(js),
	}
	if c.BinaryMarshalNsOp > 0 {
		c.MarshalSpeedup = c.JSONMarshalNsOp / c.BinaryMarshalNsOp
	}
	if c.BinaryUnmarshalNsOp > 0 {
		c.UnmarshalSpeedup = c.JSONUnmarshalNsOp / c.BinaryUnmarshalNsOp
	}
	return c
}

func nsOp(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// transportBench measures raw call throughput over one multiplexed TCP
// connection: one caller issuing lockstep exchanges vs 32 callers pipelining.
func transportBench(quick bool) (transportResult, error) {
	calls := 20000
	if quick {
		calls = 1000
	}
	srv, err := overlay.ListenTCP("127.0.0.1:0")
	if err != nil {
		return transportResult{}, err
	}
	defer srv.Close()
	srv.SetHandler(func(msgType string, payload []byte) ([]byte, error) {
		// The reply must not alias the pooled request payload (Handler's
		// ownership contract): echo a copy.
		return append([]byte(nil), payload...), nil
	})
	cli, err := overlay.ListenTCP("127.0.0.1:0")
	if err != nil {
		return transportResult{}, err
	}
	defer cli.Close()

	payload := []byte("ping-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	doCalls := func(workers int) (float64, error) {
		errCh := make(chan error, workers)
		start := time.Now()
		for w := 0; w < workers; w++ {
			per := calls / workers
			go func() {
				for i := 0; i < per; i++ {
					if _, err := cli.Call(srv.Addr(), overlay.TypePing, payload); err != nil {
						errCh <- err
						return
					}
				}
				errCh <- nil
			}()
		}
		for w := 0; w < workers; w++ {
			if err := <-errCh; err != nil {
				return 0, err
			}
		}
		total := calls / workers * workers
		return float64(total) / time.Since(start).Seconds(), nil
	}

	seq, err := doCalls(1)
	if err != nil {
		return transportResult{}, err
	}
	const workers = 32
	pip, err := doCalls(workers)
	if err != nil {
		return transportResult{}, err
	}
	res := transportResult{
		Calls:                 calls,
		SequentialCallsPerSec: seq,
		PipelinedWorkers:      workers,
		PipelinedCallsPerSec:  pip,
		ServerConnections:     1,
	}
	if seq > 0 {
		res.PipelineSpeedup = pip / seq
	}
	return res, nil
}

// endToEndBench boots a small overlay on loopback TCP and measures publish
// throughput for a sequential client, a concurrent client (pipelining over
// the shared connections) and a batching client.
func endToEndBench(quick bool) (e2eResult, error) {
	const nodesN = 3
	packets := 30000
	if quick {
		packets = 2000
	}
	keyBits := 24
	space := chord.DefaultSpace()
	cfg := overlay.Config{
		KeyBits:           keyBits,
		Space:             space,
		Model:             load.DefaultModel(1e9), // never split during the bench
		BootstrapDepth:    2,
		StabilizeInterval: 50 * time.Millisecond,
		LoadCheckInterval: 500 * time.Millisecond,
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nodes := make([]*overlay.Node, nodesN)
	for i := range nodes {
		tr, err := overlay.ListenTCP("127.0.0.1:0")
		if err != nil {
			return e2eResult{}, err
		}
		node, err := overlay.NewNode(tr, cfg)
		if err != nil {
			return e2eResult{}, err
		}
		nodes[i] = node
		defer node.Close()
	}
	if err := nodes[0].BootstrapRoots(); err != nil {
		return e2eResult{}, err
	}
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			return e2eResult{}, err
		}
	}
	for r := 0; r < 3*space.Bits; r++ {
		for _, n := range nodes {
			n.Tick()
		}
	}
	for i := 0; i < 2; i++ {
		now := time.Now()
		for _, n := range nodes {
			n.LoadCheck(now)
		}
	}
	for _, n := range nodes {
		go n.Run(ctx)
	}
	seeds := make([]string, nodesN)
	for i, n := range nodes {
		seeds[i] = n.Addr()
	}

	clientTr, err := overlay.ListenTCP("127.0.0.1:0")
	if err != nil {
		return e2eResult{}, err
	}
	client, err := overlay.NewClient(clientTr, keyBits, space, seeds...)
	if err != nil {
		return e2eResult{}, err
	}
	defer client.Close()
	// Drain pushed matches (none expected — no queries registered).
	go func() {
		for range client.Matches() {
		}
	}()

	key := func(i int) bitkey.Key {
		return bitkey.Key{Value: uint64(i*2654435761) & (1<<uint(keyBits) - 1), Bits: keyBits}
	}
	// Warm the route cache across the 4 root groups.
	for i := 0; i < 64; i++ {
		if _, err := client.Publish(key(i), nil, nil); err != nil {
			return e2eResult{}, fmt.Errorf("warmup publish %d: %w", i, err)
		}
	}

	publishRange := func(workers int) (float64, error) {
		errCh := make(chan error, workers)
		start := time.Now()
		per := packets / workers
		for w := 0; w < workers; w++ {
			go func(w int) {
				for i := 0; i < per; i++ {
					if _, err := client.Publish(key(w*per+i), nil, nil); err != nil {
						errCh <- err
						return
					}
				}
				errCh <- nil
			}(w)
		}
		for w := 0; w < workers; w++ {
			if err := <-errCh; err != nil {
				return 0, err
			}
		}
		return float64(per*workers) / time.Since(start).Seconds(), nil
	}

	seq, err := publishRange(1)
	if err != nil {
		return e2eResult{}, err
	}
	const workers = 32
	conc, err := publishRange(workers)
	if err != nil {
		return e2eResult{}, err
	}

	const batchSize = 64
	batchPPS := 0.0
	{
		start := time.Now()
		sent := 0
		for sent < packets {
			n := batchSize
			if packets-sent < n {
				n = packets - sent
			}
			items := make([]overlay.BatchItem, n)
			for i := range items {
				items[i] = overlay.BatchItem{Key: key(sent + i)}
			}
			_, errs := client.PublishBatch(items)
			for _, e := range errs {
				if e != nil {
					return e2eResult{}, e
				}
			}
			sent += n
		}
		batchPPS = float64(sent) / time.Since(start).Seconds()
	}

	res := e2eResult{
		Nodes:               nodesN,
		Packets:             packets,
		SequentialPPS:       seq,
		ConcurrentWorkers:   workers,
		ConcurrentPPS:       conc,
		BatchSize:           batchSize,
		BatchedPPS:          batchPPS,
		ClientConnections:   1,
		BaselineOverlayNote: "PR 2 JSON/sequential overlay: see BENCH_overlay.json (in-memory transport)",
	}
	if seq > 0 {
		res.ConcurrencySpeedup = conc / seq
		res.BatchSpeedup = batchPPS / seq
	}
	return res, nil
}
