package overlay

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Default CallPolicy values. The short class covers liveness and ring
// maintenance (a wedged stabilize round must cost far less than the old
// blanket 10s timeout), the data class covers object/query traffic, and the
// bulk class covers snapshot-sized transfers — which is also the hard
// ceiling any adaptive deadline may escalate to.
const (
	defaultShortTimeout = 2500 * time.Millisecond
	defaultDataTimeout  = 5 * time.Second
	defaultBulkTimeout  = 10 * time.Second
	defaultMaxAttempts  = 3
	defaultRetryBackoff = 25 * time.Millisecond
	defaultMaxBackoff   = time.Second
)

// CallPolicy tunes the per-class RPC deadlines and the retry/backoff policy
// of a node's resilient call path. Zero fields take the package defaults.
type CallPolicy struct {
	// ShortTimeout is the deadline class for liveness and ring-maintenance
	// messages (ping, chord lookups, load reports).
	ShortTimeout time.Duration
	// DataTimeout is the deadline class for data-plane traffic (objects,
	// batches, match pushes).
	DataTimeout time.Duration
	// BulkTimeout is the deadline class for snapshot-sized transfers
	// (accept_keygroup, replicate, recover) and the ceiling for adaptive
	// deadline escalation.
	BulkTimeout time.Duration
	// MaxAttempts bounds the attempts of one logical call (first try plus
	// retries) for idempotent and shed-retryable messages.
	MaxAttempts int
	// RetryBackoff is the base of the jittered exponential backoff between
	// attempts; MaxBackoff caps it.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
}

// withDefaults fills zero fields with the package defaults.
func (p CallPolicy) withDefaults() CallPolicy {
	if p.ShortTimeout <= 0 {
		p.ShortTimeout = defaultShortTimeout
	}
	if p.DataTimeout <= 0 {
		p.DataTimeout = defaultDataTimeout
	}
	if p.BulkTimeout <= 0 {
		p.BulkTimeout = defaultBulkTimeout
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultMaxAttempts
	}
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = defaultRetryBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = defaultMaxBackoff
	}
	return p
}

// classTimeout maps a message type to its deadline class.
func (p CallPolicy) classTimeout(msgType string) time.Duration {
	switch msgType {
	case TypePing, TypeFindSuccessor, TypeSuccessor, TypePredecessor,
		TypeNotify, TypeLoadReport, TypeChildMoved, TypeTopology:
		return p.ShortTimeout
	case TypeAcceptKeyGroup, TypeReplicateKeyGroup, TypeRecoverKeyGroups:
		return p.BulkTimeout
	default:
		return p.DataTimeout
	}
}

// idempotentTypes lists the messages a caller may safely resend after an
// ambiguous failure: reads (lookups, ping, status, recover), last-write-wins
// notifications (notify, load_report, child_moved), and replicate — which is
// full-state replacement ordered by (incarnation, version), so a duplicate
// collapses into the same state. Excluded: accept_object/accept_batch (a
// resend double-meters the packet's load), accept_keygroup and
// release_keygroup (ownership handoffs guarded by their own parked-transfer
// retry machinery), and match (at-most-once delivery to subscribers).
var idempotentTypes = map[string]bool{
	TypePing:              true,
	TypeFindSuccessor:     true,
	TypeSuccessor:         true,
	TypePredecessor:       true,
	TypeNotify:            true,
	TypeLoadReport:        true,
	TypeChildMoved:        true,
	TypeReplicateKeyGroup: true,
	TypeRecoverKeyGroups:  true,
	TypeStatus:            true,
	TypeTopology:          true,
}

// caller is a node's resilient RPC path: every outbound call picks an
// adaptive per-peer deadline (suspicion.timeoutFor), feeds the outcome back
// into the suspicion tracker, and retries with jittered exponential backoff
// where a resend is safe — idempotent messages after hard failures, and any
// message after a shed (the handler never ran). Deadline expiries are never
// retried within one logical call: the escalated deadline applies to the
// next call, so a wedged peer costs each caller at most one timeout per
// exchange.
type caller struct {
	tr     Transport
	rr     RetryRecorder // non-nil when tr counts policy-level retries
	policy CallPolicy
	susp   *suspicion
	now    func() time.Time
	// sleep implements the backoff delay; nil disables backoff entirely
	// (the single-threaded simulator, where sleeping inside an event would
	// wedge the engine — retries go back-to-back in virtual time and no
	// jitter PRNG draw happens, preserving determinism).
	sleep func(time.Duration)

	mu  sync.Mutex
	rng *rand.Rand
}

func newCaller(tr Transport, policy CallPolicy, susp *suspicion, now func() time.Time, sleep func(time.Duration), seed int64) *caller {
	c := &caller{
		tr:     tr,
		policy: policy.withDefaults(),
		susp:   susp,
		now:    now,
		sleep:  sleep,
	}
	c.rr, _ = tr.(RetryRecorder)
	if sleep != nil {
		c.rng = rand.New(rand.NewSource(seed))
	}
	return c
}

// call performs one logical RPC under the policy and returns the reply
// payload. Errors keep their transport identity (ErrDeadline, ErrShed,
// ErrUnreachable wraps, *RemoteError).
func (c *caller) call(addr, msgType string, payload []byte) ([]byte, error) {
	class := c.policy.classTimeout(msgType)
	idempotent := idempotentTypes[msgType]
	for attempt := 0; ; attempt++ {
		timeout := c.susp.timeoutFor(addr, class, c.policy.BulkTimeout)
		var rtt time.Duration
		start := c.now()
		reply, err := c.tr.CallOpts(addr, msgType, payload, CallOpts{Timeout: timeout, RTT: &rtt})
		if err == nil || IsRemote(err) {
			// A remote application error still proves the peer alive.
			if rtt == 0 {
				rtt = c.now().Sub(start)
			}
			c.susp.observeSuccess(addr, rtt)
			return reply, err
		}
		shed := errors.Is(err, ErrShed)
		gray := errors.Is(err, ErrDeadline)
		c.susp.observeFailure(addr, gray || shed)
		retryable := shed || (idempotent && !gray)
		if !retryable || attempt+1 >= c.policy.MaxAttempts {
			return nil, err
		}
		if c.rr != nil {
			c.rr.RecordRetry()
		}
		c.backoff(attempt)
	}
}

// backoff sleeps a jittered exponential delay: half the doubled base plus a
// uniform random half, capped at MaxBackoff.
func (c *caller) backoff(attempt int) {
	if c.sleep == nil {
		return
	}
	d := c.policy.RetryBackoff << uint(attempt)
	if d > c.policy.MaxBackoff || d <= 0 {
		d = c.policy.MaxBackoff
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)))
	c.mu.Unlock()
	c.sleep(d/2 + jitter/2)
}
