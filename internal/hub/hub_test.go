package hub

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/cq"
	"clash/internal/load"
	"clash/internal/metrics"
	"clash/internal/overlay"
)

// testCluster is a live loopback-TCP overlay with a hub (and HTTP server)
// mounted on every node — the e2e fixture for the control-plane tests.
type testCluster struct {
	cfg   overlay.Config
	nodes []*overlay.Node
	hubs  []*Hub
	srvs  []*httptest.Server
	now   time.Time
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	c := &testCluster{
		cfg: overlay.Config{
			KeyBits:           16,
			Space:             chord.DefaultSpace(),
			BootstrapDepth:    2,
			Model:             load.DefaultModel(200),
			LoadCheckInterval: time.Second,
			ReplicationFactor: 2,
		},
		now: time.Now(),
	}
	for i := 0; i < n; i++ {
		tr, err := overlay.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenTCP: %v", err)
		}
		node, err := overlay.NewNode(tr, c.cfg)
		if err != nil {
			t.Fatalf("NewNode %d: %v", i, err)
		}
		c.nodes = append(c.nodes, node)
		h := New(node)
		c.hubs = append(c.hubs, h)
		c.srvs = append(c.srvs, httptest.NewServer(h.Handler()))
	}
	t.Cleanup(func() {
		for _, s := range c.srvs {
			s.Close()
		}
		for _, node := range c.nodes {
			_ = node.Close()
		}
	})
	if err := c.nodes[0].BootstrapRoots(); err != nil {
		t.Fatal(err)
	}
	for _, node := range c.nodes[1:] {
		if err := node.Join(c.nodes[0].Addr()); err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	c.tick(c.nodes, 8)
	c.check(c.nodes)
	c.check(c.nodes)
	return c
}

// tick runs full maintenance rounds on the given nodes.
func (c *testCluster) tick(nodes []*overlay.Node, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			n.Tick()
			_ = n.FixAllFingers()
		}
	}
}

// check advances virtual time one load-check interval and runs a load check
// on the given nodes.
func (c *testCluster) check(nodes []*overlay.Node) {
	c.now = c.now.Add(c.cfg.LoadCheckInterval)
	for _, n := range nodes {
		n.LoadCheck(c.now)
	}
}

func (c *testCluster) client(t *testing.T) *overlay.Client {
	t.Helper()
	tr, err := overlay.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := overlay.NewClient(tr, c.cfg.KeyBits, c.cfg.Space, c.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	return cli
}

// holderIdx returns the index of a node holding at least one active group,
// preferring non-bootstrap members.
func (c *testCluster) holderIdx(t *testing.T) int {
	t.Helper()
	for i := len(c.nodes) - 1; i >= 0; i-- {
		if len(c.nodes[i].Server().ActiveGroups()) > 0 {
			return i
		}
	}
	t.Fatal("no node holds a group")
	return -1
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func httpPost(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// awaitEvent connects to an /events stream and reads until an event of the
// wanted type arrives (replay included via ?since=0) or the timeout expires.
func awaitEvent(t *testing.T, baseURL, evType string, timeout time.Duration) overlay.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/events?since=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev overlay.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad event JSON %q: %v", line, err)
		}
		if ev.Type == evType {
			return ev
		}
	}
	t.Fatalf("event %q not seen on %s/events: %v", evType, baseURL, sc.Err())
	return overlay.Event{}
}

// TestHubControlPlane drives a live 3-node TCP cluster through traced
// publishes and an admin split, then checks every read endpoint: /metrics
// (lints clean, carries the protocol/transport/trace families), /status,
// /topology (complete ring walk), /traces/sample, and /events (the split
// event arrives on a live SSE stream).
func TestHubControlPlane(t *testing.T) {
	c := newTestCluster(t, 3)
	cli := c.client(t)
	cli.SetTraceEvery(1)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		key := bitkey.Key{Value: uint64(rng.Intn(1 << 16)), Bits: 16}
		if _, err := cli.Publish(key, map[string]float64{"speed": float64(rng.Intn(100))}, nil); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}

	hi := c.holderIdx(t)
	base := c.srvs[hi].URL

	// Live event stream: subscribe first, then trigger the split.
	evCh := make(chan overlay.Event, 1)
	go func() {
		evCh <- awaitEvent(t, base, overlay.EventSplit, 10*time.Second)
	}()
	// Give the stream a moment to attach so the test exercises live fan-out
	// (replay would still catch the event either way).
	time.Sleep(50 * time.Millisecond)

	group := c.nodes[hi].Server().ActiveGroups()[0]
	code, body := httpPost(t, base+"/admin/split/"+group.String())
	if code != http.StatusOK {
		t.Fatalf("admin split: %d %s", code, body)
	}
	select {
	case ev := <-evCh:
		if ev.Group != group.String() {
			t.Errorf("split event group = %q, want %q", ev.Group, group)
		}
		if ev.Seq == 0 || ev.Node != c.nodes[hi].Addr() {
			t.Errorf("split event not stamped: %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("split event never arrived on /events")
	}

	// Metrics: parseable, linted, and carrying the expected families.
	code, body = httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, lintErr := range metrics.LintPrometheus(strings.NewReader(body)) {
		t.Errorf("promlint: %v", lintErr)
	}
	for _, family := range []string{
		"clash_node_info", "clash_splits_total", "clash_merges_total",
		"clash_groups_accepted_total", "clash_groups_released_total",
		"clash_groups_recovered_total", "clash_objects_total",
		"clash_load_fraction", "clash_groups_active", "clash_queries",
		"clash_group_load_fraction", "clash_transport_frames_total",
		"clash_transport_bytes_total", "clash_transport_in_flight",
		"clash_suspicion_score", "clash_trace_stage_seconds",
		"clash_events_total",
	} {
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(body, `clash_events_total{type="split"}`) {
		t.Error("/metrics missing split event count")
	}
	// The scrape must agree with the node's own counter (which also counts
	// the bootstrap partition splits).
	splits := c.nodes[hi].Server().Counters().Splits
	if splits < 1 {
		t.Errorf("splits counter = %d after admin split", splits)
	}
	if !strings.Contains(body, fmt.Sprintf("clash_splits_total %d", splits)) {
		t.Errorf("/metrics clash_splits_total disagrees with node counter %d", splits)
	}
	if !strings.Contains(body, `clash_trace_stage_seconds_count{stage="route"}`) {
		t.Error("/metrics missing route-stage trace histogram samples")
	}

	// Traces: the sampled publishes produced records with a route stage.
	code, body = httpGet(t, base+"/traces/sample")
	if code != http.StatusOK {
		t.Fatalf("/traces/sample: %d", code)
	}
	var sample TraceSample
	if err := json.Unmarshal([]byte(body), &sample); err != nil {
		t.Fatalf("/traces/sample JSON: %v", err)
	}
	if sample.Count == 0 || len(sample.Recent) == 0 {
		t.Fatalf("no traces sampled: %+v", sample)
	}
	if _, ok := sample.Stages[overlay.TraceStageRoute]; !ok {
		t.Errorf("trace sample missing route stage: %v", sample.Stages)
	}

	// Status passthrough.
	code, body = httpGet(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status: %d", code)
	}
	var st overlay.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status JSON: %v", err)
	}
	if st.Addr != c.nodes[hi].Addr() {
		t.Errorf("/status addr = %q, want %q", st.Addr, c.nodes[hi].Addr())
	}

	// Topology: the walk closes over all three members and sees all groups
	// (4 bootstrap roots; the split replaced one with its two children).
	code, body = httpGet(t, base+"/topology")
	if code != http.StatusOK {
		t.Fatalf("/topology: %d", code)
	}
	var topo TopologyView
	if err := json.Unmarshal([]byte(body), &topo); err != nil {
		t.Fatalf("/topology JSON: %v", err)
	}
	if !topo.Complete {
		t.Errorf("topology walk incomplete: %+v", topo)
	}
	if len(topo.Nodes) != 3 {
		t.Errorf("topology saw %d nodes, want 3", len(topo.Nodes))
	}
	if len(topo.Groups) < 4 {
		t.Errorf("topology saw %d groups, want >= 4: %v", len(topo.Groups), topo.Groups)
	}

	// Method guard: admin verbs reject GET.
	if code, _ := httpGet(t, base+"/admin/drain"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /admin/drain = %d, want 405", code)
	}
}

// TestHubRecoveryEvents kills a group-holding node and checks the crash
// recovery surfaces on the survivors' control planes: a recovery event on
// /events and a non-zero clash_groups_recovered_total on /metrics.
func TestHubRecoveryEvents(t *testing.T) {
	c := newTestCluster(t, 4)
	cli := c.client(t)
	for i, rg := range []string{"00", "01", "10", "11"} {
		q := cq.Query{
			ID:         fmt.Sprintf("q-%d", i),
			Region:     bitkey.MustParseGroup(rg),
			Predicates: []cq.Predicate{{Attr: "speed", Op: cq.OpGt, Value: 50}},
		}
		if _, err := cli.Register(q); err != nil {
			t.Fatalf("Register %s: %v", q.ID, err)
		}
	}
	// Replicate the registered state to successors.
	c.check(c.nodes)
	c.check(c.nodes)

	var victim int
	for i := 1; i < len(c.nodes); i++ {
		if len(c.nodes[i].Server().ActiveGroups()) > 0 {
			victim = i
			break
		}
	}
	if victim == 0 {
		t.Skip("no non-bootstrap node holds a group")
	}
	c.srvs[victim].Close()
	if err := c.nodes[victim].Close(); err != nil {
		t.Fatal(err)
	}
	var survivors []*overlay.Node
	for i, n := range c.nodes {
		if i != victim {
			survivors = append(survivors, n)
		}
	}

	recovered := -1
	for round := 0; round < 20 && recovered < 0; round++ {
		c.tick(survivors, 2)
		c.check(survivors)
		for i, n := range c.nodes {
			if i != victim && n.Server().Counters().GroupsRecovered > 0 {
				recovered = i
			}
		}
	}
	if recovered < 0 {
		t.Fatal("no survivor promoted a replica")
	}

	ev := awaitEvent(t, c.srvs[recovered].URL, overlay.EventRecovery, 10*time.Second)
	if ev.Peer != c.nodes[victim].Addr() {
		t.Errorf("recovery event peer = %q, want victim %q", ev.Peer, c.nodes[victim].Addr())
	}
	_, body := httpGet(t, c.srvs[recovered].URL+"/metrics")
	if !strings.Contains(body, "clash_groups_recovered_total") ||
		strings.Contains(body, "clash_groups_recovered_total 0\n") {
		t.Error("/metrics does not report recovered groups")
	}
	// The crash also produced suspicion verdicts on the survivors' streams.
	found := false
	for i := range c.nodes {
		if i == victim {
			continue
		}
		for _, ev := range c.hubs[i].Bus().Replay(0) {
			if ev.Type == overlay.EventSuspicion {
				found = true
			}
		}
	}
	if !found {
		t.Error("no suspicion-verdict event on any survivor")
	}
}

// TestHubAdminDrainZeroLostCQ registers one query per root region, drains a
// group-holding node through the admin verb, and checks the node empties
// with every query conserved; the node then shuts down and every region
// still answers with its query — zero lost continuous queries, zero replica
// promotions (the graceful path, not crash recovery). The post-shutdown
// publish check matters because drain places self-owned groups on the
// successor — exactly where the DHT maps the range once the drained node
// leaves the ring.
func TestHubAdminDrainZeroLostCQ(t *testing.T) {
	c := newTestCluster(t, 3)
	cli := c.client(t)
	queries := make([]cq.Query, 0, 4)
	for i, rg := range []string{"00", "01", "10", "11"} {
		q := cq.Query{
			ID:         fmt.Sprintf("drain-q-%d", i),
			Region:     bitkey.MustParseGroup(rg),
			Predicates: []cq.Predicate{{Attr: "speed", Op: cq.OpGt, Value: 50}},
		}
		if _, err := cli.Register(q); err != nil {
			t.Fatalf("Register %s: %v", q.ID, err)
		}
		queries = append(queries, q)
	}
	before := 0
	for _, n := range c.nodes {
		before += n.Engine().Len()
	}
	if before != len(queries) {
		t.Fatalf("cluster stores %d queries before drain, want %d", before, len(queries))
	}

	hi := c.holderIdx(t)
	if hi == 0 {
		t.Skip("only the bootstrap node (the client's contact) holds groups")
	}
	target := c.nodes[hi]
	base := c.srvs[hi].URL
	code, body := httpPost(t, base+"/admin/drain")
	if code != http.StatusOK {
		t.Fatalf("admin drain: %d %s", code, body)
	}
	var dr struct {
		Draining bool `json:"draining"`
		Moved    int  `json:"moved"`
	}
	if err := json.Unmarshal([]byte(body), &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Draining || dr.Moved == 0 {
		t.Fatalf("drain reply %s, want draining with moved > 0", body)
	}
	// A drain pass is synchronous; rebalance (while draining) re-runs it in
	// case anything bounced back.
	for i := 0; i < 5 && len(target.Server().ActiveGroups()) > 0; i++ {
		httpPost(t, base+"/admin/rebalance")
	}
	if got := target.Server().ActiveGroups(); len(got) != 0 {
		t.Fatalf("drained node still holds %v", got)
	}
	if !target.Draining() {
		t.Error("node not in drain mode after /admin/drain")
	}
	_, mbody := httpGet(t, base+"/metrics")
	if !strings.Contains(mbody, "clash_draining 1") {
		t.Error("/metrics does not report clash_draining 1")
	}

	// Zero lost queries: every query is still stored, none on the drainee.
	after := 0
	for _, n := range c.nodes {
		after += n.Engine().Len()
	}
	if after != before {
		t.Fatalf("cluster stores %d queries after drain, want %d", after, before)
	}
	if target.Engine().Len() != 0 {
		t.Fatalf("drained node still stores %d queries", target.Engine().Len())
	}

	// The drain left a begin event and at least one moved event on the bus.
	evs := c.hubs[hi].Bus().Replay(0)
	begin, moved := false, false
	for _, ev := range evs {
		if ev.Type == overlay.EventDrain {
			if ev.Detail == "begin" {
				begin = true
			} else if strings.HasPrefix(ev.Detail, "moved groups=") {
				moved = true
			}
		}
	}
	if !begin || !moved {
		t.Errorf("drain events incomplete (begin=%v moved=%v): %+v", begin, moved, evs)
	}

	// Undrain restores normal operation; re-drain before the shutdown below.
	if code, _ := httpPost(t, base+"/admin/undrain"); code != http.StatusOK {
		t.Errorf("admin undrain: %d", code)
	}
	if target.Draining() {
		t.Error("node still draining after /admin/undrain")
	}
	httpPost(t, base+"/admin/drain")

	// Graceful shutdown: the drained (now empty) node leaves; the ring
	// repairs and every region must still answer its query, without any
	// replica promotion — the groups moved in the drain, nothing crashed.
	c.srvs[hi].Close()
	if err := target.Close(); err != nil {
		t.Fatal(err)
	}
	var survivors []*overlay.Node
	for i, n := range c.nodes {
		if i != hi {
			survivors = append(survivors, n)
		}
	}
	for _, q := range queries {
		key, err := q.Region.VirtualKey(c.cfg.KeyBits)
		if err != nil {
			t.Fatal(err)
		}
		var res *overlay.PublishResult
		for attempt := 0; attempt < 20; attempt++ {
			if res, err = cli.Publish(key, map[string]float64{"speed": 80}, nil); err == nil {
				break
			}
			c.tick(survivors, 2)
			c.check(survivors)
		}
		if err != nil {
			t.Fatalf("Publish into %v after drained shutdown: %v", q.Region, err)
		}
		found := false
		for _, id := range res.Matches {
			if id == q.ID {
				found = true
			}
		}
		if !found {
			t.Errorf("query %s lost in drain (matches %v)", q.ID, res.Matches)
		}
	}
	for _, n := range survivors {
		if rec := n.Server().Counters().GroupsRecovered; rec != 0 {
			t.Errorf("%s promoted %d replicas after a graceful drain-shutdown", n.Addr(), rec)
		}
	}
}
