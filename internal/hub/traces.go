package hub

import (
	"sync"

	"clash/internal/metrics"
	"clash/internal/overlay"
)

// tracesCapacity bounds the sample ring served by /traces/sample.
const tracesCapacity = 256

// Traces stores sampled request traces: a bounded ring of the most recent
// TraceRecords plus per-stage latency histograms. It implements
// overlay.Observer (events are ignored) so it can also be installed
// standalone — clashload attaches one directly to its in-process nodes to
// report a per-stage latency summary without running a hub.
type Traces struct {
	// hist is the Prometheus view of the per-stage latencies (seconds);
	// absent when constructed without a registry.
	hist   metrics.HistogramVec
	bound  bool
	mu     sync.Mutex
	ring   []overlay.TraceRecord
	next   int
	full   bool
	count  uint64
	stages map[string]*metrics.LatencyHist
}

// NewTraces creates a trace store keeping the last capacity records
// (<= 0 selects the default). With a non-nil registry, stage observations
// also feed the clash_trace_stage_seconds histogram family.
func NewTraces(capacity int, reg *metrics.Registry) *Traces {
	if capacity <= 0 {
		capacity = tracesCapacity
	}
	t := &Traces{
		ring:   make([]overlay.TraceRecord, capacity),
		stages: make(map[string]*metrics.LatencyHist),
	}
	if reg != nil {
		t.hist = reg.HistogramVec("clash_trace_stage_seconds",
			"Per-stage latency of sampled publish requests.",
			metrics.ExpBuckets(1e-6, 4, 11), "stage")
		t.bound = true
	}
	return t
}

// OnEvent implements overlay.Observer; Traces ignores protocol events.
func (t *Traces) OnEvent(overlay.Event) {}

// OnTrace stores one completed trace record.
func (t *Traces) OnTrace(rec overlay.TraceRecord) {
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.count++
	t.mu.Unlock()
}

// OnTraceStage records one stage observation (microseconds).
func (t *Traces) OnTraceStage(stage string, micros int64) {
	t.mu.Lock()
	h := t.stages[stage]
	if h == nil {
		h = metrics.NewLatencyHist()
		t.stages[stage] = h
	}
	h.Record(micros)
	t.mu.Unlock()
	if t.bound {
		t.hist.With(stage).Observe(float64(micros) / 1e6)
	}
}

// TraceSample is the /traces/sample document: per-stage latency summaries
// (microseconds) and the most recent records, newest first.
type TraceSample struct {
	// Count is the total number of trace records observed (not just retained).
	Count uint64 `json:"count"`
	// Stages maps stage name to its latency summary in microseconds.
	Stages map[string]metrics.Summary `json:"stages"`
	Recent []overlay.TraceRecord      `json:"recent"`
}

// Sample snapshots the store: stage summaries plus up to limit recent
// records, newest first (<= 0 returns all retained records).
func (t *Traces) Sample(limit int) TraceSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	s := TraceSample{
		Count:  t.count,
		Stages: make(map[string]metrics.Summary, len(t.stages)),
		Recent: make([]overlay.TraceRecord, 0, limit),
	}
	for stage, h := range t.stages {
		s.Stages[stage] = h.Summary()
	}
	// Walk backwards from the most recent write.
	for i := 0; i < limit; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		s.Recent = append(s.Recent, t.ring[idx])
	}
	return s
}

// StageSummaries returns the per-stage latency summaries (microseconds).
func (t *Traces) StageSummaries() map[string]metrics.Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]metrics.Summary, len(t.stages))
	for stage, h := range t.stages {
		out[stage] = h.Summary()
	}
	return out
}

// Count returns the total number of trace records observed.
func (t *Traces) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}
