// Package wireevolve checks MarshalWire/UnmarshalWire pairs for field-order
// parity and safe evolution.
//
// Every wire message in the repo is hand-rolled over clash/internal/wirecodec:
// MarshalWire threads an append chain (b = wirecodec.AppendInt(b, ...)) and
// UnmarshalWire drains a Reader in the same order. Nothing but convention
// keeps the two sides aligned, and a transposed field pair decodes cleanly
// into garbage — the worst kind of wire bug. This analyzer extracts the
// ordered field sequence from both methods of each type and verifies:
//
//  1. parity — both sides name the same field kinds in the same order,
//     including repeated groups (loops) and delegated sub-messages
//     (return m.X.MarshalWire(b) / m.X.UnmarshalWire(data));
//  2. evolution — once UnmarshalWire starts reading fields behind an
//     `r.Len() > 0` guard (the optional-trailing idiom for fields added
//     after a release), every later field must be guarded too. New fields
//     go at the end and must be optional-on-read, or old peers break.
//
// Length-overflow guards (`n > r.Len()`) are not optional markers. Reads the
// extractor cannot classify become wildcards that match any single field, so
// unusual-but-correct codecs do not trip the check.
package wireevolve

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clash/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wireevolve",
	Doc:  "MarshalWire/UnmarshalWire must agree on field order; fields added later must be trailing and optional-on-read",
	Run:  run,
}

// op is one field-sized step in a codec's wire order.
type op struct {
	// kind: a scalar kind ("int", "uvarint", "bytes", "string", "bool",
	// "float64"), a delegated sub-message ("msg:TypeName"), a wildcard "?"
	// for unclassifiable chain steps, or "rep" for a repeated group.
	kind     string
	optional bool
	rep      []op
	pos      token.Pos
}

// appendKinds maps wirecodec.AppendX writers to field kinds; readerKinds maps
// Reader methods to the same kinds. BytesCopy is the copying twin of Bytes.
var appendKinds = map[string]string{
	"AppendInt":     "int",
	"AppendUvarint": "uvarint",
	"AppendBytes":   "bytes",
	"AppendString":  "string",
	"AppendBool":    "bool",
	"AppendFloat64": "float64",
}

var readerKinds = map[string]string{
	"Int":       "int",
	"Uvarint":   "uvarint",
	"Bytes":     "bytes",
	"BytesCopy": "bytes",
	"String":    "string",
	"Bool":      "bool",
	"Float64":   "float64",
}

type codec struct {
	typeName  string
	marshal   []op
	unmarshal []op
	// unmarshalPos anchors parity diagnostics (and their suppression
	// directives) on the UnmarshalWire declaration.
	unmarshalPos token.Pos
}

func run(pass *analysis.Pass) error {
	ex := &extractor{
		pass:    pass,
		decls:   make(map[types.Object]*ast.FuncDecl),
		helpers: make(map[types.Object][]op),
	}
	codecs := make(map[string]*codec)
	get := func(name string) *codec {
		c := codecs[name]
		if c == nil {
			c = &codec{typeName: name}
			codecs[name] = c
		}
		return c
	}

	// Index package-level function declarations so helper calls
	// (appendKey, readAttrs, ...) can be expanded in place.
	var methods []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				ex.decls[obj] = fd
			}
			if fd.Recv != nil && (fd.Name.Name == "MarshalWire" || fd.Name.Name == "UnmarshalWire") {
				methods = append(methods, fd)
			}
		}
	}

	var order []string
	for _, fd := range methods {
		recv := fd.Recv.List[0]
		tn := analysis.NamedTypeName(pass.Info.TypeOf(recv.Type))
		if tn == "" {
			continue
		}
		if _, seen := codecs[tn]; !seen {
			order = append(order, tn)
		}
		switch fd.Name.Name {
		case "MarshalWire":
			get(tn).marshal = ex.marshalOps(fd)
		case "UnmarshalWire":
			c := get(tn)
			c.unmarshal = ex.unmarshalOps(fd)
			c.unmarshalPos = fd.Name.Pos()
		}
	}

	for _, tn := range order {
		c := codecs[tn]
		if c.marshal == nil || c.unmarshal == nil {
			continue // half a codec is someone else's problem (or another file's)
		}
		checkParity(pass, c)
		checkTrailing(pass, c.unmarshal)
	}
	return nil
}

// ---- parity and evolution checks ----

func checkParity(pass *analysis.Pass, c *codec) {
	if msg := compareOps(c.marshal, c.unmarshal); msg != "" {
		pass.Reportf(c.unmarshalPos, "%s: MarshalWire and UnmarshalWire disagree on wire layout: %s", c.typeName, msg)
	}
}

// compareOps returns "" when the sequences agree, else a description of the
// first divergence. Optional flags are ignored: the writer always emits
// optional-on-read trailing fields.
func compareOps(ms, us []op) string {
	n := len(ms)
	if len(us) < n {
		n = len(us)
	}
	for i := 0; i < n; i++ {
		m, u := ms[i], us[i]
		if m.kind == "?" || u.kind == "?" {
			continue
		}
		if m.kind == "rep" || u.kind == "rep" {
			if m.kind != u.kind {
				return fmt.Sprintf("field %d: %s written but %s read", i+1, describeOp(m), describeOp(u))
			}
			if msg := compareOps(m.rep, u.rep); msg != "" {
				return fmt.Sprintf("repeated group at field %d: %s", i+1, msg)
			}
			continue
		}
		if m.kind != u.kind {
			return fmt.Sprintf("field %d: %s written but %s read", i+1, describeOp(m), describeOp(u))
		}
	}
	if len(ms) != len(us) {
		return fmt.Sprintf("MarshalWire writes %d fields but UnmarshalWire reads %d", len(ms), len(us))
	}
	return ""
}

func describeOp(o op) string {
	switch {
	case o.kind == "rep":
		return "a repeated group"
	case strings.HasPrefix(o.kind, "msg:"):
		return "sub-message " + strings.TrimPrefix(o.kind, "msg:")
	default:
		return o.kind
	}
}

// checkTrailing enforces the evolution rule: after the first optional
// (r.Len()-guarded) read, every later top-level read must be optional too.
func checkTrailing(pass *analysis.Pass, us []op) {
	sawOptional := false
	for _, o := range us {
		if o.optional {
			sawOptional = true
			continue
		}
		if sawOptional {
			pass.Reportf(o.pos, "unguarded %s read after an optional trailing field: added fields must be trailing and optional-on-read (guard with r.Len() > 0), or old peers misparse", describeOp(o))
			// One report per method is enough; everything after is equally doomed.
			return
		}
	}
}

// ---- extraction ----

type extractor struct {
	pass    *analysis.Pass
	decls   map[types.Object]*ast.FuncDecl
	helpers map[types.Object][]op // memoized helper op sequences (nil while in progress)
}

// chainSet tracks which variables currently hold the wire byte chain (marshal)
// or the *wirecodec.Reader (unmarshal).
type chainSet map[types.Object]bool

func (cs chainSet) holds(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil && cs[obj] {
			return true
		}
	case *ast.SliceExpr:
		return cs.holds(pass, e.X)
	}
	return false
}

// marshalOps extracts the write sequence of a MarshalWire(b []byte) []byte
// method (or a helper with the same shape).
func (ex *extractor) marshalOps(fd *ast.FuncDecl) []op {
	chain := chainSet{}
	dataParam := firstParamOfType(ex.pass, fd, isByteSlice)
	if dataParam == nil {
		return nil
	}
	chain[dataParam] = true
	return ex.marshalStmts(fd.Body.List, chain)
}

func (ex *extractor) marshalStmts(stmts []ast.Stmt, chain chainSet) []op {
	var ops []op
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				continue
			}
			for i := range st.Rhs {
				callOps, consumes := ex.marshalExpr(st.Rhs[i], chain)
				ops = append(ops, callOps...)
				if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
					obj := ex.pass.Info.Defs[id]
					if obj == nil {
						obj = ex.pass.Info.Uses[id]
					}
					if obj != nil {
						if consumes || chain.holds(ex.pass, st.Rhs[i]) {
							chain[obj] = true
						} else {
							delete(chain, obj)
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				callOps, _ := ex.marshalExpr(res, chain)
				ops = append(ops, callOps...)
			}
		case *ast.IfStmt:
			// Marshal-side conditionals (optional trailing writes) splice in
			// order; the unmarshal side decides optionality.
			if st.Init != nil {
				ops = append(ops, ex.marshalStmts([]ast.Stmt{st.Init}, chain)...)
			}
			ops = append(ops, ex.marshalStmts(st.Body.List, chain)...)
			if blk, ok := st.Else.(*ast.BlockStmt); ok {
				ops = append(ops, ex.marshalStmts(blk.List, chain)...)
			}
		case *ast.ForStmt:
			if inner := ex.marshalStmts(st.Body.List, chain); len(inner) > 0 {
				ops = append(ops, op{kind: "rep", rep: inner, pos: st.Pos()})
			}
		case *ast.RangeStmt:
			if inner := ex.marshalStmts(st.Body.List, chain); len(inner) > 0 {
				ops = append(ops, op{kind: "rep", rep: inner, pos: st.Pos()})
			}
		case *ast.BlockStmt:
			ops = append(ops, ex.marshalStmts(st.List, chain)...)
		case *ast.ExprStmt:
			callOps, _ := ex.marshalExpr(st.X, chain)
			ops = append(ops, callOps...)
		}
	}
	return ops
}

// marshalExpr classifies one right-hand side. consumes reports whether the
// expression threads the chain (so the assignee stays a chain variable).
func (ex *extractor) marshalExpr(e ast.Expr, chain chainSet) (ops []op, consumes bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	if !chain.holds(ex.pass, call.Args[0]) {
		// Scratch builders (scratch = rec.MarshalWire(scratch[:0])) and
		// unrelated calls contribute nothing to this codec's order.
		return nil, false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if pkgPath, name, ok := analysis.CalleePkgFunc(ex.pass.Info, call); ok &&
			analysis.LastSegment(pkgPath) == "wirecodec" {
			if kind, ok := appendKinds[name]; ok {
				return []op{{kind: kind, pos: call.Pos()}}, true
			}
			return []op{{kind: "?", pos: call.Pos()}}, true
		}
		if fun.Sel.Name == "MarshalWire" {
			if tn := analysis.NamedTypeName(ex.pass.Info.TypeOf(fun.X)); tn != "" {
				return []op{{kind: "msg:" + tn, pos: call.Pos()}}, true
			}
		}
		return []op{{kind: "?", pos: call.Pos()}}, true
	case *ast.Ident:
		if obj := ex.pass.Info.Uses[fun]; obj != nil {
			if seq, ok := ex.helperOps(obj, true); ok {
				out := make([]op, len(seq))
				for i, o := range seq {
					o.pos = call.Pos()
					out[i] = o
				}
				return out, true
			}
		}
		return []op{{kind: "?", pos: call.Pos()}}, true
	}
	return []op{{kind: "?", pos: call.Pos()}}, true
}

// unmarshalOps extracts the read sequence of UnmarshalWire(data []byte) error
// (or a helper taking a *wirecodec.Reader).
func (ex *extractor) unmarshalOps(fd *ast.FuncDecl) []op {
	readers := chainSet{}
	dataParam := firstParamOfType(ex.pass, fd, isByteSlice)
	for _, obj := range paramsOfType(ex.pass, fd, isWireReader) {
		readers[obj] = true
	}
	return ex.unmarshalStmts(fd.Body.List, readers, dataParam)
}

func (ex *extractor) unmarshalStmts(stmts []ast.Stmt, readers chainSet, dataParam types.Object) []op {
	var ops []op
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.AssignStmt:
			// r := wirecodec.NewReader(data) seeds the reader set.
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Rhs {
					if call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr); ok {
						if pkgPath, name, ok := analysis.CalleePkgFunc(ex.pass.Info, call); ok &&
							analysis.LastSegment(pkgPath) == "wirecodec" && name == "NewReader" {
							if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok {
								if obj := ex.pass.Info.Defs[id]; obj != nil {
									readers[obj] = true
									continue
								}
							}
						}
					}
					ops = append(ops, ex.readOps(st.Rhs[i], readers, dataParam)...)
				}
				continue
			}
			for _, rhs := range st.Rhs {
				ops = append(ops, ex.readOps(rhs, readers, dataParam)...)
			}
		case *ast.ExprStmt:
			ops = append(ops, ex.readOps(st.X, readers, dataParam)...)
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				ops = append(ops, ex.readOps(res, readers, dataParam)...)
			}
		case *ast.IfStmt:
			var inner []op
			if st.Init != nil {
				inner = append(inner, ex.unmarshalStmts([]ast.Stmt{st.Init}, readers, dataParam)...)
			}
			inner = append(inner, ex.readOps(st.Cond, readers, dataParam)...)
			inner = append(inner, ex.unmarshalStmts(st.Body.List, readers, dataParam)...)
			if blk, ok := st.Else.(*ast.BlockStmt); ok {
				inner = append(inner, ex.unmarshalStmts(blk.List, readers, dataParam)...)
			}
			if isOptionalGuard(ex.pass, st.Cond, readers) {
				for i := range inner {
					inner[i].optional = true
				}
			}
			ops = append(ops, inner...)
		case *ast.ForStmt:
			if st.Init != nil {
				ops = append(ops, ex.unmarshalStmts([]ast.Stmt{st.Init}, readers, dataParam)...)
			}
			if inner := ex.unmarshalStmts(st.Body.List, readers, dataParam); len(inner) > 0 {
				ops = append(ops, op{kind: "rep", rep: inner, pos: st.Pos()})
			}
		case *ast.RangeStmt:
			if inner := ex.unmarshalStmts(st.Body.List, readers, dataParam); len(inner) > 0 {
				ops = append(ops, op{kind: "rep", rep: inner, pos: st.Pos()})
			}
		case *ast.BlockStmt:
			ops = append(ops, ex.unmarshalStmts(st.List, readers, dataParam)...)
		case *ast.DeclStmt:
			// var g TopoGroup — no reads.
		}
	}
	return ops
}

// readOps collects reader-consuming calls inside one expression, in source
// order: r.Int() and friends, helper(r) expansions, and whole-payload
// delegation m.X.UnmarshalWire(data).
func (ex *extractor) readOps(e ast.Expr, readers chainSet, dataParam types.Object) []op {
	var ops []op
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if readers.holds(ex.pass, fun.X) {
				if kind, ok := readerKinds[fun.Sel.Name]; ok {
					ops = append(ops, op{kind: kind, pos: call.Pos()})
				}
				// Err/Len and other non-consuming methods: nothing.
				return false
			}
			if fun.Sel.Name == "UnmarshalWire" && len(call.Args) == 1 {
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if obj := ex.pass.Info.Uses[id]; obj != nil && obj == dataParam {
						if tn := analysis.NamedTypeName(ex.pass.Info.TypeOf(fun.X)); tn != "" {
							ops = append(ops, op{kind: "msg:" + tn, pos: call.Pos()})
							return false
						}
					}
				}
				// Nested record decode (g.UnmarshalWire(rec)): the enclosing
				// r.Bytes() op already accounts for those bytes.
				return false
			}
		case *ast.Ident:
			// Local helper receiving the reader: splice its sequence.
			if hasReaderArg(ex.pass, call, readers) {
				if obj := ex.pass.Info.Uses[fun]; obj != nil {
					if seq, ok := ex.helperOps(obj, false); ok {
						for _, o := range seq {
							o.pos = call.Pos()
							ops = append(ops, o)
						}
						return false
					}
				}
				ops = append(ops, op{kind: "?", pos: call.Pos()})
				return false
			}
		}
		return true
	})
	return ops
}

// helperOps extracts (and memoizes) the op sequence of a package-local helper.
func (ex *extractor) helperOps(obj types.Object, marshal bool) ([]op, bool) {
	fd, ok := ex.decls[obj]
	if !ok {
		return nil, false
	}
	if seq, done := ex.helpers[obj]; done {
		return seq, true
	}
	ex.helpers[obj] = nil // cycle guard: a recursive helper contributes nothing
	var seq []op
	if marshal {
		seq = ex.marshalOps(fd)
	} else {
		seq = ex.unmarshalOps(fd)
	}
	ex.helpers[obj] = seq
	return seq, true
}

// isOptionalGuard reports whether cond contains the optional-trailing idiom
// r.Len() > 0 (or != 0). Overflow guards compare against the length from the
// other side (n > r.Len()) and do not count.
func isOptionalGuard(pass *analysis.Pass, cond ast.Expr, readers chainSet) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if be.Op != token.GTR && be.Op != token.NEQ {
			return true
		}
		call, ok := ast.Unparen(be.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Len" || !readers.holds(pass, sel.X) {
			return true
		}
		if lit, ok := ast.Unparen(be.Y).(*ast.BasicLit); ok && lit.Value == "0" {
			found = true
			return false
		}
		return true
	})
	return found
}

func hasReaderArg(pass *analysis.Pass, call *ast.CallExpr, readers chainSet) bool {
	for _, arg := range call.Args {
		if readers.holds(pass, arg) {
			return true
		}
	}
	return false
}

// ---- small type helpers ----

func firstParamOfType(pass *analysis.Pass, fd *ast.FuncDecl, match func(types.Type) bool) types.Object {
	for _, obj := range paramsOfType(pass, fd, match) {
		return obj
	}
	return nil
}

func paramsOfType(pass *analysis.Pass, fd *ast.FuncDecl, match func(types.Type) bool) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil && match(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isWireReader matches *wirecodec.Reader (by package path tail and type name).
func isWireReader(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Reader" && obj.Pkg() != nil &&
		analysis.LastSegment(obj.Pkg().Path()) == "wirecodec"
}
