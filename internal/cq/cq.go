// Package cq implements the continuous-query substrate that the CLASH paper's
// target applications (NiagaraCQ/Xfilter-style stream filtering, Mobiscope
// telematics, multiplayer games) run on top of: long-lived queries expressed
// as attribute predicates scoped to a region of the hierarchical key space,
// matched against a stream of data events.
//
// The overlay stores each query on the CLASH server responsible for the
// query's identifier key; when a key group is split or merged, the queries
// whose keys fall in the moved group are extracted with ExtractGroup and
// shipped as state (the paper's state-transfer overhead, Figure 5 case B).
package cq

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"clash/internal/bitkey"
)

// Errors returned by the query engine.
var (
	ErrDuplicateQuery = errors.New("cq: query id already registered")
	ErrUnknownQuery   = errors.New("cq: unknown query id")
	ErrInvalidQuery   = errors.New("cq: invalid query")
)

// Op is a comparison operator in a predicate.
type Op int

// Comparison operators.
const (
	OpEq Op = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Predicate is a single comparison over a named numeric attribute.
type Predicate struct {
	Attr  string  `json:"attr"`
	Op    Op      `json:"op"`
	Value float64 `json:"value"`
}

// Eval evaluates the predicate against an attribute map. A missing attribute
// never matches.
func (p Predicate) Eval(attrs map[string]float64) bool {
	v, ok := attrs[p.Attr]
	if !ok {
		return false
	}
	switch p.Op {
	case OpEq:
		return v == p.Value
	case OpNe:
		return v != p.Value
	case OpLt:
		return v < p.Value
	case OpLe:
		return v <= p.Value
	case OpGt:
		return v > p.Value
	case OpGe:
		return v >= p.Value
	default:
		return false
	}
}

// Query is a long-lived continuous query: it subscribes to all data events
// whose identifier key falls inside Region and whose attributes satisfy every
// predicate.
type Query struct {
	// ID uniquely identifies the query (client-assigned).
	ID string `json:"id"`
	// Region is the key-space scope of the query (a key-group prefix). Its
	// virtual key, padded to the full key length, is the query's identifier
	// key for CLASH placement purposes.
	Region bitkey.Group `json:"-"`
	// RegionPrefix is the serialised form of Region ("0110*").
	RegionPrefix string `json:"region"`
	// Predicates are the attribute conditions; all must hold (conjunction).
	Predicates []Predicate `json:"predicates,omitempty"`
}

// Validate checks the query is well formed.
func (q Query) Validate(keyBits int) error {
	if q.ID == "" {
		return fmt.Errorf("%w: empty id", ErrInvalidQuery)
	}
	if q.Region.Depth() > keyBits {
		return fmt.Errorf("%w: region deeper than key space", ErrInvalidQuery)
	}
	for _, p := range q.Predicates {
		if p.Attr == "" {
			return fmt.Errorf("%w: predicate with empty attribute", ErrInvalidQuery)
		}
		if p.Op < OpEq || p.Op > OpGe {
			return fmt.Errorf("%w: bad operator %d", ErrInvalidQuery, p.Op)
		}
	}
	return nil
}

// IdentifierKey returns the query's N-bit identifier key (its region's
// virtual key), which CLASH uses to place the query on a server.
func (q Query) IdentifierKey(keyBits int) (bitkey.Key, error) {
	return q.Region.VirtualKey(keyBits)
}

// Matches reports whether the query matches a data event.
//
//clash:hotpath
func (q Query) Matches(ev Event) bool {
	if !q.Region.Contains(ev.Key) {
		return false
	}
	for _, p := range q.Predicates {
		if !p.Eval(ev.Attrs) {
			return false
		}
	}
	return true
}

// Marshal serialises the query to JSON (used for state transfer).
func (q Query) Marshal() ([]byte, error) {
	q.RegionPrefix = q.Region.String()
	return json.Marshal(q)
}

// UnmarshalQuery parses a query serialised with Marshal.
func UnmarshalQuery(data []byte) (Query, error) {
	var q Query
	if err := json.Unmarshal(data, &q); err != nil {
		return Query{}, fmt.Errorf("cq: unmarshal query: %w", err)
	}
	g, err := bitkey.ParseGroup(q.RegionPrefix)
	if err != nil {
		return Query{}, fmt.Errorf("cq: unmarshal region: %w", err)
	}
	q.Region = g
	return q, nil
}

// Event is one data record flowing through the system.
type Event struct {
	// Key is the event's N-bit identifier key (e.g. the quad-tree cell of the
	// reporting vehicle).
	Key bitkey.Key
	// Attrs carries the event's numeric attributes (speed, fuel, score, ...).
	Attrs map[string]float64
	// Payload is the opaque application payload.
	Payload []byte
}

// Engine stores continuous queries and matches events against them. Queries
// are indexed by region prefix in a bit-trie, so matching an event is one
// O(N + matches) trie walk over the event key's prefixes — no per-depth string
// keys, no scan over every registered region.
//
// Engine is safe for concurrent use.
type Engine struct {
	mu       sync.RWMutex
	keyBits  int
	byRegion *bitkey.Trie[map[string]Query] // region prefix → id → query
	regions  map[string]bitkey.Key          // id → region prefix
}

// NewEngine creates an engine for an N-bit key space.
func NewEngine(keyBits int) (*Engine, error) {
	if keyBits < 1 || keyBits > bitkey.MaxBits {
		return nil, fmt.Errorf("%w: key bits %d", bitkey.ErrBadLength, keyBits)
	}
	return &Engine{
		keyBits:  keyBits,
		byRegion: bitkey.NewTrie[map[string]Query](),
		regions:  make(map[string]bitkey.Key),
	}, nil
}

// KeyBits returns the key length the engine was built for.
func (e *Engine) KeyBits() int { return e.keyBits }

// Len returns the number of registered queries.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.regions)
}

// Register adds a query.
func (e *Engine) Register(q Query) error {
	if err := q.Validate(e.keyBits); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.regions[q.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateQuery, q.ID)
	}
	prefix := q.Region.Prefix
	qs, ok := e.byRegion.Get(prefix)
	if !ok {
		qs = make(map[string]Query)
		e.byRegion.Put(prefix, qs)
	}
	qs[q.ID] = q
	e.regions[q.ID] = prefix
	return nil
}

// Unregister removes a query by id.
func (e *Engine) Unregister(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	prefix, ok := e.regions[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownQuery, id)
	}
	delete(e.regions, id)
	e.removeFromRegion(prefix, id)
	return nil
}

// removeFromRegion drops one query id from a region bucket, deleting the
// bucket's trie node when it empties. Callers hold e.mu.
func (e *Engine) removeFromRegion(prefix bitkey.Key, id string) {
	if qs, ok := e.byRegion.Get(prefix); ok {
		delete(qs, id)
		if len(qs) == 0 {
			e.byRegion.Delete(prefix)
		}
	}
}

// Match returns the queries matched by an event, ordered by query ID for
// determinism.
//
//clash:hotpath
func (e *Engine) Match(ev Event) []Query {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []Query
	e.byRegion.VisitMatches(ev.Key, func(_ bitkey.Key, qs map[string]Query) bool {
		for _, q := range qs {
			if q.Matches(ev) {
				out = append(out, q)
			}
		}
		return true
	})
	sortQueriesByID(out)
	return out
}

// sortQueriesByID orders queries by ID without the sort package's interface
// boxing: match sets are small (often 0–2 queries), so an insertion sort on
// the concrete slice beats sort.Slice's allocation on the publish hot path.
func sortQueriesByID(qs []Query) {
	for i := 1; i < len(qs); i++ {
		for j := i; j > 0 && qs[j].ID < qs[j-1].ID; j-- {
			qs[j], qs[j-1] = qs[j-1], qs[j]
		}
	}
}

// All returns every registered query, ordered by ID. The simulator's
// durability invariant walks it to check that no registration was lost to a
// crash.
func (e *Engine) All() []Query {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]Query, 0, len(e.regions))
	e.byRegion.Visit(func(_ bitkey.Key, qs map[string]Query) bool {
		for _, q := range qs {
			out = append(out, q)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// QueriesInGroup returns (without removing) the queries whose identifier key
// falls inside the given key group, ordered by ID.
func (e *Engine) QueriesInGroup(g bitkey.Group) []Query {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.collectInGroup(g)
}

func (e *Engine) collectInGroup(g bitkey.Group) []Query {
	// A region's identifier key is its virtual key (prefix padded with
	// zeroes), so a region falls inside g in exactly two cases:
	//
	//   - region depth ≥ g's depth and g's prefix is a prefix of the region:
	//     the trie subtree under g's prefix;
	//   - region depth < g's depth, the region is a prefix of g's prefix, and
	//     the zero padding supplies g's remaining bits (i.e. the rest of g's
	//     prefix is all zeroes): nodes on the path to g's prefix.
	// A group deeper than the key space contains no identifier keys at all.
	if g.Prefix.Bits > e.keyBits {
		return nil
	}
	var out []Query
	collect := func(qs map[string]Query) {
		for _, q := range qs {
			out = append(out, q)
		}
	}
	e.byRegion.VisitSubtree(g.Prefix, func(_ bitkey.Key, qs map[string]Query) bool {
		collect(qs)
		return true
	})
	gp := g.Prefix
	e.byRegion.VisitMatches(gp, func(p bitkey.Key, qs map[string]Query) bool {
		if p.Bits < gp.Bits && gp.Value&((1<<uint(gp.Bits-p.Bits))-1) == 0 {
			collect(qs)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ExtractGroup removes and returns the queries whose identifier key falls
// inside the given key group. The overlay calls it when a key group is
// transferred to another server.
func (e *Engine) ExtractGroup(g bitkey.Group) []Query {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.collectInGroup(g)
	for _, q := range out {
		prefix := e.regions[q.ID]
		delete(e.regions, q.ID)
		e.removeFromRegion(prefix, q.ID)
	}
	return out
}
