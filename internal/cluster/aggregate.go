package cluster

import "sort"

// StageLatency is the fleet-merged latency estimate for one publish stage.
type StageLatency struct {
	// Count is the total number of observations across every scraped node.
	Count uint64 `json:"count"`
	// P50/P95/P99 are histogram-quantile estimates in seconds, interpolated
	// inside the merged cumulative buckets.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// GroupHeat is one key group's load as seen by its holder.
type GroupHeat struct {
	Group   string  `json:"group"`
	Holder  string  `json:"holder,omitempty"`
	Load    float64 `json:"load"`
	Queries int     `json:"queries"`
}

// Fleet is the cluster-wide aggregate of one collection pass.
type Fleet struct {
	// Nodes is the number of configured hubs; Reachable how many answered.
	Nodes     int `json:"nodes"`
	Reachable int `json:"reachable"`

	// Builds counts nodes per build identity (version / go version). More
	// than one entry means the fleet is mid-rollout (or drifted).
	Builds       map[string]int `json:"builds,omitempty"`
	VersionSkew  bool           `json:"versionSkew,omitempty"`
	GroupsActive int            `json:"groupsActive"`
	Queries      int            `json:"queries"`

	// Objects sums clash_objects_total across the fleet, by status.
	Objects map[string]float64 `json:"objects,omitempty"`
	// Counters sums the fleet's headline counters by short name.
	Counters map[string]float64 `json:"counters,omitempty"`

	// Stages are the merged clash_trace_stage_seconds quantiles per stage.
	Stages map[string]StageLatency `json:"stages,omitempty"`
	// Heat ranks the hottest key groups by holder-reported load fraction.
	Heat []GroupHeat `json:"heat,omitempty"`
	// Spans is the total span count observed across the fleet's rings.
	Spans uint64 `json:"spans"`
}

// fleetCounters are the headline counters summed across nodes into
// Fleet.Counters, keyed by the short name they are reported under.
var fleetCounters = map[string]string{
	"splits":         "clash_splits_total",
	"merges":         "clash_merges_total",
	"groupsAccepted": "clash_groups_accepted_total",
	"groupsReleased": "clash_groups_released_total",
	"recovered":      "clash_groups_recovered_total",
	"matchDrops":     "clash_match_drops_total",
	"transferDrops":  "clash_transfer_drops_total",
	"orphanDrops":    "clash_orphan_drops_total",
	"shed":           "clash_transport_shed_total",
	"timeouts":       "clash_transport_timeouts_total",
	"retries":        "clash_transport_retries_total",
	"eventsDropped":  "clash_events_dropped_total",
}

// Aggregate folds one collection pass into fleet totals, merged stage
// quantiles and per-group heat.
func Aggregate(v *View) *Fleet {
	f := &Fleet{
		Nodes:    len(v.Nodes),
		Builds:   make(map[string]int),
		Objects:  make(map[string]float64),
		Counters: make(map[string]float64),
		Stages:   make(map[string]StageLatency),
	}
	stageBuckets := make(mergedBuckets)
	stageCounts := make(map[string]uint64)
	heatQueries := make(map[string]int)
	var heat []GroupHeat

	for _, nv := range v.Nodes {
		if nv.Err != "" || nv.Metrics == nil {
			continue
		}
		f.Reachable++
		if nv.Build != (BuildInfo{}) {
			f.Builds[nv.Build.Version+" / "+nv.Build.GoVersion]++
		}
		if nv.Status != nil {
			f.GroupsActive += len(nv.Status.ActiveGroups)
			f.Queries += nv.Status.Queries
		}
		for _, s := range nv.Metrics.Select("clash_objects_total") {
			f.Objects[s.Labels["status"]] += s.Value
		}
		for short, name := range fleetCounters {
			f.Counters[short] += nv.Metrics.Sum(name)
		}
		stageBuckets.addHistogram(nv.Metrics, "clash_trace_stage_seconds", "stage")
		for _, s := range nv.Metrics.Select("clash_trace_stage_seconds_count") {
			stageCounts[s.Labels["stage"]] += uint64(s.Value)
		}
		for _, s := range nv.Metrics.Select("clash_group_load_fraction") {
			heat = append(heat, GroupHeat{
				Group:  s.Labels["group"],
				Holder: nv.Addr,
				Load:   s.Value,
			})
		}
		f.Spans += uint64(len(nv.Spans))
	}
	f.VersionSkew = len(f.Builds) > 1

	for stage, count := range stageCounts {
		qs := stageBuckets.quantiles(stage, 0.50, 0.95, 0.99)
		f.Stages[stage] = StageLatency{Count: count, P50: qs[0], P95: qs[1], P99: qs[2]}
	}

	// Per-group query counts come from the topology walk (the gauge only
	// carries load); a group scraped from a node that lost it since the walk
	// keeps Holder from the scrape — heat is advisory, not authoritative.
	if v.Topo != nil {
		for group, p := range v.Topo.Groups {
			heatQueries[group] = p.Queries
		}
	}
	for i := range heat {
		heat[i].Queries = heatQueries[heat[i].Group]
	}
	sort.Slice(heat, func(i, j int) bool {
		if heat[i].Load != heat[j].Load {
			return heat[i].Load > heat[j].Load
		}
		return heat[i].Group < heat[j].Group
	})
	if len(heat) > 16 {
		heat = heat[:16]
	}
	f.Heat = heat
	return f
}
