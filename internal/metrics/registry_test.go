package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryRenderAndLint(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("clash_splits_total", "Total key-group splits.")
	c.Add(3)
	cv := r.CounterVec("clash_objects_total", "Objects by status.", "status")
	cv.With("ok").Add(10)
	cv.With("wrong").Inc()
	g := r.Gauge("clash_load_total", "Node load fraction.")
	g.Set(0.75)
	gv := r.GaugeVec("clash_group_load", "Per-group load.", "group")
	gv.With(`0"1\`).Set(1.5)
	h := r.HistogramVec("clash_trace_stage_seconds", "Per-stage latency.", ExpBuckets(0.0001, 4, 6), "stage")
	h.With("route").Observe(0.0002)
	h.With("route").Observe(0.5)
	h.With("match").Observe(0.001)
	r.OnCollect(func() { g.Set(0.9) })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE clash_splits_total counter",
		"clash_splits_total 3",
		`clash_objects_total{status="ok"} 10`,
		`clash_objects_total{status="wrong"} 1`,
		"clash_load_total 0.9", // collector ran at render time
		`clash_group_load{group="0\"1\\"} 1.5`,
		`clash_trace_stage_seconds_bucket{stage="route",le="+Inf"} 2`,
		`clash_trace_stage_seconds_count{stage="route"} 2`,
		`clash_trace_stage_seconds_count{stage="match"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "clash_group_load") > strings.Index(out, "clash_load_total") {
		t.Error("families not sorted by name")
	}
	// The registry's own output must pass the lint checker.
	if errs := LintPrometheus(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("self-lint failed: %v", errs)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "test", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="2"} 2`,
		`h_seconds_bucket{le="4"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		`h_seconds_count 4`,
		`h_seconds_sum 105`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in\n%s", want, out)
		}
	}
	if errs := LintPrometheus(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("lint: %v", errs)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "t")
	h := r.Histogram("h_seconds", "t", ExpBuckets(0.001, 2, 10))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 0.001)
				var b strings.Builder
				_ = r.WritePrometheus(&b)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestGaugeVecReset(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("g", "t", "k")
	gv.With("a").Set(1)
	gv.With("b").Set(2)
	gv.Reset()
	gv.With("c").Set(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, `k="a"`) || strings.Contains(out, `k="b"`) {
		t.Errorf("reset children still rendered:\n%s", out)
	}
	if !strings.Contains(out, `g{k="c"} 3`) {
		t.Errorf("missing post-reset child:\n%s", out)
	}
}

func TestLintCatchesBrokenExpositions(t *testing.T) {
	cases := map[string]string{
		"undeclared sample": "no_type_metric 1\n",
		"bad name":          "# TYPE 9bad counter\n",
		"bad value":         "# TYPE m counter\nm notanumber\n",
		"negative counter":  "# TYPE m counter\nm -5\n",
		"duplicate type":    "# TYPE m counter\n# TYPE m gauge\nm 1\n",
		"unknown type":      "# TYPE m widget\nm 1\n",
		"non-cumulative histogram": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\n" + "h_sum 1\nh_count 5\n",
		"missing inf bucket": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + "h_sum 1\nh_count 5\n",
		"inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\n" + "h_sum 1\nh_count 5\n",
		"unterminated labels": "# TYPE m gauge\nm{k=\"v 1\n",
	}
	for name, input := range cases {
		if errs := LintPrometheus(strings.NewReader(input)); len(errs) == 0 {
			t.Errorf("%s: lint found no errors in %q", name, input)
		}
	}
	clean := "# HELP m help text\n# TYPE m gauge\n" + `m{k="v"} ` + "1\nm 2.5 1700000000\n"
	if errs := LintPrometheus(strings.NewReader(clean)); len(errs) != 0 {
		t.Errorf("clean input flagged: %v", errs)
	}
}

func TestRegistryEmptyFamilies(t *testing.T) {
	// A registered Vec with no resolved children is a declared family with
	// zero samples: the HELP/TYPE header must still render (scrapers discover
	// the family before its first event) and the exposition must lint clean.
	r := NewRegistry()
	r.CounterVec("empty_total", "No children yet.", "reason")
	r.GaugeVec("empty_gauge", "No children yet.", "peer")
	r.HistogramVec("empty_seconds", "No children yet.", []float64{1, 2}, "stage")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{"empty_total", "empty_gauge", "empty_seconds"} {
		if !strings.Contains(out, "# TYPE "+fam+" ") || !strings.Contains(out, "# HELP "+fam+" ") {
			t.Errorf("empty family %s lost its header:\n%s", fam, out)
		}
	}
	for _, ln := range strings.Split(out, "\n") {
		if ln != "" && !strings.HasPrefix(ln, "#") {
			t.Errorf("empty registry rendered a sample: %q", ln)
		}
	}
	if errs := LintPrometheus(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("lint: %v", errs)
	}
}

func TestHistogramZeroCountExposition(t *testing.T) {
	// A histogram that exists but has observed nothing must still expose the
	// full cumulative bucket ladder (all zero), _sum 0 and _count 0 — and the
	// +Inf bucket must equal _count so the lint consistency pass stays green.
	r := NewRegistry()
	r.Histogram("idle_seconds", "Never observed.", []float64{0.1, 1})
	r.HistogramVec("idle_vec_seconds", "Child resolved, never observed.", []float64{1}, "stage").With("route")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`idle_seconds_bucket{le="0.1"} 0`,
		`idle_seconds_bucket{le="1"} 0`,
		`idle_seconds_bucket{le="+Inf"} 0`,
		"idle_seconds_sum 0",
		"idle_seconds_count 0",
		`idle_vec_seconds_bucket{stage="route",le="+Inf"} 0`,
		`idle_vec_seconds_count{stage="route"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in\n%s", want, out)
		}
	}
	if errs := LintPrometheus(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("lint: %v", errs)
	}
}

func TestLabelEscapingRoundTrip(t *testing.T) {
	// Rendered label values with every escapable byte must parse back to the
	// original through the lint-side parser.
	hostile := "a\\b\"c\nd,e{f}g"
	r := NewRegistry()
	r.GaugeVec("esc", "t", "k").With(hostile).Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "a\\b\"c\nd") {
		t.Fatalf("label value rendered unescaped:\n%q", out)
	}
	if errs := LintPrometheus(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("lint: %v", errs)
	}
	var sample string
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "esc{") {
			sample = ln
		}
	}
	if sample == "" {
		t.Fatalf("no esc sample in\n%s", out)
	}
	inner := sample[strings.IndexByte(sample, '{')+1 : strings.LastIndexByte(sample, '}')]
	pairs, err := parseLabels(inner)
	if err != nil {
		t.Fatalf("parseLabels(%q): %v", inner, err)
	}
	if len(pairs) != 1 || pairs[0].key != "k" || pairs[0].val != hostile {
		t.Errorf("round trip = %+v, want k=%q", pairs, hostile)
	}
}

func TestLintEdgeCases(t *testing.T) {
	broken := map[string]string{
		"histogram missing sum": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_count 2\n",
		"histogram missing count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\n",
		"histogram plain sample": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\nh 5\n",
		"bucket missing le": "# TYPE h histogram\n" +
			`h_bucket{stage="route"} 2` + "\nh_sum 1\nh_count 2\n",
		"bucket bad le": "# TYPE h histogram\n" +
			`h_bucket{le="wide"} 2` + "\nh_sum 1\nh_count 2\n",
		"duplicate help":    "# HELP m a\n# HELP m b\n# TYPE m gauge\nm 1\n",
		"type without type": "# TYPE m\nm 1\n",
		"bad timestamp":     "# TYPE m gauge\nm 1 soon\n",
		"bad label escape":  "# TYPE m gauge\n" + `m{k="a\tb"} 1` + "\n",
		"bad label name":    "# TYPE m gauge\n" + `m{9k="v"} 1` + "\n",
		"unquoted label":    "# TYPE m gauge\nm{k=v} 1\n",
		"nan counter":       "# TYPE m counter\nm NaN\n",
	}
	for name, input := range broken {
		if errs := LintPrometheus(strings.NewReader(input)); len(errs) == 0 {
			t.Errorf("%s: lint found no errors in %q", name, input)
		}
	}
	clean := map[string]string{
		"empty input":                 "",
		"declared family, no samples": "# HELP m help\n# TYPE m counter\n",
		"negative gauge":              "# TYPE m gauge\nm -5\n",
		"inf gauge":                   "# TYPE m gauge\nm{k=\"v\"} +Inf\nm -Inf\n",
		"free comment":                "# just a note\n# TYPE m gauge\nm 1\n",
		"summary family":              "# TYPE s summary\ns_sum 3\ns_count 2\n",
		"escaped labels":              "# TYPE m gauge\n" + `m{k="a\\b\"c\nd"} 1` + "\n",
		"zero histogram": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 0` + "\n" + `h_bucket{le="+Inf"} 0` + "\nh_sum 0\nh_count 0\n",
	}
	for name, input := range clean {
		if errs := LintPrometheus(strings.NewReader(input)); len(errs) != 0 {
			t.Errorf("%s: clean input flagged: %v", name, errs)
		}
	}
}

func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "t")
	g.Set(1)
	g.Add(0.5)
	g.Add(-2)
	if got := g.Value(); math.Abs(got-(-0.5)) > 1e-12 {
		t.Errorf("gauge = %v, want -0.5", got)
	}
}
