package clockcheck_test

import (
	"testing"

	"clash/internal/analysis/analysistest"
	"clash/internal/analysis/clockcheck"
)

func TestClockCheck(t *testing.T) {
	// "chord" is sim-driven (violations + a justified ignore + a malformed
	// directive); "tools" is not sim-driven, so its wall-clock use is legal.
	analysistest.Run(t, "testdata", clockcheck.Analyzer, "chord", "tools")
}
