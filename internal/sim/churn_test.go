package sim

import (
	"testing"
	"time"

	"clash/internal/sim/link"
	"clash/internal/workload"
)

// TestChordMassChurn is the mass-churn regression gate: 200 virtual nodes
// join at boot, waves of crashes and rejoins hit the overlay on the sim
// clock, and at the end the chord ring must have reconverged exactly and no
// key-group ownership may have been lost — the active groups of the live
// nodes must still partition the key space with no overlap. Crashed nodes
// keep their server tables (a process restart), so ownership flows back
// through the DHT reconciliation when they return.
//
// The link is lossless so the final ring state is exact (the lossy flavor of
// this scenario runs in clashsim as `churn`); latency and jitter stay on.
func TestChordMassChurn(t *testing.T) {
	n := 200
	churn := n / 10
	sc := Scenario{
		Name:           "mass-churn-test",
		Nodes:          n,
		Seed:           1,
		KeyBits:        workload.DefaultKeyBits,
		BootstrapDepth: 6,
		Capacity:       50,
		Workload:       workload.WorkloadB,
		CheckEvery:     30 * time.Second,
		StabilizeEvery: 7500 * time.Millisecond,
		Queries:        32,
		Link:           link.WAN(20*time.Millisecond, 0),
		Phases: []Phase{
			{Name: "steady", Ticks: 16, Packets: 600},
		},
		Churn: []ChurnEvent{
			{Tick: 2, Crash: churn},
			{Tick: 4, Crash: churn},
			{Tick: 6, Rejoin: churn},
			{Tick: 7, Crash: churn},
			{Tick: 9, Rejoin: 2 * churn},
		},
		Expect: Expect{CoverageComplete: true, RingConverged: true},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if !res.RingConverged {
		t.Fatalf("ring did not reconverge: %d stale successors", res.RingDrift)
	}
	if !res.CoverageComplete {
		t.Fatalf("key-group ownership lost: coverage incomplete (%d overlaps)", res.CoverageOverlaps)
	}
	if res.CoverageOverlaps != 0 {
		t.Fatalf("%d overlapping key ranges: a group is active on two nodes", res.CoverageOverlaps)
	}
	last := res.Ticks[len(res.Ticks)-1]
	if last.LiveNodes != n {
		t.Fatalf("live nodes = %d, want all %d rejoined", last.LiveNodes, n)
	}
	// The churn must actually have taken nodes down mid-run.
	min := n
	for _, tk := range res.Ticks {
		if tk.LiveNodes < min {
			min = tk.LiveNodes
		}
	}
	if min >= n {
		t.Fatal("churn schedule never took a node down")
	}
}
