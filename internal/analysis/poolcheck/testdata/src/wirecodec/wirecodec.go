// Package wirecodec is a testdata stand-in for clash/internal/wirecodec: the
// analyzers resolve it by the package path's final segment.
package wirecodec

func GetBuf() []byte { return make([]byte, 0, 512) }

func PutBuf(b []byte) {}
