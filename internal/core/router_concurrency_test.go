package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"clash/internal/benchutil"
	"clash/internal/bitkey"
)

// TestRouterForgetServerAcrossShards covers ForgetServer over bindings spread
// across deep shards and the shallow fallback, including rebinding a group to
// a different server (which must drop the old reverse-index entry).
func TestRouterForgetServerAcrossShards(t *testing.T) {
	r := NewRouter(16)
	groups := map[string]ServerID{
		"0":        "a", // shallow (depth < shard bits)
		"110":      "b", // shallow
		"0110":     "a", // deep shard
		"01101":    "b",
		"10110011": "a",
		"1111":     "c",
	}
	for p, s := range groups {
		r.Learn(bitkey.Group{Prefix: bitkey.MustParse(p)}, s)
	}
	// Rebinding must move the reverse-index entry, not duplicate it.
	r.Learn(bitkey.Group{Prefix: bitkey.MustParse("1111")}, "a")
	if r.Len() != len(groups) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(groups))
	}
	r.ForgetServer("a")
	if r.Len() != 2 {
		t.Fatalf("Len after ForgetServer(a) = %d, want 2", r.Len())
	}
	if _, _, ok := r.Route(bitkey.MustParse("1111000000000000")); ok {
		t.Error("rebound group still routes to forgotten server's binding")
	}
	if _, s, ok := r.Route(bitkey.MustParse("0110111111111111")); !ok || s != "b" {
		t.Errorf("surviving deep binding = %v,%v, want b", s, ok)
	}
	if _, s, ok := r.Route(bitkey.MustParse("1100000000000000")); !ok || s != "b" {
		t.Errorf("surviving shallow binding = %v,%v, want b", s, ok)
	}
	// Forgetting a server with no bindings is a no-op.
	r.ForgetServer("a")
	if r.Len() != 2 {
		t.Errorf("Len after second ForgetServer = %d, want 2", r.Len())
	}
}

// TestRouterConcurrent hammers Learn/Route/Forget/ForgetServer from many
// goroutines; run with -race it checks the sharded locking, and afterwards it
// verifies the reverse index and tries agree (ForgetServer must leave no
// binding behind).
func TestRouterConcurrent(t *testing.T) {
	const keyBits = 32
	r := NewRouter(keyBits)
	setup := rand.New(rand.NewSource(7))
	groups := benchutil.PrefixFreeGroups(setup, keyBits, 512)
	keys := benchutil.RandomKeys(setup, keyBits, 1024)
	servers := make([]ServerID, 8)
	for i := range servers {
		servers[i] = ServerID(fmt.Sprintf("s%d", i))
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				g := groups[rng.Intn(len(groups))]
				switch rng.Intn(10) {
				case 0:
					r.Forget(g)
				case 1:
					r.ForgetServer(servers[rng.Intn(len(servers))])
				case 2, 3, 4:
					r.Learn(g, servers[rng.Intn(len(servers))])
				default:
					k := keys[rng.Intn(len(keys))]
					if rg, s, ok := r.Route(k); ok {
						if s == NoServer {
							t.Error("Route returned ok with NoServer")
						}
						if !rg.Contains(k) {
							t.Errorf("Route(%v) returned non-covering group %v", k, rg)
						}
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Drain every server; the cache must be completely empty afterwards,
	// proving the reverse index tracked every surviving binding.
	for _, s := range servers {
		r.ForgetServer(s)
	}
	if r.Len() != 0 {
		t.Errorf("Len after forgetting all servers = %d, want 0", r.Len())
	}
	for _, k := range keys {
		if _, s, ok := r.Route(k); ok {
			t.Fatalf("Route(%v) = %v after all servers forgotten", k, s)
		}
	}
}
