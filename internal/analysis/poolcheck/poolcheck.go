// Package poolcheck flags pooled frame buffers that escape their handler.
//
// The transport reads request frames into wirecodec pooled buffers and
// recycles them the moment the handler returns (the ownership contract on
// overlay.Handler, built in PR 8). A handler — or any function drawing a
// buffer with wirecodec.GetBuf — must therefore not retain the buffer
// (or a reslice of it) anywhere that outlives the call:
//
//   - stored into a struct field or package-level variable,
//   - captured by a goroutine it spawns,
//   - appended (as the slice itself, not its copied contents) to a
//     long-lived slice,
//   - sent on a channel.
//
// Explicit copies (append([]byte(nil), buf...), bytes.Clone, string
// conversion) produce fresh values and pass untouched. Returning the buffer
// is legal: the Handler contract transfers ownership back to the transport.
// Deliberate ownership handoffs (e.g. a writer loop that recycles queued
// buffers itself) carry //clashvet:ignore poolcheck <reason> directives.
//
// Tracked pooled sources: results of wirecodec.GetBuf, and []byte parameters
// of handler functions (name beginning with "handle"/"Handle").
package poolcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"clash/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc:  "flag pooled wirecodec buffers (GetBuf results, handler payloads) retained past handler return",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// checkFunc tracks the function's pooled values through a linear walk of its
// body. Nested function literals share the pooled set (a closure referencing
// a pooled buffer sees the same value) but are only *reported* as escapes
// when spawned via go.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	pooled := make(map[types.Object]bool)
	if isHandlerName(fd.Name.Name) && fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.Info.Defs[name]
				if obj != nil && isByteSlice(obj.Type()) {
					pooled[obj] = true
				}
			}
		}
	}
	walkStmts(pass, fd.Body, pooled)
}

func isHandlerName(name string) bool {
	return strings.HasPrefix(name, "handle") || strings.HasPrefix(name, "Handle")
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// walkStmts processes statements in source order so assignments update the
// pooled set before later uses are judged.
func walkStmts(pass *analysis.Pass, body *ast.BlockStmt, pooled map[types.Object]bool) {
	// handled tracks append calls already judged as part of their enclosing
	// assignment so the pre-order walk does not report them twice.
	handled := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			handleAssign(pass, n, pooled, handled)
		case *ast.GoStmt:
			handleGo(pass, n, pooled)
			return false // contents judged as a unit
		case *ast.SendStmt:
			if obj := pooledObj(pass, n.Value, pooled); obj != nil {
				pass.Reportf(n.Value.Pos(), "pooled buffer %s sent on a channel escapes its handler (the transport recycles it on return; copy it or hand off ownership explicitly)", obj.Name())
			}
		case *ast.CallExpr:
			if !handled[n] {
				handleAppendEscape(pass, n, pooled, nil)
			}
		}
		return true
	})
}

// pooledObj resolves expr to a tracked pooled object: the identifier itself
// or a reslice of it (buf[a:b], buf[:]). Spread copies (append(dst, buf...))
// are handled at the call sites.
func pooledObj(pass *analysis.Pass, expr ast.Expr, pooled map[types.Object]bool) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil && pooled[obj] {
			return obj
		}
	case *ast.SliceExpr:
		return pooledObj(pass, e.X, pooled)
	}
	return nil
}

// isPoolSource reports whether expr yields a freshly pooled buffer
// (wirecodec.GetBuf() or a chain growing one: append(pooled, ...)).
func isPoolSource(pass *analysis.Pass, expr ast.Expr, pooled map[types.Object]bool) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return pooledObj(pass, expr, pooled) != nil
	}
	if pkgPath, fn, ok := analysis.CalleePkgFunc(pass.Info, call); ok &&
		fn == "GetBuf" && analysis.LastSegment(pkgPath) == "wirecodec" {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsBuiltin() {
			// append(pooled, ...) returns (a grown alias of) the pooled buffer.
			return isPoolSource(pass, call.Args[0], pooled)
		}
	}
	return false
}

func handleAssign(pass *analysis.Pass, as *ast.AssignStmt, pooled map[types.Object]bool, handled map[*ast.CallExpr]bool) {
	n := len(as.Rhs)
	if n != len(as.Lhs) {
		return
	}
	for i := 0; i < n; i++ {
		lhs, rhs := as.Lhs[i], as.Rhs[i]
		// Taint/untaint locals.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				if isPoolSource(pass, rhs, pooled) {
					pooled[obj] = true
				} else {
					delete(pooled, obj)
				}
			}
			continue
		}
		// Stores into anything non-local (x.f = buf, x.f[i] = buf,
		// global[i] = buf) retain the buffer past the call.
		if obj := pooledObj(pass, rhs, pooled); obj != nil {
			pass.Reportf(rhs.Pos(), "pooled buffer %s stored into %s outlives its handler (the transport recycles it on return; copy it first)", obj.Name(), exprString(lhs))
		}
	}
	handleAppendEscape(pass, nil, pooled, as)
	for i := range as.Rhs {
		if c, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
			handled[c] = true
		}
	}
}

// handleAppendEscape flags append calls that park a pooled buffer (as an
// element, not spread-copied contents) in a long-lived slice: the destination
// or the assignment target is a field selector or package-level variable.
func handleAppendEscape(pass *analysis.Pass, call *ast.CallExpr, pooled map[types.Object]bool, as *ast.AssignStmt) {
	calls := []*ast.CallExpr{}
	longLived := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			// x.f — a field (or anything reached through a selector).
			return pass.Info.Selections[e] != nil
		case *ast.IndexExpr:
			return false
		case *ast.Ident:
			obj := pass.Info.Uses[e]
			return obj != nil && obj.Parent() == pass.Pkg.Scope()
		}
		return false
	}
	if call != nil {
		calls = append(calls, call)
	}
	if as != nil {
		for i := range as.Rhs {
			if c, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				calls = append(calls, c)
			}
		}
	}
	for _, c := range calls {
		id, ok := ast.Unparen(c.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || len(c.Args) < 2 {
			continue
		}
		if tv, ok := pass.Info.Types[c.Fun]; !ok || !tv.IsBuiltin() {
			continue
		}
		elems := c.Args[1:]
		if c.Ellipsis.IsValid() {
			continue // append(dst, buf...) copies the bytes
		}
		dstLong := longLived(c.Args[0])
		if !dstLong && as != nil {
			for _, lhs := range as.Lhs {
				if longLived(lhs) {
					dstLong = true
				}
			}
		}
		if !dstLong {
			continue
		}
		for _, el := range elems {
			if obj := pooledObj(pass, el, pooled); obj != nil {
				pass.Reportf(el.Pos(), "pooled buffer %s appended to long-lived slice %s (the transport recycles it on return; append a copy)", obj.Name(), exprString(c.Args[0]))
			}
		}
	}
}

// handleGo flags pooled buffers reaching a spawned goroutine, either as call
// arguments or as free variables of a function literal.
func handleGo(pass *analysis.Pass, g *ast.GoStmt, pooled map[types.Object]bool) {
	for _, arg := range g.Call.Args {
		if obj := pooledObj(pass, arg, pooled); obj != nil {
			pass.Reportf(arg.Pos(), "pooled buffer %s passed to a spawned goroutine outlives its handler (the transport recycles it on return; copy it or hand off ownership explicitly)", obj.Name())
		}
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && pooled[obj] {
					pass.Reportf(id.Pos(), "pooled buffer %s captured by a spawned goroutine outlives its handler (the transport recycles it on return; copy it or hand off ownership explicitly)", obj.Name())
				}
			}
			return true
		})
	}
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	}
	return "expression"
}
