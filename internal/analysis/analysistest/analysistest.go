// Package analysistest runs an analyzer over golden testdata packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib only.
//
// Layout: <testdata>/src/<pkg>/... holds ordinary Go packages imported by
// path relative to src (plus any standard-library imports). A line expecting
// diagnostics carries a trailing comment of one or more quoted regular
// expressions:
//
//	time.Sleep(d) // want `time\.Sleep is forbidden`
//
// Every diagnostic must be matched by a want expectation on its line and
// every expectation must match at least one diagnostic, so a disabled or
// broken analyzer fails the test by leaving expectations unmatched.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"clash/internal/analysis"
)

// Run loads each named package from testdata/src, applies the analyzer (with
// framework directive handling, exactly as cmd/clashvet does) and reports any
// mismatch against the packages' // want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewTreeLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, pkg, diags)
	}
}

// want is one expectation parsed from a // want comment.
type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants, err := collectWants(pkg)
	if err != nil {
		t.Error(err)
		return
	}
	for _, d := range diags {
		m := false
		for _, w := range wants {
			if w.pos.Filename == d.Pos.Filename && w.pos.Line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				m = true
			}
		}
		if !m {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matching %q", w.pos, w.re)
		}
	}
}

func collectWants(pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Line-comment form ("// want ...") or, for lines whose only
				// line comment is the construct under test (e.g. a malformed
				// directive), the block form ("/* want ... */" on the same
				// line).
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					if t2, ok2 := strings.CutPrefix(c.Text, "/* want "); ok2 && strings.HasSuffix(t2, "*/") {
						text, ok = strings.TrimSpace(strings.TrimSuffix(t2, "*/")), true
					}
				}
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWant(text)
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				for _, re := range res {
					wants = append(wants, &want{pos: pos, re: re})
				}
			}
		}
	}
	return wants, nil
}

// parseWant extracts the quoted regexps from the text after "// want ".
// Both backquoted and double-quoted Go string literals are accepted.
func parseWant(text string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	for {
		text = strings.TrimSpace(text)
		if text == "" {
			break
		}
		var lit string
		switch text[0] {
		case '`':
			end := strings.IndexByte(text[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated ` in want comment")
			}
			lit = text[1 : 1+end]
			text = text[end+2:]
		case '"':
			rest := text[1:]
			end := -1
			for i := 0; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated \" in want comment")
			}
			var err error
			lit, err = strconv.Unquote(text[:end+2])
			if err != nil {
				return nil, fmt.Errorf("bad want literal %s: %v", text[:end+2], err)
			}
			text = rest[end+1:]
		default:
			return nil, fmt.Errorf("want comment must hold quoted regexps, got %q", text)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		res = append(res, re)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return res, nil
}
