// Command clashload drives synthetic workload traffic (internal/workload
// A/B/C) against a CLASH overlay from many concurrent connections and reports
// throughput and latency percentiles.
//
// Against a running overlay (see cmd/clashd):
//
//	clashload -connect 127.0.0.1:7001 -conns 8 -packets 100000 -workload B
//
// Self-contained smoke mode — boot an N-node overlay on the in-memory
// transport inside this process and drive it (used by CI and for the
// checked-in BENCH_overlay.json snapshot):
//
//	clashload -inproc 3 -packets 10000 -workload B -out BENCH_overlay.json
//
// -seed sets the root PRNG seed threaded through every workload generator
// clone and the in-process nodes' maintenance jitter, so two inproc runs with
// the same seed behave identically. -latency/-loss put a network link model
// (internal/sim/link) under the in-memory fabric, so inproc smoke runs stop
// being a zero-RTT fantasy.
//
// With -batch N every worker ships its packets in N-object ACCEPT_BATCH
// frames through Client.PublishBatch instead of one frame per packet.
//
// -trace-compare measures the observability tax: after the main drive it
// repeats the same packet count once with tracing off and once with every
// publish carrying a trace ID (worst-case sampling), and records both
// throughputs in the snapshot's trace_overhead section.
//
// Call latency is recorded in an HDR-style bucketed histogram
// (metrics.LatencyHist — no per-call allocation), so the reported p50/p95/p99
// stay exact-shaped at millions of packets. Every connection draws keys from
// its own workload.KeyGenerator clone, so the sources are independent
// streams rather than one shared PRNG.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/cq"
	"clash/internal/hub"
	"clash/internal/load"
	"clash/internal/metrics"
	"clash/internal/overlay"
	"clash/internal/sim/link"
	"clash/internal/workload"
)

type benchConfig struct {
	Mode     string `json:"mode"`
	Nodes    int    `json:"nodes,omitempty"`
	Seeds    string `json:"seeds,omitempty"`
	Conns    int    `json:"conns"`
	Packets  int    `json:"packets"`
	Batch    int    `json:"batch,omitempty"`
	Queries  int    `json:"queries"`
	Workload string `json:"workload"`
	KeyBits  int    `json:"key_bits"`
	MaxProcs int    `json:"go_max_procs"`
	NumCPU   int    `json:"num_cpu"`
}

// scalingPoint is one GOMAXPROCS setting's end-to-end drive measurement
// (client publish through transport, routing and CQ match, back).
type scalingPoint struct {
	Procs         int     `json:"procs"`
	ThroughputPPS float64 `json:"throughput_pps"`
	P99US         float64 `json:"p99_us"`
	SpeedupVs1    float64 `json:"speedup_vs_first,omitempty"`
}

type nodeSnapshot struct {
	Addr         string   `json:"addr"`
	ActiveGroups []string `json:"active_groups"`
	Splits       int      `json:"splits"`
	Merges       int      `json:"merges"`
	Accepted     int      `json:"groups_accepted"`
	Released     int      `json:"groups_released"`
}

type benchResults struct {
	PacketsOK       int                    `json:"packets_ok"`
	Errors          int                    `json:"errors"`
	ElapsedSeconds  float64                `json:"elapsed_seconds"`
	ThroughputPPS   float64                `json:"throughput_pps"`
	LatencyUS       metrics.Summary        `json:"latency_us"`
	ProbesPerPacket float64                `json:"probes_per_packet"`
	MatchesInline   int64                  `json:"matches_inline"`
	MatchesPushed   int64                  `json:"matches_pushed"`
	Transport       overlay.TransportStats `json:"transport"`
	Nodes           []nodeSnapshot         `json:"overlay,omitempty"`
}

// traceOverhead compares the same drive at three sampling rates: tracing off
// (the baseline the hot path must not regress — untraced requests skip every
// span branch), the production sampling rate (one publish in SampledEvery
// carries a trace ID), and every publish sampled (worst case: each hop on the
// path records spans and stage timings for each packet). Each mode keeps its
// best throughput over Rounds alternating rounds, which filters scheduler and
// GC noise that would otherwise dwarf the effect on sub-second drives.
type traceOverhead struct {
	Rounds        int     `json:"rounds"`
	UntracedPPS   float64 `json:"untraced_pps"`
	UntracedP99US float64 `json:"untraced_p99_us"`
	// Sampled is the realistic operating point (clashsim's split-merge
	// scenario samples at the same rate).
	SampledEvery       int     `json:"sampled_every"`
	SampledPPS         float64 `json:"sampled_pps"`
	SampledOverheadPct float64 `json:"sampled_overhead_pct"`
	// Traced stamps every publish. OverheadPct is
	// (untraced - traced) / untraced throughput in percent; negative values
	// mean the traced run happened to measure faster (noise).
	TracedPPS   float64 `json:"traced_pps"`
	TracedP99US float64 `json:"traced_p99_us"`
	OverheadPct float64 `json:"overhead_pct"`
}

type benchOut struct {
	Config        benchConfig    `json:"config"`
	GoVersion     string         `json:"go_version"`
	Results       benchResults   `json:"results"`
	Scaling       []scalingPoint `json:"scaling,omitempty"`
	TraceOverhead *traceOverhead `json:"trace_overhead,omitempty"`
}

func main() {
	var (
		seedAddrs = flag.String("connect", "", "comma-separated overlay node addresses to connect to")
		inproc    = flag.Int("inproc", 0, "boot an N-node in-process overlay instead of connecting out")
		conns     = flag.Int("conns", 8, "concurrent connections (each with its own key-generator clone)")
		packets   = flag.Int("packets", 10000, "total data packets to publish")
		batch     = flag.Int("batch", 0, "publish in N-packet ACCEPT_BATCH frames (0 = one frame per packet)")
		queries   = flag.Int("queries", 16, "continuous queries to register before driving traffic")
		kindFlag  = flag.String("workload", "B", "workload kind: A, B or C")
		keyBits   = flag.Int("keybits", workload.DefaultKeyBits, "identifier key length N")
		capacity  = flag.Float64("capacity", 5000, "per-node capacity (inproc mode)")
		streamLen = flag.Float64("stream-len", 0, "mean virtual-stream length Ld in packets (0 = the paper's 1000)")
		latency   = flag.Duration("latency", 0, "mean one-way link latency injected under -inproc (0 disables)")
		loss      = flag.Float64("loss", 0, "per-message loss probability injected under -inproc")
		replicas  = flag.Int("replicas", 0, "key-group replication factor under -inproc (0 = default 2, negative disables)")
		out       = flag.String("out", "", "write a JSON benchmark snapshot to this file")
		procs     = flag.String("procs", "", "comma-separated GOMAXPROCS values: drive the workload once per value and record the scaling curve (last value's run fills the detailed results)")
		metricsAd = flag.String("metrics-addr", "", "serve the driver's Prometheus metrics at this HTTP address during the run")
		traceEv   = flag.Int("trace-every", 0, "sample every Nth published packet with a request trace (0 disables)")
		traceCmp  = flag.Bool("trace-compare", false, "after the main drive, measure trace-sampling overhead: repeat the drive once untraced and once with every publish traced, and record both (trace_overhead in the -out snapshot)")
		dialTO    = flag.Duration("dial-timeout", 0, "TCP connect timeout for outbound connections (0 = default 3s; TCP mode only)")
		callTO    = flag.Duration("call-timeout", 0, "per-call reply deadline (0 = default 10s; TCP mode only)")
		idleTO    = flag.Duration("idle-timeout", 0, "idle time before pooled connections close (0 = default 5m; TCP mode only)")
	)
	var randSeed int64
	flag.Int64Var(&randSeed, "seed", 1, "root PRNG seed: workload generator clones + inproc maintenance jitter")
	flag.Int64Var(&randSeed, "rand-seed", 1, "deprecated alias for -seed")
	flag.Parse()
	tcpCfg := overlay.TCPConfig{DialTimeout: *dialTO, CallTimeout: *callTO, IdleTimeout: *idleTO}
	if err := run(*seedAddrs, *inproc, *conns, *packets, *batch, *queries, *kindFlag, *keyBits, *capacity, *streamLen, *latency, *loss, *replicas, randSeed, *out, *metricsAd, *traceEv, *traceCmp, *procs, tcpCfg); err != nil {
		fmt.Fprintln(os.Stderr, "clashload:", err)
		os.Exit(1)
	}
}

func parseKind(s string) (workload.Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "A":
		return workload.WorkloadA, nil
	case "B":
		return workload.WorkloadB, nil
	case "C":
		return workload.WorkloadC, nil
	default:
		return 0, fmt.Errorf("unknown workload %q (want A, B or C)", s)
	}
}

// parseProcs parses the -procs list ("1,2,4"); empty means "run once at the
// current GOMAXPROCS".
func parseProcs(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var procs []int
	for _, part := range strings.Split(spec, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad -procs entry %q", part)
		}
		procs = append(procs, p)
	}
	return procs, nil
}

func run(seedAddrs string, inproc, conns, packets, batch, queries int, kindFlag string, keyBits int, capacity, streamLen float64, latency time.Duration, loss float64, replicas int, randSeed int64, out, metricsAddr string, traceEvery int, traceCompare bool, procsSpec string, tcpCfg overlay.TCPConfig) error {
	kind, err := parseKind(kindFlag)
	if err != nil {
		return err
	}
	procList, err := parseProcs(procsSpec)
	if err != nil {
		return err
	}
	spec := workload.SpecFor(kind)
	spec.KeyBits = keyBits
	if spec.BaseBits >= keyBits {
		spec.BaseBits = keyBits / 2
	}
	if streamLen > 0 {
		spec.MeanStreamLen = streamLen
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if conns < 1 {
		conns = 1
	}
	if (latency > 0 || loss > 0) && inproc <= 0 {
		return fmt.Errorf("-latency/-loss model the in-memory fabric and need -inproc N")
	}

	if batch < 0 {
		batch = 0
	}
	cfg := benchConfig{
		Conns:    conns,
		Packets:  packets,
		Batch:    batch,
		Queries:  queries,
		Workload: kind.String(),
		KeyBits:  keyBits,
		MaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:   runtime.NumCPU(),
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		clientTr overlay.Transport
		seeds    []string
		nodes    []*overlay.Node
	)
	space := chord.DefaultSpace()
	if inproc > 0 {
		cfg.Mode = "inproc"
		cfg.Nodes = inproc
		netw := overlay.NewMemNetwork()
		nodes, err = bootInproc(ctx, netw, inproc, keyBits, space, capacity, randSeed, replicas)
		if err != nil {
			return err
		}
		// Engage the link model after boot (the measurement run starts from
		// a converged overlay; the simulator does the same).
		if latency > 0 || loss > 0 {
			if err := netw.SetLink(link.WAN(latency, loss), randSeed); err != nil {
				return err
			}
		}
		for _, n := range nodes {
			seeds = append(seeds, n.Addr())
		}
		clientTr = netw.Endpoint("clashload-client")
	} else {
		cfg.Mode = "tcp"
		cfg.Seeds = seedAddrs
		seeds = strings.Split(seedAddrs, ",")
		for i := range seeds {
			seeds[i] = strings.TrimSpace(seeds[i])
		}
		if len(seeds) == 0 || seeds[0] == "" {
			return fmt.Errorf("need -connect addresses or -inproc N")
		}
		clientTr, err = overlay.ListenTCPConfig("127.0.0.1:0", tcpCfg)
		if err != nil {
			return err
		}
	}

	client, err := overlay.NewClient(clientTr, keyBits, space, seeds...)
	if err != nil {
		return err
	}
	defer client.Close()

	// Observability: -metrics-addr serves the driver's own registry (client
	// transport counters plus, under -trace-every, the per-stage trace
	// histograms); -trace-every stamps every Nth publish with a trace id. In
	// inproc mode the trace store doubles as the nodes' observer, so the
	// server-side stage timings land in this process; in TCP mode they land
	// on the serving nodes' hubs instead.
	var reg *metrics.Registry
	if metricsAddr != "" {
		reg = metrics.NewRegistry()
		frames := reg.CounterVec("clashload_transport_frames_total", "Client wire frames by direction.", "dir")
		bytes := reg.CounterVec("clashload_transport_bytes_total", "Client wire bytes by direction.", "dir")
		inFlight := reg.Gauge("clashload_transport_in_flight", "Client calls awaiting a reply.")
		reg.OnCollect(func() {
			ts := clientTr.Stats()
			frames.With("in").Set(ts.FramesIn)
			frames.With("out").Set(ts.FramesOut)
			bytes.With("in").Set(ts.BytesIn)
			bytes.With("out").Set(ts.BytesOut)
			inFlight.Set(float64(ts.InFlight))
		})
		msrv := &http.Server{Addr: metricsAddr, Handler: reg, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "clashload: metrics server:", err)
			}
		}()
		defer msrv.Close()
		fmt.Printf("clashload: metrics at http://%s/metrics\n", metricsAddr)
	}
	var traces *hub.Traces
	if traceEvery > 0 {
		client.SetTraceEvery(traceEvery)
		traces = hub.NewTraces(0, reg)
		for _, n := range nodes {
			n.SetObserver(traces)
		}
	}

	// Count pushed match notifications in the background.
	var pushed int64
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-client.Matches():
				atomic.AddInt64(&pushed, 1)
			}
		}
	}()

	// Register continuous queries over skew-weighted base regions.
	qgen, err := workload.NewKeyGenerator(spec, rand.New(rand.NewSource(randSeed)))
	if err != nil {
		return err
	}
	registered := 0
	for i := 0; i < queries; i++ {
		region := bitkey.NewGroup(bitkey.Key{Value: uint64(qgen.NextBase()), Bits: spec.BaseBits})
		q := cq.Query{
			ID:         fmt.Sprintf("q-%d", i),
			Region:     region,
			Predicates: []cq.Predicate{{Attr: "speed", Op: cq.OpGt, Value: 50}},
		}
		if _, err := client.Register(q); err == nil {
			registered++
		}
	}

	// Drive the packets from conns independent workers, each with its own
	// generator clone (per-source PRNG streams) and its own latency
	// histogram (merged at the end; Record never allocates).
	type workerResult struct {
		hist    *metrics.LatencyHist
		ok      int
		errs    int
		probes  int
		matches int64
	}
	drive := func() (workerResult, *metrics.LatencyHist, time.Duration) {
		results := make([]workerResult, conns)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < conns; w++ {
			per := packets / conns
			if w < packets%conns {
				per++
			}
			wg.Add(1)
			go func(w, per int) {
				defer wg.Done()
				gen := qgen.Clone(randSeed + int64(w) + 1)
				attrRng := rand.New(rand.NewSource(randSeed + int64(w) + 1000))
				res := &results[w]
				res.hist = metrics.NewLatencyHist()
				var key bitkey.Key
				streamLeft := 0
				var pending []overlay.BatchItem
				flush := func() {
					if len(pending) == 0 {
						return
					}
					t0 := time.Now()
					prs, errs := client.PublishBatch(pending)
					// One histogram sample per batch frame: the latency a
					// batched producer observes per flush.
					res.hist.Record(time.Since(t0).Microseconds())
					for i := range pending {
						if errs[i] != nil {
							res.errs++
							continue
						}
						res.ok++
						res.probes += prs[i].Probes
						res.matches += int64(len(prs[i].Matches))
					}
					pending = pending[:0]
				}
				for i := 0; i < per; i++ {
					if streamLeft == 0 {
						key = gen.Next()
						streamLeft = gen.NextStreamLength()
					}
					streamLeft--
					attrs := map[string]float64{"speed": attrRng.Float64() * 100}
					if batch > 0 {
						pending = append(pending, overlay.BatchItem{Key: key, Attrs: attrs})
						if len(pending) >= batch {
							flush()
						}
						continue
					}
					t0 := time.Now()
					pr, err := client.Publish(key, attrs, nil)
					if err != nil {
						res.errs++
						continue
					}
					res.hist.Record(time.Since(t0).Microseconds())
					res.ok++
					res.probes += pr.Probes
					res.matches += int64(len(pr.Matches))
				}
				flush()
			}(w, per)
		}
		wg.Wait()
		elapsed := time.Since(start)
		// Let async match pushes still in flight drain before reading the
		// counter.
		time.Sleep(200 * time.Millisecond)

		hist := metrics.NewLatencyHist()
		agg := workerResult{}
		for i := range results {
			r := &results[i]
			hist.Merge(r.hist)
			agg.ok += r.ok
			agg.errs += r.errs
			agg.probes += r.probes
			agg.matches += r.matches
		}
		return agg, hist, elapsed
	}

	// With -procs, the whole drive phase repeats once per GOMAXPROCS value
	// (same converged overlay, same per-worker generator seeds) and each run
	// contributes one scaling point; the last run fills the detailed results.
	var (
		scaling []scalingPoint
		agg     workerResult
		hist    *metrics.LatencyHist
		elapsed time.Duration
	)
	if len(procList) == 0 {
		agg, hist, elapsed = drive()
	} else {
		prev := runtime.GOMAXPROCS(0)
		for _, p := range procList {
			runtime.GOMAXPROCS(p)
			cfg.MaxProcs = p
			agg, hist, elapsed = drive()
			pt := scalingPoint{Procs: p, P99US: hist.Summary().P99}
			if elapsed > 0 {
				pt.ThroughputPPS = float64(agg.ok) / elapsed.Seconds()
			}
			if len(scaling) > 0 && scaling[0].ThroughputPPS > 0 {
				pt.SpeedupVs1 = pt.ThroughputPPS / scaling[0].ThroughputPPS
			}
			scaling = append(scaling, pt)
			fmt.Printf("clashload: procs=%d throughput=%.0f pkt/s p99=%.0fµs\n", p, pt.ThroughputPPS, pt.P99US)
		}
		runtime.GOMAXPROCS(prev)
	}

	res := benchResults{
		PacketsOK:      agg.ok,
		Errors:         agg.errs,
		ElapsedSeconds: elapsed.Seconds(),
		LatencyUS:      hist.Summary(),
		MatchesInline:  agg.matches,
		MatchesPushed:  atomic.LoadInt64(&pushed),
		Transport:      clientTr.Stats(),
	}
	if elapsed > 0 {
		res.ThroughputPPS = float64(agg.ok) / elapsed.Seconds()
	}
	if agg.ok > 0 {
		res.ProbesPerPacket = float64(agg.probes) / float64(agg.ok)
	}
	for _, n := range nodes {
		st := n.Status()
		res.Nodes = append(res.Nodes, nodeSnapshot{
			Addr:         st.Addr,
			ActiveGroups: st.ActiveGroups,
			Splits:       st.Counters.Splits,
			Merges:       st.Counters.Merges,
			Accepted:     st.Counters.GroupsAccepted,
			Released:     st.Counters.GroupsReleased,
		})
	}

	batchNote := ""
	if batch > 0 {
		batchNote = fmt.Sprintf(", batch %d", batch)
	}
	fmt.Printf("clashload: workload %s, %d conns, %d packets%s (%d queries registered)\n",
		kind, conns, packets, batchNote, registered)
	fmt.Printf("  ok=%d errors=%d elapsed=%.2fs throughput=%.0f pkt/s\n",
		res.PacketsOK, res.Errors, res.ElapsedSeconds, res.ThroughputPPS)
	fmt.Printf("  latency µs: p50=%.0f p95=%.0f p99=%.0f max=%.0f (mean %.0f)\n",
		res.LatencyUS.P50, res.LatencyUS.P95, res.LatencyUS.P99, res.LatencyUS.Max, res.LatencyUS.Mean)
	fmt.Printf("  probes/packet=%.3f matches inline=%d pushed=%d (dropped %d)\n",
		res.ProbesPerPacket, res.MatchesInline, res.MatchesPushed, client.Drops())
	ts := res.Transport
	fmt.Printf("  transport: frames in=%d out=%d bytes in=%d out=%d in-flight=%d reconnects=%d oversized=%d\n",
		ts.FramesIn, ts.FramesOut, ts.BytesIn, ts.BytesOut, ts.InFlight, ts.Reconnects, ts.OversizedDrops)
	fmt.Printf("  resilience: timeouts=%d retries=%d shed=%d\n", ts.Timeouts, ts.Retries, ts.Shed)
	if traces != nil {
		if stages := traces.StageSummaries(); len(stages) > 0 {
			var parts []string
			for _, st := range []string{overlay.TraceStageRoute, overlay.TraceStageResolve, overlay.TraceStageMatch, overlay.TraceStageDeliver} {
				if s, ok := stages[st]; ok {
					parts = append(parts, fmt.Sprintf("%s p50=%.0f p99=%.0f n=%d", st, s.P50, s.P99, s.Count))
				}
			}
			fmt.Printf("  trace stages µs: %s (%d records)\n", strings.Join(parts, " | "), traces.Count())
		} else if inproc <= 0 {
			fmt.Printf("  trace stages: recorded on the serving nodes' hubs (/traces/sample)\n")
		}
	}
	for _, n := range res.Nodes {
		fmt.Printf("  node %s: groups=%d splits=%d merges=%d accepted=%d released=%d\n",
			n.Addr, len(n.ActiveGroups), n.Splits, n.Merges, n.Accepted, n.Released)
	}

	// -trace-compare: repeat the exact drive (same warmed overlay, same
	// per-worker generator seeds) at three sampling rates, alternating the
	// modes across rounds so slow phases of the box hit all of them alike;
	// each mode keeps its best round. The main drive above doubles as warmup.
	var tcmp *traceOverhead
	if traceCompare {
		if traces == nil {
			traces = hub.NewTraces(0, reg)
			for _, n := range nodes {
				n.SetObserver(traces)
			}
		}
		const cmpRounds = 3
		const sampledEvery = 16
		type modeBest struct {
			pps float64
			p99 float64
		}
		bests := map[int]modeBest{}
		for r := 0; r < cmpRounds; r++ {
			for _, every := range []int{0, sampledEvery, 1} {
				client.SetTraceEvery(every)
				a, h, el := drive()
				if a.ok == 0 || el <= 0 {
					client.SetTraceEvery(traceEvery)
					return fmt.Errorf("trace-compare drive (every=%d, round %d) delivered nothing (%d errors)", every, r, a.errs)
				}
				if pps := float64(a.ok) / el.Seconds(); pps > bests[every].pps {
					bests[every] = modeBest{pps: pps, p99: h.Summary().P99}
				}
			}
		}
		client.SetTraceEvery(traceEvery)
		tcmp = &traceOverhead{
			Rounds:        cmpRounds,
			UntracedPPS:   bests[0].pps,
			UntracedP99US: bests[0].p99,
			SampledEvery:  sampledEvery,
			SampledPPS:    bests[sampledEvery].pps,
			TracedPPS:     bests[1].pps,
			TracedP99US:   bests[1].p99,
		}
		tcmp.SampledOverheadPct = 100 * (tcmp.UntracedPPS - tcmp.SampledPPS) / tcmp.UntracedPPS
		tcmp.OverheadPct = 100 * (tcmp.UntracedPPS - tcmp.TracedPPS) / tcmp.UntracedPPS
		fmt.Printf("  trace overhead: untraced=%.0f pkt/s  every-%d=%.0f pkt/s (%+.1f%%)  every-publish=%.0f pkt/s (%+.1f%%; p99 %.0fµs → %.0fµs)\n",
			tcmp.UntracedPPS, sampledEvery, tcmp.SampledPPS, tcmp.SampledOverheadPct,
			tcmp.TracedPPS, tcmp.OverheadPct, tcmp.UntracedP99US, tcmp.TracedP99US)
	}

	cancel()
	for _, n := range nodes {
		_ = n.Close()
	}

	if out != "" {
		snapshot := benchOut{Config: cfg, GoVersion: runtime.Version(), Results: res, Scaling: scaling, TraceOverhead: tcmp}
		data, err := json.MarshalIndent(snapshot, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("  snapshot written to %s\n", out)
	}
	// Fail loudly so CI smoke runs go red when the overlay stops serving.
	// With loss injected into the inproc fabric some failures are the point
	// of the exercise, but only in rough proportion to the injected loss —
	// a generous 20x-expectation bound keeps the gate meaningful against
	// unrelated regressions.
	if agg.ok == 0 {
		return fmt.Errorf("no packet was delivered (%d errors)", agg.errs)
	}
	allowedErrs := 0
	if inproc > 0 && loss > 0 {
		// Each publish crosses the link at least twice (request + reply).
		allowedErrs = int(20*loss*2*float64(packets)) + 10
	}
	if agg.errs > allowedErrs {
		return fmt.Errorf("%d of %d publishes failed (allowed %d at loss %g)",
			agg.errs, packets, allowedErrs, loss)
	}
	return nil
}

// bootInproc builds an N-node overlay on the in-memory fabric: node 0
// bootstraps the initial partition, the rest join, the ring is converged with
// explicit maintenance rounds, and every node's Run loop is started.
func bootInproc(ctx context.Context, netw *overlay.MemNetwork, n, keyBits int, space chord.Space, capacity float64, seed int64, replicas int) ([]*overlay.Node, error) {
	cfg := overlay.Config{
		KeyBits:           keyBits,
		Space:             space,
		Model:             load.DefaultModel(capacity),
		BootstrapDepth:    2,
		StabilizeInterval: 50 * time.Millisecond,
		LoadCheckInterval: 500 * time.Millisecond,
		Seed:              seed,
		ReplicationFactor: replicas,
	}
	nodes := make([]*overlay.Node, n)
	for i := range nodes {
		node, err := overlay.NewNode(netw.Endpoint(fmt.Sprintf("mem-node-%d", i)), cfg)
		if err != nil {
			return nil, err
		}
		nodes[i] = node
	}
	if err := nodes[0].BootstrapRoots(); err != nil {
		return nil, err
	}
	for _, node := range nodes[1:] {
		if err := node.Join(nodes[0].Addr()); err != nil {
			return nil, err
		}
	}
	// Converge the ring before traffic: enough Tick rounds for fingers and
	// successor lists, then two load checks to distribute the root groups.
	for r := 0; r < 3*space.Bits; r++ {
		for _, node := range nodes {
			node.Tick()
		}
	}
	for i := 0; i < 2; i++ {
		now := time.Now()
		for _, node := range nodes {
			node.LoadCheck(now)
		}
	}
	for _, node := range nodes {
		go node.Run(ctx)
	}
	return nodes, nil
}
