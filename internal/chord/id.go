// Package chord implements the Chord distributed hash table (Stoica et al.,
// SIGCOMM 2001) used by CLASH as its Map() substrate.
//
// Two views are provided:
//
//   - Ring: a process-local, authoritative view of the whole membership with
//     consistent-hashing placement, virtual servers and finger-table route
//     simulation. The planned CLASH simulator (internal/sim) will use it to
//     resolve Map(f(k')) and count lookup hops without running a full
//     message protocol for every event.
//   - Node: a protocol node with successor lists, finger tables and the
//     join/stabilize/notify/fix-fingers algorithms, communicating through an
//     RPC interface. The live overlay (internal/overlay) runs Nodes over a
//     real transport.
//
// Both views share the same identifier space and hash function, so placement
// decisions agree between the simulator and the live overlay.
package chord

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// DefaultSpaceBits is the default size M of the hash identifier space. The
// paper simulates a 24-bit hash space; 32 bits keeps collisions negligible
// for up to ~10^4 virtual servers while remaining comfortably printable.
const DefaultSpaceBits = 32

// ID is a point on the Chord identifier circle. Only the low Space.Bits bits
// are significant.
type ID uint64

// Space describes an M-bit circular identifier space.
type Space struct {
	// Bits is M, the number of significant bits (1..64).
	Bits int
}

// NewSpace returns an M-bit identifier space.
func NewSpace(bits int) (Space, error) {
	if bits < 1 || bits > 64 {
		return Space{}, fmt.Errorf("chord: space bits %d out of range [1,64]", bits)
	}
	return Space{Bits: bits}, nil
}

// DefaultSpace returns the default 32-bit space.
func DefaultSpace() Space { return Space{Bits: DefaultSpaceBits} }

// Size returns the number of points in the space as a uint64 mask helper;
// for Bits == 64 it returns the all-ones mask + 1 semantics via Mask.
func (s Space) Mask() uint64 {
	if s.Bits >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(s.Bits)) - 1
}

// Wrap reduces an arbitrary value into the space.
func (s Space) Wrap(v uint64) ID { return ID(v & s.Mask()) }

// Add returns (a + d) modulo the space size.
func (s Space) Add(a ID, d uint64) ID { return s.Wrap(uint64(a) + d) }

// HashBytes hashes an arbitrary byte string onto the circle (SHA-1 truncated
// to the space size).
func (s Space) HashBytes(b []byte) ID {
	sum := sha1.Sum(b)
	v := binary.BigEndian.Uint64(sum[:8])
	return s.Wrap(v)
}

// HashString hashes a string (e.g. a server address) onto the circle.
func (s Space) HashString(str string) ID { return s.HashBytes([]byte(str)) }

// Between reports whether id lies in the half-open circular interval
// (from, to]. This is the ownership test used by consistent hashing: the
// successor of a point owns it.
func Between(from, to, id ID) bool {
	if from == to {
		// The interval covers the whole circle.
		return true
	}
	if from < to {
		return id > from && id <= to
	}
	// Interval wraps around zero.
	return id > from || id <= to
}

// BetweenOpen reports whether id lies in the open circular interval
// (from, to).
func BetweenOpen(from, to, id ID) bool {
	if from == to {
		return id != from
	}
	if from < to {
		return id > from && id < to
	}
	return id > from || id < to
}
