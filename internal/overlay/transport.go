package overlay

import (
	"errors"
	"fmt"
)

// Transport errors.
var (
	// ErrUnreachable is returned by Call when the remote endpoint cannot be
	// reached (connection refused, endpoint down, transport closed).
	ErrUnreachable = errors.New("overlay: endpoint unreachable")
	// ErrClosed is returned by operations on a closed transport.
	ErrClosed = errors.New("overlay: transport closed")
)

// RemoteError is an application-level error returned by the remote handler
// (as opposed to a transport failure). The remote message survives the wire;
// the remote error chain does not.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "overlay: remote error: " + e.Msg }

// IsRemote reports whether err is an application error relayed from the
// remote handler rather than a transport failure.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Handler processes one inbound request frame and returns the reply payload.
// Returning an error sends a frameErr reply carrying the error text; the
// error never tears down the connection.
type Handler func(msgType string, payload []byte) ([]byte, error)

// Transport is the messaging substrate an overlay node or client runs on:
// a listening endpoint with an address peers can Call, plus the outbound Call
// primitive. Implementations must be safe for concurrent use.
//
// Two implementations exist: MemNetwork endpoints for deterministic in-process
// tests and TCPTransport for real deployments. Both speak the same framed wire
// protocol (wire.go).
type Transport interface {
	// Addr returns the endpoint's address, which doubles as its identity:
	// the chord ring position is the hash of this address and the CLASH
	// ServerID is the address itself.
	Addr() string
	// SetHandler installs the inbound request handler. It must be called
	// before the first Call can be answered; installing nil drops requests
	// with an error reply.
	SetHandler(h Handler)
	// Call sends one request frame to addr and waits for the reply frame.
	// It returns ErrUnreachable (wrapped) on transport failure and a
	// *RemoteError when the remote handler returned an error.
	Call(addr, msgType string, payload []byte) ([]byte, error)
	// Close releases the endpoint. Outstanding and future Calls fail.
	Close() error
}

// dispatch invokes h if non-nil, standardising the nil-handler error.
func dispatch(h Handler, msgType string, payload []byte) ([]byte, error) {
	if h == nil {
		return nil, fmt.Errorf("no handler installed")
	}
	return h(msgType, payload)
}
