package overlay

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/core"
	"clash/internal/cq"
)

// handle is the node's inbound request dispatcher (installed on the
// transport by NewNode).
func (n *Node) handle(msgType string, payload []byte) ([]byte, error) {
	switch msgType {
	case TypeFindSuccessor:
		return n.handleFindSuccessor(payload)
	case TypePredecessor:
		return json.Marshal(refToMsg(n.chord.PredecessorRef()))
	case TypeNotify:
		return n.handleNotify(payload)
	case TypePing:
		return nil, nil
	case TypeAcceptObject:
		return n.handleAcceptObject(payload)
	case TypeAcceptKeyGroup:
		return n.handleAcceptKeyGroup(payload)
	case TypeLoadReport:
		return n.handleLoadReport(payload)
	case TypeReleaseKeyGroup:
		return n.handleReleaseKeyGroup(payload)
	case TypeChildMoved:
		return n.handleChildMoved(payload)
	case TypeStatus:
		return json.Marshal(n.Status())
	default:
		return nil, fmt.Errorf("unknown message type %q", msgType)
	}
}

func (n *Node) handleFindSuccessor(payload []byte) ([]byte, error) {
	var req findSuccessorMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	ref, err := n.chord.FindSuccessor(chord.ID(req.ID))
	if err != nil {
		return nil, err
	}
	return json.Marshal(refToMsg(ref))
}

func (n *Node) handleNotify(payload []byte) ([]byte, error) {
	var req notifyMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	n.chord.Notify(msgToRef(req.Candidate))
	return nil, nil
}

// handleAcceptObject implements the server side of ACCEPT_OBJECT for both
// object kinds: data packets are metered and matched against the stored
// continuous queries (with async match push to subscribers); query
// registrations are installed into the engine. Both only take effect when the
// depth resolution has landed on the right server (status OK / OK_CORRECTED).
func (n *Node) handleAcceptObject(payload []byte) ([]byte, error) {
	var req core.AcceptObjectMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	key, err := bitkey.Parse(req.Key)
	if err != nil {
		return nil, err
	}
	res, err := n.server.HandleAcceptObject(key, req.Depth)
	if err != nil {
		return nil, err
	}
	reply := core.AcceptObjectReplyMsg{Status: res.Status.String()}
	switch res.Status {
	case core.StatusOK, core.StatusOKCorrected:
		reply.Group = res.Group.String()
		reply.CorrectDepth = res.CorrectDepth
	case core.StatusIncorrectDepth:
		reply.DMin = res.DMin
		return json.Marshal(reply)
	}

	switch req.Kind {
	case core.ObjectData:
		n.meter.RecordPackets(res.Group.String(), 1)
		var data dataMsg
		if len(req.Payload) > 0 {
			if err := json.Unmarshal(req.Payload, &data); err != nil {
				return nil, fmt.Errorf("bad data payload: %v", err)
			}
		}
		ev := cq.Event{Key: key, Attrs: data.Attrs, Payload: data.Payload}
		matched := n.engine.Match(ev)
		for _, q := range matched {
			reply.Matches = append(reply.Matches, q.ID)
		}
		n.pushMatches(matched, ev)
	case core.ObjectQuery:
		var st queryState
		if err := json.Unmarshal(req.Payload, &st); err != nil {
			return nil, fmt.Errorf("bad query payload: %v", err)
		}
		q, err := cq.UnmarshalQuery(st.Query)
		if err != nil {
			return nil, err
		}
		if err := n.engine.Register(q); err != nil {
			if !errors.Is(err, cq.ErrDuplicateQuery) {
				return nil, err
			}
		} else {
			n.meter.AddQueries(res.Group.String(), 1)
		}
		if st.Subscriber != "" {
			n.mu.Lock()
			n.subscribers[q.ID] = st.Subscriber
			n.mu.Unlock()
		}
	}
	return json.Marshal(reply)
}

// pushMatches delivers match notifications to the subscribers of the matched
// queries, asynchronously so a slow subscriber never blocks the data path.
func (n *Node) pushMatches(matched []cq.Query, ev cq.Event) {
	if len(matched) == 0 {
		return
	}
	n.mu.Lock()
	targets := make(map[string]string, len(matched))
	for _, q := range matched {
		if sub := n.subscribers[q.ID]; sub != "" {
			targets[q.ID] = sub
		}
	}
	n.mu.Unlock()
	for id, sub := range targets {
		payload, err := json.Marshal(matchMsg{
			QueryID: id,
			Key:     ev.Key.String(),
			Attrs:   ev.Attrs,
			Payload: ev.Payload,
		})
		if err != nil {
			continue
		}
		n.wg.Add(1)
		go func(sub string, payload []byte) {
			defer n.wg.Done()
			if _, err := n.tr.Call(sub, TypeMatch, payload); err != nil {
				atomic.AddInt64(&n.matchDrops, 1)
			}
		}(sub, payload)
	}
}

func (n *Node) handleAcceptKeyGroup(payload []byte) ([]byte, error) {
	var req core.AcceptKeyGroupMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	g, err := bitkey.ParseGroup(req.Group)
	if err != nil {
		return nil, err
	}
	if err := n.server.HandleAcceptKeyGroup(g, core.ServerID(req.Parent)); err != nil {
		return nil, err
	}
	states := make([]queryState, 0, len(req.Queries))
	for _, raw := range req.Queries {
		var st queryState
		if err := json.Unmarshal(raw, &st); err == nil {
			states = append(states, st)
		}
	}
	n.installQueries(states)
	n.resetQueryCount(g)
	return nil, nil
}

func (n *Node) handleLoadReport(payload []byte) ([]byte, error) {
	var req core.LoadReportMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	g, err := bitkey.ParseGroup(req.Group)
	if err != nil {
		return nil, err
	}
	rep := core.LoadReport{
		From:  core.ServerID(req.From),
		To:    core.ServerID(n.Addr()),
		Group: g,
		Load:  req.Load,
	}
	// A stale report (the sender's view lags a merge or re-transfer) is not
	// an error worth a failed reply; it is simply dropped.
	_ = n.server.HandleLoadReport(rep, n.cfg.Clock())
	return nil, nil
}

// handleChildMoved updates the holder of a transferred right child after the
// overlay re-homed it to a different node.
func (n *Node) handleChildMoved(payload []byte) ([]byte, error) {
	var req childMovedMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	g, err := bitkey.ParseGroup(req.Group)
	if err != nil {
		return nil, err
	}
	// Stale notifications (the pair merged meanwhile) are dropped silently.
	_ = n.server.HandleChildMoved(g, core.ServerID(req.Holder))
	return nil, nil
}

// handleReleaseKeyGroup hands a key group (and its query state) back to the
// reclaiming parent during consolidation.
func (n *Node) handleReleaseKeyGroup(payload []byte) ([]byte, error) {
	var req core.ReleaseKeyGroupMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, err
	}
	g, err := bitkey.ParseGroup(req.Group)
	if err != nil {
		return nil, err
	}
	states := n.extractQueries(g)
	if err := n.server.HandleRelease(g); err != nil {
		// ErrUnknownGroup means this server holds nothing for the group (a
		// previous release's reply was lost, or the group was re-homed):
		// tell the parent it is gone so the merge can complete. Any other
		// error (split further here) means the parent's view is stale.
		n.installQueries(states)
		return json.Marshal(core.ReleaseKeyGroupReplyMsg{
			Group: req.Group,
			OK:    false,
			Error: err.Error(),
			Gone:  errors.Is(err, core.ErrUnknownGroup),
		})
	}
	n.meter.Drop(g.String())
	reply := core.ReleaseKeyGroupReplyMsg{Group: req.Group, OK: true}
	for _, st := range states {
		if data, err := json.Marshal(st); err == nil {
			reply.Queries = append(reply.Queries, data)
		}
	}
	return json.Marshal(reply)
}
