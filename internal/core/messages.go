package core

// Wire message names and payloads for the CLASH protocol. The live overlay
// (internal/overlay) serialises these with the hand-rolled binary codec in
// wire.go (MarshalWire/UnmarshalWire); the JSON tags are retained for the
// legacy baseline benchmark and for human-readable dumps. The planned
// discrete-event simulator will only count them. Keeping the definitions here
// makes the protocol surface visible in one place and lets both drivers share
// the same vocabulary when accounting for signaling overhead (paper §6.3).
//
// Identifier keys and key groups travel as (value, bits) pairs — the binary
// representation internal/bitkey uses natively — rather than the binary-digit
// strings of the original JSON protocol, so the hot encode path never renders
// or parses strings.

// MessageType enumerates the CLASH protocol messages.
type MessageType string

// Protocol message types. The first three appear verbatim in the paper; the
// remaining ones are the signaling the paper describes without naming
// (load reports for consolidation, reclaiming a key group, per-query state
// transfer during splits, and the vectored ACCEPT_OBJECT batch).
const (
	// MsgAcceptObject carries a data object or query insert from a client
	// (identifier key + estimated depth).
	MsgAcceptObject MessageType = "ACCEPT_OBJECT"
	// MsgAcceptObjectReply is the server's OK / OK-corrected /
	// INCORRECT_DEPTH response.
	MsgAcceptObjectReply MessageType = "ACCEPT_OBJECT_REPLY"
	// MsgAcceptBatch carries a vector of ACCEPT_OBJECT bodies in one frame
	// (the batched publish path).
	MsgAcceptBatch MessageType = "ACCEPT_BATCH"
	// MsgAcceptKeyGroup transfers responsibility for a key group from an
	// overloaded parent to its right-child server.
	MsgAcceptKeyGroup MessageType = "ACCEPT_KEYGROUP"
	// MsgLoadReport is the periodic leaf→parent workload report used for
	// bottom-up consolidation.
	MsgLoadReport MessageType = "LOAD_REPORT"
	// MsgReleaseKeyGroup asks a right-child server to hand a key group back
	// to its parent during consolidation.
	MsgReleaseKeyGroup MessageType = "RELEASE_KEYGROUP"
	// MsgStateTransfer carries migrated application state (e.g. stored
	// continuous queries) that accompanies a key-group transfer.
	MsgStateTransfer MessageType = "STATE_TRANSFER"
	// MsgDHTLookup accounts for one underlying DHT routing hop.
	MsgDHTLookup MessageType = "DHT_LOOKUP"
)

// AcceptObjectMsg is the payload of MsgAcceptObject.
type AcceptObjectMsg struct {
	// KeyValue and KeyBits are the full N-bit identifier key (right-aligned
	// value + length, the bitkey.Key representation).
	KeyValue uint64 `json:"keyValue"`
	KeyBits  int    `json:"keyBits"`
	// Depth is the client's estimated depth.
	Depth int `json:"depth"`
	// Kind distinguishes data packets from query registrations.
	Kind ObjectKind `json:"kind"`
	// Payload is the opaque application object (a serialised query or data
	// record).
	Payload []byte `json:"payload,omitempty"`
	// TraceID is the request-tracing context: a non-zero value marks this
	// object as sampled, and every server on its path records per-stage
	// timings under the ID (overlay trace plumbing, clashd /traces/sample).
	// Zero means untraced. Appended after the original fields per the
	// wire-evolution rule, so pre-trace peers interoperate: an old decoder
	// ignores the trailing field, an old encoder yields TraceID 0.
	TraceID uint64 `json:"traceId,omitempty"`
	// ParentSpan identifies the sender-side span this request descends from,
	// so servers can link their own spans into one cross-node trace tree
	// (clashd /traces/spans, clashtop assembly). Zero when the sender is the
	// trace root or the object is untraced. Appended after TraceID per the
	// wire-evolution rule: TraceID-era peers decode it as 0 and still
	// interoperate.
	ParentSpan uint64 `json:"parentSpan,omitempty"`
	// Hop counts redirection hops already taken by this object (0 at the
	// client). Servers use it to bound pathological forwarding and record it
	// in their spans. Appended with ParentSpan.
	Hop int `json:"hop,omitempty"`
}

// ObjectKind distinguishes the two object classes the paper stores in the
// overlay: transient data packets and long-lived continuous queries.
type ObjectKind int

// Object kinds.
const (
	ObjectData ObjectKind = iota + 1
	ObjectQuery
)

// AcceptObjectReplyMsg is the payload of MsgAcceptObjectReply.
type AcceptObjectReplyMsg struct {
	// Status is the numeric Status (StatusOK / StatusOKCorrected /
	// StatusIncorrectDepth); 0 marks a per-item failure inside a batch reply,
	// with Error carrying the text.
	Status       Status `json:"status"`
	GroupValue   uint64 `json:"groupValue,omitempty"`
	GroupBits    int    `json:"groupBits,omitempty"`
	CorrectDepth int    `json:"correctDepth,omitempty"`
	DMin         int    `json:"dmin,omitempty"`
	// Matches carries the IDs of continuous queries matched by a data packet
	// (filled by the overlay's query engine).
	Matches []string `json:"matches,omitempty"`
	// Error is the per-item failure text inside a batch reply (Status 0).
	Error string `json:"error,omitempty"`
	// SpanID echoes the serving node's span identifier for this request when
	// the object was sampled, letting the caller parent its next probe (or
	// its ingress record) under the span the server just recorded. Zero from
	// pre-span peers or for untraced objects. Appended after the original
	// fields per the wire-evolution rule.
	SpanID uint64 `json:"spanId,omitempty"`
}

// AcceptBatchMsg is the payload of MsgAcceptBatch: a vector of ACCEPT_OBJECT
// bodies processed under one server-table lock acquisition.
type AcceptBatchMsg struct {
	Objects []AcceptObjectMsg `json:"objects"`
}

// AcceptBatchReplyMsg is the reply to MsgAcceptBatch: one AcceptObjectReplyMsg
// per object, in request order.
type AcceptBatchReplyMsg struct {
	Replies []AcceptObjectReplyMsg `json:"replies"`
}

// AcceptKeyGroupMsg is the payload of MsgAcceptKeyGroup.
type AcceptKeyGroupMsg struct {
	GroupValue uint64 `json:"groupValue"`
	GroupBits  int    `json:"groupBits"`
	Parent     string `json:"parent"`
	// Queries carries the serialised continuous queries whose keys fall in
	// the transferred group (the application state migrated at split time).
	Queries [][]byte `json:"queries,omitempty"`
	// Epoch is the group's ownership epoch after this transfer (0 when the
	// sender has no epoch information). The receiving server drops delayed
	// duplicates carrying an older epoch instead of regressing the entry.
	// Appended after the original fields per the wire-evolution rule.
	Epoch uint64 `json:"epoch,omitempty"`
}

// LoadReportMsg is the payload of MsgLoadReport.
type LoadReportMsg struct {
	GroupValue uint64  `json:"groupValue"`
	GroupBits  int     `json:"groupBits"`
	Load       float64 `json:"load"`
	From       string  `json:"from"`
}

// ReleaseKeyGroupMsg is the payload of MsgReleaseKeyGroup.
type ReleaseKeyGroupMsg struct {
	GroupValue uint64 `json:"groupValue"`
	GroupBits  int    `json:"groupBits"`
	// Parent identifies the reclaiming server so the child can verify the
	// request.
	Parent string `json:"parent"`
}

// ReleaseKeyGroupReplyMsg returns the child's state for the reclaimed group.
type ReleaseKeyGroupReplyMsg struct {
	GroupValue uint64   `json:"groupValue"`
	GroupBits  int      `json:"groupBits"`
	Queries    [][]byte `json:"queries,omitempty"`
	OK         bool     `json:"ok"`
	Error      string   `json:"error,omitempty"`
	// Gone reports that the server has no entry for the group at all — it
	// released it earlier (e.g. the reply to a previous RELEASE_KEYGROUP was
	// lost in transit) or re-homed it. The reclaiming parent may complete
	// the merge without state.
	Gone bool `json:"gone,omitempty"`
}
