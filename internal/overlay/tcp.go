package overlay

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clash/internal/wirecodec"
)

// Default timeouts for the TCP transport (the zero TCPConfig). Dial and
// per-call deadlines keep a dead peer from wedging the maintenance loop; the
// idle deadline reaps connections whose peer went away.
const (
	tcpDialTimeout = 3 * time.Second
	tcpCallTimeout = 10 * time.Second
	tcpIdleTimeout = 5 * time.Minute
	// tcpShedWait bounds how long an inbound request may wait for a dispatch
	// slot before the server sheds it with a framed shed reply. Without the
	// bound, a wedged handler holding every slot would queue pipelined
	// requests forever.
	tcpShedWait = 2 * time.Second
	// tcpMuxIdle is how long an outbound multiplexed connection may sit with
	// no call in flight before the client closes it itself. It is well below
	// the server-side idle timeout for the same reason the old pool's
	// tcpPoolIdle was: the side that reaps first must be the client, so a
	// request is never written into a socket the peer's reaper may already
	// have closed (such a write "succeeds" into the dead buffer and cannot
	// safely be retried).
	tcpMuxIdle = time.Minute
	// serverMaxConcurrent bounds how many pipelined requests one inbound
	// connection may have dispatched at once; excess requests wait for a
	// slot (backpressure) instead of spawning unbounded goroutines.
	serverMaxConcurrent = 256
)

// TCPConfig tunes a TCPTransport's timeouts and dispatch bounds. Zero fields
// take the package defaults above.
type TCPConfig struct {
	// DialTimeout bounds each outbound connection attempt.
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline used when CallOpts carries none,
	// and the ceiling for socket write deadlines.
	CallTimeout time.Duration
	// IdleTimeout is the server-side read deadline: an inbound connection
	// with no traffic for this long is closed.
	IdleTimeout time.Duration
	// ShedWait bounds how long an inbound request waits for a dispatch slot
	// before being shed with a framed shed reply.
	ShedWait time.Duration
	// MaxConcurrent bounds concurrently dispatched requests per inbound
	// connection.
	MaxConcurrent int
}

// withDefaults fills zero fields with the package defaults.
func (c TCPConfig) withDefaults() TCPConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = tcpDialTimeout
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = tcpCallTimeout
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = tcpIdleTimeout
	}
	if c.ShedWait <= 0 {
		c.ShedWait = tcpShedWait
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = serverMaxConcurrent
	}
	return c
}

// errMuxClosed marks a Call that failed because the shared connection closed
// before the request frame was handed to the writer loop. The request never
// touched the socket, so retrying on a fresh connection is safe.
var errMuxClosed = errors.New("overlay: connection closed before write")

// TCPTransport is the production transport: one listening socket answering
// framed requests, plus one multiplexed outbound connection per peer.
// Concurrent Calls to the same address pipeline their frames onto that single
// connection — a writer loop serialises request frames, a demux reader loop
// matches replies to waiting calls by sequence ID — so N in-flight calls cost
// one socket, not N lockstep exchanges. Inbound requests are dispatched
// concurrently, so replies leave in completion order, not arrival order.
type TCPTransport struct {
	ln    net.Listener
	addr  string
	cfg   TCPConfig
	stats transportStats

	mu      sync.Mutex
	handler Handler
	closed  bool
	serving map[net.Conn]struct{}
	muxes   map[string]*muxConn
	dialing map[string]*sync.Mutex // per-addr dial serialisation
	dialed  map[string]bool        // addrs dialed at least once (reconnect counting)
	wg      sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// ListenTCP binds a TCP transport with the default timeouts and starts its
// accept loop. Pass an address with port 0 to let the kernel choose (the
// chosen address is what Addr returns and therefore the node's identity — use
// an address peers can reach).
func ListenTCP(addr string) (*TCPTransport, error) {
	return ListenTCPConfig(addr, TCPConfig{})
}

// ListenTCPConfig is ListenTCP with explicit timeouts and dispatch bounds.
func ListenTCPConfig(addr string, cfg TCPConfig) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("overlay: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		ln:      ln,
		addr:    ln.Addr().String(),
		cfg:     cfg.withDefaults(),
		serving: make(map[net.Conn]struct{}),
		muxes:   make(map[string]*muxConn),
		dialing: make(map[string]*sync.Mutex),
		dialed:  make(map[string]bool),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.addr }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Stats implements Transport.
func (t *TCPTransport) Stats() TransportStats { return t.stats.snapshot() }

// RecordRetry implements RetryRecorder.
func (t *TCPTransport) RecordRetry() { t.stats.retries.Add(1) }

// Close implements Transport: it stops the accept loop, closes every inbound
// connection and outbound mux, then waits for all connection goroutines.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	err := t.ln.Close()
	for c := range t.serving {
		c.Close()
	}
	muxes := make([]*muxConn, 0, len(t.muxes))
	for _, mc := range t.muxes {
		muxes = append(muxes, mc)
	}
	t.mu.Unlock()
	for _, mc := range muxes {
		mc.fail(fmt.Errorf("%w: %s", ErrClosed, t.addr))
	}
	t.wg.Wait()
	return err
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.serving[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

// numServing returns the number of live inbound connections (tests use it to
// prove that pipelined calls share one socket).
func (t *TCPTransport) numServing() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.serving)
}

// frameQueueDepth is the writer-loop channel capacity on both sides of a
// connection; frameWriteBatch caps how many queued frames one writev
// coalesces.
const (
	frameQueueDepth = 256
	frameWriteBatch = 64
)

// writeScratch is a writer loop's reusable batching state: owned keeps the
// collected frames for stats/pool return after net.Buffers.WriteTo has
// consumed the bufs view. One writer goroutine owns each instance, so the
// per-flush slices are reused instead of reallocated.
type writeScratch struct {
	bufs  net.Buffers
	owned [][]byte
}

func newWriteScratch() *writeScratch {
	return &writeScratch{
		bufs:  make(net.Buffers, 0, frameWriteBatch),
		owned: make([][]byte, 0, frameWriteBatch),
	}
}

// drainWrite writes one frame plus everything else already queued in a
// single writev, returning the frames' pooled buffers afterwards. It reports
// whether the write succeeded.
func (ws *writeScratch) drainWrite(conn net.Conn, stats *transportStats, first []byte, ch <-chan []byte, writeTimeout time.Duration) bool {
	ws.owned = append(ws.owned[:0], first)
	for len(ws.owned) < frameWriteBatch {
		select {
		case b := <-ch:
			ws.owned = append(ws.owned, b)
		default:
			goto write
		}
	}
write:
	ws.bufs = append(ws.bufs[:0], ws.owned...)
	//clashvet:ignore clockcheck kernel socket deadlines need the wall clock; TCP never runs under the simulator
	_ = conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	_, err := ws.bufs.WriteTo(conn) // writev: one syscall for the whole batch
	for i, b := range ws.owned {
		stats.countOut(len(b))
		wirecodec.PutBuf(b)
		ws.owned[i] = nil
	}
	return err == nil
}

// serveConn answers framed requests on one inbound connection until the peer
// hangs up, framing corrupts, or the idle deadline passes. Requests are
// dispatched concurrently (bounded by cfg.MaxConcurrent) and each reply
// carries its request's sequence ID, so a slow handler never head-of-line
// blocks the requests pipelined behind it; a per-connection writer loop
// coalesces queued replies into single writev calls. A request that cannot
// get a dispatch slot within cfg.ShedWait is shed with a framed shed reply —
// wedged handlers cost the peer a bounded wait, not an unbounded queue.
func (t *TCPTransport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	var (
		hwg     sync.WaitGroup
		sem     = make(chan struct{}, t.cfg.MaxConcurrent)
		writeCh = make(chan []byte, frameQueueDepth)
		done    = make(chan struct{})
		wdone   = make(chan struct{})
	)
	// Reply writer loop: drains queued frames ahead of shutdown, so every
	// reply a handler produced is flushed before the connection winds down.
	go func() {
		defer close(wdone)
		ws := newWriteScratch()
		for {
			select {
			case buf := <-writeCh:
				if !ws.drainWrite(conn, &t.stats, buf, writeCh, t.cfg.CallTimeout) {
					// The peer stopped reading; tear the connection down so
					// the read loop exits too.
					conn.Close()
					return
				}
			default:
				select {
				case buf := <-writeCh:
					if !ws.drainWrite(conn, &t.stats, buf, writeCh, t.cfg.CallTimeout) {
						conn.Close()
						return
					}
				case <-done:
					return
				}
			}
		}
	}()
	defer func() {
		// Let in-flight handlers finish and the writer drain their replies
		// before the socket closes: a peer that half-closed its write side
		// after pipelining requests still receives every reply. On a dead
		// connection the writer's write error closes the socket itself, so
		// this drain cannot wedge (handlers fall through to wdone).
		hwg.Wait()
		close(done)
		<-wdone
		conn.Close()
		t.mu.Lock()
		delete(t.serving, conn)
		t.mu.Unlock()
	}()
	writeReply := func(seq uint64, typ byte, payload []byte) {
		buf, err := appendFrame(wirecodec.GetBuf(), seq, typ, payload)
		if err != nil {
			// An oversized reply must still answer its sequence ID — a
			// dropped frame would leave the caller waiting out its timeout
			// and retrying forever. The error text always fits.
			buf, err = appendFrame(buf[:0], seq, typeReplyErr, []byte(err.Error()))
			if err != nil {
				wirecodec.PutBuf(buf)
				return
			}
		}
		select {
		case writeCh <- buf:
		case <-wdone:
			wirecodec.PutBuf(buf)
		}
	}
	for {
		//clashvet:ignore clockcheck kernel socket deadlines need the wall clock; TCP never runs under the simulator
		_ = conn.SetReadDeadline(time.Now().Add(t.cfg.IdleTimeout))
		// Request payloads live in pooled buffers end-to-end: the socket read
		// lands in a pooled buffer, the handler decodes it in place, and the
		// dispatch goroutine returns it to the pool once the reply frame has
		// been built (appendFrame copies). readFrameInto always hands the
		// buffer back through f.payload, so every path below recycles it.
		f, err := readFrameInto(conn, wirecodec.GetBuf())
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// The oversized payload was skipped and framing is intact:
				// answer with a framed error and keep the connection (and
				// every pipelined call on it) alive.
				t.stats.oversizedDrops.Add(1)
				writeReply(f.seq, typeReplyErr, []byte(err.Error()))
				wirecodec.PutBuf(f.payload)
				continue
			}
			// EOF, deadline, or framing corruption: close.
			wirecodec.PutBuf(f.payload)
			return
		}
		t.stats.countIn(frameHeaderSize + len(f.payload))
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		select {
		case sem <- struct{}{}:
		default:
			// Every dispatch slot is taken: wait a bounded time, then shed.
			// The peer gets a distinct framed reply so it knows the handler
			// never ran and a backed-off resend is safe.
			//clashvet:ignore clockcheck real-socket overload shedding waits in wall time; TCP never runs under the simulator
			shedTimer := time.NewTimer(t.cfg.ShedWait)
			select {
			case sem <- struct{}{}:
				shedTimer.Stop()
			case <-shedTimer.C:
				t.stats.shed.Add(1)
				writeReply(f.seq, typeReplyShed, []byte("server overloaded: request shed"))
				wirecodec.PutBuf(f.payload)
				continue
			}
		}
		hwg.Add(1)
		go func(f frame) {
			defer hwg.Done()
			defer func() { <-sem }()
			reply, herr := dispatch(h, typeName(f.typ), f.payload)
			if herr != nil {
				writeReply(f.seq, typeReplyErr, []byte(herr.Error()))
			} else {
				writeReply(f.seq, typeReplyOK, reply)
				// The handler transferred reply ownership; the frame encoder
				// copied it, so it can feed the next reply.
				wirecodec.PutBuf(reply)
			}
			wirecodec.PutBuf(f.payload)
		}(f)
	}
}

// callResult is what the demux reader delivers to a waiting Call.
type callResult struct {
	typ     byte
	payload []byte
	err     error
}

// muxConn is one multiplexed outbound connection: a writer loop draining
// request frames, a reader loop demultiplexing replies into the in-flight
// map by sequence ID.
type muxConn struct {
	t    *TCPTransport
	addr string
	conn net.Conn

	writeCh  chan []byte // encoded request frames (pooled buffers)
	closeCh  chan struct{}
	failOnce sync.Once

	// lastUsed is the UnixNano of the last call registration or reply frame,
	// read by the idle reaper to distinguish a genuinely idle connection
	// from a read deadline armed before a late call arrived.
	lastUsed atomic.Int64

	mu       sync.Mutex
	inflight map[uint64]chan callResult
	nextSeq  uint64
	closed   bool
}

// touch records activity for the idle reaper.
//
//clashvet:ignore clockcheck idle reaping of real sockets is wall-clock by nature; TCP never runs under the simulator
func (m *muxConn) touch() { m.lastUsed.Store(time.Now().UnixNano()) }

func newMuxConn(t *TCPTransport, addr string, conn net.Conn) *muxConn {
	m := &muxConn{
		t:        t,
		addr:     addr,
		conn:     conn,
		writeCh:  make(chan []byte, frameQueueDepth),
		closeCh:  make(chan struct{}),
		inflight: make(map[uint64]chan callResult),
	}
	m.touch()
	return m
}

func (m *muxConn) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// idle reports whether no call is awaiting a reply.
func (m *muxConn) idle() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inflight) == 0
}

// fail closes the connection and fails every in-flight call. It is safe to
// call multiple times and from any goroutine (reader, writer, Close).
func (m *muxConn) fail(err error) {
	m.failOnce.Do(func() {
		m.mu.Lock()
		m.closed = true
		waiting := m.inflight
		m.inflight = make(map[uint64]chan callResult)
		m.mu.Unlock()
		close(m.closeCh)
		m.conn.Close()
		for _, ch := range waiting {
			ch <- callResult{err: err}
		}
	})
}

// writeLoop serialises request frames onto the socket, coalescing queued
// frames into single writev calls.
func (m *muxConn) writeLoop() {
	defer m.t.wg.Done()
	ws := newWriteScratch()
	for {
		select {
		case buf := <-m.writeCh:
			if !ws.drainWrite(m.conn, &m.t.stats, buf, m.writeCh, m.t.cfg.CallTimeout) {
				m.fail(fmt.Errorf("%s: write failed", m.addr))
				return
			}
		case <-m.closeCh:
			// Frames still queued belong to calls fail() already errored;
			// recycle their buffers.
			for {
				select {
				case buf := <-m.writeCh:
					wirecodec.PutBuf(buf)
				default:
					return
				}
			}
		}
	}
}

// readLoop demultiplexes reply frames to the in-flight calls and reaps the
// connection after tcpMuxIdle without traffic.
func (m *muxConn) readLoop() {
	defer m.t.wg.Done()
	for {
		//clashvet:ignore clockcheck kernel socket deadlines need the wall clock; TCP never runs under the simulator
		_ = m.conn.SetReadDeadline(time.Now().Add(tcpMuxIdle))
		f, err := readFrame(m.conn)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// Only the oversized reply's call fails; the connection and
				// the other in-flight calls stay healthy.
				m.t.stats.oversizedDrops.Add(1)
				m.deliver(f.seq, callResult{err: err})
				continue
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				//clashvet:ignore clockcheck idle-window arithmetic against a socket deadline is wall-clock by nature
				if since := time.Since(time.Unix(0, m.lastUsed.Load())); since < tcpMuxIdle {
					// The deadline was armed before recent activity (a call
					// registered late in the window); re-arm and keep going.
					continue
				}
				if m.idle() {
					// Clean idle self-reap: nothing is in flight (calls time
					// out and deregister long before tcpMuxIdle), so closing
					// now is invisible; failing with errMuxClosed lets a
					// Call racing this close retry on a fresh dial.
					m.fail(errMuxClosed)
					return
				}
			}
			m.fail(fmt.Errorf("read %s: %w", m.addr, err))
			return
		}
		if f.typ != typeReplyOK && f.typ != typeReplyErr && f.typ != typeReplyShed {
			m.fail(fmt.Errorf("%w: reply type %#x", ErrBadFrame, f.typ))
			return
		}
		m.touch()
		m.t.stats.countIn(frameHeaderSize + len(f.payload))
		m.deliver(f.seq, callResult{typ: f.typ, payload: f.payload})
	}
}

// deliver hands a result to the call waiting on seq. Replies for unknown
// sequence IDs (a call that timed out meanwhile) are dropped.
func (m *muxConn) deliver(seq uint64, res callResult) {
	m.mu.Lock()
	ch, ok := m.inflight[seq]
	delete(m.inflight, seq)
	m.mu.Unlock()
	if ok {
		ch <- res
	}
}

// call performs one pipelined exchange on the shared connection, waiting at
// most timeout for the reply.
func (m *muxConn) call(typ byte, payload []byte, timeout time.Duration) ([]byte, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errMuxClosed
	}
	m.nextSeq++
	seq := m.nextSeq
	ch := make(chan callResult, 1)
	m.inflight[seq] = ch
	m.mu.Unlock()
	m.touch()

	buf := wirecodec.GetBuf()
	buf, err := appendFrame(buf, seq, typ, payload)
	if err != nil {
		wirecodec.PutBuf(buf)
		m.abandon(seq)
		return nil, err
	}
	// Hand the frame to the writer loop: a successful send means the writer
	// owns the frame (it reaches the socket or the whole connection fails,
	// erroring this call through its in-flight channel), while losing to
	// closeCh means the request never left this goroutine and is safe to
	// retry elsewhere.
	select {
	//clashvet:ignore poolcheck deliberate ownership handoff: the writer loop recycles the frame after writev (or the conn dies and errors the call)
	case m.writeCh <- buf:
	case <-m.closeCh:
		wirecodec.PutBuf(buf)
		m.abandon(seq)
		return nil, errMuxClosed
	}

	//clashvet:ignore clockcheck real-RPC timeout on a kernel socket; TCP never runs under the simulator
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		switch res.typ {
		case typeReplyErr:
			return nil, &RemoteError{Msg: string(res.payload)}
		case typeReplyShed:
			return nil, fmt.Errorf("%w: %s: %s", ErrShed, m.addr, res.payload)
		}
		return res.payload, nil
	case <-timer.C:
		m.abandon(seq)
		m.t.stats.timeouts.Add(1)
		return nil, fmt.Errorf("%w: call %s after %s", ErrDeadline, m.addr, timeout)
	}
}

// abandon forgets an in-flight registration (failed enqueue or timeout).
func (m *muxConn) abandon(seq uint64) {
	m.mu.Lock()
	delete(m.inflight, seq)
	m.mu.Unlock()
}

// getMux returns the live shared connection to addr, dialing one when none
// exists. Dials to the same address are serialised by a per-address lock so
// a burst of first calls shares one connection instead of racing N dials.
// fresh reports that this call created the connection (a Call that fails on
// a fresh connection must not redial again).
func (t *TCPTransport) getMux(addr string) (mc *muxConn, fresh bool, err error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %s", ErrClosed, t.addr)
	}
	if mc := t.muxes[addr]; mc != nil && !mc.isClosed() {
		t.mu.Unlock()
		return mc, false, nil
	}
	dl := t.dialing[addr]
	if dl == nil {
		dl = &sync.Mutex{}
		t.dialing[addr] = dl
	}
	t.mu.Unlock()

	dl.Lock()
	defer dl.Unlock()
	// Someone else may have dialed while we waited for the lock.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %s", ErrClosed, t.addr)
	}
	if mc := t.muxes[addr]; mc != nil && !mc.isClosed() {
		t.mu.Unlock()
		return mc, false, nil
	}
	t.mu.Unlock()

	conn, derr := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if derr != nil {
		return nil, false, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, addr, derr)
	}
	mc = newMuxConn(t, addr, conn)

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, false, fmt.Errorf("%w: %s", ErrClosed, t.addr)
	}
	if t.dialed[addr] {
		t.stats.reconnects.Add(1)
	}
	t.dialed[addr] = true
	t.muxes[addr] = mc
	t.wg.Add(2)
	t.mu.Unlock()
	go mc.writeLoop()
	go mc.readLoop()
	return mc, true, nil
}

// Call implements Transport.
func (t *TCPTransport) Call(addr, msgType string, payload []byte) ([]byte, error) {
	return t.CallOpts(addr, msgType, payload, CallOpts{})
}

// CallOpts implements Transport. A zero opts.Timeout means the transport's
// configured CallTimeout.
func (t *TCPTransport) CallOpts(addr, msgType string, payload []byte, opts CallOpts) ([]byte, error) {
	typ, err := typeByte(msgType)
	if err != nil {
		return nil, err
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = t.cfg.CallTimeout
	}
	t.stats.inFlight.Add(1)
	defer t.stats.inFlight.Add(-1)
	//clashvet:ignore clockcheck RTT of a real socket call is wall-clock by definition
	start := time.Now()
	mc, fresh, err := t.getMux(addr)
	if err != nil {
		return nil, err
	}
	reply, err := mc.call(typ, payload, timeout)
	if errors.Is(err, errMuxClosed) && !fresh {
		// The shared connection died before our frame was written (e.g. the
		// peer's idle reaper closed it); the request never made it out, so
		// one retry on a fresh connection is safe even for non-idempotent
		// messages.
		mc, _, derr := t.getMux(addr)
		if derr != nil {
			return nil, derr
		}
		reply, err = mc.call(typ, payload, timeout)
	}
	if err != nil {
		switch {
		case IsRemote(err),
			errors.Is(err, ErrFrameTooLarge),
			errors.Is(err, ErrDeadline),
			errors.Is(err, ErrShed):
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	if opts.RTT != nil {
		//clashvet:ignore clockcheck RTT of a real socket call is wall-clock by definition
		*opts.RTT = time.Since(start)
	}
	return reply, nil
}
