package core

import (
	"fmt"
	"sort"
	"time"

	"clash/internal/bitkey"
)

// Entry is one row of the Server Work Table (paper Figure 2). A server keeps
// one entry for every key group it manages or has managed and split: active
// entries are leaves of the logical splitting tree; inactive entries record
// the tree linkage (which server holds the right child) needed for
// consolidation.
type Entry struct {
	// Group is the key group (virtual key prefix); its depth is Group.Depth().
	Group bitkey.Group
	// Parent is the server managing the parent key group; NoServer marks a
	// root entry (the paper's ParentID = -1), which consolidation never
	// collapses past. SelfParent marks entries whose parent entry lives on
	// this same server.
	Parent ServerID
	// ParentIsSelf records that the parent entry is on this server (the
	// paper's "self" ParentID).
	ParentIsSelf bool
	// IsRoot marks administrative root entries that must never be merged
	// away.
	IsRoot bool
	// RightChild is the server that accepted the right child group when this
	// entry was split (valid only for inactive entries).
	RightChild ServerID
	// RightChildGroup is the right child group transferred at split time.
	RightChildGroup bitkey.Group
	// Active reports whether this entry is currently a leaf of the logical
	// tree (the paper's boolean Active column).
	Active bool
	// Epoch is the ownership epoch of an active entry: it increases every
	// time responsibility for the group moves between servers, so a delayed
	// duplicate of an old ACCEPT_KEYGROUP can be recognised and dropped
	// instead of regressing the entry (0 = unknown, epoch checks skipped).
	Epoch uint64

	// localLoad is the most recent measured load fraction attributable to
	// this group when it is active on this server.
	localLoad float64
	// childLoad is the most recent load reported by the right child server
	// (for inactive entries).
	childLoad float64
	// childLoadAt is when childLoad was reported.
	childLoadAt time.Time
	// hasChildLoad records whether any child report has arrived yet.
	hasChildLoad bool
}

// Depth returns the entry's depth.
func (e *Entry) Depth() int { return e.Group.Depth() }

// clone returns a copy safe to hand to callers.
func (e *Entry) clone() Entry {
	c := *e
	return c
}

// entryIsActive is the predicate the hot path passes to the trie; as a
// non-capturing function it costs no allocation per lookup.
func entryIsActive(e *Entry) bool { return e.Active }

// Table is the Server Work Table: the set of key-group entries managed by one
// CLASH server, indexed by group prefix in a bit-trie so that the per-packet
// operations (activeEntryFor, longestPrefixMatch) are a single O(depth),
// zero-allocation walk instead of one map probe per candidate depth. Table is
// not safe for concurrent use; Server provides the synchronisation.
type Table struct {
	keyBits int
	entries *bitkey.Trie[*Entry]
}

// NewTable creates an empty table for an N-bit identifier key space.
func NewTable(keyBits int) (*Table, error) {
	if keyBits < 1 || keyBits > bitkey.MaxBits {
		return nil, fmt.Errorf("%w: %d", bitkey.ErrBadLength, keyBits)
	}
	return &Table{keyBits: keyBits, entries: bitkey.NewTrie[*Entry]()}, nil
}

// KeyBits returns the identifier key length N.
func (t *Table) KeyBits() int { return t.keyBits }

// Len returns the number of entries (active and inactive).
func (t *Table) Len() int { return t.entries.Len() }

// get returns the entry for a group, if present.
func (t *Table) get(g bitkey.Group) (*Entry, bool) {
	return t.entries.Get(g.Prefix)
}

// put inserts or replaces an entry.
func (t *Table) put(e *Entry) { t.entries.Put(e.Group.Prefix, e) }

// remove deletes an entry.
func (t *Table) remove(g bitkey.Group) { t.entries.Delete(g.Prefix) }

// forEach visits every entry in prefix order.
func (t *Table) forEach(fn func(*Entry) bool) {
	t.entries.Visit(func(_ bitkey.Key, e *Entry) bool { return fn(e) })
}

// Entries returns a copy of all entries sorted by (depth, prefix) — the shape
// of the paper's Figure 2 table.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, t.entries.Len())
	t.forEach(func(e *Entry) bool {
		out = append(out, e.clone())
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Depth() != out[j].Depth() {
			return out[i].Depth() < out[j].Depth()
		}
		return out[i].Group.Prefix.Compare(out[j].Group.Prefix) < 0
	})
	return out
}

// ActiveGroups returns the groups of all active (leaf) entries, sorted by
// prefix (the trie's visit order is exactly Key.Compare order).
func (t *Table) ActiveGroups() []bitkey.Group {
	var out []bitkey.Group
	t.forEach(func(e *Entry) bool {
		if e.Active {
			out = append(out, e.Group)
		}
		return true
	})
	return out
}

// activeEntryFor returns the active entry whose group contains key k. At most
// one can exist because active groups are prefix-free. One trie walk, zero
// allocations.
//
//clash:hotpath
func (t *Table) activeEntryFor(k bitkey.Key) (*Entry, bool) {
	_, e, ok := t.entries.LongestMatchWhere(k, entryIsActive)
	return e, ok
}

// longestPrefixMatch returns the length of the longest common prefix between
// k and any entry's group prefix (the paper's dmin in the INCORRECT_DEPTH
// reply). One trie walk, zero allocations.
//
//clash:hotpath
func (t *Table) longestPrefixMatch(k bitkey.Key) int {
	return t.entries.MaxCommonPrefix(k)
}

// coveredBy reports whether installing g as a new active entry would violate
// prefix-freeness: an active ancestor already covers g's range, or active
// descendants of g exist on this server. Either way the range is (at least
// partly) served here already, so a stale transfer or replica promotion must
// not resurrect g.
func (t *Table) coveredBy(g bitkey.Group) bool {
	if _, e, ok := t.entries.LongestMatchWhere(g.Prefix, entryIsActive); ok && e.Depth() < g.Depth() {
		return true
	}
	covered := false
	t.entries.VisitSubtree(g.Prefix, func(_ bitkey.Key, e *Entry) bool {
		if e.Active && e.Depth() > g.Depth() {
			covered = true
			return false
		}
		return true
	})
	return covered
}

// validateActivePrefixFree checks the core table invariant: no active group's
// prefix is a prefix of another active group. It returns an error describing
// the first violation found. Tests and the drivers' consistency checks
// call this.
//
// ActiveGroups is sorted so that a prefix immediately precedes its extensions;
// checking adjacent pairs therefore finds any containment in O(n) after the
// O(n) sorted walk (O(n log n) overall including the slice growth), replacing
// the previous O(n²) pairwise scan.
func (t *Table) validateActivePrefixFree() error {
	actives := t.ActiveGroups()
	for i := 1; i < len(actives); i++ {
		if actives[i-1].ContainsGroup(actives[i]) {
			return fmt.Errorf("active group %v contains active group %v", actives[i-1], actives[i])
		}
	}
	return nil
}
