package core

// Wire message names and payloads for the CLASH protocol. The live overlay
// (internal/overlay) serialises these as JSON over its transport; the planned
// discrete-event simulator will only count them. Keeping the definitions here
// makes the protocol surface visible in one place and lets both drivers share
// the same vocabulary when accounting for signaling overhead (paper §6.3).

// MessageType enumerates the CLASH protocol messages.
type MessageType string

// Protocol message types. The first three appear verbatim in the paper; the
// remaining ones are the signaling the paper describes without naming
// (load reports for consolidation, reclaiming a key group, and per-query
// state transfer during splits).
const (
	// MsgAcceptObject carries a data object or query insert from a client
	// (identifier key + estimated depth).
	MsgAcceptObject MessageType = "ACCEPT_OBJECT"
	// MsgAcceptObjectReply is the server's OK / OK-corrected /
	// INCORRECT_DEPTH response.
	MsgAcceptObjectReply MessageType = "ACCEPT_OBJECT_REPLY"
	// MsgAcceptKeyGroup transfers responsibility for a key group from an
	// overloaded parent to its right-child server.
	MsgAcceptKeyGroup MessageType = "ACCEPT_KEYGROUP"
	// MsgLoadReport is the periodic leaf→parent workload report used for
	// bottom-up consolidation.
	MsgLoadReport MessageType = "LOAD_REPORT"
	// MsgReleaseKeyGroup asks a right-child server to hand a key group back
	// to its parent during consolidation.
	MsgReleaseKeyGroup MessageType = "RELEASE_KEYGROUP"
	// MsgStateTransfer carries migrated application state (e.g. stored
	// continuous queries) that accompanies a key-group transfer.
	MsgStateTransfer MessageType = "STATE_TRANSFER"
	// MsgDHTLookup accounts for one underlying DHT routing hop.
	MsgDHTLookup MessageType = "DHT_LOOKUP"
)

// AcceptObjectMsg is the payload of MsgAcceptObject.
type AcceptObjectMsg struct {
	// Key is the full N-bit identifier key rendered as a binary string.
	Key string `json:"key"`
	// Depth is the client's estimated depth.
	Depth int `json:"depth"`
	// Kind distinguishes data packets from query registrations.
	Kind ObjectKind `json:"kind"`
	// Payload is the opaque application object (a serialised query or data
	// record).
	Payload []byte `json:"payload,omitempty"`
}

// ObjectKind distinguishes the two object classes the paper stores in the
// overlay: transient data packets and long-lived continuous queries.
type ObjectKind int

// Object kinds.
const (
	ObjectData ObjectKind = iota + 1
	ObjectQuery
)

// AcceptObjectReplyMsg is the payload of MsgAcceptObjectReply.
type AcceptObjectReplyMsg struct {
	Status       string `json:"status"`
	Group        string `json:"group,omitempty"`
	CorrectDepth int    `json:"correctDepth,omitempty"`
	DMin         int    `json:"dmin,omitempty"`
	// Matches carries the IDs of continuous queries matched by a data packet
	// (filled by the overlay's query engine).
	Matches []string `json:"matches,omitempty"`
}

// AcceptKeyGroupMsg is the payload of MsgAcceptKeyGroup.
type AcceptKeyGroupMsg struct {
	Group  string `json:"group"`
	Parent string `json:"parent"`
	// Queries carries the serialised continuous queries whose keys fall in
	// the transferred group (the application state migrated at split time).
	Queries [][]byte `json:"queries,omitempty"`
}

// LoadReportMsg is the payload of MsgLoadReport.
type LoadReportMsg struct {
	Group string  `json:"group"`
	Load  float64 `json:"load"`
	From  string  `json:"from"`
}

// ReleaseKeyGroupMsg is the payload of MsgReleaseKeyGroup.
type ReleaseKeyGroupMsg struct {
	Group string `json:"group"`
	// Parent identifies the reclaiming server so the child can verify the
	// request.
	Parent string `json:"parent"`
}

// ReleaseKeyGroupReplyMsg returns the child's state for the reclaimed group.
type ReleaseKeyGroupReplyMsg struct {
	Group   string   `json:"group"`
	Queries [][]byte `json:"queries,omitempty"`
	OK      bool     `json:"ok"`
	Error   string   `json:"error,omitempty"`
	// Gone reports that the server has no entry for the group at all — it
	// released it earlier (e.g. the reply to a previous RELEASE_KEYGROUP was
	// lost in transit) or re-homed it. The reclaiming parent may complete
	// the merge without state.
	Gone bool `json:"gone,omitempty"`
}
