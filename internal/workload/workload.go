// Package workload generates the synthetic streaming workloads used in the
// CLASH paper's evaluation (§6.1): identifier keys are N=24 bits wide, split
// into an 8-bit "base" portion whose distribution carries the skew (Figure 3
// shows three skew levels A, B, C) and a 16-bit remainder drawn uniformly.
// Data sources emit packets at a constant rate and change their key every Ld
// packets (Ld exponentially distributed, mean 1000); query clients register
// long-lived continuous queries with exponentially distributed lifetimes
// (mean 30 minutes) over keys drawn with the same skew.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"clash/internal/bitkey"
)

// Kind identifies one of the paper's three workloads.
type Kind int

// The paper's workloads in increasing order of skew.
const (
	WorkloadA Kind = iota + 1
	WorkloadB
	WorkloadC
)

// String names the workload ("A", "B", "C").
func (k Kind) String() string {
	switch k {
	case WorkloadA:
		return "A"
	case WorkloadB:
		return "B"
	case WorkloadC:
		return "C"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrBadSpec reports an invalid workload specification.
var ErrBadSpec = errors.New("workload: invalid spec")

// Paper defaults (§6.1).
const (
	// DefaultKeyBits is the identifier key length N.
	DefaultKeyBits = 24
	// DefaultBaseBits is the skewed base portion X.
	DefaultBaseBits = 8
	// DefaultMeanStreamLen is the mean virtual stream length Ld in packets.
	DefaultMeanStreamLen = 1000
	// DefaultMeanQueryLifetime is the mean continuous-query lifetime Lq.
	DefaultMeanQueryLifetime = 30 * time.Minute
)

// Spec fully describes one workload phase.
type Spec struct {
	// Kind selects the base-bit skew profile.
	Kind Kind
	// KeyBits is the identifier key length N.
	KeyBits int
	// BaseBits is the number of leading key bits that carry the skew (X).
	BaseBits int
	// SourceRate is the per-source data rate in packets/second (1 for
	// workload A, 2 for B and C in the paper).
	SourceRate float64
	// MeanStreamLen is the mean virtual stream length Ld in packets.
	MeanStreamLen float64
	// MeanQueryLifetime is the mean continuous-query lifetime.
	MeanQueryLifetime time.Duration
}

// SpecFor returns the paper's parameters for a workload kind.
func SpecFor(kind Kind) Spec {
	rate := 1.0
	if kind != WorkloadA {
		rate = 2.0
	}
	return Spec{
		Kind:              kind,
		KeyBits:           DefaultKeyBits,
		BaseBits:          DefaultBaseBits,
		SourceRate:        rate,
		MeanStreamLen:     DefaultMeanStreamLen,
		MeanQueryLifetime: DefaultMeanQueryLifetime,
	}
}

// Validate checks a spec for consistency.
func (s Spec) Validate() error {
	if s.Kind < WorkloadA || s.Kind > WorkloadC {
		return fmt.Errorf("%w: kind %d", ErrBadSpec, s.Kind)
	}
	if s.KeyBits < 2 || s.KeyBits > bitkey.MaxBits {
		return fmt.Errorf("%w: key bits %d", ErrBadSpec, s.KeyBits)
	}
	if s.BaseBits < 1 || s.BaseBits >= s.KeyBits || s.BaseBits > 20 {
		return fmt.Errorf("%w: base bits %d", ErrBadSpec, s.BaseBits)
	}
	if s.SourceRate <= 0 || s.MeanStreamLen <= 0 || s.MeanQueryLifetime <= 0 {
		return fmt.Errorf("%w: non-positive rates", ErrBadSpec)
	}
	return nil
}

// baseWeights returns the unnormalised probability weight of each base value
// for a workload kind. The shapes follow Figure 3: A is almost uniform, B has
// two moderate bumps, C concentrates most of the mass in a couple of narrow
// peaks.
func baseWeights(kind Kind, nBase int) []float64 {
	w := make([]float64, nBase)
	gauss := func(b, mu, sigma, amp float64) float64 {
		d := (b - mu) / sigma
		return amp * math.Exp(-0.5*d*d)
	}
	for b := range w {
		x := float64(b)
		switch kind {
		case WorkloadA:
			// Almost uniform with a gentle ripple.
			w[b] = 1 + 0.05*math.Sin(2*math.Pi*x/float64(nBase))
		case WorkloadB:
			// Moderate skew: a broad hotspot plus a secondary bump on a
			// uniform floor.
			w[b] = 0.35 + gauss(x, 0.25*float64(nBase), 0.05*float64(nBase), 3.0) +
				gauss(x, 0.65*float64(nBase), 0.08*float64(nBase), 1.8)
		case WorkloadC:
			// Heavy skew: nearly all mass in two narrow peaks.
			w[b] = 0.08 + gauss(x, 0.38*float64(nBase), 0.02*float64(nBase), 14.0) +
				gauss(x, 0.80*float64(nBase), 0.015*float64(nBase), 7.0)
		default:
			w[b] = 1
		}
	}
	return w
}

// KeyGenerator draws identifier keys according to a workload spec.
// It is not safe for concurrent use; each goroutine should own one generator
// (or the caller must serialise access).
type KeyGenerator struct {
	spec    Spec
	rng     *rand.Rand
	cum     []float64 // cumulative base-value distribution
	weights []float64 // normalised per-base probabilities
}

// NewKeyGenerator builds a generator for the spec using the given PRNG.
func NewKeyGenerator(spec Spec, rng *rand.Rand) (*KeyGenerator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadSpec)
	}
	nBase := 1 << uint(spec.BaseBits)
	weights := baseWeights(spec.Kind, nBase)
	var total float64
	for _, w := range weights {
		total += w
	}
	cum := make([]float64, nBase)
	probs := make([]float64, nBase)
	acc := 0.0
	for i, w := range weights {
		p := w / total
		probs[i] = p
		acc += p
		cum[i] = acc
	}
	cum[nBase-1] = 1.0
	return &KeyGenerator{spec: spec, rng: rng, cum: cum, weights: probs}, nil
}

// Spec returns the generator's workload spec.
func (g *KeyGenerator) Spec() Spec { return g.spec }

// Clone returns an independent generator for the same spec drawing from its
// own PRNG stream seeded with seed. The clone shares the (read-only)
// precomputed distribution tables with its parent, so cloning is cheap; a
// concurrent load generator gives every connection its own clone instead of
// serialising all sources on one *rand.Rand.
func (g *KeyGenerator) Clone(seed int64) *KeyGenerator {
	return &KeyGenerator{
		spec:    g.spec,
		rng:     rand.New(rand.NewSource(seed)),
		cum:     g.cum,
		weights: g.weights,
	}
}

// BaseDistribution returns the probability of each base value (the normalised
// Figure 3 curve).
func (g *KeyGenerator) BaseDistribution() []float64 {
	out := make([]float64, len(g.weights))
	copy(out, g.weights)
	return out
}

// NextBase samples one base value.
func (g *KeyGenerator) NextBase() int {
	u := g.rng.Float64()
	// Binary search over the cumulative distribution.
	lo, hi := 0, len(g.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Next samples a full N-bit identifier key: the skewed base bits followed by
// uniform remainder bits.
func (g *KeyGenerator) Next() bitkey.Key {
	base := uint64(g.NextBase())
	remBits := g.spec.KeyBits - g.spec.BaseBits
	rem := g.rng.Uint64() & (^uint64(0) >> uint(64-remBits))
	value := base<<uint(remBits) | rem
	return bitkey.Key{Value: value, Bits: g.spec.KeyBits}
}

// NextStreamLength samples a virtual stream length Ld (packets until the next
// key change), exponentially distributed with the spec's mean and at least 1.
func (g *KeyGenerator) NextStreamLength() int {
	l := int(math.Ceil(g.rng.ExpFloat64() * g.spec.MeanStreamLen))
	if l < 1 {
		l = 1
	}
	return l
}

// NextQueryLifetime samples an exponentially distributed query lifetime with
// the spec's mean.
func (g *KeyGenerator) NextQueryLifetime() time.Duration {
	return time.Duration(g.rng.ExpFloat64() * float64(g.spec.MeanQueryLifetime))
}

// Phase is one segment of a workload schedule.
type Phase struct {
	Kind  Kind
	Start time.Duration
	End   time.Duration
}

// Schedule is a sequence of workload phases (the paper runs A, B and C for
// two hours each).
type Schedule struct {
	Phases []Phase
}

// PaperSchedule returns the paper's six-hour schedule: workload A for the
// first two hours, then B, then C, with the given phase length.
func PaperSchedule(phaseLen time.Duration) Schedule {
	return Schedule{Phases: []Phase{
		{Kind: WorkloadA, Start: 0, End: phaseLen},
		{Kind: WorkloadB, Start: phaseLen, End: 2 * phaseLen},
		{Kind: WorkloadC, Start: 2 * phaseLen, End: 3 * phaseLen},
	}}
}

// Duration returns the end time of the last phase.
func (s Schedule) Duration() time.Duration {
	if len(s.Phases) == 0 {
		return 0
	}
	return s.Phases[len(s.Phases)-1].End
}

// KindAt returns the workload kind active at time t (the last phase's kind if
// t is beyond the end).
func (s Schedule) KindAt(t time.Duration) Kind {
	for _, p := range s.Phases {
		if t >= p.Start && t < p.End {
			return p.Kind
		}
	}
	if len(s.Phases) == 0 {
		return WorkloadA
	}
	return s.Phases[len(s.Phases)-1].Kind
}

// PhaseAt returns the phase active at time t.
func (s Schedule) PhaseAt(t time.Duration) (Phase, bool) {
	for _, p := range s.Phases {
		if t >= p.Start && t < p.End {
			return p, true
		}
	}
	return Phase{}, false
}
