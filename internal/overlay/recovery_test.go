package overlay

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"clash/internal/bitkey"
	"clash/internal/core"
	"clash/internal/cq"
)

// TestOverlayCrashRecoveryTCP is the fault-tolerance acceptance scenario over
// real sockets: a 4-node overlay on loopback TCP serves a workload with
// continuous queries registered in every root region, one group-holding node
// is killed mid-workload, and the survivors must promote their replicas of
// the dead node's key groups — after which a matching packet into each lost
// region still reports (and push-delivers) its query. Time is stepped
// virtually (explicit now passed to LoadCheck), so the test makes
// deterministic progress instead of racing wall-clock timers.
func TestOverlayCrashRecoveryTCP(t *testing.T) {
	cfg := testConfig()
	cfg.ReplicationFactor = 2

	nodes := make([]*Node, 4)
	for i := range nodes {
		tr, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenTCP: %v", err)
		}
		node, err := NewNode(tr, cfg)
		if err != nil {
			t.Fatalf("NewNode %d: %v", i, err)
		}
		defer node.Close()
		nodes[i] = node
	}
	if err := nodes[0].BootstrapRoots(); err != nil {
		t.Fatal(err)
	}
	for _, node := range nodes[1:] {
		if err := node.Join(nodes[0].Addr()); err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	tick := func(ns []*Node, rounds int) {
		for r := 0; r < rounds; r++ {
			for _, n := range ns {
				n.Tick()
				_ = n.FixAllFingers()
			}
		}
	}
	now := time.Now()
	check := func(ns []*Node) {
		now = now.Add(cfg.LoadCheckInterval)
		for _, n := range ns {
			n.LoadCheck(now)
		}
	}
	tick(nodes, 8)
	check(nodes)
	check(nodes)

	cliTr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(cliTr, cfg.KeyBits, cfg.Space, nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// One continuous query per root region, so whichever node we kill holds
	// at least one of them.
	regions := []string{"00", "01", "10", "11"}
	for i, rg := range regions {
		q := cq.Query{
			ID:         fmt.Sprintf("q-%d", i),
			Region:     bitkey.MustParseGroup(rg),
			Predicates: []cq.Predicate{{Attr: "speed", Op: cq.OpGt, Value: 50}},
		}
		if _, err := client.Register(q); err != nil {
			t.Fatalf("Register %s: %v", q.ID, err)
		}
	}
	// A couple of load checks replicate the registered state to successors.
	check(nodes)
	check(nodes)

	// Kill a non-bootstrap node that holds at least one group.
	var victim *Node
	for _, n := range nodes[1:] {
		if len(n.Server().ActiveGroups()) > 0 {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Skip("no non-bootstrap node holds a group; ring degenerate for this key set")
	}
	lost := victim.Server().ActiveGroups()
	lostQueries := victim.Engine().All()
	if err := victim.Close(); err != nil {
		t.Fatalf("victim close: %v", err)
	}

	survivors := nodesWithout(nodes, victim)
	// Ring maintenance detects the dead predecessor and promotes the
	// replicas; bounded rounds, virtual-stepped load checks.
	for i := 0; i < 20; i++ {
		tick(survivors, 2)
		check(survivors)
		if allRecovered(survivors, lost) {
			break
		}
	}
	for _, g := range lost {
		if holder := holderOf(survivors, g); holder == "" {
			t.Fatalf("group %v not recovered by any survivor", g)
		}
	}
	recovered := 0
	for _, n := range survivors {
		recovered += n.Server().Counters().GroupsRecovered
	}
	if recovered == 0 {
		t.Fatal("no survivor promoted a replica (GroupsRecovered == 0)")
	}

	// The dead node's queries must now be served by the survivors: a
	// matching packet into each lost query's region reports the query and
	// push-delivers the match.
	for _, q := range lostQueries {
		key, err := q.Region.VirtualKey(cfg.KeyBits)
		if err != nil {
			t.Fatal(err)
		}
		var res *PublishResult
		for attempt := 0; attempt < 5; attempt++ {
			res, err = client.Publish(key, map[string]float64{"speed": 80}, nil)
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("Publish into %v after crash: %v", q.Region, err)
		}
		found := false
		for _, id := range res.Matches {
			if id == q.ID {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("query %s did not match after crash recovery (matches %v)", q.ID, res.Matches)
		}
	}
	if len(lostQueries) > 0 {
		select {
		case <-client.Matches():
		case <-time.After(5 * time.Second):
			t.Error("no match notification push-delivered after recovery")
		}
	}
}

func allRecovered(nodes []*Node, groups []bitkey.Group) bool {
	for _, g := range groups {
		if holderOf(nodes, g) == "" {
			return false
		}
	}
	return true
}

// holderOf returns the address of the node with g active ("" when none).
func holderOf(nodes []*Node, g bitkey.Group) string {
	for _, n := range nodes {
		for _, ag := range n.Server().ActiveGroups() {
			if ag.Equal(g) {
				return n.Addr()
			}
		}
	}
	return ""
}

// lossyTransport wraps a Transport and simulates reply loss: for message
// types armed with DropReply, the call is delivered to the remote (the
// handler runs, state changes land) but the caller sees a transport failure.
type lossyTransport struct {
	Transport
	mu          sync.Mutex
	dropReplies map[string]int
}

func (f *lossyTransport) DropReply(msgType string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropReplies == nil {
		f.dropReplies = make(map[string]int)
	}
	f.dropReplies[msgType] += n
}

func (f *lossyTransport) Call(addr, msgType string, payload []byte) ([]byte, error) {
	return f.CallOpts(addr, msgType, payload, CallOpts{})
}

func (f *lossyTransport) CallOpts(addr, msgType string, payload []byte, opts CallOpts) ([]byte, error) {
	f.mu.Lock()
	drop := f.dropReplies[msgType] > 0
	if drop {
		f.dropReplies[msgType]--
	}
	f.mu.Unlock()
	reply, err := f.Transport.CallOpts(addr, msgType, payload, opts)
	if drop && err == nil {
		return nil, fmt.Errorf("%w: reply lost (test)", ErrUnreachable)
	}
	return reply, err
}

// TestReconcileReplyLostIdempotent is the regression test for the
// release-then-send window in reconcileOwnership: the ACCEPT_KEYGROUP request
// lands on the new owner but the reply is lost, so the sender takes the group
// back and the range is briefly active on two nodes. The next reconciliation
// pass must collapse the duplicate through the epoch-idempotent accept — one
// holder at the end, the query state intact, both tables prefix-free.
func TestReconcileReplyLostIdempotent(t *testing.T) {
	netw := NewMemNetwork()
	cfg := testConfig()
	cfg.BootstrapDepth = 3 // 8 roots: some are guaranteed to map to node-1

	flaky := &lossyTransport{Transport: netw.Endpoint("node-0")}
	n0, err := NewNode(flaky, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := NewNode(netw.Endpoint("node-1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []*Node{n0, n1}
	if err := n0.BootstrapRoots(); err != nil {
		t.Fatal(err)
	}
	if err := n1.Join(n0.Addr()); err != nil {
		t.Fatal(err)
	}
	converge(nodes, 6)

	// Find the root groups that must move from node-0 to node-1 and park a
	// query in the first of them.
	var moving bitkey.Group
	movingCount := 0
	for _, g := range n0.Server().ActiveGroups() {
		vk, err := g.VirtualKey(cfg.KeyBits)
		if err != nil {
			t.Fatal(err)
		}
		owner, err := n0.mapGroup(vk)
		if err != nil {
			t.Fatal(err)
		}
		if owner == core.ServerID(n1.Addr()) {
			if moving.Depth() == 0 {
				moving = g
			}
			movingCount++
		}
	}
	if moving.Depth() == 0 {
		t.Fatal("no root group maps to node-1; test setup degenerate")
	}
	q := cq.Query{ID: "q-moving", Region: moving}
	if err := n0.Engine().Register(q); err != nil {
		t.Fatal(err)
	}

	// First pass: exactly the replies of this pass's ACCEPT_KEYGROUP
	// transfers are lost after delivery. The groups go active on node-1 AND
	// are taken back on node-0 — the dual-active window under test.
	flaky.DropReply(TypeAcceptKeyGroup, movingCount)
	now := time.Now()
	n0.LoadCheck(now)
	if holderOf([]*Node{n1}, moving) == "" {
		t.Fatal("request did not land on node-1 (test harness broken)")
	}
	if holderOf([]*Node{n0}, moving) == "" {
		t.Fatal("node-0 did not take the group back on reply loss")
	}

	// Second pass: the retry (with a fresh epoch) must collapse the
	// duplicate via the idempotent accept.
	now = now.Add(cfg.LoadCheckInterval)
	n0.LoadCheck(now)
	if holderOf([]*Node{n0}, moving) != "" {
		t.Fatalf("group %v still active on node-0 after retry", moving)
	}
	if holderOf([]*Node{n1}, moving) == "" {
		t.Fatalf("group %v not active on node-1 after retry", moving)
	}
	for _, n := range nodes {
		if err := n.Server().Validate(); err != nil {
			t.Errorf("%s table invariant: %v", n.Addr(), err)
		}
	}
	// The query followed the group (installed on node-1 exactly once).
	if got := len(n1.Engine().QueriesInGroup(moving)); got != 1 {
		t.Errorf("node-1 stores %d queries for %v, want 1", got, moving)
	}
	if got := len(n0.Engine().QueriesInGroup(moving)); got != 0 {
		t.Errorf("node-0 still stores %d queries for %v, want 0", got, moving)
	}
}

// TestPendingTransferDedupAndDrop checks the parked-transfer bookkeeping on a
// two-node ring whose transfer target stays dead: repeated failed deliveries
// of the same group refresh one parked entry instead of stacking duplicates,
// and after the retry budget is exhausted the transfer is dropped (counted)
// and the group taken back locally — the key range and its query state must
// not vanish.
func TestPendingTransferDedupAndDrop(t *testing.T) {
	netw := NewMemNetwork()
	cfg := testConfig()
	n0, err := NewNode(netw.Endpoint("node-0"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := NewNode(netw.Endpoint("node-1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Join(n0.Addr()); err != nil {
		t.Fatal(err)
	}
	converge([]*Node{n0, n1}, 6)
	// The target dies before the transfer is delivered; the ring still
	// lists it (no maintenance runs), so every retry re-resolves to it.
	netw.SetDown(n1.Addr(), true)

	g := bitkey.MustParseGroup("0101")
	tr := core.Transfer{Group: g, To: core.ServerID(n1.Addr()), Parent: core.ServerID(n0.Addr())}
	q := cq.Query{ID: "q-x", Region: g}
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	states := []queryState{{Query: data}}

	// Two independent delivery attempts for the same group park ONE entry.
	n0.deliverTransfer(pendingTransfer{transfer: tr, queries: states, epoch: 1})
	n0.deliverTransfer(pendingTransfer{transfer: tr, queries: states, epoch: 1})
	n0.mu.Lock()
	parked := len(n0.pending)
	n0.mu.Unlock()
	if parked != 1 {
		t.Fatalf("parked entries = %d, want 1 (dedup by group)", parked)
	}

	// Retries burn the budget; the entry must then be abandoned — counted,
	// and the group taken back locally so the range stays served.
	for i := 0; i < transferRetryBudget+2; i++ {
		n0.retryPending()
	}
	n0.mu.Lock()
	parked = len(n0.pending)
	n0.mu.Unlock()
	if parked != 0 {
		t.Errorf("parked entries = %d after budget, want 0", parked)
	}
	if n0.TransferDrops() != 1 {
		t.Errorf("TransferDrops = %d, want 1", n0.TransferDrops())
	}
	if holderOf([]*Node{n0}, g) == "" {
		t.Error("abandoned transfer's group not taken back: range unowned")
	}
	if got := len(n0.Engine().QueriesInGroup(g)); got != 1 {
		t.Errorf("taken-back group stores %d queries, want 1", got)
	}
	if st := n0.Status(); st.TransferDrops != 1 {
		t.Errorf("status drops = %d, want 1", st.TransferDrops)
	}
}

// TestPendingTransferRehomesToSelf checks retry re-resolution: when the ring
// re-maps an undeliverable transfer's range back to the sender (here: the
// sender is the only node left), the retry keeps the group locally instead of
// dialing the dead split-time target forever.
func TestPendingTransferRehomesToSelf(t *testing.T) {
	netw := NewMemNetwork()
	node, err := NewNode(netw.Endpoint("node-0"), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := bitkey.MustParseGroup("0110")
	tr := core.Transfer{Group: g, To: "nowhere", Parent: core.ServerID(node.Addr())}
	node.deliverTransfer(pendingTransfer{transfer: tr, epoch: 1})
	node.retryPending() // re-resolves owner == self → take back
	if holderOf([]*Node{node}, g) == "" {
		t.Error("re-homed transfer's group not active locally")
	}
	if node.TransferDrops() != 0 {
		t.Errorf("TransferDrops = %d, want 0 (re-home is not a drop)", node.TransferDrops())
	}
	node.mu.Lock()
	parked := len(node.pending)
	node.mu.Unlock()
	if parked != 0 {
		t.Errorf("parked entries = %d, want 0", parked)
	}
}

// TestRecoverOwnStateAfterRestart checks the pull path: a node crashes, its
// replicas survive on a successor, and a fresh node restarted on the same
// address recovers its pre-crash groups and queries by querying the
// successors — even though the ring never had time to detect the failure.
func TestRecoverOwnStateAfterRestart(t *testing.T) {
	netw := NewMemNetwork()
	cfg := testConfig()
	nodes := buildOverlay(t, netw, 3, cfg)

	var victim *Node
	for _, n := range nodes[1:] {
		if len(n.Server().ActiveGroups()) > 0 {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Skip("no non-bootstrap holder")
	}
	g := victim.Server().ActiveGroups()[0]
	q := cq.Query{ID: "q-own", Region: g}
	if err := victim.Engine().Register(q); err != nil {
		t.Fatal(err)
	}
	// Replicate the state, then crash the victim before anyone notices.
	checkAll(nodes)
	lost := victim.Server().ActiveGroups()
	netw.SetDown(victim.Addr(), true)

	// Restart: a fresh, empty node on the same address re-joins and must
	// pull its old state back from the successors' replicas.
	netw.SetDown(victim.Addr(), false)
	reborn, err := NewNode(netw.Endpoint(victim.Addr()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := reborn.Rejoin(nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	for _, g := range lost {
		if holderOf([]*Node{reborn}, g) == "" {
			t.Errorf("group %v not recovered on restart", g)
		}
	}
	if got := len(reborn.Engine().QueriesInGroup(g)); got != 1 {
		t.Errorf("recovered node stores %d queries in %v, want 1", got, g)
	}
	if err := reborn.Server().Validate(); err != nil {
		t.Errorf("recovered table invalid: %v", err)
	}
}

// TestLooseQueriesSurviveCrash checks that query state parked outside the
// engine — here: extracted into an undeliverable transfer — rides the replica
// pushes as loose records and is re-placed by the survivors after the parking
// node crashes, instead of dying with it.
func TestLooseQueriesSurviveCrash(t *testing.T) {
	netw := NewMemNetwork()
	cfg := testConfig()
	nodes := buildOverlay(t, netw, 3, cfg)

	var victim *Node
	for _, n := range nodes[1:] {
		if len(n.Server().ActiveGroups()) > 0 {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Skip("no non-bootstrap holder")
	}
	// Park a query in an undeliverable transfer on the victim: the query is
	// out of the engine (invisible to the per-group snapshot) and lives only
	// in the pending map.
	g := victim.Server().ActiveGroups()[0]
	q := cq.Query{ID: "q-loose", Region: g}
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	victim.mu.Lock()
	victim.pending["parked"] = pendingTransfer{
		transfer: core.Transfer{Group: bitkey.MustParseGroup("010101"), To: "unreachable-peer"},
		queries:  []queryState{{Query: data}},
		epoch:    1,
	}
	victim.mu.Unlock()
	victim.replicate() // loose records reach the successors
	netw.SetDown(victim.Addr(), true)

	survivors := nodesWithout(nodes, victim)
	now := time.Now()
	found := func() bool {
		for _, n := range survivors {
			for _, sq := range n.Engine().All() {
				if sq.ID == "q-loose" {
					return true
				}
			}
		}
		return false
	}
	for i := 0; i < 30 && !found(); i++ {
		converge(survivors, 2)
		now = now.Add(cfg.LoadCheckInterval)
		for _, n := range survivors {
			n.LoadCheck(now)
		}
	}
	if !found() {
		t.Fatal("loose (parked) query did not survive the parking node's crash")
	}
}
