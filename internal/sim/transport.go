package sim

import (
	"fmt"
	"time"

	"clash/internal/metrics"
	"clash/internal/overlay"
	"clash/internal/sim/link"
)

// Net is the simulated transport fabric: endpoints reach each other by
// address, every message's one-way delay, jitter and loss are drawn from a
// link model, and endpoints can be marked down (a crash) or assigned to
// partitions (only same-partition endpoints communicate). The fabric records
// per-type call counts plus the sampled one-way delivery latency of every
// message type — which is how a scenario reads CQ match delivery latency in
// virtual milliseconds.
//
// Timing model: an exchange executes at the virtual instant it is issued (the
// handler runs inline, like MemNetwork); the sampled latency feeds the
// delivery-latency statistics and the loss/partition verdicts fail calls for
// real, but a call does not suspend its caller in virtual time. The simulator
// works at the paper's measurement-interval granularity — load rates,
// report aging and merge pacing all run on the virtual clock through the
// scheduled maintenance grid — rather than packet-serialised time, which is
// what lets a single-threaded, bit-deterministic engine drive thousands of
// nodes whose exchanges logically overlap. Nothing here reads the wall clock.
type Net struct {
	eng   *Engine
	model link.Model

	eps   map[string]*Endpoint
	down  map[string]bool
	part  map[string]int // partition id; absent = 0
	calls map[string]int

	latency map[string]*metrics.LatencyHist // msgType → one-way virtual µs
}

// NewNet creates a fabric on the engine with the given link model.
func NewNet(eng *Engine, model link.Model) (*Net, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Net{
		eng:     eng,
		model:   model,
		eps:     make(map[string]*Endpoint),
		down:    make(map[string]bool),
		part:    make(map[string]int),
		calls:   make(map[string]int),
		latency: make(map[string]*metrics.LatencyHist),
	}, nil
}

// Endpoint creates (or returns the existing) endpoint with the given address.
func (n *Net) Endpoint(addr string) *Endpoint {
	if ep, ok := n.eps[addr]; ok {
		return ep
	}
	ep := &Endpoint{net: n, addr: addr}
	n.eps[addr] = ep
	return ep
}

// SetModel swaps the fabric's link model. The scenario harness boots the
// overlay on a lossless copy of the scenario link and engages the real model
// when the measurement run starts, so runs begin from a converged overlay.
func (n *Net) SetModel(m link.Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	n.model = m
	return nil
}

// SetDown marks an address crashed (true) or back up (false). Calls from and
// to a down endpoint fail with overlay.ErrUnreachable.
func (n *Net) SetDown(addr string, down bool) { n.down[addr] = down }

// SetPartition assigns an address to a network partition; only endpoints in
// the same partition can exchange messages. All endpoints start in partition
// 0.
func (n *Net) SetPartition(addr string, partition int) { n.part[addr] = partition }

// Heal returns every endpoint to partition 0.
func (n *Net) Heal() { n.part = make(map[string]int) }

// Calls returns how many requests of the given type were attempted.
func (n *Net) Calls(msgType string) int { return n.calls[msgType] }

// Latency returns the one-way delivery latency histogram (in microseconds of
// virtual time) recorded for a message type, or nil if none was delivered.
func (n *Net) Latency(msgType string) *metrics.LatencyHist { return n.latency[msgType] }

// recordLatency notes one delivered message's sampled one-way latency.
func (n *Net) recordLatency(msgType string, d time.Duration) {
	h, ok := n.latency[msgType]
	if !ok {
		h = metrics.NewLatencyHist()
		n.latency[msgType] = h
	}
	h.Record(d.Microseconds())
}

// blocked reports whether a message from a to b cannot cross the fabric right
// now (either side down or the pair split by a partition).
func (n *Net) blocked(a, b string) bool {
	return n.down[a] || n.down[b] || n.part[a] != n.part[b]
}

// Endpoint is one addressable endpoint of a Net, implementing
// overlay.Transport for unmodified overlay nodes and clients.
type Endpoint struct {
	net     *Net
	addr    string
	handler overlay.Handler
	closed  bool
	stats   overlay.TransportStats
}

var _ overlay.Transport = (*Endpoint)(nil)

// Addr implements overlay.Transport.
func (e *Endpoint) Addr() string { return e.addr }

// SetHandler implements overlay.Transport.
func (e *Endpoint) SetHandler(h overlay.Handler) { e.handler = h }

// Stats implements overlay.Transport.
func (e *Endpoint) Stats() overlay.TransportStats { return e.stats }

// Close implements overlay.Transport.
func (e *Endpoint) Close() error {
	e.closed = true
	return nil
}

// Call implements overlay.Transport. Both directions draw their fate from
// the link model (in a fixed order, so same-seed runs are bit-identical): a
// lost request or reply fails the call with overlay.ErrUnreachable, a
// delivered request's sampled latency is recorded in the fabric's per-type
// histogram, and the handler runs inline. Handler errors come back as
// *overlay.RemoteError exactly as on the framed transports.
func (e *Endpoint) Call(addr, msgType string, payload []byte) ([]byte, error) {
	n := e.net
	if e.closed {
		return nil, fmt.Errorf("%w: %s", overlay.ErrClosed, e.addr)
	}
	n.calls[msgType]++
	target, ok := n.eps[addr]
	if !ok || target.closed || n.blocked(e.addr, addr) {
		return nil, fmt.Errorf("%w: %s", overlay.ErrUnreachable, addr)
	}

	size := overlay.FrameOverhead + len(payload)
	e.stats.FramesOut++
	e.stats.BytesOut += uint64(size)
	reqLat, reqDrop := n.model.Sample(n.eng.Rand())
	if reqDrop {
		return nil, fmt.Errorf("%w: %s: request lost", overlay.ErrUnreachable, addr)
	}
	n.recordLatency(msgType, reqLat)
	target.stats.FramesIn++
	target.stats.BytesIn += uint64(size)

	// The handler may retain the payload (query state, batch bodies) while
	// the caller recycles its buffer on return — copy, exactly as a socket
	// read would have.
	req := append([]byte(nil), payload...)
	var (
		reply []byte
		herr  error
	)
	if target.handler == nil {
		herr = &overlay.RemoteError{Msg: "no handler installed"}
	} else if reply, herr = target.handler(msgType, req); herr != nil {
		herr = &overlay.RemoteError{Msg: herr.Error()}
	}

	repSize := overlay.FrameOverhead + len(reply)
	target.stats.FramesOut++
	target.stats.BytesOut += uint64(repSize)
	if _, repDrop := n.model.Sample(n.eng.Rand()); repDrop {
		return nil, fmt.Errorf("%w: %s: reply lost", overlay.ErrUnreachable, addr)
	}
	e.stats.FramesIn++
	e.stats.BytesIn += uint64(repSize)
	if herr != nil {
		return nil, herr
	}
	return append([]byte(nil), reply...), nil
}
