package metrics

import "math/bits"

// LatencyHist is an HDR-style bucketed histogram for non-negative integer
// samples (microseconds in clashload): power-of-two octaves with
// histSubBuckets linear sub-buckets each, giving a bounded relative error of
// 1/histSubBuckets (~6%) across the full int64 range. Record is a fixed
// array increment — no per-sample allocation and no sorting, so a load
// driver can record millions of call latencies and still report exact-shape
// p50/p95/p99.
//
// LatencyHist is not synchronised: give each producer its own histogram and
// Merge them at the end (the clashload worker pattern).
type LatencyHist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    float64
	min    int64
	max    int64
}

const (
	// histSubBits sets the linear sub-bucket resolution per octave.
	histSubBits    = 4
	histSubBuckets = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range: 64 octaves of
	// histSubBuckets plus the initial linear range [0, histSubBuckets).
	histBuckets = (64 + 1) * histSubBuckets
)

// NewLatencyHist creates an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{min: -1}
}

// bucketIndex maps a sample to its bucket: values below histSubBuckets map
// linearly; above, the top histSubBits bits after the leading one select the
// sub-bucket within the value's octave.
func bucketIndex(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - histSubBits - 1
	return ((e + 1) << histSubBits) + int(uint64(v)>>uint(e)) - histSubBuckets
}

// bucketMid returns a representative value (midpoint) for a bucket index,
// the inverse of bucketIndex up to the bucket's width.
func bucketMid(i int) float64 {
	if i < histSubBuckets {
		return float64(i)
	}
	e := i>>histSubBits - 1
	low := (uint64(histSubBuckets) + uint64(i&(histSubBuckets-1))) << uint(e)
	width := uint64(1) << uint(e)
	return float64(low) + float64(width-1)/2
}

// Record adds one sample. Negative samples clamp to zero.
func (h *LatencyHist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += float64(v)
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() uint64 { return h.count }

// Merge folds other into h.
func (h *LatencyHist) Merge(other *LatencyHist) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if h.min < 0 || (other.min >= 0 && other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Quantile returns the value at quantile q in [0, 1] (bucket midpoint;
// relative error bounded by the sub-bucket width). Zero when empty.
func (h *LatencyHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank on the cumulative bucket counts.
	rank := uint64(q * float64(h.count))
	if rank > 0 {
		rank--
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if c > 0 && seen > rank {
			return bucketMid(i)
		}
	}
	return float64(h.max)
}

// Summary renders the histogram as the package's standard Summary statistics.
// Min and Max are exact; the percentiles carry the bucket resolution error.
func (h *LatencyHist) Summary() Summary {
	if h.count == 0 {
		return Summary{}
	}
	return Summary{
		Count: int(h.count),
		Min:   float64(h.min),
		Max:   float64(h.max),
		Mean:  h.sum / float64(h.count),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
