package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a Prometheus-text-format metric registry: named families of
// counters, gauges and histograms, each optionally split by a fixed label
// set. Hot-path updates (Counter.Inc, Histogram.Observe) are single atomic
// operations on pre-resolved handles — no map lookups, no allocation — so the
// data path can record per-packet without a lock. Rendering walks the
// families sorted by name, producing deterministic output a scraper can diff.
//
// Scrape-time state (the node's group table, the suspicion snapshot, the
// transport counters) is absorbed through OnCollect callbacks that run once
// per render and write the current values into gauges/counters, so the hot
// paths that maintain that state stay untouched.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Metric family types (the TYPE line vocabulary this registry emits).
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric family: a type, a help line, a fixed label-key
// list and the children keyed by their label values.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing, no +Inf

	mu       sync.Mutex
	children map[string]*child
	order    []string
}

// child is the storage cell for one label-value combination. The same cell
// backs all three metric types: val holds a counter count or gauge bits, sum
// and bucketCounts only serve histograms.
type child struct {
	labelVals    []string
	val          atomic.Uint64
	sumBits      atomic.Uint64
	count        atomic.Uint64
	bucketCounts []atomic.Uint64 // len(buckets)+1, last is +Inf
}

// Counter is a monotonically increasing value.
type Counter struct{ c *child }

// Inc adds one.
func (c Counter) Inc() { c.c.val.Add(1) }

// Add adds n.
func (c Counter) Add(n uint64) { c.c.val.Add(n) }

// Set overwrites the count. It exists for OnCollect callbacks mirroring an
// externally maintained cumulative counter; hot paths use Inc/Add.
func (c Counter) Set(n uint64) { c.c.val.Store(n) }

// Value returns the current count.
func (c Counter) Value() uint64 { return c.c.val.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set overwrites the value.
func (g Gauge) Set(v float64) { g.c.val.Store(math.Float64bits(v)) }

// Add adds delta (atomically, via CAS).
func (g Gauge) Add(delta float64) {
	for {
		old := g.c.val.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.c.val.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.c.val.Load()) }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64
	c      *child
}

// Observe records one sample: one atomic bucket increment, one count
// increment and a CAS-add on the sum. No allocation.
func (h Histogram) Observe(v float64) {
	// Binary search over the (short) bound list for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.c.bucketCounts[lo].Add(1)
	h.c.count.Add(1)
	for {
		old := h.c.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.c.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 { return h.c.count.Load() }

// CounterVec / GaugeVec / HistogramVec are label-keyed families; With
// resolves one label-value combination to its handle (creating it on first
// use). Resolution takes the family lock — callers on hot paths resolve once
// and keep the handle.
type CounterVec struct{ f *family }
type GaugeVec struct{ f *family }
type HistogramVec struct{ f *family }

// With returns the counter for the given label values (in key order).
func (v CounterVec) With(labelVals ...string) Counter {
	return Counter{c: v.f.child(labelVals)}
}

// With returns the gauge for the given label values (in key order).
func (v GaugeVec) With(labelVals ...string) Gauge {
	return Gauge{c: v.f.child(labelVals)}
}

// With returns the histogram for the given label values (in key order).
func (v HistogramVec) With(labelVals ...string) Histogram {
	return Histogram{bounds: v.f.buckets, c: v.f.child(labelVals)}
}

// Reset drops every child of the family. OnCollect callbacks mirroring a
// keyed snapshot (per-group loads, per-peer suspicion) call it first so
// entries that disappeared from the snapshot disappear from the scrape.
func (v GaugeVec) Reset() { v.f.reset() }

func (f *family) reset() {
	f.mu.Lock()
	f.children = make(map[string]*child)
	f.order = nil
	f.mu.Unlock()
}

// child resolves (or creates) the cell for one label-value combination.
func (f *family) child(labelVals []string) *child {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(labelVals)))
	}
	key := strings.Join(labelVals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelVals: append([]string(nil), labelVals...)}
		if f.typ == typeHistogram {
			c.bucketCounts = make([]atomic.Uint64, len(f.buckets)+1)
		}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// validName reports whether s is a legal metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*) or, with colonOK false, a legal label name.
func validName(s string, colonOK bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r == ':' && colonOK:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// register creates (or returns) a family, panicking on an invalid name or a
// redefinition with a different shape — both programmer errors.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if !validName(name, true) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l, false) {
			panic("metrics: invalid label name " + strconv.Quote(l))
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets not strictly increasing for " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic("metrics: conflicting redefinition of " + name)
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic("metrics: conflicting redefinition of " + name)
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) Counter {
	f := r.register(name, help, typeCounter, nil, nil)
	return Counter{c: f.child(nil)}
}

// CounterVec registers (or returns) a counter family with the given label keys.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{f: r.register(name, help, typeCounter, labels, nil)}
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	f := r.register(name, help, typeGauge, nil, nil)
	return Gauge{c: f.child(nil)}
}

// GaugeVec registers (or returns) a gauge family with the given label keys.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{f: r.register(name, help, typeGauge, labels, nil)}
}

// Histogram registers (or returns) an unlabeled histogram with the given
// upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	f := r.register(name, help, typeHistogram, nil, buckets)
	return Histogram{bounds: f.buckets, c: f.child(nil)}
}

// HistogramVec registers (or returns) a histogram family with label keys.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	return HistogramVec{f: r.register(name, help, typeHistogram, labels, buckets)}
}

// OnCollect registers a callback run (in registration order) at the start of
// every render; callbacks copy scrape-time state into their metrics.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// ExpBuckets returns count exponential histogram bounds starting at start and
// growing by factor.
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// escapeLabel escapes a label value for the text format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendLabels renders {k="v",...}, merging extra (used for the histogram
// "le" label) after the family labels.
func appendLabels(b *strings.Builder, keys, vals []string, extraKey, extraVal string) {
	if len(keys) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus runs the collectors and renders every family in the
// Prometheus text exposition format, sorted by family name (children sorted
// by label values).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// render writes one family.
func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()

	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.typ)
	b.WriteByte('\n')
	for _, c := range children {
		switch f.typ {
		case typeCounter:
			b.WriteString(f.name)
			appendLabels(b, f.labels, c.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(c.val.Load(), 10))
			b.WriteByte('\n')
		case typeGauge:
			b.WriteString(f.name)
			appendLabels(b, f.labels, c.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(math.Float64frombits(c.val.Load())))
			b.WriteByte('\n')
		case typeHistogram:
			var cum uint64
			for i := range c.bucketCounts {
				cum += c.bucketCounts[i].Load()
				le := "+Inf"
				if i < len(f.buckets) {
					le = formatFloat(f.buckets[i])
				}
				b.WriteString(f.name)
				b.WriteString("_bucket")
				appendLabels(b, f.labels, c.labelVals, "le", le)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
			}
			b.WriteString(f.name)
			b.WriteString("_sum")
			appendLabels(b, f.labels, c.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(math.Float64frombits(c.sumBits.Load())))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			appendLabels(b, f.labels, c.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(c.count.Load(), 10))
			b.WriteByte('\n')
		}
	}
}

// ServeHTTP makes the registry an http.Handler for a /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
