package chord

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by Ring operations.
var (
	ErrEmptyRing     = errors.New("chord: ring has no members")
	ErrDuplicateNode = errors.New("chord: node already in ring")
	ErrUnknownNode   = errors.New("chord: node not in ring")
)

// Member identifies a physical server participating in the ring.
type Member string

// point is one virtual server: a position on the circle owned by a member.
type point struct {
	id     ID
	member Member
}

// Ring is an authoritative, process-local view of a Chord ring. It implements
// the Map() primitive the CLASH paper relies on: Map(h) returns the server
// whose virtual-server point is the successor of h on the circle. It also
// simulates greedy finger-table routing so callers can account for the
// O(log S) per-lookup message cost without running the full node protocol.
//
// Ring is safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	space  Space
	vnodes int
	points []point // sorted by id
	member map[Member]int
	// start caches each member's first virtual-server position (the hash of
	// "<member>#0"), which Lookup uses as its routing origin; computing it
	// once at join time saves a fmt.Sprintf and a SHA-1 per lookup.
	start map[Member]ID
}

// RingOption configures a Ring.
type RingOption func(*Ring)

// WithSpace sets the identifier space (default: 32-bit).
func WithSpace(s Space) RingOption { return func(r *Ring) { r.space = s } }

// WithVirtualServers sets the number of virtual servers per member (default
// 1). Chord recommends O(log S) virtual servers per node to even out the
// address-space partition; CFS-style capacity weighting can be achieved by
// calling AddWeighted.
func WithVirtualServers(n int) RingOption {
	return func(r *Ring) {
		if n > 0 {
			r.vnodes = n
		}
	}
}

// NewRing creates an empty ring.
func NewRing(opts ...RingOption) *Ring {
	r := &Ring{
		space:  DefaultSpace(),
		vnodes: 1,
		member: make(map[Member]int),
		start:  make(map[Member]ID),
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Space returns the identifier space used by the ring.
func (r *Ring) Space() Space {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.space
}

// Add inserts a member with the ring's default number of virtual servers.
func (r *Ring) Add(m Member) error { return r.AddWeighted(m, 0) }

// AddWeighted inserts a member with the given number of virtual servers
// (0 means "use the ring default"). Heterogeneous capacity (CFS-style) is
// modelled by giving more virtual servers to more capable members.
func (r *Ring) AddWeighted(m Member, vnodes int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.member[m]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, m)
	}
	if vnodes <= 0 {
		vnodes = r.vnodes
	}
	r.member[m] = vnodes
	for i := 0; i < vnodes; i++ {
		id := r.space.HashString(fmt.Sprintf("%s#%d", m, i))
		if i == 0 {
			r.start[m] = id
		}
		r.points = append(r.points, point{id: id, member: m})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].id < r.points[j].id })
	return nil
}

// Remove deletes a member and all of its virtual servers from the ring
// (modelling a node departure or failure).
func (r *Ring) Remove(m Member) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.member[m]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, m)
	}
	delete(r.member, m)
	delete(r.start, m)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != m {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Members returns the current members in unspecified order.
func (r *Ring) Members() []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Member, 0, len(r.member))
	for m := range r.member {
		out = append(out, m)
	}
	return out
}

// Len returns the number of members.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Contains reports whether m is a member of the ring.
func (r *Ring) Contains(m Member) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.member[m]
	return ok
}

// Successor returns the member owning hash point h: the member whose virtual
// server is the first point at or clockwise after h.
func (r *Ring) Successor(h ID) (Member, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, err := r.successorLocked(h)
	if err != nil {
		return "", err
	}
	return p.member, nil
}

func (r *Ring) successorLocked(h ID) (point, error) {
	if len(r.points) == 0 {
		return point{}, ErrEmptyRing
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].id >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i], nil
}

// Map hashes an arbitrary byte key and returns the owning member. This is the
// DHT primitive sÅ←Map(h) from the paper.
func (r *Ring) Map(key []byte) (Member, error) {
	r.mu.RLock()
	space := r.space
	r.mu.RUnlock()
	return r.Successor(space.HashBytes(key))
}

// Lookup resolves the owner of hash point h as seen from the virtual server
// of member `from`, simulating Chord's greedy finger-table routing, and
// returns the owner together with the number of inter-server hops the lookup
// would take (0 when the starting member already owns h). The hop count gives
// the O(log S) message cost per DHT lookup that the CLASH overhead analysis
// (paper §6.3) charges for.
func (r *Ring) Lookup(from Member, h ID) (Member, int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", 0, ErrEmptyRing
	}
	if _, ok := r.member[from]; !ok {
		return "", 0, fmt.Errorf("%w: %s", ErrUnknownNode, from)
	}
	owner, err := r.successorLocked(h)
	if err != nil {
		return "", 0, err
	}
	// Start from the first virtual server of `from` (cached at join time).
	cur := r.start[from]
	curMember := from
	hops := 0
	// Greedy routing: jump to the finger that most closely precedes h.
	// Bounded by 2*Bits to guarantee termination even in pathological cases.
	for iter := 0; iter < 2*r.space.Bits+4; iter++ {
		succ, err := r.successorLocked(r.space.Add(cur, 1))
		if err != nil {
			return "", 0, err
		}
		if Between(cur, succ.id, h) {
			// The immediate successor owns h.
			if succ.member != curMember {
				hops++
			}
			return succ.member, hops, nil
		}
		next := r.closestPrecedingLocked(cur, h)
		if next.id == cur {
			// No finger makes progress: fall through to the successor.
			if succ.member != curMember {
				hops++
			}
			cur, curMember = succ.id, succ.member
			continue
		}
		if next.member != curMember {
			hops++
		}
		cur, curMember = next.id, next.member
	}
	// Safety net (should be unreachable): report the true owner.
	return owner.member, hops, nil
}

// closestPrecedingLocked returns the virtual-server point that a node at
// position cur with a complete finger table would forward to when looking up
// h: the owner of the largest finger cur+2^i that still precedes h.
func (r *Ring) closestPrecedingLocked(cur, h ID) point {
	best := point{id: cur}
	foundBest := false
	for i := r.space.Bits - 1; i >= 0; i-- {
		fingerStart := r.space.Add(cur, uint64(1)<<uint(i))
		p, err := r.successorLocked(fingerStart)
		if err != nil {
			break
		}
		if BetweenOpen(cur, h, p.id) {
			if !foundBest || Between(best.id, h, p.id) {
				best = p
				foundBest = true
			}
			// Fingers are scanned from the farthest; the first one inside
			// (cur, h) is the closest preceding finger.
			break
		}
	}
	return best
}

// ExpectedHops returns ceil(log2(S)) for the current membership, the textbook
// per-lookup hop bound; useful for analytical overhead estimates.
func (r *Ring) ExpectedHops() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.member)
	hops := 0
	for v := 1; v < n; v <<= 1 {
		hops++
	}
	return hops
}
