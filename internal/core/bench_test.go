package core

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"clash/internal/benchutil"
	"clash/internal/bitkey"
)

// The acceptance scenario for the routing perf work: 1k cached groups over
// full-width (64-bit) keys. BenchmarkRoute/BenchmarkActiveEntryFor run the
// trie paths; the *Legacy variants run the frozen pre-trie map-probing
// baselines from legacy.go for comparison.
const (
	benchKeyBits = bitkey.MaxBits
	benchGroups  = 1000
	benchKeys    = 1 << 14
)

func benchWorkload() ([]bitkey.Group, []bitkey.Key) {
	rng := rand.New(rand.NewSource(1))
	groups := benchutil.PrefixFreeGroups(rng, benchKeyBits, benchGroups)
	keys := benchutil.RandomKeys(rng, benchKeyBits, benchKeys)
	return groups, keys
}

func benchServerID(i int) ServerID {
	return ServerID([]string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"}[i%8])
}

func BenchmarkRoute(b *testing.B) {
	groups, keys := benchWorkload()
	r := NewRouter(benchKeyBits)
	for i, g := range groups {
		r.Learn(g, benchServerID(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := r.Route(keys[i%len(keys)]); !ok {
			b.Fatal("miss on a complete partition")
		}
	}
}

func BenchmarkRouteLegacy(b *testing.B) {
	groups, keys := benchWorkload()
	r := NewLegacyRouter(benchKeyBits)
	for i, g := range groups {
		r.Learn(g, benchServerID(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := r.Route(keys[i%len(keys)]); !ok {
			b.Fatal("miss on a complete partition")
		}
	}
}

func BenchmarkRouteParallel(b *testing.B) {
	groups, keys := benchWorkload()
	r := NewRouter(benchKeyBits)
	for i, g := range groups {
		r.Learn(g, benchServerID(i))
	}
	var cursor atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1) * 7919 // offset goroutines into the key stream
		for pb.Next() {
			r.Route(keys[i%uint64(len(keys))])
			i++
		}
	})
}

func benchTable(b *testing.B, groups []bitkey.Group) *Table {
	b.Helper()
	tab, err := NewTable(benchKeyBits)
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range groups {
		tab.put(&Entry{Group: g, Active: true})
	}
	return tab
}

func BenchmarkActiveEntryFor(b *testing.B) {
	groups, keys := benchWorkload()
	tab := benchTable(b, groups)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tab.activeEntryFor(keys[i%len(keys)]); !ok {
			b.Fatal("miss on a complete partition")
		}
	}
}

func BenchmarkActiveEntryForLegacy(b *testing.B) {
	groups, keys := benchWorkload()
	tab := NewLegacyTable(benchKeyBits)
	for _, g := range groups {
		tab.Put(&Entry{Group: g, Active: true})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tab.ActiveEntryFor(keys[i%len(keys)]); !ok {
			b.Fatal("miss on a complete partition")
		}
	}
}

func BenchmarkActiveEntryForParallel(b *testing.B) {
	groups, keys := benchWorkload()
	tab := benchTable(b, groups)
	var cursor atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1) * 7919
		for pb.Next() {
			tab.activeEntryFor(keys[i%uint64(len(keys))])
			i++
		}
	})
}

func BenchmarkLongestPrefixMatch(b *testing.B) {
	groups, keys := benchWorkload()
	tab := benchTable(b, groups)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.longestPrefixMatch(keys[i%len(keys)])
	}
}

func BenchmarkLongestPrefixMatchLegacy(b *testing.B) {
	groups, keys := benchWorkload()
	tab := NewLegacyTable(benchKeyBits)
	for _, g := range groups {
		tab.Put(&Entry{Group: g, Active: true})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.LongestPrefixMatch(keys[i%len(keys)])
	}
}

func BenchmarkForgetServer(b *testing.B) {
	groups, _ := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := NewRouter(benchKeyBits)
		for j, g := range groups {
			r.Learn(g, benchServerID(j))
		}
		b.StartTimer()
		r.ForgetServer(benchServerID(0))
	}
}
