package overlay

import (
	"bytes"
	"fmt"
	"sync"
)

// MemNetwork is an in-memory transport fabric: endpoints created from the
// same network reach each other by address without sockets. Every Call still
// round-trips through the binary frame codec, so the serialisation path is
// identical to TCP. Endpoints can be marked down to exercise failure handling,
// and per-type call counts let tests assert on message complexity.
type MemNetwork struct {
	mu    sync.RWMutex
	eps   map[string]*MemEndpoint
	down  map[string]bool
	calls map[string]int
}

// NewMemNetwork creates an empty fabric.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{
		eps:   make(map[string]*MemEndpoint),
		down:  make(map[string]bool),
		calls: make(map[string]int),
	}
}

// Endpoint creates (or returns the existing) endpoint with the given address.
func (n *MemNetwork) Endpoint(addr string) *MemEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.eps[addr]; ok {
		return ep
	}
	ep := &MemEndpoint{net: n, addr: addr}
	n.eps[addr] = ep
	return ep
}

// SetDown marks an address unreachable (true) or reachable again (false).
func (n *MemNetwork) SetDown(addr string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[addr] = down
}

// Calls returns how many requests of the given type crossed the fabric.
func (n *MemNetwork) Calls(msgType string) int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.calls[msgType]
}

// route resolves the target endpoint, recording the call.
func (n *MemNetwork) route(addr, msgType string) (*MemEndpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.calls[msgType]++
	if n.down[addr] {
		return nil, fmt.Errorf("%w: %s is down", ErrUnreachable, addr)
	}
	ep, ok := n.eps[addr]
	if !ok || ep.isClosed() {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	return ep, nil
}

// MemEndpoint is one addressable endpoint of a MemNetwork.
type MemEndpoint struct {
	net  *MemNetwork
	addr string

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

var _ Transport = (*MemEndpoint)(nil)

// Addr implements Transport.
func (e *MemEndpoint) Addr() string { return e.addr }

// SetHandler implements Transport.
func (e *MemEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *MemEndpoint) isClosed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closed
}

// Close implements Transport.
func (e *MemEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// Call implements Transport. The request and reply both pass through the
// frame codec so the encoded bytes are exactly what the TCP transport would
// put on the wire; the handler runs synchronously on the caller's goroutine
// without any fabric lock held, so re-entrant call chains (A→B→A) cannot
// deadlock.
func (e *MemEndpoint) Call(addr, msgType string, payload []byte) ([]byte, error) {
	if e.isClosed() {
		return nil, fmt.Errorf("%w: %s", ErrClosed, e.addr)
	}
	gotType, gotPayload, err := frameRoundTrip(msgType, payload)
	if err != nil {
		return nil, err
	}
	target, err := e.net.route(addr, gotType)
	if err != nil {
		return nil, err
	}
	target.mu.RLock()
	h := target.handler
	target.mu.RUnlock()
	reply, herr := dispatch(h, gotType, gotPayload)
	if herr != nil {
		// Errors cross the wire as frameErr text, like on TCP.
		_, msg, err := frameRoundTrip(frameErr, []byte(herr.Error()))
		if err != nil {
			return nil, err
		}
		return nil, &RemoteError{Msg: string(msg)}
	}
	_, out, err := frameRoundTrip(frameOK, reply)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// frameRoundTrip encodes one frame and decodes it back, exercising the codec.
func frameRoundTrip(msgType string, payload []byte) (string, []byte, error) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgType, payload); err != nil {
		return "", nil, err
	}
	return readFrame(&buf)
}
