// Package wirecodec provides the low-level binary encoding primitives the
// CLASH wire protocol is built from: append-style writers (varint, fixed
// width, length-prefixed bytes) that grow a caller-owned buffer without
// intermediate allocations, a sticky-error Reader for decoding, and a
// sync.Pool of scratch buffers so the steady-state encode path allocates
// nothing.
//
// Encoding conventions:
//
//   - unsigned integers: LEB128 varints (encoding/binary.AppendUvarint)
//   - booleans: one byte, 0 or 1
//   - float64: 8 fixed bytes, IEEE-754 bits big-endian
//   - byte strings / strings: uvarint length followed by the raw bytes
//
// Decoders validate every length against the remaining input before touching
// it, so malformed input errors out without over-allocating.
package wirecodec

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
)

// Decoding errors.
var (
	// ErrTruncated is returned when the input ends before a value does.
	ErrTruncated = errors.New("wirecodec: truncated input")
	// ErrInvalid is returned when a value is structurally invalid (varint
	// overflow, length exceeding the remaining input).
	ErrInvalid = errors.New("wirecodec: invalid encoding")
)

// AppendUvarint appends v as a LEB128 varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendInt appends a non-negative int as a uvarint. Negative values are
// clamped to zero (protocol integers — depths, counts, kinds — are never
// negative; clamping keeps the encoder total).
func AppendInt(b []byte, v int) []byte {
	if v < 0 {
		v = 0
	}
	return binary.AppendUvarint(b, uint64(v))
}

// AppendBool appends a boolean as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendFloat64 appends the IEEE-754 bits of f, big-endian.
func AppendFloat64(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendBytes appends p with a uvarint length prefix.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends s with a uvarint length prefix.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Reader decodes values sequentially from a byte slice. The first decoding
// failure sticks: every later call returns a zero value and Err reports the
// failure, so callers check the error once after reading all fields.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a Reader over b. The Reader never mutates b; Bytes
// results alias it.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads one varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(ErrInvalid)
		}
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Int reads a uvarint into an int, failing on values beyond the int range.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if v > math.MaxInt32 {
		// Protocol ints (depths, counts, statuses) are small; anything this
		// large is a malformed or hostile frame.
		r.fail(ErrInvalid)
		return 0
	}
	return int(v)
}

// Bool reads one boolean byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.b) < 1 {
		r.fail(ErrTruncated)
		return false
	}
	v := r.b[0]
	r.b = r.b[1:]
	if v > 1 {
		r.fail(ErrInvalid)
		return false
	}
	return v == 1
}

// Float64 reads 8 fixed bytes as an IEEE-754 float64.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

// Bytes reads a length-prefixed byte string. The result aliases the input
// buffer; callers that retain it past the buffer's lifetime must copy.
// A zero length yields nil.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail(ErrInvalid)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := r.b[:n:n]
	r.b = r.b[n:]
	return out
}

// BytesCopy is Bytes with an owned copy of the result.
func (r *Reader) BytesCopy() []byte {
	b := r.Bytes()
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	return string(r.Bytes())
}

// bufPool recycles encode scratch buffers. Buffers start at 512 bytes and
// grow with use; oversized ones (a rare huge state transfer) are dropped
// instead of pinned.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// maxPooledBuf bounds the capacity of buffers returned to the pool.
const maxPooledBuf = 1 << 20

// GetBuf returns an empty scratch buffer from the pool. Append to it freely
// (reassigning on growth) and hand the final slice back with PutBuf.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf returns a buffer obtained from GetBuf (or grown from one) to the
// pool. The caller must not use b afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
