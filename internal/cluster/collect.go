// Package cluster is clashtop's aggregation engine: it discovers a CLASH
// ring through the hubs' /topology walk, scrapes every reachable node's
// control plane (/status, /metrics, /traces/spans), reassembles sampled
// publishes into cross-node trace trees and runs cluster-wide invariant
// probes (key-space coverage, replica health, ring consistency).
//
// The package only consumes the hubs' public HTTP surface — everything it
// computes, an operator could compute from curl output. That keeps it usable
// against any deployment, local or remote, with no side channel into the
// process.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"clash/internal/hub"
	"clash/internal/overlay"
)

// spanScrapeLimit bounds the unfiltered span sample pulled from each node.
const spanScrapeLimit = 512

// Collector scrapes a set of hub base URLs (e.g. "http://10.0.0.1:9101").
type Collector struct {
	// Hubs are the hub base URLs to scrape.
	Hubs []string
	// Client is the HTTP client used for every request (default: 5s timeout).
	Client *http.Client
}

// NodeView is one hub's scrape result.
type NodeView struct {
	// Hub is the scraped base URL.
	Hub string `json:"hub"`
	// Addr is the node's transport address (from /status).
	Addr string `json:"addr,omitempty"`
	// Err records the scrape failure, if any; the other fields are then zero.
	Err string `json:"err,omitempty"`
	// Status is the node's /status document.
	Status *overlay.Status `json:"status,omitempty"`
	// Build is the node's build identity from clash_build_info.
	Build BuildInfo `json:"build,omitempty"`

	// Spans is the node's retained hop-span ring (newest first).
	Spans []overlay.Span `json:"-"`
	// Metrics is the parsed /metrics scrape.
	Metrics *Metrics `json:"-"`
}

// BuildInfo is one node's clash_build_info label set.
type BuildInfo struct {
	Version    string `json:"version,omitempty"`
	GoVersion  string `json:"goversion,omitempty"`
	GoMaxProcs string `json:"gomaxprocs,omitempty"`
}

// View is one collection pass over the fleet.
type View struct {
	// Nodes are the per-hub scrape results, in Hubs order.
	Nodes []NodeView `json:"nodes"`
	// Topo is the ring-walk topology from the first reachable hub.
	Topo *hub.TopologyView `json:"topo,omitempty"`
	// Unscraped lists ring members visible in the topology walk but not
	// covered by any scraped hub (their metrics and spans are missing from
	// every aggregate).
	Unscraped []string `json:"unscraped,omitempty"`
}

func (c *Collector) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// getJSON fetches url and decodes the JSON body into v.
func (c *Collector) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// scrapeNode collects one hub's /status, /metrics and span ring.
func (c *Collector) scrapeNode(ctx context.Context, base string) NodeView {
	nv := NodeView{Hub: base}
	var st overlay.Status
	if err := c.getJSON(ctx, base+"/status", &st); err != nil {
		nv.Err = err.Error()
		return nv
	}
	nv.Status = &st
	nv.Addr = st.Addr

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err == nil {
		var resp *http.Response
		if resp, err = c.client().Do(req); err == nil {
			if resp.StatusCode == http.StatusOK {
				nv.Metrics, err = parseMetrics(resp.Body)
			} else {
				err = fmt.Errorf("GET %s/metrics: %s", base, resp.Status)
			}
			resp.Body.Close()
		}
	}
	if err != nil {
		nv.Err = err.Error()
		return nv
	}
	if nv.Metrics != nil {
		for _, s := range nv.Metrics.Select("clash_build_info") {
			nv.Build = BuildInfo{
				Version:    s.Labels["version"],
				GoVersion:  s.Labels["goversion"],
				GoMaxProcs: s.Labels["gomaxprocs"],
			}
		}
	}

	var spans hub.SpanSample
	spansURL := fmt.Sprintf("%s/traces/spans?limit=%d", base, spanScrapeLimit)
	if err := c.getJSON(ctx, spansURL, &spans); err != nil {
		nv.Err = err.Error()
		return nv
	}
	nv.Spans = spans.Spans
	return nv
}

// Collect scrapes every configured hub concurrently and the topology from
// the first hub that answers. It never fails as a whole: per-node errors are
// recorded in the corresponding NodeView.
func (c *Collector) Collect(ctx context.Context) *View {
	v := &View{Nodes: make([]NodeView, len(c.Hubs))}
	var wg sync.WaitGroup
	for i, base := range c.Hubs {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			v.Nodes[i] = c.scrapeNode(ctx, base)
		}(i, base)
	}
	wg.Wait()

	for _, nv := range v.Nodes {
		if nv.Err != "" {
			continue
		}
		var topo hub.TopologyView
		if err := c.getJSON(ctx, nv.Hub+"/topology", &topo); err == nil {
			v.Topo = &topo
			break
		}
	}

	if v.Topo != nil {
		scraped := make(map[string]bool, len(v.Nodes))
		for _, nv := range v.Nodes {
			if nv.Addr != "" {
				scraped[nv.Addr] = true
			}
		}
		for _, tn := range v.Topo.Nodes {
			if !scraped[tn.Addr] {
				v.Unscraped = append(v.Unscraped, tn.Addr)
			}
		}
		sort.Strings(v.Unscraped)
	}
	return v
}

// SpansFor fetches every scraped node's spans for one trace (the filtered
// /traces/spans form, which returns them in recording order) and pools them
// for tree assembly.
func (c *Collector) SpansFor(ctx context.Context, traceID uint64) []overlay.Span {
	var mu sync.Mutex
	var all []overlay.Span
	var wg sync.WaitGroup
	for _, base := range c.Hubs {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			var sample hub.SpanSample
			url := fmt.Sprintf("%s/traces/spans?traceId=%d", base, traceID)
			if err := c.getJSON(ctx, url, &sample); err != nil {
				return
			}
			mu.Lock()
			all = append(all, sample.Spans...)
			mu.Unlock()
		}(base)
	}
	wg.Wait()
	return all
}
