// Package wire exercises MarshalWire/UnmarshalWire parity and evolution.
package wire

import (
	"errors"

	"wirecodec"
)

var errShort = errors.New("record overruns payload")

// ---- goodMsg: helpers, repeated groups, overflow guards, and a guarded
// trailing field, all in parity. No diagnostics. ----

type pair struct {
	K string
	V float64
}

type goodMsg struct {
	Seq   int64
	Name  string
	Attrs []pair
	Loose bool // added after v1: trailing, optional-on-read
}

func appendPair(b []byte, p pair) []byte {
	b = wirecodec.AppendString(b, p.K)
	b = wirecodec.AppendFloat64(b, p.V)
	return b
}

func readPair(r *wirecodec.Reader) pair {
	return pair{K: r.String(), V: r.Float64()}
}

func (m *goodMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, m.Seq)
	b = wirecodec.AppendString(b, m.Name)
	b = wirecodec.AppendUvarint(b, uint64(len(m.Attrs)))
	for _, p := range m.Attrs {
		b = appendPair(b, p)
	}
	b = wirecodec.AppendBool(b, m.Loose)
	return b
}

func (m *goodMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.Seq = r.Int()
	m.Name = r.String()
	n := int(r.Uvarint())
	if n > r.Len() { // overflow guard, not an optional marker
		return errShort
	}
	for i := 0; i < n; i++ {
		m.Attrs = append(m.Attrs, readPair(r))
	}
	if r.Err() == nil && r.Len() > 0 {
		m.Loose = r.Bool()
	}
	return r.Err()
}

// ---- swappedMsg: the classic transposition bug. ----

type swappedMsg struct {
	Seq  int64
	Name string
}

func (m *swappedMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, m.Seq)
	b = wirecodec.AppendString(b, m.Name)
	return b
}

func (m *swappedMsg) UnmarshalWire(data []byte) error { // want `swappedMsg: MarshalWire and UnmarshalWire disagree on wire layout: field 1: int written but string read`
	r := wirecodec.NewReader(data)
	m.Name = r.String()
	m.Seq = r.Int()
	return r.Err()
}

// ---- countMsg: a field written but never read. ----

type countMsg struct {
	A, B int64
	Tag  string
}

func (m *countMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, m.A)
	b = wirecodec.AppendInt(b, m.B)
	b = wirecodec.AppendString(b, m.Tag)
	return b
}

func (m *countMsg) UnmarshalWire(data []byte) error { // want `countMsg: MarshalWire and UnmarshalWire disagree on wire layout: MarshalWire writes 3 fields but UnmarshalWire reads 2`
	r := wirecodec.NewReader(data)
	m.A = r.Int()
	m.B = r.Int()
	return r.Err()
}

// ---- nonTrailingMsg: a field added in the middle, read unguarded after an
// optional group — old peers misparse. ----

type nonTrailingMsg struct {
	Seq  int64
	Ext  bool
	Name string
}

func (m *nonTrailingMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, m.Seq)
	b = wirecodec.AppendBool(b, m.Ext)
	b = wirecodec.AppendString(b, m.Name)
	return b
}

func (m *nonTrailingMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.Seq = r.Int()
	if r.Len() > 0 {
		m.Ext = r.Bool()
	}
	m.Name = r.String() // want `unguarded string read after an optional trailing field`
	return r.Err()
}

// ---- delegation: whole-payload handoff to a sub-message. ----

type innerA struct{ X int64 }

func (m *innerA) MarshalWire(b []byte) []byte {
	return wirecodec.AppendInt(b, m.X)
}

func (m *innerA) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.X = r.Int()
	return r.Err()
}

type innerB struct{ Y int64 }

func (m *innerB) MarshalWire(b []byte) []byte {
	return wirecodec.AppendInt(b, m.Y)
}

func (m *innerB) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.Y = r.Int()
	return r.Err()
}

type delegateMsg struct{ Inner innerA }

func (m *delegateMsg) MarshalWire(b []byte) []byte {
	return m.Inner.MarshalWire(b)
}

func (m *delegateMsg) UnmarshalWire(data []byte) error {
	return m.Inner.UnmarshalWire(data)
}

type delegateBadMsg struct {
	A innerA
	B innerB
}

func (m *delegateBadMsg) MarshalWire(b []byte) []byte {
	return m.A.MarshalWire(b)
}

func (m *delegateBadMsg) UnmarshalWire(data []byte) error { // want `delegateBadMsg: MarshalWire and UnmarshalWire disagree on wire layout: field 1: sub-message innerA written but sub-message innerB read`
	return m.B.UnmarshalWire(data)
}

// ---- nestedMsg: length-prefixed sub-records built in a scratch buffer; the
// scratch chain must not pollute the outer order. ----

type nestedMsg struct {
	Groups []innerA
}

func (m *nestedMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendUvarint(b, uint64(len(m.Groups)))
	scratch := make([]byte, 0, 64)
	for i := range m.Groups {
		scratch = m.Groups[i].MarshalWire(scratch[:0])
		b = wirecodec.AppendBytes(b, scratch)
	}
	return b
}

func (m *nestedMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	n := int(r.Uvarint())
	if n > r.Len() {
		return errShort
	}
	for i := 0; i < n; i++ {
		rec := r.Bytes()
		var g innerA
		if err := g.UnmarshalWire(rec); err != nil {
			return err
		}
		m.Groups = append(m.Groups, g)
	}
	return r.Err()
}

// ---- suppression: a deliberate asymmetry with the mandatory reason. ----

type legacyMsg struct {
	A int64
	B int64
}

func (m *legacyMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, m.A)
	b = wirecodec.AppendInt(b, m.B)
	return b
}

//clashvet:ignore wireevolve v1 decoder intentionally drops the reserved second field
func (m *legacyMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.A = r.Int()
	return r.Err()
}

// ---- malformed directive: no reason, so nothing is suppressed. ----

type badDirMsg struct {
	A int64
	B int64
}

func (m *badDirMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, m.A)
	b = wirecodec.AppendInt(b, m.B)
	return b
}

/* want `malformed //clashvet:ignore directive: missing reason` */ //clashvet:ignore wireevolve
func (m *badDirMsg) UnmarshalWire(data []byte) error {             // want `badDirMsg: MarshalWire and UnmarshalWire disagree on wire layout`
	r := wirecodec.NewReader(data)
	m.A = r.Int()
	return r.Err()
}
