package chord

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNodeDown is returned by RPC implementations when the target node is
// unreachable.
var ErrNodeDown = errors.New("chord: node unreachable")

// NodeRef identifies a remote protocol node: its address (how to reach it)
// and its position on the circle.
type NodeRef struct {
	Addr string `json:"addr"`
	ID   ID     `json:"id"`
}

// IsZero reports whether the reference is unset.
func (n NodeRef) IsZero() bool { return n.Addr == "" }

// RPC is the messaging surface a protocol node needs to talk to its peers.
// internal/overlay provides a transport-backed implementation; LocalNetwork
// provides an in-memory one for tests.
type RPC interface {
	// FindSuccessor asks the node at ref to resolve the successor of id.
	FindSuccessor(ref NodeRef, id ID) (NodeRef, error)
	// Predecessor asks the node at ref for its current predecessor (which
	// may be the zero NodeRef).
	Predecessor(ref NodeRef) (NodeRef, error)
	// Notify tells the node at ref that candidate might be its predecessor.
	Notify(ref NodeRef, candidate NodeRef) error
	// Ping checks liveness of the node at ref.
	Ping(ref NodeRef) error
}

// SuccessorListLen is the number of successors each node tracks for fault
// tolerance.
const SuccessorListLen = 4

// Node is a Chord protocol node. It keeps a finger table, a successor list
// and a predecessor pointer, and exposes the classic join/stabilize/notify/
// fix-fingers operations. Node has no internal goroutines: the owner calls
// Stabilize and FixFingers periodically (the overlay does this from its
// maintenance loop), per the repository convention that background work is
// owned by the caller.
type Node struct {
	mu    sync.RWMutex
	self  NodeRef
	space Space
	rpc   RPC

	predecessor NodeRef
	successors  []NodeRef // successors[0] is the immediate successor
	fingers     []NodeRef // fingers[i] = successor(self.ID + 2^i)
	nextFinger  int
}

// NewNode creates a node for the given address. The node starts as a
// single-member ring (its own successor).
func NewNode(addr string, space Space, rpc RPC) *Node {
	self := NodeRef{Addr: addr, ID: space.HashString(addr)}
	n := &Node{
		self:       self,
		space:      space,
		rpc:        rpc,
		successors: make([]NodeRef, 1, SuccessorListLen),
		fingers:    make([]NodeRef, space.Bits),
	}
	n.successors[0] = self
	for i := range n.fingers {
		n.fingers[i] = self
	}
	return n
}

// Self returns the node's own reference.
func (n *Node) Self() NodeRef { return n.self }

// Successor returns the node's current immediate successor.
func (n *Node) Successor() NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.successors[0]
}

// PredecessorRef returns the node's current predecessor (possibly zero).
func (n *Node) PredecessorRef() NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.predecessor
}

// Successors returns a copy of the successor list.
func (n *Node) Successors() []NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]NodeRef, len(n.successors))
	copy(out, n.successors)
	return out
}

// Join makes the node join the ring that bootstrap belongs to. Joining a zero
// bootstrap is a no-op (the node stays a singleton ring).
func (n *Node) Join(bootstrap NodeRef) error {
	if bootstrap.IsZero() || bootstrap.Addr == n.self.Addr {
		return nil
	}
	succ, err := n.rpc.FindSuccessor(bootstrap, n.self.ID)
	if err != nil {
		return fmt.Errorf("join via %s: %w", bootstrap.Addr, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.predecessor = NodeRef{}
	n.successors = n.successors[:1]
	n.successors[0] = succ
	return nil
}

// FindSuccessor resolves the successor of id, forwarding through the finger
// table as needed. It is both the local lookup entry point and the handler
// for remote FindSuccessor RPCs.
func (n *Node) FindSuccessor(id ID) (NodeRef, error) {
	n.mu.RLock()
	succ := n.successors[0]
	self := n.self
	n.mu.RUnlock()

	if Between(self.ID, succ.ID, id) {
		return succ, nil
	}
	next := n.closestPrecedingNode(id)
	if next.Addr == self.Addr {
		return succ, nil
	}
	res, err := n.rpc.FindSuccessor(next, id)
	if err != nil {
		// Fall back to the successor chain when a finger is stale.
		if succ.Addr != self.Addr {
			return n.rpc.FindSuccessor(succ, id)
		}
		return NodeRef{}, err
	}
	return res, nil
}

// closestPrecedingNode returns the finger most closely preceding id.
func (n *Node) closestPrecedingNode(id ID) NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for i := len(n.fingers) - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f.IsZero() {
			continue
		}
		if BetweenOpen(n.self.ID, id, f.ID) {
			return f
		}
	}
	return n.self
}

// Stabilize runs one round of Chord's stabilization: it learns about nodes
// that have joined between itself and its successor, repairs a failed
// successor using the successor list, and notifies the successor of its own
// existence.
func (n *Node) Stabilize() error {
	n.mu.RLock()
	succ := n.successors[0]
	self := n.self
	n.mu.RUnlock()

	if succ.Addr != self.Addr {
		if err := n.rpc.Ping(succ); err != nil {
			n.dropSuccessor(succ)
			return nil
		}
	}

	pred, err := func() (NodeRef, error) {
		if succ.Addr == self.Addr {
			return n.PredecessorRef(), nil
		}
		return n.rpc.Predecessor(succ)
	}()
	if err == nil && !pred.IsZero() && BetweenOpen(self.ID, succ.ID, pred.ID) {
		n.mu.Lock()
		n.successors[0] = pred
		succ = pred
		n.mu.Unlock()
	}

	if succ.Addr != self.Addr {
		if err := n.rpc.Notify(succ, self); err != nil {
			n.dropSuccessor(succ)
			return nil
		}
	}
	n.refreshSuccessorList()
	return nil
}

// dropSuccessor removes a failed successor, promoting the next entry in the
// successor list (or falling back to self for a singleton ring).
func (n *Node) dropSuccessor(failed NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.successors) > 0 && n.successors[0].Addr == failed.Addr {
		n.successors = n.successors[1:]
	}
	if len(n.successors) == 0 {
		n.successors = append(n.successors, n.self)
	}
}

// refreshSuccessorList rebuilds the successor list by walking successor
// pointers.
func (n *Node) refreshSuccessorList() {
	n.mu.RLock()
	self := n.self
	cur := n.successors[0]
	n.mu.RUnlock()

	list := make([]NodeRef, 0, SuccessorListLen)
	list = append(list, cur)
	for len(list) < SuccessorListLen && cur.Addr != self.Addr {
		next, err := n.rpc.FindSuccessor(cur, n.space.Add(cur.ID, 1))
		if err != nil || next.IsZero() || next.Addr == cur.Addr {
			break
		}
		list = append(list, next)
		cur = next
	}
	n.mu.Lock()
	n.successors = list
	n.mu.Unlock()
}

// Notify handles a remote node's claim to be our predecessor.
func (n *Node) Notify(candidate NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.predecessor.IsZero() || BetweenOpen(n.predecessor.ID, n.self.ID, candidate.ID) {
		n.predecessor = candidate
	}
}

// CheckPredecessor clears the predecessor pointer if it no longer responds.
func (n *Node) CheckPredecessor() {
	pred := n.PredecessorRef()
	if pred.IsZero() || pred.Addr == n.self.Addr {
		return
	}
	if err := n.rpc.Ping(pred); err != nil {
		n.mu.Lock()
		if n.predecessor.Addr == pred.Addr {
			n.predecessor = NodeRef{}
		}
		n.mu.Unlock()
	}
}

// FixFingers refreshes one finger-table entry per call, cycling through the
// table (Chord's fix_fingers).
func (n *Node) FixFingers() error {
	n.mu.Lock()
	i := n.nextFinger
	n.nextFinger = (n.nextFinger + 1) % len(n.fingers)
	start := n.space.Add(n.self.ID, uint64(1)<<uint(i))
	n.mu.Unlock()

	succ, err := n.FindSuccessor(start)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.fingers[i] = succ
	n.mu.Unlock()
	return nil
}

// FixAllFingers refreshes the whole finger table (useful in tests and right
// after join).
func (n *Node) FixAllFingers() error {
	for i := 0; i < n.space.Bits; i++ {
		if err := n.FixFingers(); err != nil {
			return err
		}
	}
	return nil
}

// OwnerOf reports whether this node currently owns hash point id, i.e. id
// lies in (predecessor, self].
func (n *Node) OwnerOf(id ID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.predecessor.IsZero() {
		// Without a predecessor we can only be sure for our own point.
		return id == n.self.ID || n.successors[0].Addr == n.self.Addr
	}
	return Between(n.predecessor.ID, n.self.ID, id)
}
