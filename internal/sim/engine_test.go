package sim

import (
	"testing"
	"time"
)

func TestEngineEventOrdering(t *testing.T) {
	eng := NewEngine(1)
	var order []int
	eng.At(3*time.Second, func() { order = append(order, 3) })
	eng.At(time.Second, func() { order = append(order, 1) })
	eng.At(2*time.Second, func() { order = append(order, 2) })
	// Same-instant events run in schedule order (sequence tiebreak).
	eng.At(2*time.Second, func() { order = append(order, 4) })
	eng.RunUntil(10 * time.Second)
	want := []int{1, 2, 4, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
	if eng.VirtualNow() != 10*time.Second {
		t.Errorf("VirtualNow = %s, want 10s", eng.VirtualNow())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine(1)
	var at []time.Duration
	eng.At(time.Second, func() {
		eng.After(time.Second, func() { at = append(at, eng.VirtualNow()) })
		eng.After(500*time.Millisecond, func() { at = append(at, eng.VirtualNow()) })
	})
	eng.RunUntil(5 * time.Second)
	if len(at) != 2 || at[0] != 1500*time.Millisecond || at[1] != 2*time.Second {
		t.Fatalf("nested events ran at %v", at)
	}
}

func TestEngineClockMonotonic(t *testing.T) {
	eng := NewEngine(1)
	// Scheduling in the past clamps to now: the clock never runs backward.
	eng.RunUntil(5 * time.Second)
	ran := time.Duration(-1)
	eng.At(time.Second, func() { ran = eng.VirtualNow() })
	eng.RunUntil(6 * time.Second)
	if ran != 5*time.Second {
		t.Errorf("past event ran at %s, want clamped to 5s", ran)
	}
}

func TestEngineTimerAndTicker(t *testing.T) {
	eng := NewEngine(1)
	timer := eng.NewTimer(2 * time.Second)
	ticker := eng.NewTicker(time.Second)
	eng.RunUntil(3500 * time.Millisecond)

	select {
	case ts := <-timer.C():
		if got := ts.Sub(simEpoch); got != 2*time.Second {
			t.Errorf("timer fired at %s, want 2s", got)
		}
	default:
		t.Error("timer did not fire")
	}
	// The ticker channel holds one tick (like time.Ticker, extra ticks drop).
	select {
	case <-ticker.C():
	default:
		t.Error("ticker did not fire")
	}
	ticker.Stop()

	stopped := eng.NewTimer(time.Second)
	if !stopped.Stop() {
		t.Error("Stop before expiry = false, want true")
	}
	eng.RunUntil(10 * time.Second)
	select {
	case <-stopped.C():
		t.Error("stopped timer fired")
	default:
	}
}

func TestEngineDeterministicRand(t *testing.T) {
	a, b := NewEngine(7), NewEngine(7)
	for i := 0; i < 100; i++ {
		if a.Rand().Uint64() != b.Rand().Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}
