package overlay

import (
	"errors"
	"sync"
	"testing"
	"time"

	"clash/internal/chord"
)

// fakeClock is a manually advanced time source for suspicion tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestSuspicionStateTransitions(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s := newSuspicion(clk.now)

	if got := s.state("a"); got != chord.PeerUnknown {
		t.Fatalf("fresh peer state = %v, want Unknown", got)
	}

	// Gray failures: suspect until suspicionDeadAfter, then dead.
	s.observeFailure("a", true)
	if got := s.state("a"); got != chord.PeerSuspect {
		t.Fatalf("after 1 gray failure state = %v, want Suspect", got)
	}
	s.observeFailure("a", true)
	if got := s.state("a"); got != chord.PeerSuspect {
		t.Fatalf("after 2 gray failures state = %v, want Suspect", got)
	}
	s.observeFailure("a", true)
	if got := s.state("a"); got != chord.PeerDead {
		t.Fatalf("after %d gray failures state = %v, want Dead", suspicionDeadAfter, got)
	}

	// One success clears the whole streak.
	s.observeSuccess("a", 10*time.Millisecond)
	if got := s.state("a"); got != chord.PeerUnknown {
		t.Fatalf("after success state = %v, want Unknown", got)
	}

	// A hard failure is dead immediately — crash-stop is not gray.
	s.observeFailure("b", false)
	if got := s.state("b"); got != chord.PeerDead {
		t.Fatalf("after hard failure state = %v, want Dead", got)
	}

	// Evidence goes stale after suspicionTTL: a dead verdict cannot exile a
	// recovered peer forever.
	clk.advance(suspicionTTL + time.Second)
	if got := s.state("b"); got != chord.PeerUnknown {
		t.Fatalf("after TTL state = %v, want Unknown", got)
	}
}

func TestSuspicionAdaptiveTimeout(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s := newSuspicion(clk.now)
	const class = 2500 * time.Millisecond
	const ceiling = 10 * time.Second

	// No evidence: the class deadline as-is.
	if got := s.timeoutFor("a", class, ceiling); got != class {
		t.Fatalf("default timeout = %v, want %v", got, class)
	}

	// A consistently slow peer earns adaptiveRTTFactor x its EWMA.
	for i := 0; i < 32; i++ {
		s.observeSuccess("a", 2*time.Second)
	}
	got := s.timeoutFor("a", class, ceiling)
	if got < 7*time.Second || got > 8*time.Second {
		t.Fatalf("adaptive timeout = %v, want ~%v", got, 4*2*time.Second)
	}

	// Consecutive gray failures double the deadline, clamped to the ceiling.
	s.observeFailure("b", true)
	if got := s.timeoutFor("b", class, ceiling); got != 2*class {
		t.Fatalf("timeout after 1 gray failure = %v, want %v", got, 2*class)
	}
	for i := 0; i < 10; i++ {
		s.observeFailure("b", true)
	}
	if got := s.timeoutFor("b", class, ceiling); got != ceiling {
		t.Fatalf("escalated timeout = %v, want ceiling %v", got, ceiling)
	}
}

// scriptTransport fails calls according to a script of errors (nil = success)
// and records the attempts it saw.
type scriptTransport struct {
	mu       sync.Mutex
	script   []error
	attempts int
	retries  int
}

func (f *scriptTransport) Addr() string { return "script" }
func (f *scriptTransport) Call(addr, msgType string, payload []byte) ([]byte, error) {
	return f.CallOpts(addr, msgType, payload, CallOpts{})
}

func (f *scriptTransport) CallOpts(addr, msgType string, payload []byte, opts CallOpts) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var err error
	if f.attempts < len(f.script) {
		err = f.script[f.attempts]
	}
	f.attempts++
	if err != nil {
		return nil, err
	}
	if opts.RTT != nil {
		*opts.RTT = time.Millisecond
	}
	return []byte("ok"), nil
}

func (f *scriptTransport) RecordRetry() {
	f.mu.Lock()
	f.retries++
	f.mu.Unlock()
}

func (f *scriptTransport) SetHandler(h Handler)  {}
func (f *scriptTransport) Stats() TransportStats { return TransportStats{} }
func (f *scriptTransport) Close() error          { return nil }

func newTestCaller(tr Transport) *caller {
	susp := newSuspicion(time.Now)
	return newCaller(tr, CallPolicy{RetryBackoff: time.Microsecond, MaxBackoff: time.Microsecond},
		susp, time.Now, func(time.Duration) {}, 1)
}

func TestCallerRetriesShedForAnyType(t *testing.T) {
	// accept_object is NOT idempotent, but a shed is retryable for every
	// type: the handler never ran.
	tr := &scriptTransport{script: []error{ErrShed, nil}}
	c := newTestCaller(tr)
	reply, err := c.call("peer", TypeAcceptObject, nil)
	if err != nil {
		t.Fatalf("call after shed = %v, want success", err)
	}
	if string(reply) != "ok" || tr.attempts != 2 || tr.retries != 1 {
		t.Fatalf("reply=%q attempts=%d retries=%d, want ok/2/1", reply, tr.attempts, tr.retries)
	}
}

func TestCallerRetriesIdempotentHardFailure(t *testing.T) {
	tr := &scriptTransport{script: []error{ErrUnreachable, nil}}
	c := newTestCaller(tr)
	if _, err := c.call("peer", TypePing, nil); err != nil {
		t.Fatalf("idempotent call after hard failure = %v, want success", err)
	}
	if tr.attempts != 2 {
		t.Fatalf("attempts = %d, want 2", tr.attempts)
	}
}

func TestCallerNeverRetriesDeadlineExpiry(t *testing.T) {
	// Even an idempotent message must not be resent after a deadline expiry
	// within one logical call: the escalated deadline applies to the NEXT
	// call, so a wedged peer costs each exchange at most one timeout.
	tr := &scriptTransport{script: []error{ErrDeadline, nil}}
	c := newTestCaller(tr)
	if _, err := c.call("peer", TypePing, nil); !errors.Is(err, ErrDeadline) {
		t.Fatalf("call = %v, want ErrDeadline", err)
	}
	if tr.attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no gray retry)", tr.attempts)
	}
}

func TestCallerNoRetryForNonIdempotentHardFailure(t *testing.T) {
	tr := &scriptTransport{script: []error{ErrUnreachable, nil}}
	c := newTestCaller(tr)
	if _, err := c.call("peer", TypeAcceptObject, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call = %v, want ErrUnreachable", err)
	}
	if tr.attempts != 1 {
		t.Fatalf("attempts = %d, want 1", tr.attempts)
	}
}

func TestCallerGivesUpAfterMaxAttempts(t *testing.T) {
	tr := &scriptTransport{script: []error{ErrShed, ErrShed, ErrShed, ErrShed}}
	c := newTestCaller(tr)
	if _, err := c.call("peer", TypePing, nil); !errors.Is(err, ErrShed) {
		t.Fatalf("call = %v, want ErrShed", err)
	}
	if tr.attempts != defaultMaxAttempts {
		t.Fatalf("attempts = %d, want %d", tr.attempts, defaultMaxAttempts)
	}
}

func TestTCPServerShedsWhenSaturated(t *testing.T) {
	srv, err := ListenTCPConfig("127.0.0.1:0", TCPConfig{
		MaxConcurrent: 1,
		ShedWait:      100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stall := make(chan struct{})
	srv.SetHandler(func(msgType string, payload []byte) ([]byte, error) {
		if msgType == TypeStatus {
			<-stall // wedge the only dispatch slot
		}
		return []byte("done"), nil
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Occupy the slot with a stalled handler.
	stalled := make(chan error, 1)
	go func() {
		_, err := cli.CallOpts(srv.Addr(), TypeStatus, nil, CallOpts{Timeout: 5 * time.Second})
		stalled <- err
	}()
	time.Sleep(50 * time.Millisecond)

	// The next pipelined request cannot get the slot within ShedWait and
	// must come back as a framed shed, not hang behind the stalled handler.
	start := time.Now()
	_, err = cli.CallOpts(srv.Addr(), TypePing, nil, CallOpts{Timeout: 5 * time.Second})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("saturated call = %v, want ErrShed", err)
	}
	if wait := time.Since(start); wait > 2*time.Second {
		t.Fatalf("shed took %v, want ~ShedWait", wait)
	}
	if shed := srv.Stats().Shed; shed != 1 {
		t.Fatalf("server shed counter = %d, want 1", shed)
	}

	// Releasing the stalled handler drains the slot and the connection keeps
	// working.
	close(stall)
	if err := <-stalled; err != nil {
		t.Fatalf("stalled call after release: %v", err)
	}
	if _, err := cli.Call(srv.Addr(), TypePing, nil); err != nil {
		t.Fatalf("call after shed: %v", err)
	}
}

func TestTCPStalledPeerDeadline(t *testing.T) {
	// A peer that accepts the connection but never replies must fail the
	// call at its deadline — and the expiry must not poison the multiplexed
	// connection for later calls.
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stall := make(chan struct{})
	srv.SetHandler(func(msgType string, payload []byte) ([]byte, error) {
		if msgType == TypeStatus {
			<-stall // never replies until the test ends
		}
		return []byte("pong"), nil
	})
	defer close(stall)

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	start := time.Now()
	_, err = cli.CallOpts(srv.Addr(), TypeStatus, nil, CallOpts{Timeout: 150 * time.Millisecond})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("stalled call = %v, want ErrDeadline", err)
	}
	if wait := time.Since(start); wait > 2*time.Second {
		t.Fatalf("deadline took %v, want ~150ms", wait)
	}
	if timeouts := cli.Stats().Timeouts; timeouts != 1 {
		t.Fatalf("client timeout counter = %d, want 1", timeouts)
	}

	// The mux must still route later replies correctly: the expired call's
	// seq was abandoned, not the connection.
	for i := 0; i < 4; i++ {
		reply, err := cli.CallOpts(srv.Addr(), TypePing, nil, CallOpts{Timeout: 2 * time.Second})
		if err != nil {
			t.Fatalf("call %d after deadline: %v", i, err)
		}
		if string(reply) != "pong" {
			t.Fatalf("call %d reply = %q, want pong", i, reply)
		}
	}
	if rec := cli.Stats().Reconnects; rec != 0 {
		t.Fatalf("reconnects = %d, want 0 (deadline must not tear down the connection)", rec)
	}
}
