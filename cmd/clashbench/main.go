// Command clashbench runs a synthetic routing workload through the CLASH hot
// paths — client cache Route, Server Work Table lookup, continuous-query
// matching and DHT ring lookup — and writes a machine-readable snapshot
// (BENCH_routing.json by default) so every perf PR has a trajectory to beat.
//
// The trie-backed paths are benchmarked side by side with the frozen pre-trie
// map-probing baselines (core.LegacyRouter, core.LegacyTable); the snapshot
// records the resulting speedups.
//
// Usage:
//
//	go run ./cmd/clashbench -keys 1000000 -groups 1000 -out BENCH_routing.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clash/internal/benchutil"
	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/core"
	"clash/internal/cq"
	"clash/internal/metrics"
)

type config struct {
	KeyBits     int `json:"key_bits"`
	Groups      int `json:"groups"`
	Keys        int `json:"keys"`
	Queries     int `json:"queries"`
	RingMembers int `json:"ring_members"`
	RingVnodes  int `json:"ring_vnodes"`
	MaxProcs    int `json:"go_max_procs"`
	NumCPU      int `json:"num_cpu"`
}

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type snapshot struct {
	Config     config             `json:"config"`
	GoVersion  string             `json:"go_version"`
	Benchmarks []result           `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
	Scaling    *scalingCurve      `json:"scaling,omitempty"`
}

// scalingPoint is one core count's measurement of the parallel ACCEPT_OBJECT
// hot path (publishes against the server's lock-free routing snapshot).
type scalingPoint struct {
	Cores         int     `json:"cores"`
	ThroughputPPS float64 `json:"throughput_pps"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	P99US         float64 `json:"p99_us"`
	SpeedupVs1    float64 `json:"speedup_vs_1core,omitempty"`
}

type scalingCurve struct {
	NumCPU     int `json:"num_cpu"`
	MaxProcs   int `json:"go_max_procs"`
	DurationMS int `json:"duration_ms"`
	// Points is the sharded server's curve; LegacySingleLockPPS is the frozen
	// single-mutex server driven at the highest core count for comparison.
	Points              []scalingPoint `json:"points"`
	LegacySingleLockPPS float64        `json:"legacy_single_lock_pps"`
}

// acceptPath is the piece of the server surface the scaling driver exercises;
// both the sharded Server and the single-mutex LegacyServer satisfy it.
type acceptPath interface {
	HandleAcceptObject(k bitkey.Key, estimatedDepth int) (core.AcceptObjectResult, error)
	ManagesKey(k bitkey.Key) (bitkey.Group, bool)
}

// parseCores parses a comma-separated core list ("1,2,4,8"). An empty spec
// derives the curve from the machine: powers of two up to NumCPU.
func parseCores(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		var cores []int
		for c := 1; c <= runtime.NumCPU(); c *= 2 {
			cores = append(cores, c)
		}
		return cores, nil
	}
	var cores []int
	for _, part := range strings.Split(spec, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad -cores entry %q", part)
		}
		cores = append(cores, c)
	}
	return cores, nil
}

// measureAccept drives the ACCEPT_OBJECT path from `cores` goroutines (with
// GOMAXPROCS pinned to match) for roughly the given duration and reports
// throughput, per-op cost, allocation rate and sampled p99 latency.
func measureAccept(srv acceptPath, keys []bitkey.Key, depths []int, cores int, dur time.Duration) scalingPoint {
	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)

	var (
		stop  atomic.Bool
		wg    sync.WaitGroup
		ops   = make([]int64, cores)
		hists = make([]*metrics.LatencyHist, cores)
	)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for w := 0; w < cores; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hist := metrics.NewLatencyHist()
			hists[w] = hist
			// Workers start on disjoint key offsets so they fan out across
			// the lock stripes instead of marching in step.
			i := w * (len(keys) / cores)
			var n int64
			for !stop.Load() {
				// One latency sample per 64-op block (the block's mean per-op
				// cost, recorded in nanoseconds): sampling keeps the timer
				// calls off the measured fast path.
				t0 := time.Now()
				for j := 0; j < 64; j++ {
					k := keys[i%len(keys)]
					_, _ = srv.HandleAcceptObject(k, depths[i%len(depths)])
					i++
				}
				hist.Record(time.Since(t0).Nanoseconds() / 64)
				n += 64
			}
			ops[w] = n
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	var total int64
	hist := metrics.NewLatencyHist()
	for w := 0; w < cores; w++ {
		total += ops[w]
		hist.Merge(hists[w])
	}
	pt := scalingPoint{Cores: cores}
	if total > 0 && elapsed > 0 {
		pt.ThroughputPPS = float64(total) / elapsed.Seconds()
		pt.NsPerOp = elapsed.Seconds() * 1e9 / float64(total)
		pt.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(total)
		pt.P99US = hist.Summary().P99 / 1e3 // samples are ns/op
	}
	return pt
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("clashbench: ")
	var (
		keys    = flag.Int("keys", 1_000_000, "number of identifier keys in the synthetic workload")
		groups  = flag.Int("groups", 1000, "number of cached key groups (prefix-free partition)")
		keyBits = flag.Int("keybits", bitkey.MaxBits, "identifier key length N")
		queries = flag.Int("queries", 1000, "number of registered continuous queries")
		members = flag.Int("members", 64, "DHT ring members")
		vnodes  = flag.Int("vnodes", 4, "virtual servers per ring member")
		out     = flag.String("out", "BENCH_routing.json", "output snapshot path")
		seed    = flag.Int64("seed", 1, "workload PRNG seed")
		cores   = flag.String("cores", "", "comma-separated GOMAXPROCS values for the multi-core scaling curve (default: powers of two up to NumCPU)")
		scalDur = flag.Duration("scaledur", 500*time.Millisecond, "measurement window per scaling point")
		gateSc  = flag.Float64("gate-scale", 0, "fail unless 4-core throughput >= this multiple of 1-core (0 disables; skipped below 4 CPUs)")
		gateFl  = flag.Float64("gate-floor", 0, "fail unless the best scaling point reaches this many publishes/s (0 disables)")
	)
	flag.Parse()

	cfg := config{
		KeyBits:     *keyBits,
		Groups:      *groups,
		Keys:        *keys,
		Queries:     *queries,
		RingMembers: *members,
		RingVnodes:  *vnodes,
		MaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	log.Printf("workload: %d keys, %d groups, %d-bit key space", cfg.Keys, cfg.Groups, cfg.KeyBits)

	rng := rand.New(rand.NewSource(*seed))
	partition := benchutil.PrefixFreeGroups(rng, cfg.KeyBits, cfg.Groups)
	workload := benchutil.RandomKeys(rng, cfg.KeyBits, cfg.Keys)

	snap := snapshot{Config: cfg, GoVersion: runtime.Version(), Speedups: map[string]float64{}}
	run := func(name string, fn func(b *testing.B)) result {
		r := testing.Benchmark(fn)
		res := result{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		log.Printf("%-28s %12.1f ns/op %6d allocs/op %10d iters", name, res.NsPerOp, res.AllocsPerOp, res.Iterations)
		snap.Benchmarks = append(snap.Benchmarks, res)
		return res
	}
	speedup := func(metric string, legacy, trie result) {
		if trie.NsPerOp > 0 {
			snap.Speedups[metric] = legacy.NsPerOp / trie.NsPerOp
		}
	}

	// Client cache: trie router vs. legacy per-depth map probing.
	router := core.NewRouter(cfg.KeyBits)
	legacyRouter := core.NewLegacyRouter(cfg.KeyBits)
	for i, g := range partition {
		id := core.ServerID(fmt.Sprintf("s%03d", i%257))
		router.Learn(g, id)
		legacyRouter.Learn(g, id)
	}
	routeTrie := run("route/trie", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			router.Route(workload[i%len(workload)])
		}
	})
	routeLegacy := run("route/legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyRouter.Route(workload[i%len(workload)])
		}
	})
	speedup("route", routeLegacy, routeTrie)

	// Server Work Table: trie-backed lookup (through the server mutex, as in
	// production) vs. the legacy lock-free map probing — a handicap the trie
	// path wins under anyway.
	server, err := core.NewServer("bench", cfg.KeyBits)
	if err != nil {
		log.Fatal(err)
	}
	legacyTable := core.NewLegacyTable(cfg.KeyBits)
	for _, g := range partition {
		if err := server.HandleAcceptKeyGroup(g, "seed"); err != nil {
			log.Fatal(err)
		}
		legacyTable.Put(&core.Entry{Group: g, Active: true})
	}
	tableTrie := run("active_entry_for/trie", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			server.ManagesKey(workload[i%len(workload)])
		}
	})
	tableLegacy := run("active_entry_for/legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyTable.ActiveEntryFor(workload[i%len(workload)])
		}
	})
	speedup("active_entry_for", tableLegacy, tableTrie)

	// Continuous-query matching over a trie region index.
	engine, err := cq.NewEngine(cfg.KeyBits)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < cfg.Queries; i++ {
		q := cq.Query{
			ID:         fmt.Sprintf("q%05d", i),
			Region:     partition[i%len(partition)],
			Predicates: []cq.Predicate{{Attr: "speed", Op: cq.OpGe, Value: 30}},
		}
		if err := engine.Register(q); err != nil {
			log.Fatal(err)
		}
	}
	events := make([]cq.Event, 1<<14)
	for i := range events {
		events[i] = cq.Event{
			Key:   workload[rng.Intn(len(workload))],
			Attrs: map[string]float64{"speed": float64(rng.Intn(60))},
		}
	}
	run("cq_match/trie", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine.Match(events[i%len(events)])
		}
	})

	// DHT ring lookup with cached vnode start points.
	ring := chord.NewRing(chord.WithVirtualServers(cfg.RingVnodes))
	ringMembers := make([]chord.Member, cfg.RingMembers)
	for i := range ringMembers {
		ringMembers[i] = chord.Member(fmt.Sprintf("server-%03d", i))
		if err := ring.Add(ringMembers[i]); err != nil {
			log.Fatal(err)
		}
	}
	targets := make([]chord.ID, 1<<12)
	for i := range targets {
		targets[i] = ring.Space().Wrap(rng.Uint64())
	}
	run("ring_lookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := ring.Lookup(ringMembers[i%len(ringMembers)], targets[i%len(targets)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Multi-core scaling curve: the parallel ACCEPT_OBJECT hot path against
	// the sharded server's lock-free routing snapshot, one point per core
	// count, plus the frozen single-mutex server at the highest core count as
	// the contention baseline.
	coreList, err := parseCores(*cores)
	if err != nil {
		log.Fatal(err)
	}
	// Per-key correct depth: the depth of the active group covering the key,
	// so the measured path is the case-(a) OK branch.
	depths := make([]int, len(workload))
	for i, k := range workload {
		if g, ok := server.ManagesKey(k); ok {
			depths[i] = g.Prefix.Bits
		}
	}
	legacyServer, err := core.NewLegacyServer("bench-legacy", cfg.KeyBits)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range partition {
		if err := legacyServer.HandleAcceptKeyGroup(g, "seed"); err != nil {
			log.Fatal(err)
		}
	}
	curve := &scalingCurve{
		NumCPU:     cfg.NumCPU,
		MaxProcs:   cfg.MaxProcs,
		DurationMS: int(scalDur.Milliseconds()),
	}
	for _, c := range coreList {
		pt := measureAccept(server, workload, depths, c, *scalDur)
		if len(curve.Points) > 0 && curve.Points[0].Cores == 1 && curve.Points[0].ThroughputPPS > 0 {
			pt.SpeedupVs1 = pt.ThroughputPPS / curve.Points[0].ThroughputPPS
		}
		curve.Points = append(curve.Points, pt)
		log.Printf("scaling/%d-core %14.0f pkt/s %8.1f ns/op %6.3f allocs/op p99 %.1fµs",
			pt.Cores, pt.ThroughputPPS, pt.NsPerOp, pt.AllocsPerOp, pt.P99US)
	}
	maxCores := coreList[len(coreList)-1]
	legacyPt := measureAccept(legacyServer, workload, depths, maxCores, *scalDur)
	curve.LegacySingleLockPPS = legacyPt.ThroughputPPS
	log.Printf("scaling/legacy-%d-core %8.0f pkt/s (single mutex)", maxCores, legacyPt.ThroughputPPS)
	snap.Scaling = curve

	if *gateFl > 0 {
		best := 0.0
		for _, pt := range curve.Points {
			if pt.ThroughputPPS > best {
				best = pt.ThroughputPPS
			}
		}
		if best < *gateFl {
			log.Fatalf("scaling gate: best throughput %.0f pkt/s below floor %.0f", best, *gateFl)
		}
	}
	if *gateSc > 0 {
		var one, four float64
		for _, pt := range curve.Points {
			switch pt.Cores {
			case 1:
				one = pt.ThroughputPPS
			case 4:
				four = pt.ThroughputPPS
			}
		}
		switch {
		case cfg.NumCPU < 4:
			log.Printf("scaling gate: ratio check skipped (%d CPUs < 4)", cfg.NumCPU)
		case one == 0 || four == 0:
			log.Printf("scaling gate: ratio check skipped (-cores lacks 1 and 4)")
		case four < *gateSc*one:
			log.Fatalf("scaling gate: 4-core %.0f pkt/s < %.2fx 1-core %.0f", four, *gateSc, one)
		default:
			log.Printf("scaling gate: 4-core is %.2fx 1-core (>= %.2fx required)", four/one, *gateSc)
		}
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (route %.0fx, active_entry_for %.0fx vs legacy)",
		*out, snap.Speedups["route"], snap.Speedups["active_entry_for"])
}
