package metrics

import "sync"

// SetMaxPoints bounds each series in a Set: when a series reaches the limit,
// the oldest half of its samples is discarded. A long-running overlay node
// records a handful of samples per load-check period forever; without the
// cap its memory and status payload would grow without bound.
const SetMaxPoints = 4096

// Set is a named collection of time series with internal synchronisation, so
// concurrent producers (the overlay maintenance loop, connection handlers)
// can record samples without coordinating. Series are created on first use
// and keep their creation order for stable rendering; each series keeps at
// most SetMaxPoints recent samples.
//
// TimeSeries itself stays unsynchronised for the single-owner simulator use;
// Set is the concurrency boundary the live overlay records through.
type Set struct {
	mu     sync.Mutex
	series map[string]*TimeSeries
	order  []string
}

// NewSet creates an empty set.
func NewSet() *Set {
	return &Set{series: make(map[string]*TimeSeries)}
}

// Observe appends a sample to the named series, creating it if needed.
func (s *Set) Observe(name string, t, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.series[name]
	if !ok {
		ts = NewTimeSeries(name)
		s.series[name] = ts
		s.order = append(s.order, name)
	}
	if len(ts.Points) >= SetMaxPoints {
		// Drop the oldest half in place (amortised O(1) per sample).
		kept := copy(ts.Points, ts.Points[len(ts.Points)/2:])
		ts.Points = ts.Points[:kept]
	}
	ts.Append(t, v)
}

// Get returns a copy of the named series (nil when absent).
func (s *Set) Get(name string) *TimeSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.series[name]
	if !ok {
		return nil
	}
	return copySeries(ts)
}

// Snapshot returns copies of every series in creation order. The copies are
// safe to marshal or mutate without racing the producers.
func (s *Set) Snapshot() []TimeSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TimeSeries, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, *copySeries(s.series[name]))
	}
	return out
}

func copySeries(ts *TimeSeries) *TimeSeries {
	c := &TimeSeries{Name: ts.Name, Points: make([]Point, len(ts.Points))}
	copy(c.Points, ts.Points)
	return c
}
