package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("clash/internal/core").
	Path string
	// Dir is the directory the sources were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by filename.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without the go toolchain: repo (or
// testdata) packages are resolved to directories and checked from source,
// everything else is delegated to the standard library's source importer
// (which compiles nothing and works offline). One Loader shares a FileSet and
// a package cache across loads.
type Loader struct {
	Fset *token.FileSet
	// resolve maps a non-stdlib import path to its source directory.
	// Returning ok=false delegates the path to the stdlib importer.
	resolve func(path string) (dir string, ok bool)
	std     types.Importer
	pkgs    map[string]*Package
	// loading guards against import cycles.
	loading map[string]bool
	// modRoot/modPath are set in module mode only (LoadAll needs them).
	modRoot, modPath string
}

func newLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// NewModuleLoader loads packages of the module rooted at root (the directory
// holding go.mod). Module-internal import paths resolve to subdirectories;
// all other paths must be standard library.
func NewModuleLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	resolve := func(path string) (string, bool) {
		if path == modPath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	l := newLoader(resolve)
	l.modRoot, l.modPath = root, modPath
	return l, nil
}

// NewTreeLoader loads packages from a GOPATH-style source tree: import path
// "p/q" resolves to srcRoot/p/q when that directory exists. Used by
// analysistest over testdata/src trees.
func NewTreeLoader(srcRoot string) *Loader {
	return newLoader(func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

// Load type-checks the package with the given import path (and, recursively,
// its dependencies), returning the cached result on repeat calls.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("cannot resolve package %q", path)
	}
	return l.loadDir(path, dir)
}

func (l *Loader) loadDir(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go source in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
		if pkg, err := l.Load(p); err == nil {
			return pkg.Types, nil
		} else if _, resolvable := l.resolve(p); resolvable {
			return nil, err
		}
		return l.std.Import(p)
	})}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadAll walks the module for every package directory (skipping testdata,
// hidden and underscore directories) and loads each, mirroring "./...".
// Module mode only.
func (l *Loader) LoadAll() ([]*Package, error) {
	if l.modRoot == "" {
		return nil, fmt.Errorf("LoadAll requires a module loader")
	}
	var paths []string
	err := filepath.WalkDir(l.modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.modRoot, filepath.Dir(p))
		if err != nil {
			return err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != path {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
