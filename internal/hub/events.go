package hub

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"clash/internal/overlay"
)

const (
	// busCapacity bounds the event ring: a scrape-era control plane keeps the
	// recent past for replay, not a durable log.
	busCapacity = 1024
	// subBuffer is each /events subscriber's channel depth; a subscriber that
	// falls further behind loses events (counted, never blocking the node).
	subBuffer = 256
	// sseHeartbeat keeps idle /events connections alive through proxies.
	sseHeartbeat = 15 * time.Second
	// sseWriteGrace is the per-write deadline on an /events connection: a
	// stuck client is disconnected instead of pinning the handler.
	sseWriteGrace = 10 * time.Second
)

// Bus is the hub's bounded event log: a fixed ring of the most recent
// protocol events with monotonic sequence numbers, plus live fan-out to
// /events subscribers. Publish never blocks — a saturated subscriber loses
// events (counted in Drops) rather than stalling the node's emit sites.
type Bus struct {
	mu    sync.Mutex
	ring  []overlay.Event
	next  int
	full  bool
	seq   uint64
	subs  map[chan overlay.Event]struct{}
	drops uint64
}

// NewBus creates an empty bus with the default ring capacity.
func NewBus() *Bus {
	return &Bus{
		ring: make([]overlay.Event, busCapacity),
		subs: make(map[chan overlay.Event]struct{}),
	}
}

// Publish stamps ev with the next sequence number, stores it in the ring and
// fans it out to every live subscriber without blocking.
func (b *Bus) Publish(ev overlay.Event) {
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	b.ring[b.next] = ev
	b.next++
	if b.next == len(b.ring) {
		b.next = 0
		b.full = true
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
			b.drops++
		}
	}
	b.mu.Unlock()
}

// Replay returns the buffered events with Seq > since, oldest first.
func (b *Bus) Replay(since uint64) []overlay.Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.next
	if b.full {
		n = len(b.ring)
	}
	out := make([]overlay.Event, 0, n)
	start := 0
	if b.full {
		start = b.next
	}
	for i := 0; i < n; i++ {
		ev := b.ring[(start+i)%len(b.ring)]
		if ev.Seq > since {
			out = append(out, ev)
		}
	}
	return out
}

// Subscribe registers a live event channel. The caller must drain it and
// Unsubscribe when done.
func (b *Bus) Subscribe() chan overlay.Event {
	ch := make(chan overlay.Event, subBuffer)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch
}

// Unsubscribe removes a channel registered by Subscribe.
func (b *Bus) Unsubscribe(ch chan overlay.Event) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

// Seq returns the sequence number of the most recent event (0 when none).
func (b *Bus) Seq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Drops returns how many events were lost on saturated subscriber channels.
func (b *Bus) Drops() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.drops
}

// serveEvents streams the node's protocol events as server-sent events:
// `id:` carries the sequence number, `data:` the JSON event. `?since=N`
// replays the buffered events after sequence N before going live, so a
// reconnecting consumer resumes from its last `id` without a gap (the ring
// permitting). Heartbeat comments keep idle connections alive; each write
// carries its own deadline so a stuck client is disconnected instead of
// holding the handler, and the server's write timeout (if any) is overridden
// per write via the response controller.
func (h *Hub) serveEvents(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = v
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	rc := http.NewResponseController(w)

	// Subscribe before replaying so no event can fall between the two; the
	// overlap window is deduplicated by sequence number below.
	ch := h.bus.Subscribe()
	defer h.bus.Unsubscribe(ch)
	w.WriteHeader(http.StatusOK)

	write := func(ev overlay.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		_ = rc.SetWriteDeadline(time.Now().Add(sseWriteGrace))
		if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}

	last := since
	for _, ev := range h.bus.Replay(since) {
		if !write(ev) {
			return
		}
		last = ev.Seq
	}
	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if ev.Seq <= last {
				continue
			}
			if !write(ev) {
				return
			}
			last = ev.Seq
		case <-hb.C:
			_ = rc.SetWriteDeadline(time.Now().Add(sseWriteGrace))
			if _, err := io.WriteString(w, ": hb\n\n"); err != nil {
				return
			}
			if rc.Flush() != nil {
				return
			}
		}
	}
}
