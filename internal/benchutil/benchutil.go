// Package benchutil generates the deterministic synthetic workloads shared by
// the in-package benchmarks and the cmd/clashbench harness: a prefix-free set
// of key groups produced by random splitting (the shape CLASH's split protocol
// yields) and uniform identifier keys to resolve against it.
package benchutil

import (
	"math/rand"

	"clash/internal/bitkey"
)

// PrefixFreeGroups returns n prefix-free key groups over a keyBits-bit space,
// built by repeatedly splitting a random leaf starting from the root group.
// Because splitting partitions the space, every identifier key falls in
// exactly one returned group — each benchmark lookup takes the hit path, like
// a warmed-up client cache. Deterministic for a given rng.
func PrefixFreeGroups(rng *rand.Rand, keyBits, n int) []bitkey.Group {
	// A keyBits-deep partition has at most 2^keyBits leaves; cap n so a small
	// key space cannot make the split loop spin forever.
	if keyBits < 63 && uint64(n) > 1<<uint(keyBits) {
		n = 1 << uint(keyBits)
	}
	leaves := []bitkey.Group{bitkey.NewGroup(bitkey.Key{})}
	for len(leaves) < n {
		i := rng.Intn(len(leaves))
		g := leaves[i]
		if g.Depth() >= keyBits {
			continue
		}
		left, right, err := g.Split()
		if err != nil {
			continue
		}
		leaves[i] = left
		leaves = append(leaves, right)
	}
	return leaves
}

// RandomKeys returns count uniform keyBits-bit identifier keys.
func RandomKeys(rng *rand.Rand, keyBits, count int) []bitkey.Key {
	out := make([]bitkey.Key, count)
	mask := ^uint64(0)
	if keyBits < 64 {
		mask = (1 << uint(keyBits)) - 1
	}
	for i := range out {
		out[i] = bitkey.Key{Value: rng.Uint64() & mask, Bits: keyBits}
	}
	return out
}
