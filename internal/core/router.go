package core

import (
	"sync"

	"clash/internal/bitkey"
)

// Router is the client-side cache that maps key groups to the servers that
// manage them. After a client resolves the depth of a key once, it caches the
// (group → server) binding and sends all subsequent packets of the virtual
// stream directly, without DHT lookups, until it is redirected (paper §6: the
// client "simply caches this server value").
//
// Router is safe for concurrent use.
type Router struct {
	mu      sync.RWMutex
	keyBits int
	entries map[string]ServerID
}

// NewRouter creates an empty router cache for an N-bit key space.
func NewRouter(keyBits int) *Router {
	return &Router{keyBits: keyBits, entries: make(map[string]ServerID)}
}

// Learn records that the given group is managed by the given server.
func (r *Router) Learn(g bitkey.Group, server ServerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[g.String()] = server
}

// Forget drops the cached binding for a group (e.g. after a redirect).
func (r *Router) Forget(g bitkey.Group) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, g.String())
}

// ForgetServer drops every binding that points at the given server (used when
// a server leaves or fails).
func (r *Router) ForgetServer(server ServerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for g, s := range r.entries {
		if s == server {
			delete(r.entries, g)
		}
	}
}

// Route returns the cached (group, server) binding whose group contains the
// key, if any. Because cached groups may be stale, the caller must be
// prepared for the server to answer INCORRECT_DEPTH and then fall back to a
// full depth resolution.
func (r *Router) Route(k bitkey.Key) (bitkey.Group, ServerID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for d := min(k.Bits, r.keyBits); d >= 0; d-- {
		g, err := bitkey.Shape(k, d)
		if err != nil {
			continue
		}
		if s, ok := r.entries[g.String()]; ok {
			return g, s, true
		}
	}
	return bitkey.Group{}, NoServer, false
}

// Len returns the number of cached bindings.
func (r *Router) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
