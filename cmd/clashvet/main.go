// Command clashvet runs the repo's invariant analyzers over the module:
//
//	go run ./cmd/clashvet ./...
//	go run ./cmd/clashvet ./internal/core ./internal/overlay
//	go run ./cmd/clashvet -only clockcheck,poolcheck ./...
//
// It loads and type-checks packages from source (no go/packages, no network),
// runs every analyzer — clockcheck, poolcheck, wireevolve, hotpath,
// lockorder — applies //clashvet:ignore directives, and prints surviving
// diagnostics one per line as file:line:col: [analyzer] message. The exit
// status is 1 when any diagnostic (including a malformed directive) remains,
// so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"clash/internal/analysis"
	"clash/internal/analysis/clockcheck"
	"clash/internal/analysis/hotpath"
	"clash/internal/analysis/lockorder"
	"clash/internal/analysis/poolcheck"
	"clash/internal/analysis/wireevolve"
)

var all = []*analysis.Analyzer{
	clockcheck.Analyzer,
	hotpath.Analyzer,
	lockorder.Analyzer,
	poolcheck.Analyzer,
	wireevolve.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: clashvet [-only names] [packages | ./...]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clashvet: %v\n", err)
		os.Exit(2)
	}

	diags, err := runAnalyzers(analyzers, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "clashvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "clashvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run with -list for names)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func runAnalyzers(analyzers []*analysis.Analyzer, args []string) ([]analysis.Diagnostic, error) {
	root, err := findModuleRoot()
	if err != nil {
		return nil, err
	}
	loader, err := analysis.NewModuleLoader(root)
	if err != nil {
		return nil, err
	}

	var pkgs []*analysis.Package
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		pkgs, err = loader.LoadAll()
		if err != nil {
			return nil, err
		}
	} else {
		for _, arg := range args {
			path, err := argToImportPath(root, arg)
			if err != nil {
				return nil, err
			}
			pkg, err := loader.Load(path)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return analysis.Run(pkgs, analyzers)
}

// argToImportPath accepts either an import path ("clash/internal/core") or a
// filesystem path ("./internal/core") and yields the import path.
func argToImportPath(root, arg string) (string, error) {
	modPath, err := moduleName(root)
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(arg, ".") && !filepath.IsAbs(arg) {
		return arg, nil
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("package %s is outside the module", arg)
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}

func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
