package overlay

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Transport errors.
var (
	// ErrUnreachable is returned by Call when the remote endpoint cannot be
	// reached (connection refused, endpoint down, transport closed).
	ErrUnreachable = errors.New("overlay: endpoint unreachable")
	// ErrClosed is returned by operations on a closed transport.
	ErrClosed = errors.New("overlay: transport closed")
)

// RemoteError is an application-level error returned by the remote handler
// (as opposed to a transport failure). The remote message survives the wire;
// the remote error chain does not.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "overlay: remote error: " + e.Msg }

// IsRemote reports whether err is an application error relayed from the
// remote handler rather than a transport failure.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Handler processes one inbound request frame and returns the reply payload.
// Returning an error sends a typeReplyErr reply carrying the error text; the
// error never tears down the connection. Handlers run concurrently (the TCP
// transport dispatches pipelined requests in parallel), so they must be safe
// for concurrent use.
type Handler func(msgType string, payload []byte) ([]byte, error)

// TransportStats is a snapshot of one transport's cumulative counters,
// surfaced through the node status endpoint and printed by clashload.
type TransportStats struct {
	// FramesIn / FramesOut count complete frames read and written (requests
	// and replies alike).
	FramesIn  uint64 `json:"framesIn"`
	FramesOut uint64 `json:"framesOut"`
	// BytesIn / BytesOut count frame bytes, headers included.
	BytesIn  uint64 `json:"bytesIn"`
	BytesOut uint64 `json:"bytesOut"`
	// InFlight is the number of outbound Calls currently awaiting a reply.
	InFlight int64 `json:"inFlight"`
	// Reconnects counts outbound connections dialed to replace a broken or
	// expired one (first dials to a peer are not reconnects).
	Reconnects uint64 `json:"reconnects"`
	// OversizedDrops counts inbound frames discarded (and answered with a
	// framed error) because their payload exceeded maxFrameSize.
	OversizedDrops uint64 `json:"oversizedDrops"`
}

// transportStats is the shared atomic counter block embedded by both
// transports.
type transportStats struct {
	framesIn, framesOut atomic.Uint64
	bytesIn, bytesOut   atomic.Uint64
	inFlight            atomic.Int64
	reconnects          atomic.Uint64
	oversizedDrops      atomic.Uint64
}

func (s *transportStats) countIn(bytes int) {
	s.framesIn.Add(1)
	s.bytesIn.Add(uint64(bytes))
}

func (s *transportStats) countOut(bytes int) {
	s.framesOut.Add(1)
	s.bytesOut.Add(uint64(bytes))
}

func (s *transportStats) snapshot() TransportStats {
	return TransportStats{
		FramesIn:       s.framesIn.Load(),
		FramesOut:      s.framesOut.Load(),
		BytesIn:        s.bytesIn.Load(),
		BytesOut:       s.bytesOut.Load(),
		InFlight:       s.inFlight.Load(),
		Reconnects:     s.reconnects.Load(),
		OversizedDrops: s.oversizedDrops.Load(),
	}
}

// Transport is the messaging substrate an overlay node or client runs on:
// a listening endpoint with an address peers can Call, plus the outbound Call
// primitive. Implementations must be safe for concurrent use, and concurrent
// Calls to the same address must be able to share one underlying connection
// (pipelining): a Call never waits for an unrelated Call's reply.
//
// Two implementations exist: MemNetwork endpoints for deterministic in-process
// tests and TCPTransport for real deployments. Both speak the same framed wire
// protocol (wire.go).
type Transport interface {
	// Addr returns the endpoint's address, which doubles as its identity:
	// the chord ring position is the hash of this address and the CLASH
	// ServerID is the address itself.
	Addr() string
	// SetHandler installs the inbound request handler. It must be called
	// before the first Call can be answered; installing nil drops requests
	// with an error reply.
	SetHandler(h Handler)
	// Call sends one request frame to addr and waits for the reply frame
	// with the matching sequence ID. It returns ErrUnreachable (wrapped) on
	// transport failure and a *RemoteError when the remote handler returned
	// an error.
	Call(addr, msgType string, payload []byte) ([]byte, error)
	// Stats returns the transport's cumulative counters.
	Stats() TransportStats
	// Close releases the endpoint. Outstanding and future Calls fail.
	Close() error
}

// dispatch invokes h if non-nil, standardising the nil-handler error.
func dispatch(h Handler, msgType string, payload []byte) ([]byte, error) {
	if h == nil {
		return nil, fmt.Errorf("no handler installed")
	}
	if msgType == "" {
		return nil, fmt.Errorf("unknown message type byte")
	}
	return h(msgType, payload)
}
