package overlay

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/clock"
	"clash/internal/core"
	"clash/internal/cq"
	"clash/internal/wirecodec"
)

// Match is one continuous-query match pushed to the subscribing client.
type Match struct {
	// QueryID is the matched query.
	QueryID string
	// Key is the identifier key of the matching data packet.
	Key bitkey.Key
	// Attrs are the packet's attributes.
	Attrs map[string]float64
	// Payload is the packet's opaque payload.
	Payload []byte
}

// matchBuffer is the client-side match channel capacity; deliveries beyond it
// are dropped (and counted) rather than blocking the overlay's push path.
const matchBuffer = 1024

// Client is the CLASH client side: it resolves the depth of identifier keys
// by probing through the overlay (paper §6's modified binary search), caches
// (group → server) bindings in a core.Router, publishes data packets
// (individually or in batched frames), and registers continuous queries whose
// matches are pushed back to it.
//
// Client is safe for concurrent use; the router cache is shared across
// goroutines so one connection's redirect teaches all the others.
type Client struct {
	tr      Transport
	keyBits int
	space   chord.Space
	seeds   []string
	router  *core.Router

	// clk drives the client's periodic machinery (Batcher interval flushes);
	// the simulator swaps in its virtual source via SetClock.
	clk clock.Clock

	lastDepth atomic.Int64
	seedIdx   atomic.Int64
	drops     atomic.Int64
	matches   chan Match

	// traceEvery samples every Nth delivered object for request tracing
	// (SetTraceEvery; 0 disables). traceSalt distinguishes this client's
	// trace IDs from other publishers'.
	traceEvery atomic.Int64
	traceSeq   atomic.Uint64
	traceSalt  uint64
}

// NewClient creates a client that reaches the overlay through the given seed
// node addresses (any live overlay node works; more seeds add redundancy).
// The client's transport endpoint receives match notifications.
func NewClient(tr Transport, keyBits int, space chord.Space, seeds ...string) (*Client, error) {
	if keyBits < 1 || keyBits > bitkey.MaxBits {
		return nil, fmt.Errorf("%w: key bits %d", bitkey.ErrBadLength, keyBits)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("overlay: client needs at least one seed address")
	}
	c := &Client{
		tr:        tr,
		keyBits:   keyBits,
		space:     space,
		seeds:     append([]string(nil), seeds...),
		router:    core.NewRouter(keyBits),
		clk:       clock.Real(),
		matches:   make(chan Match, matchBuffer),
		traceSalt: uint64(space.HashString(tr.Addr())) << 32,
	}
	tr.SetHandler(c.handle)
	return c, nil
}

// SetClock replaces the client's time source for interval-driven machinery.
// Call before creating batchers.
func (c *Client) SetClock(clk clock.Clock) { c.clk = clk }

// SetTraceEvery samples every Nth delivered object for request tracing: the
// sampled object carries a non-zero trace ID in its ACCEPT_OBJECT frames, and
// every server on its path records per-stage timings under the ID (surfaced
// by the hub's /traces/sample). n <= 0 disables sampling (the default).
func (c *Client) SetTraceEvery(n int) { c.traceEvery.Store(int64(n)) }

// nextTraceID draws the trace ID for one delivered object: zero (untraced)
// except on every traceEvery-th call.
func (c *Client) nextTraceID() uint64 {
	every := c.traceEvery.Load()
	if every <= 0 {
		return 0
	}
	seq := c.traceSeq.Add(1)
	if seq%uint64(every) != 0 {
		return 0
	}
	id := c.traceSalt ^ seq
	if id == 0 {
		id = 1
	}
	return id
}

// Matches returns the channel match notifications are delivered on.
func (c *Client) Matches() <-chan Match { return c.matches }

// Drops returns how many match notifications were dropped because the match
// channel was full.
func (c *Client) Drops() int64 { return c.drops.Load() }

// Router exposes the client's route cache (tests assert on learned bindings).
func (c *Client) Router() *core.Router { return c.router }

// Close closes the client's transport endpoint.
func (c *Client) Close() error { return c.tr.Close() }

// handle receives pushed match notifications.
func (c *Client) handle(msgType string, payload []byte) ([]byte, error) {
	if msgType != TypeMatch {
		return nil, fmt.Errorf("unexpected message type %q", msgType)
	}
	var m matchMsg
	if err := m.UnmarshalWire(payload); err != nil {
		return nil, err
	}
	key, err := bitkey.New(m.KeyValue, m.KeyBits)
	if err != nil {
		return nil, err
	}
	select {
	// The decoded payload aliases the transport's pooled request buffer; the
	// Match escapes to the application, so it must own its bytes.
	case c.matches <- Match{QueryID: m.QueryID, Key: key, Attrs: m.Attrs, Payload: bytes.Clone(m.Payload)}:
	default:
		c.drops.Add(1)
	}
	return nil, nil
}

// lookupOwner resolves the overlay node responsible for a virtual key by
// asking a seed node to run the chord lookup. Seeds are rotated on failure.
func (c *Client) lookupOwner(vk bitkey.Key) (string, error) {
	req := findSuccessorMsg{ID: uint64(c.space.HashBytes(vk.Bytes()))}
	start := int(c.seedIdx.Load())
	var lastErr error
	for i := 0; i < len(c.seeds); i++ {
		seed := c.seeds[(start+i)%len(c.seeds)]
		var ref nodeRefMsg
		if err := call(c.tr, seed, TypeFindSuccessor, &req, &ref); err != nil {
			lastErr = err
			c.seedIdx.Store(int64((start + i + 1) % len(c.seeds)))
			continue
		}
		return ref.Addr, nil
	}
	return "", fmt.Errorf("overlay: no seed reachable: %w", lastErr)
}

// decodeAccept converts a wire reply into the core result.
func decodeAccept(reply *core.AcceptObjectReplyMsg) (core.AcceptObjectResult, error) {
	res := core.AcceptObjectResult{
		Status:       reply.Status,
		CorrectDepth: reply.CorrectDepth,
		DMin:         reply.DMin,
	}
	switch reply.Status {
	case core.StatusOK, core.StatusOKCorrected, core.StatusIncorrectDepth:
	default:
		return core.AcceptObjectResult{}, fmt.Errorf("overlay: unknown reply status %d (%s)", reply.Status, reply.Error)
	}
	if reply.GroupBits > 0 || reply.GroupValue != 0 {
		prefix, err := bitkey.New(reply.GroupValue, reply.GroupBits)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		res.Group = bitkey.NewGroup(prefix)
	}
	return res, nil
}

// acceptObject sends one ACCEPT_OBJECT request and decodes the reply.
// traceID, when non-zero, marks the object as sampled for request tracing;
// parentSpan and hop are the span context of the delivery so far (the
// previous probe's server span and how many probes preceded this one), which
// the contacted server chains its own span under.
func (c *Client) acceptObject(addr string, key bitkey.Key, depth int, kind core.ObjectKind, payload []byte, traceID, parentSpan uint64, hop int) (core.AcceptObjectResult, *core.AcceptObjectReplyMsg, error) {
	req := core.AcceptObjectMsg{
		KeyValue:   key.Value,
		KeyBits:    key.Bits,
		Depth:      depth,
		Kind:       kind,
		Payload:    payload,
		TraceID:    traceID,
		ParentSpan: parentSpan,
		Hop:        hop,
	}
	var reply core.AcceptObjectReplyMsg
	if err := call(c.tr, addr, TypeAcceptObject, &req, &reply); err != nil {
		return core.AcceptObjectResult{}, nil, err
	}
	res, err := decodeAccept(&reply)
	if err != nil {
		return core.AcceptObjectResult{}, nil, err
	}
	return res, &reply, nil
}

// PublishResult summarises one delivered object.
type PublishResult struct {
	// Server is the overlay node that accepted the object.
	Server string
	// Group is the active key group that stores it.
	Group bitkey.Group
	// Probes is the number of ACCEPT_OBJECT probes the delivery took (1 on a
	// cache hit).
	Probes int
	// Matches are the IDs of continuous queries the packet matched.
	Matches []string
}

// deliver places one object: it tries the cached (group → server) binding
// first and falls back to a full depth resolution on a miss or redirect. The
// object payload rides on every probe and takes effect exactly once, on the
// probe the responsible server answers with OK.
func (c *Client) deliver(key bitkey.Key, kind core.ObjectKind, payload []byte) (*PublishResult, error) {
	if key.Bits != c.keyBits {
		return nil, fmt.Errorf("%w: key %d bits, want %d", core.ErrBadKey, key.Bits, c.keyBits)
	}
	// One trace ID covers the whole delivery: every probe of a sampled
	// object carries it, so the resolve hops and the final landing are
	// recorded under the same ID. The span context chains across probes —
	// each probe carries the previous server's span ID (echoed in its reply)
	// as parent and the probe count as hop, so the servers' spans form one
	// path rooted at the first contact's ingress span.
	traceID := c.nextTraceID()
	var parentSpan uint64
	hop := 0
	chain := func(reply *core.AcceptObjectReplyMsg) {
		hop++
		if reply.SpanID != 0 {
			parentSpan = reply.SpanID
		}
	}

	// Fast path: cached binding (paper §6 — "simply caches this server
	// value").
	if g, srv, ok := c.router.Route(key); ok {
		res, reply, err := c.acceptObject(string(srv), key, g.Depth(), kind, payload, traceID, parentSpan, hop)
		switch {
		case err != nil && !IsRemote(err):
			// The cached server is gone; evict everything it owned.
			c.router.ForgetServer(srv)
		case err != nil:
			c.router.Forget(g)
		case res.Status == core.StatusOK || res.Status == core.StatusOKCorrected:
			c.router.Learn(res.Group, srv)
			c.lastDepth.Store(int64(res.CorrectDepth))
			return &PublishResult{Server: string(srv), Group: res.Group, Probes: 1, Matches: reply.Matches}, nil
		default:
			// INCORRECT_DEPTH: the cached group moved or changed depth.
			c.router.Forget(g)
			chain(reply)
		}
	}

	// Slow path: the modified binary search over the depth, probing through
	// the DHT.
	var (
		lastAddr    string
		lastMatches []string
	)
	probe := func(d int) (core.AcceptObjectResult, error) {
		prefix, err := key.Prefix(d)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		vk, err := bitkey.NewGroup(prefix).VirtualKey(c.keyBits)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		addr, err := c.lookupOwner(vk)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		res, reply, err := c.acceptObject(addr, key, d, kind, payload, traceID, parentSpan, hop)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		chain(reply)
		if res.Status == core.StatusOK || res.Status == core.StatusOKCorrected {
			lastAddr = addr
			lastMatches = reply.Matches
		}
		return res, nil
	}
	rr, err := core.ResolveDepth(c.keyBits, int(c.lastDepth.Load()), core.SearchBinary, probe)
	if err != nil {
		return nil, err
	}
	c.router.Learn(rr.Group, core.ServerID(lastAddr))
	c.lastDepth.Store(int64(rr.Depth))
	return &PublishResult{Server: lastAddr, Group: rr.Group, Probes: rr.Probes, Matches: lastMatches}, nil
}

// Publish delivers one data packet to the overlay node responsible for its
// identifier key and returns where it landed and which continuous queries it
// matched.
func (c *Client) Publish(key bitkey.Key, attrs map[string]float64, payload []byte) (*PublishResult, error) {
	msg := dataMsg{Attrs: attrs, Payload: payload}
	data := marshalMsg(&msg)
	defer wirecodec.PutBuf(data)
	return c.deliver(key, core.ObjectData, data)
}

// Register installs a continuous query on the overlay node responsible for
// the query's identifier key. Matches are pushed to this client's transport
// address and surface on Matches().
func (c *Client) Register(q cq.Query) (*PublishResult, error) {
	data, err := q.Marshal()
	if err != nil {
		return nil, err
	}
	st := queryState{Query: data, Subscriber: c.tr.Addr()}
	payload := marshalMsg(&st)
	defer wirecodec.PutBuf(payload)
	ik, err := q.IdentifierKey(c.keyBits)
	if err != nil {
		return nil, err
	}
	return c.deliver(ik, core.ObjectQuery, payload)
}

// Resolve runs a full depth resolution for a key (bypassing the cache) and
// returns the search result. It is the probing primitive clashload uses to
// measure resolution cost.
func (c *Client) Resolve(key bitkey.Key) (core.ResolveResult, error) {
	if key.Bits != c.keyBits {
		return core.ResolveResult{}, fmt.Errorf("%w: key %d bits, want %d", core.ErrBadKey, key.Bits, c.keyBits)
	}
	probe := func(d int) (core.AcceptObjectResult, error) {
		prefix, err := key.Prefix(d)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		vk, err := bitkey.NewGroup(prefix).VirtualKey(c.keyBits)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		addr, err := c.lookupOwner(vk)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		res, _, err := c.acceptObject(addr, key, d, core.ObjectData, nil, 0, 0, 0)
		if err != nil {
			return core.AcceptObjectResult{}, err
		}
		return res, nil
	}
	return core.ResolveDepth(c.keyBits, int(c.lastDepth.Load()), core.SearchBinary, probe)
}
