package overlay

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/core"
	"clash/internal/cq"
	"clash/internal/load"
)

// testConfig is the shared small-scale configuration: a 16-bit key space, a
// four-group initial partition and a 200-packet/interval capacity so a burst
// of test traffic overloads a node deterministically.
func testConfig() Config {
	return Config{
		KeyBits:           16,
		Space:             chord.DefaultSpace(),
		BootstrapDepth:    2,
		Model:             load.DefaultModel(200),
		LoadCheckInterval: time.Second,
	}
}

// buildOverlay boots n nodes on one in-memory fabric, converges the chord
// ring and distributes the root groups to their hash owners.
func buildOverlay(t *testing.T, netw *MemNetwork, n int, cfg Config) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := NewNode(netw.Endpoint(fmt.Sprintf("node-%d", i)), cfg)
		if err != nil {
			t.Fatalf("NewNode %d: %v", i, err)
		}
		nodes[i] = node
	}
	if err := nodes[0].BootstrapRoots(); err != nil {
		t.Fatalf("BootstrapRoots: %v", err)
	}
	for _, node := range nodes[1:] {
		if err := node.Join(nodes[0].Addr()); err != nil {
			t.Fatalf("Join(%s): %v", node.Addr(), err)
		}
	}
	converge(nodes, 12)
	// Two load checks hand every root group to its current hash owner.
	for i := 0; i < 2; i++ {
		for _, node := range nodes {
			node.LoadCheck(time.Now())
		}
	}
	return nodes
}

// converge runs full chord maintenance rounds on every node.
func converge(nodes []*Node, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, node := range nodes {
			_ = node.chord.Stabilize()
			node.chord.CheckPredecessor()
			_ = node.chord.FixAllFingers()
		}
	}
}

// checkAll runs one load-check round on every node.
func checkAll(nodes []*Node) {
	for _, node := range nodes {
		node.LoadCheck(time.Now())
	}
}

func sumCounters(nodes []*Node) core.Counters {
	var sum core.Counters
	for _, node := range nodes {
		c := node.Server().Counters()
		sum.Splits += c.Splits
		sum.Merges += c.Merges
		sum.GroupsAccepted += c.GroupsAccepted
		sum.GroupsReleased += c.GroupsReleased
		sum.ObjectsOK += c.ObjectsOK
		sum.ObjectsCorrect += c.ObjectsCorrect
		sum.ObjectsWrong += c.ObjectsWrong
	}
	return sum
}

func activeGroups(nodes []*Node) map[string]string {
	out := make(map[string]string)
	for _, node := range nodes {
		for _, g := range node.Server().ActiveGroups() {
			out[g.String()] = node.Addr()
		}
	}
	return out
}

// TestOverlayRootDistribution checks that bootstrap groups migrate to the
// nodes their virtual keys hash to once the ring has formed.
func TestOverlayRootDistribution(t *testing.T) {
	netw := NewMemNetwork()
	nodes := buildOverlay(t, netw, 3, testConfig())
	groups := activeGroups(nodes)
	if len(groups) != 4 {
		t.Fatalf("active groups = %v, want the 4 roots", groups)
	}
	for label, holder := range groups {
		g := bitkey.MustParseGroup(label)
		vk, err := g.VirtualKey(16)
		if err != nil {
			t.Fatal(err)
		}
		owner, err := nodes[0].mapGroup(vk)
		if err != nil {
			t.Fatalf("mapGroup(%s): %v", label, err)
		}
		if string(owner) != holder {
			t.Errorf("group %s held by %s, hash owner is %s", label, holder, owner)
		}
	}
}

// TestOverlayEndToEnd is the acceptance scenario: a 3-node overlay on the
// in-memory transport serves workload traffic; a client resolves depth and
// routes packets; a deliberately heated key group triggers a real split with
// an ACCEPT_KEYGROUP transfer over the wire; a cooled sibling pair
// consolidates back; and a registered continuous query receives its matches
// across all of it.
func TestOverlayEndToEnd(t *testing.T) {
	netw := NewMemNetwork()
	cfg := testConfig()
	nodes := buildOverlay(t, netw, 3, cfg)
	seeds := []string{nodes[0].Addr(), nodes[1].Addr(), nodes[2].Addr()}

	client, err := NewClient(netw.Endpoint("client-1"), cfg.KeyBits, nodes[0].cfg.Space, seeds...)
	if err != nil {
		t.Fatal(err)
	}

	// A continuous query over the region that is about to get hot. Its
	// identifier key (001 + zero padding) rides inside the right child of
	// the first split, so the query state must survive a wire transfer.
	query := cq.Query{
		ID:         "q-hot",
		Region:     bitkey.MustParseGroup("001"),
		Predicates: []cq.Predicate{{Attr: "speed", Op: cq.OpGt, Value: 50}},
	}
	if _, err := client.Register(query); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Depth resolution for a fresh key must converge via the modified
	// binary search.
	rng := rand.New(rand.NewSource(42))
	hotKey := func() bitkey.Key {
		return bitkey.Key{Value: 0b001<<13 | rng.Uint64()&0x1FFF, Bits: cfg.KeyBits}
	}
	rr, err := client.Resolve(hotKey())
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if rr.Depth != 2 {
		t.Errorf("resolved depth = %d, want 2 (root partition)", rr.Depth)
	}

	// A matching packet must report the query and push a match notification.
	res, err := client.Publish(hotKey(), map[string]float64{"speed": 80}, []byte("evt"))
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != "q-hot" {
		t.Errorf("matches = %v, want [q-hot]", res.Matches)
	}
	select {
	case m := <-client.Matches():
		if m.QueryID != "q-hot" {
			t.Errorf("pushed match for %q, want q-hot", m.QueryID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no match notification delivered")
	}
	// A non-matching packet (predicate fails) must not match.
	if res, err := client.Publish(hotKey(), map[string]float64{"speed": 10}, nil); err != nil {
		t.Fatalf("Publish: %v", err)
	} else if len(res.Matches) != 0 {
		t.Errorf("slow packet matched %v", res.Matches)
	}

	// Heat the 001* region: 600 packets in one measurement interval is 3x
	// the configured capacity, so the owner must split and hand the hot
	// child to a peer with a real ACCEPT_KEYGROUP transfer.
	transfersBefore := netw.Calls(TypeAcceptKeyGroup)
	splitsBefore := sumCounters(nodes).Splits
	for i := 0; i < 600; i++ {
		if _, err := client.Publish(hotKey(), map[string]float64{"speed": 30}, nil); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	checkAll(nodes)
	after := sumCounters(nodes)
	if after.Splits <= splitsBefore {
		t.Fatalf("no split executed: counters %+v", after)
	}
	if netw.Calls(TypeAcceptKeyGroup) <= transfersBefore {
		t.Fatal("split did not transfer a key group over the wire")
	}
	if after.GroupsAccepted == 0 {
		t.Fatal("no peer accepted a key group")
	}

	// The overlay keeps serving the split region: cached bindings are
	// corrected via INCORRECT_DEPTH redirects and re-resolution.
	for i := 0; i < 20; i++ {
		if _, err := client.Publish(hotKey(), map[string]float64{"speed": 30}, nil); err != nil {
			t.Fatalf("Publish after split: %v", err)
		}
	}

	// The query survived the transfer: a matching packet still matches.
	res, err = client.Publish(hotKey(), map[string]float64{"speed": 99}, nil)
	if err != nil {
		t.Fatalf("Publish after split: %v", err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != "q-hot" {
		t.Errorf("matches after split = %v, want [q-hot]", res.Matches)
	}

	// Cool down: with the load gone, load reports flow parent-ward and the
	// sibling pairs consolidate back to the four roots (merges on the
	// parents, RELEASE_KEYGROUP on the children). The clock is stepped
	// virtually — one load-check interval per round, bounded rounds — so the
	// test makes deterministic progress instead of racing a wall deadline.
	now := time.Now()
	for i := 0; i < 120 && len(activeGroups(nodes)) > 4; i++ {
		now = now.Add(cfg.LoadCheckInterval)
		for _, node := range nodes {
			node.LoadCheck(now)
		}
	}
	if groups := activeGroups(nodes); len(groups) > 4 {
		t.Fatalf("overlay did not consolidate in 120 virtual periods: groups %v", groups)
	}
	final := sumCounters(nodes)
	if final.Merges == 0 {
		t.Fatal("no merges executed during cooldown")
	}
	if final.GroupsReleased == 0 {
		t.Fatal("no RELEASE_KEYGROUP processed during cooldown")
	}
	if netw.Calls(TypeLoadReport) == 0 {
		t.Fatal("no load reports crossed the wire")
	}

	// And the query still matches after consolidation pulled it back.
	res, err = client.Publish(hotKey(), map[string]float64{"speed": 70}, nil)
	if err != nil {
		t.Fatalf("Publish after merge: %v", err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != "q-hot" {
		t.Errorf("matches after merge = %v, want [q-hot]", res.Matches)
	}

	// The status snapshot reflects the run.
	st := nodes[0].Status()
	if st.Addr != nodes[0].Addr() || len(st.Successors) == 0 {
		t.Errorf("bad status: %+v", st)
	}
	if len(st.Series) == 0 {
		t.Error("status carries no metrics series")
	}
}

// TestOverlayNodeFailureReroutesClients checks that a client whose cached
// server dies evicts the dead bindings and re-resolves through the ring once
// the overlay has repaired itself.
func TestOverlayNodeFailureReroutesClients(t *testing.T) {
	netw := NewMemNetwork()
	cfg := testConfig()
	nodes := buildOverlay(t, netw, 4, cfg)

	// Find a node that holds at least one root group and a key inside it.
	groups := activeGroups(nodes)
	var victim *Node
	var victimGroup bitkey.Group
	for label, holder := range groups {
		for _, node := range nodes {
			if node.Addr() == holder && node != nodes[0] {
				victim = node
				victimGroup = bitkey.MustParseGroup(label)
			}
		}
	}
	if victim == nil {
		t.Skip("all groups landed on the bootstrap node; ring too small")
	}

	seeds := []string{nodes[0].Addr()}
	client, err := NewClient(netw.Endpoint("client-f"), cfg.KeyBits, cfg.Space, seeds...)
	if err != nil {
		t.Fatal(err)
	}
	key := bitkey.Key{Value: victimGroup.Prefix.Value << uint(cfg.KeyBits-victimGroup.Depth()), Bits: cfg.KeyBits}
	if _, err := client.Publish(key, nil, nil); err != nil {
		t.Fatalf("Publish before failure: %v", err)
	}

	// Kill the victim. The chord ring repairs around it; the failed group's
	// hash point falls to another node, which re-installs the group when the
	// survivors' reconciliation cannot find it... but since the victim held
	// the only copy, the group is gone — survivors re-bootstrap is out of
	// scope, so assert only that the ring repairs and unrelated keys still
	// publish.
	netw.SetDown(victim.Addr(), true)
	converge(nodesWithout(nodes, victim), 12)
	checkAll(nodesWithout(nodes, victim))

	for label, holder := range activeGroups(nodesWithout(nodes, victim)) {
		if holder == victim.Addr() {
			t.Errorf("dead node still listed as holder of %s", label)
		}
		g := bitkey.MustParseGroup(label)
		k := bitkey.Key{Value: g.Prefix.Value << uint(cfg.KeyBits-g.Depth()), Bits: cfg.KeyBits}
		if _, err := client.Publish(k, nil, nil); err != nil {
			t.Errorf("Publish %s after failure: %v", label, err)
		}
	}
}

func nodesWithout(nodes []*Node, skip *Node) []*Node {
	out := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if n != skip {
			out = append(out, n)
		}
	}
	return out
}
