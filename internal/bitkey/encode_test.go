package bitkey

import (
	"math/rand"
	"testing"
)

func TestQuadTreeEncoderValidation(t *testing.T) {
	if _, err := NewQuadTreeEncoder(0, 0, 1, 1, 3); err == nil {
		t.Error("odd bit length accepted, want error")
	}
	if _, err := NewQuadTreeEncoder(0, 0, 1, 1, 0); err == nil {
		t.Error("zero bit length accepted, want error")
	}
	if _, err := NewQuadTreeEncoder(1, 0, 1, 1, 8); err == nil {
		t.Error("empty region accepted, want error")
	}
}

func TestQuadTreeEncodeQuadrants(t *testing.T) {
	e, err := NewQuadTreeEncoder(0, 0, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x, y float64
		want string
	}{
		{0.1, 0.1, "00"}, // bottom-left
		{0.9, 0.1, "01"}, // bottom-right
		{0.1, 0.9, "10"}, // top-left
		{0.9, 0.9, "11"}, // top-right
	}
	for _, tt := range tests {
		k, err := e.Encode(tt.x, tt.y)
		if err != nil {
			t.Fatal(err)
		}
		if k.String() != tt.want {
			t.Errorf("Encode(%g,%g) = %s, want %s", tt.x, tt.y, k.String(), tt.want)
		}
	}
	if _, err := e.Encode(1.5, 0.5); err == nil {
		t.Error("out-of-range point accepted, want error")
	}
}

func TestQuadTreeNearbyPointsShareLongPrefixes(t *testing.T) {
	e, err := NewQuadTreeEncoder(0, 0, 1024, 1024, 24)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := e.Encode(100.0, 200.0)
	b, _ := e.Encode(100.5, 200.5) // ~0.7 units away
	c, _ := e.Encode(900.0, 900.0) // far away
	near := LongestCommonPrefix(a, b)
	far := LongestCommonPrefix(a, c)
	if near <= far {
		t.Errorf("nearby points share prefix %d, distant points %d; expected nearby > distant", near, far)
	}
	if near < 16 {
		t.Errorf("points <1 unit apart in a 1024-unit grid should share a long prefix, got %d", near)
	}
}

func TestQuadTreeCellBoundsContainEncodedPoint(t *testing.T) {
	e, err := NewQuadTreeEncoder(-180, -90, 180, 90, 24)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		x := rng.Float64()*360 - 180
		y := rng.Float64()*180 - 90
		k, err := e.Encode(x, y)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d <= 24; d += 4 {
			g, err := Shape(k, d)
			if err != nil {
				t.Fatal(err)
			}
			minX, minY, maxX, maxY := e.CellBounds(g)
			if x < minX || x >= maxX || y < minY || y >= maxY {
				t.Fatalf("point (%g,%g) outside bounds of its depth-%d cell [%g,%g)x[%g,%g)",
					x, y, d, minX, maxX, minY, maxY)
			}
		}
	}
}

func TestAttributeEncoder(t *testing.T) {
	// Three levels: region (4), city (8), category (16) → 2+3+4 = 9 bits.
	e, err := NewAttributeEncoder(4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bits() != 9 {
		t.Fatalf("Bits() = %d, want 9", e.Bits())
	}
	k, err := e.Encode(2, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if k.String() != "101011001" {
		t.Errorf("Encode(2,5,9) = %s, want 101011001", k.String())
	}
	// Objects agreeing on leading attributes share prefixes.
	k2, _ := e.Encode(2, 5, 15)
	k3, _ := e.Encode(3, 5, 9)
	if LongestCommonPrefix(k, k2) < 5 {
		t.Error("same region+city should share at least the first 5 bits")
	}
	if LongestCommonPrefix(k, k3) >= 2 {
		t.Error("different region should diverge within the first 2 bits")
	}
}

func TestAttributeEncoderValidation(t *testing.T) {
	if _, err := NewAttributeEncoder(); err == nil {
		t.Error("no levels accepted, want error")
	}
	if _, err := NewAttributeEncoder(1); err == nil {
		t.Error("fan-out 1 accepted, want error")
	}
	e, err := NewAttributeEncoder(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Encode(1); err == nil {
		t.Error("wrong arity accepted, want error")
	}
	if _, err := e.Encode(4, 0); err == nil {
		t.Error("out-of-range value accepted, want error")
	}
}
