package overlay

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"clash/internal/bitkey"
	"clash/internal/cq"
	"clash/internal/wirecodec"
)

// overlayWireCases returns one populated instance of every overlay-local
// wire message (round-trip and fuzz tests iterate them).
func overlayWireCases() []wireMsg {
	return []wireMsg{
		&nodeRefMsg{Addr: "10.0.0.1:7001", ID: 1<<63 - 1},
		&findSuccessorMsg{ID: 424242},
		&notifyMsg{Candidate: nodeRefMsg{Addr: "n2", ID: 7}},
		&dataMsg{Attrs: map[string]float64{"speed": 88.5, "lat": -12.25}, Payload: []byte("record")},
		&dataMsg{},
		&queryState{Query: []byte(`{"id":"q"}`), Subscriber: "client-1"},
		&childMovedMsg{GroupValue: 0b101, GroupBits: 3, Holder: "n3"},
		&matchMsg{QueryID: "q-hot", KeyValue: 0xBEEF, KeyBits: 16,
			Attrs: map[string]float64{"speed": 99}, Payload: []byte("evt")},
	}
}

func TestOverlayMsgWireRoundTrip(t *testing.T) {
	for _, msg := range overlayWireCases() {
		enc := msg.MarshalWire(nil)
		// Decode into a fresh instance of the same concrete type.
		got := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(wireMsg)
		if err := got.UnmarshalWire(enc); err != nil {
			t.Fatalf("UnmarshalWire(%T): %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%T round trip = %+v, want %+v", msg, got, msg)
		}
	}
}

func TestOverlayMsgWireRejectsTruncation(t *testing.T) {
	for _, msg := range overlayWireCases() {
		enc := msg.MarshalWire(nil)
		for i := 0; i < len(enc); i++ {
			got := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(wireMsg)
			err := got.UnmarshalWire(enc[:i])
			if err == nil {
				// The append-only evolution contract makes one class of
				// truncation legal: a prefix that drops whole appended
				// optional fields is exactly what an old writer would have
				// sent. Such a prefix must decode back to the original
				// message (the dropped fields were zero, so re-encoding
				// reproduces the full frame); anything else is a malformed
				// frame the decoder wrongly accepted.
				if !bytes.Equal(got.MarshalWire(nil), enc) {
					t.Errorf("%T accepted %d-byte truncation of %d bytes", msg, i, len(enc))
				}
				continue
			}
		}
	}
}

// TestAttrCountGuard pins the over-allocation guard: an attribute count
// larger than the remaining input could possibly encode (9 bytes minimum
// per entry) must be rejected before the map is allocated.
func TestAttrCountGuard(t *testing.T) {
	// Count says 1000 attrs, but only ~20 bytes follow.
	hostile := wirecodec.AppendInt(nil, 1000)
	hostile = append(hostile, bytes.Repeat([]byte{0x01}, 20)...)
	var d dataMsg
	if err := d.UnmarshalWire(hostile); err == nil {
		t.Error("dataMsg accepted hostile attr count")
	}
	var m matchMsg
	withPrefix := wirecodec.AppendString(nil, "q")
	withPrefix = wirecodec.AppendInt(withPrefix, 8)
	withPrefix = wirecodec.AppendUvarint(withPrefix, 5)
	withPrefix = append(withPrefix, hostile...)
	if err := m.UnmarshalWire(withPrefix); err == nil {
		t.Error("matchMsg accepted hostile attr count")
	}
	// A legitimate boundary case still decodes: one attr in exactly 9+ bytes.
	ok := (&dataMsg{Attrs: map[string]float64{"": 1}}).MarshalWire(nil)
	var d2 dataMsg
	if err := d2.UnmarshalWire(ok); err != nil {
		t.Errorf("minimal attr map rejected: %v", err)
	}
}

// TestTypeRegistryBijective pins the name↔byte mapping: every registered
// name resolves to a distinct byte and back.
func TestTypeRegistryBijective(t *testing.T) {
	seen := map[byte]string{}
	for name, b := range typeRegistry {
		if prev, dup := seen[b]; dup {
			t.Errorf("type byte %#x assigned to both %q and %q", b, prev, name)
		}
		seen[b] = name
		if typeName(b) != name {
			t.Errorf("typeName(%#x) = %q, want %q", b, typeName(b), name)
		}
	}
	if typeName(0x7E) != "" {
		t.Errorf("unassigned byte resolved to %q", typeName(0x7E))
	}
	if _, err := typeByte("no.such.type"); err == nil {
		t.Error("typeByte accepted an unregistered name")
	}
}

// prefixKey builds a key whose top bits are prefix (of prefixBits) and whose
// remaining bits come from low.
func prefixKey(t *testing.T, keyBits int, prefix uint64, prefixBits int, low uint64) bitkey.Key {
	t.Helper()
	rest := keyBits - prefixBits
	k, err := bitkey.New(prefix<<uint(rest)|low&(1<<uint(rest)-1), keyBits)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestBatchThroughOverlay drives the batched publish path end to end: a
// client warms its route cache, then publishes a batch that must cross as
// one TypeAcceptBatch frame per server, match continuous queries inline and
// keep per-item accounting.
func TestBatchThroughOverlay(t *testing.T) {
	netw := NewMemNetwork()
	cfg := testConfig()
	nodes := buildOverlay(t, netw, 3, cfg)
	seeds := []string{nodes[0].Addr(), nodes[1].Addr(), nodes[2].Addr()}

	client, err := NewClient(netw.Endpoint("batch-client"), cfg.KeyBits, cfg.Space, seeds...)
	if err != nil {
		t.Fatal(err)
	}

	query := cq.Query{
		ID:         "q-batch",
		Region:     bitkey.MustParseGroup("001"),
		Predicates: []cq.Predicate{{Attr: "speed", Op: cq.OpGt, Value: 50}},
	}
	if _, err := client.Register(query); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Warm the cache across all four root groups.
	for top := uint64(0); top < 4; top++ {
		if _, err := client.Publish(prefixKey(t, cfg.KeyBits, top, 2, top*17+1), nil, nil); err != nil {
			t.Fatalf("warmup publish: %v", err)
		}
	}
	// Batch across the four depth-3 regions 000..011; every packet passes
	// the predicate, so exactly the 001* items must match the query.
	const n = 64
	var items []BatchItem
	for i := 0; i < n; i++ {
		items = append(items, BatchItem{
			Key:   prefixKey(t, cfg.KeyBits, uint64(i%4), 3, uint64(i)),
			Attrs: map[string]float64{"speed": 80},
		})
	}
	batchFramesBefore := netw.Calls(TypeAcceptBatch)
	singlesBefore := netw.Calls(TypeAcceptObject)
	results, errs := client.PublishBatch(items)
	for i := range items {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if results[i] == nil || results[i].Server == "" {
			t.Fatalf("item %d: missing result", i)
		}
	}
	batchFrames := netw.Calls(TypeAcceptBatch) - batchFramesBefore
	if batchFrames == 0 {
		t.Fatal("no TypeAcceptBatch frame crossed the wire")
	}
	holders := map[string]bool{}
	for _, r := range results {
		holders[r.Server] = true
	}
	if batchFrames > len(holders) {
		t.Errorf("batch used %d frames for %d servers", batchFrames, len(holders))
	}
	if got := netw.Calls(TypeAcceptObject) - singlesBefore; got != 0 {
		t.Errorf("%d single-object frames sent despite warm cache", got)
	}
	matched := 0
	for i, r := range results {
		inRegion := i%4 == 1
		if got := len(r.Matches) > 0; got != inRegion {
			t.Errorf("item %d: matched=%v, in 001* region=%v", i, got, inRegion)
		}
		if len(r.Matches) > 0 {
			matched++
		}
	}
	if matched != n/4 {
		t.Errorf("matched %d items, want %d", matched, n/4)
	}
}

// TestBatcherFlushes exercises the size- and interval-triggered flushes.
func TestBatcherFlushes(t *testing.T) {
	netw := NewMemNetwork()
	cfg := testConfig()
	nodes := buildOverlay(t, netw, 2, cfg)
	client, err := NewClient(netw.Endpoint("batcher-client"), cfg.KeyBits, cfg.Space, nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	done := 0
	b := client.NewBatcher(8, 20*time.Millisecond, func(item BatchItem, res *PublishResult, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			t.Errorf("batched publish of %v: %v", item.Key, err)
			return
		}
		done++
	})
	for i := 0; i < 20; i++ {
		if err := b.Publish(prefixKey(t, cfg.KeyBits, uint64(i%4), 2, uint64(i)), nil, nil); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if done != 20 {
		t.Errorf("delivered %d of 20 batched packets", done)
	}
	if err := b.Publish(prefixKey(t, cfg.KeyBits, 0, 2, 0), nil, nil); err == nil {
		t.Error("Publish after Close succeeded")
	}
}

// frameBytesEqualAcrossEncoders double-checks that repeated encodes of the
// same frame are identical (the codec is deterministic for identical input).
func TestFrameEncodeDeterministic(t *testing.T) {
	payload := (&findSuccessorMsg{ID: 99}).MarshalWire(nil)
	a, err := appendFrame(nil, 7, typeFindSuccessor, payload)
	if err != nil {
		t.Fatal(err)
	}
	b, err := appendFrame(nil, 7, typeFindSuccessor, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same frame encoded differently twice")
	}
}

func TestReplicateMsgWireRoundTrip(t *testing.T) {
	m := replicateMsg{
		Origin:      "node-7",
		Incarnation: 123456789,
		Version:     42,
		Groups: []replicaGroupRec{
			{GroupValue: 0b01, GroupBits: 2, Parent: "node-1", IsRoot: true, Epoch: 3,
				Queries: [][]byte{[]byte(`{"id":"q1"}`), []byte(`{"id":"q2"}`)}},
			{GroupValue: 0b110, GroupBits: 3, Parent: "", Epoch: 0},
		},
		Loose: [][]byte{[]byte(`{"id":"q-loose"}`)},
	}
	var got replicateMsg
	if err := got.UnmarshalWire(m.MarshalWire(nil)); err != nil {
		t.Fatalf("UnmarshalWire: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}

	r := recoverMsg{Origin: "node-7"}
	var gotR recoverMsg
	if err := gotR.UnmarshalWire(r.MarshalWire(nil)); err != nil {
		t.Fatalf("recoverMsg: %v", err)
	}
	if gotR != r {
		t.Errorf("recover round trip = %+v, want %+v", gotR, r)
	}

	// A truncation cutting into the Loose section must error. (Dropping the
	// trailing trace context alone is legal — that is an old writer's frame —
	// so the cut reaches one byte further, into the last loose entry.)
	bad := append([]byte(nil), m.MarshalWire(nil)...)
	var trunc replicateMsg
	if err := trunc.UnmarshalWire(bad[:len(bad)-4]); err == nil {
		t.Error("truncated replicateMsg decoded without error")
	}
}

// TestOverlayTraceContextWire pins the PR 9 wire evolution of the two
// overlay-local messages that carry a sampled publish's trace context:
// matchMsg (behind Payload) and replicateMsg (behind the Loose section).
// Frames from pre-span writers decode untraced, and pre-span readers of new
// frames stop cleanly with the trace bytes left trailing.
func TestOverlayTraceContextWire(t *testing.T) {
	mm := matchMsg{QueryID: "q1", KeyValue: 0b1010, KeyBits: 16,
		Attrs: map[string]float64{"speed": 61}, Payload: []byte("evt"),
		TraceID: 0xAB, ParentSpan: 0xCD, Hop: 3}
	var gotM matchMsg
	if err := gotM.UnmarshalWire(mm.MarshalWire(nil)); err != nil {
		t.Fatalf("matchMsg round trip: %v", err)
	}
	if !reflect.DeepEqual(gotM, mm) {
		t.Errorf("matchMsg round trip = %+v, want %+v", gotM, mm)
	}

	// New decoder, old encoder: the pre-span layout stops after Payload.
	old := wirecodec.AppendString(nil, mm.QueryID)
	old = wirecodec.AppendInt(old, mm.KeyBits)
	old = wirecodec.AppendUvarint(old, mm.KeyValue)
	old = appendAttrs(old, mm.Attrs)
	old = wirecodec.AppendBytes(old, mm.Payload)
	var legacy matchMsg
	if err := legacy.UnmarshalWire(old); err != nil {
		t.Fatalf("legacy matchMsg decode: %v", err)
	}
	if legacy.TraceID != 0 || legacy.ParentSpan != 0 || legacy.Hop != 0 {
		t.Errorf("legacy matchMsg decoded trace context (%d,%d,%d), want zeros",
			legacy.TraceID, legacy.ParentSpan, legacy.Hop)
	}
	if legacy.QueryID != mm.QueryID || !bytes.Equal(legacy.Payload, mm.Payload) {
		t.Errorf("legacy matchMsg = %+v, want pre-span fields of %+v", legacy, mm)
	}

	// Old decoder, new encoder: a pre-span reader stops after Payload and
	// ignores the trailing trace bytes.
	r := wirecodec.NewReader(mm.MarshalWire(nil))
	_ = r.String()  // query id
	_ = r.Int()     // key bits
	_ = r.Uvarint() // key value
	if _, err := readAttrs(r); err != nil {
		t.Fatalf("old-shape matchMsg attrs: %v", err)
	}
	_ = r.Bytes() // payload
	if err := r.Err(); err != nil {
		t.Fatalf("old-shape decode of new matchMsg: %v", err)
	}
	if r.Len() == 0 {
		t.Error("new matchMsg carries no trailing trace bytes to ignore")
	}

	rm := replicateMsg{Origin: "n1", Incarnation: 9, Version: 2,
		Groups: []replicaGroupRec{{GroupValue: 1, GroupBits: 2, Queries: [][]byte{[]byte("q")}}},
		Loose:  [][]byte{[]byte("lq")}, TraceID: 7, ParentSpan: 8, Hop: 1}
	var gotR replicateMsg
	if err := gotR.UnmarshalWire(rm.MarshalWire(nil)); err != nil {
		t.Fatalf("replicateMsg round trip: %v", err)
	}
	if !reflect.DeepEqual(gotR, rm) {
		t.Errorf("replicateMsg round trip = %+v, want %+v", gotR, rm)
	}

	// New decoder, Loose-era (pre-span) encoder: origin, incarnation,
	// version, group records, loose entries — and nothing after.
	old = wirecodec.AppendString(nil, rm.Origin)
	old = wirecodec.AppendUvarint(old, rm.Incarnation)
	old = wirecodec.AppendUvarint(old, rm.Version)
	old = wirecodec.AppendInt(old, len(rm.Groups))
	for i := range rm.Groups {
		old = wirecodec.AppendBytes(old, rm.Groups[i].MarshalWire(nil))
	}
	old = wirecodec.AppendInt(old, len(rm.Loose))
	for _, q := range rm.Loose {
		old = wirecodec.AppendBytes(old, q)
	}
	var legacyR replicateMsg
	if err := legacyR.UnmarshalWire(old); err != nil {
		t.Fatalf("legacy replicateMsg decode: %v", err)
	}
	if legacyR.TraceID != 0 || legacyR.ParentSpan != 0 || legacyR.Hop != 0 {
		t.Errorf("legacy replicateMsg decoded trace context (%d,%d,%d), want zeros",
			legacyR.TraceID, legacyR.ParentSpan, legacyR.Hop)
	}
	if len(legacyR.Loose) != 1 || !bytes.Equal(legacyR.Loose[0], rm.Loose[0]) {
		t.Errorf("legacy replicateMsg loose section = %v, want %v", legacyR.Loose, rm.Loose)
	}
}
