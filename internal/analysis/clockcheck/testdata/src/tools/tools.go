// Package tools is not sim-driven: wall-clock reads are fine here.
package tools

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func Stamp() time.Time {
	return time.Now()
}
