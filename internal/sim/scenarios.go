package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"clash/internal/load"
	"clash/internal/sim/link"
	"clash/internal/workload"
)

// Named builds one of the predefined scenarios with the given node count and
// seed (nodes <= 0 selects the scenario's default size). The four names cover
// the behaviors the paper's evaluation exercises:
//
//	split-merge     a heavy-skew load wave forces load-driven splits, then
//	                the cooldown consolidates the tree back (the §6 Figure 4
//	                shape); lossless WAN links, so every CQ match must arrive
//	churn           nodes crash and rejoin throughout a steady workload on a
//	                lossy WAN; the ring and the key-space coverage must be
//	                whole at the end
//	flash-crowd     a uniform baseline, then most traffic slams one narrow
//	                key region and decays again
//	partition-heal  the fabric splits in two for several periods, heals, and
//	                the isolated side rejoins; the ring and coverage must
//	                recover
//	slow-node       a tenth of the nodes turn gray — alive but 50x slower —
//	                for the whole run; the ring must converge, no CQ may be
//	                lost, and the healthy nodes' maintenance tick cost must
//	                stay bounded (one slow peer must not wedge everyone)
//	asym-partition  one direction to a minority is blackholed for a window
//	                (requests vanish, the reverse half-works), then heals;
//	                coverage must recover with no overlapping group ownership
func Named(name string, nodes int, seed int64) (Scenario, error) {
	switch name {
	case "split-merge":
		return splitMerge(nodes, seed), nil
	case "churn":
		return churn(nodes, seed), nil
	case "churn-durable":
		return churnDurable(nodes, seed), nil
	case "flash-crowd":
		return flashCrowd(nodes, seed), nil
	case "partition-heal":
		return partitionHeal(nodes, seed), nil
	case "slow-node":
		return slowNode(nodes, seed), nil
	case "asym-partition":
		return asymPartition(nodes, seed), nil
	default:
		return Scenario{}, fmt.Errorf("sim: unknown scenario %q (have %v)", name, Names())
	}
}

// Names lists the predefined scenario names.
func Names() []string {
	out := []string{"split-merge", "churn", "churn-durable", "flash-crowd",
		"partition-heal", "slow-node", "asym-partition"}
	sort.Strings(out)
	return out
}

// bootstrapDepthFor picks the initial partition depth: roughly one root group
// per 16 nodes, at least the paper's depth-2 partition, at most depth 8.
func bootstrapDepthFor(nodes int) int {
	d := int(math.Round(math.Log2(float64(nodes)/16 + 1)))
	return min(max(d+2, 2), 8)
}

// base fills the scenario fields every named scenario shares.
func base(name string, nodes, defaultNodes int, seed int64) Scenario {
	if nodes <= 0 {
		nodes = defaultNodes
	}
	return Scenario{
		Name:           name,
		Nodes:          nodes,
		Seed:           seed,
		KeyBits:        workload.DefaultKeyBits,
		BootstrapDepth: bootstrapDepthFor(nodes),
		Capacity:       50,
		Workload:       workload.WorkloadC,
		CheckEvery:     30 * time.Second,
		StabilizeEvery: 7500 * time.Millisecond,
		Queries:        64,
		Link:           link.WAN(20*time.Millisecond, 0),
	}
}

func splitMerge(nodes int, seed int64) Scenario {
	sc := base("split-merge", nodes, 300, seed)
	// The hot wave is sized from the workload's own base distribution so the
	// hottest root group lands at ~4x the overload threshold at any overlay
	// size (a deeper bootstrap partition spreads the skew thinner, so the
	// aggregate rate must rise to overload the peak's holder).
	hot := hotPacketsFor(sc, 4)
	sc.Phases = []Phase{
		{Name: "warm", Ticks: 2, Packets: hot / 10},
		{Name: "hot", Ticks: 5, Packets: hot},
		{Name: "cool", Ticks: 11, Packets: hot / 100},
	}
	// Trace a sample of the publishes (links are lossless here, so every
	// sampled publish's hop spans must assemble into one complete tree).
	sc.TraceEvery = 16
	sc.Expect = Expect{
		MinSplits:           1,
		MinMerges:           1,
		AllMatchesDelivered: true,
		CoverageComplete:    true,
		RingConverged:       true,
		EventsConsistent:    true,
		SpansComplete:       true,
	}
	return sc
}

func churn(nodes int, seed int64) Scenario {
	sc := base("churn", nodes, 200, seed)
	sc.Workload = workload.WorkloadB
	sc.Link = link.WAN(20*time.Millisecond, 0.002)
	pkts := int(sc.Capacity * sc.CheckEverySeconds())
	sc.Phases = []Phase{
		{Name: "steady", Ticks: 18, Packets: pkts},
	}
	churn := max(sc.Nodes/10, 1)
	sc.Churn = []ChurnEvent{
		{Tick: 2, Crash: churn},
		{Tick: 4, Crash: churn},
		{Tick: 6, Rejoin: churn},
		{Tick: 7, Crash: churn},
		{Tick: 9, Rejoin: 2 * churn},
	}
	sc.Expect = Expect{CoverageComplete: true, MaxRingDrift: max(sc.Nodes/50, 2)}
	return sc
}

// churnDurable is the durability scenario: waves of crashes target the nodes
// actually holding key groups (cumulatively well past 20% of the holders),
// nobody rejoins, and at the end every continuous query registered at boot
// must both still be stored on a live node and match a probe packet — i.e.
// successor-list replication must have recovered every crashed holder's
// state. The links are lossless so a lost query is attributable to the
// crashes alone, and the crashed capacity stays gone (no rejoin masks a hole
// in the recovery path).
func churnDurable(nodes int, seed int64) Scenario {
	sc := base("churn-durable", nodes, 200, seed)
	sc.Workload = workload.WorkloadB
	sc.Replicas = 3
	pkts := int(sc.Capacity * sc.CheckEverySeconds())
	sc.Phases = []Phase{
		{Name: "steady", Ticks: 18, Packets: pkts},
	}
	sc.Churn = []ChurnEvent{
		{Tick: 3, CrashHolderFrac: 0.10},
		{Tick: 6, CrashHolderFrac: 0.08},
		{Tick: 9, CrashHolderFrac: 0.07},
		{Tick: 12, CrashHolderFrac: 0.05},
	}
	sc.Expect = Expect{
		CoverageComplete:   true,
		RingConverged:      true,
		ZeroLostCQ:         true,
		MinHolderCrashFrac: 0.20,
	}
	return sc
}

func flashCrowd(nodes int, seed int64) Scenario {
	sc := base("flash-crowd", nodes, 200, seed)
	sc.Workload = workload.WorkloadA
	pkts := int(sc.Capacity * sc.CheckEverySeconds())
	// The crowd slams one base value with 90% of a 10x traffic spike.
	sc.Phases = []Phase{
		{Name: "baseline", Ticks: 3, Packets: pkts},
		{Name: "crowd", Ticks: 4, Packets: 10 * pkts, HotShare: 0.9, HotBase: 0xA5},
		{Name: "decay", Ticks: 9, Packets: pkts / 2},
	}
	sc.Expect = Expect{
		MinSplits:           1,
		AllMatchesDelivered: true,
		CoverageComplete:    true,
		RingConverged:       true,
		EventsConsistent:    true,
	}
	return sc
}

func partitionHeal(nodes int, seed int64) Scenario {
	sc := base("partition-heal", nodes, 120, seed)
	sc.Workload = workload.WorkloadB
	pkts := int(sc.Capacity * sc.CheckEverySeconds() / 2)
	sc.Phases = []Phase{
		{Name: "steady", Ticks: 3, Packets: pkts},
		{Name: "partitioned", Ticks: 4, Packets: pkts},
		{Name: "healed", Ticks: 9, Packets: pkts},
	}
	sc.Partition = &PartitionSpec{FromTick: 3, ToTick: 7, Fraction: 0.4}
	sc.Expect = Expect{CoverageComplete: true, RingConverged: true}
	return sc
}

// slowNode is the gray-failure scenario: a tenth of the nodes stay alive but
// answer 50x slower than the rest for the whole run — slow enough that the
// short deadline class expires on the first exchange, so the adaptive
// deadline/suspicion machinery must learn each slow peer's latency instead of
// flapping it through the ring. The invariants: the ring converges with the
// slow members in it, no continuous query is lost, and a healthy node's
// maintenance tick cost stays bounded well below what even one legacy blanket
// call timeout (10s) per tick would produce.
func slowNode(nodes int, seed int64) Scenario {
	sc := base("slow-node", nodes, 120, seed)
	sc.Workload = workload.WorkloadB
	sc.Replicas = 3
	// 30ms WAN x the 50x factor puts a slow peer's round trip at ~3s:
	// past the 2.5s short deadline (the first call always times out gray)
	// but comfortably inside the escalated and EWMA-learned deadlines.
	sc.Link = link.WAN(30*time.Millisecond, 0)
	pkts := int(sc.Capacity * sc.CheckEverySeconds() / 2)
	sc.Phases = []Phase{
		{Name: "steady", Ticks: 12, Packets: pkts},
	}
	sc.Slow = &SlowSpec{Fraction: 0.10, Factor: 50}
	// The honest steady cost of a healthy tick that walks its successor list
	// through slow peers is a few ~3s round trips (~15s p99 at this size);
	// the bound sits above that and far below the wedge it guards against —
	// a maintenance pass serialising full legacy 10s timeouts (a
	// successor-list walk alone would cost 40s).
	sc.Expect = Expect{
		CoverageComplete: true,
		RingConverged:    true,
		ZeroLostCQ:       true,
		MaxHealthyTickMs: 20000,
	}
	return sc
}

// asymPartition is the asymmetric gray partition: for a four-tick window the
// majority's requests to a 30% minority vanish in transit while the
// minority's requests still arrive (only their replies are lost), with a
// sprinkle of duplicated and late-delivered requests throughout. Both sides
// classify the other dead from opposite evidence (pure silence vs replies
// never coming back); after the heal the minority re-joins and the
// epoch-idempotent transfers must collapse any dual ownership the window
// created — coverage complete, zero overlaps, no query lost.
func asymPartition(nodes int, seed int64) Scenario {
	sc := base("asym-partition", nodes, 120, seed)
	sc.Workload = workload.WorkloadB
	sc.Replicas = 3
	sc.Link = link.WAN(20*time.Millisecond, 0)
	sc.Link.Dup = 0.01
	sc.Link.Reorder = 0.01
	pkts := int(sc.Capacity * sc.CheckEverySeconds() / 2)
	sc.Phases = []Phase{
		{Name: "steady", Ticks: 3, Packets: pkts},
		{Name: "asym", Ticks: 4, Packets: pkts},
		{Name: "healed", Ticks: 11, Packets: pkts},
	}
	sc.Asym = &AsymSpec{FromTick: 3, ToTick: 7, Fraction: 0.3}
	sc.Expect = Expect{
		CoverageComplete: true,
		RingConverged:    true,
		ZeroLostCQ:       true,
	}
	return sc
}

// CheckEverySeconds returns the load-check interval in seconds.
func (sc Scenario) CheckEverySeconds() float64 { return sc.CheckEvery.Seconds() }

// hotPacketsFor sizes a per-tick traffic burst so the hottest bootstrap root
// group receives factor times its holder's overload threshold: it aggregates
// the workload's base-value distribution into the root groups the bootstrap
// depth creates, finds the peak group's probability mass, and scales the
// burst so peak mass x packets = factor x overload rate x window.
func hotPacketsFor(sc Scenario, factor float64) int {
	spec := workload.SpecFor(sc.Workload)
	spec.KeyBits = sc.KeyBits
	gen, err := workload.NewKeyGenerator(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		// Fall back to a flat assumption; Validate in Run surfaces real
		// spec problems.
		return int(factor * sc.Capacity * sc.CheckEverySeconds())
	}
	dist := gen.BaseDistribution()
	groupBits := min(sc.BootstrapDepth, spec.BaseBits)
	width := len(dist) >> uint(groupBits)
	if width < 1 {
		width = 1
	}
	maxMass := 0.0
	for start := 0; start+width <= len(dist); start += width {
		m := 0.0
		for _, p := range dist[start : start+width] {
			m += p
		}
		maxMass = max(maxMass, m)
	}
	if sc.BootstrapDepth > spec.BaseBits {
		// Roots subdivide single base values; the uniform remainder bits
		// split the mass evenly.
		maxMass /= float64(int(1) << uint(sc.BootstrapDepth-spec.BaseBits))
	}
	if maxMass <= 0 {
		maxMass = 1.0 / float64(len(dist))
	}
	overloadRate := load.DefaultOverloadFraction * sc.Capacity
	return int(factor * overloadRate * sc.CheckEverySeconds() / maxMass)
}
