package overlay

import (
	"sync"
	"time"

	"clash/internal/chord"
)

// Suspicion-tracker tuning. The tracker is a phi-accrual-flavored failure
// detector: every RPC feeds it an observation (success with its round-trip
// latency, or a failure classified hard vs gray), and it answers two
// questions — how alive is this peer (state/score), and how long should the
// next call to it be allowed to run (timeoutFor).
const (
	// suspicionDeadAfter is how many consecutive gray failures (deadline
	// expiries, sheds) turn a suspect into a dead verdict. Hard failures
	// (connection refused, endpoint down) are dead immediately — crash-stop
	// is not gray.
	suspicionDeadAfter = 3
	// suspicionEwmaShift is the EWMA smoothing divisor: each observed RTT
	// moves the average by 1/8 of the difference.
	suspicionEwmaShift = 3
	// adaptiveRTTFactor scales the latency EWMA into a deadline floor: a
	// peer answering in t keeps a deadline of at least adaptiveRTTFactor*t,
	// which is what lets a consistently slow-but-alive node stay a ring
	// member instead of flapping through timeouts.
	adaptiveRTTFactor = 4
	// deadlineEscalationCap bounds how many consecutive gray failures may
	// double the next call's deadline (2^cap times the class deadline, still
	// clamped to the bulk ceiling).
	deadlineEscalationCap = 4
	// suspicionTTL is how long failure evidence stays decisive. A peer
	// nobody has called for this long reverts to unknown, so a stale dead
	// verdict cannot permanently exile a recovered peer.
	suspicionTTL = 60 * time.Second
	// suspicionScoreFloor is the minimum expected-round-trip interval used
	// when scoring silence, so a near-zero latency EWMA cannot blow the
	// score up.
	suspicionScoreFloor = 50 * time.Millisecond
	// suspicionScoreCap bounds the silence term of the score so one stale
	// entry cannot dominate the exported snapshot.
	suspicionScoreCap = 8
)

// SuspicionStat is one peer's exported suspicion snapshot, surfaced through
// the node status endpoint (clashd /status).
type SuspicionStat struct {
	// Score is the suspicion level: zero for a peer whose last exchange
	// succeeded, otherwise the consecutive-failure count plus how many
	// expected round-trips (adaptiveRTTFactor x the latency EWMA) have
	// elapsed since the peer last answered, capped.
	Score float64 `json:"score"`
	// EwmaRTTMs is the peer's observed round-trip latency EWMA in
	// milliseconds.
	EwmaRTTMs float64 `json:"ewmaRttMs"`
	// Fails is the consecutive failed-call count.
	Fails int `json:"fails"`
}

// peerStat is the tracked evidence for one peer.
type peerStat struct {
	ewmaRTT   time.Duration
	fails     int  // consecutive failures of any kind
	grayFails int  // consecutive gray failures (subset of fails)
	hard      bool // the failure streak contains a hard failure
	lastOK    time.Time
	lastFail  time.Time
}

// suspicion is the per-peer failure detector an overlay node consults before
// and after every RPC. It is safe for concurrent use.
type suspicion struct {
	now func() time.Time
	// onVerdict, when set, is invoked after an observation changes a peer's
	// classification (unknown/suspect/dead) — the node turns these into
	// suspicion-verdict events. Called outside the mutex; set once at node
	// construction, before any RPC can run.
	onVerdict func(addr string, prior, cur chord.PeerState)

	mu    sync.Mutex
	peers map[string]*peerStat
}

// classify derives a peer's verdict from its current evidence (the TTL-free
// core of state; verdict transitions report what the evidence says now, and
// staleness is a read-side concern).
func classify(p *peerStat) chord.PeerState {
	if p == nil || p.fails == 0 {
		return chord.PeerUnknown
	}
	if p.hard || p.grayFails >= suspicionDeadAfter {
		return chord.PeerDead
	}
	return chord.PeerSuspect
}

func newSuspicion(now func() time.Time) *suspicion {
	return &suspicion{now: now, peers: make(map[string]*peerStat)}
}

func (s *suspicion) peer(addr string) *peerStat {
	p, ok := s.peers[addr]
	if !ok {
		p = &peerStat{}
		s.peers[addr] = p
	}
	return p
}

// observeSuccess records one successful exchange and its round-trip latency,
// clearing any failure streak.
func (s *suspicion) observeSuccess(addr string, rtt time.Duration) {
	if rtt < 0 {
		rtt = 0
	}
	s.mu.Lock()
	p := s.peer(addr)
	prior := classify(p)
	if p.ewmaRTT == 0 {
		p.ewmaRTT = rtt
	} else {
		p.ewmaRTT += (rtt - p.ewmaRTT) >> suspicionEwmaShift
	}
	p.fails = 0
	p.grayFails = 0
	p.hard = false
	p.lastOK = s.now()
	cur := classify(p)
	cb := s.onVerdict
	s.mu.Unlock()
	if cb != nil && cur != prior {
		cb(addr, prior, cur)
	}
}

// observeFailure records one failed exchange. gray marks ambiguous outcomes
// (deadline expiry, shed) where the peer may be alive but slow; hard marks
// definite unreachability.
func (s *suspicion) observeFailure(addr string, gray bool) {
	s.mu.Lock()
	p := s.peer(addr)
	prior := classify(p)
	p.fails++
	if gray {
		p.grayFails++
	} else {
		p.hard = true
	}
	p.lastFail = s.now()
	cur := classify(p)
	cb := s.onVerdict
	s.mu.Unlock()
	if cb != nil && cur != prior {
		cb(addr, prior, cur)
	}
}

// state classifies a peer for the chord health oracle. Evidence older than
// suspicionTTL is not decisive.
func (s *suspicion) state(addr string) chord.PeerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.peers[addr]
	if p == nil || p.fails == 0 {
		return chord.PeerUnknown
	}
	if s.now().Sub(p.lastFail) > suspicionTTL {
		return chord.PeerUnknown
	}
	if p.hard || p.grayFails >= suspicionDeadAfter {
		return chord.PeerDead
	}
	return chord.PeerSuspect
}

// timeoutFor picks the deadline for the next call to addr: the message
// class's deadline, raised to adaptiveRTTFactor x the peer's latency EWMA
// (a slow peer earns a longer leash) and doubled per consecutive gray
// failure (a peer that just timed out gets more room before being declared
// dead), clamped to ceiling.
func (s *suspicion) timeoutFor(addr string, class, ceiling time.Duration) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := class
	if p := s.peers[addr]; p != nil {
		if adaptive := p.ewmaRTT * adaptiveRTTFactor; adaptive > d {
			d = adaptive
		}
		esc := p.grayFails
		if esc > deadlineEscalationCap {
			esc = deadlineEscalationCap
		}
		for i := 0; i < esc && d < ceiling; i++ {
			d *= 2
		}
	}
	if d > ceiling {
		d = ceiling
	}
	return d
}

// snapshot exports every peer currently carrying a failure streak, keyed by
// address.
func (s *suspicion) snapshot() map[string]SuspicionStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out map[string]SuspicionStat
	now := s.now()
	for addr, p := range s.peers {
		if p.fails == 0 {
			continue
		}
		interval := p.ewmaRTT * adaptiveRTTFactor
		if interval < suspicionScoreFloor {
			interval = suspicionScoreFloor
		}
		silence := float64(now.Sub(p.lastOK)) / float64(interval)
		if p.lastOK.IsZero() || silence > suspicionScoreCap {
			silence = suspicionScoreCap
		}
		if out == nil {
			out = make(map[string]SuspicionStat)
		}
		out[addr] = SuspicionStat{
			Score:     float64(p.fails) + silence,
			EwmaRTTMs: float64(p.ewmaRTT) / float64(time.Millisecond),
			Fails:     p.fails,
		}
	}
	return out
}
