package core

import (
	"testing"

	"clash/internal/bitkey"
)

func TestRouterLearnRouteForget(t *testing.T) {
	r := NewRouter(7)
	k := bitkey.MustParse("0110101")
	if _, _, ok := r.Route(k); ok {
		t.Error("empty router resolved a key")
	}
	r.Learn(bitkey.MustParseGroup("0110*"), "s3")
	g, srv, ok := r.Route(k)
	if !ok || srv != "s3" || g.String() != "0110*" {
		t.Errorf("Route = %v %v %v", g, srv, ok)
	}
	if _, _, ok := r.Route(bitkey.MustParse("1110101")); ok {
		t.Error("unrelated key resolved")
	}
	r.Forget(bitkey.MustParseGroup("0110*"))
	if _, _, ok := r.Route(k); ok {
		t.Error("forgotten binding still resolves")
	}
}

func TestRouterPrefersDeepestBinding(t *testing.T) {
	r := NewRouter(7)
	r.Learn(bitkey.MustParseGroup("011*"), "sOld")
	r.Learn(bitkey.MustParseGroup("01101*"), "sNew")
	g, srv, ok := r.Route(bitkey.MustParse("0110101"))
	if !ok || srv != "sNew" || g.String() != "01101*" {
		t.Errorf("Route should prefer the deepest binding, got %v %v %v", g, srv, ok)
	}
	// A key only covered by the shallow binding still resolves to it.
	g, srv, ok = r.Route(bitkey.MustParse("0111111"))
	if !ok || srv != "sOld" || g.String() != "011*" {
		t.Errorf("shallow fallback = %v %v %v", g, srv, ok)
	}
}

func TestRouterForgetServer(t *testing.T) {
	r := NewRouter(7)
	r.Learn(bitkey.MustParseGroup("00*"), "a")
	r.Learn(bitkey.MustParseGroup("01*"), "b")
	r.Learn(bitkey.MustParseGroup("10*"), "a")
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	r.ForgetServer("a")
	if r.Len() != 1 {
		t.Errorf("Len after ForgetServer = %d, want 1", r.Len())
	}
	if _, srv, ok := r.Route(bitkey.MustParse("0100000")); !ok || srv != "b" {
		t.Errorf("surviving binding lost: %v %v", srv, ok)
	}
}
