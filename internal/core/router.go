package core

import (
	"sync"

	"clash/internal/bitkey"
)

// routerShardBits selects how many leading key bits pick a router shard
// (2^4 = 16 shards). Groups at least this deep land in the shard named by
// their leading bits; shallower groups live in a shared fallback shard that is
// only consulted after a deep miss, so the common case touches one lock.
const routerShardBits = 4

// routerShard is one lock-striped slice of the cache: a longest-prefix trie
// over group prefixes plus a per-server index of the prefixes stored here, so
// ForgetServer removes exactly the affected bindings instead of scanning the
// whole cache.
type routerShard struct {
	mu       sync.RWMutex
	trie     *bitkey.Trie[ServerID]
	byServer map[ServerID]map[bitkey.Key]struct{}
}

func newRouterShard() *routerShard {
	return &routerShard{
		trie:     bitkey.NewTrie[ServerID](),
		byServer: make(map[ServerID]map[bitkey.Key]struct{}),
	}
}

func (sh *routerShard) learn(p bitkey.Key, server ServerID) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.trie.Get(p); ok && old != server {
		sh.unindex(old, p)
	}
	sh.trie.Put(p, server)
	set := sh.byServer[server]
	if set == nil {
		set = make(map[bitkey.Key]struct{})
		sh.byServer[server] = set
	}
	set[p] = struct{}{}
}

func (sh *routerShard) forget(p bitkey.Key) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if server, ok := sh.trie.Delete(p); ok {
		sh.unindex(server, p)
	}
}

func (sh *routerShard) forgetServer(server ServerID) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for p := range sh.byServer[server] {
		sh.trie.Delete(p)
	}
	delete(sh.byServer, server)
}

// unindex drops p from server's reverse-index set; callers hold sh.mu.
func (sh *routerShard) unindex(server ServerID, p bitkey.Key) {
	if set := sh.byServer[server]; set != nil {
		delete(set, p)
		if len(set) == 0 {
			delete(sh.byServer, server)
		}
	}
}

func (sh *routerShard) route(k bitkey.Key) (bitkey.Group, ServerID, bool) {
	sh.mu.RLock()
	p, s, ok := sh.trie.LongestMatch(k)
	sh.mu.RUnlock()
	if !ok {
		return bitkey.Group{}, NoServer, false
	}
	return bitkey.Group{Prefix: p}, s, true
}

func (sh *routerShard) len() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.trie.Len()
}

// Router is the client-side cache that maps key groups to the servers that
// manage them. After a client resolves the depth of a key once, it caches the
// (group → server) binding and sends all subsequent packets of the virtual
// stream directly, without DHT lookups, until it is redirected (paper §6: the
// client "simply caches this server value").
//
// The cache is a set of lock-striped longest-prefix tries: Route is one
// O(depth) zero-allocation walk under one reader lock (two on a miss of the
// deep shard), Learn/Forget touch one shard, and ForgetServer uses a reverse
// index so evicting a failed server is proportional to the bindings it owned,
// not to the cache size.
//
// Router is safe for concurrent use.
type Router struct {
	keyBits   int
	shardBits int
	shards    []*routerShard
	// shallow holds groups shallower than shardBits, which span several
	// shards; Route consults it only when the deep shard has no match (any
	// deep match is by construction longer than every shallow one).
	shallow *routerShard
}

// NewRouter creates an empty router cache for an N-bit key space.
func NewRouter(keyBits int) *Router {
	shardBits := routerShardBits
	if keyBits < shardBits {
		shardBits = 0
	}
	r := &Router{
		keyBits:   keyBits,
		shardBits: shardBits,
		shards:    make([]*routerShard, 1<<uint(shardBits)),
		shallow:   newRouterShard(),
	}
	for i := range r.shards {
		r.shards[i] = newRouterShard()
	}
	return r
}

// shardFor returns the shard for a prefix of at least shardBits bits.
func (r *Router) shardFor(p bitkey.Key) *routerShard {
	return r.shards[p.Value>>uint(p.Bits-r.shardBits)]
}

// Learn records that the given group is managed by the given server. Groups
// deeper than the key space are ignored: the pre-trie Route capped its probes
// at keyBits, so such a binding could never be returned.
func (r *Router) Learn(g bitkey.Group, server ServerID) {
	if g.Prefix.Bits > r.keyBits {
		return
	}
	if r.shardBits > 0 && g.Prefix.Bits >= r.shardBits {
		r.shardFor(g.Prefix).learn(g.Prefix, server)
		return
	}
	r.shallow.learn(g.Prefix, server)
}

// Forget drops the cached binding for a group (e.g. after a redirect).
func (r *Router) Forget(g bitkey.Group) {
	if r.shardBits > 0 && g.Prefix.Bits >= r.shardBits {
		r.shardFor(g.Prefix).forget(g.Prefix)
		return
	}
	r.shallow.forget(g.Prefix)
}

// ForgetServer drops every binding that points at the given server (used when
// a server leaves or fails).
func (r *Router) ForgetServer(server ServerID) {
	for _, sh := range r.shards {
		sh.forgetServer(server)
	}
	r.shallow.forgetServer(server)
}

// Route returns the cached (group, server) binding whose group contains the
// key, if any. Because cached groups may be stale, the caller must be
// prepared for the server to answer INCORRECT_DEPTH and then fall back to a
// full depth resolution.
//
//clash:hotpath
func (r *Router) Route(k bitkey.Key) (bitkey.Group, ServerID, bool) {
	if r.shardBits > 0 && k.Bits >= r.shardBits {
		if g, s, ok := r.shardFor(k).route(k); ok {
			return g, s, true
		}
	}
	return r.shallow.route(k)
}

// Len returns the number of cached bindings.
func (r *Router) Len() int {
	n := r.shallow.len()
	for _, sh := range r.shards {
		n += sh.len()
	}
	return n
}
