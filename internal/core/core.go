// Package core implements the CLASH protocol (Content and Load-Aware
// Scalable Hashing, Misra/Castro/Lee, ICDCS 2004): a redirection layer that
// sits between hierarchical identifier keys and a conventional DHT.
//
// CLASH partitions the identifier key space into variable-depth key groups.
// Each group is identified by a (prefix, depth) pair and is placed on the
// server returned by the DHT's Map() applied to the group's virtual key. An
// overloaded server splits its hottest group one bit deeper: the left child
// maps back to itself, the right child is transferred to whichever peer the
// DHT chooses (ACCEPT_KEYGROUP). Cold sibling leaves are merged back into
// their parent bottom-up. Clients locate the current group of a key with a
// modified binary search over the depth, driven by INCORRECT_DEPTH replies.
//
// The package is transport- and scheduler-agnostic: Server mutates a local
// ServerTable and returns the messages/transfers that a driver (the live
// overlay in internal/overlay, or the planned discrete-event simulator
// internal/sim) must deliver.
package core

import (
	"errors"

	"clash/internal/bitkey"
)

// ServerID identifies a CLASH server. It doubles as the DHT member name
// (chord.Member has the same underlying type).
type ServerID string

// NoServer is the zero ServerID, used where the paper writes "-1" (e.g. the
// ParentID of a root entry).
const NoServer ServerID = ""

// Errors returned by the core protocol.
var (
	// ErrUnknownGroup is returned when an operation names a key group the
	// server has no entry for.
	ErrUnknownGroup = errors.New("clash: unknown key group")
	// ErrNotActive is returned when an operation requires an active (leaf)
	// entry but the entry has already been split.
	ErrNotActive = errors.New("clash: key group is not active on this server")
	// ErrAlreadyManaged is returned when a server is asked to accept a key
	// group it already has an entry for.
	ErrAlreadyManaged = errors.New("clash: key group already managed")
	// ErrMaxDepth is returned when a split would exceed the key length N.
	ErrMaxDepth = errors.New("clash: cannot split beyond key length")
	// ErrCannotMerge is returned when a consolidation attempt is not
	// permitted (e.g. no child entries, or the entry is a root).
	ErrCannotMerge = errors.New("clash: key group cannot be consolidated")
	// ErrBadKey is returned when a key does not match the configured key
	// length.
	ErrBadKey = errors.New("clash: key length mismatch")
	// ErrCovered is returned when accepting or restoring a key group would
	// overlap key ranges already served by this server's active entries (an
	// active ancestor or active descendants exist): the incoming copy is
	// stale and must be discarded, but any query state it carries still
	// belongs here and should be installed by the caller.
	ErrCovered = errors.New("clash: key range already covered by active groups")
	// ErrDepthRange is returned when a depth lies outside [0, N].
	ErrDepthRange = errors.New("clash: depth out of range")
)

// Status is the result status of an ACCEPT_OBJECT request (paper §5, cases
// a–c).
type Status int

const (
	// StatusOK means the client guessed the correct depth.
	StatusOK Status = iota + 1
	// StatusOKCorrected means this server stores the object but the client's
	// depth was wrong; the reply carries the corrected depth.
	StatusOKCorrected
	// StatusIncorrectDepth means this server is not responsible for the
	// object; the reply carries the longest prefix match dmin.
	StatusIncorrectDepth
)

// String renders the status for logs and test failures.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusOKCorrected:
		return "OK_CORRECTED"
	case StatusIncorrectDepth:
		return "INCORRECT_DEPTH"
	default:
		return "UNKNOWN"
	}
}

// AcceptObjectResult is a server's reply to an ACCEPT_OBJECT request.
type AcceptObjectResult struct {
	// Status distinguishes the paper's three cases.
	Status Status
	// Group is the active key group that stores the object (valid for OK and
	// OKCorrected).
	Group bitkey.Group
	// CorrectDepth is the depth of Group (valid for OK and OKCorrected).
	CorrectDepth int
	// DMin is the longest prefix match between the key and any entry on this
	// server (valid for IncorrectDepth).
	DMin int
}

// Transfer describes one key-group hand-off produced by a split: the group
// that must be sent to To in an ACCEPT_KEYGROUP message, along with the
// parent that keeps the tree linkage.
type Transfer struct {
	Group  bitkey.Group
	To     ServerID
	Parent ServerID
}

// SplitResult describes the outcome of splitting one overloaded key group.
type SplitResult struct {
	// Split is the group that was split (now inactive on the server).
	Split bitkey.Group
	// Kept is the deepest left-descendant group the server continues to
	// manage (active).
	Kept bitkey.Group
	// Transfers lists the right-child groups handed to peers. There is
	// exactly one entry unless every candidate right child mapped back to
	// this server and had to be split again (paper §5), in which case the
	// earlier entries record the self-mapped intermediate groups that stay
	// local and only the last entry leaves the server.
	Transfers []Transfer
	// Retries counts how many times the DHT mapped the right child back to
	// the splitting server.
	Retries int
}

// MergeResult describes the outcome of consolidating a parent group.
type MergeResult struct {
	// Merged is the parent group that became active again.
	Merged bitkey.Group
	// ReclaimedFrom is the server that was managing the right child; the
	// driver must send it a RELEASE_KEYGROUP message for ReleasedGroup.
	ReclaimedFrom ServerID
	// ReleasedGroup is the right-child group to reclaim.
	ReleasedGroup bitkey.Group
}

// LoadReport is the periodic message a leaf server sends to the parent of one
// of its key groups so the parent can decide on consolidation.
type LoadReport struct {
	From  ServerID
	To    ServerID
	Group bitkey.Group
	Load  float64
}
