package bitkey

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadInput(t *testing.T) {
	tests := []struct {
		name  string
		value uint64
		bits  int
	}{
		{"negative bits", 0, -1},
		{"too many bits", 0, 65},
		{"overflow", 0b1000, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.value, tt.bits); err == nil {
				t.Fatalf("New(%#x, %d) succeeded, want error", tt.value, tt.bits)
			}
		})
	}
}

func TestNewAcceptsBoundaryInput(t *testing.T) {
	if _, err := New(0, 0); err != nil {
		t.Errorf("New(0,0): %v", err)
	}
	if _, err := New(^uint64(0), 64); err != nil {
		t.Errorf("New(max,64): %v", err)
	}
	if _, err := New(0b111, 3); err != nil {
		t.Errorf("New(0b111,3): %v", err)
	}
}

func TestParseAndString(t *testing.T) {
	tests := []struct {
		s     string
		value uint64
		bits  int
	}{
		{"0", 0, 1},
		{"1", 1, 1},
		{"0110101", 0b0110101, 7},
		{"0110111", 0b0110111, 7},
		{"000000000000000000000000", 0, 24},
		{"111111111111111111111111", 1<<24 - 1, 24},
	}
	for _, tt := range tests {
		k, err := Parse(tt.s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.s, err)
		}
		if k.Value != tt.value || k.Bits != tt.bits {
			t.Errorf("Parse(%q) = {%#x,%d}, want {%#x,%d}", tt.s, k.Value, k.Bits, tt.value, tt.bits)
		}
		if got := k.String(); got != tt.s {
			t.Errorf("String() = %q, want %q", got, tt.s)
		}
	}
}

func TestParseRejectsBadStrings(t *testing.T) {
	for _, s := range []string{"01x1", "2", "0101 "} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestBitIndexing(t *testing.T) {
	k := MustParse("0110101")
	want := []int{0, 1, 1, 0, 1, 0, 1}
	for i, w := range want {
		if got := k.Bit(i); got != w {
			t.Errorf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestPrefix(t *testing.T) {
	k := MustParse("0110101")
	tests := []struct {
		d    int
		want string
	}{
		{0, "ε"},
		{1, "0"},
		{4, "0110"},
		{7, "0110101"},
	}
	for _, tt := range tests {
		p, err := k.Prefix(tt.d)
		if err != nil {
			t.Fatalf("Prefix(%d): %v", tt.d, err)
		}
		if got := p.String(); got != tt.want {
			t.Errorf("Prefix(%d) = %q, want %q", tt.d, got, tt.want)
		}
	}
	if _, err := k.Prefix(8); err == nil {
		t.Error("Prefix(8) on 7-bit key succeeded, want error")
	}
	if _, err := k.Prefix(-1); err == nil {
		t.Error("Prefix(-1) succeeded, want error")
	}
}

func TestHasPrefix(t *testing.T) {
	k := MustParse("0110101")
	if !k.HasPrefix(MustParse("0110")) {
		t.Error("0110101 should have prefix 0110")
	}
	if k.HasPrefix(MustParse("0111")) {
		t.Error("0110101 should not have prefix 0111")
	}
	if k.HasPrefix(MustParse("01101011")) {
		t.Error("a longer key cannot be a prefix")
	}
	if !k.HasPrefix(Key{}) {
		t.Error("the empty key is a prefix of everything")
	}
}

func TestExtend(t *testing.T) {
	k := MustParse("011")
	k1, err := k.Extend(0)
	if err != nil {
		t.Fatal(err)
	}
	if k1.String() != "0110" {
		t.Errorf("Extend(0) = %q, want 0110", k1.String())
	}
	k2, err := k.Extend(1)
	if err != nil {
		t.Fatal(err)
	}
	if k2.String() != "0111" {
		t.Errorf("Extend(1) = %q, want 0111", k2.String())
	}
	if _, err := k.Extend(2); err == nil {
		t.Error("Extend(2) succeeded, want error")
	}
	full := MustNew(0, 64)
	if _, err := full.Extend(0); err == nil {
		t.Error("Extend on 64-bit key succeeded, want error")
	}
}

func TestPaddedMatchesPaperExample(t *testing.T) {
	// Paper §4: expanding "01100*" to 7 bits gives "0110000" (decimal 48)
	// and "01101*" gives "0110100" (decimal 52).
	g1 := MustParse("01100")
	v1, err := g1.Padded(7)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 48 {
		t.Errorf("Padded(01100,7) = %d, want 48", v1)
	}
	g2 := MustParse("01101")
	v2, err := g2.Padded(7)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 52 {
		t.Errorf("Padded(01101,7) = %d, want 52", v2)
	}
	if _, err := g1.Padded(3); err == nil {
		t.Error("Padded to fewer bits than the key succeeded, want error")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"0", "1", -1},
		{"1", "0", 1},
		{"0110", "0110", 0},
		{"011", "0110", -1},
		{"0111", "0110", 1},
		{"ε", "0", -1},
	}
	parse := func(s string) Key {
		if s == "ε" {
			return Key{}
		}
		return MustParse(s)
	}
	for _, tt := range tests {
		if got := parse(tt.a).Compare(parse(tt.b)); got != tt.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestBytesDistinguishesLengths(t *testing.T) {
	a := MustParse("0110")
	b := MustParse("01100")
	if string(a.Bytes()) == string(b.Bytes()) {
		t.Error("keys of different length must produce different byte encodings")
	}
	c := MustParse("0110")
	if string(a.Bytes()) != string(c.Bytes()) {
		t.Error("equal keys must produce equal byte encodings")
	}
}

func TestPropertyPrefixRoundTrip(t *testing.T) {
	f := func(value uint64, bitsRaw uint8, depthRaw uint8) bool {
		bits := int(bitsRaw%64) + 1
		value &= (1<<uint(bits) - 1) | (1<<uint(bits) - 1) // mask to bits
		value &= ^uint64(0) >> uint(64-bits)
		k := MustNew(value, bits)
		d := int(depthRaw) % (bits + 1)
		p, err := k.Prefix(d)
		if err != nil {
			return false
		}
		// The prefix must be a prefix, and parsing the string form must
		// round-trip.
		if !k.HasPrefix(p) {
			return false
		}
		if d > 0 {
			rt, err := Parse(p.String())
			if err != nil || !rt.Equal(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		bits := rng.Intn(64) + 1
		value := rng.Uint64() & (^uint64(0) >> uint(64-bits))
		k := MustNew(value, bits)
		rt, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(String()) failed: %v", err)
		}
		if !rt.Equal(k) {
			t.Fatalf("round trip mismatch: %v vs %v", rt, k)
		}
	}
}

func TestPropertyCompareIsTotalOrder(t *testing.T) {
	f := func(av, bv uint64, abits, bbits uint8) bool {
		ab := int(abits%24) + 1
		bb := int(bbits%24) + 1
		a := MustNew(av&(^uint64(0)>>uint(64-ab)), ab)
		b := MustNew(bv&(^uint64(0)>>uint(64-bb)), bb)
		cab := a.Compare(b)
		cba := b.Compare(a)
		if cab != -cba {
			return false
		}
		if cab == 0 != a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
