// Package clockcheck forbids wall-clock reads in sim-driven packages.
//
// The discrete-event simulator (internal/sim) drives unmodified protocol code
// at virtual time; the byte-determinism guarantee behind SIM_scenarios.json
// and the CI diff gates holds only if no code on the simulated path touches
// package time's clock. Sim-driven packages must take their time from an
// injected clock.Clock (internal/clock) instead.
//
// Real-socket files (TCP deadlines, the in-memory fabric's real-time link
// model) are outside the simulated path; their uses carry
// //clashvet:ignore clockcheck <reason> directives.
package clockcheck

import (
	"go/ast"
	"go/types"

	"clash/internal/analysis"
)

// simSegments marks a package as sim-driven when any import-path segment
// matches ("clash/internal/sim/link" via "sim", testdata's "chord" via
// "chord").
var simSegments = []string{"chord", "core", "cq", "load", "sim"}

// simLastSegments marks packages sim-driven by final segment only: overlay
// hosts the node/maintenance logic the simulator drives.
var simLastSegments = []string{"overlay"}

// forbidden maps the time-package functions that read or schedule against the
// wall clock to the clock.Clock replacement to suggest.
var forbidden = map[string]string{
	"Now":       "clock.Clock.Now",
	"Sleep":     "a clock.Clock.NewTimer wait",
	"After":     "clock.Clock.NewTimer",
	"AfterFunc": "clock.Clock.NewTimer",
	"Tick":      "clock.Clock.NewTicker",
	"NewTimer":  "clock.Clock.NewTimer",
	"NewTicker": "clock.Clock.NewTicker",
	"Since":     "clock.Clock.Now arithmetic",
	"Until":     "clock.Clock.Now arithmetic",
}

var Analyzer = &analysis.Analyzer{
	Name: "clockcheck",
	Doc:  "forbid time.Now/Sleep/After/NewTimer/NewTicker in sim-driven packages; inject clock.Clock instead",
	Run:  run,
}

func simDriven(path string) bool {
	for _, seg := range simSegments {
		if analysis.HasPathSegment(path, seg) {
			return true
		}
	}
	for _, last := range simLastSegments {
		if analysis.LastSegment(path) == last {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !simDriven(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			repl, bad := forbidden[sel.Sel.Name]
			if !bad {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s is forbidden in sim-driven package %s (wall-clock reads break sim determinism; use %s)",
				sel.Sel.Name, pass.Pkg.Path(), repl)
			return true
		})
	}
	return nil
}
