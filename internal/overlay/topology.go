package overlay

import (
	"fmt"

	"clash/internal/wirecodec"
)

// Topology RPC: the hub's /topology endpoint walks the ring by asking each
// node for a TopoNode snapshot (TypeTopology) and following successor
// pointers until the walk closes. The snapshot is intentionally lighter than
// the full Status document — no metrics series — so a fanout across a large
// ring stays cheap.

// TopoGroup is one active key group in a topology snapshot.
type TopoGroup struct {
	Group string `json:"group"`
	// Depth is the group's depth in the split tree (prefix length).
	Depth int `json:"depth"`
	// Parent is the server holding the group's parent ("" for roots).
	Parent string `json:"parent,omitempty"`
	// Epoch is the group's ownership epoch.
	Epoch uint64 `json:"epoch,omitempty"`
	// Load is the group's load fraction at the last load check.
	Load float64 `json:"load"`
	// Queries is how many continuous queries the group stores.
	Queries int `json:"queries"`
}

// TopoNode is one node's topology snapshot.
type TopoNode struct {
	Addr        string      `json:"addr"`
	ID          uint64      `json:"id"`
	Predecessor string      `json:"predecessor,omitempty"`
	Successors  []string    `json:"successors"`
	TotalLoad   float64     `json:"totalLoad"`
	Queries     int         `json:"queries"`
	Draining    bool        `json:"draining,omitempty"`
	Groups      []TopoGroup `json:"groups,omitempty"`
	// ReplicaOrigins lists the peers whose key-group replicas this node holds.
	ReplicaOrigins []string `json:"replicaOrigins,omitempty"`
}

// MarshalWire implements wireMsg.
func (m *TopoGroup) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendString(b, m.Group)
	b = wirecodec.AppendInt(b, m.Depth)
	b = wirecodec.AppendString(b, m.Parent)
	b = wirecodec.AppendUvarint(b, m.Epoch)
	b = wirecodec.AppendFloat64(b, m.Load)
	return wirecodec.AppendInt(b, m.Queries)
}

// UnmarshalWire implements wireMsg.
func (m *TopoGroup) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.Group = r.String()
	m.Depth = r.Int()
	m.Parent = r.String()
	m.Epoch = r.Uvarint()
	m.Load = r.Float64()
	m.Queries = r.Int()
	return r.Err()
}

// MarshalWire implements wireMsg. Each group travels as a length-prefixed
// record (the nested append-only evolution pattern).
func (m *TopoNode) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendString(b, m.Addr)
	b = wirecodec.AppendUvarint(b, m.ID)
	b = wirecodec.AppendString(b, m.Predecessor)
	b = wirecodec.AppendInt(b, len(m.Successors))
	for _, s := range m.Successors {
		b = wirecodec.AppendString(b, s)
	}
	b = wirecodec.AppendFloat64(b, m.TotalLoad)
	b = wirecodec.AppendInt(b, m.Queries)
	b = wirecodec.AppendBool(b, m.Draining)
	b = wirecodec.AppendInt(b, len(m.Groups))
	scratch := wirecodec.GetBuf()
	for i := range m.Groups {
		scratch = m.Groups[i].MarshalWire(scratch[:0])
		b = wirecodec.AppendBytes(b, scratch)
	}
	wirecodec.PutBuf(scratch)
	b = wirecodec.AppendInt(b, len(m.ReplicaOrigins))
	for _, o := range m.ReplicaOrigins {
		b = wirecodec.AppendString(b, o)
	}
	return b
}

// UnmarshalWire implements wireMsg.
func (m *TopoNode) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.Addr = r.String()
	m.ID = r.Uvarint()
	m.Predecessor = r.String()
	n := r.Int()
	if r.Err() == nil && n > r.Len() {
		return fmt.Errorf("%w: %d successors in %d bytes", wirecodec.ErrInvalid, n, r.Len())
	}
	m.Successors = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Successors = append(m.Successors, r.String())
	}
	m.TotalLoad = r.Float64()
	m.Queries = r.Int()
	m.Draining = r.Bool()
	n = r.Int()
	if r.Err() == nil && n > r.Len() {
		return fmt.Errorf("%w: %d groups in %d bytes", wirecodec.ErrInvalid, n, r.Len())
	}
	m.Groups = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		rec := r.Bytes()
		if r.Err() != nil {
			break
		}
		var g TopoGroup
		if err := g.UnmarshalWire(rec); err != nil {
			return err
		}
		m.Groups = append(m.Groups, g)
	}
	n = r.Int()
	if r.Err() == nil && n > r.Len() {
		return fmt.Errorf("%w: %d origins in %d bytes", wirecodec.ErrInvalid, n, r.Len())
	}
	m.ReplicaOrigins = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		m.ReplicaOrigins = append(m.ReplicaOrigins, r.String())
	}
	return r.Err()
}

// TopoInfo builds this node's topology snapshot.
func (n *Node) TopoInfo() TopoNode {
	succs := n.chord.Successors()
	succAddrs := make([]string, len(succs))
	for i, s := range succs {
		succAddrs[i] = s.Addr
	}
	loads := n.server.GroupLoads()
	info := TopoNode{
		Addr:        n.Addr(),
		ID:          uint64(n.chord.Self().ID),
		Predecessor: n.chord.PredecessorRef().Addr,
		Successors:  succAddrs,
		TotalLoad:   n.server.TotalLoad(),
		Queries:     n.engine.Len(),
		Draining:    n.draining.Load(),
	}
	for _, e := range n.server.Entries() {
		if !e.Active {
			continue
		}
		info.Groups = append(info.Groups, TopoGroup{
			Group:   e.Group.String(),
			Depth:   e.Group.Depth(),
			Parent:  string(e.Parent),
			Epoch:   e.Epoch,
			Load:    loads[e.Group.String()],
			Queries: len(n.engine.QueriesInGroup(e.Group)),
		})
	}
	n.mu.Lock()
	origins := sortedKeys(n.replicas)
	n.mu.Unlock()
	info.ReplicaOrigins = origins
	return info
}

// handleTopology answers TypeTopology with this node's snapshot.
func (n *Node) handleTopology([]byte) ([]byte, error) {
	info := n.TopoInfo()
	return info.MarshalWire(nil), nil
}

// FetchTopo asks the node at addr for its topology snapshot through this
// node's resilient caller (the hub's ring-walk primitive). Asking for the
// node's own address answers locally without a network round trip.
func (n *Node) FetchTopo(addr string) (TopoNode, error) {
	if addr == n.Addr() {
		return n.TopoInfo(), nil
	}
	raw, err := n.caller.call(addr, TypeTopology, nil)
	if err != nil {
		return TopoNode{}, err
	}
	var info TopoNode
	if err := info.UnmarshalWire(raw); err != nil {
		return TopoNode{}, err
	}
	return info, nil
}
