package sim

import (
	"strings"
	"testing"
)

// TestChurnDurableZeroLostCQ is the durability gate: the churn-durable
// scenario crashes over 20% of the group-holding nodes (who never rejoin),
// and successor-list replication must recover every key group and every
// registered continuous query — structurally (still stored on a live node)
// and functionally (an end-of-run matching probe reports the query).
func TestChurnDurableZeroLostCQ(t *testing.T) {
	sc, err := Named("churn-durable", 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.HoldersAtFirstCrash == 0 ||
		float64(res.HoldersCrashed) < 0.2*float64(res.HoldersAtFirstCrash) {
		t.Fatalf("churn crashed %d of %d holders, need >= 20%%",
			res.HoldersCrashed, res.HoldersAtFirstCrash)
	}
	if res.CQSurviving != res.CQRegistered {
		t.Fatalf("lost %d of %d continuous queries: %v",
			res.CQRegistered-res.CQSurviving, res.CQRegistered, res.LostCQs)
	}
	if res.CQProbeMisses != 0 {
		t.Fatalf("%d end-of-run probes missed their query", res.CQProbeMisses)
	}
	if res.GroupsRecovered == 0 {
		t.Fatal("no group was recovered from a replica — the crashes destroyed nothing or recovery never ran")
	}
	if !res.CoverageComplete {
		t.Fatalf("key-space coverage incomplete after recovery (%d overlaps)", res.CoverageOverlaps)
	}
}

// TestChurnDurableLosesStateWithoutReplication is the negative control: the
// same scenario with replication disabled must lose continuous queries and
// key-space coverage to the crashes, and the zero-lost-CQ invariant must flag
// it. This is the original bug the replication subsystem fixes — if this test
// starts passing with replication off, the invariant went blind.
func TestChurnDurableLosesStateWithoutReplication(t *testing.T) {
	sc, err := Named("churn-durable", 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc.Replicas = -1 // disable replication
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.CQSurviving == res.CQRegistered {
		t.Fatal("every CQ survived with replication disabled — the crashes are not destroying state")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v, "continuous queries") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("zero-lost-CQ invariant did not fire: violations = %v", res.Violations)
	}
}
