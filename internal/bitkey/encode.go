package bitkey

import (
	"errors"
	"fmt"
)

// This file provides encoders that build hierarchical identifier keys from
// application data. The paper's running examples are geographic quad-tree
// keys (Mobiscope-style telematics, multiplayer game grids) and hierarchical
// attribute encodings for content-based query systems.

// ErrOutOfRange is returned when a coordinate or attribute value falls
// outside the encoder's domain.
var ErrOutOfRange = errors.New("bitkey: value out of encoder range")

// QuadTreeEncoder encodes 2-D coordinates into an N-bit key by recursively
// splitting a rectangular region into four quadrants; each level contributes
// two bits (y bit then x bit), so Bits must be even. Points that are close
// together share long key prefixes, which is exactly the clustering property
// CLASH exploits.
type QuadTreeEncoder struct {
	// MinX, MinY, MaxX, MaxY bound the encoded region. Points outside are
	// rejected.
	MinX, MinY, MaxX, MaxY float64
	// Bits is the total key length produced; it must be even and in
	// [2, MaxBits].
	Bits int
}

// NewQuadTreeEncoder returns an encoder for the region [minX,maxX)×[minY,maxY)
// producing keys of the given even bit length.
func NewQuadTreeEncoder(minX, minY, maxX, maxY float64, bits int) (*QuadTreeEncoder, error) {
	if bits < 2 || bits > MaxBits || bits%2 != 0 {
		return nil, fmt.Errorf("%w: quad-tree key length %d", ErrBadLength, bits)
	}
	if maxX <= minX || maxY <= minY {
		return nil, fmt.Errorf("%w: empty region", ErrOutOfRange)
	}
	return &QuadTreeEncoder{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY, Bits: bits}, nil
}

// Encode maps a point to its quad-tree identifier key.
func (e *QuadTreeEncoder) Encode(x, y float64) (Key, error) {
	if x < e.MinX || x >= e.MaxX || y < e.MinY || y >= e.MaxY {
		return Key{}, fmt.Errorf("%w: point (%g,%g)", ErrOutOfRange, x, y)
	}
	loX, hiX := e.MinX, e.MaxX
	loY, hiY := e.MinY, e.MaxY
	k := Key{}
	for level := 0; level < e.Bits/2; level++ {
		midX := loX + (hiX-loX)/2
		midY := loY + (hiY-loY)/2
		yBit := 0
		if y >= midY {
			yBit = 1
			loY = midY
		} else {
			hiY = midY
		}
		xBit := 0
		if x >= midX {
			xBit = 1
			loX = midX
		} else {
			hiX = midX
		}
		var err error
		if k, err = k.Extend(yBit); err != nil {
			return Key{}, err
		}
		if k, err = k.Extend(xBit); err != nil {
			return Key{}, err
		}
	}
	return k, nil
}

// CellBounds returns the rectangle covered by the given key group (a prefix
// of a quad-tree key). Odd-depth groups cover a half cell split along y.
func (e *QuadTreeEncoder) CellBounds(g Group) (minX, minY, maxX, maxY float64) {
	loX, hiX := e.MinX, e.MaxX
	loY, hiY := e.MinY, e.MaxY
	p := g.Prefix
	for i := 0; i < p.Bits; i++ {
		if i%2 == 0 { // y bit
			midY := loY + (hiY-loY)/2
			if p.Bit(i) == 1 {
				loY = midY
			} else {
				hiY = midY
			}
		} else { // x bit
			midX := loX + (hiX-loX)/2
			if p.Bit(i) == 1 {
				loX = midX
			} else {
				hiX = midX
			}
		}
	}
	return loX, loY, hiX, hiY
}

// AttributeEncoder encodes a fixed-width path of categorical attribute values
// into an identifier key. Each level i has a fan-out Fanout[i] (a power of two
// is not required; values are packed with the minimum number of bits that
// holds Fanout[i]-1). Objects that agree on the first attributes share key
// prefixes, which clusters them into the same key groups.
type AttributeEncoder struct {
	fanout []int
	widths []int
	bits   int
}

// NewAttributeEncoder builds an encoder for the given per-level fan-outs.
func NewAttributeEncoder(fanout ...int) (*AttributeEncoder, error) {
	if len(fanout) == 0 {
		return nil, fmt.Errorf("%w: no attribute levels", ErrBadLength)
	}
	e := &AttributeEncoder{fanout: append([]int(nil), fanout...)}
	for _, f := range fanout {
		if f < 2 {
			return nil, fmt.Errorf("%w: fan-out %d", ErrOutOfRange, f)
		}
		w := bitsFor(f - 1)
		e.widths = append(e.widths, w)
		e.bits += w
	}
	if e.bits > MaxBits {
		return nil, fmt.Errorf("%w: total width %d", ErrBadLength, e.bits)
	}
	return e, nil
}

// Bits returns the total key length produced by the encoder.
func (e *AttributeEncoder) Bits() int { return e.bits }

// Encode packs one value per level (0 ≤ values[i] < fanout[i]) into a key.
func (e *AttributeEncoder) Encode(values ...int) (Key, error) {
	if len(values) != len(e.fanout) {
		return Key{}, fmt.Errorf("%w: got %d values, want %d", ErrOutOfRange, len(values), len(e.fanout))
	}
	k := Key{}
	for i, v := range values {
		if v < 0 || v >= e.fanout[i] {
			return Key{}, fmt.Errorf("%w: level %d value %d (fan-out %d)", ErrOutOfRange, i, v, e.fanout[i])
		}
		for b := e.widths[i] - 1; b >= 0; b-- {
			var err error
			if k, err = k.Extend((v >> uint(b)) & 1); err != nil {
				return Key{}, err
			}
		}
	}
	return k, nil
}

// bitsFor returns the number of bits needed to represent v (at least 1).
func bitsFor(v int) int {
	n := 1
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
