package core

import (
	"bytes"
	"reflect"
	"testing"

	"clash/internal/wirecodec"
)

func TestAcceptObjectMsgWireRoundTrip(t *testing.T) {
	cases := []AcceptObjectMsg{
		{},
		{KeyValue: 0b101101, KeyBits: 24, Depth: 7, Kind: ObjectData, Payload: []byte("payload")},
		{KeyValue: 1<<63 - 1, KeyBits: 64, Depth: 64, Kind: ObjectQuery},
	}
	for _, m := range cases {
		var got AcceptObjectMsg
		if err := got.UnmarshalWire(m.MarshalWire(nil)); err != nil {
			t.Fatalf("UnmarshalWire(%+v): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip = %+v, want %+v", got, m)
		}
	}
}

func TestAcceptObjectReplyMsgWireRoundTrip(t *testing.T) {
	cases := []AcceptObjectReplyMsg{
		{Status: StatusOK, GroupValue: 0b11, GroupBits: 2, CorrectDepth: 2},
		{Status: StatusIncorrectDepth, DMin: 5},
		{Status: StatusOKCorrected, GroupValue: 9, GroupBits: 10, CorrectDepth: 10,
			Matches: []string{"q-1", "q-2", ""}},
		{Error: "bad item"},
	}
	for _, m := range cases {
		var got AcceptObjectReplyMsg
		if err := got.UnmarshalWire(m.MarshalWire(nil)); err != nil {
			t.Fatalf("UnmarshalWire(%+v): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip = %+v, want %+v", got, m)
		}
	}
}

func TestBatchMsgWireRoundTrip(t *testing.T) {
	req := AcceptBatchMsg{Objects: []AcceptObjectMsg{
		{KeyValue: 1, KeyBits: 8, Depth: 2, Kind: ObjectData, Payload: []byte("a")},
		{KeyValue: 2, KeyBits: 8, Depth: 3, Kind: ObjectData},
		{KeyValue: 255, KeyBits: 8, Depth: 8, Kind: ObjectQuery, Payload: []byte("qq")},
	}}
	var gotReq AcceptBatchMsg
	if err := gotReq.UnmarshalWire(req.MarshalWire(nil)); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Errorf("batch round trip = %+v, want %+v", gotReq, req)
	}

	rep := AcceptBatchReplyMsg{Replies: []AcceptObjectReplyMsg{
		{Status: StatusOK, GroupValue: 1, GroupBits: 4, CorrectDepth: 4, Matches: []string{"m"}},
		{Error: "nope"},
	}}
	var gotRep AcceptBatchReplyMsg
	if err := gotRep.UnmarshalWire(rep.MarshalWire(nil)); err != nil {
		t.Fatalf("batch reply: %v", err)
	}
	if !reflect.DeepEqual(gotRep, rep) {
		t.Errorf("batch reply round trip = %+v, want %+v", gotRep, rep)
	}
}

func TestControlMsgWireRoundTrip(t *testing.T) {
	akg := AcceptKeyGroupMsg{GroupValue: 0b001, GroupBits: 3, Parent: "node-1",
		Queries: [][]byte{[]byte("q1"), nil, []byte("q3")}}
	var gotAkg AcceptKeyGroupMsg
	if err := gotAkg.UnmarshalWire(akg.MarshalWire(nil)); err != nil {
		t.Fatalf("accept keygroup: %v", err)
	}
	if !reflect.DeepEqual(gotAkg, akg) {
		t.Errorf("accept keygroup = %+v, want %+v", gotAkg, akg)
	}

	lr := LoadReportMsg{GroupValue: 5, GroupBits: 4, Load: 0.875, From: "node-2"}
	var gotLr LoadReportMsg
	if err := gotLr.UnmarshalWire(lr.MarshalWire(nil)); err != nil {
		t.Fatalf("load report: %v", err)
	}
	if gotLr != lr {
		t.Errorf("load report = %+v, want %+v", gotLr, lr)
	}

	rel := ReleaseKeyGroupMsg{GroupValue: 2, GroupBits: 2, Parent: "node-3"}
	var gotRel ReleaseKeyGroupMsg
	if err := gotRel.UnmarshalWire(rel.MarshalWire(nil)); err != nil {
		t.Fatalf("release: %v", err)
	}
	if gotRel != rel {
		t.Errorf("release = %+v, want %+v", gotRel, rel)
	}

	rr := ReleaseKeyGroupReplyMsg{GroupValue: 2, GroupBits: 2, OK: false, Gone: true,
		Error: "unknown group", Queries: [][]byte{[]byte("st")}}
	var gotRr ReleaseKeyGroupReplyMsg
	if err := gotRr.UnmarshalWire(rr.MarshalWire(nil)); err != nil {
		t.Fatalf("release reply: %v", err)
	}
	if !reflect.DeepEqual(gotRr, rr) {
		t.Errorf("release reply = %+v, want %+v", gotRr, rr)
	}
}

func TestWireRejectsMalformed(t *testing.T) {
	// A key value that does not fit its declared bit length must error.
	bad := (&AcceptObjectMsg{KeyValue: 0xFF, KeyBits: 64, Depth: 0, Kind: ObjectData}).MarshalWire(nil)
	// Rewrite bits to 4 (first varint) keeping the 0xFF value.
	bad[0] = 4
	var m AcceptObjectMsg
	if err := m.UnmarshalWire(bad); err == nil {
		t.Error("decoder accepted key value overflowing its bit length")
	}

	// Truncations of a valid message must error, never panic — except a
	// prefix that drops whole appended optional fields, which is exactly an
	// old writer's frame and must decode back to the original message (the
	// dropped fields were zero, so re-encoding reproduces the full frame).
	full := (&AcceptObjectReplyMsg{Status: StatusOK, GroupValue: 3, GroupBits: 2,
		CorrectDepth: 2, Matches: []string{"q"}}).MarshalWire(nil)
	for i := 0; i < len(full); i++ {
		var rep AcceptObjectReplyMsg
		if err := rep.UnmarshalWire(full[:i]); err == nil {
			if !bytes.Equal(rep.MarshalWire(nil), full) {
				t.Errorf("decoder accepted %d-byte truncation of %d-byte message", i, len(full))
			}
		}
	}

	// A batch count far beyond the input must be rejected before allocation.
	var batch AcceptBatchMsg
	if err := batch.UnmarshalWire([]byte{0xFF, 0xFF, 0x03}); err == nil {
		t.Error("decoder accepted hostile batch count")
	}
}

// TestWireAppendStyle checks the append contract: marshalling into a non-empty
// buffer preserves the prefix.
func TestWireAppendStyle(t *testing.T) {
	prefix := []byte("prefix")
	m := AcceptObjectMsg{KeyValue: 7, KeyBits: 8, Depth: 1, Kind: ObjectData}
	out := m.MarshalWire(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("MarshalWire clobbered the buffer prefix")
	}
	var got AcceptObjectMsg
	if err := got.UnmarshalWire(out[len(prefix):]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}
}

func TestAcceptObjectMsgTraceIDWire(t *testing.T) {
	// Round trip with the appended trace-id field.
	m := AcceptObjectMsg{KeyValue: 0b1100, KeyBits: 16, Depth: 4, Kind: ObjectData,
		Payload: []byte("pkt"), TraceID: 0xDEADBEEF}
	var got AcceptObjectMsg
	if err := got.UnmarshalWire(m.MarshalWire(nil)); err != nil {
		t.Fatalf("UnmarshalWire: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}

	// New decoder, old encoder: a frame hand-built in the pre-trace layout
	// (key, depth, kind, length-prefixed payload — the PR 6 wire shape)
	// decodes with TraceID 0.
	old := appendKey(nil, m.KeyValue, m.KeyBits)
	old = append(old, byte(m.Depth))
	old = append(old, byte(m.Kind))
	old = append(old, byte(len(m.Payload)))
	old = append(old, m.Payload...)
	var legacy AcceptObjectMsg
	if err := legacy.UnmarshalWire(old); err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if legacy.TraceID != 0 {
		t.Errorf("legacy frame decoded TraceID %d, want 0", legacy.TraceID)
	}
	if legacy.Depth != m.Depth || legacy.Kind != m.Kind || !bytes.Equal(legacy.Payload, m.Payload) {
		t.Errorf("legacy decode = %+v, want pre-trace fields of %+v", legacy, m)
	}

	// Old decoder, new encoder: a PR 6-era reader stops after the payload and
	// ignores the trailing trace bytes (the documented evolution contract).
	// Emulate it field by field over the new encoding.
	enc := m.MarshalWire(nil)
	r := wirecodec.NewReader(enc)
	oldKeyBits := r.Int()
	oldKeyValue := r.Uvarint()
	oldDepth := r.Int()
	oldKind := ObjectKind(r.Int())
	oldPayload := r.Bytes()
	if err := r.Err(); err != nil {
		t.Fatalf("old-shape decode of new frame: %v", err)
	}
	if oldKeyValue != m.KeyValue || oldKeyBits != m.KeyBits || oldDepth != m.Depth ||
		oldKind != m.Kind || !bytes.Equal(oldPayload, m.Payload) {
		t.Errorf("old-shape decode got (%d,%d,%d,%d,%q)", oldKeyValue, oldKeyBits, oldDepth, oldKind, oldPayload)
	}
	if r.Len() == 0 {
		t.Error("new encoding carries no trailing trace bytes to ignore")
	}

	// The same holds through the batch nesting: objects travel as
	// length-prefixed records, so an old reader skips a traced object's
	// appended field via the record length.
	batch := AcceptBatchMsg{Objects: []AcceptObjectMsg{m, {KeyValue: 1, KeyBits: 8, Depth: 1, Kind: ObjectQuery}}}
	var gotBatch AcceptBatchMsg
	if err := gotBatch.UnmarshalWire(batch.MarshalWire(nil)); err != nil {
		t.Fatalf("batch with traced object: %v", err)
	}
	if gotBatch.Objects[0].TraceID != m.TraceID || gotBatch.Objects[1].TraceID != 0 {
		t.Errorf("batch trace ids = %d, %d; want %d, 0",
			gotBatch.Objects[0].TraceID, gotBatch.Objects[1].TraceID, m.TraceID)
	}
}

func TestAcceptKeyGroupMsgEpochWire(t *testing.T) {
	// Round trip with the appended epoch field.
	m := AcceptKeyGroupMsg{GroupValue: 0b101, GroupBits: 3, Parent: "node-9",
		Queries: [][]byte{[]byte("q")}, Epoch: 42}
	var got AcceptKeyGroupMsg
	if err := got.UnmarshalWire(m.MarshalWire(nil)); err != nil {
		t.Fatalf("UnmarshalWire: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}

	// A frame from an old writer (no epoch bytes) decodes with Epoch 0:
	// hand-build the pre-epoch layout (key, parent, query count).
	old := appendKey(nil, m.GroupValue, m.GroupBits)
	old = append(old, byte(len(m.Parent)))
	old = append(old, m.Parent...)
	old = append(old, 0) // zero queries
	var legacy AcceptKeyGroupMsg
	if err := legacy.UnmarshalWire(old); err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if legacy.Epoch != 0 || legacy.Parent != m.Parent {
		t.Errorf("legacy decode = %+v, want epoch 0, parent %q", legacy, m.Parent)
	}
}

// TestAcceptObjectSpanWire pins the span-context wire evolution: ParentSpan
// and Hop ride behind TraceID on the request, SpanID behind Error on the
// reply, and frames from TraceID-era writers decode with the span fields
// zero (the old↔new interop contract for mixed-version rings).
func TestAcceptObjectSpanWire(t *testing.T) {
	m := AcceptObjectMsg{KeyValue: 0b0110, KeyBits: 16, Depth: 3, Kind: ObjectData,
		Payload: []byte("pkt"), TraceID: 0xC0FFEE, ParentSpan: 0xABCD, Hop: 2}
	var got AcceptObjectMsg
	if err := got.UnmarshalWire(m.MarshalWire(nil)); err != nil {
		t.Fatalf("UnmarshalWire: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}

	// New decoder, TraceID-era encoder: the frame stops after TraceID and
	// must decode with a zero span context.
	old := appendKey(nil, m.KeyValue, m.KeyBits)
	old = append(old, byte(m.Depth))
	old = append(old, byte(m.Kind))
	old = append(old, byte(len(m.Payload)))
	old = append(old, m.Payload...)
	old = wirecodec.AppendUvarint(old, m.TraceID)
	var legacy AcceptObjectMsg
	if err := legacy.UnmarshalWire(old); err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if legacy.TraceID != m.TraceID || legacy.ParentSpan != 0 || legacy.Hop != 0 {
		t.Errorf("legacy frame decoded (trace %d, parent %d, hop %d), want (%d, 0, 0)",
			legacy.TraceID, legacy.ParentSpan, legacy.Hop, m.TraceID)
	}

	// Old decoder, new encoder: a TraceID-era reader consumes through TraceID
	// and ignores the trailing span bytes.
	r := wirecodec.NewReader(m.MarshalWire(nil))
	_ = r.Int()     // key bits
	_ = r.Uvarint() // key value
	_ = r.Int()     // depth
	_ = r.Int()     // kind
	_ = r.Bytes()   // payload
	oldTrace := r.Uvarint()
	if err := r.Err(); err != nil {
		t.Fatalf("old-shape decode of new frame: %v", err)
	}
	if oldTrace != m.TraceID {
		t.Errorf("old-shape decode read TraceID %d, want %d", oldTrace, m.TraceID)
	}
	if r.Len() == 0 {
		t.Error("new encoding carries no trailing span bytes to ignore")
	}
}

// TestAcceptObjectReplySpanWire pins the reply-side evolution: the serving
// node's span ID rides behind Error, a pre-span reply decodes as SpanID 0,
// and an old reader of a new reply stops cleanly at Error.
func TestAcceptObjectReplySpanWire(t *testing.T) {
	rep := AcceptObjectReplyMsg{Status: StatusIncorrectDepth, GroupValue: 3,
		GroupBits: 2, CorrectDepth: 5, DMin: 4, SpanID: 0xFEED}
	var got AcceptObjectReplyMsg
	if err := got.UnmarshalWire(rep.MarshalWire(nil)); err != nil {
		t.Fatalf("UnmarshalWire: %v", err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round trip = %+v, want %+v", got, rep)
	}

	// New decoder, pre-span encoder: hand-build the old layout (status, group
	// key, depths, matches, error) and require SpanID 0.
	old := wirecodec.AppendInt(nil, int(rep.Status))
	old = appendKey(old, rep.GroupValue, rep.GroupBits)
	old = wirecodec.AppendInt(old, rep.CorrectDepth)
	old = wirecodec.AppendInt(old, rep.DMin)
	old = wirecodec.AppendInt(old, 0) // no matches
	old = wirecodec.AppendString(old, "")
	var legacy AcceptObjectReplyMsg
	if err := legacy.UnmarshalWire(old); err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if legacy.SpanID != 0 || legacy.CorrectDepth != rep.CorrectDepth {
		t.Errorf("legacy decode = %+v, want SpanID 0, CorrectDepth %d", legacy, rep.CorrectDepth)
	}

	// Old decoder, new encoder: the pre-span reader stops after Error with
	// trailing span bytes left over.
	r := wirecodec.NewReader(rep.MarshalWire(nil))
	_ = r.Int()     // status
	_ = r.Int()     // group bits
	_ = r.Uvarint() // group value
	_ = r.Int()     // correct depth
	_ = r.Int()     // dmin
	n := r.Int()
	for i := 0; i < n; i++ {
		_ = r.String()
	}
	_ = r.String() // error
	if err := r.Err(); err != nil {
		t.Fatalf("old-shape decode of new reply: %v", err)
	}
	if r.Len() == 0 {
		t.Error("new reply carries no trailing span bytes to ignore")
	}
}
