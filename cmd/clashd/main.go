// Command clashd runs one live CLASH overlay node: a chord DHT member with
// the CLASH redirection layer, the continuous-query engine and the load-aware
// split/consolidation loop on top, speaking the framed wire protocol over
// TCP.
//
// Start a fresh overlay (the first node installs the initial key-space
// partition):
//
//	clashd -addr 127.0.0.1:7001 -status 127.0.0.1:8001
//
// Join an existing overlay:
//
//	clashd -addr 127.0.0.1:7002 -status 127.0.0.2:8002 -join 127.0.0.1:7001
//
// The -status address serves the node's control plane (internal/hub):
// GET /status (JSON snapshot), GET /metrics (Prometheus), GET /topology
// (ring walk), GET /traces/sample, GET /traces/spans (hop spans of sampled
// publishes, scraped by clashtop), GET /events (server-sent event stream),
// and the POST /admin/{drain,undrain,rebalance} and
// POST /admin/{split,merge}/{group} verbs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clash/internal/chord"
	"clash/internal/hub"
	"clash/internal/load"
	"clash/internal/overlay"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:7001", "transport listen address (doubles as the node identity)")
		join           = flag.String("join", "", "address of an existing overlay node to join; empty bootstraps a new overlay")
		statusAddr     = flag.String("status", "", "HTTP status listen address (empty disables the endpoint)")
		keyBits        = flag.Int("keybits", 24, "identifier key length N")
		spaceBits      = flag.Int("space-bits", chord.DefaultSpaceBits, "chord identifier space size M")
		capacity       = flag.Float64("capacity", 5000, "server capacity in weighted packets/second")
		bootstrapDepth = flag.Int("bootstrap-depth", 2, "depth of the initial key-space partition (bootstrap node only)")
		stabilize      = flag.Duration("stabilize", 250*time.Millisecond, "chord stabilization interval")
		loadCheck      = flag.Duration("load-check", 2*time.Second, "load measurement window and check interval")
		seed           = flag.Int64("seed", 0, "root seed for the maintenance-loop jitter (reproducible runs)")
		replicas       = flag.Int("replicas", 0, "key-group replication factor: replicas pushed to that many successors (0 = default 2, negative disables)")
		dialTimeout    = flag.Duration("dial-timeout", 0, "TCP connect timeout for outbound peer connections (0 = default 3s)")
		callTimeout    = flag.Duration("call-timeout", 0, "default per-call reply deadline when the caller sets none (0 = default 10s)")
		idleTimeout    = flag.Duration("idle-timeout", 0, "idle time after which pooled peer connections are closed (0 = default 5m)")
	)
	flag.Parse()
	tcpCfg := overlay.TCPConfig{DialTimeout: *dialTimeout, CallTimeout: *callTimeout, IdleTimeout: *idleTimeout}
	if err := run(*addr, *join, *statusAddr, *keyBits, *spaceBits, *capacity, *bootstrapDepth, *stabilize, *loadCheck, *seed, *replicas, tcpCfg); err != nil {
		fmt.Fprintln(os.Stderr, "clashd:", err)
		os.Exit(1)
	}
}

func run(addr, join, statusAddr string, keyBits, spaceBits int, capacity float64, bootstrapDepth int, stabilize, loadCheck time.Duration, seed int64, replicas int, tcpCfg overlay.TCPConfig) error {
	space, err := chord.NewSpace(spaceBits)
	if err != nil {
		return err
	}
	tr, err := overlay.ListenTCPConfig(addr, tcpCfg)
	if err != nil {
		return err
	}
	node, err := overlay.NewNode(tr, overlay.Config{
		KeyBits:           keyBits,
		Space:             space,
		Model:             load.DefaultModel(capacity),
		BootstrapDepth:    bootstrapDepth,
		StabilizeInterval: stabilize,
		LoadCheckInterval: loadCheck,
		Seed:              seed,
		ReplicationFactor: replicas,
	})
	if err != nil {
		tr.Close()
		return err
	}

	if join == "" {
		if err := node.BootstrapRoots(); err != nil {
			node.Close()
			return err
		}
		log.Printf("clashd %s: bootstrapped new overlay (%d root groups)", node.Addr(), 1<<uint(bootstrapDepth))
	} else {
		if err := node.Join(join); err != nil {
			node.Close()
			return fmt.Errorf("join %s: %w", join, err)
		}
		log.Printf("clashd %s: joined overlay via %s", node.Addr(), join)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var statusSrv *http.Server
	if statusAddr != "" {
		// The control-plane server is hardened against slow or hostile
		// clients: bounded header reads, bounded request reads, an idle
		// keep-alive cap and a small header limit. No WriteTimeout — the
		// /events stream is long-lived and manages its own per-write
		// deadlines through http.ResponseController.
		statusSrv = &http.Server{
			Addr:              statusAddr,
			Handler:           hub.New(node).Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			IdleTimeout:       2 * time.Minute,
			MaxHeaderBytes:    1 << 16,
		}
		go func() {
			if err := statusSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("clashd %s: control-plane server: %v", node.Addr(), err)
			}
		}()
		log.Printf("clashd %s: control plane at http://%s/ (status, metrics, topology, traces, events, admin)", node.Addr(), statusAddr)
	}

	done := make(chan struct{})
	go func() {
		node.Run(ctx)
		close(done)
	}()

	<-ctx.Done()
	log.Printf("clashd %s: shutting down", node.Addr())
	<-done
	if statusSrv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = statusSrv.Shutdown(shutdownCtx)
	}
	return node.Close()
}
