package hub

import (
	"sync"

	"clash/internal/metrics"
	"clash/internal/overlay"
)

// tracesCapacity bounds the sample ring served by /traces/sample.
const tracesCapacity = 256

// spansCapacity bounds the hop-span ring served by /traces/spans. Spans are
// smaller and more numerous than trace records (one sampled publish yields a
// handful across its path), so the ring is deeper.
const spansCapacity = 2048

// Traces stores sampled request traces: a bounded ring of the most recent
// TraceRecords plus per-stage latency histograms. It implements
// overlay.Observer (events are ignored) so it can also be installed
// standalone — clashload attaches one directly to its in-process nodes to
// report a per-stage latency summary without running a hub.
type Traces struct {
	// hist is the Prometheus view of the per-stage latencies (seconds);
	// absent when constructed without a registry.
	hist   metrics.HistogramVec
	bound  bool
	mu     sync.Mutex
	ring   []overlay.TraceRecord
	next   int
	full   bool
	count  uint64
	stages map[string]*metrics.LatencyHist

	// Hop spans live in their own ring under their own lock: span traffic
	// (several per sampled publish, pushed from async delivery goroutines)
	// must not contend with trace-record reads.
	spanMu    sync.Mutex
	spanRing  []overlay.Span
	spanNext  int
	spanFull  bool
	spanCount uint64
}

// NewTraces creates a trace store keeping the last capacity records
// (<= 0 selects the default). With a non-nil registry, stage observations
// also feed the clash_trace_stage_seconds histogram family.
func NewTraces(capacity int, reg *metrics.Registry) *Traces {
	if capacity <= 0 {
		capacity = tracesCapacity
	}
	t := &Traces{
		ring:     make([]overlay.TraceRecord, capacity),
		stages:   make(map[string]*metrics.LatencyHist),
		spanRing: make([]overlay.Span, spansCapacity),
	}
	if reg != nil {
		t.hist = reg.HistogramVec("clash_trace_stage_seconds",
			"Per-stage latency of sampled publish requests.",
			metrics.ExpBuckets(1e-6, 4, 11), "stage")
		t.bound = true
	}
	return t
}

// OnEvent implements overlay.Observer; Traces ignores protocol events.
func (t *Traces) OnEvent(overlay.Event) {}

// OnTrace stores one completed trace record.
func (t *Traces) OnTrace(rec overlay.TraceRecord) {
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.count++
	t.mu.Unlock()
}

// OnTraceStage records one stage observation (microseconds).
func (t *Traces) OnTraceStage(stage string, micros int64) {
	t.mu.Lock()
	h := t.stages[stage]
	if h == nil {
		h = metrics.NewLatencyHist()
		t.stages[stage] = h
	}
	h.Record(micros)
	t.mu.Unlock()
	if t.bound {
		t.hist.With(stage).Observe(float64(micros) / 1e6)
	}
}

// OnSpan stores one hop span of a sampled publish's cross-node path.
func (t *Traces) OnSpan(sp overlay.Span) {
	t.spanMu.Lock()
	t.spanRing[t.spanNext] = sp
	t.spanNext++
	if t.spanNext == len(t.spanRing) {
		t.spanNext = 0
		t.spanFull = true
	}
	t.spanCount++
	t.spanMu.Unlock()
}

// SpanSample is the /traces/spans document: this node's retained hop spans,
// optionally filtered to one trace.
type SpanSample struct {
	// Count is the total number of spans observed (not just retained).
	Count uint64 `json:"count"`
	// TraceID echoes the filter (0: unfiltered).
	TraceID uint64         `json:"traceId,omitempty"`
	Spans   []overlay.Span `json:"spans"`
}

// Spans snapshots the span ring. With a non-zero traceID only that trace's
// spans return, in recording order (the order a tree assembler wants);
// unfiltered, up to limit spans return newest first (<= 0: all retained).
func (t *Traces) Spans(traceID uint64, limit int) SpanSample {
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	n := t.spanNext
	if t.spanFull {
		n = len(t.spanRing)
	}
	s := SpanSample{Count: t.spanCount, TraceID: traceID}
	if traceID != 0 {
		// Oldest first: start at the oldest retained write.
		for i := 0; i < n; i++ {
			idx := i
			if t.spanFull {
				idx = (t.spanNext + i) % len(t.spanRing)
			}
			if t.spanRing[idx].TraceID == traceID {
				s.Spans = append(s.Spans, t.spanRing[idx])
			}
		}
		return s
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	s.Spans = make([]overlay.Span, 0, limit)
	for i := 0; i < limit; i++ {
		idx := (t.spanNext - 1 - i + len(t.spanRing)) % len(t.spanRing)
		s.Spans = append(s.Spans, t.spanRing[idx])
	}
	return s
}

// SpanCount returns the total number of spans observed.
func (t *Traces) SpanCount() uint64 {
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	return t.spanCount
}

// TraceSample is the /traces/sample document: per-stage latency summaries
// (microseconds) and the most recent records, newest first.
type TraceSample struct {
	// Count is the total number of trace records observed (not just retained).
	Count uint64 `json:"count"`
	// Stages maps stage name to its latency summary in microseconds.
	Stages map[string]metrics.Summary `json:"stages"`
	Recent []overlay.TraceRecord      `json:"recent"`
}

// Sample snapshots the store: stage summaries plus up to limit recent
// records, newest first (<= 0 returns all retained records).
func (t *Traces) Sample(limit int) TraceSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	s := TraceSample{
		Count:  t.count,
		Stages: make(map[string]metrics.Summary, len(t.stages)),
		Recent: make([]overlay.TraceRecord, 0, limit),
	}
	for stage, h := range t.stages {
		s.Stages[stage] = h.Summary()
	}
	// Walk backwards from the most recent write.
	for i := 0; i < limit; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		s.Recent = append(s.Recent, t.ring[idx])
	}
	return s
}

// StageSummaries returns the per-stage latency summaries (microseconds).
func (t *Traces) StageSummaries() map[string]metrics.Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]metrics.Summary, len(t.stages))
	for stage, h := range t.stages {
		out[stage] = h.Summary()
	}
	return out
}

// Count returns the total number of trace records observed.
func (t *Traces) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}
