// Command clashtop is the cluster-wide observability aggregator: it scrapes
// every node's control plane (/status, /metrics, /traces/spans), walks the
// ring through /topology, reassembles sampled publishes into cross-node trace
// trees with critical paths, merges fleet metrics (per-stage latency
// quantiles, group heat, headline counters) and runs cluster invariant
// probes (key-space coverage, ring successor order, replica health).
//
// One-shot JSON report (CI mode):
//
//	clashtop -hubs http://127.0.0.1:8001,http://127.0.0.1:8002 -once
//
// Assemble one trace across the fleet:
//
//	clashtop -hubs ... -trace 81914374837
//
// Default is a refreshing live view:
//
//	clashtop -hubs ... -interval 2s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"clash/internal/cluster"
)

func main() {
	var (
		hubs     = flag.String("hubs", "", "comma-separated hub base URLs (e.g. http://127.0.0.1:8001,http://127.0.0.1:8002)")
		once     = flag.Bool("once", false, "collect once, print the JSON report to stdout, and exit")
		traceID  = flag.Uint64("trace", 0, "assemble one trace by ID across the fleet and print it as JSON")
		interval = flag.Duration("interval", 2*time.Second, "live-mode refresh interval")
		recent   = flag.Int("recent", 8, "recent traces to assemble per pass")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-pass collection deadline")
	)
	flag.Parse()
	if *hubs == "" {
		fmt.Fprintln(os.Stderr, "clashtop: -hubs is required")
		os.Exit(2)
	}
	c := &cluster.Collector{}
	for _, h := range strings.Split(*hubs, ",") {
		if h = strings.TrimSpace(strings.TrimSuffix(h, "/")); h != "" {
			c.Hubs = append(c.Hubs, h)
		}
	}
	if len(c.Hubs) == 0 {
		fmt.Fprintln(os.Stderr, "clashtop: -hubs parsed to an empty list")
		os.Exit(2)
	}

	switch {
	case *traceID != 0:
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		tree := cluster.AssembleTrace(*traceID, c.SpansFor(ctx, *traceID))
		printJSON(tree)
		if !tree.Complete {
			os.Exit(1)
		}
	case *once:
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		printJSON(cluster.BuildReport(ctx, c, *recent))
	default:
		live(c, *interval, *recent, *timeout)
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "clashtop:", err)
		os.Exit(1)
	}
}

// live refreshes a terminal dashboard until interrupted.
func live(c *cluster.Collector, interval time.Duration, recent int, timeout time.Duration) {
	for {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		rep := cluster.BuildReport(ctx, c, recent)
		cancel()
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		render(rep)
		time.Sleep(interval)
	}
}

func render(rep *cluster.Report) {
	f := rep.Fleet
	fmt.Printf("clashtop — %d/%d nodes reachable", f.Reachable, f.Nodes)
	if len(rep.Unscraped) > 0 {
		fmt.Printf(", %d ring members unscraped", len(rep.Unscraped))
	}
	if f.VersionSkew {
		fmt.Printf("  [VERSION SKEW: %d builds]", len(f.Builds))
	}
	fmt.Println()
	fmt.Printf("groups %d  queries %d  spans %d  objects", f.GroupsActive, f.Queries, f.Spans)
	for _, status := range sortedKeys(f.Objects) {
		fmt.Printf(" %s=%.0f", status, f.Objects[status])
	}
	fmt.Println()

	fmt.Println("\ninvariants:")
	for _, p := range rep.Probes {
		mark := "FAIL"
		if p.OK {
			mark = "ok  "
		}
		fmt.Printf("  %s %-10s %s\n", mark, p.Name, p.Detail)
		for _, v := range p.Violations {
			fmt.Printf("       ! %s\n", v)
		}
	}

	if len(f.Stages) > 0 {
		fmt.Println("\nstage latency (fleet-merged):")
		fmt.Printf("  %-12s %10s %10s %10s %8s\n", "stage", "p50", "p95", "p99", "count")
		for _, stage := range sortedStageKeys(f.Stages) {
			s := f.Stages[stage]
			fmt.Printf("  %-12s %10s %10s %10s %8d\n",
				stage, fmtSeconds(s.P50), fmtSeconds(s.P95), fmtSeconds(s.P99), s.Count)
		}
	}

	if len(f.Heat) > 0 {
		fmt.Println("\nhottest groups:")
		for _, g := range f.Heat {
			fmt.Printf("  %-20s load %.3f  queries %-5d holder %s\n", g.Group, g.Load, g.Queries, g.Holder)
		}
	}

	if len(rep.Traces) > 0 {
		fmt.Printf("\nrecent traces (%d complete of %d):\n", rep.TracesComplete, len(rep.Traces))
		for _, tr := range rep.Traces {
			state := "incomplete"
			if tr.Complete {
				state = "complete"
			}
			fmt.Printf("  trace %d — %d spans, %s, critical path %s:\n",
				tr.TraceID, tr.Spans, state, fmtMicros(tr.CriticalPathMicros))
			for _, hop := range tr.CriticalPath {
				fmt.Printf("    %-18s %-22s %10s  (cum %s)\n",
					hop.Kind, hop.Node, fmtMicros(hop.Micros), fmtMicros(hop.CumMicros))
			}
		}
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedStageKeys(m map[string]cluster.StageLatency) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtSeconds(s float64) string {
	return fmtMicros(int64(s * 1e6))
}

func fmtMicros(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
