package lockorder_test

import (
	"testing"

	"clash/internal/analysis/analysistest"
	"clash/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "core")
}
