// Package lockorder enforces core's stripe-lock acquisition order.
//
// The sharded work table (PR 8) documents one global order: the shallow
// stripe first, then the deep shards ascending — exactly what Server.lockAll
// does — and single-stripe operations never take a second stripe. Holding a
// stripe while acquiring another one that is not strictly later in that
// order can deadlock against lockAll (or a mirrored pair of single-stripe
// operations), so it is an error.
//
// Acquisitions recognised (by the serverShard/Server type names):
//
//	sh.lock(), sh.mu.Lock()  — one stripe (sh of type *serverShard)
//	s.lockAll()              — every stripe, shallow first
//
// Ranks: s.shallow < s.shards[0] < s.shards[1] < ... A range loop over the
// shards field acquires ascending by construction and is allowed while only
// the shallow stripe is held (the canonical lockAll body). An acquisition
// whose rank cannot be proven (arbitrary expression, non-constant index)
// is only legal when nothing is held. TryLock never blocks and is ignored.
package lockorder

import (
	"go/ast"
	"go/constant"
	"go/types"

	"clash/internal/analysis"
)

// stripeType and serverType are the type names the analyzer keys on; the
// testdata mirrors core's naming.
const (
	stripeType = "serverShard"
	serverType = "Server"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "stripe locks must follow the documented global order: shallow first, then shards ascending (Server.lockAll)",
	Run:  run,
}

// rank orders one acquisition in the global lock order.
type rank struct {
	// kind: "shallow" (-1), "index" (shards[i], i constant), "loop"
	// (ascending range over shards), "all" (lockAll), "unknown".
	kind string
	idx  int64
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkBody(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkBody walks one function (or function literal) body in source order,
// tracking held stripe locks. Function literals get their own fresh state:
// they run on other goroutines or after the enclosing frame released.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var held []rank
	// loopVars maps the value variable of an active `range x.shards` loop to
	// that loop, so locking it is recognised as the ascending walk.
	loopVars := make(map[types.Object]bool)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, n.Body)
			return false
		case *ast.DeferStmt:
			// A deferred unlock releases at return; for ordering purposes the
			// lock stays held for the rest of the body, which is exactly the
			// default, so skip the call entirely.
			return false
		case *ast.RangeStmt:
			if isShardsRange(pass, n) {
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.Info.Defs[id]; obj != nil {
						// The var's scope is the loop body, so leaving it in
						// the map after the loop cannot misclassify anything.
						loopVars[obj] = true
					}
				}
			}
			// Fall through: the range body is walked with the current state.
			return true
		case *ast.CallExpr:
			if r, ok := acquisition(pass, n, loopVars); ok {
				reportIfOutOfOrder(pass, n, r, held)
				if r.kind != "loop" { // the loop var re-locks per iteration
					held = append(held, r)
				} else if len(held) == 0 || held[len(held)-1].kind != "loop" {
					held = append(held, r)
				}
				return false
			}
			if isRelease(pass, n) {
				if len(held) > 0 {
					held = held[:len(held)-1]
				}
				return false
			}
			if isReleaseAll(pass, n) {
				held = held[:0]
				return false
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func reportIfOutOfOrder(pass *analysis.Pass, call *ast.CallExpr, r rank, held []rank) {
	if len(held) == 0 {
		return
	}
	switch r.kind {
	case "all":
		pass.Reportf(call.Pos(), "lockAll acquired while already holding a stripe lock (documented order: shallow, then shards ascending; release first)")
	case "loop":
		for _, h := range held {
			if h.kind != "shallow" {
				pass.Reportf(call.Pos(), "ascending shard walk started while holding %s (documented order: shallow, then shards ascending)", describe(h))
				return
			}
		}
	case "shallow":
		pass.Reportf(call.Pos(), "shallow stripe locked while holding %s (documented order: shallow, then shards ascending)", describe(held[len(held)-1]))
	case "index":
		for _, h := range held {
			if h.kind == "shallow" {
				continue // shallow ranks before every shard
			}
			if h.kind == "index" && h.idx < r.idx {
				continue // strictly ascending is consistent with the global order
			}
			pass.Reportf(call.Pos(), "stripe shards[%d] locked while holding %s (documented order: shallow, then shards ascending)", r.idx, describe(h))
			return
		}
	default: // unknown rank: only provable when nothing is held
		pass.Reportf(call.Pos(), "second stripe lock acquired while holding %s; the order cannot be proven (documented order: shallow, then shards ascending — single-stripe operations never nest)", describe(held[len(held)-1]))
	}
}

func describe(r rank) string {
	switch r.kind {
	case "shallow":
		return "the shallow stripe"
	case "index":
		return "a deep stripe"
	case "all":
		return "every stripe (lockAll)"
	default:
		return "a stripe lock"
	}
}

// acquisition classifies call as a stripe-lock acquisition and ranks it.
func acquisition(pass *analysis.Pass, call *ast.CallExpr, loopVars map[types.Object]bool) (rank, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return rank{}, false
	}
	switch sel.Sel.Name {
	case "lockAll":
		if analysis.NamedTypeName(pass.Info.TypeOf(sel.X)) == serverType {
			return rank{kind: "all"}, true
		}
	case "lock":
		if analysis.NamedTypeName(pass.Info.TypeOf(sel.X)) == stripeType {
			return classify(pass, sel.X, loopVars), true
		}
	case "Lock":
		// sh.mu.Lock(): the receiver is the mu field of a stripe.
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && inner.Sel.Name == "mu" &&
			analysis.NamedTypeName(pass.Info.TypeOf(inner.X)) == stripeType {
			return classify(pass, inner.X, loopVars), true
		}
	}
	return rank{}, false
}

// classify ranks the stripe expression itself.
func classify(pass *analysis.Pass, e ast.Expr, loopVars map[types.Object]bool) rank {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if e.Sel.Name == "shallow" {
			return rank{kind: "shallow"}
		}
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok && sel.Sel.Name == "shards" {
			if tv, ok := pass.Info.Types[e.Index]; ok && tv.Value != nil {
				if i, exact := constant.Int64Val(tv.Value); exact {
					return rank{kind: "index", idx: i}
				}
			}
		}
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil && loopVars[obj] {
			return rank{kind: "loop"}
		}
	}
	return rank{kind: "unknown"}
}

// isShardsRange reports whether n ranges over a shards field.
func isShardsRange(pass *analysis.Pass, n *ast.RangeStmt) bool {
	sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "shards"
}

// isRelease matches sh.mu.Unlock() for a stripe.
func isRelease(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Unlock" {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	return ok && inner.Sel.Name == "mu" &&
		analysis.NamedTypeName(pass.Info.TypeOf(inner.X)) == stripeType
}

// isReleaseAll matches s.unlockAll().
func isReleaseAll(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "unlockAll" &&
		analysis.NamedTypeName(pass.Info.TypeOf(sel.X)) == serverType
}
