// Package hot exercises the //clash:hotpath allocation rules.
package hot

import (
	"fmt"
	"strconv"
)

type result struct {
	n  int
	ok bool
}

type sink struct {
	last any
	err  error
}

//clash:hotpath
func flagged(s *sink, key uint64, bits int) (string, error) {
	label := fmt.Sprintf("%d/%d", key, bits) // want `hot path flagged calls fmt\.Sprintf`
	m := make(map[string]int)                // want `hot path flagged allocates a map with make`
	m[label] = bits
	counts := map[uint64]int{key: 1} // want `hot path flagged allocates a map literal`
	_ = counts
	s.last = bits      // want `hot path flagged boxes int into any`
	_ = any(key)       // want `hot path flagged boxes uint64 into any`
	take(result{n: 1}) // want `hot path flagged boxes hot\.result into any argument`
	return label, nil
}

//clash:hotpath
func flaggedReturn(v result) any {
	return v // want `hot path flaggedReturn boxes hot\.result into any return`
}

// clean is marked but allocation-free: strconv, struct work, stored errors
// and interface-to-interface moves are all fine.
//
//clash:hotpath
func clean(s *sink, key uint64, prior error) (string, error) {
	label := strconv.FormatUint(key, 10)
	r := result{n: len(label), ok: true}
	if r.ok {
		s.err = prior // interface-to-interface, no box
	}
	var e error
	e = prior
	_ = e
	take(s.last) // any-to-any, no box
	return label, nil
}

// unmarked is identical to flagged but carries no marker: nothing reported.
func unmarked(s *sink, key uint64) string {
	s.last = key
	return fmt.Sprintf("%d", key)
}

//clash:hotpath
func suppressed(s *sink, key uint64) {
	//clashvet:ignore hotpath cold error branch, runs at most once per split
	s.last = key
}

//clash:hotpath
func badDirective(s *sink, key uint64) {
	/* want `malformed //clashvet:ignore directive: missing reason` */ //clashvet:ignore hotpath
	s.last = key                                                       // want `hot path badDirective boxes uint64 into any`
}

func take(v any) {}
