package chord

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

const (
	benchMembers = 64
	benchVnodes  = 4
	benchPoints  = 1 << 12
)

func benchRing(b *testing.B) (*Ring, []Member, []ID) {
	b.Helper()
	r := NewRing(WithVirtualServers(benchVnodes))
	members := make([]Member, benchMembers)
	for i := range members {
		members[i] = Member(fmt.Sprintf("server-%03d", i))
		if err := r.Add(members[i]); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	targets := make([]ID, benchPoints)
	for i := range targets {
		targets[i] = r.Space().Wrap(rng.Uint64())
	}
	return r, members, targets
}

func BenchmarkRingLookup(b *testing.B) {
	r, members, targets := benchRing(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Lookup(members[i%len(members)], targets[i%len(targets)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingLookupParallel(b *testing.B) {
	r, members, targets := benchRing(b)
	var cursor atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1) * 7919
		for pb.Next() {
			r.Lookup(members[i%uint64(len(members))], targets[i%uint64(len(targets))])
			i++
		}
	})
}

func BenchmarkRingMap(b *testing.B) {
	r, _, _ := benchRing(b)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("virtual-key-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Map(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}
