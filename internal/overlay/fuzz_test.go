package overlay

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"clash/internal/core"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame parser: it must
// error on malformed input, never panic, never return a payload longer than
// the input, and always round-trip what appendFrame produced.
func FuzzReadFrame(f *testing.F) {
	seed := func(seq uint64, typ byte, payload []byte) {
		buf, err := appendFrame(nil, seq, typ, payload)
		if err == nil {
			f.Add(buf)
		}
	}
	seed(1, typePing, nil)
	seed(1<<40, typeAcceptObject, []byte("payload"))
	seed(7, typeReplyErr, bytes.Repeat([]byte{0xEE}, 300))
	// Oversized declared length with a short stream.
	var over [frameHeaderSize]byte
	binary.BigEndian.PutUint32(over[0:4], maxFrameSize+1)
	over[12] = wireVersion
	f.Add(over[:])
	// Large declared length, truncated body.
	var trunc [frameHeaderSize + 3]byte
	binary.BigEndian.PutUint32(trunc[0:4], 1<<20)
	trunc[12] = wireVersion
	f.Add(trunc[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readFrame(bytes.NewReader(data))
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) && len(data) >= frameHeaderSize {
				// Recoverable skip: the header must have been decoded.
				want := binary.BigEndian.Uint64(data[4:12])
				if got.seq != want {
					t.Fatalf("oversized frame seq = %d, want %d", got.seq, want)
				}
			}
			return
		}
		if len(got.payload) > len(data) {
			t.Fatalf("payload %d bytes from %d-byte input", len(got.payload), len(data))
		}
		// Whatever parsed must re-encode to the bytes consumed.
		enc, eerr := appendFrame(nil, got.seq, got.typ, got.payload)
		if eerr != nil {
			t.Fatalf("re-encode of parsed frame failed: %v", eerr)
		}
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", enc, data[:len(enc)])
		}
	})
}

// FuzzCodecRoundTrip feeds arbitrary bytes to every MarshalWire/UnmarshalWire
// pair in the protocol (overlay-local and core messages): decoding must never
// panic or over-allocate, and anything that decodes must re-encode and decode
// again to the same message (round-trip identity on the decoded value).
func FuzzCodecRoundTrip(f *testing.F) {
	for _, msg := range overlayWireCases() {
		f.Add(msg.MarshalWire(nil))
	}
	coreMsgs := []wireMsg{
		&core.AcceptObjectMsg{KeyValue: 0b1011, KeyBits: 16, Depth: 3, Kind: core.ObjectData, Payload: []byte("p")},
		&core.AcceptObjectReplyMsg{Status: core.StatusOK, GroupValue: 3, GroupBits: 2, CorrectDepth: 2, Matches: []string{"q"}},
		&core.AcceptBatchMsg{Objects: []core.AcceptObjectMsg{{KeyValue: 1, KeyBits: 4, Depth: 1, Kind: core.ObjectData}}},
		&core.AcceptBatchReplyMsg{Replies: []core.AcceptObjectReplyMsg{{Status: core.StatusIncorrectDepth, DMin: 2}}},
		&core.AcceptKeyGroupMsg{GroupValue: 1, GroupBits: 3, Parent: "p", Queries: [][]byte{[]byte("q")}},
		&core.LoadReportMsg{GroupValue: 1, GroupBits: 1, Load: 0.5, From: "n"},
		&core.ReleaseKeyGroupMsg{GroupValue: 1, GroupBits: 1, Parent: "p"},
		&core.ReleaseKeyGroupReplyMsg{GroupValue: 1, GroupBits: 1, OK: true, Queries: [][]byte{[]byte("s")}},
	}
	for _, msg := range coreMsgs {
		f.Add(msg.MarshalWire(nil))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		targets := append(overlayWireCases(), coreMsgs...)
		for _, proto := range targets {
			msg := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(wireMsg)
			if err := msg.UnmarshalWire(data); err != nil {
				continue
			}
			// Decoded fine: encode and decode again must be identity. The
			// comparison goes through %#v (deterministic: sorted map keys)
			// rather than DeepEqual so NaN attribute values — which are
			// legal on the wire — do not false-positive as divergence.
			enc := msg.MarshalWire(nil)
			again := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(wireMsg)
			if err := again.UnmarshalWire(enc); err != nil {
				t.Fatalf("%T: re-decode of re-encode failed: %v", msg, err)
			}
			if got, want := fmt.Sprintf("%#v", again), fmt.Sprintf("%#v", msg); got != want {
				t.Fatalf("%T: round trip diverged:\n got %s\nwant %s", msg, got, want)
			}
		}
	})
}
