package metrics

import "sync"

// SetMaxPoints bounds each series in a Set: a series retains exactly the
// most recent SetMaxPoints samples in a ring window. A long-running overlay
// node records a handful of samples per load-check period forever; without
// the cap its memory and status payload would grow without bound.
const SetMaxPoints = 4096

// ringSeries is one bounded series: a fixed-capacity ring of samples. Until
// the ring fills, pts grows by appending; once full, head is the oldest slot
// and new samples overwrite it. Snapshots unroll the ring chronologically, so
// consumers (and the JSON shape) see a plain oldest-first point list.
type ringSeries struct {
	name string
	pts  []Point
	head int
	full bool
}

func (rs *ringSeries) observe(t, v float64) {
	p := Point{Time: t, Value: v}
	if !rs.full {
		rs.pts = append(rs.pts, p)
		if len(rs.pts) == SetMaxPoints {
			rs.full = true
		}
		return
	}
	rs.pts[rs.head] = p
	rs.head++
	if rs.head == len(rs.pts) {
		rs.head = 0
	}
}

// unroll copies the ring into a fresh chronological TimeSeries.
func (rs *ringSeries) unroll() *TimeSeries {
	ts := &TimeSeries{Name: rs.name, Points: make([]Point, 0, len(rs.pts))}
	if rs.full {
		ts.Points = append(ts.Points, rs.pts[rs.head:]...)
		ts.Points = append(ts.Points, rs.pts[:rs.head]...)
	} else {
		ts.Points = append(ts.Points, rs.pts...)
	}
	return ts
}

// Set is a named collection of time series with internal synchronisation, so
// concurrent producers (the overlay maintenance loop, connection handlers)
// can record samples without coordinating. Series are created on first use
// and keep their creation order for stable rendering; each series keeps
// exactly the SetMaxPoints most recent samples (a ring window — appending the
// 4097th sample evicts the 1st, not half the history).
//
// TimeSeries itself stays unsynchronised for the single-owner simulator use;
// Set is the concurrency boundary the live overlay records through.
type Set struct {
	mu     sync.Mutex
	series map[string]*ringSeries
	order  []string
}

// NewSet creates an empty set.
func NewSet() *Set {
	return &Set{series: make(map[string]*ringSeries)}
}

// Observe appends a sample to the named series, creating it if needed.
func (s *Set) Observe(name string, t, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.series[name]
	if !ok {
		rs = &ringSeries{name: name}
		s.series[name] = rs
		s.order = append(s.order, name)
	}
	rs.observe(t, v)
}

// Get returns a chronological copy of the named series (nil when absent).
func (s *Set) Get(name string) *TimeSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, ok := s.series[name]
	if !ok {
		return nil
	}
	return rs.unroll()
}

// Snapshot returns chronological copies of every series in creation order.
// The copies are safe to marshal or mutate without racing the producers.
func (s *Set) Snapshot() []TimeSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TimeSeries, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, *s.series[name].unroll())
	}
	return out
}
