// Package metrics provides the lightweight measurement primitives used by the
// live overlay's status reporting, the experiment harness and the planned
// simulator: time series sampled on the
// simulation clock, summary statistics, and integer histograms (for the
// workload key-frequency plots of Figure 3).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (time, value) sample. Time is in seconds of simulated time.
type Point struct {
	Time  float64 `json:"t"`
	Value float64 `json:"v"`
}

// TimeSeries is an append-only series of samples.
type TimeSeries struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// NewTimeSeries creates a named, empty series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Append adds a sample at the given time.
func (ts *TimeSeries) Append(t, v float64) {
	ts.Points = append(ts.Points, Point{Time: t, Value: v})
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.Points) }

// Last returns the most recent sample (zero Point when empty).
func (ts *TimeSeries) Last() Point {
	if len(ts.Points) == 0 {
		return Point{}
	}
	return ts.Points[len(ts.Points)-1]
}

// Max returns the maximum value in the series (0 when empty).
func (ts *TimeSeries) Max() float64 {
	maxV := math.Inf(-1)
	for _, p := range ts.Points {
		if p.Value > maxV {
			maxV = p.Value
		}
	}
	if math.IsInf(maxV, -1) {
		return 0
	}
	return maxV
}

// Mean returns the mean value of the series (0 when empty).
func (ts *TimeSeries) Mean() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range ts.Points {
		sum += p.Value
	}
	return sum / float64(len(ts.Points))
}

// MeanOver returns the mean of samples with Time in [from, to) (0 if none).
func (ts *TimeSeries) MeanOver(from, to float64) float64 {
	var sum float64
	n := 0
	for _, p := range ts.Points {
		if p.Time >= from && p.Time < to {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxOver returns the maximum of samples with Time in [from, to) (0 if none).
func (ts *TimeSeries) MaxOver(from, to float64) float64 {
	maxV := math.Inf(-1)
	for _, p := range ts.Points {
		if p.Time >= from && p.Time < to && p.Value > maxV {
			maxV = p.Value
		}
	}
	if math.IsInf(maxV, -1) {
		return 0
	}
	return maxV
}

// Summary holds descriptive statistics of a sample set.
type Summary struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
	P50   float64
	P95   float64
	P99   float64
}

// Summarize computes a Summary of the values (zero Summary when empty).
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
		P50:   percentile(sorted, 0.50),
		P95:   percentile(sorted, 0.95),
		P99:   percentile(sorted, 0.99),
	}
}

// percentile returns the p-quantile of an ascending-sorted slice using the
// nearest-rank method.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// IntHistogram counts occurrences per integer bucket (e.g. key frequency per
// 8-bit base value in Figure 3).
type IntHistogram struct {
	Name    string
	buckets []int64
}

// NewIntHistogram creates a histogram with the given number of buckets.
func NewIntHistogram(name string, buckets int) *IntHistogram {
	if buckets < 1 {
		buckets = 1
	}
	return &IntHistogram{Name: name, buckets: make([]int64, buckets)}
}

// Add increments bucket i (out-of-range adds are clamped to the edges).
func (h *IntHistogram) Add(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
}

// Buckets returns a copy of the bucket counts.
func (h *IntHistogram) Buckets() []int64 {
	out := make([]int64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// Total returns the total number of samples recorded.
func (h *IntHistogram) Total() int64 {
	var sum int64
	for _, c := range h.buckets {
		sum += c
	}
	return sum
}

// MaxBucket returns the index and count of the fullest bucket.
func (h *IntHistogram) MaxBucket() (int, int64) {
	bestI, bestC := 0, int64(0)
	for i, c := range h.buckets {
		if c > bestC {
			bestI, bestC = i, c
		}
	}
	return bestI, bestC
}

// SkewRatio returns max bucket count divided by the mean bucket count — a
// simple measure of how skewed the distribution is (1.0 means perfectly
// uniform).
func (h *IntHistogram) SkewRatio() float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(h.buckets))
	_, maxC := h.MaxBucket()
	return float64(maxC) / mean
}

// Table renders series as aligned text columns: one row per sample time of
// the first series, one column per series. It is the rendering the planned
// simulator harness will use to print the paper's figures as text.
func Table(header string, series ...*TimeSeries) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	b.WriteString(fmt.Sprintf("%-12s", "time"))
	for _, s := range series {
		b.WriteString(fmt.Sprintf("%-18s", s.Name))
	}
	b.WriteByte('\n')
	if len(series) == 0 || series[0].Len() == 0 {
		return b.String()
	}
	for i, p := range series[0].Points {
		b.WriteString(fmt.Sprintf("%-12.1f", p.Time))
		for _, s := range series {
			if i < len(s.Points) {
				b.WriteString(fmt.Sprintf("%-18.3f", s.Points[i].Value))
			} else {
				b.WriteString(fmt.Sprintf("%-18s", "-"))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
