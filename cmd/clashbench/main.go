// Command clashbench runs a synthetic routing workload through the CLASH hot
// paths — client cache Route, Server Work Table lookup, continuous-query
// matching and DHT ring lookup — and writes a machine-readable snapshot
// (BENCH_routing.json by default) so every perf PR has a trajectory to beat.
//
// The trie-backed paths are benchmarked side by side with the frozen pre-trie
// map-probing baselines (core.LegacyRouter, core.LegacyTable); the snapshot
// records the resulting speedups.
//
// Usage:
//
//	go run ./cmd/clashbench -keys 1000000 -groups 1000 -out BENCH_routing.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"clash/internal/benchutil"
	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/core"
	"clash/internal/cq"
)

type config struct {
	KeyBits     int `json:"key_bits"`
	Groups      int `json:"groups"`
	Keys        int `json:"keys"`
	Queries     int `json:"queries"`
	RingMembers int `json:"ring_members"`
	RingVnodes  int `json:"ring_vnodes"`
	MaxProcs    int `json:"go_max_procs"`
}

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type snapshot struct {
	Config     config             `json:"config"`
	GoVersion  string             `json:"go_version"`
	Benchmarks []result           `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("clashbench: ")
	var (
		keys    = flag.Int("keys", 1_000_000, "number of identifier keys in the synthetic workload")
		groups  = flag.Int("groups", 1000, "number of cached key groups (prefix-free partition)")
		keyBits = flag.Int("keybits", bitkey.MaxBits, "identifier key length N")
		queries = flag.Int("queries", 1000, "number of registered continuous queries")
		members = flag.Int("members", 64, "DHT ring members")
		vnodes  = flag.Int("vnodes", 4, "virtual servers per ring member")
		out     = flag.String("out", "BENCH_routing.json", "output snapshot path")
		seed    = flag.Int64("seed", 1, "workload PRNG seed")
	)
	flag.Parse()

	cfg := config{
		KeyBits:     *keyBits,
		Groups:      *groups,
		Keys:        *keys,
		Queries:     *queries,
		RingMembers: *members,
		RingVnodes:  *vnodes,
		MaxProcs:    runtime.GOMAXPROCS(0),
	}
	log.Printf("workload: %d keys, %d groups, %d-bit key space", cfg.Keys, cfg.Groups, cfg.KeyBits)

	rng := rand.New(rand.NewSource(*seed))
	partition := benchutil.PrefixFreeGroups(rng, cfg.KeyBits, cfg.Groups)
	workload := benchutil.RandomKeys(rng, cfg.KeyBits, cfg.Keys)

	snap := snapshot{Config: cfg, GoVersion: runtime.Version(), Speedups: map[string]float64{}}
	run := func(name string, fn func(b *testing.B)) result {
		r := testing.Benchmark(fn)
		res := result{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		log.Printf("%-28s %12.1f ns/op %6d allocs/op %10d iters", name, res.NsPerOp, res.AllocsPerOp, res.Iterations)
		snap.Benchmarks = append(snap.Benchmarks, res)
		return res
	}
	speedup := func(metric string, legacy, trie result) {
		if trie.NsPerOp > 0 {
			snap.Speedups[metric] = legacy.NsPerOp / trie.NsPerOp
		}
	}

	// Client cache: trie router vs. legacy per-depth map probing.
	router := core.NewRouter(cfg.KeyBits)
	legacyRouter := core.NewLegacyRouter(cfg.KeyBits)
	for i, g := range partition {
		id := core.ServerID(fmt.Sprintf("s%03d", i%257))
		router.Learn(g, id)
		legacyRouter.Learn(g, id)
	}
	routeTrie := run("route/trie", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			router.Route(workload[i%len(workload)])
		}
	})
	routeLegacy := run("route/legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyRouter.Route(workload[i%len(workload)])
		}
	})
	speedup("route", routeLegacy, routeTrie)

	// Server Work Table: trie-backed lookup (through the server mutex, as in
	// production) vs. the legacy lock-free map probing — a handicap the trie
	// path wins under anyway.
	server, err := core.NewServer("bench", cfg.KeyBits)
	if err != nil {
		log.Fatal(err)
	}
	legacyTable := core.NewLegacyTable(cfg.KeyBits)
	for _, g := range partition {
		if err := server.HandleAcceptKeyGroup(g, "seed"); err != nil {
			log.Fatal(err)
		}
		legacyTable.Put(&core.Entry{Group: g, Active: true})
	}
	tableTrie := run("active_entry_for/trie", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			server.ManagesKey(workload[i%len(workload)])
		}
	})
	tableLegacy := run("active_entry_for/legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyTable.ActiveEntryFor(workload[i%len(workload)])
		}
	})
	speedup("active_entry_for", tableLegacy, tableTrie)

	// Continuous-query matching over a trie region index.
	engine, err := cq.NewEngine(cfg.KeyBits)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < cfg.Queries; i++ {
		q := cq.Query{
			ID:         fmt.Sprintf("q%05d", i),
			Region:     partition[i%len(partition)],
			Predicates: []cq.Predicate{{Attr: "speed", Op: cq.OpGe, Value: 30}},
		}
		if err := engine.Register(q); err != nil {
			log.Fatal(err)
		}
	}
	events := make([]cq.Event, 1<<14)
	for i := range events {
		events[i] = cq.Event{
			Key:   workload[rng.Intn(len(workload))],
			Attrs: map[string]float64{"speed": float64(rng.Intn(60))},
		}
	}
	run("cq_match/trie", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine.Match(events[i%len(events)])
		}
	})

	// DHT ring lookup with cached vnode start points.
	ring := chord.NewRing(chord.WithVirtualServers(cfg.RingVnodes))
	ringMembers := make([]chord.Member, cfg.RingMembers)
	for i := range ringMembers {
		ringMembers[i] = chord.Member(fmt.Sprintf("server-%03d", i))
		if err := ring.Add(ringMembers[i]); err != nil {
			log.Fatal(err)
		}
	}
	targets := make([]chord.ID, 1<<12)
	for i := range targets {
		targets[i] = ring.Space().Wrap(rng.Uint64())
	}
	run("ring_lookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := ring.Lookup(ringMembers[i%len(ringMembers)], targets[i%len(targets)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (route %.0fx, active_entry_for %.0fx vs legacy)",
		*out, snap.Speedups["route"], snap.Speedups["active_entry_for"])
}
