package bitkey

import (
	"fmt"
	"strings"
)

// Group is a CLASH key group: the set of all N-bit identifier keys whose
// first Depth bits equal Prefix. The paper writes a group in wildcard
// notation, e.g. "0110*" for the group with prefix 0110 at depth 4.
//
// A Group is identified by its prefix alone; the total key length N is a
// property of the key space, not of the group, and is supplied where needed
// (e.g. when expanding the virtual key).
type Group struct {
	// Prefix holds the Depth prefix bits of the group.
	Prefix Key
}

// NewGroup builds a group from a prefix key. The group's depth is the prefix
// length.
func NewGroup(prefix Key) Group { return Group{Prefix: prefix} }

// ParseGroup parses wildcard notation such as "0110*" (the trailing '*' is
// optional) into a Group.
func ParseGroup(s string) (Group, error) {
	s = strings.TrimSuffix(s, "*")
	k, err := Parse(s)
	if err != nil {
		return Group{}, err
	}
	return Group{Prefix: k}, nil
}

// MustParseGroup is like ParseGroup but panics on error.
func MustParseGroup(s string) Group {
	g, err := ParseGroup(s)
	if err != nil {
		panic(err)
	}
	return g
}

// Depth returns the group's depth d (the number of significant prefix bits).
func (g Group) Depth() int { return g.Prefix.Bits }

// String renders the group in the paper's wildcard notation ("0110*").
func (g Group) String() string {
	if g.Prefix.Bits == 0 {
		return "*"
	}
	return g.Prefix.String() + "*"
}

// Contains reports whether identifier key k belongs to the group, i.e. the
// group prefix is a prefix of k.
func (g Group) Contains(k Key) bool { return k.HasPrefix(g.Prefix) }

// ContainsGroup reports whether other is a (not necessarily strict) subgroup
// of g.
func (g Group) ContainsGroup(other Group) bool { return other.Prefix.HasPrefix(g.Prefix) }

// Equal reports whether two groups denote the same prefix.
func (g Group) Equal(other Group) bool { return g.Prefix.Equal(other.Prefix) }

// VirtualKey returns the group's N-bit virtual key: the prefix bits followed
// by N-d zero bits, as a Key of length n. Applying the DHT hash to this key
// yields the hash key that locates the group's server.
func (g Group) VirtualKey(n int) (Key, error) {
	if n < g.Prefix.Bits || n > MaxBits {
		return Key{}, fmt.Errorf("%w: expand depth-%d group to %d bits", ErrBadLength, g.Prefix.Bits, n)
	}
	padded, err := g.Prefix.Padded(n)
	if err != nil {
		return Key{}, err
	}
	return Key{Value: padded, Bits: n}, nil
}

// Split returns the two depth d+1 subgroups obtained by appending a 0 bit
// (left child) and a 1 bit (right child) to the group prefix. Per the paper,
// the left child's virtual key expands to the same N-bit value as the parent
// (and therefore maps to the same server), while the right child most likely
// maps elsewhere.
func (g Group) Split() (left, right Group, err error) {
	l, err := g.Prefix.Extend(0)
	if err != nil {
		return Group{}, Group{}, err
	}
	r, err := g.Prefix.Extend(1)
	if err != nil {
		return Group{}, Group{}, err
	}
	return Group{Prefix: l}, Group{Prefix: r}, nil
}

// Parent returns the depth d-1 group obtained by dropping the last prefix
// bit, and false if the group is already the root (depth 0).
func (g Group) Parent() (Group, bool) {
	if g.Prefix.Bits == 0 {
		return Group{}, false
	}
	p, err := g.Prefix.Prefix(g.Prefix.Bits - 1)
	if err != nil {
		return Group{}, false
	}
	return Group{Prefix: p}, true
}

// Sibling returns the group that shares g's parent (same prefix, last bit
// flipped), and false if g is the root.
func (g Group) Sibling() (Group, bool) {
	if g.Prefix.Bits == 0 {
		return Group{}, false
	}
	return Group{Prefix: Key{Value: g.Prefix.Value ^ 1, Bits: g.Prefix.Bits}}, true
}

// IsLeftChild reports whether the group's last prefix bit is 0 (i.e. it is
// the child that maps back to its parent's server). The root is not a child
// of anything and returns false.
func (g Group) IsLeftChild() bool {
	return g.Prefix.Bits > 0 && g.Prefix.Value&1 == 0
}

// Size returns the number of distinct N-bit identifier keys contained in the
// group (2^(N-d)). It returns an error if n is smaller than the group depth.
func (g Group) Size(n int) (uint64, error) {
	if n < g.Prefix.Bits || n > MaxBits {
		return 0, fmt.Errorf("%w: size of depth-%d group in %d-bit space", ErrBadLength, g.Prefix.Bits, n)
	}
	if n-g.Prefix.Bits == MaxBits {
		return 0, fmt.Errorf("%w: group size overflows uint64", ErrOverflow)
	}
	return 1 << uint(n-g.Prefix.Bits), nil
}

// Shape implements the paper's Shape() function: it maps an N-bit identifier
// key and a depth d to the key group containing it at that depth (the group
// whose prefix is the first d bits of the key).
func Shape(k Key, d int) (Group, error) {
	p, err := k.Prefix(d)
	if err != nil {
		return Group{}, err
	}
	return Group{Prefix: p}, nil
}

// LongestCommonPrefix returns the length of the longest common prefix of two
// keys.
func LongestCommonPrefix(a, b Key) int { return commonBits(a, b) }
