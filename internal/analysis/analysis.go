// Package analysis is a self-contained static-analysis framework modelled on
// golang.org/x/tools/go/analysis, built only on the standard library's go/ast
// and go/types so the repo stays dependency-free. It powers cmd/clashvet: a
// multichecker that mechanically enforces the repo's concurrency, pooling,
// clock and wire invariants (the rules PRs 3-9 established by comment and
// hand-audit).
//
// An Analyzer inspects one type-checked package at a time through a Pass and
// reports Diagnostics. Findings are suppressed per line with a
//
//	//clashvet:ignore <analyzer> <reason>
//
// directive; the reason is mandatory, so every suppression documents why the
// invariant does not apply (see directive.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //clashvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects pass.Files and reports findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression and object resolutions.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Analyzer names the check that produced the finding ("clashvet" for
	// framework-level findings such as malformed ignore directives).
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package, validates ignore directives,
// filters suppressed findings and returns the rest ordered by position.
// Framework findings (malformed directives) carry the analyzer name
// "clashvet" and cannot be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg.Fset, pkg.Files)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = append(diags, dirs.apply(pkgDiags)...)
		diags = append(diags, dirs.malformed()...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
