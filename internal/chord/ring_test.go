package chord

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"clash/internal/bitkey"
)

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace(0); err == nil {
		t.Error("NewSpace(0) succeeded, want error")
	}
	if _, err := NewSpace(65); err == nil {
		t.Error("NewSpace(65) succeeded, want error")
	}
	s, err := NewSpace(24)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mask() != (1<<24)-1 {
		t.Errorf("Mask() = %#x, want %#x", s.Mask(), (1<<24)-1)
	}
}

func TestSpaceWrapAndAdd(t *testing.T) {
	s, _ := NewSpace(8)
	if got := s.Wrap(257); got != 1 {
		t.Errorf("Wrap(257) = %d, want 1", got)
	}
	if got := s.Add(250, 10); got != 4 {
		t.Errorf("Add(250,10) = %d, want 4", got)
	}
	full := Space{Bits: 64}
	if got := full.Wrap(^uint64(0)); got != ID(^uint64(0)) {
		t.Errorf("64-bit Wrap clipped the value: %d", got)
	}
}

func TestBetween(t *testing.T) {
	tests := []struct {
		from, to, id ID
		want         bool
	}{
		{10, 20, 15, true},
		{10, 20, 20, true},
		{10, 20, 10, false},
		{10, 20, 25, false},
		{20, 10, 25, true}, // wrap-around interval
		{20, 10, 5, true},
		{20, 10, 15, false},
		{7, 7, 42, true}, // whole circle
	}
	for _, tt := range tests {
		if got := Between(tt.from, tt.to, tt.id); got != tt.want {
			t.Errorf("Between(%d,%d,%d) = %v, want %v", tt.from, tt.to, tt.id, got, tt.want)
		}
	}
}

func TestBetweenOpen(t *testing.T) {
	if BetweenOpen(10, 20, 20) {
		t.Error("BetweenOpen should exclude the upper endpoint")
	}
	if !BetweenOpen(10, 20, 19) {
		t.Error("BetweenOpen(10,20,19) should be true")
	}
	if BetweenOpen(7, 7, 7) {
		t.Error("BetweenOpen(x,x,x) should be false")
	}
	if !BetweenOpen(7, 7, 8) {
		t.Error("BetweenOpen(x,x,y) should be true for y != x")
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing()
	if _, err := r.Successor(42); err == nil {
		t.Error("Successor on empty ring succeeded, want error")
	}
	if _, _, err := r.Lookup("nobody", 42); err == nil {
		t.Error("Lookup on empty ring succeeded, want error")
	}
}

func TestRingMembership(t *testing.T) {
	r := NewRing()
	if err := r.Add("s1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("s1"); err == nil {
		t.Error("duplicate Add succeeded, want error")
	}
	if err := r.Add("s2"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || !r.Contains("s1") || !r.Contains("s2") {
		t.Errorf("membership wrong: len=%d", r.Len())
	}
	if err := r.Remove("s1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("s1"); err == nil {
		t.Error("removing absent member succeeded, want error")
	}
	if r.Contains("s1") || r.Len() != 1 {
		t.Error("remove did not take effect")
	}
}

func TestRingMapIsDeterministic(t *testing.T) {
	r := NewRing()
	for i := 0; i < 50; i++ {
		if err := r.Add(Member(fmt.Sprintf("server-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	key := bitkey.MustParse("011010110101001010101011").Bytes()
	a, err := r.Map(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := r.Map(key)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("Map is not deterministic: %s vs %s", a, b)
		}
	}
}

func TestRingRemovalOnlyMovesKeysOwnedByRemovedNode(t *testing.T) {
	// Consistent hashing property: removing one member only reassigns the
	// keys that member owned.
	r := NewRing(WithVirtualServers(4))
	const nServers = 40
	for i := 0; i < nServers; i++ {
		if err := r.Add(Member(fmt.Sprintf("server-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	const nKeys = 2000
	before := make(map[int]Member, nKeys)
	for i := 0; i < nKeys; i++ {
		m, err := r.Map([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		before[i] = m
	}
	removed := Member("server-7")
	if err := r.Remove(removed); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nKeys; i++ {
		after, err := r.Map([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if before[i] != removed && after != before[i] {
			t.Fatalf("key %d moved from %s to %s although %s was removed", i, before[i], after, removed)
		}
		if before[i] == removed && after == removed {
			t.Fatalf("key %d still mapped to removed member", i)
		}
	}
}

func TestRingVirtualServersBalanceLoad(t *testing.T) {
	// With log(S) virtual servers per member the key distribution should be
	// substantially more even than with a single point per member.
	imbalance := func(vnodes int) float64 {
		r := NewRing(WithVirtualServers(vnodes))
		const nServers = 64
		for i := 0; i < nServers; i++ {
			if err := r.Add(Member(fmt.Sprintf("server-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		counts := make(map[Member]int)
		const nKeys = 20000
		for i := 0; i < nKeys; i++ {
			m, err := r.Map([]byte(fmt.Sprintf("key-%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			counts[m]++
		}
		maxCount := 0
		for _, c := range counts {
			if c > maxCount {
				maxCount = c
			}
		}
		return float64(maxCount) / (float64(nKeys) / nServers)
	}
	single := imbalance(1)
	many := imbalance(8)
	if many >= single {
		t.Errorf("virtual servers should reduce imbalance: single=%.2f many=%.2f", single, many)
	}
}

func TestRingWeightedMembersGetMoreKeys(t *testing.T) {
	r := NewRing(WithVirtualServers(4))
	if err := r.AddWeighted("big", 32); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if err := r.Add(Member(fmt.Sprintf("small-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[Member]int)
	const nKeys = 20000
	for i := 0; i < nKeys; i++ {
		m, err := r.Map([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		counts[m]++
	}
	avgSmall := 0
	for m, c := range counts {
		if m != "big" {
			avgSmall += c
		}
	}
	avgSmallF := float64(avgSmall) / 15
	if float64(counts["big"]) < 2*avgSmallF {
		t.Errorf("weighted member got %d keys, small members average %.0f; expected a clear capacity skew",
			counts["big"], avgSmallF)
	}
}

func TestRingLookupAgreesWithSuccessorAndBoundsHops(t *testing.T) {
	r := NewRing()
	const nServers = 128
	for i := 0; i < nServers; i++ {
		if err := r.Add(Member(fmt.Sprintf("server-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	space := r.Space()
	maxAllowed := 4 * int(math.Ceil(math.Log2(nServers)))
	for i := 0; i < 1000; i++ {
		h := space.HashString(fmt.Sprintf("probe-%d", i))
		owner, err := r.Successor(h)
		if err != nil {
			t.Fatal(err)
		}
		got, hops, err := r.Lookup("server-0", h)
		if err != nil {
			t.Fatal(err)
		}
		if got != owner {
			t.Fatalf("Lookup returned %s, Successor returned %s for %d", got, owner, h)
		}
		if hops > maxAllowed {
			t.Fatalf("lookup took %d hops, want ≤ %d", hops, maxAllowed)
		}
	}
}

func TestRingLookupUnknownStart(t *testing.T) {
	r := NewRing()
	if err := r.Add("s1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Lookup("ghost", 12); err == nil {
		t.Error("Lookup from unknown member succeeded, want error")
	}
}

func TestRingExpectedHops(t *testing.T) {
	r := NewRing()
	for i := 0; i < 100; i++ {
		if err := r.Add(Member(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.ExpectedHops(); got != 7 {
		t.Errorf("ExpectedHops for 100 members = %d, want 7 (ceil log2 100)", got)
	}
}

func TestPropertySuccessorOwnsPoint(t *testing.T) {
	// Invariant: Successor(h) is the member whose first point at or after h
	// owns h; mapping the exact point ID of a member's virtual server returns
	// that member.
	r := NewRing()
	const nServers = 30
	for i := 0; i < nServers; i++ {
		if err := r.Add(Member(fmt.Sprintf("server-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	space := r.Space()
	f := func(seed uint64) bool {
		h := space.Wrap(seed)
		m, err := r.Successor(h)
		return err == nil && m != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	for i := 0; i < nServers; i++ {
		m := Member(fmt.Sprintf("server-%d", i))
		pt := space.HashString(fmt.Sprintf("%s#%d", m, 0))
		owner, err := r.Successor(pt)
		if err != nil {
			t.Fatal(err)
		}
		if owner != m {
			t.Fatalf("member %s does not own its own virtual-server point (owner %s)", m, owner)
		}
	}
}
