package load

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0, 1, 1); err == nil {
		t.Error("zero capacity accepted, want error")
	}
	if _, err := NewModel(10, -1, 1); err == nil {
		t.Error("negative rate weight accepted, want error")
	}
	if _, err := NewModel(10, 1, 1); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestLoadIsLinearInRateAndLogarithmicInQueries(t *testing.T) {
	m := DefaultModel(100)
	base := m.Load(Sample{DataRate: 10})
	double := m.Load(Sample{DataRate: 20})
	if math.Abs(double-2*base) > 1e-12 {
		t.Errorf("load not linear in rate: %g vs %g", double, 2*base)
	}
	q1 := m.Load(Sample{Queries: 1})
	q3 := m.Load(Sample{Queries: 3})
	q7 := m.Load(Sample{Queries: 7})
	// log2(1+q): 1, 2, 3 — equal increments for exponential query growth.
	if math.Abs((q3-q1)-(q7-q3)) > 1e-12 {
		t.Errorf("load not logarithmic in queries: %g %g %g", q1, q3, q7)
	}
}

func TestLoadCanExceedCapacity(t *testing.T) {
	m := DefaultModel(100)
	if got := m.Load(Sample{DataRate: 2500}); got <= 1 {
		t.Errorf("overdriven server should report load > 1, got %g", got)
	}
}

func TestSampleAdd(t *testing.T) {
	got := Sample{DataRate: 1, Queries: 2}.Add(Sample{DataRate: 3, Queries: 4})
	if got.DataRate != 4 || got.Queries != 6 {
		t.Errorf("Add = %+v, want {4 6}", got)
	}
}

func TestThresholds(t *testing.T) {
	th := DefaultThresholds()
	if err := th.Validate(); err != nil {
		t.Fatalf("default thresholds invalid: %v", err)
	}
	if th.Overload != 0.90 || th.Underload != 0.54 {
		t.Errorf("defaults = %+v, want paper values 0.90/0.54", th)
	}
	if !th.IsOverloaded(0.95) || th.IsOverloaded(0.90) {
		t.Error("overload detection wrong around the boundary")
	}
	if !th.IsUnderloaded(0.50) || th.IsUnderloaded(0.60) {
		t.Error("underload detection wrong")
	}
	bad := Thresholds{Overload: 0.5, Underload: 0.9}
	if err := bad.Validate(); err == nil {
		t.Error("inverted thresholds accepted, want error")
	}
}

func TestMeterSnapshotResetsRatesKeepsQueries(t *testing.T) {
	m := NewMeter(10)
	m.RecordPackets("011*", 50)
	m.AddQueries("011*", 3)
	snap := m.Snapshot()
	if got := snap["011*"]; got.DataRate != 5 || got.Queries != 3 {
		t.Fatalf("first snapshot = %+v, want rate 5 queries 3", got)
	}
	snap2 := m.Snapshot()
	if got := snap2["011*"]; got.DataRate != 0 || got.Queries != 3 {
		t.Fatalf("second snapshot = %+v, want rate reset to 0, queries kept", got)
	}
	m.AddQueries("011*", -3)
	if got := m.Snapshot()["011*"]; got.Queries != 0 {
		t.Fatalf("queries not removed: %+v", got)
	}
}

func TestMeterDrop(t *testing.T) {
	m := NewMeter(1)
	m.RecordPackets("0*", 5)
	m.SetQueries("0*", 2)
	m.Drop("0*")
	if len(m.Snapshot()) != 0 {
		t.Error("Drop did not remove the group")
	}
}

func TestRankOrdersHottestFirst(t *testing.T) {
	model := DefaultModel(100)
	samples := map[string]Sample{
		"00*": {DataRate: 10},
		"01*": {DataRate: 90},
		"10*": {DataRate: 40},
		"11*": {DataRate: 40},
	}
	ranked := Rank(model, samples)
	if len(ranked) != 4 {
		t.Fatalf("len = %d, want 4", len(ranked))
	}
	if ranked[0].Group != "01*" {
		t.Errorf("hottest = %s, want 01*", ranked[0].Group)
	}
	if ranked[3].Group != "00*" {
		t.Errorf("coldest = %s, want 00*", ranked[3].Group)
	}
	// Ties broken deterministically by label.
	if ranked[1].Group != "10*" || ranked[2].Group != "11*" {
		t.Errorf("tie break wrong: %v", ranked)
	}
	if got := Total(ranked); math.Abs(got-1.8) > 1e-9 {
		t.Errorf("Total = %g, want 1.8", got)
	}
}

func TestPickSplitAndColdest(t *testing.T) {
	ranked := []GroupLoad{{"a", 0.9}, {"b", 0.5}, {"c", 0.1}}
	if g, ok := PickSplit(SplitHottest, ranked, nil); !ok || g.Group != "a" {
		t.Errorf("PickSplit hottest = %v,%v", g, ok)
	}
	if g, ok := PickSplit(SplitRandom, ranked, func(n int) int { return n - 1 }); !ok || g.Group != "c" {
		t.Errorf("PickSplit random = %v,%v", g, ok)
	}
	if g, ok := PickColdest(ranked); !ok || g.Group != "c" {
		t.Errorf("PickColdest = %v,%v", g, ok)
	}
	if _, ok := PickSplit(SplitHottest, nil, nil); ok {
		t.Error("PickSplit on empty ranking should return false")
	}
	if _, ok := PickColdest(nil); ok {
		t.Error("PickColdest on empty ranking should return false")
	}
}

func TestPropertyLoadMonotoneInInputs(t *testing.T) {
	m := DefaultModel(50)
	f := func(rate uint16, queries uint8, extraRate uint16, extraQ uint8) bool {
		a := Sample{DataRate: float64(rate), Queries: int(queries)}
		b := Sample{DataRate: a.DataRate + float64(extraRate), Queries: a.Queries + int(extraQ)}
		return m.Load(b) >= m.Load(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLoadNonNegative(t *testing.T) {
	m := DefaultModel(10)
	f := func(rate uint32, queries uint16) bool {
		return m.Load(Sample{DataRate: float64(rate), Queries: int(queries)}) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
