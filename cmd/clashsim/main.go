// Command clashsim runs named CLASH scenarios on the deterministic
// discrete-event simulator (internal/sim): thousands of virtual overlay nodes
// exchanging real protocol messages over modeled WAN links at virtual time,
// in seconds of wall clock. Two runs with the same scenario and seed produce
// byte-identical JSON output — the determinism CI gates on.
//
// Run one scenario at 1000 nodes:
//
//	clashsim -scenario split-merge -nodes 1000 -seed 1
//
// Regenerate the checked-in snapshot (every named scenario at its default
// size):
//
//	clashsim -all -seed 1 -out SIM_scenarios.json
//
// The command exits non-zero when a scenario violates its declared
// invariants (e.g. split-merge must split, consolidate back, and deliver
// every continuous-query match), so a CI run doubles as a regression gate on
// protocol behavior at scale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"clash/internal/sim"
)

type output struct {
	Seed      int64         `json:"seed"`
	Scenarios []*sim.Result `json:"scenarios"`
}

func main() {
	var (
		scenario = flag.String("scenario", "", "named scenario to run (see -list)")
		all      = flag.Bool("all", false, "run every named scenario")
		list     = flag.Bool("list", false, "list the named scenarios and exit")
		nodes    = flag.Int("nodes", 0, "overlay size (0 = the scenario's default)")
		seed     = flag.Int64("seed", 1, "simulation seed (same seed, same bytes)")
		out      = flag.String("out", "SIM_scenarios.json", "write the JSON results here ('' disables)")
	)
	flag.Parse()
	if *list {
		for _, n := range sim.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := run(*scenario, *all, *nodes, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "clashsim:", err)
		os.Exit(1)
	}
}

func run(scenario string, all bool, nodes int, seed int64, out string) error {
	var names []string
	switch {
	case all:
		names = sim.Names()
	case scenario != "":
		names = []string{scenario}
	default:
		return fmt.Errorf("need -scenario <name> or -all (names: %v)", sim.Names())
	}

	o := output{Seed: seed}
	violations := 0
	for _, name := range names {
		sc, err := sim.Named(name, nodes, seed)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := sim.Run(sc)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(start)
		o.Scenarios = append(o.Scenarios, res)

		t := res.Totals
		fmt.Printf("%s: %d nodes, %d ticks, %.0fs virtual in %.2fs wall\n",
			sc.Name, sc.Nodes, sc.TotalTicks(), res.RunVirtualSec, wall.Seconds())
		fmt.Printf("  packets=%d errors=%d splits=%d merges=%d accepted=%d released=%d calls=%d\n",
			t.PacketsOK, t.PublishErrors, t.Splits, t.Merges, t.GroupsAccepted, t.GroupsReleased, t.Calls)
		fmt.Printf("  matches: inline=%d delivered=%d drops=%d latency(virtual ms) p50=%.1f p99=%.1f\n",
			t.MatchesInline, t.MatchesDelivered, t.MatchDrops,
			res.MatchLatencyMs.P50, res.MatchLatencyMs.P99)
		last := res.Ticks[len(res.Ticks)-1]
		fmt.Printf("  final: groups=%d holders=%d depth=[%d..%d] ring=%v coverage=%v\n",
			last.Groups, last.Holders, last.DepthMin, last.DepthMax,
			res.RingConverged, res.CoverageComplete)
		if res.HoldersCrashed > 0 || res.GroupsRecovered > 0 {
			fmt.Printf("  durability: crashed %d/%d holders, recovered %d groups, CQs %d/%d surviving, probe misses %d\n",
				res.HoldersCrashed, res.HoldersAtFirstCrash, res.GroupsRecovered,
				res.CQSurviving, res.CQRegistered, res.CQProbeMisses)
		}
		for _, v := range res.Violations {
			violations++
			fmt.Printf("  VIOLATION: %s\n", v)
		}
	}

	if out != "" {
		data, err := json.MarshalIndent(o, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", out)
	}
	if violations > 0 {
		return fmt.Errorf("%d scenario invariant(s) violated", violations)
	}
	return nil
}
