package overlay

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Timeouts for the TCP transport. Dial and per-call deadlines keep a dead
// peer from wedging the maintenance loop; the idle deadline reaps server-side
// connections whose client went away.
const (
	tcpDialTimeout = 3 * time.Second
	tcpCallTimeout = 10 * time.Second
	tcpIdleTimeout = 5 * time.Minute
	// tcpPoolSize bounds the idle outbound connections kept per remote
	// address.
	tcpPoolSize = 4
	// tcpPoolIdle is how long an outbound connection may sit in the pool
	// before it is discarded instead of reused. It is far below the
	// server-side tcpIdleTimeout so a pooled connection is never handed out
	// after the peer's reaper may have closed it (a write into such a
	// connection "succeeds" into the dead socket buffer and cannot safely be
	// retried).
	tcpPoolIdle = time.Minute
)

// idleConn is one pooled outbound connection with its pool-entry time.
type idleConn struct {
	conn net.Conn
	at   time.Time
}

// TCPTransport is the production transport: one listening socket answering
// framed requests, plus a small pool of outbound connections per peer.
// Requests multiplex one-per-frame: each connection carries a sequence of
// request/reply exchanges (a stale pooled connection is retried once on a
// fresh dial before the Call fails).
type TCPTransport struct {
	ln   net.Listener
	addr string

	mu      sync.Mutex
	handler Handler
	closed  bool
	serving map[net.Conn]struct{}
	idle    map[string][]idleConn
	wg      sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// ListenTCP binds a TCP transport and starts its accept loop. Pass an address
// with port 0 to let the kernel choose (the chosen address is what Addr
// returns and therefore the node's identity — use an address peers can reach).
func ListenTCP(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("overlay: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		ln:      ln,
		addr:    ln.Addr().String(),
		serving: make(map[net.Conn]struct{}),
		idle:    make(map[string][]idleConn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.addr }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Close implements Transport: it stops the accept loop and closes every open
// connection, then waits for the per-connection goroutines to drain.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	err := t.ln.Close()
	for c := range t.serving {
		c.Close()
	}
	for _, conns := range t.idle {
		for _, c := range conns {
			c.conn.Close()
		}
	}
	t.idle = make(map[string][]idleConn)
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

func (t *TCPTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.serving[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.serveConn(conn)
	}
}

// serveConn answers framed requests on one inbound connection until the peer
// hangs up, a protocol error occurs, or the idle deadline passes.
func (t *TCPTransport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.serving, conn)
		t.mu.Unlock()
	}()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout))
		msgType, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		reply, herr := dispatch(h, msgType, payload)
		_ = conn.SetWriteDeadline(time.Now().Add(tcpCallTimeout))
		if herr != nil {
			if err := writeFrame(conn, frameErr, []byte(herr.Error())); err != nil {
				return
			}
			continue
		}
		if err := writeFrame(conn, frameOK, reply); err != nil {
			return
		}
	}
}

// getConn returns a pooled idle connection to addr, or dials a new one.
// pooled reports whether the connection came from the pool (and may be stale).
func (t *TCPTransport) getConn(addr string) (conn net.Conn, pooled bool, err error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %s", ErrClosed, t.addr)
	}
	var expired []net.Conn
	for conns := t.idle[addr]; len(conns) > 0; conns = t.idle[addr] {
		last := conns[len(conns)-1]
		t.idle[addr] = conns[:len(conns)-1]
		if time.Since(last.at) > tcpPoolIdle {
			expired = append(expired, last.conn)
			continue
		}
		t.mu.Unlock()
		for _, c := range expired {
			c.Close()
		}
		return last.conn, true, nil
	}
	t.mu.Unlock()
	for _, c := range expired {
		c.Close()
	}
	conn, err = net.DialTimeout("tcp", addr, tcpDialTimeout)
	if err != nil {
		return nil, false, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, addr, err)
	}
	return conn, false, nil
}

// putConn returns a healthy connection to the pool (or closes it when full or
// when the transport has shut down).
func (t *TCPTransport) putConn(addr string, conn net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || len(t.idle[addr]) >= tcpPoolSize {
		conn.Close()
		return
	}
	t.idle[addr] = append(t.idle[addr], idleConn{conn: conn, at: time.Now()})
}

// Call implements Transport.
func (t *TCPTransport) Call(addr, msgType string, payload []byte) ([]byte, error) {
	conn, pooled, err := t.getConn(addr)
	if err != nil {
		return nil, err
	}
	reply, rerr, wrote, err := t.exchange(conn, addr, msgType, payload)
	if err != nil && pooled && !wrote {
		// The pooled connection died while idle and the request never made
		// it out; retry once on a fresh dial. If the request was written,
		// the server may have executed it, and blindly resending would
		// duplicate non-idempotent messages (ACCEPT_OBJECT) — surface the
		// error instead.
		conn, _, derr := t.getConnFresh(addr)
		if derr != nil {
			return nil, derr
		}
		reply, rerr, _, err = t.exchange(conn, addr, msgType, payload)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	if rerr != nil {
		return nil, rerr
	}
	return reply, nil
}

// getConnFresh always dials (bypassing the pool).
func (t *TCPTransport) getConnFresh(addr string) (net.Conn, bool, error) {
	if t.isClosed() {
		return nil, false, fmt.Errorf("%w: %s", ErrClosed, t.addr)
	}
	conn, err := net.DialTimeout("tcp", addr, tcpDialTimeout)
	if err != nil {
		return nil, false, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, addr, err)
	}
	return conn, false, nil
}

// exchange performs one request/reply on conn. A returned *RemoteError keeps
// the connection healthy (it goes back to the pool); an I/O error closes it.
// wrote reports whether any of the request may have reached the peer (the
// caller must not blindly retry in that case).
func (t *TCPTransport) exchange(conn net.Conn, addr, msgType string, payload []byte) (reply []byte, rerr *RemoteError, wrote bool, err error) {
	deadline := time.Now().Add(tcpCallTimeout)
	_ = conn.SetDeadline(deadline)
	if err := writeFrame(conn, msgType, payload); err != nil {
		conn.Close()
		return nil, nil, false, err
	}
	replyType, replyPayload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, nil, true, err
	}
	_ = conn.SetDeadline(time.Time{})
	switch replyType {
	case frameOK:
		t.putConn(addr, conn)
		return replyPayload, nil, true, nil
	case frameErr:
		t.putConn(addr, conn)
		return nil, &RemoteError{Msg: string(replyPayload)}, true, nil
	default:
		conn.Close()
		return nil, nil, true, fmt.Errorf("%w: reply type %q", ErrBadFrame, replyType)
	}
}
