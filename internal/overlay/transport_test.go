package overlay

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		msgType string
		payload []byte
	}{
		{TypePing, nil},
		{TypeAcceptObject, []byte(`{"key":"0101","depth":2}`)},
		{frameOK, []byte{}},
		{frameErr, []byte("boom")},
		{strings.Repeat("t", 255), bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := writeFrame(&buf, tc.msgType, tc.payload); err != nil {
			t.Fatalf("writeFrame(%q): %v", tc.msgType, err)
		}
		gotType, gotPayload, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame(%q): %v", tc.msgType, err)
		}
		if gotType != tc.msgType {
			t.Errorf("type = %q, want %q", gotType, tc.msgType)
		}
		if !bytes.Equal(gotPayload, tc.payload) {
			t.Errorf("payload mismatch for %q: got %d bytes, want %d", tc.msgType, len(gotPayload), len(tc.payload))
		}
	}
}

func TestFrameRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, "", nil); err == nil {
		t.Error("writeFrame accepted empty message type")
	}
	if err := writeFrame(&buf, strings.Repeat("x", 256), nil); err == nil {
		t.Error("writeFrame accepted 256-byte message type")
	}
	// An advertised body larger than the limit must be rejected before any
	// allocation.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := readFrame(bytes.NewReader(append(huge, 0x01))); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("readFrame(huge) = %v, want ErrFrameTooLarge", err)
	}
	// A type length pointing past the body is malformed.
	var bad bytes.Buffer
	if err := writeFrame(&bad, "ab", nil); err != nil {
		t.Fatal(err)
	}
	raw := bad.Bytes()
	raw[4] = 200 // type length > body
	if _, _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("readFrame(bad type len) = %v, want ErrBadFrame", err)
	}
}

func TestMemTransportCallAndFailures(t *testing.T) {
	net := NewMemNetwork()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	b.SetHandler(func(msgType string, payload []byte) ([]byte, error) {
		if msgType == "fail" {
			return nil, fmt.Errorf("handler says no")
		}
		return append([]byte("echo:"), payload...), nil
	})

	reply, err := a.Call("b", "echo", []byte("hi"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "echo:hi" {
		t.Errorf("reply = %q", reply)
	}
	if net.Calls("echo") != 1 {
		t.Errorf("Calls(echo) = %d, want 1", net.Calls("echo"))
	}

	if _, err := a.Call("b", "fail", nil); !IsRemote(err) {
		t.Errorf("remote handler error = %v, want RemoteError", err)
	}
	if _, err := a.Call("missing", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call to unknown endpoint = %v, want ErrUnreachable", err)
	}
	net.SetDown("b", true)
	if _, err := a.Call("b", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call to down endpoint = %v, want ErrUnreachable", err)
	}
	net.SetDown("b", false)
	if _, err := a.Call("b", "echo", nil); err != nil {
		t.Errorf("call after SetDown(false): %v", err)
	}
}

func TestTCPTransportCall(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetHandler(func(msgType string, payload []byte) ([]byte, error) {
		switch msgType {
		case "fail":
			return nil, fmt.Errorf("nope")
		default:
			return append([]byte(msgType+":"), payload...), nil
		}
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	reply, err := cli.Call(srv.Addr(), "echo", []byte("over tcp"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "echo:over tcp" {
		t.Errorf("reply = %q", reply)
	}

	// An application error must not poison the pooled connection.
	if _, err := cli.Call(srv.Addr(), "fail", nil); !IsRemote(err) {
		t.Errorf("remote error = %v, want RemoteError", err)
	}
	if _, err := cli.Call(srv.Addr(), "echo", nil); err != nil {
		t.Errorf("call after remote error: %v", err)
	}

	// Concurrent callers share the pool without corrupting frames.
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			reply, err := cli.Call(srv.Addr(), "echo", msg)
			if err != nil {
				errs <- err
				return
			}
			if string(reply) != "echo:"+string(msg) {
				errs <- fmt.Errorf("reply %q for %q", reply, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if _, err := cli.Call("127.0.0.1:1", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("dial refused = %v, want ErrUnreachable", err)
	}
}

func TestTCPTransportClose(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetHandler(func(string, []byte) ([]byte, error) { return []byte("ok"), nil })
	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(srv.Addr(), "x", nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Errorf("client Close: %v", err)
	}
	if _, err := cli.Call(srv.Addr(), "x", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after Close = %v, want ErrClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("server Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
