package core

import (
	"testing"

	"clash/internal/bitkey"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(0); err == nil {
		t.Error("NewTable(0) succeeded, want error")
	}
	if _, err := NewTable(65); err == nil {
		t.Error("NewTable(65) succeeded, want error")
	}
	tab, err := NewTable(24)
	if err != nil {
		t.Fatal(err)
	}
	if tab.KeyBits() != 24 || tab.Len() != 0 {
		t.Errorf("fresh table wrong: bits=%d len=%d", tab.KeyBits(), tab.Len())
	}
}

func TestTableActiveEntryForFindsUniqueLeaf(t *testing.T) {
	tab, err := NewTable(7)
	if err != nil {
		t.Fatal(err)
	}
	tab.put(&Entry{Group: bitkey.MustParseGroup("011*"), Active: false})
	tab.put(&Entry{Group: bitkey.MustParseGroup("0110*"), Active: true})
	tab.put(&Entry{Group: bitkey.MustParseGroup("01011*"), Active: true})

	e, ok := tab.activeEntryFor(bitkey.MustParse("0110101"))
	if !ok || e.Group.String() != "0110*" {
		t.Errorf("activeEntryFor(0110101) = %v,%v; want 0110*", e, ok)
	}
	e, ok = tab.activeEntryFor(bitkey.MustParse("0101101"))
	if !ok || e.Group.String() != "01011*" {
		t.Errorf("activeEntryFor(0101101) = %v,%v; want 01011*", e, ok)
	}
	if _, ok := tab.activeEntryFor(bitkey.MustParse("1111111")); ok {
		t.Error("key outside all active groups should not resolve")
	}
}

func TestTableLongestPrefixMatch(t *testing.T) {
	tab, err := NewTable(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"011*", "01011*", "010110*", "0110*", "01100*"} {
		tab.put(&Entry{Group: bitkey.MustParseGroup(g), Active: true})
	}
	// Paper Figure 2 / case (c): key 0101010 matches at most 4 bits.
	if got := tab.longestPrefixMatch(bitkey.MustParse("0101010")); got != 4 {
		t.Errorf("longestPrefixMatch(0101010) = %d, want 4", got)
	}
	if got := tab.longestPrefixMatch(bitkey.MustParse("1111111")); got != 0 {
		t.Errorf("longestPrefixMatch(1111111) = %d, want 0", got)
	}
	if got := tab.longestPrefixMatch(bitkey.MustParse("0110001")); got != 5 {
		t.Errorf("longestPrefixMatch(0110001) = %d, want 5", got)
	}
}

func TestTableEntriesSortedByDepthThenPrefix(t *testing.T) {
	tab, err := NewTable(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"01100*", "011*", "0110*", "010110*", "01011*"} {
		tab.put(&Entry{Group: bitkey.MustParseGroup(g), Active: true})
	}
	got := tab.Entries()
	want := []string{"011*", "0110*", "01011*", "01100*", "010110*"}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Group.String() != w {
			t.Errorf("entry %d = %s, want %s", i, got[i].Group.String(), w)
		}
	}
}

func TestTableValidateActivePrefixFree(t *testing.T) {
	tab, err := NewTable(7)
	if err != nil {
		t.Fatal(err)
	}
	tab.put(&Entry{Group: bitkey.MustParseGroup("011*"), Active: true})
	tab.put(&Entry{Group: bitkey.MustParseGroup("0101*"), Active: true})
	if err := tab.validateActivePrefixFree(); err != nil {
		t.Errorf("disjoint active groups flagged: %v", err)
	}
	tab.put(&Entry{Group: bitkey.MustParseGroup("0110*"), Active: true})
	if err := tab.validateActivePrefixFree(); err == nil {
		t.Error("nested active groups not flagged")
	}
}
