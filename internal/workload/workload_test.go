package workload

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"clash/internal/metrics"
)

func mustGen(t *testing.T, kind Kind, seed int64) *KeyGenerator {
	t.Helper()
	g, err := NewKeyGenerator(SpecFor(kind), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpecForMatchesPaperParameters(t *testing.T) {
	a := SpecFor(WorkloadA)
	if a.KeyBits != 24 || a.BaseBits != 8 {
		t.Errorf("workload A key layout = %d/%d, want 24/8", a.KeyBits, a.BaseBits)
	}
	if a.SourceRate != 1 {
		t.Errorf("workload A rate = %g, want 1 packet/sec", a.SourceRate)
	}
	for _, k := range []Kind{WorkloadB, WorkloadC} {
		if got := SpecFor(k).SourceRate; got != 2 {
			t.Errorf("workload %v rate = %g, want 2 packets/sec", k, got)
		}
	}
	if a.MeanStreamLen != 1000 {
		t.Errorf("mean stream length = %g, want 1000", a.MeanStreamLen)
	}
	if a.MeanQueryLifetime != 30*time.Minute {
		t.Errorf("mean query lifetime = %v, want 30m", a.MeanQueryLifetime)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: Kind(9), KeyBits: 24, BaseBits: 8, SourceRate: 1, MeanStreamLen: 1, MeanQueryLifetime: time.Minute},
		{Kind: WorkloadA, KeyBits: 1, BaseBits: 1, SourceRate: 1, MeanStreamLen: 1, MeanQueryLifetime: time.Minute},
		{Kind: WorkloadA, KeyBits: 24, BaseBits: 24, SourceRate: 1, MeanStreamLen: 1, MeanQueryLifetime: time.Minute},
		{Kind: WorkloadA, KeyBits: 24, BaseBits: 8, SourceRate: 0, MeanStreamLen: 1, MeanQueryLifetime: time.Minute},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if err := SpecFor(WorkloadC).Validate(); err != nil {
		t.Errorf("paper spec rejected: %v", err)
	}
	if _, err := NewKeyGenerator(SpecFor(WorkloadA), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestKindString(t *testing.T) {
	if WorkloadA.String() != "A" || WorkloadB.String() != "B" || WorkloadC.String() != "C" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestKeysHaveConfiguredLength(t *testing.T) {
	g := mustGen(t, WorkloadB, 1)
	for i := 0; i < 1000; i++ {
		k := g.Next()
		if k.Bits != 24 {
			t.Fatalf("key length %d, want 24", k.Bits)
		}
	}
}

// TestFigure3SkewOrdering regenerates the essence of Figure 3: sampling many
// keys per workload and histogramming the 8-bit base must show strictly
// increasing skew from A to B to C.
func TestFigure3SkewOrdering(t *testing.T) {
	const samples = 200000
	skew := func(kind Kind) float64 {
		g := mustGen(t, kind, 42)
		h := metrics.NewIntHistogram(kind.String(), 256)
		for i := 0; i < samples; i++ {
			h.Add(g.NextBase())
		}
		return h.SkewRatio()
	}
	a, b, c := skew(WorkloadA), skew(WorkloadB), skew(WorkloadC)
	if !(a < b && b < c) {
		t.Fatalf("skew ordering violated: A=%.2f B=%.2f C=%.2f", a, b, c)
	}
	// Workload A is "almost uniform": its hottest base value should carry no
	// more than ~1.3x the mean. Workload C is extreme: > 10x.
	if a > 1.3 {
		t.Errorf("workload A skew = %.2f, want ≤ 1.3", a)
	}
	if c < 10 {
		t.Errorf("workload C skew = %.2f, want ≥ 10", c)
	}
}

func TestBaseDistributionIsNormalised(t *testing.T) {
	for _, kind := range []Kind{WorkloadA, WorkloadB, WorkloadC} {
		g := mustGen(t, kind, 3)
		dist := g.BaseDistribution()
		if len(dist) != 256 {
			t.Fatalf("distribution has %d entries, want 256", len(dist))
		}
		var sum float64
		for _, p := range dist {
			if p < 0 {
				t.Fatalf("negative probability in workload %v", kind)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("workload %v distribution sums to %g", kind, sum)
		}
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	// The empirical base frequency must track the declared distribution.
	g := mustGen(t, WorkloadC, 99)
	dist := g.BaseDistribution()
	const samples = 300000
	counts := make([]float64, len(dist))
	for i := 0; i < samples; i++ {
		counts[g.NextBase()]++
	}
	for b, p := range dist {
		if p < 0.01 {
			continue // only check the significant buckets
		}
		got := counts[b] / samples
		if math.Abs(got-p) > 0.2*p {
			t.Errorf("base %d: empirical %.4f vs declared %.4f", b, got, p)
		}
	}
}

func TestNextStreamLengthAndQueryLifetime(t *testing.T) {
	g := mustGen(t, WorkloadA, 5)
	const n = 50000
	var sumLen float64
	var sumLife float64
	for i := 0; i < n; i++ {
		l := g.NextStreamLength()
		if l < 1 {
			t.Fatalf("stream length %d < 1", l)
		}
		sumLen += float64(l)
		life := g.NextQueryLifetime()
		if life < 0 {
			t.Fatalf("negative lifetime %v", life)
		}
		sumLife += life.Minutes()
	}
	meanLen := sumLen / n
	if meanLen < 900 || meanLen > 1100 {
		t.Errorf("mean stream length = %.0f, want ≈1000", meanLen)
	}
	meanLife := sumLife / n
	if meanLife < 27 || meanLife > 33 {
		t.Errorf("mean query lifetime = %.1f min, want ≈30", meanLife)
	}
}

func TestGeneratorIsDeterministicPerSeed(t *testing.T) {
	a := mustGen(t, WorkloadB, 7)
	b := mustGen(t, WorkloadB, 7)
	for i := 0; i < 100; i++ {
		if !a.Next().Equal(b.Next()) {
			t.Fatal("same seed produced different key sequences")
		}
	}
	c := mustGen(t, WorkloadB, 8)
	same := true
	a2 := mustGen(t, WorkloadB, 7)
	for i := 0; i < 100; i++ {
		if !a2.Next().Equal(c.Next()) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical key sequences")
	}
}

func TestPaperSchedule(t *testing.T) {
	s := PaperSchedule(2 * time.Hour)
	if s.Duration() != 6*time.Hour {
		t.Errorf("Duration = %v, want 6h", s.Duration())
	}
	tests := []struct {
		t    time.Duration
		want Kind
	}{
		{0, WorkloadA},
		{time.Hour, WorkloadA},
		{2 * time.Hour, WorkloadB},
		{3*time.Hour + 59*time.Minute, WorkloadB},
		{4 * time.Hour, WorkloadC},
		{7 * time.Hour, WorkloadC}, // past the end: stays on the last phase
	}
	for _, tt := range tests {
		if got := s.KindAt(tt.t); got != tt.want {
			t.Errorf("KindAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if _, ok := s.PhaseAt(7 * time.Hour); ok {
		t.Error("PhaseAt past the end should report false")
	}
	if p, ok := s.PhaseAt(5 * time.Hour); !ok || p.Kind != WorkloadC {
		t.Errorf("PhaseAt(5h) = %+v,%v", p, ok)
	}
	var empty Schedule
	if empty.Duration() != 0 || empty.KindAt(0) != WorkloadA {
		t.Error("empty schedule defaults wrong")
	}
}

func TestCloneIndependentStreams(t *testing.T) {
	root := mustGen(t, WorkloadB, 1)

	// Same seed → identical stream, independent of the parent's state.
	a, b := root.Clone(7), root.Clone(7)
	for i := 0; i < 1000; i++ {
		if ka, kb := a.Next(), b.Next(); !ka.Equal(kb) {
			t.Fatalf("clones with equal seeds diverged at %d: %v vs %v", i, ka, kb)
		}
	}
	// Different seeds → different streams.
	c, d := root.Clone(1), root.Clone(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Next().Equal(d.Next()) {
			same++
		}
	}
	if same > 100 {
		t.Errorf("clones with different seeds coincided on %d/1000 keys", same)
	}
	// The clone preserves the spec and the skew profile.
	if c.Spec() != root.Spec() {
		t.Errorf("clone spec = %+v, want %+v", c.Spec(), root.Spec())
	}
	pRoot, pClone := root.BaseDistribution(), c.BaseDistribution()
	for i := range pRoot {
		if pRoot[i] != pClone[i] {
			t.Fatalf("clone base distribution differs at %d", i)
		}
	}
}

func TestCloneConcurrentUse(t *testing.T) {
	root := mustGen(t, WorkloadC, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := root.Clone(int64(w))
			for i := 0; i < 2000; i++ {
				_ = g.Next()
				if i%100 == 0 {
					_ = g.NextStreamLength()
					_ = g.NextQueryLifetime()
				}
			}
		}(w)
	}
	wg.Wait()
}
