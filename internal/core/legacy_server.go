package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"clash/internal/bitkey"
)

// LegacyServer is the original single-mutex CLASH server: every operation —
// including the ACCEPT_OBJECT hot path — funnels through one lock. It is kept
// verbatim as the behavioural oracle for the sharded Server's parity property
// tests and as the single-core baseline in clashbench's scaling curves, the
// same role LegacyRouter and LegacyTable play for the trie structures. New
// code should use Server.
type LegacyServer struct {
	mu              sync.Mutex
	id              ServerID
	table           *Table
	counters        Counters
	maxSplitRetries int
	reportMaxAge    time.Duration
}

// NewLegacyServer creates a single-lock CLASH server for an N-bit identifier
// key space with the same defaults as NewServer (16 split retries, 15-minute
// report age).
func NewLegacyServer(id ServerID, keyBits int) (*LegacyServer, error) {
	if id == NoServer {
		return nil, fmt.Errorf("clash: server id must not be empty")
	}
	table, err := NewTable(keyBits)
	if err != nil {
		return nil, err
	}
	return &LegacyServer{
		id:              id,
		table:           table,
		maxSplitRetries: 16,
		reportMaxAge:    15 * time.Minute,
	}, nil
}

// ID returns the server's identity.
func (s *LegacyServer) ID() ServerID { return s.id }

// KeyBits returns the identifier key length N.
func (s *LegacyServer) KeyBits() int { return s.table.KeyBits() }

// Counters returns a snapshot of the protocol counters.
func (s *LegacyServer) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Bootstrap installs a root key group on this server.
func (s *LegacyServer) Bootstrap(g bitkey.Group) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g.Depth() > s.table.KeyBits() {
		return fmt.Errorf("%w: depth %d > %d", ErrDepthRange, g.Depth(), s.table.KeyBits())
	}
	if _, ok := s.table.get(g); ok {
		return fmt.Errorf("%w: %v", ErrAlreadyManaged, g)
	}
	s.table.put(&Entry{Group: g, Parent: NoServer, IsRoot: true, Active: true})
	return nil
}

// Entries returns the Server Work Table rows sorted by depth then prefix.
func (s *LegacyServer) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Entries()
}

// ActiveGroups returns the key groups this server currently manages.
func (s *LegacyServer) ActiveGroups() []bitkey.Group {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.ActiveGroups()
}

// ManagesKey reports whether some active group on this server contains k.
func (s *LegacyServer) ManagesKey(k bitkey.Key) (bitkey.Group, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.activeEntryFor(k)
	if !ok {
		return bitkey.Group{}, false
	}
	return e.Group, true
}

// Validate checks the table invariants (active groups are prefix-free).
func (s *LegacyServer) Validate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.validateActivePrefixFree()
}

// HandleAcceptObject processes an ACCEPT_OBJECT request under the single
// table lock.
func (s *LegacyServer) HandleAcceptObject(k bitkey.Key, estimatedDepth int) (AcceptObjectResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acceptObjectLocked(k, estimatedDepth)
}

// HandleAcceptObjectBatch processes a vector of ACCEPT_OBJECT requests under
// a single lock acquisition.
func (s *LegacyServer) HandleAcceptObjectBatch(keys []bitkey.Key, depths []int) (results []AcceptObjectResult, errs []error) {
	if len(depths) != len(keys) {
		panic("clash: batch keys/depths length mismatch")
	}
	results = make([]AcceptObjectResult, len(keys))
	errs = make([]error, len(keys))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, k := range keys {
		results[i], errs[i] = s.acceptObjectLocked(k, depths[i])
	}
	return results, errs
}

// acceptObjectLocked is the ACCEPT_OBJECT state machine; s.mu must be held.
func (s *LegacyServer) acceptObjectLocked(k bitkey.Key, estimatedDepth int) (AcceptObjectResult, error) {
	if k.Bits != s.table.KeyBits() {
		return AcceptObjectResult{}, fmt.Errorf("%w: key %d bits, want %d", ErrBadKey, k.Bits, s.table.KeyBits())
	}
	if estimatedDepth < 0 || estimatedDepth > k.Bits {
		return AcceptObjectResult{}, fmt.Errorf("%w: %d", ErrDepthRange, estimatedDepth)
	}
	entry, ok := s.table.activeEntryFor(k)
	if !ok {
		s.counters.ObjectsWrong++
		return AcceptObjectResult{
			Status: StatusIncorrectDepth,
			DMin:   s.table.longestPrefixMatch(k),
		}, nil
	}
	if entry.Depth() == estimatedDepth {
		s.counters.ObjectsOK++
		return AcceptObjectResult{Status: StatusOK, Group: entry.Group, CorrectDepth: entry.Depth()}, nil
	}
	s.counters.ObjectsCorrect++
	return AcceptObjectResult{Status: StatusOKCorrected, Group: entry.Group, CorrectDepth: entry.Depth()}, nil
}

// SetGroupLoad records the measured load fraction for an active group.
func (s *LegacyServer) SetGroupLoad(g bitkey.Group, loadFraction float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.get(g)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	if !e.Active {
		return fmt.Errorf("%w: %v", ErrNotActive, g)
	}
	e.localLoad = loadFraction
	return nil
}

// GroupLoads returns the last recorded load fraction for every active group.
func (s *LegacyServer) GroupLoads() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64)
	s.table.forEach(func(e *Entry) bool {
		if e.Active {
			out[e.Group.String()] = e.localLoad
		}
		return true
	})
	return out
}

// TotalLoad returns the sum of the recorded loads of all active groups.
func (s *LegacyServer) TotalLoad() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	s.table.forEach(func(e *Entry) bool {
		if e.Active {
			sum += e.localLoad
		}
		return true
	})
	return sum
}

// HottestActiveGroup returns the active group with the highest recorded load.
func (s *LegacyServer) HottestActiveGroup() (bitkey.Group, float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var (
		best     *Entry
		bestLoad float64
	)
	s.table.forEach(func(e *Entry) bool {
		if !e.Active {
			return true
		}
		if best == nil || e.localLoad > bestLoad ||
			(e.localLoad == bestLoad && e.Group.Prefix.Compare(best.Group.Prefix) < 0) {
			best = e
			bestLoad = e.localLoad
		}
		return true
	})
	if best == nil {
		return bitkey.Group{}, 0, false
	}
	return best.Group, bestLoad, true
}

// ExecuteSplit splits an overloaded active key group (paper §5).
func (s *LegacyServer) ExecuteSplit(g bitkey.Group, mapFn MapFunc) (*SplitResult, error) {
	if mapFn == nil {
		return nil, fmt.Errorf("clash: nil MapFunc")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	entry, ok := s.table.get(g)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	if !entry.Active {
		return nil, fmt.Errorf("%w: %v", ErrNotActive, g)
	}

	result := &SplitResult{Split: g}
	cur := entry
	for attempt := 0; ; attempt++ {
		if cur.Depth() >= s.table.KeyBits() {
			result.Kept = cur.Group
			return result, fmt.Errorf("%w: group %v", ErrMaxDepth, cur.Group)
		}
		if attempt >= s.maxSplitRetries {
			result.Kept = cur.Group
			return result, fmt.Errorf("%w: group %v after %d attempts", ErrSplitExhausted, g, attempt)
		}
		left, right, err := cur.Group.Split()
		if err != nil {
			return nil, err
		}
		vkey, err := right.VirtualKey(s.table.KeyBits())
		if err != nil {
			return nil, err
		}
		target, err := mapFn(vkey)
		if err != nil {
			return nil, fmt.Errorf("map right child %v: %w", right, err)
		}

		half := cur.localLoad / 2
		cur.Active = false
		cur.RightChild = target
		cur.RightChildGroup = right
		cur.localLoad = 0

		leftEntry := &Entry{
			Group:        left,
			Parent:       s.id,
			ParentIsSelf: true,
			Active:       true,
			localLoad:    half,
		}
		s.table.put(leftEntry)
		s.counters.Splits++

		if target != s.id {
			result.Kept = left
			result.Transfers = append(result.Transfers, Transfer{Group: right, To: target, Parent: s.id})
			return result, nil
		}

		result.Retries++
		rightEntry := &Entry{
			Group:        right,
			Parent:       s.id,
			ParentIsSelf: true,
			Active:       true,
			localLoad:    half,
		}
		s.table.put(rightEntry)
		cur = rightEntry
	}
}

// HandleAcceptKeyGroup processes an ACCEPT_KEYGROUP message with no epoch.
func (s *LegacyServer) HandleAcceptKeyGroup(g bitkey.Group, parent ServerID) error {
	return s.HandleAcceptKeyGroupEpoch(g, parent, 0)
}

// HandleAcceptKeyGroupEpoch processes an ACCEPT_KEYGROUP message.
func (s *LegacyServer) HandleAcceptKeyGroupEpoch(g bitkey.Group, parent ServerID, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g.Depth() > s.table.KeyBits() {
		return fmt.Errorf("%w: depth %d", ErrDepthRange, g.Depth())
	}
	if e, ok := s.table.get(g); ok {
		if e.Active {
			if epoch != 0 && e.Epoch != 0 && epoch < e.Epoch {
				return nil
			}
			e.Parent = parent
			e.ParentIsSelf = parent == s.id
			if epoch > e.Epoch {
				e.Epoch = epoch
			}
			return nil
		}
		if s.table.coveredBy(g) {
			return fmt.Errorf("%w: %v", ErrCovered, g)
		}
		return fmt.Errorf("%w: %v (already split here)", ErrAlreadyManaged, g)
	}
	if s.table.coveredBy(g) {
		return fmt.Errorf("%w: %v", ErrCovered, g)
	}
	s.table.put(&Entry{
		Group:        g,
		Parent:       parent,
		ParentIsSelf: parent == s.id,
		Active:       true,
		Epoch:        epoch,
	})
	s.counters.GroupsAccepted++
	return nil
}

// SnapshotGroup captures the replicable state of one active entry.
func (s *LegacyServer) SnapshotGroup(g bitkey.Group) (GroupSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.get(g)
	if !ok || !e.Active {
		return GroupSnapshot{}, false
	}
	return snapshotEntry(e), true
}

// SnapshotActive captures the replicable state of every active entry.
func (s *LegacyServer) SnapshotActive() []GroupSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []GroupSnapshot
	s.table.forEach(func(e *Entry) bool {
		if e.Active {
			out = append(out, snapshotEntry(e))
		}
		return true
	})
	return out
}

// RestoreGroup resurrects a key group from a replica snapshot.
func (s *LegacyServer) RestoreGroup(snap GroupSnapshot) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := snap.Group
	if g.Depth() > s.table.KeyBits() {
		return false, fmt.Errorf("%w: depth %d", ErrDepthRange, g.Depth())
	}
	if e, ok := s.table.get(g); ok {
		if e.Active {
			return false, nil
		}
		if s.table.coveredBy(g) {
			return false, fmt.Errorf("%w: %v", ErrCovered, g)
		}
		return false, fmt.Errorf("%w: %v (already split here)", ErrAlreadyManaged, g)
	}
	if s.table.coveredBy(g) {
		return false, fmt.Errorf("%w: %v", ErrCovered, g)
	}
	s.table.put(&Entry{
		Group:        g,
		Parent:       snap.Parent,
		ParentIsSelf: snap.Parent == s.id,
		IsRoot:       snap.IsRoot,
		Active:       true,
		Epoch:        snap.Epoch + 1,
	})
	s.counters.GroupsRecovered++
	return true, nil
}

// HandleChildMoved records that a transferred right child changed holders.
func (s *LegacyServer) HandleChildMoved(child bitkey.Group, newHolder ServerID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parentGroup, ok := child.Parent()
	if !ok {
		return fmt.Errorf("%w: root group %v cannot move", ErrUnknownGroup, child)
	}
	e, ok := s.table.get(parentGroup)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, parentGroup)
	}
	if e.Active || !e.RightChildGroup.Equal(child) {
		return fmt.Errorf("%w: %v is not a transferred right child here", ErrUnknownGroup, child)
	}
	if e.RightChild != newHolder {
		e.RightChild = newHolder
		e.hasChildLoad = false
	}
	return nil
}

// LoadReports produces the periodic load reports this server owes parents.
func (s *LegacyServer) LoadReports() []LoadReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []LoadReport
	s.table.forEach(func(e *Entry) bool {
		if !e.Active || e.Parent == NoServer || e.ParentIsSelf || e.Parent == s.id {
			return true
		}
		out = append(out, LoadReport{From: s.id, To: e.Parent, Group: e.Group, Load: e.localLoad})
		return true
	})
	return out
}

// HandleLoadReport records a right-child load report on the parent entry.
func (s *LegacyServer) HandleLoadReport(rep LoadReport, now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parentGroup, ok := rep.Group.Parent()
	if !ok {
		return fmt.Errorf("%w: report for root group %v", ErrUnknownGroup, rep.Group)
	}
	e, ok := s.table.get(parentGroup)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, parentGroup)
	}
	if e.Active || !e.RightChildGroup.Equal(rep.Group) || e.RightChild != rep.From {
		return fmt.Errorf("%w: stale report for %v from %s", ErrUnknownGroup, rep.Group, rep.From)
	}
	e.childLoad = rep.Load
	e.childLoadAt = now
	e.hasChildLoad = true
	return nil
}

// PlanMerges returns the consolidation opportunities, coldest first.
func (s *LegacyServer) PlanMerges(mergeThreshold float64, now time.Time) []MergeProposal {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []MergeProposal
	s.table.forEach(func(e *Entry) bool {
		prop, ok := s.mergeCandidateLocked(e, mergeThreshold, now)
		if ok {
			out = append(out, prop)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].CombinedLoad != out[j].CombinedLoad {
			return out[i].CombinedLoad < out[j].CombinedLoad
		}
		return out[i].Parent.Prefix.Compare(out[j].Parent.Prefix) < 0
	})
	return out
}

// ProposeMerge builds the consolidation proposal for one parent entry.
func (s *LegacyServer) ProposeMerge(parent bitkey.Group, now time.Time) (MergeProposal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.get(parent)
	if !ok {
		return MergeProposal{}, fmt.Errorf("%w: %v", ErrUnknownGroup, parent)
	}
	prop, ok := s.mergeCandidateLocked(e, math.MaxFloat64, now)
	if !ok {
		return MergeProposal{}, fmt.Errorf("%w: %v", ErrCannotMerge, parent)
	}
	return prop, nil
}

func (s *LegacyServer) mergeCandidateLocked(e *Entry, mergeThreshold float64, now time.Time) (MergeProposal, bool) {
	if e.Active || e.RightChild == NoServer {
		return MergeProposal{}, false
	}
	left, right, err := e.Group.Split()
	if err != nil || !right.Equal(e.RightChildGroup) {
		return MergeProposal{}, false
	}
	leftEntry, ok := s.table.get(left)
	if !ok || !leftEntry.Active {
		return MergeProposal{}, false
	}
	var childLoad float64
	if e.RightChild == s.id {
		rightEntry, ok := s.table.get(right)
		if !ok || !rightEntry.Active {
			return MergeProposal{}, false
		}
		childLoad = rightEntry.localLoad
	} else {
		if !e.hasChildLoad || now.Sub(e.childLoadAt) > s.reportMaxAge {
			return MergeProposal{}, false
		}
		childLoad = e.childLoad
	}
	combined := leftEntry.localLoad + childLoad
	if combined > mergeThreshold {
		return MergeProposal{}, false
	}
	return MergeProposal{
		Parent:       e.Group,
		RightChild:   right,
		RightHolder:  e.RightChild,
		CombinedLoad: combined,
	}, true
}

// ExecuteMerge consolidates a parent group after its right child released.
func (s *LegacyServer) ExecuteMerge(parent bitkey.Group, now time.Time) (*MergeResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.get(parent)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownGroup, parent)
	}
	prop, ok := s.mergeCandidateLocked(e, 1e18, now)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrCannotMerge, parent)
	}
	left, right, err := parent.Split()
	if err != nil {
		return nil, err
	}
	leftEntry, _ := s.table.get(left)
	combined := leftEntry.localLoad
	s.table.remove(left)
	if e.RightChild == s.id {
		if rightEntry, ok := s.table.get(right); ok {
			combined += rightEntry.localLoad
			s.table.remove(right)
		}
	} else {
		combined += e.childLoad
	}
	e.Active = true
	e.RightChild = NoServer
	e.RightChildGroup = bitkey.Group{}
	e.hasChildLoad = false
	e.localLoad = combined
	s.counters.Merges++
	return &MergeResult{Merged: parent, ReclaimedFrom: prop.RightHolder, ReleasedGroup: right}, nil
}

// HandleRelease processes a RELEASE_KEYGROUP message from the parent server.
func (s *LegacyServer) HandleRelease(g bitkey.Group) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.get(g)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	if !e.Active {
		return fmt.Errorf("%w: %v", ErrNotActive, g)
	}
	s.table.remove(g)
	s.counters.GroupsReleased++
	return nil
}
