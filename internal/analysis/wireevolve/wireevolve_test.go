package wireevolve_test

import (
	"testing"

	"clash/internal/analysis/analysistest"
	"clash/internal/analysis/wireevolve"
)

func TestWireEvolve(t *testing.T) {
	analysistest.Run(t, "testdata", wireevolve.Analyzer, "wire")
}
