package cluster

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// inf marks the +Inf histogram bucket bound.
var inf = math.Inf(1)

// Sample is one parsed Prometheus exposition sample.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Metrics is a parsed /metrics scrape with lookup helpers.
type Metrics struct {
	samples []Sample
}

// parseMetrics parses the Prometheus text exposition format (the subset our
// registry emits: HELP/TYPE comments and `name{labels} value` samples). It is
// the scrape-side twin of metrics.LintPrometheus — the linter validates the
// grammar on the way out, this reads values back in on the way into clashtop.
func parseMetrics(r io.Reader) (*Metrics, error) {
	m := &Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", lineNo, err)
		}
		m.samples = append(m.samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// parsePromSample parses one `name{k="v",...} value` line.
func parsePromSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// parsePromLabels parses `k="v",k2="v2"` with \\, \" and \n escapes.
func parsePromLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value")
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				s = s[i+1:]
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value")
		}
		out[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// Select returns every sample of the named family member (exact name match,
// so histogram series are addressed as name_bucket / name_sum / name_count).
func (m *Metrics) Select(name string) []Sample {
	var out []Sample
	for _, s := range m.samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the first sample matching name and the given label subset.
func (m *Metrics) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range m.samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample of the given name (all label combinations).
func (m *Metrics) Sum(name string) float64 {
	total := 0.0
	for _, s := range m.samples {
		if s.Name == name {
			total += s.Value
		}
	}
	return total
}

// bucketPoint is one cumulative histogram bucket.
type bucketPoint struct {
	le    float64 // upper bound (math.Inf(1) for +Inf)
	count uint64
}

// mergedBuckets accumulates identical bucket layouts across nodes, keyed by
// one distinguishing label (e.g. stage).
type mergedBuckets map[string]map[float64]uint64

// addHistogram folds one node's `name_bucket` samples into the merge, keyed
// by the byLabel value.
func (mb mergedBuckets) addHistogram(m *Metrics, name, byLabel string) {
	for _, s := range m.Select(name + "_bucket") {
		key := s.Labels[byLabel]
		leStr, ok := s.Labels["le"]
		if !ok {
			continue
		}
		le, err := parseLE(leStr)
		if err != nil {
			continue
		}
		if mb[key] == nil {
			mb[key] = make(map[float64]uint64)
		}
		mb[key][le] += uint64(s.Value)
	}
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return inf, nil
	}
	return strconv.ParseFloat(s, 64)
}

// quantiles computes the given quantiles from a merged cumulative bucket set
// by linear interpolation inside the covering bucket (the Prometheus
// histogram_quantile estimate).
func (mb mergedBuckets) quantiles(key string, qs ...float64) []float64 {
	cum := mb[key]
	out := make([]float64, len(qs))
	if len(cum) == 0 {
		return out
	}
	points := make([]bucketPoint, 0, len(cum))
	for le, c := range cum {
		points = append(points, bucketPoint{le: le, count: c})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].le < points[j].le })
	total := points[len(points)-1].count
	if total == 0 {
		return out
	}
	for qi, q := range qs {
		rank := q * float64(total)
		var prev bucketPoint
		for _, p := range points {
			if float64(p.count) >= rank {
				if p.le == inf {
					// Estimate the open-ended bucket at its lower bound.
					out[qi] = prev.le
					break
				}
				span := float64(p.count) - float64(prev.count)
				if span <= 0 {
					out[qi] = p.le
					break
				}
				out[qi] = prev.le + (p.le-prev.le)*(rank-float64(prev.count))/span
				break
			}
			prev = p
		}
	}
	return out
}
