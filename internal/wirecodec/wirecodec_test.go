package wirecodec

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 300)
	b = AppendUvarint(b, math.MaxUint64)
	b = AppendInt(b, 42)
	b = AppendInt(b, -7) // clamped to 0
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendFloat64(b, 3.25)
	b = AppendFloat64(b, math.Inf(-1))
	b = AppendBytes(b, []byte("payload"))
	b = AppendBytes(b, nil)
	b = AppendString(b, "héllo")
	b = AppendString(b, "")

	r := NewReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Errorf("uvarint = %d, want 0", v)
	}
	if v := r.Uvarint(); v != 300 {
		t.Errorf("uvarint = %d, want 300", v)
	}
	if v := r.Uvarint(); v != math.MaxUint64 {
		t.Errorf("uvarint = %d, want max", v)
	}
	if v := r.Uvarint(); v != 42 {
		t.Errorf("int = %d, want 42", v)
	}
	if v := r.Uvarint(); v != 0 {
		t.Errorf("clamped int = %d, want 0", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bool round trip failed")
	}
	if v := r.Float64(); v != 3.25 {
		t.Errorf("float = %v, want 3.25", v)
	}
	if v := r.Float64(); !math.IsInf(v, -1) {
		t.Errorf("float = %v, want -inf", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte("payload")) {
		t.Errorf("bytes = %q", v)
	}
	if v := r.Bytes(); v != nil {
		t.Errorf("empty bytes = %v, want nil", v)
	}
	if v := r.String(); v != "héllo" {
		t.Errorf("string = %q", v)
	}
	if v := r.String(); v != "" {
		t.Errorf("empty string = %q", v)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
	if r.Len() != 0 {
		t.Errorf("leftover bytes: %d", r.Len())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x80}) // truncated varint
	_ = r.Uvarint()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
	// Every later read is a no-op zero value with the same error.
	if v := r.Uvarint(); v != 0 {
		t.Errorf("read after error = %d", v)
	}
	if v := r.Bytes(); v != nil {
		t.Errorf("bytes after error = %v", v)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("sticky err = %v", r.Err())
	}
}

func TestReaderRejectsOverlongLength(t *testing.T) {
	// A length prefix larger than the remaining input must fail without
	// allocating the advertised size.
	b := AppendUvarint(nil, 1<<40)
	r := NewReader(append(b, 'x'))
	if v := r.Bytes(); v != nil {
		t.Errorf("bytes = %v, want nil", v)
	}
	if !errors.Is(r.Err(), ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", r.Err())
	}

	// Int rejects values beyond the protocol range.
	r = NewReader(AppendUvarint(nil, math.MaxUint64))
	_ = r.Int()
	if !errors.Is(r.Err(), ErrInvalid) {
		t.Errorf("Int err = %v, want ErrInvalid", r.Err())
	}

	// Bool rejects bytes other than 0 and 1.
	r = NewReader([]byte{7})
	_ = r.Bool()
	if !errors.Is(r.Err(), ErrInvalid) {
		t.Errorf("Bool err = %v, want ErrInvalid", r.Err())
	}
}

func TestBytesAliasAndCopy(t *testing.T) {
	src := AppendBytes(nil, []byte("abc"))
	r := NewReader(src)
	aliased := r.Bytes()
	r = NewReader(src)
	copied := r.BytesCopy()
	src[len(src)-1] = 'Z'
	if string(aliased) != "abZ" {
		t.Errorf("aliased = %q, want view of mutated input", aliased)
	}
	if string(copied) != "abc" {
		t.Errorf("copied = %q, want original", copied)
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("pooled buffer not empty: %d", len(b))
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	// Oversized buffers must be dropped, not pinned in the pool.
	PutBuf(make([]byte, 0, maxPooledBuf+1))
}

func TestEncodeAllocFree(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 256)
	buf := GetBuf()
	defer PutBuf(buf)
	allocs := testing.AllocsPerRun(100, func() {
		b := buf[:0]
		b = AppendUvarint(b, 123456)
		b = AppendFloat64(b, 1.5)
		b = AppendBytes(b, payload)
		b = AppendString(b, "clash.accept_object")
		if len(b) == 0 {
			t.Fatal("empty encode")
		}
		buf = b
	})
	if allocs != 0 {
		t.Errorf("encode allocations = %v, want 0", allocs)
	}
}

// FuzzReaderPrimitives checks that arbitrary input never panics the reader
// and that declared lengths are validated before use.
func FuzzReaderPrimitives(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Add(AppendBytes(AppendUvarint(nil, 5), []byte("hello")))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		_ = r.Uvarint()
		_ = r.Int()
		_ = r.Bool()
		_ = r.Float64()
		b := r.Bytes()
		if len(b) > len(data) {
			t.Fatalf("Bytes returned %d bytes from %d-byte input", len(b), len(data))
		}
		_ = r.String()
		_ = r.Err()
	})
}
