package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CalleePkgFunc reports the imported package path and function name when call
// is pkg.Fn(...) for an imported package pkg (possibly renamed). ok is false
// for method calls, local calls, builtins and conversions.
func CalleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// LastSegment returns the final slash-separated element of an import path.
func LastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// HasPathSegment reports whether any slash-separated element of path equals
// seg.
func HasPathSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// NamedTypeName returns the name of the (possibly pointer-wrapped) named type
// of t, or "" when t is not a named struct/basic type.
func NamedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
