package overlay

import "sync/atomic"

// Control-plane observation: a Node reports protocol events (splits, merges,
// recoveries, ring changes, suspicion verdicts) and request-trace timings to
// an installed Observer. The hub (internal/hub) implements Observer and fans
// the stream out to /events subscribers and the trace store; the simulator
// installs a counting observer to assert event/counter consistency. With no
// observer installed (the default) every emit site is a nil check — the data
// and maintenance paths pay nothing.

// Event types published on the node's event stream.
const (
	// EventRingChange reports a successor-list change (ring churn).
	EventRingChange = "ring-change"
	// EventSplit reports a key-group split executed on this node.
	EventSplit = "split"
	// EventMerge reports a consolidation completed by this node (the parent).
	EventMerge = "merge"
	// EventRecovery reports replica promotion (a dead peer's groups restored
	// here) or a restart pull of the node's own pre-crash state.
	EventRecovery = "recovery"
	// EventSuspicion reports a failure-detector verdict transition for a peer
	// (suspect, dead, or cleared back to ok).
	EventSuspicion = "suspicion-verdict"
	// EventDrain reports an admin drain pass moving this node's groups to its
	// successor.
	EventDrain = "drain"
)

// Event is one protocol event. Node fills Node and TimeMs at emit time; Seq
// is assigned by the consumer's buffer (the hub's ring), not the node.
type Event struct {
	Seq    uint64 `json:"seq,omitempty"`
	TimeMs int64  `json:"timeMs"`
	Type   string `json:"type"`
	Node   string `json:"node"`
	// Group is the key group involved (splits, merges, drains).
	Group string `json:"group,omitempty"`
	// Peer is the other node involved (suspicion verdicts, recovery origins).
	Peer string `json:"peer,omitempty"`
	// Detail is a human-readable supplement (counts, verdicts, targets).
	Detail string `json:"detail,omitempty"`
}

// Trace stages recorded along a sampled publish path, in path order.
const (
	// TraceStageRoute is the server state-machine time for an ACCEPT_OBJECT
	// probe that landed (OK / OK_CORRECTED).
	TraceStageRoute = "route"
	// TraceStageResolve is the state-machine time of a probe answered
	// INCORRECT_DEPTH — the split-resolution hops of the modified binary
	// search.
	TraceStageResolve = "resolve"
	// TraceStageMatch is the continuous-query engine match time for a data
	// packet.
	TraceStageMatch = "match"
	// TraceStageDeliver is the round trip of one match push to a subscriber.
	TraceStageDeliver = "deliver"
)

// TraceStage is one timed stage of a sampled request.
type TraceStage struct {
	Stage  string `json:"stage"`
	Micros int64  `json:"micros"`
}

// TraceRecord is the server-side record of one sampled ACCEPT_OBJECT: where
// it landed and how long each stage took. Stages along the path of one
// object on one node; the per-stage histograms aggregate across records.
type TraceRecord struct {
	TraceID uint64 `json:"traceId"`
	TimeMs  int64  `json:"timeMs"`
	Node    string `json:"node"`
	Key     string `json:"key"`
	Group   string `json:"group,omitempty"`
	// Status is the numeric accept status (core.StatusOK etc.).
	Status int `json:"status"`
	// Matches is how many continuous queries a data packet matched.
	Matches int          `json:"matches,omitempty"`
	Stages  []TraceStage `json:"stages"`
}

// Observer receives a node's event stream and trace records. Implementations
// must be safe for concurrent use and must not block: emit sites sit on the
// data path and inside maintenance passes.
type Observer interface {
	// OnEvent receives one protocol event.
	OnEvent(Event)
	// OnTrace receives the completed record of one sampled request.
	OnTrace(TraceRecord)
	// OnTraceStage receives one stage observation (also contained in trace
	// records; reported separately so per-stage histograms don't require
	// record parsing, and for async stages like deliver that complete after
	// the record was cut).
	OnTraceStage(stage string, micros int64)
}

// obsHolder wraps the interface for atomic.Pointer storage.
type obsHolder struct{ o Observer }

// observerRef is the node's observer slot (atomic: SetObserver may race the
// data path).
type observerRef struct {
	p atomic.Pointer[obsHolder]
}

func (r *observerRef) set(o Observer) {
	if o == nil {
		r.p.Store(nil)
		return
	}
	r.p.Store(&obsHolder{o: o})
}

func (r *observerRef) get() Observer {
	if h := r.p.Load(); h != nil {
		return h.o
	}
	return nil
}

// SetObserver installs (or, with nil, removes) the node's observer.
func (n *Node) SetObserver(o Observer) { n.obs.set(o) }

// emit publishes one event, stamping the node identity and clock. No-op
// without an observer.
func (n *Node) emit(ev Event) {
	o := n.obs.get()
	if o == nil {
		return
	}
	ev.Node = n.Addr()
	ev.TimeMs = n.cfg.Clock.Now().UnixMilli()
	o.OnEvent(ev)
}
