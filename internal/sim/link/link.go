// Package link models one-way network link behavior — propagation latency
// with jitter and independent per-message loss — shared by the deterministic
// simulator transport (internal/sim) and the in-memory overlay transport's
// optional latency injection (overlay.MemNetwork.SetLink, clashload
// -inproc -latency). The model deliberately has no clock of its own: callers
// sample it with their PRNG and apply the result on whatever timeline they
// run (virtual event time in the simulator, real time.Sleep in -inproc runs).
package link

import (
	"fmt"
	"math/rand"
	"time"
)

// Model describes one direction of a network link.
type Model struct {
	// BaseLatency is the fixed one-way propagation delay.
	BaseLatency time.Duration `json:"base_latency"`
	// Jitter is the width of the uniform random delay added on top of
	// BaseLatency: each message waits BaseLatency + U[0, Jitter).
	Jitter time.Duration `json:"jitter,omitempty"`
	// Loss is the independent probability in [0, 1) that a message is
	// dropped in transit.
	Loss float64 `json:"loss,omitempty"`
	// DropTimeout is how long a sender waits before concluding a lost
	// message will never be answered (the virtual analogue of a call
	// timeout). Zero means the loss surfaces immediately.
	DropTimeout time.Duration `json:"drop_timeout,omitempty"`
	// Dup is the independent probability in [0, 1) that a delivered message
	// is duplicated — the copy arrives too (gray-fault injection; only the
	// simulator transport honors it).
	Dup float64 `json:"dup,omitempty"`
	// Reorder is the independent probability in [0, 1) that a delivered
	// message spawns a late duplicate — a stale copy arriving DropTimeout
	// after the original (gray-fault injection; only the simulator transport
	// honors it).
	Reorder float64 `json:"reorder,omitempty"`
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.BaseLatency < 0 || m.Jitter < 0 || m.DropTimeout < 0 {
		return fmt.Errorf("link: negative durations in %+v", m)
	}
	if m.Loss < 0 || m.Loss >= 1 {
		return fmt.Errorf("link: loss %g outside [0, 1)", m.Loss)
	}
	if m.Dup < 0 || m.Dup >= 1 {
		return fmt.Errorf("link: dup %g outside [0, 1)", m.Dup)
	}
	if m.Reorder < 0 || m.Reorder >= 1 {
		return fmt.Errorf("link: reorder %g outside [0, 1)", m.Reorder)
	}
	return nil
}

// Zero reports whether the model is the zero-RTT, lossless identity.
func (m Model) Zero() bool {
	return m.BaseLatency == 0 && m.Jitter == 0 && m.Loss == 0 &&
		m.Dup == 0 && m.Reorder == 0
}

// Sample draws the fate of one message: its one-way delay, and whether it is
// lost. Both outcomes consume PRNG draws in a fixed order (loss first, then
// jitter) so simulation runs with the same seed stay bit-identical. A lost
// message's latency is the model's DropTimeout (how long the sender stalls
// before noticing).
func (m Model) Sample(rng *rand.Rand) (latency time.Duration, dropped bool) {
	if m.Loss > 0 && rng.Float64() < m.Loss {
		return m.DropTimeout, true
	}
	latency = m.BaseLatency
	if m.Jitter > 0 {
		latency += time.Duration(rng.Int63n(int64(m.Jitter)))
	}
	return latency, false
}

// WAN returns a rough wide-area profile: base one-way latency around lat with
// ±25% jitter and the given loss probability. It is the default the simulator
// scenarios and clashload -latency use.
func WAN(lat time.Duration, loss float64) Model {
	return Model{
		BaseLatency: lat - lat/8,
		Jitter:      lat / 4,
		Loss:        loss,
		DropTimeout: 4 * lat,
	}
}
