package overlay

import (
	"fmt"

	"clash/internal/chord"
	"clash/internal/wirecodec"
)

// transportRPC implements chord.RPC by sending binary-framed requests through
// a node's resilient caller (per-class deadlines, suspicion feedback, retries
// where safe). Any transport failure surfaces as chord.ErrNodeDown so the
// chord maintenance logic treats it as a peer failure and repairs around it.
type transportRPC struct {
	c *caller
}

var _ chord.RPC = (*transportRPC)(nil)

func refToMsg(r chord.NodeRef) nodeRefMsg { return nodeRefMsg{Addr: r.Addr, ID: uint64(r.ID)} }
func msgToRef(m nodeRefMsg) chord.NodeRef { return chord.NodeRef{Addr: m.Addr, ID: chord.ID(m.ID)} }

// callFunc performs one logical exchange: a bare Transport.Call, or a
// caller.call that wraps it with deadlines and retries.
type callFunc func(addr, msgType string, payload []byte) ([]byte, error)

// callWith encodes req with the binary codec, performs the exchange through do
// and decodes the reply into resp (which may be nil for fire-and-forget
// replies). The request buffer comes from the codec pool, so the encode path
// does not allocate in steady state.
func callWith(do callFunc, addr, msgType string, req, resp wireMsg) error {
	var payload []byte
	if req != nil {
		payload = marshalMsg(req)
		defer wirecodec.PutBuf(payload)
	}
	reply, err := do(addr, msgType, payload)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	if err := resp.UnmarshalWire(reply); err != nil {
		return fmt.Errorf("overlay: decode %s reply: %w", msgType, err)
	}
	return nil
}

// call is callWith over a bare transport (the client-side path, which has no
// suspicion tracker).
func call(tr Transport, addr, msgType string, req, resp wireMsg) error {
	return callWith(tr.Call, addr, msgType, req, resp)
}

// call is the chord.RPC flavor of callWith: transport failures become
// chord.ErrNodeDown.
func (c *transportRPC) call(addr, msgType string, req, resp wireMsg) error {
	if err := callWith(c.c.call, addr, msgType, req, resp); err != nil {
		if IsRemote(err) {
			return err
		}
		return fmt.Errorf("%w: %s (%v)", chord.ErrNodeDown, addr, err)
	}
	return nil
}

// FindSuccessor implements chord.RPC.
func (c *transportRPC) FindSuccessor(ref chord.NodeRef, id chord.ID) (chord.NodeRef, error) {
	var resp nodeRefMsg
	if err := c.call(ref.Addr, TypeFindSuccessor, &findSuccessorMsg{ID: uint64(id)}, &resp); err != nil {
		return chord.NodeRef{}, err
	}
	return msgToRef(resp), nil
}

// Successor implements chord.RPC.
func (c *transportRPC) Successor(ref chord.NodeRef) (chord.NodeRef, error) {
	var resp nodeRefMsg
	if err := c.call(ref.Addr, TypeSuccessor, nil, &resp); err != nil {
		return chord.NodeRef{}, err
	}
	return msgToRef(resp), nil
}

// Predecessor implements chord.RPC.
func (c *transportRPC) Predecessor(ref chord.NodeRef) (chord.NodeRef, error) {
	var resp nodeRefMsg
	if err := c.call(ref.Addr, TypePredecessor, nil, &resp); err != nil {
		return chord.NodeRef{}, err
	}
	return msgToRef(resp), nil
}

// Notify implements chord.RPC.
func (c *transportRPC) Notify(ref chord.NodeRef, candidate chord.NodeRef) error {
	return c.call(ref.Addr, TypeNotify, &notifyMsg{Candidate: refToMsg(candidate)}, nil)
}

// Ping implements chord.RPC.
func (c *transportRPC) Ping(ref chord.NodeRef) error {
	return c.call(ref.Addr, TypePing, nil, nil)
}
