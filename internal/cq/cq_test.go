package cq

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"clash/internal/bitkey"
)

func mustEngine(t *testing.T, bits int) *Engine {
	t.Helper()
	e, err := NewEngine(bits)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPredicateEval(t *testing.T) {
	attrs := map[string]float64{"speed": 80, "fuel": 0.4}
	tests := []struct {
		p    Predicate
		want bool
	}{
		{Predicate{"speed", OpEq, 80}, true},
		{Predicate{"speed", OpNe, 80}, false},
		{Predicate{"speed", OpGt, 70}, true},
		{Predicate{"speed", OpGe, 80}, true},
		{Predicate{"speed", OpLt, 80}, false},
		{Predicate{"fuel", OpLe, 0.4}, true},
		{Predicate{"missing", OpEq, 1}, false},
	}
	for _, tt := range tests {
		if got := tt.p.Eval(attrs); got != tt.want {
			t.Errorf("%s %s %g = %v, want %v", tt.p.Attr, tt.p.Op, tt.p.Value, got, tt.want)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	good := Query{ID: "q1", Region: bitkey.MustParseGroup("0110*"),
		Predicates: []Predicate{{"speed", OpGt, 100}}}
	if err := good.Validate(24); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	bad := []Query{
		{ID: "", Region: bitkey.MustParseGroup("01*")},
		{ID: "q", Region: bitkey.MustParseGroup("0101010101*")},
		{ID: "q", Region: bitkey.MustParseGroup("01*"), Predicates: []Predicate{{"", OpEq, 1}}},
		{ID: "q", Region: bitkey.MustParseGroup("01*"), Predicates: []Predicate{{"a", Op(99), 1}}},
	}
	for i, q := range bad {
		if err := q.Validate(8); !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("bad query %d err = %v, want ErrInvalidQuery", i, err)
		}
	}
}

func TestQueryMarshalRoundTrip(t *testing.T) {
	q := Query{
		ID:         "q42",
		Region:     bitkey.MustParseGroup("011010*"),
		Predicates: []Predicate{{"speed", OpGe, 120}, {"lane", OpEq, 2}},
	}
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalQuery(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != q.ID || !got.Region.Equal(q.Region) || len(got.Predicates) != 2 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := UnmarshalQuery([]byte("{bad")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := UnmarshalQuery([]byte(`{"id":"x","region":"01x*"}`)); err == nil {
		t.Error("bad region accepted")
	}
}

func TestEngineRegisterUnregister(t *testing.T) {
	e := mustEngine(t, 16)
	q := Query{ID: "q1", Region: bitkey.MustParseGroup("0110*")}
	if err := e.Register(q); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(q); !errors.Is(err, ErrDuplicateQuery) {
		t.Errorf("duplicate register err = %v", err)
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d, want 1", e.Len())
	}
	if err := e.Unregister("q1"); err != nil {
		t.Fatal(err)
	}
	if err := e.Unregister("q1"); !errors.Is(err, ErrUnknownQuery) {
		t.Errorf("double unregister err = %v", err)
	}
	if e.Len() != 0 {
		t.Errorf("Len = %d, want 0", e.Len())
	}
	if _, err := NewEngine(0); err == nil {
		t.Error("NewEngine(0) succeeded, want error")
	}
}

func TestEngineMatchRegionAndPredicates(t *testing.T) {
	e := mustEngine(t, 8)
	queries := []Query{
		{ID: "region-only", Region: bitkey.MustParseGroup("0110*")},
		{ID: "speeders", Region: bitkey.MustParseGroup("01*"),
			Predicates: []Predicate{{"speed", OpGt, 100}}},
		{ID: "elsewhere", Region: bitkey.MustParseGroup("11*")},
		{ID: "exact", Region: bitkey.MustParseGroup("01101010*")},
	}
	for _, q := range queries {
		if err := e.Register(q); err != nil {
			t.Fatal(err)
		}
	}

	ev := Event{Key: bitkey.MustParse("01101010"), Attrs: map[string]float64{"speed": 130}}
	got := e.Match(ev)
	wantIDs := []string{"exact", "region-only", "speeders"}
	if len(got) != len(wantIDs) {
		t.Fatalf("matched %d queries (%v), want %d", len(got), got, len(wantIDs))
	}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Errorf("match[%d] = %s, want %s", i, got[i].ID, id)
		}
	}

	slow := Event{Key: bitkey.MustParse("01101010"), Attrs: map[string]float64{"speed": 50}}
	got = e.Match(slow)
	if len(got) != 2 {
		t.Fatalf("slow event matched %v, want region-only and exact", got)
	}

	outside := Event{Key: bitkey.MustParse("10000000"), Attrs: map[string]float64{"speed": 200}}
	if got := e.Match(outside); len(got) != 0 {
		t.Errorf("event outside all regions matched %v", got)
	}
}

func TestEngineExtractGroupMigratesState(t *testing.T) {
	e := mustEngine(t, 8)
	for i := 0; i < 20; i++ {
		region := "0110*"
		if i%2 == 1 {
			region = "0111*"
		}
		q := Query{ID: fmt.Sprintf("q%02d", i), Region: bitkey.MustParseGroup(region)}
		if err := e.Register(q); err != nil {
			t.Fatal(err)
		}
	}
	// Splitting "011*" transfers the right child "0111*": exactly the odd
	// queries move.
	inGroup := e.QueriesInGroup(bitkey.MustParseGroup("0111*"))
	if len(inGroup) != 10 {
		t.Fatalf("QueriesInGroup = %d, want 10", len(inGroup))
	}
	moved := e.ExtractGroup(bitkey.MustParseGroup("0111*"))
	if len(moved) != 10 {
		t.Fatalf("ExtractGroup = %d, want 10", len(moved))
	}
	for _, q := range moved {
		if q.Region.String() != "0111*" {
			t.Errorf("moved query %s has region %v", q.ID, q.Region)
		}
	}
	if e.Len() != 10 {
		t.Errorf("remaining queries = %d, want 10", e.Len())
	}
	// Extracting again finds nothing.
	if again := e.ExtractGroup(bitkey.MustParseGroup("0111*")); len(again) != 0 {
		t.Errorf("second extract = %d, want 0", len(again))
	}
	// The extracted queries can be re-registered on the receiving server.
	other := mustEngine(t, 8)
	for _, q := range moved {
		if err := other.Register(q); err != nil {
			t.Fatal(err)
		}
	}
	if other.Len() != 10 {
		t.Errorf("receiver has %d queries, want 10", other.Len())
	}
}

func TestEngineMatchAfterMigrationPreservesSemantics(t *testing.T) {
	// Property: splitting the query set across two engines by key group and
	// unioning their matches gives the same result as one engine.
	const bits = 12
	rng := rand.New(rand.NewSource(11))
	whole := mustEngine(t, bits)
	var queries []Query
	for i := 0; i < 200; i++ {
		depth := 2 + rng.Intn(6)
		prefix := bitkey.MustNew(rng.Uint64()&(1<<depth-1), depth)
		q := Query{ID: fmt.Sprintf("q%03d", i), Region: bitkey.NewGroup(prefix)}
		if rng.Intn(2) == 0 {
			q.Predicates = []Predicate{{"v", OpGt, float64(rng.Intn(100))}}
		}
		queries = append(queries, q)
		if err := whole.Register(q); err != nil {
			t.Fatal(err)
		}
	}
	left := mustEngine(t, bits)
	right := mustEngine(t, bits)
	for _, q := range queries {
		vk, err := q.IdentifierKey(bits)
		if err != nil {
			t.Fatal(err)
		}
		target := left
		if vk.Bit(0) == 1 {
			target = right
		}
		if err := target.Register(q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		ev := Event{
			Key:   bitkey.MustNew(rng.Uint64()&(1<<bits-1), bits),
			Attrs: map[string]float64{"v": float64(rng.Intn(100))},
		}
		want := whole.Match(ev)
		gotLeft := left.Match(ev)
		gotRight := right.Match(ev)
		got := make(map[string]bool, len(gotLeft)+len(gotRight))
		for _, q := range gotLeft {
			got[q.ID] = true
		}
		for _, q := range gotRight {
			got[q.ID] = true
		}
		wantSet := make(map[string]bool, len(want))
		for _, q := range want {
			wantSet[q.ID] = true
		}
		// Note: a query on one partition can still match an event whose key
		// lies in the other partition only if its region spans both — which
		// cannot happen here because partitioning is by the region's own
		// virtual key bit 0 and regions have depth ≥ 2... except depth ≥ 1.
		// So the union must equal the whole engine's matches restricted to
		// queries whose region actually contains the key.
		for id := range wantSet {
			if !got[id] {
				t.Fatalf("event %v: query %s matched by whole engine but not by partitions", ev.Key, id)
			}
		}
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", Op(0): "?"}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}
