package core

import (
	"sync"

	"clash/internal/bitkey"
)

// This file freezes the pre-trie, string-keyed map implementations of the two
// routing hot paths. They are kept ONLY as benchmark baselines: the benchmark
// suite (BenchmarkRouteLegacy, BenchmarkActiveEntryForLegacy) and the
// cmd/clashbench harness run them side by side with the trie-backed versions
// so every future perf PR has a fixed reference point. Do not use them in
// protocol code.

// LegacyRouter is the pre-trie client cache: one map keyed by the group's
// wildcard string, probed once per candidate depth on every Route call (which
// also costs a Group.String() allocation per probe).
type LegacyRouter struct {
	mu      sync.RWMutex
	keyBits int
	entries map[string]ServerID
}

// NewLegacyRouter creates an empty baseline cache for an N-bit key space.
func NewLegacyRouter(keyBits int) *LegacyRouter {
	return &LegacyRouter{keyBits: keyBits, entries: make(map[string]ServerID)}
}

// Learn records a (group → server) binding.
func (r *LegacyRouter) Learn(g bitkey.Group, server ServerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[g.String()] = server
}

// Forget drops the binding for a group.
func (r *LegacyRouter) Forget(g bitkey.Group) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, g.String())
}

// ForgetServer drops every binding pointing at server with a full-map scan
// (the behaviour the trie Router's reverse index replaces).
func (r *LegacyRouter) ForgetServer(server ServerID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for g, s := range r.entries {
		if s == server {
			delete(r.entries, g)
		}
	}
}

// Route probes every depth from the deepest down, formatting a map key per
// probe.
func (r *LegacyRouter) Route(k bitkey.Key) (bitkey.Group, ServerID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for d := min(k.Bits, r.keyBits); d >= 0; d-- {
		g, err := bitkey.Shape(k, d)
		if err != nil {
			continue
		}
		if s, ok := r.entries[g.String()]; ok {
			return g, s, true
		}
	}
	return bitkey.Group{}, NoServer, false
}

// Len returns the number of cached bindings.
func (r *LegacyRouter) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// LegacyTable is the pre-trie Server Work Table index: entries in a map keyed
// by the group's wildcard string, with per-depth probing for activeEntryFor
// and full scans for longestPrefixMatch.
type LegacyTable struct {
	keyBits int
	entries map[string]*Entry
}

// NewLegacyTable creates an empty baseline table.
func NewLegacyTable(keyBits int) *LegacyTable {
	return &LegacyTable{keyBits: keyBits, entries: make(map[string]*Entry)}
}

// Put inserts or replaces an entry.
func (t *LegacyTable) Put(e *Entry) { t.entries[e.Group.String()] = e }

// Len returns the number of entries.
func (t *LegacyTable) Len() int { return len(t.entries) }

// ActiveEntryFor probes every depth from the deepest down, formatting a map
// key per probe.
func (t *LegacyTable) ActiveEntryFor(k bitkey.Key) (*Entry, bool) {
	for d := k.Bits; d >= 0; d-- {
		g, err := bitkey.Shape(k, d)
		if err != nil {
			continue
		}
		if e, ok := t.entries[g.String()]; ok && e.Active {
			return e, true
		}
	}
	return nil, false
}

// LongestPrefixMatch scans every entry.
func (t *LegacyTable) LongestPrefixMatch(k bitkey.Key) int {
	best := 0
	for _, e := range t.entries {
		if l := bitkey.LongestCommonPrefix(k, e.Group.Prefix); l > best {
			best = l
		}
	}
	return best
}
