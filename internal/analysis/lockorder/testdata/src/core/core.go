// Package core mirrors the sharded work table's lock discipline: a shallow
// stripe, then deep shards ascending, lockAll being the only multi-stripe path.
package core

import "sync"

type serverShard struct {
	mu        sync.Mutex
	lockWaits int
}

func (sh *serverShard) lock() {
	if sh.mu.TryLock() { // TryLock never blocks: ignored by the analyzer
		return
	}
	sh.lockWaits++
	sh.mu.Lock()
}

type Server struct {
	shallow *serverShard
	shards  []*serverShard
}

// lockAll is the canonical multi-stripe path: shallow, then ascending walk.
func (s *Server) lockAll() {
	s.shallow.lock()
	for _, sh := range s.shards {
		sh.lock()
	}
}

func (s *Server) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	s.shallow.mu.Unlock()
}

// singleStripe is the blessed single-stripe pattern: one lock, never nested.
func (s *Server) singleStripe(i int) {
	sh := s.shards[i%len(s.shards)]
	sh.lock()
	defer sh.mu.Unlock()
	sh.lockWaits++
}

// nestedSingleStripe grabs a second stripe while one is held; neither rank is
// provable, so this can deadlock against a mirrored caller.
func (s *Server) nestedSingleStripe(a, b int) {
	x := s.shards[a%len(s.shards)]
	y := s.shards[b%len(s.shards)]
	x.lock()
	defer x.mu.Unlock()
	y.lock() // want `second stripe lock acquired while holding a stripe lock; the order cannot be proven`
	defer y.mu.Unlock()
}

func (s *Server) descending() {
	s.shards[2].mu.Lock()
	s.shards[1].mu.Lock() // want `stripe shards\[1\] locked while holding a deep stripe`
	s.shards[1].mu.Unlock()
	s.shards[2].mu.Unlock()
}

func (s *Server) sameStripeTwice() {
	s.shards[1].lock()
	s.shards[1].lock() // want `stripe shards\[1\] locked while holding a deep stripe`
	s.shards[1].mu.Unlock()
	s.shards[1].mu.Unlock()
}

// ascendingConstants is consistent with the global order and therefore legal.
func (s *Server) ascendingConstants() {
	s.shallow.lock()
	s.shards[0].lock()
	s.shards[3].lock()
	s.shards[3].mu.Unlock()
	s.shards[0].mu.Unlock()
	s.shallow.mu.Unlock()
}

func (s *Server) shallowLast() {
	s.shards[0].lock()
	s.shallow.lock() // want `shallow stripe locked while holding a deep stripe`
	s.shallow.mu.Unlock()
	s.shards[0].mu.Unlock()
}

func (s *Server) lockAllWhileHolding() {
	s.shallow.lock()
	s.lockAll() // want `lockAll acquired while already holding a stripe lock`
}

func (s *Server) walkWhileHoldingDeep() {
	s.shards[0].lock()
	for _, sh := range s.shards {
		sh.lock() // want `ascending shard walk started while holding a deep stripe`
	}
}

// releaseThenRelock is sequential, not nested: fine.
func (s *Server) releaseThenRelock() {
	s.shards[2].mu.Lock()
	s.shards[2].mu.Unlock()
	s.shards[0].mu.Lock()
	s.shards[0].mu.Unlock()
}

// spawned goroutines are separate lock domains with their own state.
func (s *Server) handoff() {
	s.shards[3].lock()
	go func() {
		s.shards[0].lock()
		s.shards[0].mu.Unlock()
	}()
	s.shards[3].mu.Unlock()
}

// suppressed documents a deliberate deviation with the mandatory reason.
func (s *Server) suppressed() {
	s.shards[1].lock()
	//clashvet:ignore lockorder rebalance swap holds both stripes under the global rebalance mutex
	s.shards[0].lock()
	s.shards[0].mu.Unlock()
	s.shards[1].mu.Unlock()
}

func (s *Server) badDirective() {
	s.shards[1].lock()
	/* want `malformed //clashvet:ignore directive: missing reason` */ //clashvet:ignore lockorder
	s.shards[0].lock()                                                 // want `stripe shards\[0\] locked while holding a deep stripe`
	s.shards[0].mu.Unlock()
	s.shards[1].mu.Unlock()
}
