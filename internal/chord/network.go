package chord

import (
	"fmt"
	"sync"
)

// LocalNetwork is an in-memory RPC fabric connecting protocol Nodes living in
// the same process. It is used by unit tests and by the examples that run a
// whole overlay inside one binary. Nodes can be partitioned (marked down) to
// exercise failure handling.
type LocalNetwork struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	down  map[string]bool
	// Calls counts RPCs by method name, letting tests assert on message
	// complexity.
	calls map[string]int
}

var _ RPC = (*LocalNetwork)(nil)

// NewLocalNetwork creates an empty network.
func NewLocalNetwork() *LocalNetwork {
	return &LocalNetwork{
		nodes: make(map[string]*Node),
		down:  make(map[string]bool),
		calls: make(map[string]int),
	}
}

// Register adds a node to the fabric so peers can reach it.
func (ln *LocalNetwork) Register(n *Node) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.nodes[n.Self().Addr] = n
}

// SetDown marks a node as unreachable (true) or reachable (false).
func (ln *LocalNetwork) SetDown(addr string, down bool) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.down[addr] = down
}

// Calls returns the number of RPCs issued for the given method.
func (ln *LocalNetwork) Calls(method string) int {
	ln.mu.RLock()
	defer ln.mu.RUnlock()
	return ln.calls[method]
}

func (ln *LocalNetwork) lookup(addr, method string) (*Node, error) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.calls[method]++
	if ln.down[addr] {
		return nil, fmt.Errorf("%w: %s", ErrNodeDown, addr)
	}
	n, ok := ln.nodes[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNodeDown, addr)
	}
	return n, nil
}

// FindSuccessor implements RPC.
func (ln *LocalNetwork) FindSuccessor(ref NodeRef, id ID) (NodeRef, error) {
	n, err := ln.lookup(ref.Addr, "FindSuccessor")
	if err != nil {
		return NodeRef{}, err
	}
	return n.FindSuccessor(id)
}

// Successor implements RPC.
func (ln *LocalNetwork) Successor(ref NodeRef) (NodeRef, error) {
	n, err := ln.lookup(ref.Addr, "Successor")
	if err != nil {
		return NodeRef{}, err
	}
	return n.Successor(), nil
}

// Predecessor implements RPC.
func (ln *LocalNetwork) Predecessor(ref NodeRef) (NodeRef, error) {
	n, err := ln.lookup(ref.Addr, "Predecessor")
	if err != nil {
		return NodeRef{}, err
	}
	return n.PredecessorRef(), nil
}

// Notify implements RPC.
func (ln *LocalNetwork) Notify(ref NodeRef, candidate NodeRef) error {
	n, err := ln.lookup(ref.Addr, "Notify")
	if err != nil {
		return err
	}
	n.Notify(candidate)
	return nil
}

// Ping implements RPC.
func (ln *LocalNetwork) Ping(ref NodeRef) error {
	_, err := ln.lookup(ref.Addr, "Ping")
	return err
}

// StabilizeAll runs the given number of stabilization + fix-finger rounds on
// every registered node, in address-insertion-independent (map) order. Tests
// use it to drive the ring to convergence deterministically.
func (ln *LocalNetwork) StabilizeAll(rounds int) {
	for i := 0; i < rounds; i++ {
		ln.mu.RLock()
		nodes := make([]*Node, 0, len(ln.nodes))
		for addr, n := range ln.nodes {
			if !ln.down[addr] {
				nodes = append(nodes, n)
			}
		}
		ln.mu.RUnlock()
		for _, n := range nodes {
			_ = n.Stabilize()
			n.CheckPredecessor()
			_ = n.FixAllFingers()
		}
	}
}
