package overlay

import "sync/atomic"

// Control-plane observation: a Node reports protocol events (splits, merges,
// recoveries, ring changes, suspicion verdicts) and request-trace timings to
// an installed Observer. The hub (internal/hub) implements Observer and fans
// the stream out to /events subscribers and the trace store; the simulator
// installs a counting observer to assert event/counter consistency. With no
// observer installed (the default) every emit site is a nil check — the data
// and maintenance paths pay nothing.

// Event types published on the node's event stream.
const (
	// EventRingChange reports a successor-list change (ring churn).
	EventRingChange = "ring-change"
	// EventSplit reports a key-group split executed on this node.
	EventSplit = "split"
	// EventMerge reports a consolidation completed by this node (the parent).
	EventMerge = "merge"
	// EventRecovery reports replica promotion (a dead peer's groups restored
	// here) or a restart pull of the node's own pre-crash state.
	EventRecovery = "recovery"
	// EventSuspicion reports a failure-detector verdict transition for a peer
	// (suspect, dead, or cleared back to ok).
	EventSuspicion = "suspicion-verdict"
	// EventDrain reports an admin drain pass moving this node's groups to its
	// successor.
	EventDrain = "drain"
)

// Event is one protocol event. Node fills Node and TimeMs at emit time; Seq
// is assigned by the consumer's buffer (the hub's ring), not the node.
type Event struct {
	Seq    uint64 `json:"seq,omitempty"`
	TimeMs int64  `json:"timeMs"`
	Type   string `json:"type"`
	Node   string `json:"node"`
	// Group is the key group involved (splits, merges, drains).
	Group string `json:"group,omitempty"`
	// Peer is the other node involved (suspicion verdicts, recovery origins).
	Peer string `json:"peer,omitempty"`
	// Detail is a human-readable supplement (counts, verdicts, targets).
	Detail string `json:"detail,omitempty"`
}

// Trace stages recorded along a sampled publish path, in path order.
const (
	// TraceStageRoute is the server state-machine time for an ACCEPT_OBJECT
	// probe that landed (OK / OK_CORRECTED).
	TraceStageRoute = "route"
	// TraceStageResolve is the state-machine time of a probe answered
	// INCORRECT_DEPTH — the split-resolution hops of the modified binary
	// search.
	TraceStageResolve = "resolve"
	// TraceStageMatch is the continuous-query engine match time for a data
	// packet.
	TraceStageMatch = "match"
	// TraceStageDeliver is the round trip of one match push to a subscriber.
	TraceStageDeliver = "deliver"
)

// TraceStage is one timed stage of a sampled request.
type TraceStage struct {
	Stage  string `json:"stage"`
	Micros int64  `json:"micros"`
}

// Hop kinds recorded in spans along a sampled publish's cross-node path.
const (
	// HopIngress is the first server an object's delivery contacts (the probe
	// arrived with no parent span) — the root of the trace's span tree,
	// whatever the probe's outcome.
	HopIngress = "ingress"
	// HopRouteForward is a later probe that landed (OK / OK_CORRECTED) on the
	// responsible server.
	HopRouteForward = "route-forward"
	// HopResolve is a later probe answered INCORRECT_DEPTH — one
	// split-resolution hop of the modified binary search.
	HopResolve = "resolve"
	// HopCQMatch is the continuous-query engine match on the landing server.
	HopCQMatch = "cq-match"
	// HopReplicaPush is a replica snapshot push a sampled registration
	// triggered, recorded by the receiving successor.
	HopReplicaPush = "replica-push"
	// HopDeliver is one match notification push to a subscriber, recorded by
	// the sending server (subscribers are client endpoints, not nodes).
	HopDeliver = "subscriber-deliver"
)

// Span is one node's hop record along a sampled publish's path. SpanID is
// unique per node (a node-salted counter); Parent references the span this
// hop descends from — on the wire for cross-node hops, in-process for
// same-node children — so a trace's spans from every node's ring assemble
// into one tree rooted at the ingress hop (Parent 0). The per-stage timings
// split the hop's cost: Codec is payload decode, Handler is state-machine /
// engine time, Network is onward call round trips charged to this hop, and
// Queue is in-node wait before deferred work ran (async fan-out paths; 0 for
// hops executed synchronously in their frame handler).
type Span struct {
	TraceID uint64 `json:"traceId"`
	SpanID  uint64 `json:"spanId"`
	Parent  uint64 `json:"parent,omitempty"`
	// Hop is the network hop count from the publishing client (0 at the
	// client's first probe).
	Hop    int    `json:"hop"`
	Kind   string `json:"kind"`
	Node   string `json:"node"`
	TimeMs int64  `json:"timeMs"`
	// Detail is a human-readable supplement (landing group, match counts,
	// push targets).
	Detail        string `json:"detail,omitempty"`
	QueueMicros   int64  `json:"queueMicros"`
	CodecMicros   int64  `json:"codecMicros"`
	HandlerMicros int64  `json:"handlerMicros"`
	NetworkMicros int64  `json:"networkMicros"`
}

// spanRef is the in-process trace context a handler threads to the side
// effects it triggers (match pushes, replica pushes): which trace, which
// parent span, and the next hop count.
type spanRef struct {
	TraceID uint64
	Parent  uint64
	Hop     int
}

// TraceRecord is the server-side record of one sampled ACCEPT_OBJECT: where
// it landed and how long each stage took. Stages along the path of one
// object on one node; the per-stage histograms aggregate across records.
type TraceRecord struct {
	TraceID uint64 `json:"traceId"`
	TimeMs  int64  `json:"timeMs"`
	Node    string `json:"node"`
	Key     string `json:"key"`
	Group   string `json:"group,omitempty"`
	// Status is the numeric accept status (core.StatusOK etc.).
	Status int `json:"status"`
	// Matches is how many continuous queries a data packet matched.
	Matches int          `json:"matches,omitempty"`
	Stages  []TraceStage `json:"stages"`
}

// Observer receives a node's event stream and trace records. Implementations
// must be safe for concurrent use and must not block: emit sites sit on the
// data path and inside maintenance passes.
type Observer interface {
	// OnEvent receives one protocol event.
	OnEvent(Event)
	// OnTrace receives the completed record of one sampled request.
	OnTrace(TraceRecord)
	// OnTraceStage receives one stage observation (also contained in trace
	// records; reported separately so per-stage histograms don't require
	// record parsing, and for async stages like deliver that complete after
	// the record was cut).
	OnTraceStage(stage string, micros int64)
	// OnSpan receives one hop span of a sampled publish's cross-node path.
	OnSpan(Span)
}

// obsHolder wraps the interface for atomic.Pointer storage.
type obsHolder struct{ o Observer }

// observerRef is the node's observer slot (atomic: SetObserver may race the
// data path).
type observerRef struct {
	p atomic.Pointer[obsHolder]
}

func (r *observerRef) set(o Observer) {
	if o == nil {
		r.p.Store(nil)
		return
	}
	r.p.Store(&obsHolder{o: o})
}

func (r *observerRef) get() Observer {
	if h := r.p.Load(); h != nil {
		return h.o
	}
	return nil
}

// SetObserver installs (or, with nil, removes) the node's observer.
func (n *Node) SetObserver(o Observer) { n.obs.set(o) }

// emit publishes one event, stamping the node identity and clock. No-op
// without an observer.
func (n *Node) emit(ev Event) {
	o := n.obs.get()
	if o == nil {
		return
	}
	ev.Node = n.Addr()
	ev.TimeMs = n.cfg.Clock.Now().UnixMilli()
	o.OnEvent(ev)
}

// nextSpanID draws a node-unique span identifier: the node's identity salt
// XOR a sequence number, the same scheme the client uses for trace IDs, so
// spans minted by different nodes cannot collide within a trace.
func (n *Node) nextSpanID() uint64 {
	id := n.spanSalt ^ n.spanSeq.Add(1)
	if id == 0 {
		id = 1
	}
	return id
}

// emitSpan publishes one hop span to o, stamping the node identity and
// clock.
func (n *Node) emitSpan(o Observer, sp Span) {
	sp.Node = n.Addr()
	sp.TimeMs = n.cfg.Clock.Now().UnixMilli()
	o.OnSpan(sp)
}
