// Package clock abstracts the time source the overlay's periodic machinery
// runs on. Production code uses the real wall clock (Real); the discrete-event
// simulator (internal/sim) injects a virtual clock driven by its event queue,
// so unmodified overlay nodes run at virtual time with no wall-clock reads in
// the simulated path.
package clock

import "time"

// Clock supplies the current time and timer/ticker primitives. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// NewTicker returns a ticker firing every d of this clock's time.
	NewTicker(d time.Duration) Ticker
	// NewTimer returns a timer firing once after d of this clock's time.
	NewTimer(d time.Duration) Timer
}

// Ticker is the clock-agnostic flavor of *time.Ticker. C is a method rather
// than a field so virtual implementations can be plain structs.
type Ticker interface {
	// C returns the channel ticks are delivered on.
	C() <-chan time.Time
	// Stop turns the ticker off. It does not close C.
	Stop()
}

// Timer is the clock-agnostic flavor of *time.Timer.
type Timer interface {
	// C returns the channel the expiry is delivered on.
	C() <-chan time.Time
	// Stop prevents the timer from firing, reporting whether it did.
	Stop() bool
}

// Real returns the wall clock (package time).
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }
