package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"clash/internal/bitkey"
	"clash/internal/chord"
	"clash/internal/cq"
	"clash/internal/hub"
	"clash/internal/load"
	"clash/internal/overlay"
)

// kindsOf walks one assembled tree and collects the hop kinds and node
// addresses it touches.
func kindsOf(tr *TraceTree) (map[string]bool, map[string]bool) {
	kinds := map[string]bool{}
	nodes := map[string]bool{}
	var walk func(ts *TraceSpan)
	walk = func(ts *TraceSpan) {
		kinds[ts.Kind] = true
		nodes[ts.Node] = true
		for _, ch := range ts.Children {
			walk(ch)
		}
	}
	if tr.Root != nil {
		walk(tr.Root)
	}
	return kinds, nodes
}

// findCrossNodeTrace returns the first complete trace that spans at least two
// nodes and covers the whole publish path: ingress, a routing hop (resolve or
// route-forward), the CQ match and the subscriber delivery.
func findCrossNodeTrace(trees []*TraceTree) *TraceTree {
	for _, tr := range trees {
		if !tr.Complete {
			continue
		}
		kinds, nodes := kindsOf(tr)
		if kinds[overlay.HopIngress] && kinds[overlay.HopCQMatch] && kinds[overlay.HopDeliver] &&
			(kinds[overlay.HopResolve] || kinds[overlay.HopRouteForward]) && len(nodes) >= 2 {
			return tr
		}
	}
	return nil
}

// TestClashtopEndToEnd boots a live 3-node loopback-TCP overlay with a hub on
// every node, drives traced publishes through a fresh client (cold routing
// cache, so probes hop), and checks the full clashtop pipeline: the collector
// scrapes every hub, the invariant probes pass, the fleet aggregate carries
// merged stage latencies, and at least one sampled publish reassembles into a
// complete cross-node span tree covering ingress, a routing hop, the CQ match
// and the subscriber delivery with per-hop timings.
func TestClashtopEndToEnd(t *testing.T) {
	cfg := overlay.Config{
		KeyBits:           16,
		Space:             chord.DefaultSpace(),
		BootstrapDepth:    2,
		Model:             load.DefaultModel(200),
		LoadCheckInterval: time.Second,
		ReplicationFactor: 2,
	}
	var nodes []*overlay.Node
	var srvs []*httptest.Server
	for i := 0; i < 3; i++ {
		tr, err := overlay.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenTCP: %v", err)
		}
		node, err := overlay.NewNode(tr, cfg)
		if err != nil {
			t.Fatalf("NewNode %d: %v", i, err)
		}
		nodes = append(nodes, node)
		srvs = append(srvs, httptest.NewServer(hub.New(node).Handler()))
	}
	t.Cleanup(func() {
		for _, s := range srvs {
			s.Close()
		}
		for _, n := range nodes {
			_ = n.Close()
		}
	})
	if err := nodes[0].BootstrapRoots(); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	now := time.Now()
	tick := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for _, n := range nodes {
				n.Tick()
				_ = n.FixAllFingers()
			}
		}
	}
	check := func() {
		now = now.Add(cfg.LoadCheckInterval)
		for _, n := range nodes {
			n.LoadCheck(now)
		}
	}
	tick(8)
	check()
	check()

	ctr, err := overlay.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := overlay.NewClient(ctr, cfg.KeyBits, cfg.Space, nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	cli.SetTraceEvery(1)

	// One query per bootstrap region so every publish lands on a CQ match
	// and fans out a subscriber delivery.
	for i, rg := range []string{"00", "01", "10", "11"} {
		q := cq.Query{
			ID:         fmt.Sprintf("q-%d", i),
			Region:     bitkey.MustParseGroup(rg),
			Predicates: []cq.Predicate{{Attr: "speed", Op: cq.OpGt, Value: 50}},
		}
		if _, err := cli.Register(q); err != nil {
			t.Fatalf("Register %s: %v", q.ID, err)
		}
	}
	check() // replicate the registered state to successors

	// Bulk traffic through the warmed client: after its first probes it
	// resolves in one hop, so this feeds the stage histograms, counters and
	// single-node traces.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		key := bitkey.Key{Value: uint64(rng.Intn(1 << 16)), Bits: 16}
		if _, err := cli.Publish(key, map[string]float64{"speed": 80}, nil); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}

	c := &Collector{Hubs: []string{srvs[0].URL, srvs[1].URL, srvs[2].URL}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Cross-node traces come from clients with no depth estimate: a fresh
	// client's first publish starts the modified binary search in the middle
	// of the depth range, landing on a hash-placed server that answers
	// INCORRECT_DEPTH (the ingress hop) before the search forwards to the
	// real holder — usually a different node. Each attempt publishes one
	// fresh-client object per bootstrap region; the retry loop only guards
	// against the unlucky case where every search happened to start on the
	// holder itself.
	var best *TraceTree
	var rep *Report
	for attempt := 0; attempt < 10 && best == nil; attempt++ {
		for _, rg := range []string{"00", "01", "10", "11"} {
			ftr, err := overlay.ListenTCP("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			fcli, err := overlay.NewClient(ftr, cfg.KeyBits, cfg.Space, nodes[0].Addr())
			if err != nil {
				t.Fatal(err)
			}
			fcli.SetTraceEvery(1)
			g := bitkey.MustParseGroup(rg)
			vk, err := g.VirtualKey(cfg.KeyBits)
			if err != nil {
				t.Fatal(err)
			}
			key := bitkey.Key{Value: vk.Value | uint64(rng.Intn(1<<14)), Bits: 16}
			if _, err := fcli.Publish(key, map[string]float64{"speed": 80}, nil); err != nil {
				t.Fatalf("fresh-client Publish: %v", err)
			}
			_ = fcli.Close()
		}
		rep = BuildReport(ctx, c, 64)
		best = findCrossNodeTrace(rep.Traces)
	}

	if rep.Fleet.Reachable != 3 {
		t.Fatalf("reachable = %d, want 3 (nodes: %+v)", rep.Fleet.Reachable, rep.Nodes)
	}
	if len(rep.Unscraped) != 0 {
		t.Errorf("unscraped ring members: %v", rep.Unscraped)
	}
	if rep.Fleet.VersionSkew {
		t.Errorf("one binary reported version skew: %+v", rep.Fleet.Builds)
	}
	for _, name := range []string{"coverage", "successors"} {
		if p := probeByName(t, rep.Probes, name); !p.OK {
			t.Errorf("probe %s failed: %s %v", name, p.Detail, p.Violations)
		}
	}
	if rep.Fleet.Objects["ok"]+rep.Fleet.Objects["corrected"] == 0 {
		t.Errorf("fleet saw no accepted objects: %+v", rep.Fleet.Objects)
	}
	if _, ok := rep.Fleet.Stages["route"]; !ok {
		t.Errorf("merged stages missing route: %+v", rep.Fleet.Stages)
	}
	if rep.Fleet.Spans == 0 {
		t.Fatal("no spans scraped from any node")
	}

	if best == nil {
		for _, tr := range rep.Traces {
			k, n := kindsOf(tr)
			t.Logf("trace %d complete=%v spans=%d kinds=%v nodes=%v", tr.TraceID, tr.Complete, tr.Spans, k, n)
		}
		t.Fatalf("no complete cross-node trace with ingress+route+cq-match+deliver among %d traces (%d complete)",
			len(rep.Traces), rep.TracesComplete)
	}
	if len(best.CriticalPath) < 3 {
		t.Errorf("critical path too short: %+v", best.CriticalPath)
	}
	// Per-hop timings: a real TCP delivery round trip cannot be free.
	if best.CriticalPathMicros <= 0 {
		t.Errorf("critical path carries no time: %+v", best.CriticalPath)
	}

	// Cross-check the per-trace fetch path (/traces/spans?traceId=) against
	// the pooled-ring assembly.
	direct := AssembleTrace(best.TraceID, c.SpansFor(ctx, best.TraceID))
	if !direct.Complete || direct.Spans != best.Spans {
		t.Errorf("SpansFor assembly disagrees: direct %d spans complete=%v, pooled %d",
			direct.Spans, direct.Complete, best.Spans)
	}
}
