package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"clash/internal/bitkey"
)

// ErrSplitExhausted is returned when a split keeps mapping the right child
// back to the splitting server and the retry budget is exhausted.
var ErrSplitExhausted = errors.New("clash: split exhausted retries without finding a peer")

// MapFunc resolves the server responsible for a virtual key through the
// underlying DHT (the paper's Map(f(k'))).
type MapFunc func(virtualKey bitkey.Key) (ServerID, error)

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxSplitRetries bounds how many times a split re-extends the right
// child when the DHT keeps mapping it back to the splitting server
// (default 16).
func WithMaxSplitRetries(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxSplitRetries = n
		}
	}
}

// WithReportMaxAge sets how old a right-child load report may be before it is
// considered stale and blocks consolidation (default 15 minutes, three
// 5-minute load-check periods).
func WithReportMaxAge(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.reportMaxAge = d
		}
	}
}

// Counters are cumulative protocol statistics for one server.
type Counters struct {
	Splits         int
	Merges         int
	GroupsAccepted int
	GroupsReleased int
	// GroupsRecovered counts groups promoted from a crashed peer's replica
	// (RestoreGroup), as opposed to groups accepted in a normal transfer.
	GroupsRecovered int
	ObjectsOK       int
	ObjectsCorrect  int
	ObjectsWrong    int
}

// Server is the per-node CLASH protocol state machine. It owns the Server
// Work Table and implements the split, consolidation and ACCEPT_OBJECT logic.
// It never talks to the network itself: drivers resolve DHT mappings through
// the MapFunc they pass to ExecuteSplit and deliver the messages described by
// the returned results.
//
// Server is safe for concurrent use.
type Server struct {
	mu              sync.Mutex
	id              ServerID
	table           *Table
	counters        Counters
	maxSplitRetries int
	reportMaxAge    time.Duration
}

// NewServer creates a CLASH server for an N-bit identifier key space.
func NewServer(id ServerID, keyBits int, opts ...ServerOption) (*Server, error) {
	if id == NoServer {
		return nil, fmt.Errorf("clash: server id must not be empty")
	}
	table, err := NewTable(keyBits)
	if err != nil {
		return nil, err
	}
	s := &Server{
		id:              id,
		table:           table,
		maxSplitRetries: 16,
		reportMaxAge:    15 * time.Minute,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// ID returns the server's identity.
func (s *Server) ID() ServerID { return s.id }

// KeyBits returns the identifier key length N.
func (s *Server) KeyBits() int { return s.table.KeyBits() }

// Counters returns a snapshot of the protocol counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Bootstrap installs a root key group on this server (an administrative
// anchor; consolidation never collapses past it). It is how the initial
// partition of the key space is assigned at system start.
func (s *Server) Bootstrap(g bitkey.Group) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g.Depth() > s.table.KeyBits() {
		return fmt.Errorf("%w: depth %d > %d", ErrDepthRange, g.Depth(), s.table.KeyBits())
	}
	if _, ok := s.table.get(g); ok {
		return fmt.Errorf("%w: %v", ErrAlreadyManaged, g)
	}
	s.table.put(&Entry{Group: g, Parent: NoServer, IsRoot: true, Active: true})
	return nil
}

// Entries returns the Server Work Table rows sorted by depth then prefix
// (the layout of the paper's Figure 2).
func (s *Server) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Entries()
}

// ActiveGroups returns the key groups this server currently manages (the
// leaves of its part of the logical tree).
func (s *Server) ActiveGroups() []bitkey.Group {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.ActiveGroups()
}

// ManagesKey reports whether some active group on this server contains k,
// and returns that group.
func (s *Server) ManagesKey(k bitkey.Key) (bitkey.Group, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.activeEntryFor(k)
	if !ok {
		return bitkey.Group{}, false
	}
	return e.Group, true
}

// Validate checks the table invariants (active groups are prefix-free).
func (s *Server) Validate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.validateActivePrefixFree()
}

// HandleAcceptObject processes an ACCEPT_OBJECT request carrying an
// identifier key and the client's estimated depth, implementing the paper's
// three cases:
//
//	(a) right depth            → OK
//	(b) wrong depth, right server → OK with corrected depth
//	(c) wrong server           → INCORRECT_DEPTH with the longest prefix match
func (s *Server) HandleAcceptObject(k bitkey.Key, estimatedDepth int) (AcceptObjectResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acceptObjectLocked(k, estimatedDepth)
}

// HandleAcceptObjectBatch processes a vector of ACCEPT_OBJECT requests under
// a single table-lock acquisition (the server side of the batched publish
// path). results[i] and errs[i] describe keys[i]; a per-item validation
// failure fills errs[i] and leaves results[i] zero without affecting the
// other items.
func (s *Server) HandleAcceptObjectBatch(keys []bitkey.Key, depths []int) (results []AcceptObjectResult, errs []error) {
	if len(depths) != len(keys) {
		panic("clash: batch keys/depths length mismatch")
	}
	results = make([]AcceptObjectResult, len(keys))
	errs = make([]error, len(keys))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, k := range keys {
		results[i], errs[i] = s.acceptObjectLocked(k, depths[i])
	}
	return results, errs
}

// acceptObjectLocked is the ACCEPT_OBJECT state machine; s.mu must be held.
func (s *Server) acceptObjectLocked(k bitkey.Key, estimatedDepth int) (AcceptObjectResult, error) {
	if k.Bits != s.table.KeyBits() {
		return AcceptObjectResult{}, fmt.Errorf("%w: key %d bits, want %d", ErrBadKey, k.Bits, s.table.KeyBits())
	}
	if estimatedDepth < 0 || estimatedDepth > k.Bits {
		return AcceptObjectResult{}, fmt.Errorf("%w: %d", ErrDepthRange, estimatedDepth)
	}
	entry, ok := s.table.activeEntryFor(k)
	if !ok {
		s.counters.ObjectsWrong++
		return AcceptObjectResult{
			Status: StatusIncorrectDepth,
			DMin:   s.table.longestPrefixMatch(k),
		}, nil
	}
	if entry.Depth() == estimatedDepth {
		s.counters.ObjectsOK++
		return AcceptObjectResult{Status: StatusOK, Group: entry.Group, CorrectDepth: entry.Depth()}, nil
	}
	s.counters.ObjectsCorrect++
	return AcceptObjectResult{Status: StatusOKCorrected, Group: entry.Group, CorrectDepth: entry.Depth()}, nil
}

// SetGroupLoad records the measured load fraction attributable to an active
// group for the current measurement interval. The driver (the overlay's load
// check, or the planned simulator) calls it before making split/merge
// decisions.
func (s *Server) SetGroupLoad(g bitkey.Group, loadFraction float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.get(g)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	if !e.Active {
		return fmt.Errorf("%w: %v", ErrNotActive, g)
	}
	e.localLoad = loadFraction
	return nil
}

// GroupLoads returns the last recorded load fraction for every active group.
func (s *Server) GroupLoads() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64)
	s.table.forEach(func(e *Entry) bool {
		if e.Active {
			out[e.Group.String()] = e.localLoad
		}
		return true
	})
	return out
}

// TotalLoad returns the sum of the recorded loads of all active groups — the
// server's overall load fraction.
func (s *Server) TotalLoad() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	s.table.forEach(func(e *Entry) bool {
		if e.Active {
			sum += e.localLoad
		}
		return true
	})
	return sum
}

// HottestActiveGroup returns the active group with the highest recorded load.
func (s *Server) HottestActiveGroup() (bitkey.Group, float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var (
		best     *Entry
		bestLoad float64
	)
	s.table.forEach(func(e *Entry) bool {
		if !e.Active {
			return true
		}
		if best == nil || e.localLoad > bestLoad ||
			(e.localLoad == bestLoad && e.Group.Prefix.Compare(best.Group.Prefix) < 0) {
			best = e
			bestLoad = e.localLoad
		}
		return true
	})
	if best == nil {
		return bitkey.Group{}, 0, false
	}
	return best.Group, bestLoad, true
}

// ExecuteSplit splits an overloaded active key group (paper §5). The left
// child keeps mapping to this server; the right child is transferred to the
// server the DHT maps its virtual key to. If the DHT maps the right child
// back to this server, the right child is split again (another randomised
// attempt), up to the retry budget.
//
// The returned SplitResult lists the transfer the driver must deliver as an
// ACCEPT_KEYGROUP message. On ErrMaxDepth or ErrSplitExhausted the table may
// have been subdivided locally but no load left the server.
func (s *Server) ExecuteSplit(g bitkey.Group, mapFn MapFunc) (*SplitResult, error) {
	if mapFn == nil {
		return nil, fmt.Errorf("clash: nil MapFunc")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	entry, ok := s.table.get(g)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	if !entry.Active {
		return nil, fmt.Errorf("%w: %v", ErrNotActive, g)
	}

	result := &SplitResult{Split: g}
	cur := entry
	for attempt := 0; ; attempt++ {
		if cur.Depth() >= s.table.KeyBits() {
			result.Kept = cur.Group
			return result, fmt.Errorf("%w: group %v", ErrMaxDepth, cur.Group)
		}
		if attempt >= s.maxSplitRetries {
			result.Kept = cur.Group
			return result, fmt.Errorf("%w: group %v after %d attempts", ErrSplitExhausted, g, attempt)
		}
		left, right, err := cur.Group.Split()
		if err != nil {
			return nil, err
		}
		vkey, err := right.VirtualKey(s.table.KeyBits())
		if err != nil {
			return nil, err
		}
		target, err := mapFn(vkey)
		if err != nil {
			return nil, fmt.Errorf("map right child %v: %w", right, err)
		}

		half := cur.localLoad / 2
		// The current group stops being a leaf and records the split linkage.
		cur.Active = false
		cur.RightChild = target
		cur.RightChildGroup = right
		cur.localLoad = 0

		// The left child stays on this server.
		leftEntry := &Entry{
			Group:        left,
			Parent:       s.id,
			ParentIsSelf: true,
			Active:       true,
			localLoad:    half,
		}
		s.table.put(leftEntry)
		s.counters.Splits++

		if target != s.id {
			result.Kept = left
			result.Transfers = append(result.Transfers, Transfer{Group: right, To: target, Parent: s.id})
			return result, nil
		}

		// The DHT mapped the right child back onto this server: keep it
		// locally as an active group and split it again.
		result.Retries++
		rightEntry := &Entry{
			Group:        right,
			Parent:       s.id,
			ParentIsSelf: true,
			Active:       true,
			localLoad:    half,
		}
		s.table.put(rightEntry)
		cur = rightEntry
	}
}

// HandleAcceptKeyGroup processes an ACCEPT_KEYGROUP message carrying no epoch
// information (epoch 0: apply unconditionally). See HandleAcceptKeyGroupEpoch.
func (s *Server) HandleAcceptKeyGroup(g bitkey.Group, parent ServerID) error {
	return s.HandleAcceptKeyGroupEpoch(g, parent, 0)
}

// HandleAcceptKeyGroupEpoch processes an ACCEPT_KEYGROUP message: the server
// takes over responsibility for a key group shed by parent. Per the paper a
// node must always accept (it can always shed its own load afterwards).
// Accepting a group the server already manages actively is idempotent on
// (group, epoch): a re-delivery with the same or a newer epoch refreshes the
// parent linkage, while a delayed duplicate with an older epoch is dropped
// without touching the entry. Accepting a group whose range is already
// covered by other active entries (an active ancestor, or active descendants)
// returns ErrCovered instead of installing an overlap — the caller should
// keep the message's query state locally and discard the group.
func (s *Server) HandleAcceptKeyGroupEpoch(g bitkey.Group, parent ServerID, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g.Depth() > s.table.KeyBits() {
		return fmt.Errorf("%w: depth %d", ErrDepthRange, g.Depth())
	}
	if e, ok := s.table.get(g); ok {
		if e.Active {
			if epoch != 0 && e.Epoch != 0 && epoch < e.Epoch {
				// A delayed duplicate of an older transfer: the entry has
				// moved on, don't regress its linkage.
				return nil
			}
			// Idempotent re-delivery.
			e.Parent = parent
			e.ParentIsSelf = parent == s.id
			if epoch > e.Epoch {
				e.Epoch = epoch
			}
			return nil
		}
		if s.table.coveredBy(g) {
			return fmt.Errorf("%w: %v", ErrCovered, g)
		}
		return fmt.Errorf("%w: %v (already split here)", ErrAlreadyManaged, g)
	}
	if s.table.coveredBy(g) {
		return fmt.Errorf("%w: %v", ErrCovered, g)
	}
	s.table.put(&Entry{
		Group:        g,
		Parent:       parent,
		ParentIsSelf: parent == s.id,
		Active:       true,
		Epoch:        epoch,
	})
	s.counters.GroupsAccepted++
	return nil
}

// GroupSnapshot is the replicable protocol state of one active key-group
// entry: everything a peer needs to resurrect the group if this server
// crashes. The accompanying continuous-query state is extracted separately by
// the driver (the overlay bundles cq.Engine queries with each snapshot).
type GroupSnapshot struct {
	Group  bitkey.Group
	Parent ServerID
	IsRoot bool
	Epoch  uint64
}

// SnapshotGroup captures the replicable state of one active entry.
func (s *Server) SnapshotGroup(g bitkey.Group) (GroupSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.get(g)
	if !ok || !e.Active {
		return GroupSnapshot{}, false
	}
	return snapshotLocked(e), true
}

// SnapshotActive captures the replicable state of every active entry, in
// prefix order (the trie's deterministic visit order).
func (s *Server) SnapshotActive() []GroupSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []GroupSnapshot
	s.table.forEach(func(e *Entry) bool {
		if e.Active {
			out = append(out, snapshotLocked(e))
		}
		return true
	})
	return out
}

func snapshotLocked(e *Entry) GroupSnapshot {
	return GroupSnapshot{Group: e.Group, Parent: e.Parent, IsRoot: e.IsRoot, Epoch: e.Epoch}
}

// RestoreGroup resurrects a key group from a replica snapshot after its
// holder crashed: the group becomes active on this server under a fresh
// ownership epoch. The bool reports whether a new entry was installed.
// Restoring a group this server already manages actively is a no-op (someone
// got there first: false, nil); a snapshot whose range is already covered by
// other active entries returns ErrCovered (install only the query state); a
// snapshot conflicting with an inactive entry returns ErrAlreadyManaged.
func (s *Server) RestoreGroup(snap GroupSnapshot) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := snap.Group
	if g.Depth() > s.table.KeyBits() {
		return false, fmt.Errorf("%w: depth %d", ErrDepthRange, g.Depth())
	}
	if e, ok := s.table.get(g); ok {
		if e.Active {
			return false, nil
		}
		if s.table.coveredBy(g) {
			return false, fmt.Errorf("%w: %v", ErrCovered, g)
		}
		return false, fmt.Errorf("%w: %v (already split here)", ErrAlreadyManaged, g)
	}
	if s.table.coveredBy(g) {
		return false, fmt.Errorf("%w: %v", ErrCovered, g)
	}
	s.table.put(&Entry{
		Group:        g,
		Parent:       snap.Parent,
		ParentIsSelf: snap.Parent == s.id,
		IsRoot:       snap.IsRoot,
		Active:       true,
		Epoch:        snap.Epoch + 1,
	})
	s.counters.GroupsRecovered++
	return true, nil
}

// HandleChildMoved records that the right child of one of this server's
// inactive entries is now held by a different server (the overlay re-homes
// groups when DHT ownership changes). Stale child-load reports from the old
// holder are invalidated so consolidation waits for the new holder's first
// report.
func (s *Server) HandleChildMoved(child bitkey.Group, newHolder ServerID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parentGroup, ok := child.Parent()
	if !ok {
		return fmt.Errorf("%w: root group %v cannot move", ErrUnknownGroup, child)
	}
	e, ok := s.table.get(parentGroup)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, parentGroup)
	}
	if e.Active || !e.RightChildGroup.Equal(child) {
		return fmt.Errorf("%w: %v is not a transferred right child here", ErrUnknownGroup, child)
	}
	if e.RightChild != newHolder {
		e.RightChild = newHolder
		e.hasChildLoad = false
	}
	return nil
}

// LoadReports produces the periodic load reports this server owes the parents
// of its active key groups (paper §4: leaves inform their parents of their
// current workload so parents can consolidate). Reports to itself are
// omitted — the local left-child load is read directly at merge time.
func (s *Server) LoadReports() []LoadReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []LoadReport
	// The trie visit is already in prefix order, matching the sort the
	// callers expect.
	s.table.forEach(func(e *Entry) bool {
		if !e.Active || e.Parent == NoServer || e.ParentIsSelf || e.Parent == s.id {
			return true
		}
		out = append(out, LoadReport{From: s.id, To: e.Parent, Group: e.Group, Load: e.localLoad})
		return true
	})
	return out
}

// HandleLoadReport records a right-child load report on the inactive parent
// entry that transferred the group.
func (s *Server) HandleLoadReport(rep LoadReport, now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parentGroup, ok := rep.Group.Parent()
	if !ok {
		return fmt.Errorf("%w: report for root group %v", ErrUnknownGroup, rep.Group)
	}
	e, ok := s.table.get(parentGroup)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, parentGroup)
	}
	if e.Active || !e.RightChildGroup.Equal(rep.Group) || e.RightChild != rep.From {
		return fmt.Errorf("%w: stale report for %v from %s", ErrUnknownGroup, rep.Group, rep.From)
	}
	e.childLoad = rep.Load
	e.childLoadAt = now
	e.hasChildLoad = true
	return nil
}

// MergeProposal describes a consolidation opportunity: the parent group could
// reclaim its right child from the peer currently holding it.
type MergeProposal struct {
	Parent       bitkey.Group
	RightChild   bitkey.Group
	RightHolder  ServerID
	CombinedLoad float64
}

// PlanMerges returns the consolidation opportunities visible to this server:
// inactive entries whose local left child is an active leaf, whose right
// child has reported a fresh load, and whose combined load is below
// mergeThreshold (the underload threshold in the paper's experiments).
// Proposals are ordered coldest first.
func (s *Server) PlanMerges(mergeThreshold float64, now time.Time) []MergeProposal {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []MergeProposal
	s.table.forEach(func(e *Entry) bool {
		prop, ok := s.mergeCandidateLocked(e, mergeThreshold, now)
		if ok {
			out = append(out, prop)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].CombinedLoad != out[j].CombinedLoad {
			return out[i].CombinedLoad < out[j].CombinedLoad
		}
		return out[i].Parent.Prefix.Compare(out[j].Parent.Prefix) < 0
	})
	return out
}

// ProposeMerge builds the consolidation proposal for one specific parent
// entry regardless of load — the admin force-merge path. It fails when the
// pair is not structurally mergeable: the parent is still an active leaf, the
// right child was split further, the left leaf lives elsewhere, or a remote
// right holder has not reported recently enough for its identity to be
// trusted.
func (s *Server) ProposeMerge(parent bitkey.Group, now time.Time) (MergeProposal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.get(parent)
	if !ok {
		return MergeProposal{}, fmt.Errorf("%w: %v", ErrUnknownGroup, parent)
	}
	prop, ok := s.mergeCandidateLocked(e, math.MaxFloat64, now)
	if !ok {
		return MergeProposal{}, fmt.Errorf("%w: %v", ErrCannotMerge, parent)
	}
	return prop, nil
}

func (s *Server) mergeCandidateLocked(e *Entry, mergeThreshold float64, now time.Time) (MergeProposal, bool) {
	if e.Active || e.RightChild == NoServer {
		return MergeProposal{}, false
	}
	left, right, err := e.Group.Split()
	if err != nil || !right.Equal(e.RightChildGroup) {
		return MergeProposal{}, false
	}
	leftEntry, ok := s.table.get(left)
	if !ok || !leftEntry.Active {
		return MergeProposal{}, false
	}
	var childLoad float64
	if e.RightChild == s.id {
		rightEntry, ok := s.table.get(right)
		if !ok || !rightEntry.Active {
			return MergeProposal{}, false
		}
		childLoad = rightEntry.localLoad
	} else {
		if !e.hasChildLoad || now.Sub(e.childLoadAt) > s.reportMaxAge {
			return MergeProposal{}, false
		}
		childLoad = e.childLoad
	}
	combined := leftEntry.localLoad + childLoad
	if combined > mergeThreshold {
		return MergeProposal{}, false
	}
	return MergeProposal{
		Parent:       e.Group,
		RightChild:   right,
		RightHolder:  e.RightChild,
		CombinedLoad: combined,
	}, true
}

// ExecuteMerge consolidates a parent group after the right child has been
// released by its holder (HandleRelease on the peer, or locally when the
// right child lives on this same server). The parent becomes an active leaf
// again and the child entries are removed.
func (s *Server) ExecuteMerge(parent bitkey.Group, now time.Time) (*MergeResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.get(parent)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownGroup, parent)
	}
	prop, ok := s.mergeCandidateLocked(e, 1e18, now) // threshold already checked by PlanMerges
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrCannotMerge, parent)
	}
	left, right, err := parent.Split()
	if err != nil {
		return nil, err
	}
	leftEntry, _ := s.table.get(left)
	combined := leftEntry.localLoad
	s.table.remove(left)
	if e.RightChild == s.id {
		if rightEntry, ok := s.table.get(right); ok {
			combined += rightEntry.localLoad
			s.table.remove(right)
		}
	} else {
		combined += e.childLoad
	}
	e.Active = true
	e.RightChild = NoServer
	e.RightChildGroup = bitkey.Group{}
	e.hasChildLoad = false
	e.localLoad = combined
	s.counters.Merges++
	return &MergeResult{Merged: parent, ReclaimedFrom: prop.RightHolder, ReleasedGroup: right}, nil
}

// HandleRelease processes a RELEASE_KEYGROUP message from the parent server
// reclaiming a previously transferred group during consolidation. It fails if
// the group has been split further on this server (the parent's view was
// stale), in which case the driver must abort the merge.
func (s *Server) HandleRelease(g bitkey.Group) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.table.get(g)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	if !e.Active {
		return fmt.Errorf("%w: %v", ErrNotActive, g)
	}
	s.table.remove(g)
	s.counters.GroupsReleased++
	return nil
}
