// Package overlay is the live CLASH overlay: it wires the transport-agnostic
// protocol pieces (chord.Node, core.Server, cq.Engine, load.Meter) into
// networked nodes and clients exchanging real messages.
//
// The wire protocol is deliberately simple: every message is one
// length-prefixed binary frame carrying a short ASCII message type and a JSON
// payload. Each request frame is answered by exactly one reply frame whose
// type is either frameOK (payload = JSON reply) or frameErr (payload = error
// string). The same framing is used by the TCP transport and — byte for byte —
// by the in-memory transport, so deterministic tests exercise the exact
// encoding that production traffic uses.
package overlay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire message types. The clash.* types correspond one-to-one to the protocol
// messages in internal/core/messages.go; the chord.* types carry the chord.RPC
// surface; the reply pseudo-types close each exchange.
const (
	// TypeFindSuccessor asks a node to resolve the successor of a hash point.
	TypeFindSuccessor = "chord.find_successor"
	// TypePredecessor asks a node for its current predecessor.
	TypePredecessor = "chord.predecessor"
	// TypeNotify tells a node about a possible predecessor.
	TypeNotify = "chord.notify"
	// TypePing checks liveness.
	TypePing = "chord.ping"

	// TypeAcceptObject carries a data packet or query registration
	// (core.MsgAcceptObject).
	TypeAcceptObject = "clash.accept_object"
	// TypeAcceptKeyGroup transfers a key group and its query state
	// (core.MsgAcceptKeyGroup).
	TypeAcceptKeyGroup = "clash.accept_keygroup"
	// TypeLoadReport is the periodic leaf→parent load report
	// (core.MsgLoadReport).
	TypeLoadReport = "clash.load_report"
	// TypeReleaseKeyGroup reclaims a key group during consolidation
	// (core.MsgReleaseKeyGroup).
	TypeReleaseKeyGroup = "clash.release_keygroup"
	// TypeMatch pushes a continuous-query match to the subscriber that
	// registered the query.
	TypeMatch = "clash.match"
	// TypeChildMoved tells the parent of a transferred right child that the
	// child group was re-homed to a different server (DHT ownership change),
	// so load reports from the new holder are accepted and consolidation
	// keeps working.
	TypeChildMoved = "clash.child_moved"
	// TypeStatus returns a node's JSON status snapshot.
	TypeStatus = "clash.status"

	// frameOK and frameErr are the two reply frame types.
	frameOK  = "+ok"
	frameErr = "-err"
)

// maxFrameSize bounds a single frame (type + payload) to keep a malformed or
// hostile peer from forcing an unbounded allocation.
const maxFrameSize = 16 << 20

// Framing errors.
var (
	// ErrFrameTooLarge is returned when a frame exceeds maxFrameSize.
	ErrFrameTooLarge = errors.New("overlay: frame exceeds size limit")
	// ErrBadFrame is returned when a frame is structurally invalid.
	ErrBadFrame = errors.New("overlay: malformed frame")
)

// writeFrame writes one frame: a 4-byte big-endian body length, a 1-byte
// message-type length, the message type, and the payload.
func writeFrame(w io.Writer, msgType string, payload []byte) error {
	if len(msgType) == 0 || len(msgType) > 255 {
		return fmt.Errorf("%w: message type length %d", ErrBadFrame, len(msgType))
	}
	body := 1 + len(msgType) + len(payload)
	if body > maxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	buf := make([]byte, 4+body)
	binary.BigEndian.PutUint32(buf[:4], uint32(body))
	buf[4] = byte(len(msgType))
	copy(buf[5:], msgType)
	copy(buf[5+len(msgType):], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame written by writeFrame.
func readFrame(r io.Reader) (msgType string, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", nil, err
	}
	body := binary.BigEndian.Uint32(hdr[:])
	if body > maxFrameSize {
		return "", nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	if body < 1 {
		return "", nil, fmt.Errorf("%w: empty body", ErrBadFrame)
	}
	buf := make([]byte, body)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", nil, err
	}
	tl := int(buf[0])
	if tl == 0 || 1+tl > len(buf) {
		return "", nil, fmt.Errorf("%w: type length %d in %d-byte body", ErrBadFrame, tl, len(buf))
	}
	return string(buf[1 : 1+tl]), buf[1+tl:], nil
}

// nodeRefMsg is the JSON form of a chord.NodeRef.
type nodeRefMsg struct {
	Addr string `json:"addr"`
	ID   uint64 `json:"id"`
}

// findSuccessorMsg is the payload of TypeFindSuccessor.
type findSuccessorMsg struct {
	ID uint64 `json:"id"`
}

// notifyMsg is the payload of TypeNotify.
type notifyMsg struct {
	Candidate nodeRefMsg `json:"candidate"`
}

// dataMsg is the application payload of a kind=data ACCEPT_OBJECT: the
// attribute map the continuous-query predicates evaluate plus the opaque
// record.
type dataMsg struct {
	Attrs   map[string]float64 `json:"attrs,omitempty"`
	Payload []byte             `json:"payload,omitempty"`
}

// queryState is the application payload of a kind=query ACCEPT_OBJECT and the
// per-query unit of state transfer: the serialised cq.Query plus the transport
// address match notifications are pushed to.
type queryState struct {
	Query      []byte `json:"query"`
	Subscriber string `json:"subscriber,omitempty"`
}

// childMovedMsg is the payload of TypeChildMoved.
type childMovedMsg struct {
	Group  string `json:"group"`
	Holder string `json:"holder"`
}

// matchMsg is the payload of TypeMatch.
type matchMsg struct {
	QueryID string             `json:"queryId"`
	Key     string             `json:"key"`
	Attrs   map[string]float64 `json:"attrs,omitempty"`
	Payload []byte             `json:"payload,omitempty"`
}
