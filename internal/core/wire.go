package core

import (
	"fmt"

	"clash/internal/wirecodec"
)

// Hand-rolled binary codec for the CLASH protocol messages: append-style
// MarshalWire growing a caller-owned buffer (zero allocations steady-state
// when the buffer comes from wirecodec.GetBuf) and UnmarshalWire decoding
// from a frame payload.
//
// Compatibility rules (documented in the README "Wire protocol" section):
// fields are encoded in declaration order; within one frame-header version,
// fields may only ever be appended, and decoders ignore unrecognised
// trailing bytes. Any incompatible change bumps the frame-header version
// byte instead.

// wireKeyBitsMax bounds the declared bit length of keys and groups on the
// wire (bitkey.MaxBits mirrored here to keep the codec self-contained).
const wireKeyBitsMax = 64

func appendKey(b []byte, value uint64, bits int) []byte {
	b = wirecodec.AppendInt(b, bits)
	return wirecodec.AppendUvarint(b, value)
}

func readKey(r *wirecodec.Reader) (value uint64, bits int) {
	bits = r.Int()
	value = r.Uvarint()
	return value, bits
}

// checkKey validates a decoded (value, bits) pair: the length must be in
// range and the value must fit in it, mirroring bitkey.New.
func checkKey(value uint64, bits int) error {
	if bits < 0 || bits > wireKeyBitsMax {
		return fmt.Errorf("%w: key bits %d", wirecodec.ErrInvalid, bits)
	}
	if bits < wireKeyBitsMax && value>>uint(bits) != 0 {
		return fmt.Errorf("%w: key value %#x overflows %d bits", wirecodec.ErrInvalid, value, bits)
	}
	return nil
}

// MarshalWire appends the binary encoding of m to b. TraceID (PR 7) and the
// span context ParentSpan+Hop (PR 9) are appended after the original fields
// (append-only evolution: an old reader ignores them). The zero values are
// encoded too — within a batch the objects travel as length-prefixed
// records, so a trailing field cannot simply be omitted without making the
// record length ambiguous for mixed-version readers.
func (m *AcceptObjectMsg) MarshalWire(b []byte) []byte {
	b = appendKey(b, m.KeyValue, m.KeyBits)
	b = wirecodec.AppendInt(b, m.Depth)
	b = wirecodec.AppendInt(b, int(m.Kind))
	b = wirecodec.AppendBytes(b, m.Payload)
	b = wirecodec.AppendUvarint(b, m.TraceID)
	b = wirecodec.AppendUvarint(b, m.ParentSpan)
	return wirecodec.AppendInt(b, m.Hop)
}

// UnmarshalWire decodes the binary encoding produced by MarshalWire.
// The Payload aliases data. A frame from an old writer carries no trace
// field; it decodes as TraceID 0 (untraced). A TraceID-era frame carries no
// span context; it decodes as ParentSpan 0, Hop 0.
func (m *AcceptObjectMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.KeyValue, m.KeyBits = readKey(r)
	m.Depth = r.Int()
	m.Kind = ObjectKind(r.Int())
	m.Payload = r.Bytes()
	m.TraceID = 0
	if r.Err() == nil && r.Len() > 0 {
		m.TraceID = r.Uvarint()
	}
	m.ParentSpan, m.Hop = 0, 0
	if r.Err() == nil && r.Len() > 0 {
		m.ParentSpan = r.Uvarint()
		m.Hop = r.Int()
	}
	if err := r.Err(); err != nil {
		return err
	}
	return checkKey(m.KeyValue, m.KeyBits)
}

// MarshalWire appends the binary encoding of m to b. SpanID is appended
// after the original fields (append-only evolution: an old reader ignores
// it).
func (m *AcceptObjectReplyMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, int(m.Status))
	b = appendKey(b, m.GroupValue, m.GroupBits)
	b = wirecodec.AppendInt(b, m.CorrectDepth)
	b = wirecodec.AppendInt(b, m.DMin)
	b = wirecodec.AppendInt(b, len(m.Matches))
	for _, id := range m.Matches {
		b = wirecodec.AppendString(b, id)
	}
	b = wirecodec.AppendString(b, m.Error)
	return wirecodec.AppendUvarint(b, m.SpanID)
}

// UnmarshalWire decodes the binary encoding produced by MarshalWire.
// A reply from a pre-span writer decodes as SpanID 0.
func (m *AcceptObjectReplyMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.Status = Status(r.Int())
	m.GroupValue, m.GroupBits = readKey(r)
	m.CorrectDepth = r.Int()
	m.DMin = r.Int()
	n := r.Int()
	m.Matches = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Matches = append(m.Matches, r.String())
	}
	m.Error = r.String()
	m.SpanID = 0
	if r.Err() == nil && r.Len() > 0 {
		m.SpanID = r.Uvarint()
	}
	if err := r.Err(); err != nil {
		return err
	}
	return checkKey(m.GroupValue, m.GroupBits)
}

// MarshalWire appends the binary encoding of m to b. Each object is encoded
// by the same per-object encoder as the single-object message (so the two
// layouts can never drift apart) and carried as a length-prefixed record,
// which keeps the append-only field-evolution rule valid for nested
// messages too: an old reader skips a new writer's appended fields because
// the record length tells it where the next object starts. The scratch
// record buffer comes from the codec pool, so steady-state encoding stays
// allocation-free.
func (m *AcceptBatchMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, len(m.Objects))
	scratch := wirecodec.GetBuf()
	for i := range m.Objects {
		scratch = m.Objects[i].MarshalWire(scratch[:0])
		b = wirecodec.AppendBytes(b, scratch)
	}
	wirecodec.PutBuf(scratch)
	return b
}

// UnmarshalWire decodes the binary encoding produced by MarshalWire.
// Object payloads alias data.
func (m *AcceptBatchMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	n := r.Int()
	if r.Err() == nil && n > r.Len() {
		// Each object costs at least one byte on the wire, so a count beyond
		// the remaining input is hostile; reject before allocating.
		return fmt.Errorf("%w: batch of %d in %d bytes", wirecodec.ErrInvalid, n, r.Len())
	}
	m.Objects = m.Objects[:0]
	for i := 0; i < n && r.Err() == nil; i++ {
		rec := r.Bytes()
		if r.Err() != nil {
			break
		}
		var o AcceptObjectMsg
		if err := o.UnmarshalWire(rec); err != nil {
			return err
		}
		m.Objects = append(m.Objects, o)
	}
	return r.Err()
}

// MarshalWire appends the binary encoding of m to b (length-prefixed
// per-reply records sharing the single-reply encoder, like the batch
// request).
func (m *AcceptBatchReplyMsg) MarshalWire(b []byte) []byte {
	b = wirecodec.AppendInt(b, len(m.Replies))
	scratch := wirecodec.GetBuf()
	for i := range m.Replies {
		scratch = m.Replies[i].MarshalWire(scratch[:0])
		b = wirecodec.AppendBytes(b, scratch)
	}
	wirecodec.PutBuf(scratch)
	return b
}

// UnmarshalWire decodes the binary encoding produced by MarshalWire.
func (m *AcceptBatchReplyMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	n := r.Int()
	if r.Err() == nil && n > r.Len() {
		return fmt.Errorf("%w: batch reply of %d in %d bytes", wirecodec.ErrInvalid, n, r.Len())
	}
	m.Replies = m.Replies[:0]
	for i := 0; i < n && r.Err() == nil; i++ {
		rec := r.Bytes()
		if r.Err() != nil {
			break
		}
		var rep AcceptObjectReplyMsg
		if err := rep.UnmarshalWire(rec); err != nil {
			return err
		}
		m.Replies = append(m.Replies, rep)
	}
	return r.Err()
}

// MarshalWire appends the binary encoding of m to b. Epoch is appended after
// the original fields (append-only evolution: an old reader ignores it).
func (m *AcceptKeyGroupMsg) MarshalWire(b []byte) []byte {
	b = appendKey(b, m.GroupValue, m.GroupBits)
	b = wirecodec.AppendString(b, m.Parent)
	b = wirecodec.AppendInt(b, len(m.Queries))
	for _, q := range m.Queries {
		b = wirecodec.AppendBytes(b, q)
	}
	return wirecodec.AppendUvarint(b, m.Epoch)
}

// UnmarshalWire decodes the binary encoding produced by MarshalWire.
// Query entries alias data. A frame from an old writer carries no epoch;
// it decodes as 0 (no epoch information).
func (m *AcceptKeyGroupMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.GroupValue, m.GroupBits = readKey(r)
	m.Parent = r.String()
	n := r.Int()
	if r.Err() == nil && n > r.Len() {
		return fmt.Errorf("%w: %d queries in %d bytes", wirecodec.ErrInvalid, n, r.Len())
	}
	m.Queries = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Queries = append(m.Queries, r.Bytes())
	}
	m.Epoch = 0
	if r.Err() == nil && r.Len() > 0 {
		m.Epoch = r.Uvarint()
	}
	if err := r.Err(); err != nil {
		return err
	}
	return checkKey(m.GroupValue, m.GroupBits)
}

// MarshalWire appends the binary encoding of m to b.
func (m *LoadReportMsg) MarshalWire(b []byte) []byte {
	b = appendKey(b, m.GroupValue, m.GroupBits)
	b = wirecodec.AppendFloat64(b, m.Load)
	return wirecodec.AppendString(b, m.From)
}

// UnmarshalWire decodes the binary encoding produced by MarshalWire.
func (m *LoadReportMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.GroupValue, m.GroupBits = readKey(r)
	m.Load = r.Float64()
	m.From = r.String()
	if err := r.Err(); err != nil {
		return err
	}
	return checkKey(m.GroupValue, m.GroupBits)
}

// MarshalWire appends the binary encoding of m to b.
func (m *ReleaseKeyGroupMsg) MarshalWire(b []byte) []byte {
	b = appendKey(b, m.GroupValue, m.GroupBits)
	return wirecodec.AppendString(b, m.Parent)
}

// UnmarshalWire decodes the binary encoding produced by MarshalWire.
func (m *ReleaseKeyGroupMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.GroupValue, m.GroupBits = readKey(r)
	m.Parent = r.String()
	if err := r.Err(); err != nil {
		return err
	}
	return checkKey(m.GroupValue, m.GroupBits)
}

// MarshalWire appends the binary encoding of m to b.
func (m *ReleaseKeyGroupReplyMsg) MarshalWire(b []byte) []byte {
	b = appendKey(b, m.GroupValue, m.GroupBits)
	b = wirecodec.AppendBool(b, m.OK)
	b = wirecodec.AppendBool(b, m.Gone)
	b = wirecodec.AppendString(b, m.Error)
	b = wirecodec.AppendInt(b, len(m.Queries))
	for _, q := range m.Queries {
		b = wirecodec.AppendBytes(b, q)
	}
	return b
}

// UnmarshalWire decodes the binary encoding produced by MarshalWire.
// Query entries alias data.
func (m *ReleaseKeyGroupReplyMsg) UnmarshalWire(data []byte) error {
	r := wirecodec.NewReader(data)
	m.GroupValue, m.GroupBits = readKey(r)
	m.OK = r.Bool()
	m.Gone = r.Bool()
	m.Error = r.String()
	n := r.Int()
	if r.Err() == nil && n > r.Len() {
		return fmt.Errorf("%w: %d queries in %d bytes", wirecodec.ErrInvalid, n, r.Len())
	}
	m.Queries = nil
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Queries = append(m.Queries, r.Bytes())
	}
	if err := r.Err(); err != nil {
		return err
	}
	return checkKey(m.GroupValue, m.GroupBits)
}
