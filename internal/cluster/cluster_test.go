package cluster

import (
	"math"
	"strings"
	"testing"

	"clash/internal/hub"
	"clash/internal/overlay"
)

func TestParseMetrics(t *testing.T) {
	text := `# HELP clash_objects_total ACCEPT_OBJECT requests by outcome.
# TYPE clash_objects_total counter
clash_objects_total{status="ok"} 12
clash_objects_total{status="corrected"} 3
clash_load_fraction 0.25
clash_build_info{version="dev",goversion="go1.24",gomaxprocs="8"} 1
weird_label{a="x\"y",b="line\nz",c="back\\slash"} 42
`
	m, err := parseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Sum("clash_objects_total"); got != 15 {
		t.Errorf("Sum(objects) = %v, want 15", got)
	}
	if v, ok := m.Value("clash_objects_total", map[string]string{"status": "ok"}); !ok || v != 12 {
		t.Errorf("Value(objects, ok) = %v, %v", v, ok)
	}
	if v, ok := m.Value("clash_load_fraction", nil); !ok || v != 0.25 {
		t.Errorf("Value(load_fraction) = %v, %v", v, ok)
	}
	if got := len(m.Select("clash_objects_total")); got != 2 {
		t.Errorf("Select(objects) = %d samples, want 2", got)
	}
	ws := m.Select("weird_label")
	if len(ws) != 1 {
		t.Fatalf("Select(weird_label) = %d samples", len(ws))
	}
	want := map[string]string{"a": `x"y`, "b": "line\nz", "c": `back\slash`}
	for k, v := range want {
		if ws[0].Labels[k] != v {
			t.Errorf("label %s = %q, want %q", k, ws[0].Labels[k], v)
		}
	}

	for _, bad := range []string{
		"no_value_here\n",
		"name{unterminated 3\n",
		`name{a=unquoted} 3` + "\n",
		"name{a=\"x\"} not_a_number\n",
	} {
		if _, err := parseMetrics(strings.NewReader(bad)); err == nil {
			t.Errorf("parseMetrics accepted %q", bad)
		}
	}
}

func TestMergedBucketQuantiles(t *testing.T) {
	text := `h_bucket{stage="route",le="0.001"} 10
h_bucket{stage="route",le="0.01"} 90
h_bucket{stage="route",le="+Inf"} 100
`
	m, err := parseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	mb := make(mergedBuckets)
	mb.addHistogram(m, "h", "stage")
	// Merging the same scrape again doubles every count; quantiles are
	// unchanged (they are rank-relative).
	mb.addHistogram(m, "h", "stage")

	qs := mb.quantiles("route", 0.50, 0.99)
	// p50: rank 100 of 200 falls in (0.001, 0.01], prev count 20, span 160:
	// 0.001 + 0.009*(80/160) = 0.0055.
	if math.Abs(qs[0]-0.0055) > 1e-9 {
		t.Errorf("p50 = %v, want 0.0055", qs[0])
	}
	// p99: rank 198 lands in the +Inf bucket, estimated at its lower bound.
	if qs[1] != 0.01 {
		t.Errorf("p99 = %v, want 0.01", qs[1])
	}
	if got := mb.quantiles("missing", 0.5); got[0] != 0 {
		t.Errorf("quantile of missing key = %v", got)
	}
}

// span is a test shorthand for building overlay spans.
func span(trace, id, parent uint64, kind, node string, hop int, micros int64) overlay.Span {
	return overlay.Span{
		TraceID: trace, SpanID: id, Parent: parent,
		Kind: kind, Node: node, Hop: hop, HandlerMicros: micros,
	}
}

func TestAssembleTrace(t *testing.T) {
	spans := []overlay.Span{
		span(7, 1, 0, overlay.HopIngress, "n1", 0, 10),
		span(7, 2, 1, overlay.HopResolve, "n2", 1, 5),
		span(7, 3, 2, overlay.HopRouteForward, "n3", 2, 20),
		span(7, 4, 3, overlay.HopCQMatch, "n3", 2, 7),
		span(7, 5, 4, overlay.HopDeliver, "n3", 3, 30),
		span(7, 2, 1, overlay.HopResolve, "n2", 1, 5), // duplicate scrape
		span(9, 6, 0, overlay.HopIngress, "n1", 0, 1), // other trace
	}
	tree := AssembleTrace(7, spans)
	if !tree.Complete {
		t.Fatalf("tree not complete: %+v", tree)
	}
	if tree.Spans != 5 {
		t.Errorf("Spans = %d, want 5 (dedup + trace filter)", tree.Spans)
	}
	if tree.Root == nil || tree.Root.Kind != overlay.HopIngress {
		t.Fatalf("root = %+v", tree.Root)
	}
	// The chain is linear, so the critical path is the whole path.
	if len(tree.CriticalPath) != 5 {
		t.Fatalf("critical path %d hops, want 5: %+v", len(tree.CriticalPath), tree.CriticalPath)
	}
	if tree.CriticalPathMicros != 10+5+20+7+30 {
		t.Errorf("critical path micros = %d, want 72", tree.CriticalPathMicros)
	}
	last := tree.CriticalPath[len(tree.CriticalPath)-1]
	if last.Kind != overlay.HopDeliver || last.CumMicros != tree.CriticalPathMicros {
		t.Errorf("critical path tail = %+v", last)
	}

	// Branching: the path must follow the heavier child.
	branchy := []overlay.Span{
		span(8, 1, 0, overlay.HopIngress, "n1", 0, 10),
		span(8, 2, 1, overlay.HopCQMatch, "n1", 0, 1),
		span(8, 3, 1, overlay.HopReplicaPush, "n2", 1, 50),
	}
	bt := AssembleTrace(8, branchy)
	if !bt.Complete || bt.CriticalPathMicros != 60 {
		t.Fatalf("branchy critical path = %d (complete=%v), want 60", bt.CriticalPathMicros, bt.Complete)
	}

	// An orphan (missing parent) breaks completeness but still reports.
	orphaned := []overlay.Span{
		span(5, 1, 0, overlay.HopIngress, "n1", 0, 1),
		span(5, 9, 42, overlay.HopDeliver, "n2", 3, 1),
	}
	ot := AssembleTrace(5, orphaned)
	if ot.Complete {
		t.Error("orphaned tree reported complete")
	}
	if len(ot.Orphans) != 1 || ot.Orphans[0].SpanID != 9 {
		t.Errorf("orphans = %+v", ot.Orphans)
	}

	// A tree whose only root is not an ingress hop is incomplete (the real
	// root was overwritten in some node's ring).
	rootless := []overlay.Span{span(4, 2, 0, overlay.HopDeliver, "n1", 3, 1)}
	if AssembleTrace(4, rootless).Complete {
		t.Error("non-ingress root reported complete")
	}
	if AssembleTrace(3, nil).Complete {
		t.Error("empty trace reported complete")
	}
}

func TestRecentTraces(t *testing.T) {
	views := []NodeView{
		{Spans: []overlay.Span{
			{TraceID: 1, SpanID: 1, Kind: overlay.HopIngress, TimeMs: 100},
			{TraceID: 2, SpanID: 2, Kind: overlay.HopIngress, TimeMs: 300},
		}},
		{Spans: []overlay.Span{
			{TraceID: 3, SpanID: 3, Kind: overlay.HopIngress, TimeMs: 200},
		}},
	}
	trees := RecentTraces(views, 2)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	if trees[0].TraceID != 2 || trees[1].TraceID != 3 {
		t.Errorf("recent order = %d, %d; want 2, 3", trees[0].TraceID, trees[1].TraceID)
	}
}

func topoNode(addr string, id uint64, succ string, groups ...string) overlay.TopoNode {
	n := overlay.TopoNode{Addr: addr, ID: id, Successors: []string{succ}}
	for _, g := range groups {
		n.Groups = append(n.Groups, overlay.TopoGroup{Group: g})
	}
	return n
}

func testTopo(nodes ...overlay.TopoNode) *hub.TopologyView {
	v := &hub.TopologyView{Complete: true, Nodes: nodes, Groups: map[string]hub.TopoPlacement{}}
	for _, n := range nodes {
		for _, g := range n.Groups {
			v.Groups[g.Group] = hub.TopoPlacement{Holder: n.Addr}
		}
	}
	return v
}

func probeByName(t *testing.T, probes []Probe, name string) Probe {
	t.Helper()
	for _, p := range probes {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("no probe %q in %+v", name, probes)
	return Probe{}
}

func TestProbeCoverage(t *testing.T) {
	ok := testTopo(
		topoNode("a", 1, "b", "00*", "01*"),
		topoNode("b", 2, "a", "1*"),
	)
	if p := probeCoverage(ok); !p.OK {
		t.Errorf("exact tiling flagged: %+v", p)
	}

	gap := testTopo(topoNode("a", 1, "a", "00*", "1*"))
	if p := probeCoverage(gap); p.OK || len(p.Violations) == 0 {
		t.Errorf("gap not flagged: %+v", p)
	}

	overlap := testTopo(topoNode("a", 1, "a", "0*", "00*", "1*"))
	if p := probeCoverage(overlap); p.OK {
		t.Errorf("overlap not flagged: %+v", p)
	}

	root := testTopo(topoNode("a", 1, "a", "*"))
	if p := probeCoverage(root); !p.OK {
		t.Errorf("single root group flagged: %+v", p)
	}

	incomplete := testTopo(topoNode("a", 1, "a", "00*"))
	incomplete.Complete = false
	if p := probeCoverage(incomplete); p.OK {
		t.Errorf("incomplete walk must not report OK: %+v", p)
	}
}

func TestProbeSuccessors(t *testing.T) {
	ok := testTopo(
		topoNode("a", 10, "b"),
		topoNode("b", 20, "c"),
		topoNode("c", 30, "a"),
	)
	if p := probeSuccessors(ok); !p.OK {
		t.Errorf("consistent ring flagged: %+v", p)
	}

	bad := testTopo(
		topoNode("a", 10, "c"), // skips b
		topoNode("b", 20, "c"),
		topoNode("c", 30, "a"),
	)
	p := probeSuccessors(bad)
	if p.OK || len(p.Violations) != 1 {
		t.Errorf("skipped successor not flagged: %+v", p)
	}
}

func TestProbeReplicas(t *testing.T) {
	ok := testTopo(
		topoNode("a", 1, "b", "0*"),
		topoNode("b", 2, "a", "1*"),
	)
	ok.Nodes[0].ReplicaOrigins = []string{"b"}
	ok.Nodes[1].ReplicaOrigins = []string{"a"}
	if p := probeReplicas(ok); !p.OK {
		t.Errorf("replicated ring flagged: %+v", p)
	}

	missing := testTopo(
		topoNode("a", 1, "b", "0*"),
		topoNode("b", 2, "a", "1*"),
	)
	missing.Nodes[0].ReplicaOrigins = []string{"b"}
	p := probeReplicas(missing)
	if p.OK || len(p.Violations) != 1 {
		t.Errorf("unreplicated holder not flagged: %+v", p)
	}

	single := testTopo(topoNode("a", 1, "a", "*"))
	if p := probeReplicas(single); !p.OK {
		t.Errorf("single-node ring must pass vacuously: %+v", p)
	}
}

func TestRunProbesNoTopology(t *testing.T) {
	probes := RunProbes(nil)
	if len(probes) != 3 {
		t.Fatalf("got %d probes, want 3", len(probes))
	}
	for _, p := range probes {
		if p.OK {
			t.Errorf("probe %s OK without topology", p.Name)
		}
	}
}

func TestAggregate(t *testing.T) {
	mkMetrics := func(text string) *Metrics {
		m, err := parseMetrics(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	v := &View{
		Nodes: []NodeView{
			{
				Hub: "h1", Addr: "a",
				Build:  BuildInfo{Version: "dev", GoVersion: "go1.24"},
				Status: &overlay.Status{ActiveGroups: []string{"0*"}, Queries: 2},
				Metrics: mkMetrics(`clash_objects_total{status="ok"} 10
clash_splits_total 3
clash_group_load_fraction{group="0*"} 0.6
clash_trace_stage_seconds_bucket{stage="route",le="0.001"} 5
clash_trace_stage_seconds_bucket{stage="route",le="+Inf"} 10
clash_trace_stage_seconds_count{stage="route"} 10
`),
				Spans: []overlay.Span{{TraceID: 1, SpanID: 1}},
			},
			{
				Hub: "h2", Addr: "b",
				Build:  BuildInfo{Version: "dev2", GoVersion: "go1.24"},
				Status: &overlay.Status{ActiveGroups: []string{"1*"}, Queries: 1},
				Metrics: mkMetrics(`clash_objects_total{status="ok"} 5
clash_objects_total{status="wrong"} 1
clash_splits_total 1
clash_group_load_fraction{group="1*"} 0.9
`),
			},
			{Hub: "h3", Err: "connection refused"},
		},
		Topo: testTopo(
			topoNode("a", 1, "b", "0*"),
			topoNode("b", 2, "a", "1*"),
		),
	}
	f := Aggregate(v)
	if f.Nodes != 3 || f.Reachable != 2 {
		t.Errorf("nodes/reachable = %d/%d, want 3/2", f.Nodes, f.Reachable)
	}
	if !f.VersionSkew || len(f.Builds) != 2 {
		t.Errorf("version skew not detected: %+v", f.Builds)
	}
	if f.Objects["ok"] != 15 || f.Objects["wrong"] != 1 {
		t.Errorf("objects = %+v", f.Objects)
	}
	if f.Counters["splits"] != 4 {
		t.Errorf("splits = %v, want 4", f.Counters["splits"])
	}
	if f.GroupsActive != 2 || f.Queries != 3 {
		t.Errorf("groups/queries = %d/%d, want 2/3", f.GroupsActive, f.Queries)
	}
	if f.Spans != 1 {
		t.Errorf("spans = %d, want 1", f.Spans)
	}
	route, ok := f.Stages["route"]
	if !ok || route.Count != 10 || route.P50 <= 0 {
		t.Errorf("route stage = %+v (ok=%v)", route, ok)
	}
	if len(f.Heat) != 2 || f.Heat[0].Group != "1*" || f.Heat[0].Holder != "b" {
		t.Errorf("heat = %+v", f.Heat)
	}
}
