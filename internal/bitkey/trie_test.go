package bitkey

import (
	"math/rand"
	"sort"
	"testing"
)

func TestTriePutGetDelete(t *testing.T) {
	tr := NewTrie[string]()
	if _, ok := tr.Get(MustParse("0110")); ok {
		t.Error("empty trie returned a value")
	}
	prefixes := []string{"0", "01", "0110", "0111", "1", "10110", "101"}
	for i, p := range prefixes {
		if tr.Put(MustParse(p), p) {
			t.Errorf("Put(%q) reported replace on first insert", p)
		}
		if tr.Len() != i+1 {
			t.Errorf("Len = %d after %d inserts", tr.Len(), i+1)
		}
	}
	for _, p := range prefixes {
		v, ok := tr.Get(MustParse(p))
		if !ok || v != p {
			t.Errorf("Get(%q) = %q,%v", p, v, ok)
		}
	}
	if _, ok := tr.Get(MustParse("011")); ok {
		t.Error("Get returned a value for an unstored interior prefix")
	}
	if !tr.Put(MustParse("01"), "replaced") {
		t.Error("Put did not report replacement")
	}
	if v, _ := tr.Get(MustParse("01")); v != "replaced" {
		t.Errorf("value after replace = %q", v)
	}
	if tr.Len() != len(prefixes) {
		t.Errorf("Len changed on replace: %d", tr.Len())
	}
	for i, p := range prefixes {
		v, ok := tr.Delete(MustParse(p))
		if !ok {
			t.Fatalf("Delete(%q) missed", p)
		}
		if p == "01" {
			if v != "replaced" {
				t.Errorf("Delete(%q) returned %q", p, v)
			}
		} else if v != p {
			t.Errorf("Delete(%q) returned %q", p, v)
		}
		if tr.Len() != len(prefixes)-i-1 {
			t.Errorf("Len = %d after deleting %d", tr.Len(), i+1)
		}
		if _, ok := tr.Get(MustParse(p)); ok {
			t.Errorf("Get(%q) found deleted prefix", p)
		}
	}
	if _, ok := tr.Delete(MustParse("0")); ok {
		t.Error("Delete on empty trie reported success")
	}
}

func TestTrieRootPrefix(t *testing.T) {
	tr := NewTrie[int]()
	tr.Put(Key{}, 7) // the depth-0 group "*"
	tr.Put(MustParse("11"), 9)
	if p, v, ok := tr.LongestMatch(MustParse("0000")); !ok || v != 7 || p.Bits != 0 {
		t.Errorf("LongestMatch under root-only cover = %v %d %v", p, v, ok)
	}
	if p, v, ok := tr.LongestMatch(MustParse("1100")); !ok || v != 9 || p.String() != "11" {
		t.Errorf("LongestMatch = %v %d %v, want 11", p, v, ok)
	}
	if v, ok := tr.Delete(Key{}); !ok || v != 7 {
		t.Errorf("Delete(root) = %d,%v", v, ok)
	}
	if _, _, ok := tr.LongestMatch(MustParse("0000")); ok {
		t.Error("deleted root prefix still matches")
	}
}

func TestTrieLongestMatchWhere(t *testing.T) {
	tr := NewTrie[bool]()
	tr.Put(MustParse("011"), false) // e.g. an inactive table entry
	tr.Put(MustParse("0110"), true) // the active leaf
	tr.Put(MustParse("01101"), false)
	k := MustParse("0110101")
	p, _, ok := tr.LongestMatch(k)
	if !ok || p.String() != "01101" {
		t.Errorf("LongestMatch = %v,%v, want 01101", p, ok)
	}
	p, v, ok := tr.LongestMatchWhere(k, func(active bool) bool { return active })
	if !ok || !v || p.String() != "0110" {
		t.Errorf("LongestMatchWhere = %v %v %v, want 0110", p, v, ok)
	}
	if _, _, ok := tr.LongestMatchWhere(MustParse("1110000"), func(active bool) bool { return active }); ok {
		t.Error("LongestMatchWhere matched an uncovered key")
	}
}

func TestTrieVisitSubtreeAndVisitOrder(t *testing.T) {
	tr := NewTrie[string]()
	for _, p := range []string{"1", "0110", "011", "01101", "0111", "00"} {
		tr.Put(MustParse(p), p)
	}
	var got []string
	tr.VisitSubtree(MustParse("011"), func(p Key, v string) bool {
		got = append(got, v)
		return true
	})
	want := []string{"011", "0110", "01101", "0111"}
	if len(got) != len(want) {
		t.Fatalf("VisitSubtree = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("VisitSubtree[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	got = got[:0]
	tr.Visit(func(p Key, v string) bool { got = append(got, v); return true })
	wantAll := []string{"00", "011", "0110", "01101", "0111", "1"}
	for i := range wantAll {
		if got[i] != wantAll[i] {
			t.Fatalf("Visit order = %v, want %v", got, wantAll)
		}
	}
	// Early stop.
	n := 0
	tr.Visit(func(Key, string) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("Visit early stop after %d", n)
	}
	// Subtree rooted at a prefix that ends inside a compressed edge.
	got = got[:0]
	tr.VisitSubtree(MustParse("0110"), func(p Key, v string) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != "0110" || got[1] != "01101" {
		t.Errorf("VisitSubtree(0110) = %v", got)
	}
	if gotN := countSubtree(tr, MustParse("10")); gotN != 0 {
		t.Errorf("VisitSubtree(10) visited %d entries, want 0", gotN)
	}
}

func countSubtree(tr *Trie[string], p Key) int {
	n := 0
	tr.VisitSubtree(p, func(Key, string) bool { n++; return true })
	return n
}

func TestTrieVisitMatches(t *testing.T) {
	tr := NewTrie[string]()
	for _, p := range []string{"", "0", "011", "0110", "0111", "01101"} {
		k, _ := Parse(p)
		tr.Put(k, "v"+p)
	}
	var got []string
	tr.VisitMatches(MustParse("0110110"), func(p Key, v string) bool {
		got = append(got, v)
		return true
	})
	want := []string{"v", "v0", "v011", "v0110", "v01101"}
	if len(got) != len(want) {
		t.Fatalf("VisitMatches = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("VisitMatches[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// brute is the reference implementation the property tests compare against.
type brute struct{ keys []Key }

func (b *brute) put(k Key) {
	for _, e := range b.keys {
		if e.Equal(k) {
			return
		}
	}
	b.keys = append(b.keys, k)
}

func (b *brute) del(k Key) {
	for i, e := range b.keys {
		if e.Equal(k) {
			b.keys = append(b.keys[:i], b.keys[i+1:]...)
			return
		}
	}
}

func (b *brute) longestMatch(k Key) (Key, bool) {
	best, ok := Key{}, false
	for _, e := range b.keys {
		if k.HasPrefix(e) && (!ok || e.Bits > best.Bits) {
			best, ok = e, true
		}
	}
	return best, ok
}

func (b *brute) maxCommon(k Key) int {
	best := 0
	for _, e := range b.keys {
		if l := LongestCommonPrefix(k, e); l > best {
			best = l
		}
	}
	return best
}

func (b *brute) subtree(p Key) []Key {
	var out []Key
	for _, e := range b.keys {
		if e.HasPrefix(p) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func randomKey(rng *rand.Rand, maxBits int) Key {
	bits := rng.Intn(maxBits + 1)
	if bits == 0 {
		return Key{}
	}
	return Key{Value: rng.Uint64() & ((1 << uint(bits)) - 1), Bits: bits}
}

// TestTriePropertyRandom cross-checks every trie operation against the brute
// force over randomized insert/delete workloads, including random prefix-free
// sets (the shape of CLASH's active groups).
func TestTriePropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 30; round++ {
		tr := NewTrie[uint64]()
		ref := &brute{}
		maxBits := 4 + rng.Intn(14) // small spaces provoke collisions and nesting
		prefixFree := round%3 == 0
		for op := 0; op < 300; op++ {
			k := randomKey(rng, maxBits)
			switch {
			case rng.Intn(4) == 0:
				tr.Delete(k)
				ref.del(k)
			default:
				if prefixFree {
					// Only insert keys that keep the set prefix-free.
					conflict := false
					for _, e := range ref.keys {
						if k.HasPrefix(e) || e.HasPrefix(k) {
							conflict = true
							break
						}
					}
					if conflict {
						continue
					}
				}
				tr.Put(k, k.Value)
				ref.put(k)
			}
		}
		if tr.Len() != len(ref.keys) {
			t.Fatalf("round %d: Len = %d, brute = %d", round, tr.Len(), len(ref.keys))
		}
		for probe := 0; probe < 200; probe++ {
			k := randomKey(rng, maxBits)
			wantP, wantOK := ref.longestMatch(k)
			gotP, gotV, gotOK := tr.LongestMatch(k)
			if gotOK != wantOK || (gotOK && !gotP.Equal(wantP)) {
				t.Fatalf("round %d: LongestMatch(%v) = %v,%v; brute %v,%v", round, k, gotP, gotOK, wantP, wantOK)
			}
			if gotOK && gotV != wantP.Value {
				t.Fatalf("round %d: LongestMatch(%v) value %d, want %d", round, k, gotV, wantP.Value)
			}
			if got, want := tr.MaxCommonPrefix(k), ref.maxCommon(k); got != want {
				t.Fatalf("round %d: MaxCommonPrefix(%v) = %d, brute %d", round, k, got, want)
			}
			var sub []Key
			tr.VisitSubtree(k, func(p Key, _ uint64) bool { sub = append(sub, p); return true })
			wantSub := ref.subtree(k)
			if len(sub) != len(wantSub) {
				t.Fatalf("round %d: VisitSubtree(%v) found %d, brute %d", round, k, len(sub), len(wantSub))
			}
			for i := range sub {
				if !sub[i].Equal(wantSub[i]) {
					t.Fatalf("round %d: VisitSubtree(%v)[%d] = %v, want %v", round, k, i, sub[i], wantSub[i])
				}
			}
		}
		// Every stored key must round-trip through Get.
		for _, e := range ref.keys {
			if v, ok := tr.Get(e); !ok || v != e.Value {
				t.Fatalf("round %d: Get(%v) = %d,%v", round, e, v, ok)
			}
		}
	}
}
