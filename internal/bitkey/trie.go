package bitkey

import "math/bits"

// Trie is a path-compressed binary trie (a critbit/PATRICIA variant) that maps
// bit-string prefixes to values. It is the shared longest-prefix index behind
// the CLASH hot path: the Server Work Table, the client Router cache and the
// continuous-query region index all resolve a key to the set of stored
// prefixes covering it with a single O(depth) pointer walk instead of probing
// one map per candidate depth.
//
// Unlike a textbook critbit tree, interior positions can carry values: CLASH
// stores whole key groups, and a group's prefix may itself be an ancestor of a
// deeper group's prefix (active vs. inactive table entries). Every node
// therefore records the full prefix from the root, a value slot, and two
// children; non-root nodes without a value always have two children
// (path compression), so the structure holds at most 2·Len()-1 nodes.
//
// The lookup methods (LongestMatch, LongestMatchWhere, MaxCommonPrefix,
// VisitMatches) allocate nothing. Trie is not safe for concurrent use; callers
// provide synchronisation (see core.Router for a sharded-lock arrangement).
type Trie[V any] struct {
	root trieNode[V]
	size int
}

type trieNode[V any] struct {
	// prefix is the complete stored prefix from the root down to this node.
	// Storing the full key rather than the parent→node segment lets lookups
	// compare against the original search key with one XOR and makes every
	// visit callback O(1), at no extra memory cost (a Key is one word + int).
	prefix Key
	child  [2]*trieNode[V]
	val    V
	hasVal bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] { return &Trie[V]{} }

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

// commonBits returns the length of the longest common prefix of two keys.
func commonBits(a, b Key) int {
	n := a.Bits
	if b.Bits < n {
		n = b.Bits
	}
	// Align both values so the first n bits are comparable, then count the
	// shared high-order bits of the XOR. Shifts ≥ 64 are defined as 0 in Go,
	// covering the n == 0 edge.
	x := (a.Value >> uint(a.Bits-n)) ^ (b.Value >> uint(b.Bits-n))
	if x == 0 {
		return n
	}
	return n - bits.Len64(x)
}

// Put stores v under prefix p, replacing any existing value. It reports
// whether a previous value was replaced.
func (t *Trie[V]) Put(p Key, v V) bool {
	cur := &t.root
	for {
		// Invariant: cur.prefix is a prefix of p.
		if cur.prefix.Bits == p.Bits {
			replaced := cur.hasVal
			cur.val, cur.hasVal = v, true
			if !replaced {
				t.size++
			}
			return replaced
		}
		b := p.Bit(cur.prefix.Bits)
		ch := cur.child[b]
		if ch == nil {
			cur.child[b] = &trieNode[V]{prefix: p, val: v, hasVal: true}
			t.size++
			return false
		}
		l := commonBits(p, ch.prefix)
		if l == ch.prefix.Bits {
			cur = ch // ch.prefix is a prefix of p: descend
			continue
		}
		// p diverges inside ch's compressed edge: split the edge at l.
		mid := &trieNode[V]{prefix: Key{Value: p.Value >> uint(p.Bits-l), Bits: l}}
		mid.child[ch.prefix.Bit(l)] = ch
		cur.child[b] = mid
		if l == p.Bits {
			mid.val, mid.hasVal = v, true
		} else {
			mid.child[p.Bit(l)] = &trieNode[V]{prefix: p, val: v, hasVal: true}
		}
		t.size++
		return false
	}
}

// Get returns the value stored under exactly prefix p.
func (t *Trie[V]) Get(p Key) (V, bool) {
	cur := &t.root
	for {
		if cur.prefix.Bits == p.Bits {
			return cur.val, cur.hasVal
		}
		ch := cur.child[p.Bit(cur.prefix.Bits)]
		if ch == nil || ch.prefix.Bits > p.Bits || commonBits(p, ch.prefix) != ch.prefix.Bits {
			var zero V
			return zero, false
		}
		cur = ch
	}
}

// Delete removes the value stored under exactly prefix p and returns it.
func (t *Trie[V]) Delete(p Key) (V, bool) {
	var zero V
	var grand, parent *trieNode[V]
	cur := &t.root
	for cur.prefix.Bits != p.Bits {
		ch := cur.child[p.Bit(cur.prefix.Bits)]
		if ch == nil || ch.prefix.Bits > p.Bits || commonBits(p, ch.prefix) != ch.prefix.Bits {
			return zero, false
		}
		grand, parent, cur = parent, cur, ch
	}
	if !cur.hasVal {
		return zero, false
	}
	v := cur.val
	cur.val, cur.hasVal = zero, false
	t.size--
	t.compress(grand, parent, cur)
	return v, true
}

// compress restores the invariant that every non-root valueless node has two
// children, after cur lost its value. grand and parent are cur's ancestors
// (nil when cur is the root or a child of the root).
func (t *Trie[V]) compress(grand, parent, cur *trieNode[V]) {
	if parent == nil {
		return // root keeps its shape
	}
	n0, n1 := cur.child[0], cur.child[1]
	switch {
	case n0 != nil && n1 != nil:
		return
	case n0 != nil:
		*parentSlot(parent, cur) = n0
	case n1 != nil:
		*parentSlot(parent, cur) = n1
	default:
		*parentSlot(parent, cur) = nil
		// parent had two children and may now be a valueless pass-through.
		if grand != nil && !parent.hasVal {
			if only := soleChild(parent); only != nil {
				*parentSlot(grand, parent) = only
			}
		}
	}
}

func parentSlot[V any](parent, child *trieNode[V]) **trieNode[V] {
	return &parent.child[child.prefix.Bit(parent.prefix.Bits)]
}

func soleChild[V any](n *trieNode[V]) *trieNode[V] {
	if n.child[0] != nil && n.child[1] == nil {
		return n.child[0]
	}
	if n.child[1] != nil && n.child[0] == nil {
		return n.child[1]
	}
	return nil
}

// LongestMatch returns the deepest stored prefix of k and its value. It is the
// longest-prefix-match primitive of the routing hot path: one walk, zero
// allocations.
func (t *Trie[V]) LongestMatch(k Key) (Key, V, bool) {
	var best *trieNode[V]
	cur := &t.root
	for {
		if cur.hasVal {
			best = cur
		}
		if cur.prefix.Bits == k.Bits {
			break
		}
		ch := cur.child[k.Bit(cur.prefix.Bits)]
		if ch == nil || ch.prefix.Bits > k.Bits || commonBits(k, ch.prefix) != ch.prefix.Bits {
			break
		}
		cur = ch
	}
	if best == nil {
		var zero V
		return Key{}, zero, false
	}
	return best.prefix, best.val, true
}

// LongestMatchWhere returns the deepest stored prefix of k whose value
// satisfies pred. Passing a non-capturing func literal keeps the call
// allocation-free; the Server Work Table uses it to find the unique active
// entry covering a key while inactive ancestors share the same trie.
func (t *Trie[V]) LongestMatchWhere(k Key, pred func(V) bool) (Key, V, bool) {
	var best *trieNode[V]
	cur := &t.root
	for {
		if cur.hasVal && pred(cur.val) {
			best = cur
		}
		if cur.prefix.Bits == k.Bits {
			break
		}
		ch := cur.child[k.Bit(cur.prefix.Bits)]
		if ch == nil || ch.prefix.Bits > k.Bits || commonBits(k, ch.prefix) != ch.prefix.Bits {
			break
		}
		cur = ch
	}
	if best == nil {
		var zero V
		return Key{}, zero, false
	}
	return best.prefix, best.val, true
}

// MaxCommonPrefix returns the maximum, over all stored prefixes p, of the
// length of the longest common prefix of k and p (the paper's dmin in the
// INCORRECT_DEPTH reply). Zero allocations, O(depth).
func (t *Trie[V]) MaxCommonPrefix(k Key) int {
	if t.size == 0 {
		return 0
	}
	cur := &t.root
	for {
		// Invariant: cur.prefix is a prefix of k, and cur's subtree is
		// non-empty, so at least cur.prefix.Bits bits match some entry.
		if cur.prefix.Bits == k.Bits {
			return k.Bits
		}
		ch := cur.child[k.Bit(cur.prefix.Bits)]
		if ch == nil {
			// Any entry under the other child diverges exactly here.
			return cur.prefix.Bits
		}
		l := commonBits(k, ch.prefix)
		if l == ch.prefix.Bits {
			cur = ch
			continue
		}
		// k diverges (or ends) inside ch's edge; everything below ch shares
		// ch.prefix, so l is the best this subtree offers.
		return l
	}
}

// VisitMatches calls fn for every stored prefix of k, shallowest first, until
// fn returns false. The walk itself allocates nothing.
func (t *Trie[V]) VisitMatches(k Key, fn func(Key, V) bool) {
	cur := &t.root
	for {
		if cur.hasVal && !fn(cur.prefix, cur.val) {
			return
		}
		if cur.prefix.Bits == k.Bits {
			return
		}
		ch := cur.child[k.Bit(cur.prefix.Bits)]
		if ch == nil || ch.prefix.Bits > k.Bits || commonBits(k, ch.prefix) != ch.prefix.Bits {
			return
		}
		cur = ch
	}
}

// VisitSubtree calls fn for every stored prefix that has p as a prefix, in
// sorted order (Key.Compare: a prefix sorts before its extensions), until fn
// returns false.
func (t *Trie[V]) VisitSubtree(p Key, fn func(Key, V) bool) {
	cur := &t.root
	for cur.prefix.Bits < p.Bits {
		ch := cur.child[p.Bit(cur.prefix.Bits)]
		if ch == nil {
			return
		}
		l := commonBits(p, ch.prefix)
		if l < p.Bits && l < ch.prefix.Bits {
			return
		}
		cur = ch
	}
	cur.visit(fn)
}

// Visit calls fn for every stored prefix in sorted order until fn returns
// false.
func (t *Trie[V]) Visit(fn func(Key, V) bool) { t.root.visit(fn) }

func (n *trieNode[V]) visit(fn func(Key, V) bool) bool {
	if n.hasVal && !fn(n.prefix, n.val) {
		return false
	}
	if n.child[0] != nil && !n.child[0].visit(fn) {
		return false
	}
	if n.child[1] != nil && !n.child[1].visit(fn) {
		return false
	}
	return true
}
