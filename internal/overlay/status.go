package overlay

import (
	"sync/atomic"

	"clash/internal/core"
	"clash/internal/metrics"
)

// Status is a JSON-marshalable snapshot of one overlay node, served by
// clashd's HTTP status endpoint and by the TypeStatus wire request.
type Status struct {
	// Addr is the node's transport address / identity.
	Addr string `json:"addr"`
	// ChordID is the node's position on the identifier circle.
	ChordID uint64 `json:"chordId"`
	// Predecessor is the current predecessor address ("" when unknown).
	Predecessor string `json:"predecessor,omitempty"`
	// Successors is the successor list, nearest first.
	Successors []string `json:"successors"`
	// ActiveGroups lists the key groups this node currently manages.
	ActiveGroups []string `json:"activeGroups"`
	// TotalLoad is the node's load fraction at the last load check.
	TotalLoad float64 `json:"totalLoad"`
	// Queries is the number of continuous queries stored here.
	Queries int `json:"queries"`
	// PendingTransfers counts parked ACCEPT_KEYGROUP deliveries.
	PendingTransfers int `json:"pendingTransfers"`
	// TransferDrops counts parked transfers abandoned after exhausting their
	// retry budget.
	TransferDrops int64 `json:"transferDrops"`
	// OrphanQueries counts query states awaiting re-placement after their
	// group was dropped or turned out stale.
	OrphanQueries int `json:"orphanQueries"`
	// OrphanDrops counts orphaned queries dropped after exhausting their
	// placement budget.
	OrphanDrops int64 `json:"orphanDrops"`
	// ReplicaOrigins / ReplicaGroups describe the peer key-group replicas
	// this node holds for crash recovery.
	ReplicaOrigins int `json:"replicaOrigins"`
	ReplicaGroups  int `json:"replicaGroups"`
	// MatchDrops counts match notifications that could not be delivered.
	MatchDrops int64 `json:"matchDrops"`
	// Draining reports admin drain mode (the node is shedding its groups).
	Draining bool `json:"draining,omitempty"`
	// Counters are the cumulative protocol counters.
	Counters core.Counters `json:"counters"`
	// Transport are the node transport's frame/byte/connection counters
	// (including call timeouts, policy retries and shed requests).
	Transport TransportStats `json:"transport"`
	// Suspicion lists every peer currently carrying a failure streak in the
	// node's failure detector, with its suspicion score and latency EWMA.
	Suspicion map[string]SuspicionStat `json:"suspicion,omitempty"`
	// Series are the node's metrics time series (load, group counts,
	// counters per load-check period).
	Series []metrics.TimeSeries `json:"series"`
}

// Status captures the node's current state.
func (n *Node) Status() Status {
	succs := n.chord.Successors()
	succAddrs := make([]string, len(succs))
	for i, s := range succs {
		succAddrs[i] = s.Addr
	}
	groups := n.server.ActiveGroups()
	labels := make([]string, len(groups))
	for i, g := range groups {
		labels[i] = g.String()
	}
	n.mu.Lock()
	pending := len(n.pending)
	orphans := len(n.orphans)
	n.mu.Unlock()
	repOrigins, repGroups := n.replicaCounts()
	return Status{
		Addr:             n.Addr(),
		ChordID:          uint64(n.chord.Self().ID),
		Predecessor:      n.chord.PredecessorRef().Addr,
		Successors:       succAddrs,
		ActiveGroups:     labels,
		TotalLoad:        n.server.TotalLoad(),
		Queries:          n.engine.Len(),
		PendingTransfers: pending,
		TransferDrops:    atomic.LoadInt64(&n.transferDrops),
		OrphanQueries:    orphans,
		OrphanDrops:      atomic.LoadInt64(&n.orphanDrops),
		ReplicaOrigins:   repOrigins,
		ReplicaGroups:    repGroups,
		MatchDrops:       atomic.LoadInt64(&n.matchDrops),
		Draining:         n.draining.Load(),
		Counters:         n.server.Counters(),
		Transport:        n.tr.Stats(),
		Suspicion:        n.susp.snapshot(),
		Series:           n.series.Snapshot(),
	}
}
