package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clash/internal/bitkey"
)

// ErrSplitExhausted is returned when a split keeps mapping the right child
// back to the splitting server and the retry budget is exhausted.
var ErrSplitExhausted = errors.New("clash: split exhausted retries without finding a peer")

// MapFunc resolves the server responsible for a virtual key through the
// underlying DHT (the paper's Map(f(k'))).
type MapFunc func(virtualKey bitkey.Key) (ServerID, error)

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxSplitRetries bounds how many times a split re-extends the right
// child when the DHT keeps mapping it back to the splitting server
// (default 16).
func WithMaxSplitRetries(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxSplitRetries = n
		}
	}
}

// WithReportMaxAge sets how old a right-child load report may be before it is
// considered stale and blocks consolidation (default 15 minutes, three
// 5-minute load-check periods).
func WithReportMaxAge(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.reportMaxAge = d
		}
	}
}

// Counters are cumulative protocol statistics for one server.
type Counters struct {
	Splits         int
	Merges         int
	GroupsAccepted int
	GroupsReleased int
	// GroupsRecovered counts groups promoted from a crashed peer's replica
	// (RestoreGroup), as opposed to groups accepted in a normal transfer.
	GroupsRecovered int
	ObjectsOK       int
	ObjectsCorrect  int
	ObjectsWrong    int
}

// serverShardBits selects how many leading prefix bits pick a work-table lock
// shard (2^4 = 16 shards), matching the Router's striping. Entries at least
// this deep are guarded by the shard named by their leading bits; shallower
// entries share the shallow shard's lock.
const serverShardBits = 4

// serverShard is one lock stripe of the work table plus the per-stripe object
// counters the lock-free publish path updates. The trailing pad keeps two
// stripes' hot atomics off one cache line so concurrent publishes to disjoint
// prefixes do not false-share.
type serverShard struct {
	mu sync.Mutex
	// lockWaits counts acquisitions that found the lock contended (TryLock
	// failed), surfaced per shard through ShardStats.
	lockWaits atomic.Uint64
	// ACCEPT_OBJECT outcome counters for keys whose leading bits name this
	// shard.
	objectsOK        atomic.Uint64
	objectsCorrected atomic.Uint64
	objectsWrong     atomic.Uint64
	_                [24]byte
}

// lock acquires the stripe, counting contended acquisitions.
func (sh *serverShard) lock() {
	if sh.mu.TryLock() {
		return
	}
	sh.lockWaits.Add(1)
	sh.mu.Lock()
}

// snapEntry is one work-table row inside an immutable read snapshot: just
// enough for the ACCEPT_OBJECT state machine (group identity, leaf flag).
type snapEntry struct {
	group  bitkey.Group
	active bool
}

// snapIsActive is the predicate the publish path passes to the snapshot trie;
// as a non-capturing function it costs no allocation per lookup.
func snapIsActive(e snapEntry) bool { return e.active }

// readSnapshot is an immutable copy of the routing-relevant work-table state,
// published through an atomic pointer (RCU style): the publish hot path loads
// it with one atomic read and walks it with zero locks and zero allocations,
// while mutations build a fresh snapshot under the shard locks and swap it in.
type readSnapshot struct {
	entries *bitkey.Trie[snapEntry]
}

// Server is the per-node CLASH protocol state machine. It owns the Server
// Work Table and implements the split, consolidation and ACCEPT_OBJECT logic.
// It never talks to the network itself: drivers resolve DHT mappings through
// the MapFunc they pass to ExecuteSplit and deliver the messages described by
// the returned results.
//
// Server is safe for concurrent use, and the hot path scales across cores:
//
//   - ACCEPT_OBJECT routing (HandleAcceptObject, HandleAcceptObjectBatch,
//     ManagesKey) reads an immutable snapshot of the table through an atomic
//     pointer — zero locks, zero allocations — and records outcome counters on
//     per-shard padded atomics, so publishes to disjoint prefixes never touch
//     the same cache line.
//   - Per-group bookkeeping (load samples, child reports, snapshots of one
//     entry) takes only the lock shard named by the group's leading
//     serverShardBits bits, extending the Router's 16-way striping idiom.
//   - Structural mutations (bootstrap, split, transfer, merge, release,
//     restore) take every shard lock in a fixed order (shallow first, then
//     shards 0..15), apply the change, rebuild the read snapshot and swap it —
//     which is also what keeps Validate()'s prefix-free invariant global: no
//     structural change is visible to any reader until the whole-table
//     rebuild is published.
type Server struct {
	id              ServerID
	maxSplitRetries int
	reportMaxAge    time.Duration

	// table is the master Server Work Table. Trie structure (put/remove) only
	// changes with every shard lock held; entry fields are guarded by the
	// shard lock their prefix maps to, so a trie walk is safe under any one
	// shard lock.
	table     *Table
	shardBits int
	shards    []*serverShard
	// shallow guards entries shallower than shardBits, which span several
	// shards' key ranges.
	shallow *serverShard

	snap  atomic.Pointer[readSnapshot]
	swaps atomic.Uint64

	// Control-plane counters (mutated under the all-shard lock, read lock-free
	// by Counters).
	splits, merges                atomic.Uint64
	accepted, released, recovered atomic.Uint64
}

// NewServer creates a CLASH server for an N-bit identifier key space.
func NewServer(id ServerID, keyBits int, opts ...ServerOption) (*Server, error) {
	if id == NoServer {
		return nil, fmt.Errorf("clash: server id must not be empty")
	}
	table, err := NewTable(keyBits)
	if err != nil {
		return nil, err
	}
	shardBits := serverShardBits
	if keyBits < shardBits {
		shardBits = 0
	}
	s := &Server{
		id:              id,
		table:           table,
		shardBits:       shardBits,
		shards:          make([]*serverShard, 1<<uint(shardBits)),
		shallow:         &serverShard{},
		maxSplitRetries: 16,
		reportMaxAge:    15 * time.Minute,
	}
	for i := range s.shards {
		s.shards[i] = &serverShard{}
	}
	for _, opt := range opts {
		opt(s)
	}
	s.snap.Store(&readSnapshot{entries: bitkey.NewTrie[snapEntry]()})
	return s, nil
}

// shardFor returns the lock stripe guarding the entry with the given prefix.
func (s *Server) shardFor(p bitkey.Key) *serverShard {
	if s.shardBits > 0 && p.Bits >= s.shardBits {
		return s.shards[p.Value>>uint(p.Bits-s.shardBits)]
	}
	return s.shallow
}

// counterShard returns the stripe whose object counters account for key k
// (keys always carry the full keyBits, so the deep stripe always applies when
// striping is on).
func (s *Server) counterShard(k bitkey.Key) *serverShard {
	if s.shardBits > 0 {
		return s.shards[k.Value>>uint(k.Bits-s.shardBits)]
	}
	return s.shallow
}

// lockAll acquires every shard lock in the fixed global order (shallow, then
// deep shards ascending). Single-shard operations never take a second lock,
// so the ordering cannot deadlock against them.
func (s *Server) lockAll() {
	s.shallow.lock()
	for _, sh := range s.shards {
		sh.lock()
	}
}

// unlockAll releases every shard lock.
func (s *Server) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	s.shallow.mu.Unlock()
}

// rebuildLocked rebuilds the immutable read snapshot from the master table
// and publishes it. Callers hold every shard lock. Structural operations call
// it (via defer, before unlocking) so a new snapshot is visible the moment
// the locks release; the publish path never observes a half-applied change.
func (s *Server) rebuildLocked() {
	entries := bitkey.NewTrie[snapEntry]()
	s.table.forEach(func(e *Entry) bool {
		entries.Put(e.Group.Prefix, snapEntry{group: e.Group, active: e.Active})
		return true
	})
	s.snap.Store(&readSnapshot{entries: entries})
	s.swaps.Add(1)
}

// ID returns the server's identity.
func (s *Server) ID() ServerID { return s.id }

// KeyBits returns the identifier key length N.
func (s *Server) KeyBits() int { return s.table.KeyBits() }

// Counters returns a snapshot of the protocol counters.
func (s *Server) Counters() Counters {
	c := Counters{
		Splits:          int(s.splits.Load()),
		Merges:          int(s.merges.Load()),
		GroupsAccepted:  int(s.accepted.Load()),
		GroupsReleased:  int(s.released.Load()),
		GroupsRecovered: int(s.recovered.Load()),
	}
	add := func(sh *serverShard) {
		c.ObjectsOK += int(sh.objectsOK.Load())
		c.ObjectsCorrect += int(sh.objectsCorrected.Load())
		c.ObjectsWrong += int(sh.objectsWrong.Load())
	}
	add(s.shallow)
	for _, sh := range s.shards {
		add(sh)
	}
	return c
}

// SnapshotSwaps returns how many read-snapshot rebuilds have been published
// (one per structural mutation batch).
func (s *Server) SnapshotSwaps() uint64 { return s.swaps.Load() }

// ShardStat is one lock stripe's occupancy and contention snapshot.
type ShardStat struct {
	// Shard is the stripe index; -1 is the shallow stripe shared by entries
	// shallower than the striping depth.
	Shard int
	// Entries and Active count the work-table rows guarded by this stripe.
	Entries int
	Active  int
	// LockWaits counts contended lock acquisitions on this stripe.
	LockWaits uint64
	// ObjectsOK / ObjectsCorrected / ObjectsWrong are the ACCEPT_OBJECT
	// outcomes recorded against keys in this stripe's range.
	ObjectsOK        uint64
	ObjectsCorrected uint64
	ObjectsWrong     uint64
}

// ShardStats returns per-stripe occupancy, contention and object counters,
// shallow stripe first. It takes the all-shard lock briefly to count entries
// consistently; the atomic counters are read as-is.
func (s *Server) ShardStats() []ShardStat {
	out := make([]ShardStat, 0, len(s.shards)+1)
	fill := func(idx int, sh *serverShard) ShardStat {
		return ShardStat{
			Shard:            idx,
			LockWaits:        sh.lockWaits.Load(),
			ObjectsOK:        sh.objectsOK.Load(),
			ObjectsCorrected: sh.objectsCorrected.Load(),
			ObjectsWrong:     sh.objectsWrong.Load(),
		}
	}
	s.lockAll()
	stats := make(map[*serverShard]*ShardStat, len(s.shards)+1)
	out = append(out, fill(-1, s.shallow))
	stats[s.shallow] = &out[0]
	for i, sh := range s.shards {
		out = append(out, fill(i, sh))
		stats[sh] = &out[len(out)-1]
	}
	s.table.forEach(func(e *Entry) bool {
		st := stats[s.shardFor(e.Group.Prefix)]
		st.Entries++
		if e.Active {
			st.Active++
		}
		return true
	})
	s.unlockAll()
	return out
}

// Bootstrap installs a root key group on this server (an administrative
// anchor; consolidation never collapses past it). It is how the initial
// partition of the key space is assigned at system start.
func (s *Server) Bootstrap(g bitkey.Group) error {
	s.lockAll()
	defer s.unlockAll()
	if g.Depth() > s.table.KeyBits() {
		return fmt.Errorf("%w: depth %d > %d", ErrDepthRange, g.Depth(), s.table.KeyBits())
	}
	if _, ok := s.table.get(g); ok {
		return fmt.Errorf("%w: %v", ErrAlreadyManaged, g)
	}
	s.table.put(&Entry{Group: g, Parent: NoServer, IsRoot: true, Active: true})
	s.rebuildLocked()
	return nil
}

// Entries returns the Server Work Table rows sorted by depth then prefix
// (the layout of the paper's Figure 2).
func (s *Server) Entries() []Entry {
	s.lockAll()
	defer s.unlockAll()
	return s.table.Entries()
}

// ActiveGroups returns the key groups this server currently manages (the
// leaves of its part of the logical tree).
func (s *Server) ActiveGroups() []bitkey.Group {
	s.lockAll()
	defer s.unlockAll()
	return s.table.ActiveGroups()
}

// ManagesKey reports whether some active group on this server contains k,
// and returns that group. It reads the published snapshot: zero locks, zero
// allocations.
func (s *Server) ManagesKey(k bitkey.Key) (bitkey.Group, bool) {
	snap := s.snap.Load()
	_, e, ok := snap.entries.LongestMatchWhere(k, snapIsActive)
	if !ok {
		return bitkey.Group{}, false
	}
	return e.group, true
}

// Validate checks the table invariants (active groups are prefix-free).
func (s *Server) Validate() error {
	s.lockAll()
	defer s.unlockAll()
	return s.table.validateActivePrefixFree()
}

// objDeltas accumulates per-stripe object-counter increments so a batch
// flushes one atomic add per touched counter instead of one per key.
type objDeltas struct {
	ok, corrected, wrong uint64
}

// flush adds the accumulated deltas to a stripe's atomic counters.
func (d *objDeltas) flush(sh *serverShard) {
	if d.ok != 0 {
		sh.objectsOK.Add(d.ok)
	}
	if d.corrected != 0 {
		sh.objectsCorrected.Add(d.corrected)
	}
	if d.wrong != 0 {
		sh.objectsWrong.Add(d.wrong)
	}
}

// HandleAcceptObject processes an ACCEPT_OBJECT request carrying an
// identifier key and the client's estimated depth, implementing the paper's
// three cases:
//
//	(a) right depth            → OK
//	(b) wrong depth, right server → OK with corrected depth
//	(c) wrong server           → INCORRECT_DEPTH with the longest prefix match
//
// The routing decision reads the published table snapshot — no lock is taken
// and nothing is allocated — so concurrent publishes scale across cores.
//
//clash:hotpath
func (s *Server) HandleAcceptObject(k bitkey.Key, estimatedDepth int) (AcceptObjectResult, error) {
	var d objDeltas
	res, err := s.acceptOnSnapshot(s.snap.Load(), k, estimatedDepth, &d)
	if err == nil {
		d.flush(s.counterShard(k))
	}
	return res, err
}

// HandleAcceptObjectBatch processes a vector of ACCEPT_OBJECT requests
// against one snapshot load (the server side of the batched publish path).
// Keys are grouped per counter stripe as they stream through, so the batch
// performs at most one atomic add per touched stripe counter rather than one
// per key, and no lock is held at any point. results[i] and errs[i] describe
// keys[i]; a per-item validation failure fills errs[i] and leaves results[i]
// zero without affecting the other items.
//
//clash:hotpath
func (s *Server) HandleAcceptObjectBatch(keys []bitkey.Key, depths []int) (results []AcceptObjectResult, errs []error) {
	if len(depths) != len(keys) {
		panic("clash: batch keys/depths length mismatch")
	}
	results = make([]AcceptObjectResult, len(keys))
	errs = make([]error, len(keys))
	snap := s.snap.Load()
	var deltas [1 << serverShardBits]objDeltas
	for i, k := range keys {
		d := &deltas[0]
		if s.shardBits > 0 && k.Bits >= s.shardBits {
			d = &deltas[k.Value>>uint(k.Bits-s.shardBits)]
		}
		results[i], errs[i] = s.acceptOnSnapshot(snap, k, depths[i], d)
	}
	if s.shardBits > 0 {
		for i := range deltas {
			deltas[i].flush(s.shards[i])
		}
	} else {
		deltas[0].flush(s.shallow)
	}
	return results, errs
}

// acceptOnSnapshot is the ACCEPT_OBJECT state machine evaluated against one
// immutable snapshot; outcome counts go to d.
func (s *Server) acceptOnSnapshot(snap *readSnapshot, k bitkey.Key, estimatedDepth int, d *objDeltas) (AcceptObjectResult, error) {
	if k.Bits != s.table.KeyBits() {
		return AcceptObjectResult{}, fmt.Errorf("%w: key %d bits, want %d", ErrBadKey, k.Bits, s.table.KeyBits())
	}
	if estimatedDepth < 0 || estimatedDepth > k.Bits {
		return AcceptObjectResult{}, fmt.Errorf("%w: %d", ErrDepthRange, estimatedDepth)
	}
	_, e, ok := snap.entries.LongestMatchWhere(k, snapIsActive)
	if !ok {
		d.wrong++
		return AcceptObjectResult{
			Status: StatusIncorrectDepth,
			DMin:   snap.entries.MaxCommonPrefix(k),
		}, nil
	}
	if e.group.Depth() == estimatedDepth {
		d.ok++
		return AcceptObjectResult{Status: StatusOK, Group: e.group, CorrectDepth: e.group.Depth()}, nil
	}
	d.corrected++
	return AcceptObjectResult{Status: StatusOKCorrected, Group: e.group, CorrectDepth: e.group.Depth()}, nil
}

// SetGroupLoad records the measured load fraction attributable to an active
// group for the current measurement interval. The driver (the overlay's load
// check, or the simulator) calls it before making split/merge decisions.
// Only the group's lock stripe is taken, so load samples for groups in
// different stripes record concurrently.
func (s *Server) SetGroupLoad(g bitkey.Group, loadFraction float64) error {
	sh := s.shardFor(g.Prefix)
	sh.lock()
	defer sh.mu.Unlock()
	e, ok := s.table.get(g)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	if !e.Active {
		return fmt.Errorf("%w: %v", ErrNotActive, g)
	}
	e.localLoad = loadFraction
	return nil
}

// GroupLoads returns the last recorded load fraction for every active group.
func (s *Server) GroupLoads() map[string]float64 {
	s.lockAll()
	defer s.unlockAll()
	out := make(map[string]float64)
	s.table.forEach(func(e *Entry) bool {
		if e.Active {
			out[e.Group.String()] = e.localLoad
		}
		return true
	})
	return out
}

// TotalLoad returns the sum of the recorded loads of all active groups — the
// server's overall load fraction.
func (s *Server) TotalLoad() float64 {
	s.lockAll()
	defer s.unlockAll()
	var sum float64
	s.table.forEach(func(e *Entry) bool {
		if e.Active {
			sum += e.localLoad
		}
		return true
	})
	return sum
}

// HottestActiveGroup returns the active group with the highest recorded load.
func (s *Server) HottestActiveGroup() (bitkey.Group, float64, bool) {
	s.lockAll()
	defer s.unlockAll()
	var (
		best     *Entry
		bestLoad float64
	)
	s.table.forEach(func(e *Entry) bool {
		if !e.Active {
			return true
		}
		if best == nil || e.localLoad > bestLoad ||
			(e.localLoad == bestLoad && e.Group.Prefix.Compare(best.Group.Prefix) < 0) {
			best = e
			bestLoad = e.localLoad
		}
		return true
	})
	if best == nil {
		return bitkey.Group{}, 0, false
	}
	return best.Group, bestLoad, true
}

// ExecuteSplit splits an overloaded active key group (paper §5). The left
// child keeps mapping to this server; the right child is transferred to the
// server the DHT maps its virtual key to. If the DHT maps the right child
// back to this server, the right child is split again (another randomised
// attempt), up to the retry budget.
//
// The returned SplitResult lists the transfer the driver must deliver as an
// ACCEPT_KEYGROUP message. On ErrMaxDepth or ErrSplitExhausted the table may
// have been subdivided locally but no load left the server.
func (s *Server) ExecuteSplit(g bitkey.Group, mapFn MapFunc) (*SplitResult, error) {
	if mapFn == nil {
		return nil, fmt.Errorf("clash: nil MapFunc")
	}
	s.lockAll()
	defer s.unlockAll()
	defer s.rebuildLocked()

	entry, ok := s.table.get(g)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	if !entry.Active {
		return nil, fmt.Errorf("%w: %v", ErrNotActive, g)
	}

	result := &SplitResult{Split: g}
	cur := entry
	for attempt := 0; ; attempt++ {
		if cur.Depth() >= s.table.KeyBits() {
			result.Kept = cur.Group
			return result, fmt.Errorf("%w: group %v", ErrMaxDepth, cur.Group)
		}
		if attempt >= s.maxSplitRetries {
			result.Kept = cur.Group
			return result, fmt.Errorf("%w: group %v after %d attempts", ErrSplitExhausted, g, attempt)
		}
		left, right, err := cur.Group.Split()
		if err != nil {
			return nil, err
		}
		vkey, err := right.VirtualKey(s.table.KeyBits())
		if err != nil {
			return nil, err
		}
		target, err := mapFn(vkey)
		if err != nil {
			return nil, fmt.Errorf("map right child %v: %w", right, err)
		}

		half := cur.localLoad / 2
		// The current group stops being a leaf and records the split linkage.
		cur.Active = false
		cur.RightChild = target
		cur.RightChildGroup = right
		cur.localLoad = 0

		// The left child stays on this server.
		leftEntry := &Entry{
			Group:        left,
			Parent:       s.id,
			ParentIsSelf: true,
			Active:       true,
			localLoad:    half,
		}
		s.table.put(leftEntry)
		s.splits.Add(1)

		if target != s.id {
			result.Kept = left
			result.Transfers = append(result.Transfers, Transfer{Group: right, To: target, Parent: s.id})
			return result, nil
		}

		// The DHT mapped the right child back onto this server: keep it
		// locally as an active group and split it again.
		result.Retries++
		rightEntry := &Entry{
			Group:        right,
			Parent:       s.id,
			ParentIsSelf: true,
			Active:       true,
			localLoad:    half,
		}
		s.table.put(rightEntry)
		cur = rightEntry
	}
}

// HandleAcceptKeyGroup processes an ACCEPT_KEYGROUP message carrying no epoch
// information (epoch 0: apply unconditionally). See HandleAcceptKeyGroupEpoch.
func (s *Server) HandleAcceptKeyGroup(g bitkey.Group, parent ServerID) error {
	return s.HandleAcceptKeyGroupEpoch(g, parent, 0)
}

// HandleAcceptKeyGroupEpoch processes an ACCEPT_KEYGROUP message: the server
// takes over responsibility for a key group shed by parent. Per the paper a
// node must always accept (it can always shed its own load afterwards).
// Accepting a group the server already manages actively is idempotent on
// (group, epoch): a re-delivery with the same or a newer epoch refreshes the
// parent linkage, while a delayed duplicate with an older epoch is dropped
// without touching the entry. Accepting a group whose range is already
// covered by other active entries (an active ancestor, or active descendants)
// returns ErrCovered instead of installing an overlap — the caller should
// keep the message's query state locally and discard the group.
func (s *Server) HandleAcceptKeyGroupEpoch(g bitkey.Group, parent ServerID, epoch uint64) error {
	s.lockAll()
	defer s.unlockAll()
	defer s.rebuildLocked()
	if g.Depth() > s.table.KeyBits() {
		return fmt.Errorf("%w: depth %d", ErrDepthRange, g.Depth())
	}
	if e, ok := s.table.get(g); ok {
		if e.Active {
			if epoch != 0 && e.Epoch != 0 && epoch < e.Epoch {
				// A delayed duplicate of an older transfer: the entry has
				// moved on, don't regress its linkage.
				return nil
			}
			// Idempotent re-delivery.
			e.Parent = parent
			e.ParentIsSelf = parent == s.id
			if epoch > e.Epoch {
				e.Epoch = epoch
			}
			return nil
		}
		if s.table.coveredBy(g) {
			return fmt.Errorf("%w: %v", ErrCovered, g)
		}
		return fmt.Errorf("%w: %v (already split here)", ErrAlreadyManaged, g)
	}
	if s.table.coveredBy(g) {
		return fmt.Errorf("%w: %v", ErrCovered, g)
	}
	s.table.put(&Entry{
		Group:        g,
		Parent:       parent,
		ParentIsSelf: parent == s.id,
		Active:       true,
		Epoch:        epoch,
	})
	s.accepted.Add(1)
	return nil
}

// GroupSnapshot is the replicable protocol state of one active key-group
// entry: everything a peer needs to resurrect the group if this server
// crashes. The accompanying continuous-query state is extracted separately by
// the driver (the overlay bundles cq.Engine queries with each snapshot).
type GroupSnapshot struct {
	Group  bitkey.Group
	Parent ServerID
	IsRoot bool
	Epoch  uint64
}

// SnapshotGroup captures the replicable state of one active entry. Only the
// entry's lock stripe is taken.
func (s *Server) SnapshotGroup(g bitkey.Group) (GroupSnapshot, bool) {
	sh := s.shardFor(g.Prefix)
	sh.lock()
	defer sh.mu.Unlock()
	e, ok := s.table.get(g)
	if !ok || !e.Active {
		return GroupSnapshot{}, false
	}
	return snapshotEntry(e), true
}

// SnapshotActive captures the replicable state of every active entry, in
// prefix order (the trie's deterministic visit order).
func (s *Server) SnapshotActive() []GroupSnapshot {
	s.lockAll()
	defer s.unlockAll()
	var out []GroupSnapshot
	s.table.forEach(func(e *Entry) bool {
		if e.Active {
			out = append(out, snapshotEntry(e))
		}
		return true
	})
	return out
}

func snapshotEntry(e *Entry) GroupSnapshot {
	return GroupSnapshot{Group: e.Group, Parent: e.Parent, IsRoot: e.IsRoot, Epoch: e.Epoch}
}

// RestoreGroup resurrects a key group from a replica snapshot after its
// holder crashed: the group becomes active on this server under a fresh
// ownership epoch. The bool reports whether a new entry was installed.
// Restoring a group this server already manages actively is a no-op (someone
// got there first: false, nil); a snapshot whose range is already covered by
// other active entries returns ErrCovered (install only the query state); a
// snapshot conflicting with an inactive entry returns ErrAlreadyManaged.
func (s *Server) RestoreGroup(snap GroupSnapshot) (bool, error) {
	s.lockAll()
	defer s.unlockAll()
	defer s.rebuildLocked()
	g := snap.Group
	if g.Depth() > s.table.KeyBits() {
		return false, fmt.Errorf("%w: depth %d", ErrDepthRange, g.Depth())
	}
	if e, ok := s.table.get(g); ok {
		if e.Active {
			return false, nil
		}
		if s.table.coveredBy(g) {
			return false, fmt.Errorf("%w: %v", ErrCovered, g)
		}
		return false, fmt.Errorf("%w: %v (already split here)", ErrAlreadyManaged, g)
	}
	if s.table.coveredBy(g) {
		return false, fmt.Errorf("%w: %v", ErrCovered, g)
	}
	s.table.put(&Entry{
		Group:        g,
		Parent:       snap.Parent,
		ParentIsSelf: snap.Parent == s.id,
		IsRoot:       snap.IsRoot,
		Active:       true,
		Epoch:        snap.Epoch + 1,
	})
	s.recovered.Add(1)
	return true, nil
}

// HandleChildMoved records that the right child of one of this server's
// inactive entries is now held by a different server (the overlay re-homes
// groups when DHT ownership changes). Stale child-load reports from the old
// holder are invalidated so consolidation waits for the new holder's first
// report. Only the parent entry's lock stripe is taken.
func (s *Server) HandleChildMoved(child bitkey.Group, newHolder ServerID) error {
	parentGroup, ok := child.Parent()
	if !ok {
		return fmt.Errorf("%w: root group %v cannot move", ErrUnknownGroup, child)
	}
	sh := s.shardFor(parentGroup.Prefix)
	sh.lock()
	defer sh.mu.Unlock()
	e, ok := s.table.get(parentGroup)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, parentGroup)
	}
	if e.Active || !e.RightChildGroup.Equal(child) {
		return fmt.Errorf("%w: %v is not a transferred right child here", ErrUnknownGroup, child)
	}
	if e.RightChild != newHolder {
		e.RightChild = newHolder
		e.hasChildLoad = false
	}
	return nil
}

// LoadReports produces the periodic load reports this server owes the parents
// of its active key groups (paper §4: leaves inform their parents of their
// current workload so parents can consolidate). Reports to itself are
// omitted — the local left-child load is read directly at merge time.
func (s *Server) LoadReports() []LoadReport {
	s.lockAll()
	defer s.unlockAll()
	var out []LoadReport
	// The trie visit is already in prefix order, matching the sort the
	// callers expect.
	s.table.forEach(func(e *Entry) bool {
		if !e.Active || e.Parent == NoServer || e.ParentIsSelf || e.Parent == s.id {
			return true
		}
		out = append(out, LoadReport{From: s.id, To: e.Parent, Group: e.Group, Load: e.localLoad})
		return true
	})
	return out
}

// HandleLoadReport records a right-child load report on the inactive parent
// entry that transferred the group. Only the parent entry's lock stripe is
// taken, so reports for groups in different stripes record concurrently.
func (s *Server) HandleLoadReport(rep LoadReport, now time.Time) error {
	parentGroup, ok := rep.Group.Parent()
	if !ok {
		return fmt.Errorf("%w: report for root group %v", ErrUnknownGroup, rep.Group)
	}
	sh := s.shardFor(parentGroup.Prefix)
	sh.lock()
	defer sh.mu.Unlock()
	e, ok := s.table.get(parentGroup)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, parentGroup)
	}
	if e.Active || !e.RightChildGroup.Equal(rep.Group) || e.RightChild != rep.From {
		return fmt.Errorf("%w: stale report for %v from %s", ErrUnknownGroup, rep.Group, rep.From)
	}
	e.childLoad = rep.Load
	e.childLoadAt = now
	e.hasChildLoad = true
	return nil
}

// MergeProposal describes a consolidation opportunity: the parent group could
// reclaim its right child from the peer currently holding it.
type MergeProposal struct {
	Parent       bitkey.Group
	RightChild   bitkey.Group
	RightHolder  ServerID
	CombinedLoad float64
}

// PlanMerges returns the consolidation opportunities visible to this server:
// inactive entries whose local left child is an active leaf, whose right
// child has reported a fresh load, and whose combined load is below
// mergeThreshold (the underload threshold in the paper's experiments).
// Proposals are ordered coldest first.
func (s *Server) PlanMerges(mergeThreshold float64, now time.Time) []MergeProposal {
	s.lockAll()
	defer s.unlockAll()
	var out []MergeProposal
	s.table.forEach(func(e *Entry) bool {
		prop, ok := s.mergeCandidateLocked(e, mergeThreshold, now)
		if ok {
			out = append(out, prop)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].CombinedLoad != out[j].CombinedLoad {
			return out[i].CombinedLoad < out[j].CombinedLoad
		}
		return out[i].Parent.Prefix.Compare(out[j].Parent.Prefix) < 0
	})
	return out
}

// ProposeMerge builds the consolidation proposal for one specific parent
// entry regardless of load — the admin force-merge path. It fails when the
// pair is not structurally mergeable: the parent is still an active leaf, the
// right child was split further, the left leaf lives elsewhere, or a remote
// right holder has not reported recently enough for its identity to be
// trusted.
func (s *Server) ProposeMerge(parent bitkey.Group, now time.Time) (MergeProposal, error) {
	s.lockAll()
	defer s.unlockAll()
	e, ok := s.table.get(parent)
	if !ok {
		return MergeProposal{}, fmt.Errorf("%w: %v", ErrUnknownGroup, parent)
	}
	prop, ok := s.mergeCandidateLocked(e, math.MaxFloat64, now)
	if !ok {
		return MergeProposal{}, fmt.Errorf("%w: %v", ErrCannotMerge, parent)
	}
	return prop, nil
}

// mergeCandidateLocked evaluates one entry as a consolidation candidate; the
// caller holds every shard lock (the check reads sibling entries across
// stripes).
func (s *Server) mergeCandidateLocked(e *Entry, mergeThreshold float64, now time.Time) (MergeProposal, bool) {
	if e.Active || e.RightChild == NoServer {
		return MergeProposal{}, false
	}
	left, right, err := e.Group.Split()
	if err != nil || !right.Equal(e.RightChildGroup) {
		return MergeProposal{}, false
	}
	leftEntry, ok := s.table.get(left)
	if !ok || !leftEntry.Active {
		return MergeProposal{}, false
	}
	var childLoad float64
	if e.RightChild == s.id {
		rightEntry, ok := s.table.get(right)
		if !ok || !rightEntry.Active {
			return MergeProposal{}, false
		}
		childLoad = rightEntry.localLoad
	} else {
		if !e.hasChildLoad || now.Sub(e.childLoadAt) > s.reportMaxAge {
			return MergeProposal{}, false
		}
		childLoad = e.childLoad
	}
	combined := leftEntry.localLoad + childLoad
	if combined > mergeThreshold {
		return MergeProposal{}, false
	}
	return MergeProposal{
		Parent:       e.Group,
		RightChild:   right,
		RightHolder:  e.RightChild,
		CombinedLoad: combined,
	}, true
}

// ExecuteMerge consolidates a parent group after the right child has been
// released by its holder (HandleRelease on the peer, or locally when the
// right child lives on this same server). The parent becomes an active leaf
// again and the child entries are removed.
func (s *Server) ExecuteMerge(parent bitkey.Group, now time.Time) (*MergeResult, error) {
	s.lockAll()
	defer s.unlockAll()
	defer s.rebuildLocked()
	e, ok := s.table.get(parent)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownGroup, parent)
	}
	prop, ok := s.mergeCandidateLocked(e, 1e18, now) // threshold already checked by PlanMerges
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrCannotMerge, parent)
	}
	left, right, err := parent.Split()
	if err != nil {
		return nil, err
	}
	leftEntry, _ := s.table.get(left)
	combined := leftEntry.localLoad
	s.table.remove(left)
	if e.RightChild == s.id {
		if rightEntry, ok := s.table.get(right); ok {
			combined += rightEntry.localLoad
			s.table.remove(right)
		}
	} else {
		combined += e.childLoad
	}
	e.Active = true
	e.RightChild = NoServer
	e.RightChildGroup = bitkey.Group{}
	e.hasChildLoad = false
	e.localLoad = combined
	s.merges.Add(1)
	return &MergeResult{Merged: parent, ReclaimedFrom: prop.RightHolder, ReleasedGroup: right}, nil
}

// HandleRelease processes a RELEASE_KEYGROUP message from the parent server
// reclaiming a previously transferred group during consolidation. It fails if
// the group has been split further on this server (the parent's view was
// stale), in which case the driver must abort the merge.
func (s *Server) HandleRelease(g bitkey.Group) error {
	s.lockAll()
	defer s.unlockAll()
	defer s.rebuildLocked()
	e, ok := s.table.get(g)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownGroup, g)
	}
	if !e.Active {
		return fmt.Errorf("%w: %v", ErrNotActive, g)
	}
	s.table.remove(g)
	s.released.Add(1)
	return nil
}
