// Package hub is the control plane of one overlay node: it implements
// overlay.Observer and exposes the node over HTTP — Prometheus metrics,
// the JSON status snapshot, a ring-walk topology view, sampled request
// traces, a server-sent event stream of protocol events, and admin verbs
// (drain, split, merge, rebalance).
//
// The hub is strictly read-through: metric values are collected from the
// node at scrape time (no background polling), events and traces arrive via
// the observer callbacks, and admin verbs call straight into the node's
// public internals API. clashd mounts Handler() on its -status address.
package hub

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"

	"clash/internal/bitkey"
	"clash/internal/metrics"
	"clash/internal/overlay"
)

// buildVersion is the module version baked into the binary ("(devel)" for
// plain go build / go test); it labels clash_build_info so clashtop can spot
// fleet version skew without a release pipeline stamping ldflags.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// maxTopoNodes caps the /topology ring walk.
const maxTopoNodes = 256

// Hub wires one overlay node to its HTTP control plane.
type Hub struct {
	node   *overlay.Node
	reg    *metrics.Registry
	bus    *Bus
	traces *Traces
	events metrics.CounterVec
}

// New builds a hub for node and installs it as the node's observer.
func New(node *overlay.Node) *Hub {
	reg := metrics.NewRegistry()
	h := &Hub{
		node:   node,
		reg:    reg,
		bus:    NewBus(),
		traces: NewTraces(tracesCapacity, reg),
	}
	h.events = reg.CounterVec("clash_events_total",
		"Protocol events observed, by type.", "type")
	h.registerCollectors()
	node.SetObserver(h)
	return h
}

// Registry returns the hub's metrics registry (for extra app-level series).
func (h *Hub) Registry() *metrics.Registry { return h.reg }

// Bus returns the hub's event bus.
func (h *Hub) Bus() *Bus { return h.bus }

// Traces returns the hub's trace store.
func (h *Hub) Traces() *Traces { return h.traces }

// OnEvent implements overlay.Observer: count and fan out.
func (h *Hub) OnEvent(ev overlay.Event) {
	h.events.With(ev.Type).Inc()
	h.bus.Publish(ev)
}

// OnTrace implements overlay.Observer.
func (h *Hub) OnTrace(rec overlay.TraceRecord) { h.traces.OnTrace(rec) }

// OnTraceStage implements overlay.Observer.
func (h *Hub) OnTraceStage(stage string, micros int64) {
	h.traces.OnTraceStage(stage, micros)
}

// OnSpan implements overlay.Observer.
func (h *Hub) OnSpan(sp overlay.Span) { h.traces.OnSpan(sp) }

// registerCollectors declares the node's metric families and installs the
// scrape-time collector that reads them off the node. Cumulative node
// counters surface as counters via Set (the node owns the monotonic value);
// tables with dynamic keys (per-group load, per-peer suspicion) reset and
// refill their gauge vectors each scrape so departed children disappear.
func (h *Hub) registerCollectors() {
	reg := h.reg
	info := reg.GaugeVec("clash_node_info",
		"Static node identity; the value is always 1.", "addr")
	splits := reg.Counter("clash_splits_total", "Key-group splits executed.")
	merges := reg.Counter("clash_merges_total", "Key-group consolidations completed.")
	gAccepted := reg.Counter("clash_groups_accepted_total", "Key groups accepted in transfers.")
	gReleased := reg.Counter("clash_groups_released_total", "Key groups released to other nodes.")
	gRecovered := reg.Counter("clash_groups_recovered_total", "Key groups promoted from peer replicas after a crash.")
	objects := reg.CounterVec("clash_objects_total",
		"ACCEPT_OBJECT requests by outcome (ok, corrected, wrong).", "status")
	loadFrac := reg.Gauge("clash_load_fraction", "Node load fraction at the last load check.")
	groupsActive := reg.Gauge("clash_groups_active", "Active key groups held by this node.")
	queries := reg.Gauge("clash_queries", "Continuous queries stored on this node.")
	draining := reg.Gauge("clash_draining", "1 while the node is in admin drain mode.")
	groupLoad := reg.GaugeVec("clash_group_load_fraction",
		"Per-group load fraction at the last load check.", "group")
	matchDrops := reg.Counter("clash_match_drops_total",
		"Match notifications dropped after delivery failure.")
	transferDrops := reg.Counter("clash_transfer_drops_total",
		"Parked key-group transfers abandoned after exhausting retries.")
	orphanDrops := reg.Counter("clash_orphan_drops_total",
		"Orphaned queries dropped after exhausting placement retries.")
	frames := reg.CounterVec("clash_transport_frames_total", "Wire frames by direction.", "dir")
	bytes := reg.CounterVec("clash_transport_bytes_total", "Wire bytes by direction, headers included.", "dir")
	inFlight := reg.Gauge("clash_transport_in_flight", "Outbound calls awaiting a reply.")
	reconnects := reg.Counter("clash_transport_reconnects_total", "Outbound connections re-dialed.")
	timeouts := reg.Counter("clash_transport_timeouts_total", "Outbound calls that hit their deadline.")
	retries := reg.Counter("clash_transport_retries_total", "Policy-level call retries.")
	shed := reg.Counter("clash_transport_shed_total", "Inbound requests refused under overload.")
	oversized := reg.Counter("clash_transport_oversized_drops_total",
		"Inbound frames dropped for exceeding the frame size cap.")
	suspScore := reg.GaugeVec("clash_suspicion_score",
		"Failure-detector suspicion score per peer carrying a failure streak.", "peer")
	suspFails := reg.GaugeVec("clash_suspicion_fails",
		"Consecutive failed calls per suspected peer.", "peer")
	eventDrops := reg.Counter("clash_events_dropped_total",
		"Events lost on saturated /events subscribers.")
	buildInfo := reg.GaugeVec("clash_build_info",
		"Build identity; the value is always 1. clashtop compares the labels "+
			"across the fleet to report version skew.",
		"version", "goversion", "gomaxprocs")
	shardEntries := reg.GaugeVec("clash_server_shard_entries",
		"Work-table rows guarded by each lock stripe (shard -1 is the shallow stripe).", "shard")
	shardActive := reg.GaugeVec("clash_server_shard_active_groups",
		"Active key groups guarded by each lock stripe.", "shard")
	shardLockWaits := reg.CounterVec("clash_server_shard_lock_waits_total",
		"Contended lock acquisitions per work-table stripe.", "shard")
	shardObjects := reg.CounterVec("clash_server_shard_objects_total",
		"ACCEPT_OBJECT outcomes recorded against each stripe's key range.", "shard", "status")
	snapshotSwaps := reg.Counter("clash_server_snapshot_swaps_total",
		"Routing read-snapshot rebuilds published by structural changes.")
	info.With(h.node.Addr()).Set(1)
	buildInfo.With(buildVersion(), runtime.Version(), strconv.Itoa(runtime.GOMAXPROCS(0))).Set(1)

	reg.OnCollect(func() {
		c := h.node.Server().Counters()
		splits.Set(uint64(c.Splits))
		merges.Set(uint64(c.Merges))
		gAccepted.Set(uint64(c.GroupsAccepted))
		gReleased.Set(uint64(c.GroupsReleased))
		gRecovered.Set(uint64(c.GroupsRecovered))
		objects.With("ok").Set(uint64(c.ObjectsOK))
		objects.With("corrected").Set(uint64(c.ObjectsCorrect))
		objects.With("wrong").Set(uint64(c.ObjectsWrong))

		loadFrac.Set(h.node.Server().TotalLoad())
		groupsActive.Set(float64(len(h.node.Server().ActiveGroups())))
		queries.Set(float64(h.node.Engine().Len()))
		if h.node.Draining() {
			draining.Set(1)
		} else {
			draining.Set(0)
		}
		groupLoad.Reset()
		for g, l := range h.node.GroupLoads() {
			groupLoad.With(g).Set(l)
		}
		// Shard labels are a small fixed set (the stripe count is a compile-time
		// constant), so the vectors are filled in place without a Reset.
		for _, st := range h.node.Server().ShardStats() {
			label := strconv.Itoa(st.Shard)
			shardEntries.With(label).Set(float64(st.Entries))
			shardActive.With(label).Set(float64(st.Active))
			shardLockWaits.With(label).Set(st.LockWaits)
			shardObjects.With(label, "ok").Set(st.ObjectsOK)
			shardObjects.With(label, "corrected").Set(st.ObjectsCorrected)
			shardObjects.With(label, "wrong").Set(st.ObjectsWrong)
		}
		snapshotSwaps.Set(h.node.Server().SnapshotSwaps())

		matchDrops.Set(uint64(h.node.MatchDrops()))
		transferDrops.Set(uint64(h.node.TransferDrops()))
		orphanDrops.Set(uint64(h.node.OrphanDrops()))

		ts := h.node.TransportStats()
		frames.With("in").Set(ts.FramesIn)
		frames.With("out").Set(ts.FramesOut)
		bytes.With("in").Set(ts.BytesIn)
		bytes.With("out").Set(ts.BytesOut)
		inFlight.Set(float64(ts.InFlight))
		reconnects.Set(ts.Reconnects)
		timeouts.Set(ts.Timeouts)
		retries.Set(ts.Retries)
		shed.Set(ts.Shed)
		oversized.Set(ts.OversizedDrops)

		suspScore.Reset()
		suspFails.Reset()
		for peer, st := range h.node.SuspicionTable() {
			suspScore.With(peer).Set(st.Score)
			suspFails.With(peer).Set(float64(st.Fails))
		}
		eventDrops.Set(h.bus.Drops())
	})
}

// Handler returns the hub's HTTP mux.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", h.reg)
	mux.HandleFunc("GET /status", h.serveStatus)
	mux.HandleFunc("GET /topology", h.serveTopology)
	mux.HandleFunc("GET /traces/sample", h.serveTraces)
	mux.HandleFunc("GET /traces/spans", h.serveSpans)
	mux.HandleFunc("GET /events", h.serveEvents)
	mux.HandleFunc("POST /admin/drain", h.adminDrain)
	mux.HandleFunc("POST /admin/undrain", h.adminUndrain)
	mux.HandleFunc("POST /admin/split/{group}", h.adminSplit)
	mux.HandleFunc("POST /admin/merge/{group}", h.adminMerge)
	mux.HandleFunc("POST /admin/rebalance", h.adminRebalance)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSONError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (h *Hub) serveStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, h.node.Status())
}

func (h *Hub) serveTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, h.traces.Sample(64))
}

// serveSpans returns this node's retained hop spans. ?traceId= (decimal)
// filters to one trace, in recording order — the form clashtop scrapes when
// assembling a cross-node trace tree. ?limit= caps the unfiltered sample
// (default 512, newest first).
func (h *Hub) serveSpans(w http.ResponseWriter, r *http.Request) {
	var traceID uint64
	if q := r.URL.Query().Get("traceId"); q != "" {
		id, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Errorf("bad traceId %q: %v", q, err))
			return
		}
		traceID = id
	}
	limit := 512
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeJSONError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", q))
			return
		}
		limit = n
	}
	writeJSON(w, h.traces.Spans(traceID, limit))
}

// TopoPlacement is one key group's placement in the /topology document.
type TopoPlacement struct {
	Holder  string  `json:"holder"`
	Depth   int     `json:"depth"`
	Parent  string  `json:"parent,omitempty"`
	Load    float64 `json:"load"`
	Queries int     `json:"queries"`
	// Replicas lists the nodes holding crash-recovery replicas of the
	// holder's groups (replication is per origin node, not per group).
	Replicas []string `json:"replicas,omitempty"`
}

// TopologyView is the /topology document: the ring walk plus the group tree
// flattened into per-group placements.
type TopologyView struct {
	Root string `json:"root"`
	// Complete reports whether the successor walk closed the ring within the
	// node cap; false means some nodes were unreachable or the cap was hit.
	Complete bool                     `json:"complete"`
	Nodes    []overlay.TopoNode       `json:"nodes"`
	Groups   map[string]TopoPlacement `json:"groups"`
}

// serveTopology walks the ring successor by successor from this node,
// collecting each member's topology snapshot over the STATUS-fanout RPC, and
// renders the assembled ring, group tree and replica placement.
func (h *Hub) serveTopology(w http.ResponseWriter, _ *http.Request) {
	nodes, complete := h.walkRing(maxTopoNodes)
	view := TopologyView{
		Root:     h.node.Addr(),
		Complete: complete,
		Nodes:    nodes,
		Groups:   make(map[string]TopoPlacement),
	}
	// Invert ReplicaOrigins: replicasOf[origin] = nodes replicating origin.
	replicasOf := make(map[string][]string)
	for _, n := range nodes {
		for _, origin := range n.ReplicaOrigins {
			replicasOf[origin] = append(replicasOf[origin], n.Addr)
		}
	}
	for _, n := range nodes {
		for _, g := range n.Groups {
			view.Groups[g.Group] = TopoPlacement{
				Holder:   n.Addr,
				Depth:    g.Depth,
				Parent:   g.Parent,
				Load:     g.Load,
				Queries:  g.Queries,
				Replicas: replicasOf[n.Addr],
			}
		}
	}
	writeJSON(w, view)
}

// walkRing follows first-successor pointers from this node, fetching each
// member's snapshot, until the walk closes, breaks, or hits max.
func (h *Hub) walkRing(max int) ([]overlay.TopoNode, bool) {
	start := h.node.Addr()
	seen := make(map[string]bool)
	var nodes []overlay.TopoNode
	addr := start
	for addr != "" && !seen[addr] {
		if len(nodes) >= max {
			return nodes, false
		}
		info, err := h.node.FetchTopo(addr)
		if err != nil {
			return nodes, false
		}
		seen[addr] = true
		nodes = append(nodes, info)
		addr = ""
		for _, s := range info.Successors {
			if s != "" {
				addr = s
				break
			}
		}
	}
	// A walk that revisits any member closed a cycle; reaching a node with no
	// successor did not.
	return nodes, addr != ""
}

func (h *Hub) adminDrain(w http.ResponseWriter, _ *http.Request) {
	moved := h.node.Drain()
	writeJSON(w, map[string]any{"draining": true, "moved": moved})
}

func (h *Hub) adminUndrain(w http.ResponseWriter, _ *http.Request) {
	h.node.Undrain()
	writeJSON(w, map[string]any{"draining": false})
}

func (h *Hub) adminSplit(w http.ResponseWriter, r *http.Request) {
	g, err := bitkey.ParseGroup(r.PathValue("group"))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if err := h.node.ForceSplit(g); err != nil {
		writeJSONError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, map[string]any{"ok": true, "group": g.String()})
}

func (h *Hub) adminMerge(w http.ResponseWriter, r *http.Request) {
	g, err := bitkey.ParseGroup(r.PathValue("group"))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if err := h.node.ForceMerge(g); err != nil {
		writeJSONError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, map[string]any{"ok": true, "group": g.String()})
}

func (h *Hub) adminRebalance(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"moved": h.node.Rebalance()})
}
