package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"clash/internal/bitkey"
	"clash/internal/sim/link"
	"clash/internal/workload"
)

// smallSplitMerge is a fast split-merge flavor for unit tests.
func smallSplitMerge(nodes int, seed int64) Scenario {
	sc, err := Named("split-merge", nodes, seed)
	if err != nil {
		panic(err)
	}
	return sc
}

func TestScenarioSplitMergeSmall(t *testing.T) {
	res, err := Run(smallSplitMerge(40, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Totals.Splits < 1 || res.Totals.Merges < 1 {
		t.Fatalf("splits=%d merges=%d, want load-driven splits and merges",
			res.Totals.Splits, res.Totals.Merges)
	}
	if res.Totals.MatchesDelivered != res.Totals.MatchesInline || res.Totals.MatchDrops != 0 {
		t.Fatalf("matches delivered %d != matched %d (drops %d)",
			res.Totals.MatchesDelivered, res.Totals.MatchesInline, res.Totals.MatchDrops)
	}
	if !res.CoverageComplete || !res.RingConverged {
		t.Fatalf("coverage=%v ring=%v", res.CoverageComplete, res.RingConverged)
	}
	if res.MatchLatencyMs.Count == 0 || res.MatchLatencyMs.P50 <= 0 {
		t.Fatalf("no virtual match latency recorded: %+v", res.MatchLatencyMs)
	}
	if len(res.Ticks) != smallSplitMerge(40, 1).TotalTicks() {
		t.Fatalf("ticks recorded = %d", len(res.Ticks))
	}
}

// TestScenarioDeterminism is the core determinism guarantee: two runs with
// the same scenario and seed marshal to identical bytes, and a different seed
// diverges.
func TestScenarioDeterminism(t *testing.T) {
	marshal := func(seed int64) []byte {
		res, err := Run(smallSplitMerge(30, seed))
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := marshal(5), marshal(5)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different result bytes")
	}
	if bytes.Equal(a, marshal(6)) {
		t.Fatal("different seed produced identical result bytes")
	}
}

func TestScenarioPartitionHealSmall(t *testing.T) {
	sc, err := Named("partition-heal", 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if !res.RingConverged {
		t.Fatalf("ring drift %d after heal", res.RingDrift)
	}
	// The client must have been cut off from the isolated side's groups
	// during the window (the scenario records real unavailability).
	if res.Totals.PublishErrors == 0 {
		t.Error("partition caused no publish errors — the window had no effect")
	}
}

func TestNamedScenarios(t *testing.T) {
	for _, name := range Names() {
		sc, err := Named(name, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Nodes <= 0 || sc.TotalTicks() == 0 {
			t.Errorf("%s: empty default scenario", name)
		}
	}
	if _, err := Named("bogus", 0, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestCoverage(t *testing.T) {
	g := func(s string) bitkey.Group { return bitkey.MustParseGroup(s) }
	complete, overlaps := coverage(4, []bitkey.Group{g("0"), g("10"), g("110"), g("111")})
	if !complete || overlaps != 0 {
		t.Errorf("exact partition: complete=%v overlaps=%d", complete, overlaps)
	}
	complete, _ = coverage(4, []bitkey.Group{g("0"), g("10")})
	if complete {
		t.Error("gap reported complete")
	}
	complete, overlaps = coverage(4, []bitkey.Group{g("0"), g("01"), g("1")})
	if complete || overlaps == 0 {
		t.Errorf("overlap undetected: complete=%v overlaps=%d", complete, overlaps)
	}
}

func TestHotPacketsScalesWithDepth(t *testing.T) {
	sc := Scenario{
		KeyBits:        workload.DefaultKeyBits,
		Capacity:       50,
		Workload:       workload.WorkloadC,
		CheckEvery:     30 * time.Second,
		BootstrapDepth: 2,
		Link:           link.Model{},
	}
	shallow := hotPacketsFor(sc, 4)
	sc.BootstrapDepth = 8
	deep := hotPacketsFor(sc, 4)
	if deep <= shallow {
		t.Errorf("hot packets shallow=%d deep=%d; deeper partitions must need more traffic", shallow, deep)
	}
}
