package cluster

import (
	"sort"

	"clash/internal/overlay"
)

// TraceSpan is one hop span with its resolved children.
type TraceSpan struct {
	overlay.Span
	Children []*TraceSpan `json:"children,omitempty"`
}

// ownMicros is the virtual work the span itself accounts for: queue wait,
// payload decode, state-machine time and the onward network round trip
// charged to the hop.
func ownMicros(sp overlay.Span) int64 {
	return sp.QueueMicros + sp.CodecMicros + sp.HandlerMicros + sp.NetworkMicros
}

// PathHop is one step of a trace's critical path.
type PathHop struct {
	Node      string `json:"node"`
	Kind      string `json:"kind"`
	Hop       int    `json:"hop"`
	Detail    string `json:"detail,omitempty"`
	Micros    int64  `json:"micros"`
	CumMicros int64  `json:"cumMicros"`
}

// TraceTree is one sampled publish reassembled across the fleet.
type TraceTree struct {
	TraceID uint64 `json:"traceId"`
	// Complete reports the span-completeness invariant: exactly one root
	// span of kind ingress and every other span's parent resolved.
	Complete bool `json:"complete"`
	// Spans is the number of distinct spans (after cross-scrape dedup).
	Spans int `json:"spans"`
	// Root is the ingress span with the full tree hanging off it.
	Root *TraceSpan `json:"root,omitempty"`
	// Orphans are spans whose parent was not found (span ring overwrote it,
	// or its node was unreachable); a non-empty list means Complete false.
	Orphans []overlay.Span `json:"orphans,omitempty"`
	// CriticalPath is the root-to-leaf chain maximising accounted time; its
	// total is CriticalPathMicros.
	CriticalPath       []PathHop `json:"criticalPath,omitempty"`
	CriticalPathMicros int64     `json:"criticalPathMicros"`
}

// AssembleTrace builds the span tree of one trace from spans scraped off any
// number of nodes. Duplicate span IDs (the same ring scraped twice) collapse
// to their first occurrence.
func AssembleTrace(traceID uint64, spans []overlay.Span) *TraceTree {
	tree := &TraceTree{TraceID: traceID}
	byID := make(map[uint64]*TraceSpan)
	var ordered []*TraceSpan
	for _, sp := range spans {
		if sp.TraceID != traceID || sp.SpanID == 0 {
			continue
		}
		if _, dup := byID[sp.SpanID]; dup {
			continue
		}
		ts := &TraceSpan{Span: sp}
		byID[sp.SpanID] = ts
		ordered = append(ordered, ts)
	}
	tree.Spans = len(ordered)

	var roots []*TraceSpan
	for _, ts := range ordered {
		if ts.Parent == 0 {
			roots = append(roots, ts)
			continue
		}
		parent, ok := byID[ts.Parent]
		if !ok {
			tree.Orphans = append(tree.Orphans, ts.Span)
			continue
		}
		parent.Children = append(parent.Children, ts)
	}
	// Child order is scrape order (racy across nodes); sort for stable output.
	for _, ts := range ordered {
		sort.Slice(ts.Children, func(i, j int) bool {
			a, b := ts.Children[i], ts.Children[j]
			if a.Hop != b.Hop {
				return a.Hop < b.Hop
			}
			return a.SpanID < b.SpanID
		})
	}

	tree.Complete = len(roots) == 1 && len(tree.Orphans) == 0 &&
		len(ordered) > 0 && roots[0].Kind == overlay.HopIngress
	if len(roots) > 0 {
		tree.Root = roots[0]
		tree.CriticalPath, tree.CriticalPathMicros = criticalPath(tree.Root)
	}
	return tree
}

// criticalPath walks root to the leaf with the largest accumulated accounted
// time and returns the chain with running totals.
func criticalPath(root *TraceSpan) ([]PathHop, int64) {
	var best []PathHop
	var bestTotal int64
	var walk func(ts *TraceSpan, path []PathHop, total int64)
	walk = func(ts *TraceSpan, path []PathHop, total int64) {
		total += ownMicros(ts.Span)
		path = append(path, PathHop{
			Node:      ts.Node,
			Kind:      ts.Kind,
			Hop:       ts.Hop,
			Detail:    ts.Detail,
			Micros:    ownMicros(ts.Span),
			CumMicros: total,
		})
		if len(ts.Children) == 0 {
			if total >= bestTotal {
				bestTotal = total
				best = append([]PathHop(nil), path...)
			}
			return
		}
		for _, child := range ts.Children {
			walk(child, path, total)
		}
	}
	walk(root, nil, 0)
	return best, bestTotal
}

// RecentTraces groups the fleet's pooled span rings by trace and assembles
// the most recent limit traces (by their newest span's timestamp).
func RecentTraces(views []NodeView, limit int) []*TraceTree {
	byTrace := make(map[uint64][]overlay.Span)
	newest := make(map[uint64]int64)
	for _, nv := range views {
		for _, sp := range nv.Spans {
			if sp.TraceID == 0 {
				continue
			}
			byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
			if sp.TimeMs > newest[sp.TraceID] {
				newest[sp.TraceID] = sp.TimeMs
			}
		}
	}
	ids := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if newest[ids[i]] != newest[ids[j]] {
			return newest[ids[i]] > newest[ids[j]]
		}
		return ids[i] > ids[j]
	})
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]*TraceTree, 0, len(ids))
	for _, id := range ids {
		out = append(out, AssembleTrace(id, byTrace[id]))
	}
	return out
}
