// Package chord is a sim-driven testdata package: every wall-clock touch
// must be flagged unless a justified ignore directive covers it.
package chord

import (
	"time"
	clk "time"
)

func violations() {
	_ = time.Now()                  // want `time\.Now is forbidden in sim-driven package chord`
	time.Sleep(time.Second)         // want `time\.Sleep is forbidden`
	_ = time.After(time.Second)     // want `time\.After is forbidden`
	t := time.NewTimer(time.Second) // want `time\.NewTimer is forbidden`
	_ = t
	tk := time.NewTicker(time.Second) // want `time\.NewTicker is forbidden`
	tk.Stop()
	_ = time.Since(time.Time{}) // want `time\.Since is forbidden`
}

// renamed imports are still caught: the check resolves the package, not the
// identifier spelling.
func renamed() {
	_ = clk.Now() // want `time\.Now is forbidden`
}

// notTheClock proves only wall-clock entry points are flagged: durations,
// formatting and time arithmetic are fine.
func notTheClock(ts time.Time) string {
	d := 5 * time.Millisecond
	_ = ts.Add(d)
	return ts.Format(time.RFC3339)
}

// suppressed carries a well-formed directive: no finding.
func suppressed() {
	//clashvet:ignore clockcheck testdata exercises the real-socket allowlist form
	_ = time.Now()
	time.Sleep(0) //clashvet:ignore clockcheck trailing-form suppression is allowed too
}

// wrongAnalyzer's directive names another analyzer, so it does not suppress.
func wrongAnalyzer() {
	//clashvet:ignore poolcheck wrong analyzer name does not suppress clockcheck
	_ = time.Now() // want `time\.Now is forbidden`
}

// malformed directives (missing the mandatory reason) are findings themselves
// and do not suppress anything.
func malformed() {
	/* want `malformed //clashvet:ignore directive: missing reason` */ //clashvet:ignore clockcheck
	_ = time.Now()                                                     // want `time\.Now is forbidden`
}
